# Targets mirror .github/workflows/ci.yml so local runs match CI exactly.

GO ?= go

.PHONY: build test race bench fmt fmt-check vet staticcheck ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: a smoke test, not a measurement.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck flags, among other things, uses of the deprecated pre-Request
# entry points inside the repo itself. CI installs it; locally the target
# skips with a note when the binary is absent (the module adds no deps).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck -checks 'SA*' ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2025.1.1)"; \
	fi

ci: fmt-check vet staticcheck build race bench
