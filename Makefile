# Targets mirror .github/workflows/ci.yml so local runs match CI exactly.

GO ?= go

.PHONY: build test race bench bench-substrate bench-json bench-compare fmt fmt-check vet staticcheck smoke mutation-smoke mmap-smoke router-smoke load-smoke chaos-smoke write-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: a smoke test, not a measurement.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Alloc-regression guards on the pooled hot-path substrate: each
# BenchmarkSubstrate* measures steady-state allocs/op with AllocsPerRun and
# FAILS above its committed ceiling (~0). CI runs this on every push.
bench-substrate:
	$(GO) test -bench=BenchmarkSubstrate -benchtime=1x -run='^$$' .

# The canonical perf-trajectory record. Each performance-relevant PR runs
# this and commits the output as BENCH_<pr>.json (see README "Performance").
# Alongside the seabench wall-clock experiments it runs the canonical
# seaload SLO scenarios (open-loop, self-served loopback server, fixed
# seed), so the trajectory also tracks serving-latency percentiles.
BENCH_OUT ?= BENCH_new.json
bench-json:
	$(GO) run ./cmd/seabench -scale 0.25 -queries 4 -out $(BENCH_OUT)
	$(GO) run ./cmd/seaload -selfserve -scale 0.25 -scenario read-heavy \
		-qps 150 -duration 5s -warmup 1s -out $(BENCH_OUT)
	$(GO) run ./cmd/seaload -selfserve -scale 0.25 -scenario mixed \
		-qps 150 -duration 5s -warmup 1s -out $(BENCH_OUT)
	$(GO) run ./cmd/seaload -selfserve -selfserve-journal -scale 0.25 \
		-scenario write-heavy -qps 150 -duration 5s -warmup 1s \
		-record-suffix @serial -commit-max-batch 1 -out $(BENCH_OUT)
	$(GO) run ./cmd/seaload -selfserve -selfserve-journal -scale 0.25 \
		-scenario write-heavy -qps 150 -duration 5s -warmup 1s \
		-record-suffix @group-commit -out $(BENCH_OUT)
	$(GO) run ./cmd/seaload -selfserve -selfserve-journal -scale 1.0 \
		-writers 32 -direct -duration 3s -warmup 500ms \
		-record-suffix @serial -commit-max-batch 1 -out $(BENCH_OUT)
	$(GO) run ./cmd/seaload -selfserve -selfserve-journal -scale 1.0 \
		-writers 32 -direct -duration 3s -warmup 500ms \
		-record-suffix @group-commit -out $(BENCH_OUT)

# Re-run the canonical configuration and print per-experiment wall-clock
# ratios against the latest committed trajectory record.
BENCH_BASE ?= BENCH_8.json
bench-compare:
	$(GO) run ./cmd/seabench -scale 0.25 -queries 4 -compare $(BENCH_BASE)

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck flags, among other things, uses of the deprecated pre-Request
# entry points inside the repo itself. CI installs it; locally the target
# skips with a note when the binary is absent (the module adds no deps).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck -checks 'SA*' ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2025.1.1)"; \
	fi

# End-to-end snapshot-serving smoke, mirroring the CI snapshot-smoke job:
# datagen → pack → boot seaserve from the snapshot → curl it.
smoke:
	@rm -rf /tmp/sea-smoke && mkdir -p /tmp/sea-smoke
	$(GO) build -o /tmp/sea-smoke/ ./cmd/...
	/tmp/sea-smoke/datagen -dataset facebook -scale 0.3 -out /tmp/sea-smoke/fb.txt
	/tmp/sea-smoke/seacli pack -load /tmp/sea-smoke/fb.txt -out /tmp/sea-smoke/fb.snap
	@/tmp/sea-smoke/seaserve -snapshot /tmp/sea-smoke/fb.snap -addr 127.0.0.1:8971 & \
	pid=$$!; \
	for i in $$(seq 1 50); do curl -sf http://127.0.0.1:8971/healthz >/dev/null && break; sleep 0.2; done; \
	curl -sf http://127.0.0.1:8971/healthz && echo && \
	curl -sf "http://127.0.0.1:8971/search?q=0&k=2&method=structural" >/dev/null && \
	curl -sf http://127.0.0.1:8971/graphs && echo && \
	echo "smoke OK"; status=$$?; kill $$pid 2>/dev/null; exit $$status

# End-to-end live-update smoke, mirroring the CI mutation-smoke job: boot a
# journaled snapshot, POST /admin/mutate, check /search reflects the new
# edges with zero hot-swaps, compact, SIGTERM-drain, reboot from the
# compacted snapshot and check the re-query answers identically.
mutation-smoke:
	@rm -rf /tmp/sea-mut-smoke && mkdir -p /tmp/sea-mut-smoke
	$(GO) build -o /tmp/sea-mut-smoke/ ./cmd/...
	/tmp/sea-mut-smoke/datagen -dataset facebook -scale 0.3 -out /tmp/sea-mut-smoke/fb.txt
	/tmp/sea-mut-smoke/seacli pack -load /tmp/sea-mut-smoke/fb.txt -out /tmp/sea-mut-smoke/fb.snap
	SMOKE_DIR=/tmp/sea-mut-smoke sh scripts/mutation-smoke.sh

# End-to-end zero-copy serving smoke, mirroring the CI mmap-smoke job: pack
# a compressed v2 snapshot, boot seaserve mapped, verify /graphs reports
# mapped:true, /search and /admin/mutate work over the mapped base, and the
# mapped boot wall-time stays flat across a 4× snapshot-size increase.
mmap-smoke:
	@rm -rf /tmp/sea-mmap-smoke && mkdir -p /tmp/sea-mmap-smoke
	$(GO) build -o /tmp/sea-mmap-smoke/ ./cmd/...
	SMOKE_DIR=/tmp/sea-mmap-smoke sh scripts/mmap-smoke.sh

# End-to-end distributed-serving smoke, mirroring the CI router-smoke job:
# boot a journaled primary, two -follow replicas, and a searouter; mutate
# through the router, check followers catch up and serve /batch shards,
# kill -9 the primary, and check the router promotes a follower and keeps
# serving reads and writes.
router-smoke:
	@rm -rf /tmp/sea-router-smoke && mkdir -p /tmp/sea-router-smoke
	$(GO) build -o /tmp/sea-router-smoke/ ./cmd/...
	/tmp/sea-router-smoke/datagen -dataset facebook -scale 0.3 -out /tmp/sea-router-smoke/fb.txt
	/tmp/sea-router-smoke/seacli pack -load /tmp/sea-router-smoke/fb.txt -out /tmp/sea-router-smoke/fb.snap
	SMOKE_DIR=/tmp/sea-router-smoke sh scripts/router-smoke.sh

# End-to-end observability smoke, mirroring the CI load-smoke job: boot
# seaserve on a packed snapshot, run seaload open-loop for 5s, assert the
# record carries p50/p99/p999 with zero errors, and assert /metrics exposes
# the per-stage latency histograms with populated counts.
load-smoke:
	@rm -rf /tmp/sea-load-smoke && mkdir -p /tmp/sea-load-smoke
	$(GO) build -o /tmp/sea-load-smoke/ ./cmd/...
	/tmp/sea-load-smoke/datagen -dataset facebook -scale 0.3 -out /tmp/sea-load-smoke/fb.txt
	/tmp/sea-load-smoke/seacli pack -load /tmp/sea-load-smoke/fb.txt -out /tmp/sea-load-smoke/fb.snap
	SMOKE_DIR=/tmp/sea-load-smoke sh scripts/load-smoke.sh

# End-to-end fault-tolerance smoke, mirroring the CI chaos-smoke job: boot
# primary + followers + a router with fault injection armed on its read
# path, drive it with seaload while kill -9ing the primary, and assert
# reads keep flowing within the error budget, overloaded nodes shed with
# 429 + Retry-After, and post-chaos answers stay consistent.
chaos-smoke:
	@rm -rf /tmp/sea-chaos-smoke && mkdir -p /tmp/sea-chaos-smoke
	$(GO) build -o /tmp/sea-chaos-smoke/ ./cmd/...
	/tmp/sea-chaos-smoke/datagen -dataset facebook -scale 0.3 -out /tmp/sea-chaos-smoke/fb.txt
	/tmp/sea-chaos-smoke/seacli pack -load /tmp/sea-chaos-smoke/fb.txt -out /tmp/sea-chaos-smoke/fb.snap
	SMOKE_DIR=/tmp/sea-chaos-smoke sh scripts/chaos-smoke.sh

# End-to-end group-commit smoke, mirroring the CI write-smoke job: boot a
# journaled primary plus a follower, fire a 32-writer /admin/mutate burst,
# assert every acknowledged mutation is journaled with one batch record per
# flush (version < mutation count: the burst coalesced), the follower
# converges to the same answer, and a SIGTERM-drain + reboot replays the
# batch records to the identical version and answer.
write-smoke:
	@rm -rf /tmp/sea-write-smoke && mkdir -p /tmp/sea-write-smoke
	$(GO) build -o /tmp/sea-write-smoke/ ./cmd/...
	/tmp/sea-write-smoke/datagen -dataset facebook -scale 0.3 -out /tmp/sea-write-smoke/fb.txt
	/tmp/sea-write-smoke/seacli pack -load /tmp/sea-write-smoke/fb.txt -out /tmp/sea-write-smoke/fb.snap
	SMOKE_DIR=/tmp/sea-write-smoke sh scripts/write-smoke.sh

ci: fmt-check vet staticcheck build race bench bench-substrate smoke mutation-smoke mmap-smoke router-smoke load-smoke chaos-smoke write-smoke
