package sea

import (
	"context"
	"io"
	"net/http"
	"time"

	"repro/internal/attr"
	"repro/internal/baselines"
	"repro/internal/catalog"
	"repro/internal/clique"
	"repro/internal/cluster"
	"repro/internal/commit"
	"repro/internal/cserr"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/hetgraph"
	"repro/internal/kcore"
	"repro/internal/mutate"
	"repro/internal/query"
	"repro/internal/sea"
	"repro/internal/store"
	"repro/internal/truss"
)

// NodeID identifies a node in a Graph; IDs are dense in [0, NumNodes).
type NodeID = graph.NodeID

// Graph is an immutable undirected attributed graph in CSR form.
type Graph = graph.Graph

// Adjacency is read-only access to graph structure — the interface every
// backing (heap CSR, zero-copy mapped snapshot, compressed adjacency,
// mutation overlay) implements and every algorithm consumes.
type Adjacency = graph.Adjacency

// GraphStore is the full serving surface of an immutable graph backing:
// positional CSR structure plus attribute columns. *Graph satisfies it, as
// do the snapshot store's mapped and compressed backings.
type GraphStore = graph.Store

// CopyGraph materializes any GraphStore into a heap *Graph (a *Graph passes
// through unchanged) — the export/compaction path for mapped and compressed
// backings.
func CopyGraph(s GraphStore) *Graph { return graph.CopyStore(s) }

// GraphBuilder assembles a Graph; create one with NewGraphBuilder.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a graph with n nodes and numDim
// numerical attribute dimensions per node.
func NewGraphBuilder(n, numDim int) *GraphBuilder { return graph.NewBuilder(n, numDim) }

// Metric evaluates the composite attribute distance of the paper (§II) on a
// fixed graph: γ·Jaccard + (1−γ)·normalized Manhattan.
type Metric = attr.Metric

// NewMetric builds a Metric over g with balance factor gamma ∈ [0,1]
// (1 = textual only, 0 = numerical only).
func NewMetric(g *Graph, gamma float64) (*Metric, error) { return attr.NewMetric(g, gamma) }

// Delta computes the query-centric attribute distance δ(H) of a community:
// the mean composite distance to q over members other than q. dist must be
// the precomputed f(·,q) vector (Metric.QueryDist).
func Delta(dist []float64, members []NodeID, q NodeID) float64 {
	return attr.Delta(dist, members, q)
}

// Model selects the structure-cohesiveness model of a Request.
type Model = sea.Model

// Community models.
const (
	KCore  = sea.KCore
	KTruss = sea.KTruss
)

// Method names a community-search solver; every registered method answers
// the same Request through the same Searcher interface.
type Method = query.Method

// Registered methods: the paper's SEA pipeline, the exact branch-and-bound,
// the four competing baselines of §VII, and the attribute-free structural
// community.
const (
	MethodSEA        = query.MethodSEA
	MethodExact      = query.MethodExact
	MethodACQ        = query.MethodACQ
	MethodLocATC     = query.MethodLocATC
	MethodVAC        = query.MethodVAC
	MethodEVAC       = query.MethodEVAC
	MethodStructural = query.MethodStructural
)

// ParseMethod resolves a method's registry name ("sea", "exact", "acq",
// "locatc", "vac", "evac", "structural").
func ParseMethod(name string) (Method, error) { return query.ParseMethod(name) }

// Methods returns every registered method in registry order.
func Methods() []Method { return query.Methods() }

// Request is the graph-independent community-search query spec shared by
// every method, the Engine, cmd/seacli and the HTTP server: which node,
// which solver, which structural model, and the accuracy/size/budget
// parameters. Zero-valued fields select the paper's defaults (Seed
// excepted — 0 is itself a valid seed); start from DefaultRequest or fill
// the fields you need.
type Request = query.Request

// DefaultRequest returns a Request for query node q with the paper's
// default parameters (§VII-A) fully spelled out.
func DefaultRequest(q NodeID) Request { return query.DefaultRequest(q) }

// Outcome is the method-agnostic result of one Request: the community, its
// q-centric attribute distance δ (computed identically for every method),
// and method-specific detail (SEA's confidence interval, exact's state
// count, a Truncated marker for best-so-far answers).
type Outcome = query.Outcome

// Searcher answers Requests with one fixed method; obtain one per method
// from NewSearcher. Implementations are stateless and safe for concurrent
// use, and honor ctx cancellation inside their search loops.
type Searcher = query.Searcher

// NewSearcher returns the Searcher for a registered method.
func NewSearcher(m Method) (Searcher, error) { return query.NewSearcher(m) }

// Execute answers req on g with the method req names, building the default
// attribute metric (γ=0.5). Cancelling ctx stops the search promptly; an
// interrupted search returns its best-so-far Outcome (Truncated set) with
// ctx's error wrapped. Use ExecuteWithMetric to control γ or amortize the
// metric across calls.
func Execute(ctx context.Context, g *Graph, req Request) (*Outcome, error) {
	return query.Execute(ctx, g, req)
}

// ExecuteWithMetric is Execute with a caller-supplied attribute metric.
func ExecuteWithMetric(ctx context.Context, g *Graph, m *Metric, req Request) (*Outcome, error) {
	return query.Run(ctx, g, m, nil, req)
}

// Unified error taxonomy: every method classifies its failures behind these
// errors.Is-able sentinels, whatever entry point produced them.
var (
	// ErrNoCommunity reports that no community satisfying the structural
	// (and size) constraints exists around the query node.
	ErrNoCommunity = cserr.ErrNoCommunity
	// ErrBudgetExhausted reports that a state budget cut an exact search
	// short; the accompanying result carries the best community found.
	ErrBudgetExhausted = cserr.ErrBudgetExhausted
	// ErrInvalidRequest reports a malformed Request or Options value: bad
	// parameters, an unknown method, or an unsupported method/model pair.
	ErrInvalidRequest = cserr.ErrInvalidRequest
	// ErrSnapshotVersion reports a snapshot whose magic or format version
	// this build does not read.
	ErrSnapshotVersion = cserr.ErrSnapshotVersion
	// ErrSnapshotCorrupt reports a snapshot failing its checksum or
	// structural validation.
	ErrSnapshotCorrupt = cserr.ErrSnapshotCorrupt
	// ErrUnknownGraph reports a request naming a dataset the catalog has
	// not mounted.
	ErrUnknownGraph = cserr.ErrUnknownGraph
	// ErrOverloaded reports a request shed by admission control or
	// commit-queue backpressure: nothing was enqueued or applied, and the
	// request is safe to retry after backing off (HTTP 429 + Retry-After).
	ErrOverloaded = cserr.ErrOverloaded
)

// Options configures a SEA search; start from DefaultOptions.
//
// Deprecated: Options survives as the advanced-knob form of a SEA Request;
// new code should build a Request (every Options field has a Request
// counterpart) and call Execute.
type Options = sea.Options

// DefaultOptions returns the paper's default parameters (§VII-A).
func DefaultOptions() Options { return sea.DefaultOptions() }

// Result is the outcome of a SEA search: the community, its attribute
// distance δ*, the confidence interval, the per-round trace and step times.
// Execute returns it as Outcome.SEA.
type Result = sea.Result

// Search runs the SEA approximate community search (the paper's primary
// contribution) on g for query node q.
//
// Deprecated: use Execute (or ExecuteWithMetric to keep the shared Metric)
// with a Request naming MethodSEA; the full trace is Outcome.SEA.
func Search(g *Graph, m *Metric, q NodeID, opts Options) (*Result, error) {
	return sea.Search(g, m, q, opts)
}

// SearchWithDist is Search with a precomputed f(·,q) vector, letting callers
// amortize the distance computation across runs.
//
// Deprecated: use Execute with a Request naming MethodSEA, or NewEngine
// which caches distance vectors across calls.
func SearchWithDist(g *Graph, dist []float64, q NodeID, opts Options) (*Result, error) {
	return sea.SearchWithDist(g, dist, q, opts)
}

// ExactConfig selects the exact baseline's pruning strategies and bounds its
// search-tree exploration.
type ExactConfig = exact.Config

// ExactResult is the outcome of an exact search; Execute returns it as
// Outcome.Exact.
type ExactResult = exact.Result

// DefaultExactConfig enables all three pruning strategies of §IV.
func DefaultExactConfig() ExactConfig { return exact.DefaultConfig() }

// ExactSearch solves CS-AG exactly: the connected k-core containing q with
// the smallest δ. dist must be Metric.QueryDist(q).
//
// Deprecated: use Execute with a Request naming MethodExact (Request.
// MaxStates bounds the search tree; all three prunings stay enabled).
func ExactSearch(g *Graph, q NodeID, k int, dist []float64, cfg ExactConfig) (ExactResult, error) {
	return exact.Search(g, q, k, dist, cfg)
}

// BaselineModel selects the structural model for the baseline methods.
//
// Deprecated: Requests use Model (KCore/KTruss) for every method.
type BaselineModel = baselines.Model

// Structural models for the baselines.
//
// Deprecated: use KCore and KTruss with a Request.
const (
	BaselineKCore  = baselines.KCore
	BaselineKTruss = baselines.KTruss
)

// ACQ runs the shared-attribute baseline (Fang et al., PVLDB'16).
//
// Deprecated: use Execute with a Request naming MethodACQ.
func ACQ(g *Graph, q NodeID, k int, model BaselineModel) ([]NodeID, error) {
	return baselines.ACQ(g, q, k, model)
}

// LocATC runs the attribute-coverage local search baseline (Huang &
// Lakshmanan, PVLDB'17).
//
// Deprecated: use Execute with a Request naming MethodLocATC.
func LocATC(g *Graph, q NodeID, k int, model BaselineModel) ([]NodeID, error) {
	return baselines.LocATC(g, q, k, model)
}

// VAC runs the approximate min-max attribute-distance baseline (Liu et al.,
// ICDE'20).
//
// Deprecated: use ExecuteWithMetric with a Request naming MethodVAC.
func VAC(g *Graph, m *Metric, q NodeID, k int, model BaselineModel) ([]NodeID, error) {
	return baselines.VAC(g, m, q, k, model)
}

// EVAC runs the exact min-max baseline with a state budget.
//
// Deprecated: use ExecuteWithMetric with a Request naming MethodEVAC and
// setting Request.MaxStates.
func EVAC(g *Graph, m *Metric, q NodeID, k int, model BaselineModel, maxStates int) ([]NodeID, error) {
	return baselines.EVAC(g, m, q, k, model, maxStates)
}

// CoreDecompose returns the coreness of every node (Batagelj–Zaversnik).
func CoreDecompose(g *Graph) []int32 { return kcore.Decompose(g) }

// MaximalConnectedKCore returns the node set of the maximal connected k-core
// containing q, or nil.
func MaximalConnectedKCore(g *Graph, q NodeID, k int) []NodeID {
	return kcore.MaximalConnectedKCore(g, q, k)
}

// MaximalConnectedKTruss returns the node set of the maximal connected
// k-truss containing q, or nil.
func MaximalConnectedKTruss(g *Graph, q NodeID, k int) []NodeID {
	return truss.MaximalConnectedKTruss(g, q, k)
}

// KCliqueCommunity returns the k-clique percolation community of q — the
// most cohesive model in the paper's §II ranking k-core ⪯ k-truss ⪯
// k-clique. maxCliques bounds the exponential enumeration (0 = default).
func KCliqueCommunity(g *Graph, q NodeID, k, maxCliques int) ([]NodeID, error) {
	return clique.Community(g, q, k, maxCliques)
}

// Engine is a long-lived, concurrency-safe query-serving layer over one
// fixed graph: it precomputes and shares the attribute metric and the
// structural decompositions across queries, caches per-query distance
// vectors and full Outcomes in sharded LRUs, and coalesces concurrent
// identical queries single-flight style. Every request is one Request,
// whatever the method; Engine.Query is the unified entry point and
// Engine.Batch its worker-pool form. Per-request deadlines (and client
// disconnects) cancel the underlying search, not just the wait. Create one
// with NewEngine.
type Engine = engine.Engine

// EngineConfig parameterizes NewEngine; start from DefaultEngineConfig.
type EngineConfig = engine.Config

// DefaultEngineConfig returns a serving configuration suitable for mid-size
// graphs: γ=0.5, 256 cached distance vectors, 4096 cached results.
func DefaultEngineConfig() EngineConfig { return engine.DefaultConfig() }

// NewEngine builds a serving engine over g, precomputing the shared
// per-graph state (attribute metric, core decomposition; the truss index is
// built lazily unless cfg.EagerTruss is set).
func NewEngine(g *Graph, cfg EngineConfig) (*Engine, error) { return engine.New(g, cfg) }

// NewEngineFromStore is NewEngine over any GraphStore backing — most
// importantly a zero-copy mapped or compressed snapshot.
func NewEngineFromStore(g GraphStore, cfg EngineConfig) (*Engine, error) { return engine.New(g, cfg) }

// NewHTTPHandler returns the JSON serving surface of an Engine: /search
// (one Request, any method), /batch (one Request spec over many query
// nodes), /compare (one Request replayed through several methods side by
// side), /healthz and /stats. cmd/seaserve wires it to flags and a
// listener.
func NewHTTPHandler(e *Engine) http.Handler { return engine.NewHTTPHandler(e) }

// Snapshot is the reopened serving state of a packed dataset: the graph
// and, when the snapshot carried one, the precomputed index.
type Snapshot = store.Snapshot

// SnapshotIndex is the serializable precomputed per-graph state a snapshot
// persists alongside the graph: the coreness and node-trussness admission
// indexes and the attribute-metric normalization table.
type SnapshotIndex = store.Index

// PackOptions selects the on-disk snapshot layout: the zero value writes the
// legacy v1 stream, Align the mmap-ready aligned v2 section-table layout,
// Compress the v2 layout with delta+varint compressed adjacency.
type PackOptions = store.PackOptions

// SnapshotInfo describes an on-disk snapshot without opening it: format
// version, section layout, alignment/compression/index properties and size.
// The zero value (Version 0) means "not a snapshot file".
type SnapshotInfo = store.SnapshotInfo

// MountedSnapshot is an opened serving backing plus the resources behind it
// — for a mapped snapshot, the live memory mapping. Close it only when
// nothing reaches the backing anymore.
type MountedSnapshot = store.Mounted

// WriteSnapshot serializes g and idx (which may be nil for a graph-only
// snapshot) to w in the versioned, checksummed binary snapshot format of
// internal/store. Engine.WriteSnapshot packs a serving engine's full state.
// WriteSnapshotOpts selects the v2 aligned/compressed layouts.
func WriteSnapshot(w io.Writer, g *Graph, idx *SnapshotIndex) error { return store.Write(w, g, idx) }

// WriteSnapshotOpts is WriteSnapshot with an explicit layout choice.
func WriteSnapshotOpts(w io.Writer, g *Graph, idx *SnapshotIndex, opt PackOptions) error {
	return store.WriteSnapshot(w, g, idx, opt)
}

// OpenMappedSnapshot opens the snapshot at path for zero-copy serving: a v2
// aligned snapshot maps read-only and serves straight from the page cache —
// O(1) boot in the graph size — while a v1 snapshot or an mmap-less
// platform falls back to a fully verified heap open (Mapped() reports
// which).
func OpenMappedSnapshot(path string) (*MountedSnapshot, error) { return store.OpenMapped(path) }

// MountGraphFile is OpenGraphFile's zero-copy sibling: a v2 snapshot maps
// read-only, a v1 snapshot heap-opens, anything else parses as the text
// exchange format.
func MountGraphFile(path string) (*MountedSnapshot, error) { return store.MountGraphFile(path) }

// OpenSnapshot reads one snapshot, verifying version, checksum and
// structure; the result is ready to serve with zero parsing or
// recomputation. Errors classify as ErrSnapshotVersion or
// ErrSnapshotCorrupt.
func OpenSnapshot(r io.Reader) (*Snapshot, error) { return store.Open(r) }

// OpenSnapshotFile opens the snapshot at path.
func OpenSnapshotFile(path string) (*Snapshot, error) { return store.OpenFile(path) }

// DetectSnapshotFile inspects the file at path and describes what kind of
// snapshot it is (format version, sections, alignment, compression, size),
// reading only the header and section table. A file that is not a snapshot
// — e.g. the text exchange format — returns the zero SnapshotInfo
// (IsSnapshot() == false) with a nil error.
func DetectSnapshotFile(path string) (SnapshotInfo, error) { return store.DetectFile(path) }

// OpenGraphFile opens a graph file in either on-disk form, sniffing the
// snapshot magic: a packed snapshot opens with its index, anything else
// parses as the text exchange format (Snapshot.Index nil).
func OpenGraphFile(path string) (*Snapshot, error) { return store.OpenGraphFile(path) }

// NewEngineFromSnapshot builds an Engine directly from a reopened snapshot,
// skipping the construction-time metric scan and core/truss decompositions
// when the snapshot carries an index.
func NewEngineFromSnapshot(snap *Snapshot, cfg EngineConfig) (*Engine, error) {
	return engine.NewFromSnapshot(snap, cfg)
}

// WriteSnapshotFile writes eng's full serving state to a snapshot at path
// and returns the file size. The truss index is built first if it was not
// already, so packed snapshots always carry the complete admission state.
// The write is atomic: the stream goes to a temp file in the destination
// directory and renames into place only on success, so repacking over an
// existing good snapshot can never destroy it.
func WriteSnapshotFile(eng *Engine, path string) (int64, error) {
	return store.AtomicWriteFile(path, eng.WriteSnapshot)
}

// WriteSnapshotFileOpts is WriteSnapshotFile with an explicit on-disk layout
// (PackOptions{Align: true} for the mmap-ready v2 format, Compress for
// delta+varint adjacency).
func WriteSnapshotFileOpts(eng *Engine, path string, opt PackOptions) (int64, error) {
	return store.AtomicWriteFile(path, func(w io.Writer) error {
		return eng.WriteSnapshotOpts(w, opt)
	})
}

// PackSnapshotFile builds the complete serving index over g (core, truss,
// metric table) and writes the snapshot to path, returning the file size.
// It is the one pack pipeline behind cmd/datagen -pack and cmd/seacli pack.
// Snapshots are gamma-agnostic — the packed normalizer table does not
// depend on the balance factor, which is chosen at serving time.
func PackSnapshotFile(g *Graph, path string) (int64, error) {
	return PackSnapshotFileOpts(g, path, PackOptions{})
}

// PackSnapshotFileOpts is PackSnapshotFile with an explicit on-disk layout.
func PackSnapshotFileOpts(g *Graph, path string, opt PackOptions) (int64, error) {
	cfg := DefaultEngineConfig()
	cfg.EagerTruss = true
	eng, err := NewEngine(g, cfg)
	if err != nil {
		return 0, err
	}
	return WriteSnapshotFileOpts(eng, path, opt)
}

// Mutation is one live graph delta — add_edge, remove_edge, add_node or
// set_attr — applied through Engine.Apply or Catalog.Mutate without a
// reload. Its JSON form is the POST /admin/mutate wire format and the
// write-ahead journal record payload.
type Mutation = mutate.Delta

// MutationOp names a Mutation's operation.
type MutationOp = mutate.Op

// Mutation operations.
const (
	OpAddEdge    = mutate.OpAddEdge
	OpRemoveEdge = mutate.OpRemoveEdge
	OpAddNode    = mutate.OpAddNode
	OpSetAttr    = mutate.OpSetAttr
)

// AddEdgeDelta returns the mutation inserting the undirected edge (u,v).
func AddEdgeDelta(u, v NodeID) Mutation { return mutate.AddEdge(u, v) }

// RemoveEdgeDelta returns the mutation deleting the undirected edge (u,v).
func RemoveEdgeDelta(u, v NodeID) Mutation { return mutate.RemoveEdge(u, v) }

// AddNodeDelta returns the mutation appending a node (ID = NumNodes at
// apply time) with the given attributes (num may be nil for all-zero).
func AddNodeDelta(text []string, num []float64) Mutation { return mutate.AddNode(text, num) }

// SetAttrDelta returns the mutation replacing v's attributes; a nil text or
// num keeps that column unchanged.
func SetAttrDelta(v NodeID, text []string, num []float64) Mutation {
	return mutate.SetAttr(v, text, num)
}

// ApplyResult reports what one Engine.Apply mutation batch did: the new
// graph generation and shape, assigned node IDs, and the scoped-cache
// invalidation tallies.
type ApplyResult = engine.ApplyResult

// MutateResult is ApplyResult as reported by Catalog.Mutate, with the
// caller's per-delta outcomes, the journal sequence number when the dataset
// is journaled, and the group-commit batch timings.
type MutateResult = catalog.MutateResult

// CommitConfig holds the group-commit batching knobs of the write path
// (max groups per flush, hold-open wait, bounded queue); install it with
// Catalog.SetCommitConfig before mounting. The zero value means the
// defaults: batches of at most 64 groups, no hold-open wait, a queue of
// 256 before backpressure sheds with ErrOverloaded/429.
type CommitConfig = commit.Config

// CompactResult reports one journal compaction (Catalog.Compact): the
// snapshot the journal folded into and how many batches it absorbed.
type CompactResult = catalog.CompactResult

// Catalog is a concurrency-safe named registry of mounted datasets, each
// backed by its own Engine, with atomic hot-swap: load a new snapshot, flip
// the pointer, and in-flight queries drain on the old engine while new ones
// hit the new snapshot. Mutations flow through Catalog.Mutate — applied
// live on the dataset's engine and journaled durably when the dataset
// mounted with MountPathJournaled. Create one with NewCatalog.
type Catalog = catalog.Catalog

// CatalogInfo describes one mounted dataset of a Catalog.
type CatalogInfo = catalog.Info

// CatalogManifest lists the datasets a serving process mounts at boot
// (Catalog.MountManifest).
type CatalogManifest = catalog.Manifest

// NewCatalog returns an empty dataset catalog.
func NewCatalog() *Catalog { return catalog.New() }

// LoadCatalogManifest reads a JSON manifest file listing datasets to mount.
func LoadCatalogManifest(path string) (*CatalogManifest, error) { return catalog.LoadManifest(path) }

// NewCatalogHTTPHandler returns the multi-dataset JSON serving surface of a
// Catalog: the full engine query surface routed by the wire request's
// "graph" field, plus /graphs (list + stats) and /admin/reload (hot-swap).
func NewCatalogHTTPHandler(c *Catalog, base EngineConfig) http.Handler {
	return catalog.NewHTTPHandler(c, base)
}

// ErrReplicaResync reports a replication cursor the primary cannot serve a
// journal tail for (compacted past, new lineage, primary restart); the
// follower must bootstrap a fresh snapshot. The HTTP surface maps it to 410
// Gone.
var ErrReplicaResync = catalog.ErrResync

// ReplicationInfo is the replication-relevant state of one mounted dataset:
// the cursor a snapshot fetched now would carry and the journal window a
// tail can be served from (Catalog.ReplicationInfo).
type ReplicationInfo = catalog.ReplicationInfo

// ClusterNodeStatus is one cluster node's role and per-dataset replication
// state — the GET /admin/replication body.
type ClusterNodeStatus = cluster.NodeStatus

// ClusterReplicaStatus is the replication state of one dataset on one
// cluster node.
type ClusterReplicaStatus = cluster.ReplicaStatus

// ClusterFollower replicates every dataset of a primary seaserve into a
// local Catalog by snapshot bootstrap plus journal tailing, and can be
// promoted into a writable primary. Create one with NewClusterFollower.
type ClusterFollower = cluster.Follower

// NewClusterFollower returns a follower replicating from the primary at
// primaryURL into cat, keeping replica snapshots and journals under dir.
// Call Bootstrap once, then Run; pollEvery ≤ 0 uses the default.
func NewClusterFollower(cat *Catalog, primaryURL, dir string, cfg EngineConfig, pollEvery time.Duration) *ClusterFollower {
	return cluster.NewFollower(cat, primaryURL, dir, cfg, pollEvery)
}

// NewClusterNodeHandler returns the HTTP surface of one cluster node: the
// catalog handler plus the replication-control endpoints and, for
// followers (fol non-nil), the write fence. This is what cmd/seaserve
// serves.
func NewClusterNodeHandler(c *Catalog, base EngineConfig, fol *ClusterFollower) http.Handler {
	return cluster.NewNodeHandler(c, base, fol)
}

// ClusterRouterConfig configures a ClusterRouter.
type ClusterRouterConfig = cluster.RouterConfig

// ClusterRouter is the scatter-gather front tier over a replicated
// cluster — consistent-hash read placement, per-shard deadlines with
// partial-result degradation, write forwarding, and follower promotion on
// primary death. cmd/searouter wires it to flags and a listener. Create one
// with NewClusterRouter and release it with Close.
type ClusterRouter = cluster.Router

// NewClusterRouter builds a router over cfg.Members and starts its health
// prober.
func NewClusterRouter(cfg ClusterRouterConfig) (*ClusterRouter, error) {
	return cluster.NewRouter(cfg)
}

// QueryMetrics is the flat, CSV-friendly per-request stage timing record
// produced by Engine.QueryWithMetrics and Engine.Batch.
type QueryMetrics = engine.QueryMetrics

// QueryMetricsHeader returns the CSV header matching QueryMetrics.CSVRecord.
func QueryMetricsHeader() []string { return engine.QueryMetricsHeader() }

// EngineStats is a point-in-time snapshot of an Engine's aggregate counters
// and cache occupancy (Engine.Stats).
type EngineStats = engine.Stats

// LatencyStats is a point-in-time snapshot of every stage-latency histogram
// an Engine records (Engine.Latency): full bucket resolution, mergeable
// across engines, digestible to percentiles via Summary.
type LatencyStats = engine.LatencyStats

// LatencySummary is the flat JSON percentile digest of LatencyStats
// (count/mean/p50/p90/p99/p999/max in microseconds per stage) served under
// "latency" by GET /stats.
type LatencySummary = engine.LatencySummary

// EngineSpan is one request's trace record (correlation id, dataset, start
// timestamp, per-stage metrics) as kept in the engine's trace ring and
// served by GET /debug/trace.
type EngineSpan = engine.Span

// RouterSpan is one request's trace record at the cluster router: route,
// scatter width, failed shards and served-by attribution.
type RouterSpan = cluster.RouterSpan

// EngineBatchItem pairs one Request of Engine.Batch with its Outcome and
// per-stage metrics.
type EngineBatchItem = engine.BatchItem

// EngineSEABatchItem pairs one query of the legacy Engine.BatchSearch with
// its outcome.
//
// Deprecated: use Engine.Batch, whose EngineBatchItem carries the full
// Request/Outcome pair.
type EngineSEABatchItem = engine.SEABatchItem

// WriteMetricsCSV writes one CSV row per batch item in the QueryMetrics
// format, header included. It accepts the items of both Engine.Batch and
// the legacy Engine.BatchSearch.
func WriteMetricsCSV[T interface {
	EngineBatchItem | EngineSEABatchItem
}](w io.Writer, items []T) error {
	switch items := any(items).(type) {
	case []EngineBatchItem:
		return engine.WriteMetricsCSV(w, items)
	default:
		return engine.WriteMetricsCSV(w, any(items).([]EngineSEABatchItem))
	}
}

// BatchResult pairs one query of BatchSearch with its outcome.
type BatchResult = sea.BatchResult

// BatchSearch runs SEA for every query concurrently with up to workers
// goroutines (0 = GOMAXPROCS); results are deterministic and in query order.
//
// Deprecated: use Engine.Batch, which shares the metric, the admission
// index and the caches across queries and honors per-request deadlines.
func BatchSearch(g *Graph, m *Metric, queries []NodeID, opts Options, workers int) ([]BatchResult, error) {
	return sea.BatchSearch(g, m, queries, opts, workers)
}

// InfluentialResult is the outcome of InfluentialSearch.
type InfluentialResult = sea.InfluentialResult

// InfluentialSearch finds the connected k-core containing q maximizing the
// minimum member influence, with an EVT-based estimate of the maximum
// influence in the search region (the §VI-A HIC extension).
func InfluentialSearch(g *Graph, q NodeID, k int, influence []float64) (*InfluentialResult, error) {
	return sea.InfluentialSearch(g, q, k, influence)
}

// HetGraph is an immutable heterogeneous attributed graph (§VI-A).
type HetGraph = hetgraph.HetGraph

// HetGraphBuilder assembles a HetGraph.
type HetGraphBuilder = hetgraph.Builder

// NewHetGraphBuilder returns an empty heterogeneous graph builder.
func NewHetGraphBuilder() *HetGraphBuilder { return hetgraph.NewBuilder() }

// MetaPath is an alternating sequence of node and edge types; community
// members have the path's endpoint (target) type.
type MetaPath = hetgraph.MetaPath

// Projection is the homogeneous P-neighbor graph over a meta-path's target
// nodes, with mappings to and from heterogeneous node IDs.
type Projection = hetgraph.Projection

// Project builds the P-neighbor projection of h along p; run Search on
// Projection.Graph to obtain a (k,P)-core community.
func Project(h *HetGraph, p MetaPath) (*Projection, error) { return h.Project(p) }

// LoadGraph reads an attributed graph from the plain-text exchange format
// documented in internal/dataset (the format cmd/datagen writes).
func LoadGraph(r io.Reader) (*Graph, error) { return dataset.LoadGraph(r) }

// WriteGraph writes g in the exchange format LoadGraph reads.
func WriteGraph(w io.Writer, g *Graph) error { return dataset.WriteGraph(w, g) }

// Dataset bundles a generated benchmark graph with its planted ground-truth
// communities.
type Dataset = dataset.Generated

// HetDataset bundles a generated heterogeneous benchmark graph with its
// canonical meta-path and planted ground truth.
type HetDataset = dataset.HetGenerated

// GenerateDataset builds one of the named homogeneous benchmark analogs
// ("facebook", "github", "twitch", "livejournal", "twitter", "orkut",
// "amazon") at the given scale factor (1.0 = default size).
func GenerateDataset(name string, scale float64) (*Dataset, error) {
	return dataset.Homogeneous(name, scale)
}

// GenerateHetDataset builds one of the named heterogeneous benchmark analogs
// ("dblp", "imdb", "dbpedia", "yago", "freebase").
func GenerateHetDataset(name string, scale float64) (*HetDataset, error) {
	return dataset.Heterogeneous(name, scale)
}
