package sea

import (
	"io"

	"repro/internal/attr"
	"repro/internal/baselines"
	"repro/internal/clique"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/hetgraph"
	"repro/internal/kcore"
	"repro/internal/sea"
	"repro/internal/truss"
)

// NodeID identifies a node in a Graph; IDs are dense in [0, NumNodes).
type NodeID = graph.NodeID

// Graph is an immutable undirected attributed graph in CSR form.
type Graph = graph.Graph

// GraphBuilder assembles a Graph; create one with NewGraphBuilder.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a graph with n nodes and numDim
// numerical attribute dimensions per node.
func NewGraphBuilder(n, numDim int) *GraphBuilder { return graph.NewBuilder(n, numDim) }

// Metric evaluates the composite attribute distance of the paper (§II) on a
// fixed graph: γ·Jaccard + (1−γ)·normalized Manhattan.
type Metric = attr.Metric

// NewMetric builds a Metric over g with balance factor gamma ∈ [0,1]
// (1 = textual only, 0 = numerical only).
func NewMetric(g *Graph, gamma float64) (*Metric, error) { return attr.NewMetric(g, gamma) }

// Delta computes the query-centric attribute distance δ(H) of a community:
// the mean composite distance to q over members other than q. dist must be
// the precomputed f(·,q) vector (Metric.QueryDist).
func Delta(dist []float64, members []NodeID, q NodeID) float64 {
	return attr.Delta(dist, members, q)
}

// Model selects the structure-cohesiveness model for Search.
type Model = sea.Model

// Community models supported by Search.
const (
	KCore  = sea.KCore
	KTruss = sea.KTruss
)

// Options configures a SEA search; start from DefaultOptions.
type Options = sea.Options

// DefaultOptions returns the paper's default parameters (§VII-A).
func DefaultOptions() Options { return sea.DefaultOptions() }

// Result is the outcome of a SEA search: the community, its attribute
// distance δ*, the confidence interval, the per-round trace and step times.
type Result = sea.Result

// ErrNoCommunity is returned by Search when no community satisfying the
// structural (and size) constraints exists around the query node.
var ErrNoCommunity = sea.ErrNoCommunity

// Search runs the SEA approximate community search (the paper's primary
// contribution) on g for query node q.
func Search(g *Graph, m *Metric, q NodeID, opts Options) (*Result, error) {
	return sea.Search(g, m, q, opts)
}

// SearchWithDist is Search with a precomputed f(·,q) vector, letting callers
// amortize the distance computation across runs.
func SearchWithDist(g *Graph, dist []float64, q NodeID, opts Options) (*Result, error) {
	return sea.SearchWithDist(g, dist, q, opts)
}

// ExactConfig selects the exact baseline's pruning strategies and bounds its
// search-tree exploration.
type ExactConfig = exact.Config

// ExactResult is the outcome of an exact search.
type ExactResult = exact.Result

// ErrBudgetExhausted is returned (wrapped) by ExactSearch when the state
// budget is hit; the result still carries the best community found.
var ErrBudgetExhausted = exact.ErrBudgetExhausted

// DefaultExactConfig enables all three pruning strategies of §IV.
func DefaultExactConfig() ExactConfig { return exact.DefaultConfig() }

// ExactSearch solves CS-AG exactly: the connected k-core containing q with
// the smallest δ. dist must be Metric.QueryDist(q).
func ExactSearch(g *Graph, q NodeID, k int, dist []float64, cfg ExactConfig) (ExactResult, error) {
	return exact.Search(g, q, k, dist, cfg)
}

// BaselineModel selects the structural model for the baseline methods.
type BaselineModel = baselines.Model

// Structural models for the baselines.
const (
	BaselineKCore  = baselines.KCore
	BaselineKTruss = baselines.KTruss
)

// ACQ runs the shared-attribute baseline (Fang et al., PVLDB'16).
func ACQ(g *Graph, q NodeID, k int, model BaselineModel) ([]NodeID, error) {
	return baselines.ACQ(g, q, k, model)
}

// LocATC runs the attribute-coverage local search baseline (Huang &
// Lakshmanan, PVLDB'17).
func LocATC(g *Graph, q NodeID, k int, model BaselineModel) ([]NodeID, error) {
	return baselines.LocATC(g, q, k, model)
}

// VAC runs the approximate min-max attribute-distance baseline (Liu et al.,
// ICDE'20).
func VAC(g *Graph, m *Metric, q NodeID, k int, model BaselineModel) ([]NodeID, error) {
	return baselines.VAC(g, m, q, k, model)
}

// EVAC runs the exact min-max baseline with a state budget.
func EVAC(g *Graph, m *Metric, q NodeID, k int, model BaselineModel, maxStates int) ([]NodeID, error) {
	return baselines.EVAC(g, m, q, k, model, maxStates)
}

// CoreDecompose returns the coreness of every node (Batagelj–Zaversnik).
func CoreDecompose(g *Graph) []int32 { return kcore.Decompose(g) }

// MaximalConnectedKCore returns the node set of the maximal connected k-core
// containing q, or nil.
func MaximalConnectedKCore(g *Graph, q NodeID, k int) []NodeID {
	return kcore.MaximalConnectedKCore(g, q, k)
}

// MaximalConnectedKTruss returns the node set of the maximal connected
// k-truss containing q, or nil.
func MaximalConnectedKTruss(g *Graph, q NodeID, k int) []NodeID {
	return truss.MaximalConnectedKTruss(g, q, k)
}

// KCliqueCommunity returns the k-clique percolation community of q — the
// most cohesive model in the paper's §II ranking k-core ⪯ k-truss ⪯
// k-clique. maxCliques bounds the exponential enumeration (0 = default).
func KCliqueCommunity(g *Graph, q NodeID, k, maxCliques int) ([]NodeID, error) {
	return clique.Community(g, q, k, maxCliques)
}

// Engine is a long-lived, concurrency-safe query-serving layer over one
// fixed graph: it precomputes and shares the attribute metric and the
// structural decompositions across queries, caches per-query distance
// vectors and full Results in sharded LRUs, and coalesces concurrent
// identical queries single-flight style. Create one with NewEngine; see
// Engine.Search, Engine.SearchWithMetrics and Engine.BatchSearch.
type Engine = engine.Engine

// EngineConfig parameterizes NewEngine; start from DefaultEngineConfig.
type EngineConfig = engine.Config

// DefaultEngineConfig returns a serving configuration suitable for mid-size
// graphs: γ=0.5, 256 cached distance vectors, 4096 cached results.
func DefaultEngineConfig() EngineConfig { return engine.DefaultConfig() }

// NewEngine builds a serving engine over g, precomputing the shared
// per-graph state (attribute metric, core decomposition; the truss index is
// built lazily unless cfg.EagerTruss is set).
func NewEngine(g *Graph, cfg EngineConfig) (*Engine, error) { return engine.New(g, cfg) }

// QueryMetrics is the flat, CSV-friendly per-request stage timing record
// produced by Engine.SearchWithMetrics and Engine.BatchSearch.
type QueryMetrics = engine.QueryMetrics

// QueryMetricsHeader returns the CSV header matching QueryMetrics.CSVRecord.
func QueryMetricsHeader() []string { return engine.QueryMetricsHeader() }

// EngineStats is a point-in-time snapshot of an Engine's aggregate counters
// and cache occupancy (Engine.Stats).
type EngineStats = engine.Stats

// EngineBatchItem pairs one query of Engine.BatchSearch with its outcome and
// per-stage metrics.
type EngineBatchItem = engine.BatchItem

// WriteMetricsCSV writes one CSV row per batch item in the QueryMetrics
// format, header included.
func WriteMetricsCSV(w io.Writer, items []EngineBatchItem) error {
	return engine.WriteMetricsCSV(w, items)
}

// BatchResult pairs one query of BatchSearch with its outcome.
type BatchResult = sea.BatchResult

// BatchSearch runs SEA for every query concurrently with up to workers
// goroutines (0 = GOMAXPROCS); results are deterministic and in query order.
func BatchSearch(g *Graph, m *Metric, queries []NodeID, opts Options, workers int) ([]BatchResult, error) {
	return sea.BatchSearch(g, m, queries, opts, workers)
}

// InfluentialResult is the outcome of InfluentialSearch.
type InfluentialResult = sea.InfluentialResult

// InfluentialSearch finds the connected k-core containing q maximizing the
// minimum member influence, with an EVT-based estimate of the maximum
// influence in the search region (the §VI-A HIC extension).
func InfluentialSearch(g *Graph, q NodeID, k int, influence []float64) (*InfluentialResult, error) {
	return sea.InfluentialSearch(g, q, k, influence)
}

// HetGraph is an immutable heterogeneous attributed graph (§VI-A).
type HetGraph = hetgraph.HetGraph

// HetGraphBuilder assembles a HetGraph.
type HetGraphBuilder = hetgraph.Builder

// NewHetGraphBuilder returns an empty heterogeneous graph builder.
func NewHetGraphBuilder() *HetGraphBuilder { return hetgraph.NewBuilder() }

// MetaPath is an alternating sequence of node and edge types; community
// members have the path's endpoint (target) type.
type MetaPath = hetgraph.MetaPath

// Projection is the homogeneous P-neighbor graph over a meta-path's target
// nodes, with mappings to and from heterogeneous node IDs.
type Projection = hetgraph.Projection

// Project builds the P-neighbor projection of h along p; run Search on
// Projection.Graph to obtain a (k,P)-core community.
func Project(h *HetGraph, p MetaPath) (*Projection, error) { return h.Project(p) }

// LoadGraph reads an attributed graph from the plain-text exchange format
// documented in internal/dataset (the format cmd/datagen writes).
func LoadGraph(r io.Reader) (*Graph, error) { return dataset.LoadGraph(r) }

// WriteGraph writes g in the exchange format LoadGraph reads.
func WriteGraph(w io.Writer, g *Graph) error { return dataset.WriteGraph(w, g) }

// Dataset bundles a generated benchmark graph with its planted ground-truth
// communities.
type Dataset = dataset.Generated

// HetDataset bundles a generated heterogeneous benchmark graph with its
// canonical meta-path and planted ground truth.
type HetDataset = dataset.HetGenerated

// GenerateDataset builds one of the named homogeneous benchmark analogs
// ("facebook", "github", "twitch", "livejournal", "twitter", "orkut",
// "amazon") at the given scale factor (1.0 = default size).
func GenerateDataset(name string, scale float64) (*Dataset, error) {
	return dataset.Homogeneous(name, scale)
}

// GenerateHetDataset builds one of the named heterogeneous benchmark analogs
// ("dblp", "imdb", "dbpedia", "yago", "freebase").
func GenerateHetDataset(name string, scale float64) (*HetDataset, error) {
	return dataset.Heterogeneous(name, scale)
}
