package sea

// Integration tests exercising the public API end to end, the way the
// examples and a downstream user would: one Request answered by many
// methods through Searcher, Engine and HTTP.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// buildFigure1 constructs the quickstart graph (Figure 1's movies).
func buildFigure1(t testing.TB) (*Graph, *Metric) {
	t.Helper()
	b := NewGraphBuilder(12, 2)
	attrs := [][]string{
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "action", "drama"}, {"movie", "action", "crime"},
	}
	nums := [][2]float64{
		{9.2, 1.6e6}, {9.0, 1.1e6}, {8.7, 1.0e6}, {8.3, 550e3},
		{8.3, 320e3}, {7.9, 280e3}, {8.3, 750e3}, {7.5, 300e3},
		{7.6, 360e3}, {8.2, 500e3}, {6.2, 6.7e3}, {6.5, 9e3},
	}
	for i := range attrs {
		b.SetTextAttrs(NodeID(i), attrs[i]...)
		b.SetNumAttrs(NodeID(i), nums[i][0], nums[i][1])
	}
	edges := [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 8}, {1, 2}, {1, 4}, {1, 8},
		{2, 3}, {2, 9}, {3, 9}, {4, 5}, {4, 8}, {5, 6}, {5, 7}, {6, 7},
		{2, 4}, {3, 5}, {6, 9}, {7, 9}, {0, 9}, {1, 3},
		{10, 11}, {10, 6}, {11, 7}, {10, 7}, {11, 6},
	}
	for _, e := range edges {
		b.AddEdge(NodeID(e[0]), NodeID(e[1]))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMetric(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

func TestQuickstartEndToEnd(t *testing.T) {
	g, m := buildFigure1(t)
	ctx := context.Background()

	req := DefaultRequest(0) // The Godfather
	req.K = 3
	req.ErrorBound = 0.01

	req.Method = MethodExact
	ex, err := ExecuteWithMetric(ctx, g, m, req)
	if err != nil {
		t.Fatal(err)
	}
	req.Method = MethodSEA
	res, err := ExecuteWithMetric(ctx, g, m, req)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Delta <= 0 || res.Delta <= 0 {
		t.Fatalf("δ: exact %v, sea %v", ex.Delta, res.Delta)
	}
	rel := math.Abs(res.Delta-ex.Delta) / ex.Delta
	if rel > 0.1 {
		t.Errorf("relative error %v too large on the quickstart graph", rel)
	}
	// The low-rated action movies must be excluded.
	for _, v := range res.Community {
		if v == 10 || v == 11 {
			t.Errorf("dissimilar movie %d in community", v)
		}
	}
	if res.SEA == nil || len(res.SEA.Rounds) == 0 {
		t.Error("SEA outcome missing its trace")
	}
}

func TestPublicExactMatchesInternalDelta(t *testing.T) {
	g, m := buildFigure1(t)
	req := DefaultRequest(0)
	req.K = 3
	req.Method = MethodExact
	ex, err := ExecuteWithMetric(context.Background(), g, m, req)
	if err != nil {
		t.Fatal(err)
	}
	dist := m.QueryDist(0)
	if got := Delta(dist, ex.Community, 0); got != ex.Delta {
		t.Errorf("Delta recomputation %v != %v", got, ex.Delta)
	}
}

func TestAllMethodsThroughPublicAPI(t *testing.T) {
	g, _ := buildFigure1(t)
	req := DefaultRequest(0)
	req.K = 3
	req.MaxStates = 50000
	for _, m := range Methods() {
		s, err := NewSearcher(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		out, err := s.Search(context.Background(), g, req)
		if err != nil {
			t.Errorf("%v: %v", m, err)
			continue
		}
		if len(out.Community) == 0 || out.Method != m {
			t.Errorf("%v: %+v", m, out)
		}
	}
}

// TestDeprecatedWrappersStillAnswer keeps the migration promise: the legacy
// free functions compile and agree with the unified API they wrap.
func TestDeprecatedWrappersStillAnswer(t *testing.T) {
	g, m := buildFigure1(t)
	req := DefaultRequest(0)
	req.K = 3

	//lint:ignore SA1019 the wrapper contract itself is under test
	legacy, err := Search(g, m, 0, req.Options())
	if err != nil {
		t.Fatal(err)
	}
	unified, err := ExecuteWithMetric(context.Background(), g, m, req)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(legacy.Community) != fmt.Sprint(unified.Community) || legacy.Delta != unified.Delta {
		t.Fatalf("wrapper diverged: %v δ=%v vs %v δ=%v",
			legacy.Community, legacy.Delta, unified.Community, unified.Delta)
	}
	//lint:ignore SA1019 the wrapper contract itself is under test
	if _, err := VAC(g, m, 0, 3, BaselineKCore); err != nil {
		t.Errorf("VAC wrapper: %v", err)
	}
}

// TestRequestRoundTripsEverywhere is the acceptance criterion end to end:
// one Request answered by the library (Searcher.Search), the Engine, and
// the HTTP server returns the identical community and δ on every path.
func TestRequestRoundTripsEverywhere(t *testing.T) {
	g, _ := buildFigure1(t)
	ctx := context.Background()
	req := DefaultRequest(0)
	req.K = 3

	s, err := NewSearcher(MethodSEA)
	if err != nil {
		t.Fatal(err)
	}
	viaLibrary, err := s.Search(ctx, g, req)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(g, DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	viaEngine, err := eng.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewHTTPHandler(eng))
	defer srv.Close()
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/search", "application/json", strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP status %d", resp.StatusCode)
	}
	var viaHTTP struct {
		Community []NodeID `json:"community"`
		Delta     float64  `json:"delta"`
		Method    string   `json:"method"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&viaHTTP); err != nil {
		t.Fatal(err)
	}

	want := fmt.Sprint(viaLibrary.Community)
	if fmt.Sprint(viaEngine.Community) != want || fmt.Sprint(viaHTTP.Community) != want {
		t.Fatalf("round trip diverged:\nlibrary %v\nengine  %v\nhttp    %v",
			viaLibrary.Community, viaEngine.Community, viaHTTP.Community)
	}
	if viaEngine.Delta != viaLibrary.Delta || viaHTTP.Delta != viaLibrary.Delta {
		t.Fatalf("δ diverged: library %v engine %v http %v",
			viaLibrary.Delta, viaEngine.Delta, viaHTTP.Delta)
	}
	if viaHTTP.Method != "sea" {
		t.Fatalf("method lost on the wire: %+v", viaHTTP)
	}
}

// TestExecuteHonorsCancelledContext pins the public cancellation contract.
func TestExecuteHonorsCancelledContext(t *testing.T) {
	g, _ := buildFigure1(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := DefaultRequest(0)
	req.K = 3
	for _, m := range []Method{MethodSEA, MethodVAC, MethodEVAC} {
		req.Method = m
		if _, err := Execute(ctx, g, req); !errors.Is(err, context.Canceled) {
			t.Errorf("%v: want context.Canceled, got %v", m, err)
		}
	}
}

func TestCoreAndTrussHelpers(t *testing.T) {
	g, _ := buildFigure1(t)
	core := CoreDecompose(g)
	if len(core) != g.NumNodes() {
		t.Fatalf("coreness len = %d", len(core))
	}
	members := MaximalConnectedKCore(g, 0, 3)
	if members == nil {
		t.Fatal("no 3-core around the query")
	}
	if MaximalConnectedKTruss(g, 0, 3) == nil {
		t.Fatal("no 3-truss around the query")
	}
}

func TestHeterogeneousPipeline(t *testing.T) {
	b := NewHetGraphBuilder()
	author := b.NodeType("author")
	paper := b.NodeType("paper")
	writes := b.EdgeType("writes")
	var authors []NodeID
	for i := 0; i < 6; i++ {
		a := b.AddNode(author)
		b.SetTextAttrs(a, "topic")
		b.SetNumAttrs(a, float64(i))
		authors = append(authors, a)
	}
	// Clique of co-authorships among the first five authors.
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			p := b.AddNode(paper)
			b.AddEdge(authors[i], p, writes)
			b.AddEdge(authors[j], p, writes)
		}
	}
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	path, err := b.MetaPathByNames("author", "writes", "paper", "writes", "author")
	if err != nil {
		t.Fatal(err)
	}
	proj, err := Project(h, path)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Graph.NumNodes() != 6 {
		t.Fatalf("projection nodes = %d", proj.Graph.NumNodes())
	}
	req := DefaultRequest(proj.FromHet[authors[0]])
	req.K = 3
	res, err := Execute(context.Background(), proj.Graph, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Community) < 4 {
		t.Errorf("community = %v, want the co-author clique", res.Community)
	}
	// The isolated sixth author cannot be in it.
	for _, v := range res.Community {
		if proj.ToHet[v] == authors[5] {
			t.Error("isolated author in community")
		}
	}
}

func TestGraphFileRoundTripPublic(t *testing.T) {
	g, _ := buildFigure1(t)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Errorf("round trip changed graph: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
}

func TestGenerateDatasetPublic(t *testing.T) {
	d, err := GenerateDataset("facebook", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Graph.NumNodes() == 0 {
		t.Fatal("empty dataset")
	}
	hd, err := GenerateHetDataset("dblp", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if hd.Het.NumNodes() == 0 {
		t.Fatal("empty het dataset")
	}
	if _, err := GenerateDataset("bogus", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestSearchNoCommunityPublic(t *testing.T) {
	b := NewGraphBuilder(3, 0)
	b.AddEdge(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	req := DefaultRequest(0)
	req.K = 3
	if _, err := Execute(context.Background(), g, req); !errors.Is(err, ErrNoCommunity) {
		t.Errorf("err = %v, want ErrNoCommunity", err)
	}
	req.Method = MethodExact
	if _, err := Execute(context.Background(), g, req); !errors.Is(err, ErrNoCommunity) {
		t.Errorf("exact err = %v, want the same ErrNoCommunity", err)
	}
}
