package sea

// Integration tests exercising the public API end to end, the way the
// examples and a downstream user would.

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// buildFigure1 constructs the quickstart graph (Figure 1's movies).
func buildFigure1(t testing.TB) (*Graph, *Metric) {
	t.Helper()
	b := NewGraphBuilder(12, 2)
	attrs := [][]string{
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "action", "drama"}, {"movie", "action", "crime"},
	}
	nums := [][2]float64{
		{9.2, 1.6e6}, {9.0, 1.1e6}, {8.7, 1.0e6}, {8.3, 550e3},
		{8.3, 320e3}, {7.9, 280e3}, {8.3, 750e3}, {7.5, 300e3},
		{7.6, 360e3}, {8.2, 500e3}, {6.2, 6.7e3}, {6.5, 9e3},
	}
	for i := range attrs {
		b.SetTextAttrs(NodeID(i), attrs[i]...)
		b.SetNumAttrs(NodeID(i), nums[i][0], nums[i][1])
	}
	edges := [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 8}, {1, 2}, {1, 4}, {1, 8},
		{2, 3}, {2, 9}, {3, 9}, {4, 5}, {4, 8}, {5, 6}, {5, 7}, {6, 7},
		{2, 4}, {3, 5}, {6, 9}, {7, 9}, {0, 9}, {1, 3},
		{10, 11}, {10, 6}, {11, 7}, {10, 7}, {11, 6},
	}
	for _, e := range edges {
		b.AddEdge(NodeID(e[0]), NodeID(e[1]))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMetric(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

func TestQuickstartEndToEnd(t *testing.T) {
	g, m := buildFigure1(t)
	const q = 0
	dist := m.QueryDist(q)
	ex, err := ExactSearch(g, q, 3, dist, DefaultExactConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.K = 3
	opts.ErrorBound = 0.01
	res, err := Search(g, m, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Delta <= 0 || res.Delta <= 0 {
		t.Fatalf("δ: exact %v, sea %v", ex.Delta, res.Delta)
	}
	rel := math.Abs(res.Delta-ex.Delta) / ex.Delta
	if rel > 0.1 {
		t.Errorf("relative error %v too large on the quickstart graph", rel)
	}
	// The low-rated action movies must be excluded.
	for _, v := range res.Community {
		if v == 10 || v == 11 {
			t.Errorf("dissimilar movie %d in community", v)
		}
	}
}

func TestPublicExactMatchesInternalDelta(t *testing.T) {
	g, m := buildFigure1(t)
	dist := m.QueryDist(0)
	ex, err := ExactSearch(g, 0, 3, dist, DefaultExactConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := Delta(dist, ex.Community, 0); got != ex.Delta {
		t.Errorf("Delta recomputation %v != %v", got, ex.Delta)
	}
}

func TestBaselinesThroughPublicAPI(t *testing.T) {
	g, m := buildFigure1(t)
	if _, err := ACQ(g, 0, 3, BaselineKCore); err != nil {
		t.Errorf("ACQ: %v", err)
	}
	if _, err := LocATC(g, 0, 3, BaselineKCore); err != nil {
		t.Errorf("LocATC: %v", err)
	}
	if _, err := VAC(g, m, 0, 3, BaselineKCore); err != nil {
		t.Errorf("VAC: %v", err)
	}
	if _, err := EVAC(g, m, 0, 3, BaselineKCore, 1000); err != nil {
		t.Errorf("EVAC: %v", err)
	}
}

func TestCoreAndTrussHelpers(t *testing.T) {
	g, _ := buildFigure1(t)
	core := CoreDecompose(g)
	if len(core) != g.NumNodes() {
		t.Fatalf("coreness len = %d", len(core))
	}
	members := MaximalConnectedKCore(g, 0, 3)
	if members == nil {
		t.Fatal("no 3-core around the query")
	}
	if MaximalConnectedKTruss(g, 0, 3) == nil {
		t.Fatal("no 3-truss around the query")
	}
}

func TestHeterogeneousPipeline(t *testing.T) {
	b := NewHetGraphBuilder()
	author := b.NodeType("author")
	paper := b.NodeType("paper")
	writes := b.EdgeType("writes")
	var authors []NodeID
	for i := 0; i < 6; i++ {
		a := b.AddNode(author)
		b.SetTextAttrs(a, "topic")
		b.SetNumAttrs(a, float64(i))
		authors = append(authors, a)
	}
	// Clique of co-authorships among the first five authors.
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			p := b.AddNode(paper)
			b.AddEdge(authors[i], p, writes)
			b.AddEdge(authors[j], p, writes)
		}
	}
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	path, err := b.MetaPathByNames("author", "writes", "paper", "writes", "author")
	if err != nil {
		t.Fatal(err)
	}
	proj, err := Project(h, path)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Graph.NumNodes() != 6 {
		t.Fatalf("projection nodes = %d", proj.Graph.NumNodes())
	}
	m, err := NewMetric(proj.Graph, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.K = 3
	res, err := Search(proj.Graph, m, proj.FromHet[authors[0]], opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Community) < 4 {
		t.Errorf("community = %v, want the co-author clique", res.Community)
	}
	// The isolated sixth author cannot be in it.
	for _, v := range res.Community {
		if proj.ToHet[v] == authors[5] {
			t.Error("isolated author in community")
		}
	}
}

func TestGraphFileRoundTripPublic(t *testing.T) {
	g, _ := buildFigure1(t)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Errorf("round trip changed graph: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
}

func TestGenerateDatasetPublic(t *testing.T) {
	d, err := GenerateDataset("facebook", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Graph.NumNodes() == 0 {
		t.Fatal("empty dataset")
	}
	hd, err := GenerateHetDataset("dblp", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if hd.Het.NumNodes() == 0 {
		t.Fatal("empty het dataset")
	}
	if _, err := GenerateDataset("bogus", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestSearchNoCommunityPublic(t *testing.T) {
	b := NewGraphBuilder(3, 0)
	b.AddEdge(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMetric(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.K = 3
	if _, err := Search(g, m, 0, opts); !errors.Is(err, ErrNoCommunity) {
		t.Errorf("err = %v, want ErrNoCommunity", err)
	}
}
