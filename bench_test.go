package sea

// One benchmark per table and figure of the paper's evaluation (§VII), each
// delegating to the experiment runner that regenerates it, plus ablation
// benchmarks for the design decisions called out in DESIGN.md and
// micro-benchmarks for the hot substrate operations.
//
// The table/figure benchmarks run the miniature experiment configuration so
// `go test -bench=.` completes in minutes; `cmd/seabench` runs the same code
// at full scale.

import (
	"context"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/attr"
	"repro/internal/clique"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/query"
	"repro/internal/sampling"
	internalsea "repro/internal/sea"
	"repro/internal/stats"
	"repro/internal/truss"
	"repro/internal/ws"
)

// benchCfg is the miniature experiment configuration for benchmarks.
func benchCfg() experiments.Config {
	c := experiments.Quick()
	c.Queries = 2
	c.Scale = 0.1
	return c
}

var (
	benchOnce sync.Once
	benchData *dataset.Generated
	benchM    *attr.Metric
	benchQ    graph.NodeID
	benchDist []float64
)

// benchSetup generates one shared mid-size dataset for the micro and
// ablation benchmarks.
func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		d, err := dataset.Generate(dataset.Spec{
			Name: "bench", Nodes: 2000, MinCommunity: 16, MaxCommunity: 40,
			IntraDegree: 10, InterDegree: 0.8,
			TokensPerNode: 4, PoolSize: 6, Vocab: 160, NoiseProb: 0.15,
			NumDim: 2, NumSigma: 0.06, Seed: 7,
		})
		if err != nil {
			panic(err)
		}
		benchData = d
		m, err := attr.NewMetric(d.Graph, 0.5)
		if err != nil {
			panic(err)
		}
		benchM = m
		benchQ = d.QueryNodes(1, 6, 3)[0]
		benchDist = m.QueryDist(benchQ)
	})
}

// --- Tables and figures -------------------------------------------------

func BenchmarkTable1DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchCfg(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// fig5Rows runs the Figure-5 comparison once per iteration on the smallest
// dataset so the a/b/c views stay cheap.
func fig5Rows(b *testing.B) []experiments.MethodRow {
	b.Helper()
	d, err := dataset.Homogeneous("facebook", 0.15)
	if err != nil {
		b.Fatal(err)
	}
	rows, err := benchCfg().RunMethods(d, false)
	if err != nil {
		b.Fatal(err)
	}
	return rows
}

func BenchmarkFig5aAttributeDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := fig5Rows(b)
		for _, r := range rows {
			if r.Delta < 0 {
				b.Fatal("negative δ")
			}
		}
	}
}

func BenchmarkFig5bRelativeError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := fig5Rows(b)
		for _, r := range rows {
			if r.RelErr < 0 {
				b.Fatal("negative error")
			}
		}
	}
}

func BenchmarkFig5cResponseTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := fig5Rows(b)
		for _, r := range rows {
			if r.TimeMS < 0 {
				b.Fatal("negative time")
			}
		}
	}
}

func BenchmarkFig5dStepBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5d(benchCfg(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2CrossMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(benchCfg(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3F1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(benchCfg(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6EgoNetworks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(benchCfg(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4Pruning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(benchCfg(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5Heterogeneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(benchCfg(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7SizeBounded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(benchCfg(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Sensitivity(b *testing.B) {
	cfg := benchCfg()
	cfg.Queries = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table6(benchCfg(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Gamma(b *testing.B) {
	cfg := benchCfg()
	cfg.Queries = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalability(b *testing.B) {
	cfg := benchCfg()
	cfg.Queries = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Scalability(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md design decisions) ------------------------------

// BenchmarkAblationCloneVsRollback compares rollback-based backtracking
// against cloning the k-core maintenance structure per state.
func BenchmarkAblationCloneVsRollback(b *testing.B) {
	benchSetup(b)
	members := kcore.MaximalConnectedKCore(benchData.Graph, benchQ, 6)
	if members == nil {
		b.Skip("query hosts no 6-core")
	}
	b.Run("rollback", func(b *testing.B) {
		sub, err := kcore.NewSub(benchData.Graph, benchQ, 6, members)
		if err != nil {
			b.Fatal(err)
		}
		var buf []graph.NodeID
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = sub.Members(buf[:0])
			for _, v := range buf {
				if v == benchQ {
					continue
				}
				removed, _ := sub.RemoveCascade(v)
				sub.Restore(removed)
			}
		}
	})
	b.Run("clone", func(b *testing.B) {
		sub, err := kcore.NewSub(benchData.Graph, benchQ, 6, members)
		if err != nil {
			b.Fatal(err)
		}
		var buf []graph.NodeID
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = sub.Members(buf[:0])
			for _, v := range buf {
				if v == benchQ {
					continue
				}
				c := sub.Clone()
				c.RemoveCascade(v)
			}
		}
	})
}

// BenchmarkAblationGqFrontier compares best-first against plain-BFS Gq
// construction.
func BenchmarkAblationGqFrontier(b *testing.B) {
	benchSetup(b)
	const size = 800
	b.Run("best-first", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sampling.BuildGq(benchData.Graph, benchQ, benchDist, size)
		}
	})
	b.Run("bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sampling.BuildGqBFS(benchData.Graph, benchQ, size)
		}
	})
}

// BenchmarkAblationSampling compares exponential-keys weighted sampling
// against roulette-wheel rejection sampling.
func BenchmarkAblationSampling(b *testing.B) {
	benchSetup(b)
	gq := sampling.BuildGq(benchData.Graph, benchQ, benchDist, 800)
	probs := sampling.Probabilities(gq, benchDist)
	b.Run("exponential-keys", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			sampling.WeightedSample(gq, probs, 160, benchQ, rng)
		}
	})
	b.Run("roulette", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			sampling.RouletteSample(gq, probs, 160, benchQ, rng)
		}
	})
}

// BenchmarkAblationBLBVsBootstrap compares BLB against a full bootstrap for
// the MoE computation.
func BenchmarkAblationBLBVsBootstrap(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	values := make([]float64, 4000)
	for i := range values {
		values[i] = rng.Float64()
	}
	b.Run("blb", func(b *testing.B) {
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < b.N; i++ {
			if _, err := stats.BLB(values, stats.DefaultBLB(), rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bootstrap", func(b *testing.B) {
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < b.N; i++ {
			stats.Bootstrap(values, 50, rng)
		}
	})
}

// BenchmarkAblationStoppingRule compares the default full-trajectory search
// against the paper's literal first-satisfy stopping rule (Options.NoRefine).
func BenchmarkAblationStoppingRule(b *testing.B) {
	benchSetup(b)
	run := func(b *testing.B, noRefine bool) {
		opts := internalsea.DefaultOptions()
		opts.K = 6
		opts.MaxRounds = 2
		opts.NoRefine = noRefine
		for i := 0; i < b.N; i++ {
			opts.Seed = int64(i + 1)
			if _, err := internalsea.SearchWithDist(benchData.Graph, benchDist, benchQ, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("refine", func(b *testing.B) { run(b, false) })
	b.Run("first-satisfy", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationModelRanking measures the §II model hierarchy
// k-core ⪯ k-truss ⪯ k-clique: extraction cost of each structural model
// around the same query.
func BenchmarkAblationModelRanking(b *testing.B) {
	benchSetup(b)
	b.Run("k-core", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if kcore.MaximalConnectedKCore(benchData.Graph, benchQ, 6) == nil {
				b.Skip("no 6-core")
			}
		}
	})
	b.Run("k-truss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if truss.MaximalConnectedKTruss(benchData.Graph, benchQ, 6) == nil {
				b.Skip("no 6-truss")
			}
		}
	})
	b.Run("k-clique", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := clique.Community(benchData.Graph, benchQ, 6, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Serving engine -------------------------------------------------------

// BenchmarkEngineColdVsCached quantifies the engine's amortization of
// per-query serving cost. "cold" is the library path a naive server would
// pay per request: metric construction, distance vector, search. "shared"
// reuses the engine's precomputed state but forces a result-cache miss
// (fresh seed per iteration), isolating the distance-cache benefit.
// "cached" is the repeated-query fast path; the acceptance criterion is
// cached ≥ 5× faster than cold (in practice orders of magnitude).
func BenchmarkEngineColdVsCached(b *testing.B) {
	benchSetup(b)
	opts := internalsea.DefaultOptions()
	opts.K = 6
	opts.MaxRounds = 2
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := attr.NewMetric(benchData.Graph, 0.5)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := internalsea.Search(benchData.Graph, m, benchQ, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		e, err := engine.New(benchData.Graph, engine.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		req := query.FromOptions(benchQ, opts)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req.Seed = int64(i + 1) // distinct key: result cache misses, dist cache hits
			if _, err := e.Query(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		e, err := engine.New(benchData.Graph, engine.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		req := query.FromOptions(benchQ, opts)
		if _, err := e.Query(ctx, req); err != nil { // warm
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Query(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineThroughput drives a repeated-query batch workload — 64
// requests over 8 distinct query nodes per iteration — through the engine's
// worker pool, the shape of traffic a community-search service sees.
func BenchmarkEngineThroughput(b *testing.B) {
	benchSetup(b)
	e, err := engine.New(benchData.Graph, engine.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	opts := internalsea.DefaultOptions()
	opts.K = 2
	opts.MaxRounds = 2
	distinct := benchData.QueryNodes(8, 2, 21)
	reqs := make([]query.Request, 64)
	for i := range reqs {
		reqs[i] = query.FromOptions(distinct[i%len(distinct)], opts)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items, err := e.Batch(ctx, reqs)
		if err != nil {
			b.Fatal(err)
		}
		for _, it := range items {
			if it.Err != nil {
				b.Fatal(it.Err)
			}
		}
	}
	b.ReportMetric(float64(len(reqs)), "queries/op")
}

// --- Substrate alloc-regression guards -----------------------------------
//
// Each BenchmarkSubstrate* benchmark doubles as a CI guard: before timing,
// it measures steady-state allocations with testing.AllocsPerRun against a
// warmed workspace and FAILS if the count regresses above the committed
// ceiling (~zero for the pooled hot paths). CI runs them via
// `go test -bench=BenchmarkSubstrate -benchtime=1x` (see Makefile
// bench-substrate).

// guardAllocs fails the benchmark when fn allocates more than limit per run
// in the steady state.
func guardAllocs(b *testing.B, limit float64, fn func()) {
	b.Helper()
	fn() // warm buffers and pools outside the measurement
	if allocs := testing.AllocsPerRun(20, fn); allocs > limit {
		b.Fatalf("allocs/op = %v, regression guard is %v", allocs, limit)
	}
}

func BenchmarkSubstrateBuildGq(b *testing.B) {
	benchSetup(b)
	w := ws.Get()
	defer w.Release()
	const size = 800
	dst := make([]graph.NodeID, 0, size)
	guardAllocs(b, 0, func() {
		dst = sampling.BuildGqInto(dst[:0], benchData.Graph, benchQ, benchDist, size, w)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = sampling.BuildGqInto(dst[:0], benchData.Graph, benchQ, benchDist, size, w)
	}
}

func BenchmarkSubstrateInducedCSR(b *testing.B) {
	benchSetup(b)
	w := ws.Get()
	defer w.Release()
	nodes := sampling.BuildGqInto(nil, benchData.Graph, benchQ, benchDist, 800, w)
	guardAllocs(b, 0, func() {
		benchData.Graph.InducedStructure(nodes, &w.Sub)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchData.Graph.InducedStructure(nodes, &w.Sub)
	}
}

func BenchmarkSubstrateQueryDist(b *testing.B) {
	benchSetup(b)
	dst := make([]float64, benchData.Graph.NumNodes())
	guardAllocs(b, 0, func() {
		dst = benchM.QueryDistInto(dst, benchQ)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = benchM.QueryDistInto(dst, benchQ)
	}
}

func BenchmarkSubstrateWeightedSample(b *testing.B) {
	benchSetup(b)
	w := ws.Get()
	defer w.Release()
	gq := sampling.BuildGqInto(nil, benchData.Graph, benchQ, benchDist, 800, w)
	probs := sampling.ProbabilitiesInto(nil, gq, benchDist)
	rng := rand.New(rand.NewSource(1))
	dst := make([]graph.NodeID, 0, 160)
	guardAllocs(b, 0, func() {
		dst = sampling.WeightedSampleInto(dst[:0], gq, probs, 160, benchQ, rng, w)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = sampling.WeightedSampleInto(dst[:0], gq, probs, 160, benchQ, rng, w)
	}
}

func BenchmarkSubstrateKCoreExtract(b *testing.B) {
	benchSetup(b)
	w := ws.Get()
	defer w.Release()
	var dst []graph.NodeID
	if dst = kcore.MaximalConnectedKCoreInto(dst[:0], benchData.Graph, benchQ, 6, w); dst == nil {
		b.Skip("query hosts no 6-core")
	}
	guardAllocs(b, 0, func() {
		dst = kcore.MaximalConnectedKCoreInto(dst[:0], benchData.Graph, benchQ, 6, w)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = kcore.MaximalConnectedKCoreInto(dst[:0], benchData.Graph, benchQ, 6, w)
	}
}

func BenchmarkSubstrateInKCoreSet(b *testing.B) {
	benchSetup(b)
	w := ws.Get()
	defer w.Release()
	members := kcore.MaximalConnectedKCoreInto(nil, benchData.Graph, benchQ, 6, w)
	if members == nil {
		b.Skip("query hosts no 6-core")
	}
	guardAllocs(b, 0, func() {
		kcore.InKCoreSetWS(benchData.Graph, members, 6, w)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kcore.InKCoreSetWS(benchData.Graph, members, 6, w)
	}
}

// --- Substrate micro-benchmarks ------------------------------------------

func BenchmarkCoreDecompose(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kcore.Decompose(benchData.Graph)
	}
}

func BenchmarkTrussDecompose(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		truss.Decompose(benchData.Graph)
	}
}

func BenchmarkMetricQueryDist(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchM.QueryDist(benchQ)
	}
}

func BenchmarkSEASearch(b *testing.B) {
	benchSetup(b)
	opts := internalsea.DefaultOptions()
	opts.K = 6
	opts.MaxRounds = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		if _, err := internalsea.SearchWithDist(benchData.Graph, benchDist, benchQ, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactSearch(b *testing.B) {
	benchSetup(b)
	cfg := exact.DefaultConfig()
	cfg.MaxStates = 5000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exact.Search(benchData.Graph, benchQ, 6, benchDist, cfg); err != nil && err != exact.ErrBudgetExhausted {
			b.Fatal(err)
		}
	}
}
