// Command datagen writes a generated benchmark analog to a file, in the
// text exchange format that seacli -load and sea.LoadGraph read, in the
// packed snapshot format that seaserve boots from with zero recomputation,
// or both.
//
// Usage:
//
//	datagen -dataset facebook -scale 0.5 -out facebook.txt
//	datagen -dataset facebook -scale 0.5 -pack facebook.snap
//	datagen -dataset github -out github.txt -pack github.snap
package main

import (
	"flag"
	"fmt"
	"os"

	sealib "repro"
)

func main() {
	var (
		dsName = flag.String("dataset", "facebook", "dataset analog name")
		scale  = flag.Float64("scale", 1.0, "scale factor")
		out    = flag.String("out", "", "text-format output path (default <dataset>.txt when -pack is unset)")
		pack   = flag.String("pack", "", "also pack a snapshot (graph + precomputed indexes) to this path")
		truth  = flag.Bool("truth", false, "also print the planted communities to stderr")
	)
	flag.Parse()
	if *out == "" && *pack == "" {
		*out = *dsName + ".txt"
	}
	d, err := sealib.GenerateDataset(*dsName, *scale)
	if err != nil {
		fail(err)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := sealib.WriteGraph(f, d.Graph); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s: %d nodes, %d edges, %d planted communities\n",
			*out, d.Graph.NumNodes(), d.Graph.NumEdges(), len(d.Communities))
	}
	if *pack != "" {
		size, err := sealib.PackSnapshotFile(d.Graph, *pack)
		if err != nil {
			fail(err)
		}
		fmt.Printf("packed %s: %d nodes, %d edges, %d bytes\n",
			*pack, d.Graph.NumNodes(), d.Graph.NumEdges(), size)
	}
	if *truth {
		for i, members := range d.Communities {
			fmt.Fprintf(os.Stderr, "community %d: %v\n", i, members)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
