// Command datagen writes a generated benchmark analog to a file in the
// exchange format that seacli -load and sea.LoadGraph read.
//
// Usage:
//
//	datagen -dataset facebook -scale 0.5 -out facebook.txt
package main

import (
	"flag"
	"fmt"
	"os"

	sealib "repro"
)

func main() {
	var (
		dsName = flag.String("dataset", "facebook", "dataset analog name")
		scale  = flag.Float64("scale", 1.0, "scale factor")
		out    = flag.String("out", "", "output path (default <dataset>.txt)")
		truth  = flag.Bool("truth", false, "also print the planted communities to stderr")
	)
	flag.Parse()
	if *out == "" {
		*out = *dsName + ".txt"
	}
	d, err := sealib.GenerateDataset(*dsName, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := sealib.WriteGraph(f, d.Graph); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d nodes, %d edges, %d planted communities\n",
		*out, d.Graph.NumNodes(), d.Graph.NumEdges(), len(d.Communities))
	if *truth {
		for i, members := range d.Communities {
			fmt.Fprintf(os.Stderr, "community %d: %v\n", i, members)
		}
	}
}
