// Command seabench regenerates the paper's tables and figures on the
// synthetic dataset analogs.
//
// Usage:
//
//	seabench [-exp table1,fig5,...|all] [-scale 0.5] [-queries 20] [-k 6]
//	seabench -exp fig5,scalability -out BENCH_fig5.json
//	seabench -out BENCH_5.json -compare BENCH_4.json
//
// Experiments: table1, fig5, fig5d, table2, table3, fig6, table4, table5,
// fig7, fig8, table6, fig10, scalability.
//
// -out (alias: -json) additionally writes one machine-readable record per
// experiment — name, wall time, mean δ where the experiment measures one,
// and the full typed result rows. The repository convention is to commit
// one such file per performance-relevant PR as BENCH_<pr>.json (produced by
// `make bench-json`), forming a recorded perf trajectory.
//
// -compare reads a previous run's records and, after this run, prints a
// per-experiment wall-clock ratio table (new/old; below 1.0 is faster), so
// regressions against the committed trajectory are one command away
// (`make bench-compare`). The process exits 0 regardless of ratios — the
// judgment call stays with the reader; CI-enforced regression bounds live
// in the BenchmarkSubstrate alloc guards instead, which are not subject to
// machine-speed noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

// runner dispatches one experiment by name; fn returns the experiment's
// typed result rows for the -json export.
type runner struct {
	name string
	desc string
	fn   func(experiments.Config, io.Writer) (any, error)
}

func wrap[T any](fn func(experiments.Config, io.Writer) (T, error)) func(experiments.Config, io.Writer) (any, error) {
	return func(cfg experiments.Config, w io.Writer) (any, error) {
		return fn(cfg, w)
	}
}

// benchRecord is one experiment's machine-readable outcome.
type benchRecord struct {
	Experiment  string  `json:"experiment"`
	WallSeconds float64 `json:"wall_seconds"`
	// MeanDelta is the mean attribute distance δ over the experiment's
	// method rows, when the experiment measures δ at all.
	MeanDelta *float64 `json:"mean_delta,omitempty"`
	Result    any      `json:"result,omitempty"`
}

// meanDelta extracts the mean δ from the result shapes that carry one
// (today only Fig5's method rows measure δ directly).
func meanDelta(result any) *float64 {
	r, ok := result.(*experiments.Fig5Result)
	if !ok || len(r.Rows) == 0 {
		return nil
	}
	rows := r.Rows
	sum := 0.0
	for _, row := range rows {
		sum += row.Delta
	}
	m := sum / float64(len(rows))
	return &m
}

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiments or 'all'")
		scale   = flag.Float64("scale", 0.5, "dataset scale factor (1.0 = full profile sizes)")
		queries = flag.Int("queries", 10, "queries per dataset (paper: 200)")
		k       = flag.Int("k", 6, "structural parameter k")
		seed    = flag.Int64("seed", 42, "random seed")
		budget  = flag.Int64("budget", 30000, "state budget for the exact reference")
		jsonOut = flag.String("json", "", "also write machine-readable results to this file (alias of -out)")
		outFile = flag.String("out", "", "write machine-readable results to this file (convention: BENCH_<pr>.json)")
		compare = flag.String("compare", "", "prior BENCH_*.json to print per-experiment wall-clock ratios against")
	)
	flag.Parse()
	if *jsonOut != "" && *outFile != "" && *jsonOut != *outFile {
		fmt.Fprintln(os.Stderr, "seabench: -json and -out given with different paths; use one (-json is a deprecated alias of -out)")
		os.Exit(2)
	}
	if *outFile == "" {
		*outFile = *jsonOut
	}

	var oldRecords []benchRecord
	if *compare != "" {
		var err error
		oldRecords, err = readJSONRecords(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seabench: -compare: %v\n", err)
			os.Exit(2)
		}
	}

	cfg := experiments.Default()
	cfg.Scale = *scale
	cfg.Queries = *queries
	cfg.K = *k
	cfg.Seed = *seed
	cfg.ExactBudget = *budget

	runners := []runner{
		{"table1", "dataset statistics", wrap(experiments.Table1)},
		{"fig5", "effectiveness & efficiency (Fig 5a-c)", wrap(experiments.Fig5)},
		{"fig5d", "SEA step breakdown", wrap(experiments.Fig5d)},
		{"table2", "cross-metric cohesiveness", wrap(experiments.Table2)},
		{"table3", "F1 vs ground truth", wrap(experiments.Table3)},
		{"fig6", "F1 per ego network", wrap(experiments.Fig6)},
		{"table4", "pruning ablation", wrap(experiments.Table4)},
		{"table5", "heterogeneous + truss", wrap(experiments.Table5)},
		{"fig7", "size-bounded CS", wrap(experiments.Fig7)},
		{"fig8", "parameter sensitivity", wrap(experiments.Fig8)},
		{"table6", "case study rounds", wrap(experiments.Table6)},
		{"fig10", "effect of gamma", wrap(experiments.Fig10)},
		{"scalability", "SEA vs Exact as the graph grows", wrap(experiments.Scalability)},
	}

	want := map[string]bool{}
	if *exps != "all" {
		for _, name := range strings.Split(*exps, ",") {
			want[strings.TrimSpace(name)] = true
		}
		for name := range want {
			if !knownExperiment(runners, name) {
				fmt.Fprintf(os.Stderr, "seabench: unknown experiment %q\n", name)
				os.Exit(2)
			}
		}
	}

	var records []benchRecord
	for _, r := range runners {
		if *exps != "all" && !want[r.name] {
			continue
		}
		fmt.Printf("\n### %s — %s\n", r.name, r.desc)
		start := time.Now()
		result, err := r.fn(cfg, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seabench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		fmt.Printf("(%s completed in %v)\n", r.name, wall.Round(time.Millisecond))
		records = append(records, benchRecord{
			Experiment:  r.name,
			WallSeconds: wall.Seconds(),
			MeanDelta:   meanDelta(result),
			Result:      result,
		})
	}
	if *outFile != "" {
		if err := writeJSONRecords(*outFile, records); err != nil {
			fmt.Fprintf(os.Stderr, "seabench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d record(s) to %s\n", len(records), *outFile)
	}
	if *compare != "" {
		printComparison(os.Stdout, *compare, oldRecords, records)
	}
}

// printComparison renders the per-experiment wall-clock ratio table of this
// run against a previous BENCH_*.json. Experiments present in only one of
// the two runs are listed without a ratio.
func printComparison(w io.Writer, oldPath string, old, cur []benchRecord) {
	oldBy := make(map[string]benchRecord, len(old))
	for _, r := range old {
		oldBy[r.Experiment] = r
	}
	fmt.Fprintf(w, "\n### wall-clock vs %s (ratio < 1.0 is faster)\n", oldPath)
	fmt.Fprintf(w, "%-12s %12s %12s %8s\n", "experiment", "old (s)", "new (s)", "ratio")
	seen := map[string]bool{}
	for _, r := range cur {
		seen[r.Experiment] = true
		o, ok := oldBy[r.Experiment]
		if !ok || o.WallSeconds <= 0 {
			fmt.Fprintf(w, "%-12s %12s %12.3f %8s\n", r.Experiment, "-", r.WallSeconds, "new")
			continue
		}
		fmt.Fprintf(w, "%-12s %12.3f %12.3f %8.2f\n",
			r.Experiment, o.WallSeconds, r.WallSeconds, r.WallSeconds/o.WallSeconds)
	}
	for _, o := range old {
		if !seen[o.Experiment] {
			fmt.Fprintf(w, "%-12s %12.3f %12s %8s\n", o.Experiment, o.WallSeconds, "-", "gone")
		}
	}
}

// readJSONRecords loads a previous run's records; only the experiment names
// and wall times are consulted, so records written by older seabench
// versions with different Result shapes still compare.
func readJSONRecords(path string) ([]benchRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var records []benchRecord
	if err := json.NewDecoder(f).Decode(&records); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return records, nil
}

func writeJSONRecords(path string, records []benchRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func knownExperiment(rs []runner, name string) bool {
	for _, r := range rs {
		if r.name == name {
			return true
		}
	}
	return false
}
