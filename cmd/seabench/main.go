// Command seabench regenerates the paper's tables and figures on the
// synthetic dataset analogs.
//
// Usage:
//
//	seabench [-exp table1,fig5,...|all] [-scale 0.5] [-queries 20] [-k 6]
//
// Experiments: table1, fig5, fig5d, table2, table3, fig6, table4, table5,
// fig7, fig8, table6, fig10.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

// runner dispatches one experiment by name.
type runner struct {
	name string
	desc string
	fn   func(experiments.Config, io.Writer) error
}

func wrap[T any](fn func(experiments.Config, io.Writer) (T, error)) func(experiments.Config, io.Writer) error {
	return func(cfg experiments.Config, w io.Writer) error {
		_, err := fn(cfg, w)
		return err
	}
}

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiments or 'all'")
		scale   = flag.Float64("scale", 0.5, "dataset scale factor (1.0 = full profile sizes)")
		queries = flag.Int("queries", 10, "queries per dataset (paper: 200)")
		k       = flag.Int("k", 6, "structural parameter k")
		seed    = flag.Int64("seed", 42, "random seed")
		budget  = flag.Int64("budget", 30000, "state budget for the exact reference")
	)
	flag.Parse()

	cfg := experiments.Default()
	cfg.Scale = *scale
	cfg.Queries = *queries
	cfg.K = *k
	cfg.Seed = *seed
	cfg.ExactBudget = *budget

	runners := []runner{
		{"table1", "dataset statistics", wrap(experiments.Table1)},
		{"fig5", "effectiveness & efficiency (Fig 5a-c)", func(c experiments.Config, w io.Writer) error {
			_, err := experiments.Fig5(c, w)
			return err
		}},
		{"fig5d", "SEA step breakdown", wrap(experiments.Fig5d)},
		{"table2", "cross-metric cohesiveness", wrap(experiments.Table2)},
		{"table3", "F1 vs ground truth", wrap(experiments.Table3)},
		{"fig6", "F1 per ego network", wrap(experiments.Fig6)},
		{"table4", "pruning ablation", wrap(experiments.Table4)},
		{"table5", "heterogeneous + truss", wrap(experiments.Table5)},
		{"fig7", "size-bounded CS", wrap(experiments.Fig7)},
		{"fig8", "parameter sensitivity", wrap(experiments.Fig8)},
		{"table6", "case study rounds", wrap(experiments.Table6)},
		{"fig10", "effect of gamma", wrap(experiments.Fig10)},
		{"scalability", "SEA vs Exact as the graph grows", wrap(experiments.Scalability)},
	}

	want := map[string]bool{}
	if *exps != "all" {
		for _, name := range strings.Split(*exps, ",") {
			want[strings.TrimSpace(name)] = true
		}
		for name := range want {
			if !knownExperiment(runners, name) {
				fmt.Fprintf(os.Stderr, "seabench: unknown experiment %q\n", name)
				os.Exit(2)
			}
		}
	}

	for _, r := range runners {
		if *exps != "all" && !want[r.name] {
			continue
		}
		fmt.Printf("\n### %s — %s\n", r.name, r.desc)
		start := time.Now()
		if err := r.fn(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "seabench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n", r.name, time.Since(start).Round(time.Millisecond))
	}
}

func knownExperiment(rs []runner, name string) bool {
	for _, r := range rs {
		if r.name == name {
			return true
		}
	}
	return false
}
