// Command seacli runs one community-search query against a generated
// benchmark analog or a graph file in the exchange format.
//
// Usage:
//
//	seacli -dataset facebook -q 10 -k 6 -e 0.02
//	seacli -load graph.txt -q 0 -k 4 -model truss -size 10,30 -method sea
//
// Methods: sea (default), exact, acq, locatc, vac.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	sealib "repro"
)

func main() {
	var (
		dsName  = flag.String("dataset", "facebook", "generated dataset analog name")
		scale   = flag.Float64("scale", 0.5, "dataset scale factor")
		load    = flag.String("load", "", "load a graph file instead of generating")
		q       = flag.Int("q", -1, "query node ID (-1 picks one from a planted community)")
		k       = flag.Int("k", 6, "structural parameter k")
		e       = flag.Float64("e", 0.02, "error bound e")
		conf    = flag.Float64("confidence", 0.95, "confidence level 1-alpha")
		gamma   = flag.Float64("gamma", 0.5, "attribute balance factor")
		model   = flag.String("model", "core", "community model: core or truss")
		size    = flag.String("size", "", "size bound lo,hi (empty = unbounded)")
		method  = flag.String("method", "sea", "sea, exact, acq, locatc, or vac")
		seed    = flag.Int64("seed", 1, "random seed")
		maxAttr = flag.Int("show", 20, "max community members to print")
	)
	flag.Parse()

	g, query, err := loadOrGenerate(*load, *dsName, *scale, *q, *k, *seed)
	if err != nil {
		fail(err)
	}
	m, err := sealib.NewMetric(g, *gamma)
	if err != nil {
		fail(err)
	}
	fmt.Printf("graph: %d nodes, %d edges; query node %d, k=%d, method=%s\n",
		g.NumNodes(), g.NumEdges(), query, *k, *method)

	var members []sealib.NodeID
	switch *method {
	case "sea":
		opts := sealib.DefaultOptions()
		opts.K = *k
		opts.ErrorBound = *e
		opts.Confidence = *conf
		opts.Seed = *seed
		if *model == "truss" {
			opts.Model = sealib.KTruss
		}
		if *size != "" {
			if _, err := fmt.Sscanf(*size, "%d,%d", &opts.SizeLo, &opts.SizeHi); err != nil {
				fail(fmt.Errorf("bad -size %q: %v", *size, err))
			}
		}
		res, err := sealib.Search(g, m, query, opts)
		if err != nil {
			fail(err)
		}
		members = res.Community
		fmt.Printf("δ* = %.4f, CI = %v, satisfied = %v, rounds = %d\n",
			res.Delta, res.CI, res.Satisfied, len(res.Rounds))
		fmt.Printf("steps: S1 %v, S2 %v, S3 %v; |Gq| = %d, |S| = %d\n",
			res.Steps.Sampling, res.Steps.Estimation, res.Steps.Incremental,
			res.GqSize, res.SampleSize)
	case "exact":
		dist := m.QueryDist(query)
		cfg := sealib.DefaultExactConfig()
		cfg.MaxStates = 200000
		res, err := sealib.ExactSearch(g, query, *k, dist, cfg)
		if err != nil && !errors.Is(err, sealib.ErrBudgetExhausted) {
			fail(err)
		}
		if errors.Is(err, sealib.ErrBudgetExhausted) {
			fmt.Println("note: state budget exhausted; best community found so far")
		}
		members = res.Community
		fmt.Printf("δ = %.4f, states explored = %d\n", res.Delta, res.Stats.States)
	case "acq":
		members, err = sealib.ACQ(g, query, *k, baselineModel(*model))
	case "locatc":
		members, err = sealib.LocATC(g, query, *k, baselineModel(*model))
	case "vac":
		members, err = sealib.VAC(g, m, query, *k, baselineModel(*model))
	default:
		fail(fmt.Errorf("unknown method %q", *method))
	}
	if err != nil {
		fail(err)
	}

	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	fmt.Printf("community (%d nodes):\n", len(members))
	for i, v := range members {
		if i >= *maxAttr {
			fmt.Printf("  … and %d more\n", len(members)-i)
			break
		}
		fmt.Printf("  %6d  text=%s  num=%v  f(v,q)=%.4f\n",
			v, textOf(g, v), g.NumAttrs(v), m.Distance(v, query))
	}
}

func baselineModel(model string) sealib.BaselineModel {
	if model == "truss" {
		return sealib.BaselineKTruss
	}
	return sealib.BaselineKCore
}

func loadOrGenerate(load, dsName string, scale float64, q, k int, seed int64) (*sealib.Graph, sealib.NodeID, error) {
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		g, err := sealib.LoadGraph(f)
		if err != nil {
			return nil, 0, err
		}
		if q < 0 {
			return nil, 0, fmt.Errorf("-q is required with -load")
		}
		return g, sealib.NodeID(q), nil
	}
	d, err := sealib.GenerateDataset(dsName, scale)
	if err != nil {
		return nil, 0, err
	}
	if q >= 0 {
		return d.Graph, sealib.NodeID(q), nil
	}
	return d.Graph, d.QueryNodes(1, k, seed)[0], nil
}

func textOf(g *sealib.Graph, v sealib.NodeID) string {
	toks := g.TextAttrs(v)
	if len(toks) == 0 {
		return "-"
	}
	names := make([]string, len(toks))
	for i, t := range toks {
		names[i] = g.Dict().Name(t)
	}
	return strings.Join(names, ",")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "seacli:", err)
	os.Exit(1)
}
