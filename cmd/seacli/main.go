// Command seacli runs one community-search query against a generated
// benchmark analog or a graph file (text exchange format or packed
// snapshot). The flags serialize directly into a sea.Request, so the CLI
// speaks exactly the spec the library, the Engine and the HTTP server
// answer.
//
// Usage:
//
//	seacli -dataset facebook -q 10 -k 6 -e 0.02
//	seacli -load graph.txt -q 0 -k 4 -model truss -size 10,30 -method sea
//	seacli -load graph.snap -q 12 -method exact -max-states 200000 -timeout 5s
//	seacli pack -load graph.txt -out graph.snap
//	seacli mutate -addr http://127.0.0.1:8080 -add-edge 3,9 -set-attr "4=db,ml" -compact
//
// -method accepts every registered searcher: sea, exact, acq, locatc, vac,
// evac, structural.
//
// The pack subcommand converts a text-format graph (or a generated analog)
// into a versioned, checksummed binary snapshot carrying the full serving
// state — graph, attribute dictionary, and the precomputed admission
// indexes — so seaserve boots from it with zero parsing or recomputation.
//
// The mutate subcommand posts a live mutation batch (add/remove edges,
// append nodes, replace attributes) to a running seaserve; the server
// applies it in place with incremental index maintenance and scoped cache
// invalidation, journals it when mounted with -journal, and -compact folds
// the journal into a fresh snapshot.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	sealib "repro"
)

// cliFlags is the flag set of one invocation, kept as a struct so tests can
// exercise the flags → Request serialization without running a search.
type cliFlags struct {
	dsName  string
	scale   float64
	load    string
	q       int
	k       int
	e       float64
	conf    float64
	gamma   float64
	model   string
	size    string
	method  string
	seed    int64
	states  int64
	timeout time.Duration
	show    int
}

func parseFlags(fs *flag.FlagSet, args []string) (*cliFlags, error) {
	f := &cliFlags{}
	fs.StringVar(&f.dsName, "dataset", "facebook", "generated dataset analog name")
	fs.Float64Var(&f.scale, "scale", 0.5, "dataset scale factor")
	fs.StringVar(&f.load, "load", "", "load a graph file instead of generating")
	fs.IntVar(&f.q, "q", -1, "query node ID (-1 picks one from a planted community)")
	fs.IntVar(&f.k, "k", 6, "structural parameter k")
	fs.Float64Var(&f.e, "e", 0.02, "error bound e")
	fs.Float64Var(&f.conf, "confidence", 0.95, "confidence level 1-alpha")
	fs.Float64Var(&f.gamma, "gamma", 0.5, "attribute balance factor")
	fs.StringVar(&f.model, "model", "core", "community model: core or truss")
	fs.StringVar(&f.size, "size", "", "size bound lo,hi (empty = unbounded)")
	fs.StringVar(&f.method, "method", "sea", "search method: "+strings.Join(methodNames(), ", "))
	fs.Int64Var(&f.seed, "seed", 1, "random seed")
	fs.Int64Var(&f.states, "max-states", 200000, "state budget for exact/evac (0 = unlimited)")
	fs.DurationVar(&f.timeout, "timeout", 0, "cancel the search after this long (0 = none)")
	fs.IntVar(&f.show, "show", 20, "max community members to print")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return f, nil
}

func methodNames() []string {
	ms := sealib.Methods()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.String()
	}
	return names
}

// buildRequest serializes the flags into the unified Request. The query
// node is filled in by the caller once the graph is known (the -q flag may
// delegate the choice to the dataset's planted communities).
func (f *cliFlags) buildRequest(q sealib.NodeID) (sealib.Request, error) {
	req := sealib.DefaultRequest(q)
	req.K = f.k
	req.ErrorBound = f.e
	req.Confidence = f.conf
	req.Seed = f.seed
	req.MaxStates = f.states
	method, err := sealib.ParseMethod(f.method)
	if err != nil {
		return req, err
	}
	req.Method = method
	if err := req.Model.UnmarshalText([]byte(f.model)); err != nil {
		return req, fmt.Errorf("bad -model %q: %w", f.model, err)
	}
	if f.size != "" {
		if _, err := fmt.Sscanf(f.size, "%d,%d", &req.SizeLo, &req.SizeHi); err != nil {
			return req, fmt.Errorf("bad -size %q: %v", f.size, err)
		}
	}
	return req, req.Validate()
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "pack" {
		if err := runPack(os.Args[2:]); err != nil {
			fail(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "mutate" {
		if err := runMutate(os.Args[2:], os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	f, err := parseFlags(flag.CommandLine, os.Args[1:])
	if err != nil {
		fail(err)
	}
	g, query, err := loadOrGenerate(f.load, f.dsName, f.scale, f.q, f.k, f.seed)
	if err != nil {
		fail(err)
	}
	req, err := f.buildRequest(query)
	if err != nil {
		fail(err)
	}
	m, err := sealib.NewMetric(g, f.gamma)
	if err != nil {
		fail(err)
	}
	fmt.Printf("graph: %d nodes, %d edges; query node %d, k=%d, method=%s\n",
		g.NumNodes(), g.NumEdges(), query, req.K, req.Method)

	ctx := context.Background()
	if f.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.timeout)
		defer cancel()
	}
	out, err := sealib.ExecuteWithMetric(ctx, g, m, req)
	switch {
	case err == nil:
	case errors.Is(err, sealib.ErrBudgetExhausted):
		fmt.Println("note: state budget exhausted; best community found so far")
	case errors.Is(err, context.DeadlineExceeded) && out != nil:
		fmt.Println("note: timeout hit; best community found so far")
	default:
		fail(err)
	}

	fmt.Printf("δ = %.4f\n", out.Delta)
	if res := out.SEA; res != nil {
		fmt.Printf("CI = %v, satisfied = %v, rounds = %d\n", res.CI, res.Satisfied, len(res.Rounds))
		fmt.Printf("steps: S1 %v, S2 %v, S3 %v; |Gq| = %d, |S| = %d\n",
			res.Steps.Sampling, res.Steps.Estimation, res.Steps.Incremental,
			res.GqSize, res.SampleSize)
	}
	if out.States > 0 {
		fmt.Printf("states explored = %d\n", out.States)
	}

	members := append([]sealib.NodeID(nil), out.Community...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	fmt.Printf("community (%d nodes):\n", len(members))
	for i, v := range members {
		if i >= f.show {
			fmt.Printf("  … and %d more\n", len(members)-i)
			break
		}
		fmt.Printf("  %6d  text=%s  num=%v  f(v,q)=%.4f\n",
			v, textOf(g, v), g.NumAttrs(v), m.Distance(v, query))
	}
}

func loadOrGenerate(load, dsName string, scale float64, q, k int, seed int64) (*sealib.Graph, sealib.NodeID, error) {
	if load != "" {
		g, err := loadGraphFile(load)
		if err != nil {
			return nil, 0, err
		}
		if q < 0 {
			return nil, 0, fmt.Errorf("-q is required with -load")
		}
		return g, sealib.NodeID(q), nil
	}
	d, err := sealib.GenerateDataset(dsName, scale)
	if err != nil {
		return nil, 0, err
	}
	if q >= 0 {
		return d.Graph, sealib.NodeID(q), nil
	}
	return d.Graph, d.QueryNodes(1, k, seed)[0], nil
}

func textOf(g *sealib.Graph, v sealib.NodeID) string {
	toks := g.TextAttrs(v)
	if len(toks) == 0 {
		return "-"
	}
	names := make([]string, len(toks))
	for i, t := range toks {
		names[i] = g.Dict().Name(t)
	}
	return strings.Join(names, ",")
}

// loadGraphFile opens a graph file in either on-disk form (snapshot or
// text), discarding any packed index — the one-shot query path rebuilds
// only what it needs. Snapshot files print their format description.
func loadGraphFile(path string) (*sealib.Graph, error) {
	info, err := sealib.DetectSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	if info.IsSnapshot() {
		fmt.Printf("%s: %s\n", path, info)
	}
	snap, err := sealib.OpenGraphFile(path)
	if err != nil {
		return nil, err
	}
	if snap.Graph != nil {
		return snap.Graph, nil
	}
	// A compressed snapshot opens as a PackedGraph; the one-shot CLI path
	// materializes it to a heap CSR.
	return sealib.CopyGraph(snap.Store), nil
}

// runPack is the pack subcommand: text format (or generated analog) →
// snapshot with the full precomputed index. The snapshot is gamma-agnostic
// (the packed normalizer table does not depend on the balance factor);
// gamma is chosen at serving time (seaserve -gamma, or the manifest's
// per-dataset gamma).
func runPack(args []string) error {
	fs := flag.NewFlagSet("seacli pack", flag.ExitOnError)
	var (
		load     = fs.String("load", "", "input graph file (text exchange format or snapshot)")
		dsName   = fs.String("dataset", "", "generate this dataset analog instead of reading -load")
		scale    = fs.Float64("scale", 0.5, "dataset scale factor (with -dataset)")
		out      = fs.String("out", "", "output snapshot path (required)")
		align    = fs.Bool("mmap-align", false, "write the v2 aligned layout seaserve maps zero-copy")
		compress = fs.Bool("compress", false, "delta+varint compress the adjacency (implies -mmap-align)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("pack: -out is required")
	}
	opt := sealib.PackOptions{Align: *align || *compress, Compress: *compress}
	t0 := time.Now()
	var (
		size int64
		g    *sealib.Graph
	)
	switch {
	case *load != "":
		if info, err := sealib.DetectSnapshotFile(*load); err == nil && info.IsSnapshot() {
			fmt.Printf("%s: %s\n", *load, info)
		}
		snap, err := sealib.OpenGraphFile(*load)
		if err != nil {
			return err
		}
		g = snap.Graph
		if g == nil {
			g = sealib.CopyGraph(snap.Store) // compressed input: materialize
		}
		if snap.Index != nil {
			// Repacking a snapshot reuses its index instead of rebuilding.
			cfg := sealib.DefaultEngineConfig()
			cfg.EagerTruss = true
			eng, err := sealib.NewEngineFromSnapshot(snap, cfg)
			if err != nil {
				return err
			}
			if size, err = sealib.WriteSnapshotFileOpts(eng, *out, opt); err != nil {
				return err
			}
			break
		}
		if size, err = sealib.PackSnapshotFileOpts(g, *out, opt); err != nil {
			return err
		}
	case *dsName != "":
		d, err := sealib.GenerateDataset(*dsName, *scale)
		if err != nil {
			return err
		}
		g = d.Graph
		if size, err = sealib.PackSnapshotFileOpts(g, *out, opt); err != nil {
			return err
		}
	default:
		return fmt.Errorf("pack: need -load or -dataset")
	}
	info, err := sealib.DetectSnapshotFile(*out)
	if err != nil {
		return err
	}
	fmt.Printf("packed %s: %d nodes, %d edges, %d bytes, %s (indexes ready in %v)\n",
		*out, g.NumNodes(), g.NumEdges(), size, info, time.Since(t0).Round(time.Millisecond))
	return nil
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

// parseEdge parses "u,v" into node IDs, rejecting any trailing garbage
// (fmt.Sscanf would silently accept "1,2junk" — a typo must not mutate a
// live server).
func parseEdge(spec string) (u, v sealib.NodeID, err error) {
	us, vs, ok := strings.Cut(spec, ",")
	if !ok {
		return 0, 0, fmt.Errorf("bad edge %q (want u,v)", spec)
	}
	a, err := strconv.ParseInt(strings.TrimSpace(us), 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("bad edge %q: %v", spec, err)
	}
	b, err := strconv.ParseInt(strings.TrimSpace(vs), 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("bad edge %q: %v", spec, err)
	}
	return sealib.NodeID(a), sealib.NodeID(b), nil
}

// parseAttrs parses "tok1,tok2:0.1,0.2" — textual tokens before the colon,
// numerical values after; either side may be empty.
func parseAttrs(spec string) (text []string, num []float64, err error) {
	ts, ns, _ := strings.Cut(spec, ":")
	if ts != "" {
		text = strings.Split(ts, ",")
	}
	if ns != "" {
		for _, f := range strings.Split(ns, ",") {
			x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, nil, fmt.Errorf("bad numerical attribute %q: %v", f, err)
			}
			num = append(num, x)
		}
	}
	return text, num, nil
}

// buildDeltas serializes the mutate flags into one batch: added nodes
// first (so freshly assigned IDs can appear in the edge flags), then added
// edges, removed edges, and attribute updates.
func buildDeltas(addNode, addEdge, removeEdge, setAttr []string) ([]sealib.Mutation, error) {
	var deltas []sealib.Mutation
	for _, spec := range addNode {
		text, num, err := parseAttrs(spec)
		if err != nil {
			return nil, err
		}
		deltas = append(deltas, sealib.AddNodeDelta(text, num))
	}
	for _, spec := range addEdge {
		u, v, err := parseEdge(spec)
		if err != nil {
			return nil, err
		}
		deltas = append(deltas, sealib.AddEdgeDelta(u, v))
	}
	for _, spec := range removeEdge {
		u, v, err := parseEdge(spec)
		if err != nil {
			return nil, err
		}
		deltas = append(deltas, sealib.RemoveEdgeDelta(u, v))
	}
	for _, spec := range setAttr {
		node, attrs, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("bad -set-attr %q (want node=attrs)", spec)
		}
		id, err := strconv.ParseInt(strings.TrimSpace(node), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad -set-attr node %q: %v", node, err)
		}
		text, num, err := parseAttrs(attrs)
		if err != nil {
			return nil, err
		}
		deltas = append(deltas, sealib.SetAttrDelta(sealib.NodeID(id), text, num))
	}
	if len(deltas) == 0 {
		return nil, fmt.Errorf("mutate: no deltas (use -add-edge/-remove-edge/-add-node/-set-attr)")
	}
	return deltas, nil
}

// runMutate is the mutate subcommand: serialize the delta flags into one
// POST /admin/mutate batch against a running seaserve, optionally following
// up with POST /admin/compact. The batch applies live — incremental index
// maintenance and scoped cache invalidation, no reload.
func runMutate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("seacli mutate", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "http://127.0.0.1:8080", "seaserve base URL")
		graphName  = fs.String("graph", "", "dataset to mutate (empty = server default)")
		compact    = fs.Bool("compact", false, "fold the journal into a snapshot after mutating")
		addEdge    multiFlag
		removeEdge multiFlag
		addNode    multiFlag
		setAttr    multiFlag
	)
	fs.Var(&addEdge, "add-edge", "insert edge \"u,v\" (repeatable)")
	fs.Var(&removeEdge, "remove-edge", "delete edge \"u,v\" (repeatable)")
	fs.Var(&addNode, "add-node", "append a node \"tok1,tok2:0.1,0.2\" (repeatable; either side optional)")
	fs.Var(&setAttr, "set-attr", "replace attributes \"node=tok1,tok2:0.1,0.2\" (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	deltas, err := buildDeltas(addNode, addEdge, removeEdge, setAttr)
	if err != nil {
		return err
	}
	body, err := json.Marshal(map[string]any{"graph": *graphName, "deltas": deltas})
	if err != nil {
		return err
	}
	resp, err := postJSON(*addr+"/admin/mutate", body)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "mutate: %s\n", resp)
	if *compact {
		body, _ := json.Marshal(map[string]any{"graph": *graphName})
		resp, err := postJSON(*addr+"/admin/compact", body)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "compact: %s\n", resp)
	}
	return nil
}

// postJSON posts body and returns the response body, folding non-2xx
// statuses into the error.
func postJSON(url string, body []byte) ([]byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(data)))
	}
	return bytes.TrimSpace(data), nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "seacli:", err)
	os.Exit(1)
}
