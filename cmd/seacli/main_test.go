package main

import (
	"context"
	"flag"
	"fmt"
	"testing"

	sealib "repro"
)

// parse runs the CLI flag set over args and serializes the Request the way
// main does, against a fixed query node.
func parse(t *testing.T, args ...string) (sealib.Request, error) {
	t.Helper()
	fs := flag.NewFlagSet("seacli", flag.ContinueOnError)
	f, err := parseFlags(fs, args)
	if err != nil {
		t.Fatal(err)
	}
	return f.buildRequest(7)
}

// TestFlagsSerializeIntoRequest is the CLI leg of the Request round-trip
// acceptance criterion: the flags produce exactly the Request the library
// would build by hand.
func TestFlagsSerializeIntoRequest(t *testing.T) {
	got, err := parse(t,
		"-method", "exact", "-k", "5", "-e", "0.01", "-confidence", "0.9",
		"-seed", "42", "-max-states", "12345")
	if err != nil {
		t.Fatal(err)
	}
	want := sealib.DefaultRequest(7)
	want.Method = sealib.MethodExact
	want.K = 5
	want.ErrorBound = 0.01
	want.Confidence = 0.9
	want.Seed = 42
	want.MaxStates = 12345
	if got != want {
		t.Fatalf("flags → Request:\n got %+v\nwant %+v", got, want)
	}

	got, err = parse(t, "-model", "truss", "-size", "8,20", "-method", "sea")
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != sealib.KTruss || got.SizeLo != 8 || got.SizeHi != 20 {
		t.Fatalf("truss/size flags lost: %+v", got)
	}
}

func TestMethodFlagExposesAllSearchers(t *testing.T) {
	for _, m := range sealib.Methods() {
		req, err := parse(t, "-method", m.String(), "-k", "3")
		if err != nil {
			t.Fatalf("-method %s: %v", m, err)
		}
		if req.Method != m {
			t.Fatalf("-method %s parsed as %v", m, req.Method)
		}
	}
	if _, err := parse(t, "-method", "bogus"); err == nil {
		t.Fatal("unknown -method accepted")
	}
	if _, err := parse(t, "-model", "clique"); err == nil {
		t.Fatal("unknown -model accepted")
	}
	if _, err := parse(t, "-method", "exact", "-model", "truss"); err == nil {
		t.Fatal("exact+truss mismatch accepted")
	}
	if _, err := parse(t, "-size", "20,8"); err == nil {
		t.Fatal("inverted -size accepted")
	}
}

// TestCLIRequestMatchesLibrary completes the round trip: the Request built
// from flags, executed, answers exactly what a hand-built Request answers.
func TestCLIRequestMatchesLibrary(t *testing.T) {
	d, err := sealib.GenerateDataset("facebook", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	q := d.QueryNodes(1, 4, 3)[0]

	fs := flag.NewFlagSet("seacli", flag.ContinueOnError)
	f, err := parseFlags(fs, []string{"-k", "4", "-seed", "9"})
	if err != nil {
		t.Fatal(err)
	}
	fromFlags, err := f.buildRequest(q)
	if err != nil {
		t.Fatal(err)
	}
	byHand := sealib.DefaultRequest(q)
	byHand.K = 4
	byHand.Seed = 9
	byHand.MaxStates = 200000 // the CLI's default state budget
	if fromFlags != byHand {
		t.Fatalf("flag Request %+v != hand Request %+v", fromFlags, byHand)
	}
	a, err := sealib.Execute(context.Background(), d.Graph, fromFlags)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sealib.Execute(context.Background(), d.Graph, byHand)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.Community) != fmt.Sprint(b.Community) || a.Delta != b.Delta {
		t.Fatal("identical Requests answered differently")
	}
}
