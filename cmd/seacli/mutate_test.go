package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	sealib "repro"
)

// TestBuildDeltas checks the flag → delta batch serialization, including
// the node-first ordering that lets an added node appear in edge flags.
func TestBuildDeltas(t *testing.T) {
	got, err := buildDeltas(
		[]string{"ml,db:0.5,0.2", ":1,2", "solo"},
		[]string{"1,2"},
		[]string{"3,4"},
		[]string{"7=x,y:0.9,0.1", "8=:0.3,0.4"},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := []sealib.Mutation{
		sealib.AddNodeDelta([]string{"ml", "db"}, []float64{0.5, 0.2}),
		sealib.AddNodeDelta(nil, []float64{1, 2}),
		sealib.AddNodeDelta([]string{"solo"}, nil),
		sealib.AddEdgeDelta(1, 2),
		sealib.RemoveEdgeDelta(3, 4),
		sealib.SetAttrDelta(7, []string{"x", "y"}, []float64{0.9, 0.1}),
		sealib.SetAttrDelta(8, nil, []float64{0.3, 0.4}),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("deltas:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestBuildDeltasErrors(t *testing.T) {
	cases := [][4][]string{
		{nil, nil, nil, nil},            // empty batch
		{nil, {"1-2"}, nil, nil},        // bad edge separator
		{nil, nil, {"abc"}, nil},        // unparsable edge
		{nil, nil, nil, {"x,y"}},        // set-attr without node=
		{nil, nil, nil, {"7=x:zed"}},    // bad numeric
		{{"a:0.1,bad"}, nil, nil, nil},  // bad add-node numeric
		{nil, {"1,2garbage"}, nil, nil}, // trailing garbage after edge
		{nil, nil, nil, {"7=x:0.5abc"}}, // trailing garbage after numeric
		{nil, nil, nil, {"7 8=x:0.5"}},  // garbage in the node field
	}
	for i, c := range cases {
		if _, err := buildDeltas(c[0], c[1], c[2], c[3]); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestRunMutatePostsBatch drives the subcommand against a stub server and
// checks the wire body and the compact follow-up.
func TestRunMutatePostsBatch(t *testing.T) {
	var mutateBody, compactBody []byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf strings.Builder
		b := make([]byte, 4096)
		for {
			n, err := r.Body.Read(b)
			buf.Write(b[:n])
			if err != nil {
				break
			}
		}
		switch r.URL.Path {
		case "/admin/mutate":
			mutateBody = []byte(buf.String())
		case "/admin/compact":
			compactBody = []byte(buf.String())
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	var out strings.Builder
	err := runMutate([]string{
		"-addr", srv.URL, "-graph", "fb", "-compact",
		"-add-edge", "1,2", "-set-attr", "3=a,b",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var req struct {
		Graph  string            `json:"graph"`
		Deltas []sealib.Mutation `json:"deltas"`
	}
	if err := json.Unmarshal(mutateBody, &req); err != nil {
		t.Fatalf("mutate body %q: %v", mutateBody, err)
	}
	if req.Graph != "fb" || len(req.Deltas) != 2 {
		t.Fatalf("wire request %+v", req)
	}
	if req.Deltas[0].Op != sealib.OpAddEdge || req.Deltas[1].Op != sealib.OpSetAttr {
		t.Fatalf("delta ops %v %v", req.Deltas[0].Op, req.Deltas[1].Op)
	}
	if compactBody == nil {
		t.Fatal("compact follow-up not posted")
	}
	if !strings.Contains(out.String(), "mutate:") || !strings.Contains(out.String(), "compact:") {
		t.Fatalf("output %q", out.String())
	}
}
