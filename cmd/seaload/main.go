// Command seaload is the SLO harness: an open-loop load generator that
// drives a running seaserve (or searouter) at a fixed request rate and
// reports client-side latency percentiles that include queueing delay.
//
// Open-loop means every request fires at its scheduled instant whether or
// not earlier ones have returned, and latency is measured from that
// scheduled instant — so a server that stalls accumulates queueing delay in
// the percentiles instead of silently slowing the generator down
// (coordinated omission). A closed-loop generator (fire, wait, fire) can
// report a healthy p99 from a server that is drowning; this one cannot.
//
// Scenarios are weighted operation mixes over zipf-distributed query nodes
// (hot nodes get most of the traffic, like real workloads):
//
//	read-heavy    80% /search, 15% /batch, 5% /compare
//	mixed         55% /search, 20% /batch, 10% /compare, 15% /admin/mutate
//	write-heavy   30% /search, 10% /batch, 60% /admin/mutate
//
// Mutations are set_attr deltas on zipf nodes: always valid (unlike random
// edge inserts, which collide), durable when the target journals, and they
// exercise the scoped-invalidation write path the read mix then observes.
//
// Usage:
//
//	seaload -url http://localhost:8080 -scenario read-heavy -qps 200 -duration 10s
//	seaload -selfserve -scenario mixed -qps 500 -out BENCH_8.json
//	seaload -selfserve -selfserve-journal -writers 32 -duration 5s
//
// -writers N switches to a closed-loop mutation mode: N concurrent writers
// fire /admin/mutate back-to-back, measuring the write path's sustained
// commit throughput (the group-commit before/after comparison; pair with
// -commit-max-batch 1 for the serial-equivalent before row and
// -record-suffix to keep both rows in one file).
//
// -selfserve boots an in-process server on a loopback port (generated
// dataset, full catalog HTTP surface) and drives it over real HTTP — the
// reproducible no-setup mode `make bench-json` uses.
//
// -out appends one machine-readable record per run, seabench-compatible:
//
//	{"experiment": "seaload/<scenario>",
//	 "wall_seconds": <measured window>,
//	 "result": {"scenario":..., "url":..., "graph":...,
//	            "qps_target":..., "qps_achieved":...,
//	            "requests":..., "errors":...,
//	            "p50_us":..., "p90_us":..., "p99_us":..., "p999_us":...,
//	            "mean_us":..., "max_us":...,
//	            "ops": {"search": {"count":..., "errors":..., "p99_us":...}, ...}}}
//
// Records land in a JSON array; re-running a scenario replaces its record
// in place, so one BENCH_<pr>.json accumulates every scenario of a PR.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	sealib "repro"
	"repro/internal/obs"
)

// opWeight is one operation's share of a scenario mix, in percent.
type opWeight struct {
	op     string
	weight int
}

var scenarios = map[string][]opWeight{
	"read-heavy":  {{"search", 80}, {"batch", 15}, {"compare", 5}},
	"mixed":       {{"search", 55}, {"batch", 20}, {"compare", 10}, {"mutate", 15}},
	"write-heavy": {{"search", 30}, {"batch", 10}, {"mutate", 60}},
}

func main() {
	var (
		url         = flag.String("url", "", "target base URL (seaserve or searouter)")
		selfserve   = flag.Bool("selfserve", false, "boot an in-process server on a loopback port and drive that")
		dsName      = flag.String("dataset", "facebook", "generated dataset for -selfserve")
		scale       = flag.Float64("scale", 0.5, "dataset scale for -selfserve")
		graphName   = flag.String("graph", "", "dataset name in requests (default: the target's default dataset)")
		scenario    = flag.String("scenario", "read-heavy", "operation mix: read-heavy, mixed or write-heavy")
		qps         = flag.Float64("qps", 200, "target request rate (open loop: fires on schedule regardless of responses)")
		duration    = flag.Duration("duration", 10*time.Second, "measured window")
		warmup      = flag.Duration("warmup", time.Second, "requests fired but not measured before the window")
		k           = flag.Int("k", 6, "structural parameter k")
		zipfS       = flag.Float64("zipf", 1.3, "zipf skew for query-node choice (>1; higher = hotter hot set)")
		batchSize   = flag.Int("batch-size", 8, "queries per /batch request")
		timeout     = flag.Duration("timeout", 2*time.Second, "per-request client timeout")
		seed        = flag.Int64("seed", 42, "random seed for node choice and op mix")
		outFile     = flag.String("out", "", "merge the run's record into this JSON array (convention: BENCH_<pr>.json)")
		recSuffix   = flag.String("record-suffix", "", "suffix appended to the -out experiment name, e.g. \"@serial\" (before/after rows coexist)")
		writers     = flag.Int("writers", 0, "closed-loop mutation mode: this many concurrent writers fire /admin/mutate back-to-back for -duration instead of the open-loop mix")
		direct      = flag.Bool("direct", false, "with -selfserve -writers: call Catalog.Mutate in process instead of over HTTP, measuring the commit pipeline itself rather than the HTTP stack")
		journalSelf = flag.Bool("selfserve-journal", false, "journal the -selfserve mount into a temp dir, so mutations measure durable commits (fsync included)")
		commitBatch = flag.Int("commit-max-batch", 0, "-selfserve group-commit flush size (0 = default 64; 1 = serial-equivalent, the before row)")
		commitWait  = flag.Duration("commit-max-wait", 0, "-selfserve group-commit hold-open wait (0 = flush immediately)")
		commitQueue = flag.Int("commit-queue", 0, "-selfserve commit queue bound (0 = default 256)")
		maxErrRate  = flag.Float64("max-error-rate", 0,
			"tolerated error fraction (0..1) before exiting nonzero; 0 means any error fails (chaos runs pass e.g. 0.1)")
	)
	flag.Parse()

	mix, ok := scenarios[*scenario]
	if !ok {
		fail(fmt.Errorf("unknown scenario %q (want read-heavy, mixed or write-heavy)", *scenario))
	}
	if *qps <= 0 {
		fail(errors.New("-qps must be positive"))
	}
	if *url == "" && !*selfserve {
		fail(errors.New("need -url or -selfserve"))
	}

	var selfCat *sealib.Catalog
	if *selfserve {
		target, cat, shutdown, err := bootSelfServe(*dsName, *scale, *journalSelf,
			sealib.CommitConfig{MaxBatch: *commitBatch, MaxWait: *commitWait, Queue: *commitQueue})
		if err != nil {
			fail(err)
		}
		defer shutdown()
		*url = target
		selfCat = cat
		if *graphName == "" {
			*graphName = *dsName
		}
	}
	if *direct && (selfCat == nil || *writers <= 0) {
		fail(errors.New("-direct needs -selfserve and -writers"))
	}

	nodes, graph, err := discover(*url, *graphName, *timeout)
	if err != nil {
		fail(err)
	}
	if *writers > 0 {
		fmt.Printf("seaload: %d closed-loop writers against %s (graph %q, %d nodes) for %v after %v warmup\n",
			*writers, *url, graph, nodes, *duration, *warmup)
	} else {
		fmt.Printf("seaload: %s scenario against %s (graph %q, %d nodes): %g qps for %v after %v warmup\n",
			*scenario, *url, graph, nodes, *qps, *duration, *warmup)
	}

	cfg := runConfig{
		url: *url, graph: graph, nodes: nodes,
		mix: mix, qps: *qps, duration: *duration, warmup: *warmup,
		k: *k, zipfS: *zipfS, batchSize: *batchSize,
		timeout: *timeout, seed: *seed,
	}
	experiment := "seaload/" + *scenario
	var res loadResult
	if *writers > 0 {
		if *direct {
			cfg.directCat = selfCat
		}
		res = runWriters(cfg, *writers)
		res.Scenario = fmt.Sprintf("writers-%d", *writers)
		if *direct {
			res.Scenario += "-direct"
		}
		experiment = "seaload/" + res.Scenario
	} else {
		res = run(cfg)
		res.Scenario = *scenario
	}
	experiment += *recSuffix

	fmt.Printf("seaload: %d requests (%d errors), %.1f qps achieved of %g target\n",
		res.Requests, res.Errors, res.QPSAchieved, res.QPSTarget)
	fmt.Printf("seaload: p50 %.0fµs  p90 %.0fµs  p99 %.0fµs  p99.9 %.0fµs  max %.0fµs\n",
		res.P50US, res.P90US, res.P99US, res.P999US, res.MaxUS)
	for _, w := range mix {
		if s, ok := res.Ops[w.op]; ok {
			fmt.Printf("seaload:   %-8s %7d requests, %d errors, p99 %.0fµs\n", w.op, s.Count, s.Errors, s.P99US)
		}
	}
	if len(res.ErrorClasses) > 0 {
		fmt.Printf("seaload: error classes:")
		for _, class := range errorClassOrder {
			if n := res.ErrorClasses[class]; n > 0 {
				fmt.Printf("  %s=%d", class, n)
			}
		}
		fmt.Println()
	}

	if *outFile != "" {
		if err := mergeRecord(*outFile, loadRecord{
			Experiment:  experiment,
			WallSeconds: res.wall.Seconds(),
			Result:      res,
		}); err != nil {
			fail(err)
		}
		fmt.Printf("seaload: merged record %q into %s\n", experiment, *outFile)
	}
	// A perfectly clean run always passes; otherwise the error *rate* decides,
	// so chaos runs can assert "reads kept flowing with a bounded error rate"
	// instead of demanding zero failures while faults are armed.
	if res.Errors > 0 {
		rate := float64(res.Errors) / float64(res.Requests)
		if rate > *maxErrRate {
			fmt.Printf("seaload: error rate %.3f exceeds -max-error-rate %.3f\n", rate, *maxErrRate)
			os.Exit(1)
		}
		fmt.Printf("seaload: error rate %.3f within -max-error-rate %.3f\n", rate, *maxErrRate)
	}
}

// bootSelfServe mounts a generated dataset behind the full catalog HTTP
// surface on a loopback port and returns its base URL. With journal set the
// dataset mounts write-ahead journaled into a temp dir (removed at
// shutdown), so mutations pay the real durability cost — that is the write
// path the group-commit before/after rows measure; ccfg sets the
// group-commit knobs for the mount.
func bootSelfServe(name string, scale float64, journal bool, ccfg sealib.CommitConfig) (string, *sealib.Catalog, func(), error) {
	d, err := sealib.GenerateDataset(name, scale)
	if err != nil {
		return "", nil, nil, err
	}
	cfg := sealib.DefaultEngineConfig()
	eng, err := sealib.NewEngine(d.Graph, cfg)
	if err != nil {
		return "", nil, nil, err
	}
	cat := sealib.NewCatalog()
	cat.SetCommitConfig(ccfg)
	cleanup := func() {}
	if journal {
		dir, err := os.MkdirTemp("", "seaload-journal-*")
		if err != nil {
			return "", nil, nil, err
		}
		cleanup = func() { os.RemoveAll(dir) }
		snap := filepath.Join(dir, name+".snap")
		if _, err := sealib.WriteSnapshotFile(eng, snap); err != nil {
			cleanup()
			return "", nil, nil, err
		}
		if _, _, err := cat.MountPathJournaled(name, snap, filepath.Join(dir, name+".journal"), cfg); err != nil {
			cleanup()
			return "", nil, nil, err
		}
	} else if _, err := cat.Mount(name, eng, cfg, fmt.Sprintf("generated %s@%g", name, scale)); err != nil {
		return "", nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cleanup()
		return "", nil, nil, err
	}
	srv := &http.Server{Handler: sealib.NewCatalogHTTPHandler(cat, cfg)}
	go srv.Serve(ln)
	shutdown := func() {
		srv.Close()
		cat.Close()
		cleanup()
	}
	return "http://" + ln.Addr().String(), cat, shutdown, nil
}

// discover asks the target's /graphs for the dataset to drive: its node
// count bounds the zipf draw, and an empty -graph resolves to the target's
// default dataset.
func discover(url, graph string, timeout time.Duration) (nodes int, name string, err error) {
	hc := &http.Client{Timeout: timeout}
	resp, err := hc.Get(url + "/graphs")
	if err != nil {
		return 0, "", fmt.Errorf("discovering datasets: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, "", fmt.Errorf("discovering datasets: %s returned %s", url+"/graphs", resp.Status)
	}
	var body struct {
		Default string `json:"default"`
		Graphs  []struct {
			Name  string `json:"name"`
			Nodes int    `json:"nodes"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, "", fmt.Errorf("decoding /graphs: %w", err)
	}
	if graph == "" {
		graph = body.Default
	}
	for _, g := range body.Graphs {
		if g.Name == graph || (graph == "" && len(body.Graphs) == 1) {
			if g.Nodes < 2 {
				return 0, "", fmt.Errorf("dataset %q has %d nodes; need at least 2", g.Name, g.Nodes)
			}
			return g.Nodes, g.Name, nil
		}
	}
	return 0, "", fmt.Errorf("target serves no dataset %q", graph)
}

type runConfig struct {
	url, graph string
	nodes      int
	mix        []opWeight
	qps        float64
	duration   time.Duration
	warmup     time.Duration
	k          int
	zipfS      float64
	batchSize  int
	timeout    time.Duration
	seed       int64
	// directCat short-circuits runWriters past HTTP: mutations call
	// Catalog.Mutate in process (the -direct mode).
	directCat *sealib.Catalog
}

// opStats is one operation's slice of the run.
type opStats struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	P99US  float64 `json:"p99_us"`
}

// loadResult is the machine-readable outcome of one run — the "result"
// field of the committed record.
type loadResult struct {
	Scenario    string             `json:"scenario"`
	URL         string             `json:"url"`
	Graph       string             `json:"graph"`
	QPSTarget   float64            `json:"qps_target"`
	QPSAchieved float64            `json:"qps_achieved"`
	Requests    uint64             `json:"requests"`
	Errors      uint64             `json:"errors"`
	P50US       float64            `json:"p50_us"`
	P90US       float64            `json:"p90_us"`
	P99US       float64            `json:"p99_us"`
	P999US      float64            `json:"p999_us"`
	MeanUS      float64            `json:"mean_us"`
	MaxUS       float64            `json:"max_us"`
	Writers     int                `json:"writers,omitempty"`
	Ops         map[string]opStats `json:"ops"`
	// ErrorClasses breaks Errors down by what the client actually saw:
	// "refused" (connection refused — nothing listening), "timeout" (client
	// deadline), "conn" (other transport errors: resets, severed bodies),
	// "shed_429" (server-side overload shedding), "http_5xx" and "http_4xx".
	ErrorClasses map[string]uint64 `json:"error_classes,omitempty"`

	wall time.Duration
}

// loadRecord matches seabench's benchRecord field for field, so seaload and
// seabench runs share one BENCH_<pr>.json — mergeRecord re-marshals every
// record it keeps, and a narrower struct would silently strip seabench's
// fields from the file.
type loadRecord struct {
	Experiment  string   `json:"experiment"`
	WallSeconds float64  `json:"wall_seconds"`
	MeanDelta   *float64 `json:"mean_delta,omitempty"`
	Result      any      `json:"result,omitempty"`
}

// perOp aggregates one operation's latency during a run.
type perOp struct {
	hist   obs.Histogram
	errors obs.Histogram // error latencies, kept separate from the percentiles
}

// run fires the mix at cfg.qps from a fixed schedule. Request i's send time
// is start + i·interval whatever the server is doing; its latency is
// measured from that scheduled instant, so response-time stalls surface as
// queueing delay instead of quietly stretching the schedule.
func run(cfg runConfig) loadResult {
	interval := time.Duration(float64(time.Second) / cfg.qps)
	hc := &http.Client{
		Timeout: cfg.timeout,
		// The open loop can hold many requests in flight against one host;
		// the default 2 idle conns per host would throttle it at the client.
		Transport: &http.Transport{MaxIdleConnsPerHost: 256},
	}

	// The draw (op + query node) is precomputed per tick under one rand so
	// runs are reproducible; the firing goroutines then touch only atomics.
	rng := rand.New(rand.NewSource(cfg.seed))
	zipf := rand.NewZipf(rng, cfg.zipfS, 1, uint64(cfg.nodes-1))
	var drawMu sync.Mutex
	draw := func() (string, []int) {
		drawMu.Lock()
		defer drawMu.Unlock()
		roll, acc := rng.Intn(100), 0
		op := cfg.mix[len(cfg.mix)-1].op
		for _, w := range cfg.mix {
			if acc += w.weight; roll < acc {
				op = w.op
				break
			}
		}
		n := 1
		if op == "batch" {
			n = cfg.batchSize
		}
		nodes := make([]int, n)
		for i := range nodes {
			nodes[i] = int(zipf.Uint64())
		}
		return op, nodes
	}

	var (
		total   obs.Histogram
		ops     = make(map[string]*perOp, len(cfg.mix))
		wg      sync.WaitGroup
		mutSeq  int
		mutMu   sync.Mutex
		classMu sync.Mutex
		classes = make(map[string]uint64, len(errorClassOrder))
	)
	for _, w := range cfg.mix {
		ops[w.op] = &perOp{}
	}

	start := time.Now()
	measureFrom := start.Add(cfg.warmup)
	end := measureFrom.Add(cfg.duration)
	for sched := start; sched.Before(end); sched = sched.Add(interval) {
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		op, nodes := draw()
		var body []byte
		path := ""
		switch op {
		case "search":
			path = "/search"
			body, _ = json.Marshal(map[string]any{"q": nodes[0], "method": "sea", "k": cfg.k, "graph": cfg.graph})
		case "batch":
			path = "/batch"
			body, _ = json.Marshal(map[string]any{"queries": nodes, "method": "sea", "k": cfg.k, "graph": cfg.graph})
		case "compare":
			path = "/compare"
			body, _ = json.Marshal(map[string]any{"q": nodes[0], "methods": []string{"sea", "structural"}, "k": cfg.k, "graph": cfg.graph})
		case "mutate":
			mutMu.Lock()
			mutSeq++
			tag := fmt.Sprintf("seaload-%d", mutSeq%64)
			mutMu.Unlock()
			path = "/admin/mutate"
			body, _ = json.Marshal(map[string]any{"graph": cfg.graph, "deltas": []map[string]any{
				{"op": "set_attr", "u": nodes[0], "text": []string{"seaload", tag}},
			}})
		}
		wg.Add(1)
		go func(sched time.Time, op, path string, body []byte) {
			defer wg.Done()
			class := fire(hc, cfg.url+path, body)
			lat := time.Since(sched)
			if sched.Before(measureFrom) {
				return // warmup: fired for server state, not measured
			}
			st := ops[op]
			if class == "" {
				total.Observe(lat.Nanoseconds())
				st.hist.Observe(lat.Nanoseconds())
			} else {
				st.errors.Observe(lat.Nanoseconds())
				classMu.Lock()
				classes[class]++
				classMu.Unlock()
			}
		}(sched, op, path, body)
	}
	wg.Wait()
	wall := time.Since(measureFrom)
	if wall > cfg.duration {
		wall = cfg.duration // responses landing after the window don't stretch the rate
	}

	snap := total.Snapshot()
	res := loadResult{
		URL: cfg.url, Graph: cfg.graph,
		QPSTarget: cfg.qps,
		MeanUS:    snap.Mean() / 1e3,
		P50US:     snap.Quantile(0.50) / 1e3,
		P90US:     snap.Quantile(0.90) / 1e3,
		P99US:     snap.Quantile(0.99) / 1e3,
		P999US:    snap.Quantile(0.999) / 1e3,
		MaxUS:     float64(snap.Max()) / 1e3,
		Ops:       make(map[string]opStats, len(ops)),
		wall:      wall,
	}
	for op, st := range ops {
		s := st.hist.Snapshot()
		e := st.errors.Snapshot()
		res.Requests += s.Count + e.Count
		res.Errors += e.Count
		res.Ops[op] = opStats{Count: s.Count + e.Count, Errors: e.Count, P99US: s.Quantile(0.99) / 1e3}
	}
	if secs := wall.Seconds(); secs > 0 {
		res.QPSAchieved = float64(res.Requests) / secs
	}
	if len(classes) > 0 {
		res.ErrorClasses = classes
	}
	return res
}

// runWriters is the closed-loop mutation mode: writers goroutines each fire
// one-delta set_attr mutations back-to-back against /admin/mutate for the
// window, measuring sustained mutation throughput — the group-commit
// before/after comparison. Unlike the open loop, each request's latency is
// measured from its own send: this mode asks "how fast CAN the write path
// commit under N concurrent writers", not "how does it behave at a fixed
// rate", so the closed loop's coordinated omission is the point rather than
// a hazard.
func runWriters(cfg runConfig, writers int) loadResult {
	hc := &http.Client{
		Timeout:   cfg.timeout,
		Transport: &http.Transport{MaxIdleConnsPerHost: writers + 16},
	}
	var (
		total   obs.Histogram
		errHist obs.Histogram
		classMu sync.Mutex
		classes = make(map[string]uint64, len(errorClassOrder))
		wg      sync.WaitGroup
	)
	start := time.Now()
	measureFrom := start.Add(cfg.warmup)
	end := measureFrom.Add(cfg.duration)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			zipf := rand.NewZipf(rng, cfg.zipfS, 1, uint64(cfg.nodes-1))
			for seq := 0; ; seq++ {
				t0 := time.Now()
				if t0.After(end) {
					return
				}
				node := int(zipf.Uint64())
				tag := fmt.Sprintf("w%d-%d", w, seq%64)
				var class string
				if cfg.directCat != nil {
					class = classifyDirect(cfg.directCat.Mutate(cfg.graph,
						[]sealib.Mutation{sealib.SetAttrDelta(sealib.NodeID(node), []string{"seaload", tag}, nil)}))
				} else {
					body, _ := json.Marshal(map[string]any{"graph": cfg.graph, "deltas": []map[string]any{
						{"op": "set_attr", "u": node, "text": []string{"seaload", tag}},
					}})
					class = fire(hc, cfg.url+"/admin/mutate", body)
				}
				lat := time.Since(t0)
				if t0.Before(measureFrom) {
					continue // warmup: fired for server state, not measured
				}
				if class == "" {
					total.Observe(lat.Nanoseconds())
				} else {
					errHist.Observe(lat.Nanoseconds())
					classMu.Lock()
					classes[class]++
					classMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(measureFrom)
	if wall > cfg.duration {
		wall = cfg.duration
	}

	snap := total.Snapshot()
	e := errHist.Snapshot()
	res := loadResult{
		URL: cfg.url, Graph: cfg.graph,
		Writers:  writers,
		Requests: snap.Count + e.Count,
		Errors:   e.Count,
		MeanUS:   snap.Mean() / 1e3,
		P50US:    snap.Quantile(0.50) / 1e3,
		P90US:    snap.Quantile(0.90) / 1e3,
		P99US:    snap.Quantile(0.99) / 1e3,
		P999US:   snap.Quantile(0.999) / 1e3,
		MaxUS:    float64(snap.Max()) / 1e3,
		Ops: map[string]opStats{"mutate": {
			Count: snap.Count + e.Count, Errors: e.Count, P99US: snap.Quantile(0.99) / 1e3,
		}},
		wall: wall,
	}
	if secs := wall.Seconds(); secs > 0 {
		res.QPSAchieved = float64(res.Requests) / secs
	}
	if len(classes) > 0 {
		res.ErrorClasses = classes
	}
	return res
}

// classifyDirect maps a Catalog.Mutate outcome onto fire's error classes so
// -direct runs report through the same summary.
func classifyDirect(_ *sealib.MutateResult, err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, sealib.ErrOverloaded):
		return "shed_429"
	case errors.Is(err, sealib.ErrInvalidRequest):
		return "http_4xx"
	default:
		return "http_5xx"
	}
}

// errorClassOrder fixes the summary-line ordering of fire's error classes.
var errorClassOrder = []string{"refused", "timeout", "conn", "shed_429", "http_5xx", "http_4xx"}

// fire sends one request and classifies the outcome: "" is success, any
// other return names the failure mode — "refused" (nothing listening),
// "timeout" (client deadline hit), "conn" (other transport failures:
// resets, severed bodies), "shed_429" (server-side overload shedding),
// "http_5xx", "http_4xx". 404 counts as success: "no community satisfies
// the constraints" is a correct answer for a hard query node, not a
// serving failure.
func fire(hc *http.Client, url string, body []byte) string {
	resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		var nerr net.Error
		switch {
		case errors.As(err, &nerr) && nerr.Timeout():
			return "timeout"
		case errors.Is(err, syscall.ECONNREFUSED):
			return "refused"
		default:
			return "conn"
		}
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) // drain so the connection is reused
	switch {
	case resp.StatusCode < 300 || resp.StatusCode == http.StatusNotFound:
		return ""
	case resp.StatusCode == http.StatusTooManyRequests:
		return "shed_429"
	case resp.StatusCode >= 500:
		return "http_5xx"
	default:
		return "http_4xx"
	}
}

// mergeRecord folds one run's record into the JSON array at path, replacing
// any record with the same experiment name (a re-run supersedes, never
// duplicates) and creating the file when absent.
func mergeRecord(path string, rec loadRecord) error {
	var records []loadRecord
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	replaced := false
	for i := range records {
		if records[i].Experiment == rec.Experiment {
			records[i] = rec
			replaced = true
			break
		}
	}
	if !replaced {
		records = append(records, rec)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "seaload:", err)
	os.Exit(1)
}
