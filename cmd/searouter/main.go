// Command searouter fronts a replicated seaserve cluster with a
// scatter-gather router: one address clients talk to, many replicas doing
// the work.
//
// Reads spread over the replica set chosen by consistent hashing on the
// dataset name — /batch splits its queries and /compare its methods across
// the in-sync members, each shard under its own deadline, and a failed
// shard degrades to per-item errors instead of failing the request.
// /search proxies to one in-sync replica round-robin. Writes (/admin/*)
// and everything else forward to the primary. A health prober drops dead
// and lagging members from the read set, and when the primary dies the
// router promotes the most-caught-up follower and re-points the rest.
//
// Failed reads retry against a different in-sync replica (bounded budget,
// jittered exponential backoff); every member has a circuit breaker that
// opens on consecutive failures so a struggling node stops absorbing
// traffic before the prober notices. Writes are never retried.
//
// Every response carries an X-Request-ID (generated when the client sends
// none), propagated to every upstream request it fans out into.
//
// Usage:
//
//	searouter -members http://n1:8080,http://n2:8081,http://n3:8082
//	searouter -members ... -primary http://n1:8080 -rf 2 -max-lag 8
//	searouter -members ... -pprof 127.0.0.1:6061
//	  then: go tool pprof http://127.0.0.1:6061/debug/pprof/profile?seconds=10
//
// Endpoints:
//
//	POST /search /batch /compare    scatter-gather reads over the replica set
//	POST /admin/mutate ...          forwarded to the current primary
//	GET  /healthz                   the router's member-health view
//	GET  /metrics                   router counters, Prometheus text format
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/obs"
)

func main() {
	var (
		addr       = flag.String("addr", ":8070", "listen address")
		members    = flag.String("members", "", "comma-separated base URLs of every cluster node (required)")
		primary    = flag.String("primary", "", "member writes forward to (default: first member)")
		rf         = flag.Int("rf", 2, "replication factor: read-set size per dataset")
		shardTO    = flag.Duration("shard-timeout", 2*time.Second, "per-shard deadline for scatter-gather reads and probes")
		probeEvery = flag.Duration("probe-every", time.Second, "member health-probe interval")
		failAfter  = flag.Int("fail-after", 3, "consecutive probe failures that mark a member dead")
		maxLag     = flag.Uint64("max-lag", 8, "max batches a follower may lag and still serve reads")
		retries    = flag.Int("retries", 2, "read retry budget per request, each against a different replica (-1 disables)")
		retryBase  = flag.Duration("retry-base", 50*time.Millisecond, "first retry backoff; attempt n waits ~2^n times this, jittered")
		brkThresh  = flag.Int("breaker-threshold", 5, "consecutive failures that open a member's circuit breaker")
		brkCool    = flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker refuses traffic before one half-open probe")
		drain      = flag.Duration("drain", 10*time.Second, "shutdown drain timeout")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this loopback address, e.g. 127.0.0.1:6061 (off when empty)")
		faultSpec  = flag.String("faults", os.Getenv("SEAFAULTS"), "fault-injection spec, e.g. \"router.shard=prob:0.2,err:reset\" (default $SEAFAULTS; testing only)")
		faultSeed  = flag.Int64("faults-seed", 1, "fault-injection PRNG seed (deterministic per site)")
	)
	flag.Parse()
	if *members == "" {
		fail(errors.New("need -members"))
	}
	if err := faults.Setup(*faultSpec, *faultSeed); err != nil {
		fail(err)
	}
	if *faultSpec != "" {
		fmt.Printf("searouter: FAULT INJECTION ARMED: %s (seed %d)\n", *faultSpec, *faultSeed)
	}
	if *pprofAddr != "" {
		bound, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			fail(err)
		}
		fmt.Printf("searouter: pprof on http://%s/debug/pprof/ (try: go tool pprof http://%s/debug/pprof/profile?seconds=10)\n", bound, bound)
	}
	var urls []string
	for _, m := range strings.Split(*members, ",") {
		if m = strings.TrimSpace(m); m != "" {
			urls = append(urls, m)
		}
	}
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Members:           urls,
		Primary:           *primary,
		ReplicationFactor: *rf,
		ShardTimeout:      *shardTO,
		ProbeEvery:        *probeEvery,
		FailAfter:         *failAfter,
		MaxLag:            *maxLag,
		Retries:           *retries,
		RetryBase:         *retryBase,
		BreakerThreshold:  *brkThresh,
		BreakerCooldown:   *brkCool,
	})
	if err != nil {
		fail(err)
	}
	defer router.Close()

	fmt.Printf("searouter: fronting %d member(s), primary %s; listening on %s\n",
		len(urls), router.Primary(), *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           router,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Printf("searouter: signal received, draining for up to %v\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	fmt.Println("searouter: drained, bye")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "searouter:", err)
	os.Exit(1)
}
