// Command seaserve serves community-search queries over HTTP from a catalog
// of named datasets, each backed by a long-lived engine with a shared index
// and caches. Datasets mount from packed snapshots (cmd/datagen -pack or
// seacli pack), text-format files, or generated analogs; a manifest file
// mounts several at boot. Every query endpoint speaks the unified Request
// wire format ("method" selects the solver, "graph" selects the dataset),
// and per-request deadlines (-timeout, or a client disconnect) cancel the
// underlying search, not just the wait.
//
// Usage:
//
//	seaserve -snapshot facebook.snap -addr :8080
//	seaserve -manifest catalog.json
//	seaserve -dataset facebook -scale 0.5
//	seaserve -load graph.txt -gamma 0.5 -timeout 2s
//
// Endpoints:
//
//	POST /search    {"q":12,"method":"sea","graph":"fb"}    one community
//	GET  /search?q=12&k=6&method=exact&graph=fb             same, for curl
//	POST /batch     {"queries":[1,2,3],"k":6}               one item per query
//	POST /compare   {"q":12,"methods":["sea","exact"]}      one item per method
//	GET  /compare?q=12&methods=sea,exact,vac                same, for curl
//	GET  /graphs                                            mounted datasets + stats
//	POST /admin/reload {"graph":"fb","path":"fb2.snap"}     hot-swap a dataset
//	GET  /healthz[?graph=fb]                                liveness + graph shape
//	GET  /stats[?graph=fb]                                  engine counters and caches
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	sealib "repro"
	"repro/internal/catalog"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		manifest    = flag.String("manifest", "", "mount the datasets listed in this JSON manifest")
		snapshot    = flag.String("snapshot", "", "mount a packed snapshot file")
		load        = flag.String("load", "", "mount a graph file (snapshot or text format)")
		dsName      = flag.String("dataset", "facebook", "generated dataset analog name")
		name        = flag.String("name", "", "catalog name for -snapshot/-load mounts (default: file basename)")
		scale       = flag.Float64("scale", 0.5, "dataset scale factor")
		gamma       = flag.Float64("gamma", 0.5, "attribute balance factor")
		distCache   = flag.Int("dist-cache", 0, "distance-vector cache entries (0 = default)")
		resultCache = flag.Int("result-cache", 0, "result cache entries (0 = default)")
		workers     = flag.Int("workers", 0, "batch worker-pool size (0 = GOMAXPROCS)")
		maxConc     = flag.Int("max-concurrent", 0, "max searches executing at once (0 = 2×GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 0, "per-request deadline (0 = none)")
		eagerTruss  = flag.Bool("eager-truss", false, "build the truss index at startup when absent from the source")
	)
	flag.Parse()

	cfg := sealib.DefaultEngineConfig()
	cfg.Gamma = *gamma
	cfg.DistCacheSize = *distCache
	cfg.ResultCacheSize = *resultCache
	cfg.Workers = *workers
	cfg.MaxConcurrent = *maxConc
	cfg.RequestTimeout = *timeout
	cfg.EagerTruss = *eagerTruss

	t0 := time.Now()
	cat := sealib.NewCatalog()
	switch {
	case *manifest != "":
		m, err := catalog.LoadManifest(*manifest)
		if err != nil {
			fail(err)
		}
		if err := cat.MountManifest(m, cfg); err != nil {
			fail(err)
		}
	case *snapshot != "":
		if _, err := cat.MountPath(nameForPath(*name, *snapshot), *snapshot, cfg); err != nil {
			fail(err)
		}
	case *load != "":
		if _, err := cat.MountPath(nameForPath(*name, *load), *load, cfg); err != nil {
			fail(err)
		}
	default:
		d, err := sealib.GenerateDataset(*dsName, *scale)
		if err != nil {
			fail(err)
		}
		eng, err := sealib.NewEngine(d.Graph, cfg)
		if err != nil {
			fail(err)
		}
		if _, err := cat.Mount(*dsName, eng, cfg, fmt.Sprintf("generated %s@%g", *dsName, *scale)); err != nil {
			fail(err)
		}
	}

	boot := time.Since(t0).Round(time.Millisecond)
	fmt.Printf("seaserve: %d dataset(s) mounted in %v (default %q); listening on %s\n",
		cat.Len(), boot, cat.Default(), *addr)
	for _, info := range cat.Infos() {
		fmt.Printf("  %s: %d nodes, %d edges (%s)\n", info.Name, info.Nodes, info.Edges, info.Source)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           sealib.NewCatalogHTTPHandler(cat, cfg),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
	}
	if err := srv.ListenAndServe(); err != nil {
		fail(err)
	}
}

// nameForPath picks the catalog name for a single-file mount: the -name
// flag when set, else the file's basename without extension.
func nameForPath(nameFlag, path string) string {
	if nameFlag != "" {
		return nameFlag
	}
	base := filepath.Base(path)
	if ext := filepath.Ext(base); ext != "" {
		base = base[:len(base)-len(ext)]
	}
	if base == "" || base == "." {
		return "default"
	}
	return base
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "seaserve:", err)
	os.Exit(1)
}
