// Command seaserve serves community-search queries over HTTP from a catalog
// of named datasets, each backed by a long-lived engine with a shared index
// and caches. Datasets mount from packed snapshots (cmd/datagen -pack or
// seacli pack), text-format files, or generated analogs; a manifest file
// mounts several at boot. Every query endpoint speaks the unified Request
// wire format ("method" selects the solver, "graph" selects the dataset),
// and per-request deadlines (-timeout, or a client disconnect) cancel the
// underlying search, not just the wait.
//
// The served graphs are live: POST /admin/mutate applies edge/node/attribute
// deltas in place (incremental index maintenance, scoped cache
// invalidation, no reload), -journal makes them durable through a
// write-ahead journal replayed at boot, and POST /admin/compact folds the
// journal into a fresh snapshot. SIGINT/SIGTERM drain in-flight queries
// (bounded by -drain) before the process exits cleanly.
//
// A journaled seaserve is also a replication primary: followers started
// with -follow bootstrap every dataset from its /admin/replicate snapshots,
// tail its journal, and serve the same answers read-only until promoted
// (POST /admin/promote, typically by cmd/searouter on primary death).
//
// Usage:
//
//	seaserve -snapshot facebook.snap -addr :8080
//	seaserve -snapshot facebook.snap -journal facebook.journal
//	seaserve -manifest catalog.json
//	seaserve -dataset facebook -scale 0.5
//	seaserve -load graph.txt -gamma 0.5 -timeout 2s
//	seaserve -follow http://primary:8080 -replica-dir /var/lib/sea -addr :8081
//	seaserve -snapshot facebook.snap -pprof 127.0.0.1:6060
//	  then: go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//
// Endpoints:
//
//	POST /search    {"q":12,"method":"sea","graph":"fb"}    one community
//	GET  /search?q=12&k=6&method=exact&graph=fb             same, for curl
//	POST /batch     {"queries":[1,2,3],"k":6}               one item per query
//	POST /compare   {"q":12,"methods":["sea","exact"]}      one item per method
//	GET  /compare?q=12&methods=sea,exact,vac                same, for curl
//	GET  /graphs                                            mounted datasets + stats
//	POST /admin/reload {"graph":"fb","path":"fb2.snap"}     hot-swap a dataset
//	POST /admin/mutate {"graph":"fb","deltas":[...]}        live mutation batch
//	POST /admin/compact {"graph":"fb"}                      fold journal → snapshot
//	GET  /healthz[?graph=fb]                                liveness, shape, version
//	GET  /stats[?graph=fb]                                  engine counters, caches, journal cursor
//	GET  /metrics                                           the same, Prometheus text format
//	GET  /admin/replicate?graph=fb                          snapshot bootstrap for a follower
//	GET  /admin/journal?graph=fb&lineage=L&from=V           journal tail past cursor V
//	GET  /admin/replication                                 role + per-dataset replication state
//	POST /admin/promote                                     follower → writable primary
//	POST /admin/follow {"primary":"http://..."}             re-point a follower
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	sealib "repro"
	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/obs"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		manifest     = flag.String("manifest", "", "mount the datasets listed in this JSON manifest")
		snapshot     = flag.String("snapshot", "", "mount a packed snapshot file")
		load         = flag.String("load", "", "mount a graph file (snapshot or text format)")
		dsName       = flag.String("dataset", "facebook", "generated dataset analog name")
		name         = flag.String("name", "", "catalog name for -snapshot/-load mounts (default: file basename)")
		journal      = flag.String("journal", "", "write-ahead mutation journal for the -snapshot/-load mount (replayed at boot)")
		compactEvery = flag.Int("compact-every", catalog.DefaultCompactEvery, "journal batches that trigger background compaction (0 = manual only)")
		commitBatch  = flag.Int("commit-max-batch", 0, "max delta groups coalesced per group-commit flush (0 = default 64)")
		commitWait   = flag.Duration("commit-max-wait", 0, "hold an incomplete commit batch open this long for companions (0 = flush immediately)")
		commitQueue  = flag.Int("commit-queue", 0, "bounded commit queue; a full queue sheds with 429 (0 = default 256)")
		scale        = flag.Float64("scale", 0.5, "dataset scale factor")
		gamma        = flag.Float64("gamma", 0.5, "attribute balance factor")
		distCache    = flag.Int("dist-cache", 0, "distance-vector cache entries (0 = default)")
		resultCache  = flag.Int("result-cache", 0, "result cache entries (0 = default)")
		workers      = flag.Int("workers", 0, "batch worker-pool size (0 = GOMAXPROCS)")
		maxConc      = flag.Int("max-concurrent", 0, "max searches executing at once (0 = 2×GOMAXPROCS)")
		maxInFlight  = flag.Int("max-inflight", 0, "max cache-miss computations admitted per dataset before shedding with 429 (0 = no shedding)")
		timeout      = flag.Duration("timeout", 0, "per-request deadline (0 = none)")
		drain        = flag.Duration("drain", 10*time.Second, "shutdown drain timeout for in-flight queries")
		eagerTruss   = flag.Bool("eager-truss", false, "build the truss index at startup when absent from the source")
		mmap         = flag.Bool("mmap", true, "serve aligned snapshots zero-copy from a read-only memory mapping")
		follow       = flag.String("follow", "", "run as a read-only follower replicating from this primary URL")
		replicaDir   = flag.String("replica-dir", "", "directory for follower replica snapshots and journals (default: a temp dir)")
		pollEvery    = flag.Duration("poll-every", cluster.DefaultPollEvery, "follower journal poll interval")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this loopback address, e.g. 127.0.0.1:6060 (off when empty)")
		slowQuery    = flag.Duration("slow-query", 0, "log one structured JSON line to stderr per request at least this slow (0 = off)")
		traceRing    = flag.Int("trace-ring", 0, "request spans kept for GET /debug/trace (0 = default 256, negative = off)")
		faultSpec    = flag.String("faults", os.Getenv("SEAFAULTS"), "fault-injection spec, e.g. \"journal.fsync=prob:0.1,err:eio\" (default $SEAFAULTS; testing only)")
		faultSeed    = flag.Int64("faults-seed", 1, "fault-injection PRNG seed (deterministic per site)")
	)
	flag.Parse()
	if err := faults.Setup(*faultSpec, *faultSeed); err != nil {
		fail(err)
	}
	if *faultSpec != "" {
		fmt.Printf("seaserve: FAULT INJECTION ARMED: %s (seed %d)\n", *faultSpec, *faultSeed)
	}
	if *pprofAddr != "" {
		bound, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			fail(err)
		}
		fmt.Printf("seaserve: pprof on http://%s/debug/pprof/ (try: go tool pprof http://%s/debug/pprof/profile?seconds=10)\n", bound, bound)
	}

	cfg := sealib.DefaultEngineConfig()
	cfg.Gamma = *gamma
	cfg.DistCacheSize = *distCache
	cfg.ResultCacheSize = *resultCache
	cfg.Workers = *workers
	cfg.MaxConcurrent = *maxConc
	cfg.MaxInFlight = *maxInFlight
	cfg.RequestTimeout = *timeout
	cfg.EagerTruss = *eagerTruss
	cfg.SlowQuery = *slowQuery
	if *traceRing < 0 {
		cfg.TraceOff = true
	} else {
		cfg.TraceRing = *traceRing
	}

	t0 := time.Now()
	cat := sealib.NewCatalog()
	cat.SetMmap(*mmap)
	cat.SetCommitConfig(sealib.CommitConfig{MaxBatch: *commitBatch, MaxWait: *commitWait, Queue: *commitQueue})
	mountFile := func(path string) {
		dname := nameForPath(*name, path)
		if *journal == "" {
			if _, err := cat.MountPath(dname, path, cfg); err != nil {
				fail(err)
			}
			return
		}
		d, replayed, err := cat.MountPathJournaled(dname, path, *journal, cfg)
		if err != nil {
			fail(err)
		}
		d.SetCompactEvery(*compactEvery)
		if replayed > 0 {
			fmt.Printf("seaserve: replayed %d journaled mutation batch(es) onto %q\n", replayed, dname)
		}
	}
	var fol *cluster.Follower
	switch {
	case *follow != "":
		// Follower mode: nothing mounts locally — every dataset bootstraps
		// from the primary's replication snapshots into the replica dir and
		// stays caught up by tailing its journal.
		dir := *replicaDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "seaserve-replica-")
			if err != nil {
				fail(err)
			}
			dir = tmp
		} else if err := os.MkdirAll(dir, 0o755); err != nil {
			fail(err)
		}
		fol = cluster.NewFollower(cat, *follow, dir, cfg, *pollEvery)
		// A severed stream or a briefly-unreachable primary must not kill
		// the boot: retry the bootstrap with growing waits until the boot
		// deadline. Bootstrap fails clean (nothing mounted, no partial
		// files), so every retry starts fresh.
		bctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		err := fol.Bootstrap(bctx)
		for wait := 500 * time.Millisecond; err != nil; wait *= 2 {
			fmt.Fprintf(os.Stderr, "seaserve: bootstrap from %s failed: %v; retrying in %v\n", *follow, err, wait)
			select {
			case <-bctx.Done():
				cancel()
				fail(err)
			case <-time.After(wait):
			}
			err = fol.Bootstrap(bctx)
		}
		cancel()
	case *manifest != "":
		m, err := catalog.LoadManifest(*manifest)
		if err != nil {
			fail(err)
		}
		if err := cat.MountManifest(m, cfg); err != nil {
			fail(err)
		}
	case *snapshot != "":
		mountFile(*snapshot)
	case *load != "":
		mountFile(*load)
	default:
		d, err := sealib.GenerateDataset(*dsName, *scale)
		if err != nil {
			fail(err)
		}
		eng, err := sealib.NewEngine(d.Graph, cfg)
		if err != nil {
			fail(err)
		}
		if _, err := cat.Mount(*dsName, eng, cfg, fmt.Sprintf("generated %s@%g", *dsName, *scale)); err != nil {
			fail(err)
		}
	}

	boot := time.Since(t0).Round(time.Millisecond)
	role := ""
	if fol != nil {
		role = fmt.Sprintf(" as follower of %s", *follow)
	}
	fmt.Printf("seaserve: %d dataset(s) mounted in %v (default %q)%s; listening on %s\n",
		cat.Len(), boot, cat.Default(), role, *addr)
	for _, info := range cat.Infos() {
		serving := "heap"
		if info.Mapped {
			serving = fmt.Sprintf("mapped, %d bytes", info.MappedBytes)
		}
		fmt.Printf("  %s: %d nodes, %d edges (%s; %s)\n", info.Name, info.Nodes, info.Edges, info.Source, serving)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           cluster.NewNodeHandler(cat, cfg, fol),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
	}

	// Serve until SIGINT/SIGTERM, then drain: a deploy must not kill
	// in-flight queries mid-search. Shutdown stops the listener, waits up
	// to -drain for active requests, and the process exits 0 on a clean
	// drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if fol != nil {
		go fol.Run(ctx)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		fail(err) // immediate listen/serve failure
	case <-ctx.Done():
	}
	stop()
	fmt.Printf("seaserve: signal received, draining for up to %v\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err := srv.Shutdown(dctx)
	if closeErr := cat.Close(); err == nil {
		err = closeErr
	}
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	fmt.Println("seaserve: drained, bye")
}

// nameForPath picks the catalog name for a single-file mount: the -name
// flag when set, else the file's basename without extension.
func nameForPath(nameFlag, path string) string {
	if nameFlag != "" {
		return nameFlag
	}
	base := filepath.Base(path)
	if ext := filepath.Ext(base); ext != "" {
		base = base[:len(base)-len(ext)]
	}
	if base == "" || base == "." {
		return "default"
	}
	return base
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "seaserve:", err)
	os.Exit(1)
}
