// Command seaserve serves community-search queries over HTTP from a
// long-lived engine with a shared index and caches. Every query endpoint
// speaks the unified Request wire format ("method" selects the solver), and
// per-request deadlines (-timeout, or a client disconnect) cancel the
// underlying search, not just the wait.
//
// Usage:
//
//	seaserve -dataset facebook -scale 0.5 -addr :8080
//	seaserve -load graph.txt -gamma 0.5 -timeout 2s
//
// Endpoints:
//
//	POST /search    {"q":12,"method":"sea","k":6,"e":0.02}  one community
//	GET  /search?q=12&k=6&method=exact                      same, for curl
//	POST /batch     {"queries":[1,2,3],"k":6}               one item per query
//	POST /compare   {"q":12,"methods":["sea","exact"]}      one item per method
//	GET  /compare?q=12&methods=sea,exact,vac                same, for curl
//	GET  /healthz                                           liveness + graph shape
//	GET  /stats                                             engine counters and caches
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	sealib "repro"
	"repro/internal/engine"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		dsName      = flag.String("dataset", "facebook", "generated dataset analog name")
		scale       = flag.Float64("scale", 0.5, "dataset scale factor")
		load        = flag.String("load", "", "load a graph file instead of generating")
		gamma       = flag.Float64("gamma", 0.5, "attribute balance factor")
		distCache   = flag.Int("dist-cache", 0, "distance-vector cache entries (0 = default)")
		resultCache = flag.Int("result-cache", 0, "result cache entries (0 = default)")
		workers     = flag.Int("workers", 0, "batch worker-pool size (0 = GOMAXPROCS)")
		maxConc     = flag.Int("max-concurrent", 0, "max searches executing at once (0 = 2×GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 0, "per-request deadline (0 = none)")
		eagerTruss  = flag.Bool("eager-truss", false, "build the truss index at startup")
	)
	flag.Parse()

	g, err := loadOrGenerate(*load, *dsName, *scale)
	if err != nil {
		fail(err)
	}
	cfg := sealib.DefaultEngineConfig()
	cfg.Gamma = *gamma
	cfg.DistCacheSize = *distCache
	cfg.ResultCacheSize = *resultCache
	cfg.Workers = *workers
	cfg.MaxConcurrent = *maxConc
	cfg.RequestTimeout = *timeout
	cfg.EagerTruss = *eagerTruss

	t0 := time.Now()
	eng, err := sealib.NewEngine(g, cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("seaserve: %d nodes, %d edges; index built in %v; listening on %s\n",
		g.NumNodes(), g.NumEdges(), time.Since(t0).Round(time.Millisecond), *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           engine.NewHTTPHandler(eng),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
	}
	if err := srv.ListenAndServe(); err != nil {
		fail(err)
	}
}

func loadOrGenerate(load, dsName string, scale float64) (*sealib.Graph, error) {
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return sealib.LoadGraph(f)
	}
	d, err := sealib.GenerateDataset(dsName, scale)
	if err != nil {
		return nil, err
	}
	return d.Graph, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "seaserve:", err)
	os.Exit(1)
}
