// Package sea is a Go implementation of "Scalable Community Search with
// Accuracy Guarantee on Attributed Graphs" (ICDE 2024): community search
// over attributed graphs that returns, together with each community, a
// confidence interval on its query-centric attribute distance and a
// user-controlled relative-error bound.
//
// # Overview
//
// Given an attributed graph and a query node q, the library finds a
// connected k-core (or k-truss) containing q whose members are similar to q
// under a composite attribute distance mixing Jaccard distance over textual
// attributes with normalized Manhattan distance over numerical attributes.
//
//   - Search runs SEA, the index-free sampling-estimation pipeline: it is
//     fast and reports a Bag-of-Little-Bootstraps confidence interval whose
//     margin of error certifies the relative error of the reported attribute
//     distance (Theorem 11 of the paper).
//   - ExactSearch runs the branch-and-bound baseline with the paper's three
//     pruning strategies; exponential in the worst case, exact when it
//     finishes within its state budget.
//   - ACQ, LocATC, VAC and EVAC are the competing methods from the paper's
//     experimental study, for comparison on your own data.
//
// Heterogeneous graphs are supported through meta-path projections
// (NewHetGraphBuilder / Project), size-bounded search through
// Options.SizeLo/SizeHi, and the k-truss model through Options.Model.
//
// # Serving
//
// For serving many queries over one fixed graph, NewEngine builds a
// long-lived, concurrency-safe engine that amortizes the per-call cost of
// Search: the attribute metric and the core/truss decompositions are
// precomputed once and shared (the decompositions double as an admission
// index that proves the absence of a community without searching), per-query
// distance vectors and full Results are held in sharded LRU caches, and
// concurrent identical queries are coalesced so the work happens once.
// Engine.Search serves one request under an optional deadline,
// Engine.BatchSearch drives a worker pool, and both report flat per-stage
// timing metrics (QueryMetrics, Engine.Stats). cmd/seaserve exposes an
// engine over HTTP (/search, /batch, /healthz, /stats).
//
// # Quickstart
//
//	b := sea.NewGraphBuilder(n, 2)        // n nodes, 2 numerical attributes
//	b.AddEdge(0, 1)                       // ... wire the graph
//	b.SetTextAttrs(0, "movie", "crime")   // textual attributes
//	b.SetNumAttrs(0, 9.2, 1.6e6)          // numerical attributes
//	g, err := b.Build()
//	m, err := sea.NewMetric(g, 0.5)       // γ=0.5 balances text vs numbers
//	res, err := sea.Search(g, m, q, sea.DefaultOptions())
//	fmt.Println(res.Community, res.Delta, res.CI)
//
// See examples/ for runnable programs and internal/experiments for the code
// that regenerates every table and figure of the paper.
package sea
