// Package sea is a Go implementation of "Scalable Community Search with
// Accuracy Guarantee on Attributed Graphs" (ICDE 2024): community search
// over attributed graphs that returns, together with each community, a
// confidence interval on its query-centric attribute distance and a
// user-controlled relative-error bound.
//
// # Overview
//
// Given an attributed graph and a query node q, the library finds a
// connected k-core (or k-truss) containing q whose members are similar to q
// under a composite attribute distance mixing Jaccard distance over textual
// attributes with normalized Manhattan distance over numerical attributes.
//
// The public API is one request type answered by many methods, mirroring
// the paper's experimental design (§VII): a Request is the graph-independent
// query spec — query node, method, k, structural model, accuracy and size
// parameters, seed — and every solver answers it through the same Searcher
// interface with the same Outcome shape:
//
//	req := sea.DefaultRequest(q)          // method SEA, the paper's defaults
//	req.K, req.ErrorBound = 6, 0.01
//	out, err := sea.Execute(ctx, g, req)  // or NewSearcher(m).Search(ctx, g, req)
//	fmt.Println(out.Community, out.Delta, out.SEA.CI)
//
// Registered methods (Request.Method / NewSearcher):
//
//   - MethodSEA — the index-free sampling-estimation pipeline (§V), fast,
//     with a Bag-of-Little-Bootstraps confidence interval certifying the
//     relative error of the reported attribute distance (Theorem 11);
//   - MethodExact — the branch-and-bound baseline with the paper's three
//     pruning strategies (§IV); Request.MaxStates bounds the search tree,
//     returning the best-so-far with ErrBudgetExhausted;
//   - MethodACQ, MethodLocATC, MethodVAC, MethodEVAC — the competing
//     methods of the paper's experimental study;
//   - MethodStructural — the plain maximal connected k-core/k-truss,
//     attributes ignored.
//
// Every Outcome carries the same q-centric δ, recomputed identically
// whatever the method, so outcomes are directly comparable. Failures
// classify through errors.Is against the shared sentinels ErrNoCommunity,
// ErrBudgetExhausted and ErrInvalidRequest.
//
// Execution is context-aware end to end: the search loops of every method
// poll the context, so cancelling it (deadline, client disconnect) stops
// the work promptly. Direct calls (Execute, Searcher.Search) return the
// best community found so far with the context's error wrapped; the
// serving path (Engine.Query, HTTP) returns the deadline error and
// discards the cancelled computation.
//
// Heterogeneous graphs are supported through meta-path projections
// (NewHetGraphBuilder / Project), size-bounded search through
// Request.SizeLo/SizeHi, and the k-truss model through Request.Model.
//
// # Serving
//
// For serving many queries over one fixed graph, NewEngine builds a
// long-lived, concurrency-safe engine that amortizes the per-call cost of
// Execute: the attribute metric and the core/truss decompositions are
// precomputed once and shared (the decompositions double as an admission
// index that proves the absence of a community for any method without
// searching), per-query distance vectors and full Outcomes are held in
// sharded LRU caches keyed by the canonical Request, and concurrent
// identical requests are coalesced so the work happens once.
//
// Engine.Query serves one Request with whatever method it names,
// Engine.Batch drives a worker pool, and both report flat per-stage timing
// metrics (QueryMetrics, Engine.Stats). Per-request deadlines cancel the
// underlying search — a stuck query frees its concurrency slot at its
// deadline instead of holding it until the search finishes on its own.
// NewHTTPHandler exposes an engine over HTTP: /search and /batch speak the
// Request JSON form, and /compare replays one Request through several
// methods side by side.
//
// # Snapshots
//
// An engine's full serving state — the CSR graph arrays, the attribute
// dictionary, the text/numeric attribute columns, and the precomputed
// admission indexes (coreness, node-trussness, the metric's normalization
// table) — persists as one versioned, checksummed binary snapshot
// (Engine.WriteSnapshot / WriteSnapshot), and reopens ready to serve with
// zero parsing and zero recomputation (OpenSnapshot + NewEngineFromSnapshot).
// On a profile-scale graph the snapshot path boots an engine more than 10×
// faster than parsing the text format and rebuilding the indexes
// (BenchmarkBoot in internal/store).
//
// The format guarantees: a deterministic byte stream for a given state; a
// version check (ErrSnapshotVersion when the magic or version is not this
// build's); CRC-32C plus structural validation of every array on open
// (ErrSnapshotCorrupt); and semantic identity — the same Request answered
// by the written and the reopened engine yields a byte-identical Outcome.
//
// Snapshots are produced by cmd/datagen -pack, cmd/seacli pack (text →
// snapshot), or any engine at runtime.
//
// Two on-disk layouts exist. Version 1 is the sequential heap-loadable
// stream. Version 2 (seacli pack -mmap-align, or PackOptions.Align) lays
// every array out at an 8-byte-aligned file offset behind a section table,
// so OpenMappedSnapshot serves the snapshot zero-copy from a read-only
// memory mapping — boot cost is O(header + dictionary), independent of
// graph size. PackOptions.Compress additionally stores the adjacency as
// per-node delta+uvarint runs (decoded into caller scratch at query time)
// while keeping Degree and positional edge IDs O(1). Every consumer reaches
// the graph through the Adjacency/GraphStore interfaces, so heap, mapped
// and compressed backings answer byte-identically — including live
// mutation, which overlays heap deltas over the read-only mapped base.
// DetectSnapshotFile describes any file's layout without opening it.
//
// # Multi-graph serving
//
// NewCatalog builds a named registry of datasets, each backed by its own
// Engine, for servers that mount several graphs at once. Request routing
// is the Request.Graph field on the wire (empty = the default dataset);
// NewCatalogHTTPHandler serves the full query surface routed per dataset,
// plus /graphs (list, shape, per-engine stats) and /admin/reload
// (hot-swap: the new snapshot loads and validates off to the side, one
// atomic pointer flip publishes it, in-flight queries drain on the old
// engine while new ones hit the new snapshot — a corrupt file never
// disturbs the running engine). A JSON manifest (LoadCatalogManifest,
// Catalog.MountManifest) mounts the catalog at boot:
//
//	{"default": "facebook",
//	 "datasets": [{"name": "facebook", "path": "facebook.snap"},
//	              {"name": "github",   "path": "github.snap", "gamma": 0.7}]}
//
// The quickstart from nothing to a served, live-updatable snapshot:
//
//	datagen -dataset facebook -scale 0.5 -out fb.txt    # text exchange format
//	seacli pack -load fb.txt -out fb.snap               # pack graph + indexes
//	seaserve -snapshot fb.snap -journal fb.journal &    # boots in milliseconds
//	curl 'localhost:8080/search?q=10&k=6&graph=fb'
//	seacli mutate -add-edge 3,9 -set-attr "4=db,ml"     # live update, journaled
//	seacli mutate -remove-edge 3,9 -compact             # fold journal → snapshot
//
// # Live updates
//
// The served graph is not frozen: Engine.Apply (programmatic),
// Catalog.Mutate (per dataset) and POST /admin/mutate (wire) fold a batch
// of Mutations — AddEdgeDelta, RemoveEdgeDelta, AddNodeDelta,
// SetAttrDelta — into the running engine without a reload or a hot-swap.
// The deltas accumulate in a delta-overlay graph view and materialize into
// a fresh immutable CSR in one pass; the coreness and trussness admission
// indexes are maintained incrementally — bounded re-computation restricted
// to the affected region (the subcore of the touched endpoints, the
// triangle-connected truss scope below a level bound) instead of a
// whole-graph decomposition, proven equal to from-scratch decomposition on
// randomized mutation sequences. Cache invalidation is scoped the same
// way: only result entries whose query node falls in the affected region
// (and, for attribute changes, the distance vectors of the touched
// component) are dropped; everything else stays warm, and structural edits
// drop no distance vectors at all. The new state publishes atomically, so
// a request always runs against one consistent graph + index generation.
//
// Durability is a write-ahead mutation journal (seaserve -journal,
// Catalog.MountPathJournaled): batches are appended and synced before the
// mutation call returns, replayed on top of the snapshot at boot (per-record
// CRCs truncate a torn tail), and folded into a fresh snapshot by the
// compactor (Catalog.Compact, POST /admin/compact, or automatically every
// -compact-every batches), which then truncates the journal.
//
// Concurrent writers go through a staged group-commit pipeline rather
// than serializing one fsync and one maintenance pass each: Catalog.Mutate
// enqueues the caller's delta group on a per-dataset batcher
// (CommitConfig: -commit-max-batch groups per flush, -commit-max-wait
// batching window, -commit-queue backpressure bound) and a single flusher
// folds the whole batch through one incremental-maintenance session, one
// published engine generation (version+1 per flush, not per writer), and
// one journal batch record — one sequence number, one CRC, one fsync for
// the lot. Each group stays all-or-nothing with its own result; a full
// queue sheds new writes with ErrOverloaded (HTTP 429 + Retry-After)
// before anything is applied, so an acknowledged delta is never lost. The
// default -commit-max-wait of 0 flushes immediately with whatever is
// queued: an uncontended writer pays no added latency, and batches form
// naturally while the previous flush's fsync runs.
//
// # Distributed serving
//
// The journal doubles as a replication stream. A follower (seaserve
// -follow, internal/cluster.Follower) bootstraps from GET /admin/replicate
// — a streamed snapshot whose headers carry the exact (version, lineage)
// replication cursor — then tails GET /admin/journal?from= and folds each
// batch through its own catalog mutation path, so replicas are cache-warm,
// journaled, and promotable. Cursors the primary can no longer serve
// (compaction passed them by, or a hot-swap started a new lineage) answer
// 410 Gone and the follower re-bootstraps transparently. cmd/searouter
// fronts a primary plus its followers: consistent-hash read placement,
// scatter-gather /batch and /compare with per-shard deadlines and
// partial-result degradation, write forwarding to the primary, and
// automatic promotion of the most-caught-up follower when the primary
// dies. Every response carries an X-Request-ID for end-to-end correlation,
// and every node serves its counters in Prometheus text form on /metrics.
//
// # Fault tolerance
//
// The failure paths are engineered and tested, not hoped about. The router
// retries failed reads against a different in-sync replica under jittered
// exponential backoff and keeps a circuit breaker per member (consecutive
// failures open it; after a cooldown one half-open probe decides), so a
// flaky or dead member is routed around instead of answered with its
// errors; exhausted retries yield an honest terminal status (429 for a
// shed, 503 when every breaker is open, else 502 — each with Retry-After
// and the request id). Nodes bound their own load: -max-inflight caps
// admitted cache-miss computations per dataset and sheds the excess
// immediately with 429 + Retry-After, behind the result cache and request
// coalescing so hits and coalesced joins always answer. Followers whose
// sync fails back off exponentially (capped, jittered) and report it in
// /admin/replication; a severed bootstrap stream fails clean and a failed
// journal append rewinds, fails the dataset closed for writes while reads
// keep serving, and heals by compaction. All of it is provable because the
// failure points are injectable: internal/faults arms named sites
// (journal.fsync, replicate.stream, router.shard, engine.search, ...)
// with seed-deterministic specs (seaserve/searouter -faults, $SEAFAULTS)
// at zero cost when disarmed, and make chaos-smoke replays the whole
// story — injected faults plus a kill -9ed primary under load — against
// real binaries.
//
// # Observability
//
// internal/obs is the measurement substrate: a lock-free, allocation-free
// latency histogram (atomic log-bucketed counters, ≤25% bucket width,
// exact count and sum) whose record path is three atomic adds, recorded
// unconditionally on every stage of every request. Snapshots are immutable
// and mergeable — one shared bucket layout, so per-engine, per-dataset and
// client-side measurements aggregate identically — and estimate
// percentiles by interpolation. The engine keeps a histogram per read
// stage (admission, distance, search; whole-request split by
// hit/miss/coalesced outcome) and per mutation stage (apply, journal
// append, scoped invalidation); the router measures per-shard scatter
// latency and fan-out width. GET /metrics renders them as Prometheus
// histogram families (cumulative le buckets, _sum, _count — validated by
// the strict parser obs.CheckExposition), GET /stats digests them to JSON
// percentiles, and GET /debug/trace?n= returns the newest spans from a
// fixed-size trace ring (request id, stage timings, cache provenance;
// served-by and scatter width at the router). A slow-query log
// (Config.SlowQuery, seaserve -slow-query) emits one structured line per
// offender, and -pprof mounts net/http/pprof on a separate loopback
// listener. cmd/seaload closes the loop: an open-loop generator (fixed
// schedule, so coordinated omission cannot hide queueing) that drives
// weighted search/batch/compare/mutate mixes over zipf-distributed query
// nodes and merges {scenario, qps, p50/p90/p99/p999} records into the
// committed BENCH_<pr>.json trajectory (make bench-json, make load-smoke).
//
// # Performance
//
// The hot paths run on a pooled per-search workspace (internal/ws):
// epoch-stamped visited/membership sets reset by an epoch bump instead of
// reallocation, reusable frontier/sampling/distance buffers, and an
// induced-subgraph builder that writes into preallocated CSR arrays — so
// steady-state query traffic executes the sampling → extraction →
// estimation loop with ~zero allocations (CI-enforced by the
// BenchmarkSubstrate* AllocsPerRun guards). The embarrassingly-parallel
// inner stages — BLB bag resamples, the peel loop's most-dissimilar scan,
// QueryDist over node ranges — fan out over bounded worker pools sized by
// GOMAXPROCS. Determinism is part of the contract: for a fixed Request
// seed the result is byte-identical whatever the worker count, because
// per-subsample rngs are derived serially, reductions are index-ordered,
// and parallel scans preserve the serial tie-breaks. The repository's
// recorded perf trajectory lives in BENCH_<pr>.json files produced by
// `make bench-json` and compared with `make bench-compare` (or
// `seabench -compare BENCH_4.json`).
//
// # Migrating from the method-specific entry points
//
// The pre-Request free functions remain as thin deprecated wrappers:
//
//	Search(g, m, q, opts)            → Execute/ExecuteWithMetric, MethodSEA (trace in Outcome.SEA)
//	SearchWithDist(g, dist, q, opts) → Execute with MethodSEA, or NewEngine (cached dist vectors)
//	ExactSearch(g, q, k, dist, cfg)  → Execute with MethodExact and Request.MaxStates
//	ACQ(g, q, k, model)              → Execute with MethodACQ
//	LocATC(g, q, k, model)           → Execute with MethodLocATC
//	VAC(g, m, q, k, model)           → ExecuteWithMetric with MethodVAC
//	EVAC(g, m, q, k, model, states)  → ExecuteWithMetric with MethodEVAC and Request.MaxStates
//	BatchSearch(g, m, qs, opts, w)   → Engine.Batch over []Request
//	Engine.Search(ctx, q, opts)      → Engine.Query(ctx, Request)
//	Engine.BatchSearch(ctx, qs, o)   → Engine.Batch(ctx, []Request)
//
// Every sea.Options field has a Request counterpart (FromOptions/Options
// convert losslessly), and the old per-package error values now alias the
// shared sentinels, so errors.Is checks keep working unchanged.
//
// # Quickstart
//
//	b := sea.NewGraphBuilder(n, 2)        // n nodes, 2 numerical attributes
//	b.AddEdge(0, 1)                       // ... wire the graph
//	b.SetTextAttrs(0, "movie", "crime")   // textual attributes
//	b.SetNumAttrs(0, 9.2, 1.6e6)          // numerical attributes
//	g, err := b.Build()
//	req := sea.DefaultRequest(q)          // SEA, k=4, e=2%, 95% confidence
//	out, err := sea.Execute(ctx, g, req)
//	fmt.Println(out.Community, out.Delta, out.SEA.CI)
//
// See examples/ for runnable programs and internal/experiments for the code
// that regenerates every table and figure of the paper.
package sea
