// Event planning (the cocktail-party scenario of Sozio & Gionis that §VI-B
// cites): find a workshop cohort of between 12 and 20 mutually-connected
// people similar to an organizer, using size-bounded SEA on a social-network
// analog — and show how the size bound changes what comes back.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	sea "repro"
)

func main() {
	d, err := sea.GenerateDataset("facebook", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	g := d.Graph
	fmt.Printf("social network: %d people, %d friendships\n", g.NumNodes(), g.NumEdges())

	m, err := sea.NewMetric(g, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	const k = 5
	organizer := d.QueryNodes(1, k, 99)[0]
	fmt.Printf("organizer: node %d\n\n", organizer)

	ctx := context.Background()

	// Unbounded search first: the natural community around the organizer.
	free, err := sea.ExecuteWithMetric(ctx, g, m, withK(organizer, k))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unbounded community: %d people, δ* = %.4f\n", len(free.Community), free.Delta)

	// The workshop has between 12 and 20 seats.
	for _, bound := range [][2]int{{12, 20}, {20, 30}} {
		req := withK(organizer, k)
		req.SizeLo, req.SizeHi = bound[0], bound[1]
		res, err := sea.ExecuteWithMetric(ctx, g, m, req)
		if errors.Is(err, sea.ErrNoCommunity) {
			fmt.Printf("size [%d,%d]: no qualifying cohort\n", bound[0], bound[1])
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("size [%d,%d]: %d people, δ* = %.4f, CI = %v, rounds = %d\n",
			bound[0], bound[1], len(res.Community), res.Delta, res.SEA.CI, len(res.SEA.Rounds))
		// Everyone in the cohort knows at least k others in it — verify.
		in := map[sea.NodeID]bool{}
		for _, v := range res.Community {
			in[v] = true
		}
		minFriends := len(res.Community)
		for _, v := range res.Community {
			friends := 0
			for _, u := range g.Neighbors(v) {
				if in[u] {
					friends++
				}
			}
			if friends < minFriends {
				minFriends = friends
			}
		}
		fmt.Printf("              every attendee knows ≥ %d others in the cohort\n", minFriends)
	}
}

func withK(q sea.NodeID, k int) sea.Request {
	req := sea.DefaultRequest(q)
	req.K = k
	return req
}
