// Expert finding (the DBLP scenario of §VI-A): build a small bibliographic
// heterogeneous graph by hand with the public API, project it along the
// author–paper–author meta-path, and find a (k,P)-core community of experts
// around a seed author with the k-truss model for extra cohesion.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	sea "repro"
)

func main() {
	b := sea.NewHetGraphBuilder()
	author := b.NodeType("author")
	paper := b.NodeType("paper")
	venue := b.NodeType("venue")
	writes := b.EdgeType("writes")
	publishedIn := b.EdgeType("published_in")

	rng := rand.New(rand.NewSource(5))

	// Two research groups of 12 authors each plus 6 bridging authors.
	const groupSize, bridges = 12, 6
	var authors []sea.NodeID
	for i := 0; i < 2*groupSize+bridges; i++ {
		a := b.AddNode(author)
		authors = append(authors, a)
		switch {
		case i < groupSize: // databases group
			b.SetTextAttrs(a, "databases", "query-processing", "graphs")
			b.SetNumAttrs(a, 20+rng.Float64()*30, 8+rng.Float64()*10) // pubs, h-index
		case i < 2*groupSize: // ML group
			b.SetTextAttrs(a, "machine-learning", "vision")
			b.SetNumAttrs(a, 15+rng.Float64()*40, 6+rng.Float64()*14)
		default: // bridge authors publish in both
			b.SetTextAttrs(a, "databases", "machine-learning")
			b.SetNumAttrs(a, 10+rng.Float64()*20, 4+rng.Float64()*8)
		}
	}
	venues := []sea.NodeID{b.AddNode(venue), b.AddNode(venue)}

	// Co-authored papers: dense within groups, a few across via bridges.
	coauthor := func(a1, a2 sea.NodeID, v sea.NodeID) {
		p := b.AddNode(paper)
		b.AddEdge(a1, p, writes)
		b.AddEdge(a2, p, writes)
		b.AddEdge(p, v, publishedIn)
	}
	for g := 0; g < 2; g++ {
		base := g * groupSize
		for i := 0; i < groupSize; i++ {
			for j := i + 1; j < groupSize; j++ {
				if rng.Float64() < 0.5 {
					coauthor(authors[base+i], authors[base+j], venues[g])
				}
			}
		}
	}
	for i := 0; i < bridges; i++ {
		bridge := authors[2*groupSize+i]
		coauthor(bridge, authors[rng.Intn(groupSize)], venues[0])
		coauthor(bridge, authors[groupSize+rng.Intn(groupSize)], venues[1])
	}

	h, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	path, err := b.MetaPathByNames("author", "writes", "paper", "writes", "author")
	if err != nil {
		log.Fatal(err)
	}
	proj, err := sea.Project(h, path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bibliographic graph: %d nodes (%d authors), %d edges\n",
		h.NumNodes(), len(authors), h.NumEdges())
	fmt.Printf("A-P-A projection: %d authors, %d co-authorship edges\n\n",
		proj.Graph.NumNodes(), proj.Graph.NumEdges())

	m, err := sea.NewMetric(proj.Graph, 0.6) // lean textual: interests matter
	if err != nil {
		log.Fatal(err)
	}
	q := proj.FromHet[authors[0]] // a databases-group author

	// k-truss is stricter than k-core at the same k (every edge needs k−2
	// triangles), so use one notch lower for the truss run.
	for _, cfg := range []struct {
		model sea.Model
		k     int
	}{{sea.KCore, 4}, {sea.KTruss, 3}} {
		model := cfg.model
		req := sea.DefaultRequest(q)
		req.K = cfg.k
		req.Model = model
		res, err := sea.ExecuteWithMetric(context.Background(), proj.Graph, m, req)
		if err != nil {
			fmt.Printf("%v: no community (%v)\n", model, err)
			continue
		}
		dbCount := 0
		for _, v := range res.Community {
			for _, tok := range proj.Graph.TextAttrs(v) {
				if proj.Graph.Dict().Name(tok) == "databases" {
					dbCount++
					break
				}
			}
		}
		fmt.Printf("%v experts around author %d: %d members, δ* = %.4f (CI %v)\n",
			model, q, len(res.Community), res.Delta, res.SEA.CI)
		fmt.Printf("  %d/%d members share the 'databases' interest\n",
			dbCount, len(res.Community))
	}
}
