// Influential community search (the §VI-A HIC extension): on a social
// network analog with a synthetic influence score per user, find the
// community around a seed user whose *least* influential member is as
// influential as possible, and compare the three structural models on the
// same neighborhood.
package main

import (
	"fmt"
	"log"
	"math/rand"

	sea "repro"
)

func main() {
	d, err := sea.GenerateDataset("github", 0.4)
	if err != nil {
		log.Fatal(err)
	}
	g := d.Graph
	fmt.Printf("developer network: %d users, %d follow edges\n", g.NumNodes(), g.NumEdges())

	// Influence: a noisy function of degree (well-connected users influence
	// more), standing in for follower counts or h-indices.
	rng := rand.New(rand.NewSource(11))
	influence := make([]float64, g.NumNodes())
	for v := range influence {
		influence[v] = float64(g.Degree(sea.NodeID(v))) * (0.5 + rng.Float64())
	}

	const k = 5
	seed := d.QueryNodes(1, k, 17)[0]
	fmt.Printf("seed user: %d (influence %.1f)\n\n", seed, influence[seed])

	res, err := sea.InfluentialSearch(g, seed, k, influence)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("influential %d-core community: %d members\n", k, len(res.Community))
	fmt.Printf("  minimum member influence: %.2f (maximized)\n", res.MinInfluence)
	fmt.Printf("  EVT-estimated max influence in the region: %.2f (observed max %.2f, GPD ξ=%.2f)\n\n",
		res.MaxEstimate.Max, res.MaxEstimate.SampleMax, res.MaxEstimate.Xi)

	// The §II model ranking on the same query: k-core ⪯ k-truss ⪯ k-clique.
	core := sea.MaximalConnectedKCore(g, seed, k)
	truss := sea.MaximalConnectedKTruss(g, seed, k)
	cliqueComm, err := sea.KCliqueCommunity(g, seed, k, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("structure models around the same seed (more cohesive ⇒ smaller):")
	fmt.Printf("  %d-core:    %d members\n", k, len(core))
	fmt.Printf("  %d-truss:   %d members\n", k, len(truss))
	fmt.Printf("  %d-clique:  %d members\n", k, len(cliqueComm))
}
