// Movie recommendation (the paper's motivating IMDB scenario): generate the
// IMDB-like heterogeneous analog, project it along the actor–movie–actor
// meta-path, and recommend a community of collaborators similar to a seed
// actor — comparing SEA against the VAC and ACQ baselines.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	sea "repro"
)

func main() {
	d, err := sea.GenerateHetDataset("imdb", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imdb analog: %d het nodes, %d edges, meta-path target type %q\n",
		d.Het.NumNodes(), d.Het.NumEdges(), d.Het.NodeTypeName(d.Path.Target()))

	proj, err := sea.Project(d.Het, d.Path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("actor projection: %d actors, %d co-acting edges\n",
		proj.Graph.NumNodes(), proj.Graph.NumEdges())

	m, err := sea.NewMetric(proj.Graph, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	const k = 5
	hetQ := d.QueryTargets(1, k, 7)[0]
	q := proj.FromHet[hetQ]
	fmt.Printf("seed actor: heterogeneous node %d (projected %d)\n\n", hetQ, q)

	// One Request, three solvers: the Outcome's δ is computed identically
	// for every method, so the numbers below are directly comparable.
	ctx := context.Background()
	req := sea.DefaultRequest(q)
	req.K = k
	res, err := sea.ExecuteWithMetric(ctx, proj.Graph, m, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SEA (k,P)-core community: %d actors, δ* = %.4f, CI = %v\n",
		len(res.Community), res.Delta, res.SEA.CI)

	req.Method = sea.MethodVAC
	if out, err := sea.ExecuteWithMetric(ctx, proj.Graph, m, req); err == nil {
		fmt.Printf("VAC community:            %d actors, δ  = %.4f\n",
			len(out.Community), out.Delta)
	}
	req.Method = sea.MethodACQ
	if out, err := sea.ExecuteWithMetric(ctx, proj.Graph, m, req); err == nil {
		fmt.Printf("ACQ community:            %d actors, δ  = %.4f\n",
			len(out.Community), out.Delta)
	} else if errors.Is(err, sea.ErrNoCommunity) {
		fmt.Println("ACQ found no shared-attribute community")
	}

	// How well does SEA recover the planted collaboration circle?
	truth := map[sea.NodeID]bool{}
	for _, v := range d.Communities[d.CommunityOf[indexOf(d.Targets, hetQ)]] {
		truth[proj.FromHet[v]] = true
	}
	hits := 0
	for _, v := range res.Community {
		if truth[v] {
			hits++
		}
	}
	fmt.Printf("\nplanted circle recovery: %d/%d members of SEA's community are in the true circle (|truth| = %d)\n",
		hits, len(res.Community), len(truth))
}

func indexOf(s []sea.NodeID, v sea.NodeID) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}
