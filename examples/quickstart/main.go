// Quickstart: build the small IMDB snippet of the paper's Figure 1 by hand,
// then find the crime-drama community around The Godfather by running one
// Request through two searchers — the exact baseline and SEA — the way the
// /compare endpoint does.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	sea "repro"
)

func main() {
	// Figure 1's movies: ⟨type,{genres}⟩ and ⟨rating, #ratings⟩ attributes.
	titles := []string{
		"The Godfather", "The Godfather II", "Goodfellas", "Heat",
		"Once Upon a Time in America", "The Untouchables", "Scarface",
		"Jackie Brown", "The Godfather III", "Casino", "Body Double",
		"Running Scared",
	}
	b := sea.NewGraphBuilder(len(titles), 2)
	attrs := [][]string{
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "action", "drama"}, {"movie", "action", "crime"},
	}
	nums := [][2]float64{
		{9.2, 1.6e6}, {9.0, 1.1e6}, {8.7, 1.0e6}, {8.3, 550e3},
		{8.3, 320e3}, {7.9, 280e3}, {8.3, 750e3}, {7.5, 300e3},
		{7.6, 360e3}, {8.2, 500e3}, {6.2, 6.7e3}, {6.5, 9e3},
	}
	for i := range titles {
		b.SetTextAttrs(sea.NodeID(i), attrs[i]...)
		b.SetNumAttrs(sea.NodeID(i), nums[i][0], nums[i][1])
	}
	// Shared-actor edges: a dense clique among the classic crime dramas, the
	// two action movies hanging off it.
	edges := [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 8}, {1, 2}, {1, 4}, {1, 8},
		{2, 3}, {2, 9}, {3, 9}, {4, 5}, {4, 8}, {5, 6}, {5, 7}, {6, 7},
		{2, 4}, {3, 5}, {6, 9}, {7, 9}, {0, 9}, {1, 3},
		{10, 11}, {10, 6}, {11, 7}, {10, 7}, {11, 6},
	}
	for _, e := range edges {
		b.AddEdge(sea.NodeID(e[0]), sea.NodeID(e[1]))
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// One Request describes the query — node, k, accuracy — independent of
	// the solver; each Searcher answers it with its own method.
	req := sea.DefaultRequest(0) // The Godfather
	req.K = 3
	req.ErrorBound = 0.01 // 1% error bound at the default 95% confidence
	ctx := context.Background()

	exact, err := sea.NewSearcher(sea.MethodExact)
	if err != nil {
		log.Fatal(err)
	}
	ex, err := exact.Search(ctx, g, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Exact:  δ = %.4f  %s\n", ex.Delta, names(titles, ex.Community))

	approx, err := sea.NewSearcher(sea.MethodSEA)
	if err != nil {
		log.Fatal(err)
	}
	res, err := approx.Search(ctx, g, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SEA:    δ* = %.4f  CI = %v\n", res.Delta, res.SEA.CI)
	fmt.Printf("        community: %s\n", names(titles, res.Community))
	fmt.Printf("        relative error vs exact: %.2f%%\n",
		100*abs(res.Delta-ex.Delta)/ex.Delta)
}

func names(titles []string, members []sea.NodeID) string {
	sorted := append([]sea.NodeID(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := ""
	for i, v := range sorted {
		if i > 0 {
			out += ", "
		}
		out += titles[v]
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
