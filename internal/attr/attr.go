// Package attr implements the attribute-cohesiveness metric of the paper
// (§II): Jaccard distance over textual attributes, min-max-normalized
// Manhattan distance over numerical attributes, their composite combination
// f(u,v) = γ·f_t + (1−γ)·f_#, and the q-centric attribute distance δ(H) of a
// community.
package attr

import (
	"context"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/ws"
)

// Normalizer rescales each numerical attribute dimension to [0,1] using the
// min and max observed over a graph (the Z(·) of §II).
type Normalizer struct {
	min, max []float64
}

// NewNormalizer computes per-dimension min/max over all nodes of g.
func NewNormalizer(g graph.Store) *Normalizer {
	d := g.NumDim()
	nz := &Normalizer{min: make([]float64, d), max: make([]float64, d)}
	for i := 0; i < d; i++ {
		nz.min[i] = math.Inf(1)
		nz.max[i] = math.Inf(-1)
	}
	for v := 0; v < g.NumNodes(); v++ {
		vals := g.NumAttrs(graph.NodeID(v))
		for i, x := range vals {
			if x < nz.min[i] {
				nz.min[i] = x
			}
			if x > nz.max[i] {
				nz.max[i] = x
			}
		}
	}
	return nz
}

// Bounds returns copies of the per-dimension min and max the normalizer was
// built with — the serializable "metric table" a snapshot persists so a
// reopened graph scales attributes identically without rescanning them.
func (nz *Normalizer) Bounds() (min, max []float64) {
	return append([]float64(nil), nz.min...), append([]float64(nil), nz.max...)
}

// NewNormalizerFromBounds rebuilds a Normalizer from persisted per-dimension
// bounds, the inverse of Bounds.
func NewNormalizerFromBounds(min, max []float64) (*Normalizer, error) {
	if len(min) != len(max) {
		return nil, fmt.Errorf("attr: bounds length mismatch: %d min, %d max", len(min), len(max))
	}
	return &Normalizer{
		min: append([]float64(nil), min...),
		max: append([]float64(nil), max...),
	}, nil
}

// Scale maps value x in dimension i to [0,1]. Dimensions with zero range map
// to 0 so they contribute no distance.
func (nz *Normalizer) Scale(i int, x float64) float64 {
	span := nz.max[i] - nz.min[i]
	if span <= 0 || math.IsInf(span, 0) {
		return 0
	}
	s := (x - nz.min[i]) / span
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Metric evaluates the composite attribute distance of §II on a fixed graph.
type Metric struct {
	g     graph.Store
	gamma float64
	norm  *Normalizer
}

// NewMetric returns a Metric with balance factor gamma ∈ [0,1].
// gamma = 1 uses only textual (Jaccard) distance, gamma = 0 only numerical
// (Manhattan) distance.
func NewMetric(g graph.Store, gamma float64) (*Metric, error) {
	if gamma < 0 || gamma > 1 {
		return nil, fmt.Errorf("attr: gamma %v outside [0,1]", gamma)
	}
	return &Metric{g: g, gamma: gamma, norm: NewNormalizer(g)}, nil
}

// NewMetricWithNormalizer is NewMetric with a precomputed Normalizer
// (typically reopened from a snapshot), skipping the full-graph min/max scan.
// The normalizer's width must match the graph's numerical dimension.
func NewMetricWithNormalizer(g graph.Store, gamma float64, nz *Normalizer) (*Metric, error) {
	if gamma < 0 || gamma > 1 {
		return nil, fmt.Errorf("attr: gamma %v outside [0,1]", gamma)
	}
	if len(nz.min) != g.NumDim() {
		return nil, fmt.Errorf("attr: normalizer width %d, graph NumDim %d", len(nz.min), g.NumDim())
	}
	return &Metric{g: g, gamma: gamma, norm: nz}, nil
}

// Graph returns the graph backing the metric is bound to.
func (m *Metric) Graph() graph.Store { return m.g }

// Normalizer returns the metric's numerical-attribute normalizer.
func (m *Metric) Normalizer() *Normalizer { return m.norm }

// Gamma returns the balance factor.
func (m *Metric) Gamma() float64 { return m.gamma }

// Jaccard returns the Jaccard distance between the textual attribute sets of
// u and v: 1 − |A∩B|/|A∪B|. Two empty sets have distance 0.
func (m *Metric) Jaccard(u, v graph.NodeID) float64 {
	a, b := m.g.TextAttrs(u), m.g.TextAttrs(v)
	return JaccardTokens(a, b)
}

// JaccardTokens computes the Jaccard distance of two sorted token slices.
func JaccardTokens(a, b []int32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return 1 - float64(inter)/float64(union)
}

// SharedTokens returns |A∩B| for two sorted token slices.
func SharedTokens(a, b []int32) int {
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return inter
}

// Manhattan returns the normalized Manhattan distance between the numerical
// attribute vectors of u and v, averaged over dimensions, in [0,1].
func (m *Metric) Manhattan(u, v graph.NodeID) float64 {
	d := m.g.NumDim()
	if d == 0 {
		return 0
	}
	a, b := m.g.NumAttrs(u), m.g.NumAttrs(v)
	sum := 0.0
	for i := 0; i < d; i++ {
		sum += math.Abs(m.norm.Scale(i, a[i]) - m.norm.Scale(i, b[i]))
	}
	return sum / float64(d)
}

// Distance returns the composite attribute distance
// f(u,v) = γ·Jaccard + (1−γ)·Manhattan, in [0,1].
func (m *Metric) Distance(u, v graph.NodeID) float64 {
	return m.gamma*m.Jaccard(u, v) + (1-m.gamma)*m.Manhattan(u, v)
}

// queryDistMinParallel is the node count below which QueryDist stays
// serial: per-node distance work is cheap enough that goroutine fan-out
// only pays for itself on larger graphs. Package-level so tests can force
// either path.
var queryDistMinParallel = 1 << 12

// queryDistStride is the per-chunk block size between context polls.
const queryDistStride = 1 << 10

// QueryDist precomputes f(v,q) for every node v of the graph. Index with
// the node ID. The query's own entry is 0. On graphs large enough to
// amortize the fan-out the vector is filled by a bounded worker pool
// (GOMAXPROCS workers over disjoint node ranges); every write targets a
// distinct index, so the result is identical to the serial fill.
func (m *Metric) QueryDist(q graph.NodeID) []float64 {
	return m.QueryDistInto(nil, q)
}

// QueryDistInto is QueryDist writing into dst, which is grown only when its
// capacity is below NumNodes: zero allocations in the steady state.
func (m *Metric) QueryDistInto(dst []float64, q graph.NodeID) []float64 {
	out, _ := m.QueryDistContext(context.Background(), dst, q)
	return out
}

// QueryDistContext is QueryDistInto under a context: the fill polls ctx
// between blocks of nodes and stops early when it is cancelled, returning
// the partially-filled vector together with ctx's error. Note the Engine
// intentionally does NOT pass request contexts here — its distance fills
// run detached so even an abandoned request warms the shared cache — but
// callers computing one-off vectors on large graphs can bound them with
// this form.
func (m *Metric) QueryDistContext(ctx context.Context, dst []float64, q graph.NodeID) ([]float64, error) {
	n := m.g.NumNodes()
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if n < queryDistMinParallel || ws.MaxWorkers() == 1 {
		// Serial fast path, free of the parallel closure: zero allocations
		// once dst has warmed.
		m.fillDist(ctx, dst, q, 0, n)
		return dst, ctx.Err()
	}
	err := ws.ForRange(ctx, n, queryDistMinParallel, func(lo, hi int) {
		m.fillDist(ctx, dst, q, lo, hi)
	})
	if err == nil {
		err = ctx.Err()
	}
	return dst, err
}

// fillDist fills dst[lo:hi] with f(v,q), polling ctx every queryDistStride
// nodes and stopping early on cancellation.
func (m *Metric) fillDist(ctx context.Context, dst []float64, q graph.NodeID, lo, hi int) {
	for b := lo; b < hi; b += queryDistStride {
		if ctx.Err() != nil {
			return
		}
		e := b + queryDistStride
		if e > hi {
			e = hi
		}
		for v := b; v < e; v++ {
			dst[v] = m.Distance(graph.NodeID(v), q)
		}
	}
}

// Delta computes the q-centric attribute distance δ(H) of Definition 4: the
// mean composite distance to q over all members except q itself. A community
// of only {q} has δ = 0.
func Delta(dist []float64, members []graph.NodeID, q graph.NodeID) float64 {
	sum := 0.0
	n := 0
	for _, v := range members {
		if v == q {
			continue
		}
		sum += dist[v]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxPairwise returns the maximum composite distance over all pairs of
// members, the objective VAC minimizes. O(|H|²).
func (m *Metric) MaxPairwise(members []graph.NodeID) float64 {
	max := 0.0
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if d := m.Distance(members[i], members[j]); d > max {
				max = d
			}
		}
	}
	return max
}
