package attr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// imdbFixture reproduces the node attributes of Figure 1 (v1..v5).
func imdbFixture(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(5, 2)
	b.SetTextAttrs(0, "movie", "crime", "drama")
	b.SetNumAttrs(0, 9.2, 1.6e6)
	b.SetTextAttrs(1, "movie", "crime", "drama")
	b.SetNumAttrs(1, 9.0, 1.1e6)
	b.SetTextAttrs(2, "movie", "crime", "drama")
	b.SetNumAttrs(2, 8.3, 839e3)
	b.SetTextAttrs(3, "tvseries", "romance", "drama")
	b.SetNumAttrs(3, 5.7, 800)
	b.SetTextAttrs(4, "movie", "action", "crime")
	b.SetNumAttrs(4, 6.2, 6.7e3)
	for i := 0; i < 4; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.MustBuild()
}

func TestJaccard(t *testing.T) {
	g := imdbFixture(t)
	m, err := NewMetric(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Jaccard(0, 1); d != 0 {
		t.Errorf("identical sets: Jaccard = %v, want 0", d)
	}
	// v1 {movie,crime,drama} vs v4 {tvseries,romance,drama}: |∩|=1, |∪|=5.
	if d, want := m.Jaccard(0, 3), 1-1.0/5; math.Abs(d-want) > 1e-12 {
		t.Errorf("Jaccard(v1,v4) = %v, want %v", d, want)
	}
	// v1 vs v5 {movie,action,crime}: |∩|=2, |∪|=4.
	if d, want := m.Jaccard(0, 4), 0.5; math.Abs(d-want) > 1e-12 {
		t.Errorf("Jaccard(v1,v5) = %v, want %v", d, want)
	}
}

func TestJaccardEmptySets(t *testing.T) {
	b := graph.NewBuilder(2, 0)
	g := b.MustBuild()
	m, _ := NewMetric(g, 1)
	if d := m.Jaccard(0, 1); d != 0 {
		t.Errorf("two empty sets: Jaccard = %v, want 0", d)
	}
}

func TestManhattanNormalization(t *testing.T) {
	g := imdbFixture(t)
	m, _ := NewMetric(g, 0)
	// v1 has max rating (9.2) and max #ratings (1.6M); v4 has min of both.
	if d := m.Manhattan(0, 3); math.Abs(d-1) > 1e-12 {
		t.Errorf("Manhattan(extremes) = %v, want 1", d)
	}
	if d := m.Manhattan(2, 2); d != 0 {
		t.Errorf("Manhattan(self) = %v, want 0", d)
	}
}

func TestCompositeConvexCombination(t *testing.T) {
	g := imdbFixture(t)
	for _, gamma := range []float64{0, 0.25, 0.5, 0.75, 1} {
		m, err := NewMetric(g, gamma)
		if err != nil {
			t.Fatal(err)
		}
		jd := m.Jaccard(0, 3)
		md := m.Manhattan(0, 3)
		want := gamma*jd + (1-gamma)*md
		if got := m.Distance(0, 3); math.Abs(got-want) > 1e-12 {
			t.Errorf("gamma=%v: Distance = %v, want %v", gamma, got, want)
		}
	}
}

func TestNewMetricRejectsBadGamma(t *testing.T) {
	g := imdbFixture(t)
	for _, gamma := range []float64{-0.1, 1.1} {
		if _, err := NewMetric(g, gamma); err == nil {
			t.Errorf("gamma=%v accepted", gamma)
		}
	}
}

func TestDelta(t *testing.T) {
	dist := []float64{0, 0.7, 0.6, 0.6, 0.5, 0.3}
	// The example above Figure 3: δ(H2) over {v1..v6}\q with q=v5 (index 5
	// here holds f=0.3 for v6 etc.) — use members 0..5 with q=0.
	members := []graph.NodeID{0, 1, 2, 3, 4, 5}
	want := (0.7 + 0.6 + 0.6 + 0.5 + 0.3) / 5
	if got := Delta(dist, members, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Delta = %v, want %v", got, want)
	}
	if got := Delta(dist, []graph.NodeID{0}, 0); got != 0 {
		t.Errorf("Delta({q}) = %v, want 0", got)
	}
}

func TestQueryDist(t *testing.T) {
	g := imdbFixture(t)
	m, _ := NewMetric(g, 0.5)
	dist := m.QueryDist(0)
	if dist[0] != 0 {
		t.Errorf("dist[q] = %v, want 0", dist[0])
	}
	for v := 1; v < len(dist); v++ {
		if want := m.Distance(graph.NodeID(v), 0); dist[v] != want {
			t.Errorf("dist[%d] = %v, want %v", v, dist[v], want)
		}
	}
}

func TestMaxPairwise(t *testing.T) {
	g := imdbFixture(t)
	m, _ := NewMetric(g, 0.5)
	members := []graph.NodeID{0, 1, 2, 3, 4}
	want := 0.0
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if d := m.Distance(graph.NodeID(i), graph.NodeID(j)); d > want {
				want = d
			}
		}
	}
	if got := m.MaxPairwise(members); got != want {
		t.Errorf("MaxPairwise = %v, want %v", got, want)
	}
}

func TestSharedTokens(t *testing.T) {
	if got := SharedTokens([]int32{1, 3, 5}, []int32{2, 3, 5, 9}); got != 2 {
		t.Errorf("SharedTokens = %d, want 2", got)
	}
	if got := SharedTokens(nil, []int32{1}); got != 0 {
		t.Errorf("SharedTokens(nil) = %d", got)
	}
}

func TestPropertyDistanceRangeSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		dims := 1 + rng.Intn(3)
		b := graph.NewBuilder(n, dims)
		toks := []string{"a", "b", "c", "d", "e", "f"}
		for v := 0; v < n; v++ {
			var mine []string
			for _, s := range toks {
				if rng.Intn(2) == 0 {
					mine = append(mine, s)
				}
			}
			b.SetTextAttrs(graph.NodeID(v), mine...)
			vals := make([]float64, dims)
			for d := range vals {
				vals[d] = rng.Float64()*100 - 50
			}
			b.SetNumAttrs(graph.NodeID(v), vals...)
		}
		g := b.MustBuild()
		m, err := NewMetric(g, rng.Float64())
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			d := m.Distance(u, v)
			if d < 0 || d > 1 {
				return false
			}
			if math.Abs(d-m.Distance(v, u)) > 1e-12 {
				return false
			}
			if u == v && d != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
