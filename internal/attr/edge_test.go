package attr

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestNormalizerZeroRangeDimension(t *testing.T) {
	// A dimension where every node holds the same value must contribute no
	// distance, not NaN.
	b := graph.NewBuilder(3, 2)
	for v := 0; v < 3; v++ {
		b.SetNumAttrs(graph.NodeID(v), 42, float64(v))
	}
	g := b.MustBuild()
	m, err := NewMetric(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Manhattan(0, 2)
	if math.IsNaN(d) {
		t.Fatal("NaN distance on zero-range dimension")
	}
	// Only the second dimension varies: distance = (|0−1|)/2 = 0.5.
	if math.Abs(d-0.5) > 1e-12 {
		t.Errorf("Manhattan = %v, want 0.5", d)
	}
}

func TestNormalizerNoNumericDims(t *testing.T) {
	b := graph.NewBuilder(2, 0)
	b.SetTextAttrs(0, "a")
	b.SetTextAttrs(1, "b")
	g := b.MustBuild()
	m, err := NewMetric(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Manhattan(0, 1); d != 0 {
		t.Errorf("Manhattan with no dims = %v, want 0", d)
	}
	// Composite collapses to γ·Jaccard.
	if d := m.Distance(0, 1); math.Abs(d-0.5*1) > 1e-12 {
		t.Errorf("Distance = %v, want 0.5", d)
	}
}

func TestScaleClampsOutOfRange(t *testing.T) {
	b := graph.NewBuilder(2, 1)
	b.SetNumAttrs(0, 0)
	b.SetNumAttrs(1, 10)
	g := b.MustBuild()
	m, _ := NewMetric(g, 0)
	nz := m.norm
	if s := nz.Scale(0, -5); s != 0 {
		t.Errorf("Scale(-5) = %v, want clamp to 0", s)
	}
	if s := nz.Scale(0, 25); s != 1 {
		t.Errorf("Scale(25) = %v, want clamp to 1", s)
	}
}

func TestDeltaSkipsQueryOnly(t *testing.T) {
	dist := []float64{0.9, 0.2, 0.4}
	// q included in members must not contribute its own (zero) distance.
	if got, want := Delta(dist, []graph.NodeID{0, 1, 2}, 1), (0.9+0.4)/2; math.Abs(got-want) > 1e-12 {
		t.Errorf("Delta = %v, want %v", got, want)
	}
}
