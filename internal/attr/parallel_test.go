package attr

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func parallelTestGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	b := graph.NewBuilder(n, 2)
	words := []string{"a", "b", "c", "d", "e", "f", "g"}
	for v := 0; v < n; v++ {
		b.SetTextAttrs(graph.NodeID(v), words[rng.Intn(len(words))], words[rng.Intn(len(words))])
		b.SetNumAttrs(graph.NodeID(v), rng.Float64(), rng.NormFloat64())
		b.AddEdge(graph.NodeID(v), graph.NodeID(rng.Intn(n)))
	}
	return b.MustBuild()
}

// TestQueryDistParallelMatchesSerial forces both fill paths over the same
// graph: every index is written independently, so the parallel fill must be
// bit-identical to the serial one.
func TestQueryDistParallelMatchesSerial(t *testing.T) {
	g := parallelTestGraph(t, 3000)
	m, err := NewMetric(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	old := queryDistMinParallel
	defer func() { queryDistMinParallel = old }()

	queryDistMinParallel = 1 << 30
	serial := m.QueryDist(5)
	queryDistMinParallel = 1
	parallel := m.QueryDist(5)
	if len(serial) != len(parallel) {
		t.Fatalf("length mismatch %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("dist[%d]: serial %v parallel %v", i, serial[i], parallel[i])
		}
	}
}

// TestQueryDistIntoReusesBuffer checks the steady-state in-place contract.
func TestQueryDistIntoReusesBuffer(t *testing.T) {
	g := parallelTestGraph(t, 500)
	m, err := NewMetric(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 500)
	out := m.QueryDistInto(buf, 3)
	if &out[0] != &buf[0] {
		t.Fatal("QueryDistInto reallocated a sufficient buffer")
	}
	want := m.QueryDist(3)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("dist[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

// TestQueryDistContextCancelled: a cancelled context stops the fill and
// surfaces the error.
func TestQueryDistContextCancelled(t *testing.T) {
	g := parallelTestGraph(t, 100)
	m, err := NewMetric(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.QueryDistContext(ctx, nil, 0); err == nil {
		t.Fatal("want context error")
	}
}
