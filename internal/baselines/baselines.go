// Package baselines re-implements the competitor community-search methods of
// the paper's experimental study (§VII-A), from their original definitions:
//
//   - ACQ (Fang et al., PVLDB'16): maximize the number of q's attributes
//     shared by every member of a connected k-core.
//   - LocATC (Huang & Lakshmanan, PVLDB'17): local search maximizing the
//     attribute coverage score Σ_a |V_a ∩ V_H|² / |V_H| over q's attributes.
//   - VAC (Liu et al., ICDE'20): minimize the maximum pairwise attribute
//     distance inside the community; an approximate peeling variant and an
//     exact branch-and-bound variant (E-VAC).
//
// Each method exists for the k-core and k-truss structure models through the
// shared cohesive.Maintainer interface.
package baselines

import (
	"context"
	"errors"
	"math"
	"sort"

	"repro/internal/attr"
	"repro/internal/cohesive"
	"repro/internal/cserr"
	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/truss"
)

// Model selects the structural model for a baseline.
type Model int

// Structural models.
const (
	KCore Model = iota
	KTruss
)

// ErrNoCommunity is returned when the query has no qualifying community.
// It is the shared sentinel of internal/cserr, so errors.Is matches it
// across every search method.
var ErrNoCommunity = cserr.ErrNoCommunity

// interrupted builds the cancelled-search return for a baseline: the best
// community found so far (nil when none) with ctx's error wrapped, matching
// the contract of sea.SearchContext and exact.SearchContext.
func interrupted(ctx context.Context, name string, best []graph.NodeID) ([]graph.NodeID, error) {
	return best, cserr.Interruptedf(ctx.Err(), "baselines: %s interrupted", name)
}

// maximal returns the maximal connected structure containing q and a
// maintainer over it, or nil when none exists.
func maximal(g graph.Store, q graph.NodeID, k int, model Model) (cohesive.Maintainer, []graph.NodeID) {
	switch model {
	case KTruss:
		members := truss.MaximalConnectedKTruss(g, q, k)
		if members == nil {
			return nil, nil
		}
		m, err := truss.NewSub(g, q, k, members)
		if err != nil {
			return nil, nil
		}
		return m, members
	default:
		members := kcore.MaximalConnectedKCore(g, q, k)
		if members == nil {
			return nil, nil
		}
		m, err := kcore.NewSub(g, q, k, members)
		if err != nil {
			return nil, nil
		}
		return m, members
	}
}

// minSize is the smallest admissible community for the model.
func minSize(k int, model Model) int {
	if model == KTruss {
		return k
	}
	return k + 1
}

// ACQ finds a connected k-core containing q whose members all share as many
// of q's textual attributes as possible. It examines q's attributes in
// decreasing selectivity, greedily growing the shared set while a qualifying
// community survives, per the ACQ algorithm's core idea.
func ACQ(g graph.Store, q graph.NodeID, k int, model Model) ([]graph.NodeID, error) {
	return ACQContext(context.Background(), g, q, k, model)
}

// ACQContext is ACQ under a context: the greedy attribute-extension loop
// checks ctx before every trial and, when cancelled, returns the best
// community found so far with ctx's error wrapped.
func ACQContext(ctx context.Context, g graph.Store, q graph.NodeID, k int, model Model) ([]graph.NodeID, error) {
	base := maximalMembers(g, q, k, model)
	if base == nil {
		return nil, ErrNoCommunity
	}
	qAttrs := g.TextAttrs(q)
	best := base
	shared := []int32{}
	// Greedily extend the shared attribute set: at each step try adding each
	// remaining attribute of q and keep the one preserving the largest
	// community; stop when no attribute can be added.
	remaining := append([]int32(nil), qAttrs...)
	for {
		if ctx.Err() != nil {
			return interrupted(ctx, "acq", best)
		}
		var bestAttr int32 = -1
		var bestSet []graph.NodeID
		for _, a := range remaining {
			if ctx.Err() != nil {
				return interrupted(ctx, "acq", best)
			}
			trial := append(append([]int32(nil), shared...), a)
			set := communityWithAttrs(g, q, k, model, trial)
			if set != nil && (bestSet == nil || len(set) > len(bestSet)) {
				bestAttr = a
				bestSet = set
			}
		}
		if bestAttr < 0 {
			break
		}
		shared = append(shared, bestAttr)
		best = bestSet
		out := remaining[:0]
		for _, a := range remaining {
			if a != bestAttr {
				out = append(out, a)
			}
		}
		remaining = out
	}
	return best, nil
}

// communityWithAttrs returns the maximal connected structure containing q
// restricted to nodes having every attribute in attrs, or nil.
func communityWithAttrs(g graph.Store, q graph.NodeID, k int, model Model, attrs []int32) []graph.NodeID {
	keep := make([]graph.NodeID, 0, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		if hasAll(g.TextAttrs(graph.NodeID(v)), attrs) {
			keep = append(keep, graph.NodeID(v))
		}
	}
	sub, orig := graph.InducedSubgraphOf(g, keep)
	var subQ graph.NodeID = -1
	for i, v := range orig {
		if v == q {
			subQ = graph.NodeID(i)
		}
	}
	if subQ < 0 {
		return nil
	}
	var members []graph.NodeID
	if model == KTruss {
		members = truss.MaximalConnectedKTruss(sub, subQ, k)
	} else {
		members = kcore.MaximalConnectedKCore(sub, subQ, k)
	}
	if members == nil {
		return nil
	}
	out := make([]graph.NodeID, len(members))
	for i, v := range members {
		out[i] = orig[v]
	}
	return out
}

// hasAll reports whether the sorted token set have contains every want token.
func hasAll(have, want []int32) bool {
	i := 0
	for _, w := range want {
		for i < len(have) && have[i] < w {
			i++
		}
		if i >= len(have) || have[i] != w {
			return false
		}
	}
	return true
}

func maximalMembers(g graph.Store, q graph.NodeID, k int, model Model) []graph.NodeID {
	if model == KTruss {
		return truss.MaximalConnectedKTruss(g, q, k)
	}
	return kcore.MaximalConnectedKCore(g, q, k)
}

// CoverageScore computes the LocATC objective over q's attributes:
// Σ_a |V_a ∩ V_H|² / |V_H|.
func CoverageScore(g graph.Store, q graph.NodeID, members []graph.NodeID) float64 {
	if len(members) == 0 {
		return 0
	}
	counts := map[int32]int{}
	for _, v := range members {
		for _, a := range g.TextAttrs(v) {
			counts[a]++
		}
	}
	score := 0.0
	for _, a := range g.TextAttrs(q) {
		c := float64(counts[a])
		score += c * c
	}
	return score / float64(len(members))
}

// LocATC performs the local search of ATC: starting from the maximal
// connected structure, iteratively remove the node whose removal most
// improves the attribute coverage score, stopping at a local optimum.
func LocATC(g graph.Store, q graph.NodeID, k int, model Model) ([]graph.NodeID, error) {
	return LocATCContext(context.Background(), g, q, k, model)
}

// LocATCContext is LocATC under a context: the local search checks ctx
// before every trial removal and, when cancelled, returns the best
// community found so far with ctx's error wrapped.
func LocATCContext(ctx context.Context, g graph.Store, q graph.NodeID, k int, model Model) ([]graph.NodeID, error) {
	maint, members := maximal(g, q, k, model)
	if maint == nil {
		return nil, ErrNoCommunity
	}
	best := append([]graph.NodeID(nil), members...)
	bestScore := CoverageScore(g, q, best)
	buf := make([]graph.NodeID, 0, len(members))
	// Local search: per step, trial-remove the nodes sharing the fewest of
	// q's attributes (capped — removing a low-overlap node is what raises
	// the coverage score) and keep the best single removal.
	const maxTrials = 48
	qAttrs := g.TextAttrs(q)
	for {
		buf = maint.Members(buf[:0])
		if len(buf) <= minSize(k, model) {
			break
		}
		sort.Slice(buf, func(i, j int) bool {
			return attr.SharedTokens(g.TextAttrs(buf[i]), qAttrs) <
				attr.SharedTokens(g.TextAttrs(buf[j]), qAttrs)
		})
		trials := buf
		if len(trials) > maxTrials {
			trials = trials[:maxTrials]
		}
		var bestV graph.NodeID = -1
		bestTrial := -math.MaxFloat64
		var bestRemoved []graph.NodeID
		for _, v := range trials {
			if ctx.Err() != nil {
				return interrupted(ctx, "locatc", best)
			}
			if v == maint.Query() {
				continue
			}
			removed, qAlive := maint.RemoveCascade(v)
			if qAlive && maint.Size() >= minSize(k, model) {
				trialMembers := maint.Members(nil)
				score := CoverageScore(g, q, trialMembers)
				if score > bestTrial {
					bestTrial = score
					bestV = v
					bestRemoved = trialMembers
				}
			}
			maint.Restore(removed)
		}
		if bestV < 0 || bestTrial <= bestScore {
			break
		}
		bestScore = bestTrial
		best = bestRemoved
		removed, qAlive := maint.RemoveCascade(bestV)
		if !qAlive {
			maint.Restore(removed)
			break
		}
	}
	return best, nil
}

// VAC is the approximate vertex-centric attributed community search: peel
// the node of maximum attribute distance to the rest of the community while
// the structure survives; stop when the worst-case pair cannot be improved.
// This mirrors the 2-approximation peeling of the VAC paper, using distance
// to the farthest member as the vertex score.
func VAC(g graph.Store, m *attr.Metric, q graph.NodeID, k int, model Model) ([]graph.NodeID, error) {
	return VACContext(context.Background(), g, m, q, k, model)
}

// VACContext is VAC under a context: the peeling loop checks ctx before
// every endpoint trial and, when cancelled, returns the best community
// found so far with ctx's error wrapped.
func VACContext(ctx context.Context, g graph.Store, m *attr.Metric, q graph.NodeID, k int, model Model) ([]graph.NodeID, error) {
	maint, members := maximal(g, q, k, model)
	if maint == nil {
		return nil, ErrNoCommunity
	}
	best := append([]graph.NodeID(nil), members...)
	bestObj := m.MaxPairwise(best)
	buf := make([]graph.NodeID, 0, len(members))
	for {
		if ctx.Err() != nil {
			return interrupted(ctx, "vac", best)
		}
		buf = maint.Members(buf[:0])
		if len(buf) <= minSize(k, model) {
			break
		}
		// The max-distance pair dominates the objective; try deleting each
		// endpoint of the worst pair (not q).
		a, b := worstPair(m, buf)
		improved := false
		for _, v := range []graph.NodeID{a, b} {
			if ctx.Err() != nil {
				return interrupted(ctx, "vac", best)
			}
			if v == maint.Query() || v < 0 {
				continue
			}
			removed, qAlive := maint.RemoveCascade(v)
			if qAlive && maint.Size() >= minSize(k, model) {
				trial := maint.Members(nil)
				obj := m.MaxPairwise(trial)
				if obj < bestObj {
					bestObj = obj
					best = trial
					improved = true
					break // keep the deletion
				}
			}
			maint.Restore(removed)
		}
		if !improved {
			break
		}
	}
	return best, nil
}

// worstPair returns the pair of members with maximum composite distance.
func worstPair(m *attr.Metric, members []graph.NodeID) (graph.NodeID, graph.NodeID) {
	var a, b graph.NodeID = -1, -1
	worst := -1.0
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if d := m.Distance(members[i], members[j]); d > worst {
				worst = d
				a, b = members[i], members[j]
			}
		}
	}
	return a, b
}

// EVAC is the exact min-max search: branch-and-bound over node deletions
// minimizing the maximum pairwise distance. Exponential; guarded by
// maxStates. It keeps its historical contract for legacy callers: a
// non-positive budget returns the starting community without searching, and
// an exhausted budget returns the best-so-far silently. New code should use
// EVACContext, which reports exhaustion through ErrBudgetExhausted.
func EVAC(g graph.Store, m *attr.Metric, q graph.NodeID, k int, model Model, maxStates int) ([]graph.NodeID, error) {
	if maxStates <= 0 {
		members := maximalMembers(g, q, k, model)
		if members == nil {
			return nil, ErrNoCommunity
		}
		return members, nil
	}
	members, err := EVACContext(context.Background(), g, m, q, k, model, maxStates)
	if errors.Is(err, cserr.ErrBudgetExhausted) {
		return members, nil
	}
	return members, err
}

// EVACContext is EVAC under a context: the branch-and-bound checks ctx on
// every state and, when cancelled, returns the best community found so far
// with ctx's error wrapped. maxStates ≤ 0 means unlimited; when a positive
// budget is hit, the best-so-far is returned with ErrBudgetExhausted,
// symmetric with exact.SearchContext.
func EVACContext(ctx context.Context, g graph.Store, m *attr.Metric, q graph.NodeID, k int, model Model, maxStates int) ([]graph.NodeID, error) {
	maint, members := maximal(g, q, k, model)
	if maint == nil {
		return nil, ErrNoCommunity
	}
	best := append([]graph.NodeID(nil), members...)
	bestObj := m.MaxPairwise(best)
	states := 0
	cancelled := false
	exceeded := func() bool { return maxStates > 0 && states > maxStates }
	var rec func()
	buf := make([]graph.NodeID, 0, len(members))
	rec = func() {
		states++
		if exceeded() {
			return
		}
		if ctx.Err() != nil {
			cancelled = true
			return
		}
		buf = maint.Members(buf[:0])
		cur := append([]graph.NodeID(nil), buf...)
		obj := m.MaxPairwise(cur)
		if obj < bestObj {
			bestObj = obj
			best = cur
		}
		if len(cur) <= minSize(k, model) {
			return
		}
		a, b := worstPair(m, cur)
		for _, v := range []graph.NodeID{a, b} {
			if v == maint.Query() || v < 0 || exceeded() || cancelled {
				continue
			}
			removed, qAlive := maint.RemoveCascade(v)
			if qAlive && maint.Size() >= minSize(k, model) {
				rec()
			}
			maint.Restore(removed)
		}
	}
	rec()
	if cancelled {
		return interrupted(ctx, "evac", best)
	}
	if exceeded() {
		return best, cserr.ErrBudgetExhausted
	}
	return best, nil
}
