package baselines

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/attr"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/truss"
)

func testGraph(t testing.TB) *dataset.Generated {
	t.Helper()
	d, err := dataset.Generate(dataset.Spec{
		Name: "t", Nodes: 250, MinCommunity: 12, MaxCommunity: 24,
		IntraDegree: 8, InterDegree: 0.6,
		TokensPerNode: 4, PoolSize: 5, Vocab: 60, NoiseProb: 0.15,
		NumDim: 2, NumSigma: 0.06, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestACQReturnsValidCore(t *testing.T) {
	d := testGraph(t)
	q := d.QueryNodes(1, 4, 1)[0]
	members, err := ACQ(d.Graph, q, 4, KCore)
	if err != nil {
		t.Fatal(err)
	}
	if !kcore.InKCoreSet(d.Graph, members, 4) {
		t.Error("ACQ community is not a 4-core")
	}
	assertContains(t, members, q)
}

func TestACQMaximizesSharedAttrs(t *testing.T) {
	// Build a graph where restricting to a shared attribute keeps a k-core:
	// two K4s joined at q; one K4 shares attribute "x" with q.
	b := graph.NewBuilder(7, 0)
	for i := 0; i < 4; i++ { // K4 on {0,1,2,3}
		for j := i + 1; j < 4; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	for _, e := range [][2]int{{0, 4}, {0, 5}, {0, 6}, {4, 5}, {4, 6}, {5, 6}} { // K4 on {0,4,5,6}
		b.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]))
	}
	for v := 0; v < 4; v++ {
		b.SetTextAttrs(graph.NodeID(v), "x")
	}
	for v := 4; v < 7; v++ {
		b.SetTextAttrs(graph.NodeID(v), "y")
	}
	g := b.MustBuild()
	members, err := ACQ(g, 0, 3, KCore)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 4 {
		t.Fatalf("ACQ community = %v, want the x-sharing K4", members)
	}
	for _, v := range members {
		if v > 3 {
			t.Errorf("ACQ kept non-sharing node %d", v)
		}
	}
}

func TestACQNoCommunity(t *testing.T) {
	b := graph.NewBuilder(3, 0)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	if _, err := ACQ(g, 0, 3, KCore); !errors.Is(err, ErrNoCommunity) {
		t.Errorf("err = %v, want ErrNoCommunity", err)
	}
}

func TestLocATCImprovesCoverage(t *testing.T) {
	d := testGraph(t)
	q := d.QueryNodes(1, 4, 2)[0]
	base := kcore.MaximalConnectedKCore(d.Graph, q, 4)
	members, err := LocATC(d.Graph, q, 4, KCore)
	if err != nil {
		t.Fatal(err)
	}
	if !kcore.InKCoreSet(d.Graph, members, 4) {
		t.Error("LocATC community is not a 4-core")
	}
	assertContains(t, members, q)
	if CoverageScore(d.Graph, q, members)+1e-9 < CoverageScore(d.Graph, q, base) {
		t.Errorf("LocATC worsened coverage: %v vs %v",
			CoverageScore(d.Graph, q, members), CoverageScore(d.Graph, q, base))
	}
}

func TestVACImprovesWorstCase(t *testing.T) {
	d := testGraph(t)
	m, _ := attr.NewMetric(d.Graph, 0.5)
	q := d.QueryNodes(1, 4, 3)[0]
	base := kcore.MaximalConnectedKCore(d.Graph, q, 4)
	members, err := VAC(d.Graph, m, q, 4, KCore)
	if err != nil {
		t.Fatal(err)
	}
	if !kcore.InKCoreSet(d.Graph, members, 4) {
		t.Error("VAC community is not a 4-core")
	}
	assertContains(t, members, q)
	if m.MaxPairwise(members) > m.MaxPairwise(base)+1e-9 {
		t.Errorf("VAC worsened the min-max objective: %v vs %v",
			m.MaxPairwise(members), m.MaxPairwise(base))
	}
}

func TestEVACBeatsOrMatchesVAC(t *testing.T) {
	d, err := dataset.Generate(dataset.Spec{
		Name: "small", Nodes: 60, MinCommunity: 10, MaxCommunity: 16,
		IntraDegree: 6, InterDegree: 0.3,
		TokensPerNode: 3, PoolSize: 4, Vocab: 30, NoiseProb: 0.1,
		NumDim: 2, NumSigma: 0.08, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := attr.NewMetric(d.Graph, 0.5)
	q := d.QueryNodes(1, 3, 4)[0]
	approx, err := VAC(d.Graph, m, q, 3, KCore)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := EVAC(d.Graph, m, q, 3, KCore, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxPairwise(ex) > m.MaxPairwise(approx)+1e-9 {
		t.Errorf("E-VAC worse than VAC: %v vs %v", m.MaxPairwise(ex), m.MaxPairwise(approx))
	}
	if !kcore.InKCoreSet(d.Graph, ex, 3) {
		t.Error("E-VAC community is not a 3-core")
	}
}

func TestTrussVariants(t *testing.T) {
	d := testGraph(t)
	m, _ := attr.NewMetric(d.Graph, 0.5)
	k := 4
	found := 0
	for _, q := range d.QueryNodes(5, k, 5) {
		for name, run := range map[string]func() ([]graph.NodeID, error){
			"LocATC-Truss": func() ([]graph.NodeID, error) { return LocATC(d.Graph, q, k, KTruss) },
			"VAC-Truss":    func() ([]graph.NodeID, error) { return VAC(d.Graph, m, q, k, KTruss) },
			"ACQ-Truss":    func() ([]graph.NodeID, error) { return ACQ(d.Graph, q, k, KTruss) },
		} {
			members, err := run()
			if errors.Is(err, ErrNoCommunity) {
				continue
			}
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			found++
			if !truss.InKTrussSet(d.Graph, members, k) {
				t.Errorf("%s: community is not a %d-truss", name, k)
			}
			assertContains(t, members, q)
		}
	}
	if found == 0 {
		t.Error("no truss baseline ever found a community")
	}
}

func TestCoverageScoreFormula(t *testing.T) {
	b := graph.NewBuilder(3, 0)
	b.SetTextAttrs(0, "a", "b")
	b.SetTextAttrs(1, "a")
	b.SetTextAttrs(2, "c")
	g := b.MustBuild()
	// H = all three nodes; q=0 has attrs {a,b}: |V_a∩H|²=4, |V_b∩H|²=1 → 5/3.
	got := CoverageScore(g, 0, []graph.NodeID{0, 1, 2})
	if want := 5.0 / 3.0; got != want {
		t.Errorf("CoverageScore = %v, want %v", got, want)
	}
	if CoverageScore(g, 0, nil) != 0 {
		t.Error("empty members should score 0")
	}
}

func assertContains(t *testing.T, members []graph.NodeID, q graph.NodeID) {
	t.Helper()
	for _, v := range members {
		if v == q {
			return
		}
	}
	t.Errorf("query %d not in community %v", q, members)
}

// cancelRing builds a circulant graph (every node linked to its d
// successors) with one numerical attribute spreading nodes apart, so the
// min-max objective keeps improving and branch-and-bound has work to do.
func cancelRing(t testing.TB, n, d int) (*graph.Graph, *attr.Metric) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	b := graph.NewBuilder(n, 2)
	for i := 0; i < n; i++ {
		b.SetNumAttrs(graph.NodeID(i), rng.Float64(), rng.Float64())
		for j := 1; j <= d; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID((i+j)%n))
		}
	}
	g := b.MustBuild()
	m, err := attr.NewMetric(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

// TestEVACContextCancellation proves the acceptance criterion for a
// baseline: a context cancelled mid-search returns promptly (well under
// 50ms) with the best community found so far and an error wrapping the
// context's error.
func TestEVACContextCancellation(t *testing.T) {
	g, m := cancelRing(t, 120, 6)

	ctx, cancel := context.WithCancel(context.Background())
	type answer struct {
		members []graph.NodeID
		err     error
	}
	done := make(chan answer, 1)
	go func() {
		// Unlimited states: with random attributes both endpoints of the
		// worst pair are viable deletions, so the branch-and-bound tree is
		// exponential and cannot finish within any test budget on its own.
		members, err := EVACContext(ctx, g, m, 0, 4, KCore, 0)
		done <- answer{members, err}
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	t0 := time.Now()
	var got answer
	select {
	case got = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled EVAC search did not return")
	}
	if el := time.Since(t0); el > 50*time.Millisecond {
		t.Fatalf("cancelled search took %v to return, want < 50ms", el)
	}
	if !errors.Is(got.err, context.Canceled) {
		t.Fatalf("want error wrapping context.Canceled, got %v", got.err)
	}
	if len(got.members) == 0 {
		t.Fatal("interrupted EVAC should carry the best community found so far")
	}
}

// TestBaselinesHonorDeadContext pins the fast path of every baseline: a
// context that is already cancelled stops the expansion loop on its first
// check, returning the starting community with the context error wrapped.
func TestBaselinesHonorDeadContext(t *testing.T) {
	g, m := cancelRing(t, 60, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		name string
		run  func() ([]graph.NodeID, error)
	}{
		{"acq", func() ([]graph.NodeID, error) { return ACQContext(ctx, g, 0, 3, KCore) }},
		{"locatc", func() ([]graph.NodeID, error) { return LocATCContext(ctx, g, 0, 3, KCore) }},
		{"vac", func() ([]graph.NodeID, error) { return VACContext(ctx, g, m, 0, 3, KCore) }},
		{"evac", func() ([]graph.NodeID, error) { return EVACContext(ctx, g, m, 0, 3, KCore, 0) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			members, err := tc.run()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			if len(members) == 0 {
				t.Fatal("dead-context baseline should still return its starting community")
			}
		})
	}
}
