// Package catalog maintains a named registry of loaded datasets, each backed
// by its own engine.Engine, and is what turns the single-graph serving stack
// into a multi-dataset one. A Catalog mounts datasets from packed snapshots
// (internal/store) or text-format files, resolves request routing for the
// HTTP layer (the wire request's "graph" field), and hot-swaps a dataset's
// engine atomically: the new snapshot is loaded and validated off to the
// side, one pointer flip publishes it, and in-flight queries drain on the
// old engine — they hold its pointer for the whole request — while every new
// request lands on the new one.
//
// A manifest file (JSON) lists the datasets to mount at boot, so a serving
// process restarts into its full catalog with zero recomputation:
//
//	{
//	  "default": "facebook",
//	  "datasets": [
//	    {"name": "facebook", "path": "facebook.snap"},
//	    {"name": "github",   "path": "github.snap", "gamma": 0.7}
//	  ]
//	}
package catalog

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/commit"
	"repro/internal/cserr"
	"repro/internal/engine"
	"repro/internal/mutate"
	"repro/internal/store"
)

// Dataset is one mounted dataset: a name bound to a hot-swappable engine.
type Dataset struct {
	name string
	eng  atomic.Pointer[engine.Engine]
	cfg  engine.Config

	// commit is the dataset's group-commit batcher: every Mutate enqueues
	// here and concurrent callers coalesce into one flush (one journal
	// record, one engine generation). Created at Mount before the dataset
	// is visible and immutable afterwards, so reads need no lock; Unmount
	// and Close close it.
	commit *commit.Batcher

	mu      sync.Mutex // serializes swaps and mutations (readers go through eng alone)
	source  string
	swaps   uint64
	live    *liveState     // journaling state; nil when mounted without a journal
	mounted *store.Mounted // backing mapping; nil for heap/text mounts
}

// Engine returns the dataset's current engine. The pointer stays valid for
// as long as the caller holds it, across any number of concurrent swaps —
// use one grab per request so the request sees one consistent snapshot.
func (d *Dataset) Engine() *engine.Engine { return d.eng.Load() }

// Name returns the dataset's catalog name.
func (d *Dataset) Name() string { return d.name }

// Info is the describable state of a mounted dataset.
type Info struct {
	Name    string `json:"name"`
	Default bool   `json:"default"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	NumDim  int    `json:"num_dim"`
	Source  string `json:"source,omitempty"`
	Swaps   uint64 `json:"swaps"`
	// Version is the engine's graph generation (mutation batches applied
	// since the engine was built).
	Version uint64 `json:"version"`
	// Journal is the write-ahead journal path ("" when unjournaled);
	// JournalSeq is its last written sequence number and JournalBatches the
	// batches awaiting compaction. Version − JournalSeq is the oldest
	// replication cursor a journal tail can serve, so comparing a replica's
	// cursor against these two fields reads off its catch-up lag.
	Journal        string `json:"journal,omitempty"`
	JournalSeq     uint64 `json:"journal_seq,omitempty"`
	JournalBatches int    `json:"journal_batches,omitempty"`
	CompactError   string `json:"compact_error,omitempty"`
	// Mapped reports that the dataset's base snapshot serves zero-copy from
	// a read-only memory mapping; MappedBytes is the mapping size (the
	// resident bound — pages materialize from the page cache on demand).
	Mapped      bool         `json:"mapped"`
	MappedBytes int64        `json:"mapped_bytes,omitempty"`
	Stats       engine.Stats `json:"stats"`
	// Commit is the dataset's group-commit batcher state: queue depth,
	// shed/flush counters, and (for /metrics, excluded from JSON) the
	// batch-size, queue-wait and flush-latency histograms.
	Commit commit.Stats `json:"commit"`
	// Latency carries the engine's full-resolution stage histograms for the
	// /metrics exposition; it is deliberately excluded from the /graphs JSON
	// (use /stats for the flat percentile summary).
	Latency engine.LatencyStats `json:"-"`
}

// Catalog is a concurrency-safe named registry of datasets. The zero value
// is not usable; call New.
type Catalog struct {
	mu        sync.RWMutex
	datasets  map[string]*Dataset
	def       string
	mmapOff   bool
	commitCfg commit.Config // batching knobs for subsequently mounted datasets
	// retired holds mappings displaced by Swap/Unmount. They are never
	// unmapped while the process serves — an in-flight query may still hold
	// the old engine over them — only at Close.
	retired []*store.Mounted
}

// New returns an empty catalog. Snapshot mounts serve zero-copy from memory
// mappings where the format and platform allow; SetMmap(false) disables
// that, forcing heap opens.
func New() *Catalog {
	return &Catalog{datasets: make(map[string]*Dataset)}
}

// SetMmap enables or disables zero-copy mapped serving for subsequent
// mounts (enabled by default). Already-mounted datasets are unaffected.
func (c *Catalog) SetMmap(enabled bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mmapOff = !enabled
}

// SetCommitConfig sets the group-commit batching knobs for subsequently
// mounted datasets (the zero Config means the commit package defaults).
// Already-mounted datasets keep the batcher they were mounted with — set
// the config before mounting, as seaserve does from its -commit-* flags.
func (c *Catalog) SetCommitConfig(cfg commit.Config) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.commitCfg = cfg
}

// retireLocked parks a displaced mapping for unmapping at Close; the caller
// holds c.mu. Heap-resident handles have nothing to release and are dropped.
func (c *Catalog) retireLocked(m *store.Mounted) {
	if m.Mapped() {
		c.retired = append(c.retired, m)
	}
}

// Mount registers eng under name. The first mounted dataset becomes the
// default. Mounting an existing name is an error; use Swap to replace.
func (c *Catalog) Mount(name string, eng *engine.Engine, cfg engine.Config, source string) (*Dataset, error) {
	if name == "" {
		return nil, cserr.Invalidf("catalog: empty dataset name")
	}
	if eng == nil {
		return nil, cserr.Invalidf("catalog: nil engine for %q", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.datasets[name]; ok {
		return nil, cserr.Invalidf("catalog: dataset %q already mounted", name)
	}
	d := &Dataset{name: name, cfg: cfg, source: source}
	eng.SetName(name) // attribute spans, slow-query lines and metrics
	d.eng.Store(eng)
	// The group-commit batcher must exist before the dataset is visible:
	// Mutate reads d.commit without a lock.
	d.commit = commit.New(c.commitCfg, func(groups [][]mutate.Delta) []commit.Result {
		return c.flushGroups(d, groups)
	})
	c.datasets[name] = d
	if c.def == "" {
		c.def = name
	}
	return d, nil
}

// Swap atomically replaces the engine of a mounted dataset and returns the
// engine it displaced. In-flight queries that already resolved the old
// engine complete on it; every later resolve sees the new one. The flip
// happens under the catalog lock, so a concurrent Unmount cannot race the
// new engine onto a dataset that is no longer mounted.
func (c *Catalog) Swap(name string, eng *engine.Engine, source string) (*engine.Engine, error) {
	return c.swapMounted(name, eng, source, nil)
}

// swapMounted is Swap carrying the new engine's backing mapping (nil for
// heap-resident engines).
func (c *Catalog) swapMounted(name string, eng *engine.Engine, source string, m *store.Mounted) (*engine.Engine, error) {
	if eng == nil {
		return nil, cserr.Invalidf("catalog: nil engine for %q", name)
	}
	// Drain the batcher before the flip so no coalesced flush lands astride
	// the lineage change (its journal record would describe the old engine,
	// the reset journal the new). Done before taking any lock: the drain
	// waits out an in-flight flush, which itself takes d.mu.
	if d, err := c.dataset(name); err == nil {
		d.commit.Drain()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	d, err := c.datasetLocked(name)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	eng.SetName(name)
	old := d.eng.Swap(eng)
	d.source = source
	d.swaps++
	// The displaced engine may still be answering in-flight queries over the
	// old mapping; park it for unmapping at Close instead of unmapping now.
	c.retireLocked(d.mounted)
	d.mounted = m
	// A swap rebases the dataset on a new source: journaled deltas applied
	// to the old lineage no longer describe it, so the journal restarts —
	// and a broken-journal quarantine lifts, since the new lineage has no
	// semantic hole.
	if d.live != nil {
		if err := d.live.journal.Reset(); err != nil {
			return old, fmt.Errorf("catalog: swapped, but resetting journal: %w", err)
		}
		d.live.broken = false
	}
	return old, nil
}

// Unmount removes a dataset. In-flight queries on its engine complete; the
// name stops resolving immediately. Unmounting the default re-elects the
// lexicographically first remaining dataset as the new default (none when
// the catalog empties).
func (c *Catalog) Unmount(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.datasets[name]
	if !ok {
		return fmt.Errorf("%w: %q", cserr.ErrUnknownGraph, name)
	}
	delete(c.datasets, name)
	// Closing the batcher flushes everything already acknowledged into the
	// queue, then stops it; later Submits fail with commit.ErrClosed. Must
	// happen before d.mu is taken — an in-flight flush holds it.
	d.commit.Close()
	d.mu.Lock()
	if d.live != nil {
		d.live.journal.Close()
		d.live = nil
	}
	// In-flight queries may still hold the unmounted engine; its mapping is
	// only released at Close.
	c.retireLocked(d.mounted)
	d.mounted = nil
	d.mu.Unlock()
	if c.def == name {
		c.def = ""
		if names := c.names(); len(names) > 0 {
			c.def = names[0]
		}
	}
	return nil
}

// SetDefault names the dataset an empty-name resolve routes to.
func (c *Catalog) SetDefault(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.datasets[name]; !ok {
		return fmt.Errorf("%w: %q", cserr.ErrUnknownGraph, name)
	}
	c.def = name
	return nil
}

// Default returns the default dataset's name ("" when none is set).
func (c *Catalog) Default() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.def
}

// dataset looks a name up, resolving "" to the default.
func (c *Catalog) dataset(name string) (*Dataset, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.datasetLocked(name)
}

// datasetLocked is dataset for callers already holding c.mu.
func (c *Catalog) datasetLocked(name string) (*Dataset, error) {
	if name == "" {
		name = c.def
		if name == "" {
			if len(c.datasets) == 0 {
				return nil, fmt.Errorf("%w: no datasets mounted", cserr.ErrUnknownGraph)
			}
			return nil, fmt.Errorf("%w: no default dataset; name one of %v", cserr.ErrUnknownGraph, c.names())
		}
	}
	d, ok := c.datasets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", cserr.ErrUnknownGraph, name)
	}
	return d, nil
}

// Resolve maps a dataset name (empty = default) to its current engine; it is
// the engine.Resolver of this catalog, so one grab serves one request.
func (c *Catalog) Resolve(name string) (*engine.Engine, error) {
	d, err := c.dataset(name)
	if err != nil {
		return nil, err
	}
	return d.Engine(), nil
}

// Engine is Resolve under its natural name for direct (non-HTTP) callers.
func (c *Catalog) Engine(name string) (*engine.Engine, error) { return c.Resolve(name) }

// Names returns the mounted dataset names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.names()
}

func (c *Catalog) names() []string {
	out := make([]string, 0, len(c.datasets))
	for name := range c.datasets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of mounted datasets.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.datasets)
}

// Infos describes every mounted dataset, sorted by name.
func (c *Catalog) Infos() []Info {
	c.mu.RLock()
	def := c.def
	ds := make([]*Dataset, 0, len(c.datasets))
	for _, d := range c.datasets {
		ds = append(ds, d)
	}
	c.mu.RUnlock()
	sort.Slice(ds, func(i, j int) bool { return ds[i].name < ds[j].name })
	out := make([]Info, len(ds))
	for i, d := range ds {
		out[i] = d.info(def)
	}
	return out
}

// InfoFor describes the named dataset ("" resolves to the default).
func (c *Catalog) InfoFor(name string) (Info, error) {
	d, err := c.dataset(name)
	if err != nil {
		return Info{}, err
	}
	return d.info(c.Default()), nil
}

// info builds the dataset's Info snapshot; def is the catalog's current
// default name.
func (d *Dataset) info(def string) Info {
	eng := d.Engine()
	g := eng.Graph()
	d.mu.Lock()
	source, swaps := d.source, d.swaps
	var journal string
	var seq uint64
	var batches int
	var compactErr string
	if d.live != nil {
		journal = d.live.journal.Path()
		seq = d.live.journal.Seq()
		batches = d.live.journal.Batches()
		if d.live.compactErr != nil {
			compactErr = d.live.compactErr.Error()
		}
	}
	mapped := d.mounted.Mapped()
	mappedBytes := d.mounted.MappedBytes()
	d.mu.Unlock()
	return Info{
		Name:           d.name,
		Default:        d.name == def,
		Nodes:          g.NumNodes(),
		Edges:          g.NumEdges(),
		NumDim:         g.NumDim(),
		Source:         source,
		Swaps:          swaps,
		Version:        eng.Version(),
		Journal:        journal,
		JournalSeq:     seq,
		JournalBatches: batches,
		CompactError:   compactErr,
		Mapped:         mapped,
		MappedBytes:    mappedBytes,
		Stats:          eng.Stats(),
		Commit:         d.commit.Stats(),
		Latency:        eng.Latency(),
	}
}

// openPath builds an engine from the file at path: a packed snapshot opens
// with zero recomputation — zero-copy mapped when the format and platform
// allow and mmap is enabled — anything else is parsed as the text exchange
// format and indexed from scratch. The returned Mounted handle owns the
// mapping backing the engine (nil for heap-resident opens).
func (c *Catalog) openPath(path string, cfg engine.Config) (*engine.Engine, *store.Mounted, error) {
	c.mu.RLock()
	useMmap := !c.mmapOff
	c.mu.RUnlock()
	if !useMmap {
		snap, err := store.OpenGraphFile(path)
		if err != nil {
			return nil, nil, err
		}
		eng, err := engine.NewFromSnapshot(snap, cfg)
		return eng, nil, err
	}
	m, err := store.MountGraphFile(path)
	if err != nil {
		return nil, nil, err
	}
	eng, err := engine.NewFromSnapshot(m.Snapshot(), cfg)
	if err != nil {
		m.Close() // nothing reads the mapping yet
		return nil, nil, err
	}
	if !m.Mapped() {
		return eng, nil, nil
	}
	return eng, m, nil
}

// MountPath mounts the dataset file (snapshot or text) at path under name.
func (c *Catalog) MountPath(name, path string, cfg engine.Config) (*Dataset, error) {
	eng, m, err := c.openPath(path, cfg)
	if err != nil {
		return nil, err
	}
	d, err := c.Mount(name, eng, cfg, path)
	if err != nil {
		m.Close() // mount failed before anything could read the mapping
		return nil, err
	}
	d.mu.Lock()
	d.mounted = m
	d.mu.Unlock()
	return d, nil
}

// SwapPath loads the dataset file at path off to the side and hot-swaps it
// into name — mounting it fresh when the name is new. The load happens
// before the flip, so a corrupt file never disturbs the running engine.
func (c *Catalog) SwapPath(name, path string, cfg engine.Config) (*Dataset, error) {
	d, err := c.dataset(name)
	if err == nil {
		eng, m, err := c.openPath(path, d.cfg)
		if err != nil {
			return nil, err
		}
		if _, err := c.swapMounted(name, eng, path, m); err != nil {
			m.Close()
			return nil, err
		}
		return d, nil
	}
	return c.MountPath(name, path, cfg)
}

// Manifest lists the datasets a serving process mounts at boot.
type Manifest struct {
	// Default optionally names the dataset empty-name requests route to;
	// unset, the first entry is the default.
	Default  string          `json:"default,omitempty"`
	Datasets []ManifestEntry `json:"datasets"`
}

// ManifestEntry is one dataset of a Manifest.
type ManifestEntry struct {
	Name string `json:"name"`
	// Path locates the packed snapshot (preferred) or text-format file.
	Path string `json:"path"`
	// Gamma optionally overrides the serving config's attribute balance
	// factor for this dataset (0 keeps the base value).
	Gamma float64 `json:"gamma,omitempty"`
}

// LoadManifest reads a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m.Datasets) == 0 {
		return nil, fmt.Errorf("%s: manifest mounts no datasets", path)
	}
	return &m, nil
}

// MountManifest mounts every dataset of m with base as the engine config
// template (per-entry Gamma applied on top) and sets the manifest's default.
func (c *Catalog) MountManifest(m *Manifest, base engine.Config) error {
	for _, e := range m.Datasets {
		cfg := base
		if e.Gamma != 0 {
			cfg.Gamma = e.Gamma
		}
		if _, err := c.MountPath(e.Name, e.Path, cfg); err != nil {
			return fmt.Errorf("manifest dataset %q: %w", e.Name, err)
		}
	}
	if m.Default != "" {
		return c.SetDefault(m.Default)
	}
	return c.SetDefault(m.Datasets[0].Name)
}
