package catalog

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/cserr"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/query"
)

// makeEngine builds an engine over a generated analog.
func makeEngine(t testing.TB, name string, scale float64) *engine.Engine {
	t.Helper()
	d, err := dataset.Homogeneous(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(d.Graph, engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// packFile writes an engine's snapshot to a temp file and returns the path.
func packFile(t testing.TB, eng *engine.Engine, name string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := eng.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMountResolveDefault(t *testing.T) {
	c := New()
	if _, err := c.Resolve(""); !errors.Is(err, cserr.ErrUnknownGraph) {
		t.Fatalf("empty catalog resolve: %v", err)
	}
	e1 := makeEngine(t, "facebook", 0.2)
	e2 := makeEngine(t, "github", 0.1)
	if _, err := c.Mount("fb", e1, engine.DefaultConfig(), "test"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Mount("gh", e2, engine.DefaultConfig(), "test"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Mount("fb", e2, engine.DefaultConfig(), "dup"); !errors.Is(err, cserr.ErrInvalidRequest) {
		t.Fatalf("duplicate mount: %v", err)
	}

	// First mount is the default.
	if got, _ := c.Resolve(""); got != e1 {
		t.Fatal("default did not resolve to the first mount")
	}
	if got, _ := c.Resolve("gh"); got != e2 {
		t.Fatal("named resolve missed")
	}
	if _, err := c.Resolve("nope"); !errors.Is(err, cserr.ErrUnknownGraph) {
		t.Fatalf("unknown name: %v", err)
	}
	if err := c.SetDefault("gh"); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Resolve(""); got != e2 {
		t.Fatal("SetDefault not honored")
	}
	if got := c.Names(); len(got) != 2 || got[0] != "fb" || got[1] != "gh" {
		t.Fatalf("Names: %v", got)
	}
	if err := c.Unmount("fb"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resolve("fb"); !errors.Is(err, cserr.ErrUnknownGraph) {
		t.Fatalf("unmounted name still resolves: %v", err)
	}

	// Unmounting the default re-elects a remaining dataset; mounting into an
	// empty (default-less) catalog elects the newcomer.
	if _, err := c.Mount("aa", e1, engine.DefaultConfig(), "test"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unmount("gh"); err != nil { // gh was the default
		t.Fatal(err)
	}
	if c.Default() != "aa" {
		t.Fatalf("default not re-elected: %q", c.Default())
	}
	if err := c.Unmount("aa"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Mount("zz", e2, engine.DefaultConfig(), "test"); err != nil {
		t.Fatal(err)
	}
	if c.Default() != "zz" {
		t.Fatalf("mount into empty catalog did not elect a default: %q", c.Default())
	}
}

// TestSwapDrainsOldEngine is the drain contract: a query that resolved its
// engine before the swap completes on that engine, while resolves after the
// swap see the new one.
func TestSwapDrainsOldEngine(t *testing.T) {
	c := New()
	e1 := makeEngine(t, "facebook", 0.2)
	e2 := makeEngine(t, "facebook", 0.3)
	if _, err := c.Mount("fb", e1, engine.DefaultConfig(), "v1"); err != nil {
		t.Fatal(err)
	}

	inFlight, err := c.Resolve("fb") // a request grabs its engine...
	if err != nil {
		t.Fatal(err)
	}
	old, err := c.Swap("fb", e2, "v2") // ...the dataset is swapped under it...
	if err != nil {
		t.Fatal(err)
	}
	if old != e1 {
		t.Fatal("Swap returned the wrong displaced engine")
	}
	// ...and the in-flight request still completes against the old engine.
	req := query.Request{Query: 0, Method: query.MethodStructural, K: 2}
	if _, err := inFlight.Query(context.Background(), req); err != nil {
		t.Fatalf("in-flight query on the drained engine: %v", err)
	}
	now, _ := c.Resolve("fb")
	if now != e2 {
		t.Fatal("post-swap resolve did not see the new engine")
	}
	if len(c.Infos()) != 1 || c.Infos()[0].Swaps != 1 {
		t.Fatalf("swap count not recorded: %+v", c.Infos())
	}
}

// TestConcurrentHotSwap hammers resolves and queries while the dataset is
// swapped between two snapshots of different sizes; every query must land
// coherently on one of the two (race detector verifies memory safety).
func TestConcurrentHotSwap(t *testing.T) {
	c := New()
	e1 := makeEngine(t, "facebook", 0.2) // 240 nodes
	e2 := makeEngine(t, "facebook", 0.4) // 480 nodes
	n1 := e1.Graph().NumNodes()
	n2 := e2.Graph().NumNodes()
	if _, err := c.Mount("fb", e1, engine.DefaultConfig(), "v1"); err != nil {
		t.Fatal(err)
	}

	const queriesPerWorker = 50
	var workers, swapper sync.WaitGroup
	stop := make(chan struct{})
	swapper.Add(1)
	go func() { // swapper
		defer swapper.Done()
		engines := [2]*engine.Engine{e2, e1}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Swap("fb", engines[i%2], "swap"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < queriesPerWorker; i++ {
				eng, err := c.Resolve("fb")
				if err != nil {
					t.Error(err)
					return
				}
				n := eng.Graph().NumNodes()
				if n != n1 && n != n2 {
					t.Errorf("resolved engine has %d nodes, want %d or %d", n, n1, n2)
					return
				}
				// The grabbed engine stays coherent for the whole request
				// even if the catalog swaps meanwhile.
				req := query.Request{Query: 0, Method: query.MethodStructural, K: 2}
				out, err := eng.Query(context.Background(), req)
				if err != nil {
					t.Errorf("query during swap: %v", err)
					return
				}
				for _, v := range out.Community {
					if int(v) >= n {
						t.Errorf("community node %d outside the resolved %d-node graph", v, n)
						return
					}
				}
			}
		}()
	}
	workers.Wait() // all queries completed across ongoing swaps
	close(stop)
	swapper.Wait()
}

func TestMountPathAndManifest(t *testing.T) {
	e1 := makeEngine(t, "facebook", 0.2)
	snapPath := packFile(t, e1, "fb.snap")

	// Text path for the second dataset.
	d2, err := dataset.Homogeneous("github", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	if err := dataset.WriteGraph(&text, d2.Graph); err != nil {
		t.Fatal(err)
	}
	textPath := filepath.Join(t.TempDir(), "gh.txt")
	if err := os.WriteFile(textPath, text.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	manifestPath := filepath.Join(t.TempDir(), "manifest.json")
	manifest := `{"default":"gh","datasets":[
		{"name":"fb","path":` + jsonStr(snapPath) + `},
		{"name":"gh","path":` + jsonStr(textPath) + `,"gamma":0.7}
	]}`
	if err := os.WriteFile(manifestPath, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadManifest(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	if err := c.MountManifest(m, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if c.Default() != "gh" {
		t.Fatalf("manifest default: %q", c.Default())
	}
	fb, err := c.Engine("fb")
	if err != nil {
		t.Fatal(err)
	}
	if fb.Graph().NumNodes() != e1.Graph().NumNodes() {
		t.Fatal("snapshot mount has the wrong shape")
	}
	gh, err := c.Engine("gh")
	if err != nil {
		t.Fatal(err)
	}
	if gh.Metric().Gamma() != 0.7 {
		t.Fatalf("per-entry gamma not applied: %v", gh.Metric().Gamma())
	}

	// SwapPath with a corrupt file must leave the running engine in place.
	corrupt := filepath.Join(t.TempDir(), "bad.snap")
	data, _ := os.ReadFile(snapPath)
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(corrupt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SwapPath("fb", corrupt, engine.DefaultConfig()); !errors.Is(err, cserr.ErrSnapshotCorrupt) {
		t.Fatalf("corrupt swap: %v", err)
	}
	still, _ := c.Engine("fb")
	if still != fb {
		t.Fatal("corrupt swap disturbed the running engine")
	}
}

func jsonStr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
