package catalog

// Group-commit write-path tests at the catalog layer: concurrent-writer
// equivalence (run with -race), backpressure, batch observability, the
// follower Fold path, and the quarantine semantics of a flush whose journal
// append fails.

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/commit"
	"repro/internal/cserr"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/store"
)

// engineSnapshot serializes a dataset's serving state; the version is not
// part of the snapshot bytes, so a batched and a sequential history of the
// same deltas compare byte for byte.
func engineSnapshot(t *testing.T, c *Catalog, name string) []byte {
	t.Helper()
	eng, err := c.Resolve(name)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestConcurrentWritersEquivalentToSequential is the tentpole equivalence
// proof: N concurrent writers through the batcher land an engine
// byte-identical to the same deltas replayed sequentially from the journal
// — whatever order and batching the commit pipeline chose, the journal IS
// that order, and replay reproduces the state exactly.
func TestConcurrentWritersEquivalentToSequential(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	c := New()
	defer c.Close()
	if _, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 8, 12
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				_, err := c.Mutate("g", []mutate.Delta{
					mutate.SetAttr(graph.NodeID(w%12), []string{fmt.Sprintf("w%d-%d", w, i)}, nil),
				})
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got := engineSnapshot(t, c, "g")

	// Replay the journal — the committed order — sequentially onto a fresh
	// mount of the same base snapshot.
	replayed, err := store.TailJournal(journalPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := New()
	defer ref.Close()
	if _, err := ref.MountPath("ref", snapPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	refEng, err := ref.Resolve("ref")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range replayed {
		if _, err := refEng.Apply(b.Deltas); err != nil {
			t.Fatalf("sequential replay of batch %d: %v", b.Seq, err)
		}
		total += len(b.Deltas)
	}
	if total != writers*perWriter {
		t.Fatalf("journal carries %d deltas, want %d — an acknowledged delta is missing", total, writers*perWriter)
	}
	want := engineSnapshot(t, ref, "ref")
	if !bytes.Equal(got, want) {
		t.Fatal("concurrent batched writers diverged from sequential journal replay")
	}
}

// TestMutateBatchObservability proves the result carries the group-commit
// accounting (batch size, stage timings, per-delta outcomes) and that the
// dataset Info exposes the batcher's stats.
func TestMutateBatchObservability(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	c := New()
	defer c.Close()
	if _, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	res, err := c.Mutate("g", []mutate.Delta{
		mutate.SetAttr(0, []string{"x"}, nil),
		mutate.AddNode([]string{"n"}, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchSize < 1 || res.FlushNS <= 0 {
		t.Fatalf("batch accounting missing: %+v", res)
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("outcomes: %+v", res.Outcomes)
	}
	if res.Outcomes[0].Op != "set_attr" || !res.Outcomes[0].Applied {
		t.Fatalf("outcome 0: %+v", res.Outcomes[0])
	}
	if res.Outcomes[1].Op != "add_node" || res.Outcomes[1].NewNode != 12 {
		t.Fatalf("outcome 1 must carry the assigned node: %+v", res.Outcomes[1])
	}
	if res.JournalNS <= 0 || res.Journaled == 0 {
		t.Fatalf("journal stage timings: %+v", res)
	}
	info, err := c.InfoFor("g")
	if err != nil {
		t.Fatal(err)
	}
	if info.Commit.Submitted != 1 || info.Commit.Flushes < 1 {
		t.Fatalf("Info.Commit: %+v", info.Commit)
	}
}

// TestCommitBackpressureSheds proves the bounded queue: with a hold-open
// flush and a queue of 1, an overflowing writer sheds with ErrOverloaded
// (the HTTP 429 + Retry-After error) while every acknowledged group still
// commits — never losing an acknowledged delta.
func TestCommitBackpressureSheds(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	c := New()
	defer c.Close()
	c.SetCommitConfig(commit.Config{Queue: 1, MaxBatch: 1})
	if _, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}

	// Hold the flusher: arm a slow fault? No — simplest reliable hold is
	// many concurrent writers against a queue of 1 with MaxBatch 1: every
	// flush drains one group while the rest contend for a single slot, so
	// at least one Submit must observe a full queue and shed.
	const writers = 24
	var wg sync.WaitGroup
	var mu sync.Mutex
	var acked, shed int
	var other error
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, err := c.Mutate("g", []mutate.Delta{
				mutate.SetAttr(graph.NodeID(w%12), []string{"bp"}, nil),
			})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				acked++
			case errors.Is(err, cserr.ErrOverloaded):
				shed++
			default:
				other = err
			}
		}(w)
	}
	wg.Wait()
	if other != nil {
		t.Fatalf("unexpected writer error: %v", other)
	}
	if shed == 0 {
		t.Skip("no writer observed a full queue on this run; shedding exercised in internal/commit")
	}

	// Conservation: every acknowledged group is in the journal.
	replayed, err := store.TailJournal(journalPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range replayed {
		total += len(b.Deltas)
	}
	if total != acked {
		t.Fatalf("journal has %d deltas, %d were acknowledged (%d shed)", total, acked, shed)
	}
}

// TestFoldBypassesBatcher proves the follower path: Fold applies exactly
// one group as one generation and one journal record, and the version
// advances by exactly 1 per fold — the record-per-version cursor invariant.
func TestFoldBypassesBatcher(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	c := New()
	defer c.Close()
	if _, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		res, err := c.Fold("g", []mutate.Delta{
			mutate.SetAttr(0, []string{fmt.Sprintf("fold%d", i)}, nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Version != uint64(i) {
			t.Fatalf("fold %d: version %d — Fold must advance exactly 1 per record", i, res.Version)
		}
		if res.Journaled != uint64(i) {
			t.Fatalf("fold %d: journal seq %d", i, res.Journaled)
		}
	}
	// Folds bypass the batcher entirely.
	info, err := c.InfoFor("g")
	if err != nil {
		t.Fatal(err)
	}
	if info.Commit.Submitted != 0 {
		t.Fatalf("Fold must not enqueue on the batcher: %+v", info.Commit)
	}
}

// TestGroupRejectionIsolatedFromCompanions proves per-group isolation
// through the full catalog path: a writer whose group is invalid gets its
// own error, concurrent valid writers commit, and the journal records only
// what applied.
func TestGroupRejectionIsolatedFromCompanions(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	c := New()
	defer c.Close()
	if _, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	const writers = 12
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var d mutate.Delta
			if w%3 == 0 {
				d = mutate.AddEdge(0, 1) // exists in the fixture: always rejected
			} else {
				d = mutate.SetAttr(graph.NodeID(w), []string{"iso"}, nil)
			}
			_, errs[w] = c.Mutate("g", []mutate.Delta{d})
		}(w)
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		if w%3 == 0 {
			if !errors.Is(errs[w], cserr.ErrInvalidRequest) {
				t.Fatalf("invalid writer %d: %v, want its own rejection", w, errs[w])
			}
		} else if errs[w] != nil {
			t.Fatalf("valid writer %d must not be poisoned by a companion: %v", w, errs[w])
		}
	}
	replayed, err := store.TailJournal(journalPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range replayed {
		total += len(b.Deltas)
	}
	if want := writers - writers/3; total != want {
		t.Fatalf("journal has %d deltas, want only the %d applied", total, want)
	}
}

// TestFlushJournalFaultQuarantinesEveryWaiter proves the PR 5/9 quarantine
// semantics survive group commit: when the flush's single journal append
// fails, EVERY waiter in the batch gets the applied-but-not-durable error
// with its result attached, the dataset fails closed, and Compact heals.
func TestFlushJournalFaultQuarantinesEveryWaiter(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	c := New()
	defer c.Close()
	if _, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}

	faults.Enable(1, faults.Spec{Site: "journal.fsync", Count: 1, Err: "eio"})
	defer faults.Disable()
	res, err := c.Mutate("g", attrDelta("torn"))
	if err == nil || !strings.Contains(err.Error(), "applied but not journaled") {
		t.Fatalf("Mutate with failing fsync: %v", err)
	}
	if res == nil || res.JournalError == "" || res.Applied == 0 {
		t.Fatalf("the waiter must see its applied-but-not-durable result: %+v", res)
	}

	// Quarantined: the next flush fails closed before applying anything.
	if _, err := c.Mutate("g", attrDelta("after")); !errors.Is(err, cserr.ErrSnapshotCorrupt) {
		t.Fatalf("quarantined dataset: %v, want ErrSnapshotCorrupt", err)
	}
	if _, err := c.Compact("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Mutate("g", attrDelta("healed")); err != nil {
		t.Fatalf("Mutate after Compact healed: %v", err)
	}
}

// TestCommitEnqueueFaultSheds proves the commit.enqueue fault site surfaces
// through Catalog.Mutate before anything enqueues or applies.
func TestCommitEnqueueFaultSheds(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	c := New()
	defer c.Close()
	if _, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	faults.Enable(1, faults.Spec{Site: "commit.enqueue", Count: 1, Err: "eio"})
	defer faults.Disable()
	if _, err := c.Mutate("g", attrDelta("x")); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Mutate under commit.enqueue fault: %v", err)
	}
	// Nothing enqueued, nothing applied: the next write proceeds normally.
	faults.Disable()
	if res, err := c.Mutate("g", attrDelta("y")); err != nil || res.Version != 1 {
		t.Fatalf("after a faulted enqueue: res=%+v err=%v", res, err)
	}
}

// TestCommitFlushFaultFailsBatchClosed proves the commit.flush fault site
// fails every waiter before the staged pipeline runs: no state change, no
// journal record, no quarantine — retry succeeds.
func TestCommitFlushFaultFailsBatchClosed(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	c := New()
	defer c.Close()
	if _, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	faults.Enable(1, faults.Spec{Site: "commit.flush", Count: 1, Err: "eio"})
	defer faults.Disable()
	if _, err := c.Mutate("g", attrDelta("x")); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Mutate under commit.flush fault: %v", err)
	}
	faults.Disable()
	res, err := c.Mutate("g", attrDelta("y"))
	if err != nil {
		t.Fatalf("retry after a failed flush must succeed (nothing applied): %v", err)
	}
	if res.Version != 1 || res.Journaled != 1 {
		t.Fatalf("the failed flush leaked state: %+v", res)
	}
}

// TestUnmountClosesBatcher proves an in-flight dataset teardown maps to
// the unknown-graph error, not a hang or a panic.
func TestUnmountClosesBatcher(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	c := New()
	defer c.Close()
	if _, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	d, err := c.dataset("g")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Unmount("g"); err != nil {
		t.Fatal(err)
	}
	// The batcher is closed: a straggler holding the old dataset pointer
	// cannot enqueue, and Catalog.Mutate reports the unmounted name.
	if _, _, err := d.commit.Submit(attrDelta("late")); !errors.Is(err, commit.ErrClosed) {
		t.Fatalf("Submit on an unmounted dataset's batcher: %v", err)
	}
	if _, err := c.Mutate("g", attrDelta("late")); !errors.Is(err, cserr.ErrUnknownGraph) {
		t.Fatalf("Mutate after unmount: %v", err)
	}
}

// TestCompactDrainsAcknowledgedWrites proves Compact's drain: groups
// acknowledged before the compaction call are folded into the snapshot it
// writes, never stranded behind the journal reset.
func TestCompactDrainsAcknowledgedWrites(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	c := New()
	defer c.Close()
	if _, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	const writers = 6
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if _, err := c.Mutate("g", attrDelta(fmt.Sprintf("pre%d", w))); err != nil {
				t.Errorf("writer %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	res, err := c.Compact("g")
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != c.mustInfo(t, "g").Version {
		t.Fatalf("compaction snapshot at version %d, live at %d", res.Version, c.mustInfo(t, "g").Version)
	}
	// Reboot from the compacted snapshot + (empty) journal: same state.
	before := engineSnapshot(t, c, "g")
	c2 := New()
	defer c2.Close()
	if _, replayed, err := c2.MountPathJournaled("g2", snapPath, journalPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	} else if replayed != 0 {
		t.Fatalf("journal should be empty after compaction, replayed %d", replayed)
	}
	if !bytes.Equal(before, engineSnapshot(t, c2, "g2")) {
		t.Fatal("restart after compaction diverged from the live state")
	}
}

// mustInfo fetches a dataset's Info or fails the test.
func (c *Catalog) mustInfo(t *testing.T, name string) Info {
	t.Helper()
	info, err := c.InfoFor(name)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// TestMaxWaitBatchesSequentialWriters proves the MaxWait knob: with a
// hold-open window, even a brief stagger of writers coalesces, and the
// batch-size histogram records it.
func TestMaxWaitBatchesSequentialWriters(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	c := New()
	defer c.Close()
	c.SetCommitConfig(commit.Config{MaxWait: 50 * time.Millisecond})
	if _, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			time.Sleep(time.Duration(w) * time.Millisecond)
			if _, err := c.Mutate("g", attrDelta(fmt.Sprintf("held%d", w))); err != nil {
				t.Errorf("writer %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	info := c.mustInfo(t, "g")
	if info.Commit.Submitted != 4 {
		t.Fatalf("submitted: %+v", info.Commit)
	}
	if uint64(info.Commit.BatchSize.Max()) < 2 {
		t.Skipf("writers did not overlap on this run (batches of 1); hold-open coalescing exercised in internal/commit")
	}
}
