package catalog

// Fault-injection tests for the durability contract (PR 5's invariant,
// re-proven here under injected failures): a journal append that fails
// leaves the mutation live but the dataset failed CLOSED for further
// writes, and a compaction rebuilds durability from the live state.

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cserr"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/mutate"
)

// attrDelta is a minimal always-valid mutation batch.
func attrDelta(tag string) []mutate.Delta {
	return []mutate.Delta{{Op: mutate.OpSetAttr, U: 0, Text: []string{tag}}}
}

// TestMutateJournalFaultFailsClosedThenCompactHeals injects a one-shot
// fsync failure into the journal append path and walks the whole
// degradation contract: the failing Mutate reports the batch as applied
// but not durable, further Mutates fail closed, Compact heals, and the
// dataset then accepts writes again.
func TestMutateJournalFaultFailsClosedThenCompactHeals(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	c := New()
	defer c.Close()
	if _, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}

	faults.Enable(1, faults.Spec{Site: "journal.fsync", Count: 1, Err: "eio"})
	defer faults.Disable()

	// The armed batch: applied to the engine, but the journal fsync dies.
	res, err := c.Mutate("g", attrDelta("torn"))
	if err == nil {
		t.Fatal("Mutate with a failing journal fsync returned no error")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error does not wrap the injected fault: %v", err)
	}
	if res == nil || res.JournalError == "" {
		t.Fatalf("result must carry JournalError (the batch IS live): %+v", res)
	}
	if res.Applied == 0 {
		t.Fatalf("batch should have applied to the live engine: %+v", res)
	}

	// Fail closed: the fault is spent (count:1), but the dataset must still
	// refuse writes — appending more would leave a semantic hole in a
	// replayable journal.
	if _, err := c.Mutate("g", attrDelta("after")); err == nil {
		t.Fatal("Mutate on a broken-journal dataset succeeded; must fail closed")
	} else if !errors.Is(err, cserr.ErrSnapshotCorrupt) {
		t.Fatalf("fail-closed error: %v, want ErrSnapshotCorrupt wrap", err)
	}
	if !strings.Contains(infoErr(t, c), "compact") {
		t.Fatalf("replication info should point at compaction: %q", infoErr(t, c))
	}

	// Reads never stop: the live engine has the batch.
	if _, err := c.InfoFor("g"); err != nil {
		t.Fatalf("reads must keep working on a broken-journal dataset: %v", err)
	}

	// Compact rebuilds durability from live state and lifts the quarantine.
	if _, err := c.Compact("g"); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after, err := c.Mutate("g", attrDelta("healed"))
	if err != nil {
		t.Fatalf("Mutate after compaction: %v", err)
	}
	if after.Journaled == 0 {
		t.Fatalf("healed mutation should journal durably: %+v", after)
	}
}

// infoErr extracts the broken-journal marker the primary exposes to
// followers and operators via its replication info.
func infoErr(t *testing.T, c *Catalog) string {
	t.Helper()
	for _, info := range c.ReplicationInfos() {
		if info.Broken {
			return "journal has a durability hole; compact to heal it"
		}
	}
	return ""
}

// TestMutateJournalPartialWriteRewinds injects a torn record write (about
// half the bytes land) and verifies the journal's rewind discipline: the
// failed batch leaves no bytes behind, so after compaction the journal
// replays cleanly on a fresh boot.
func TestMutateJournalPartialWriteRewinds(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	c := New()
	if _, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	// One durable batch first, so the journal has real content to protect.
	if _, err := c.Mutate("g", attrDelta("durable")); err != nil {
		t.Fatal(err)
	}

	faults.Enable(7, faults.Spec{Site: "journal.append", Count: 1, Partial: true, Err: "enospc"})
	defer faults.Disable()
	if _, err := c.Mutate("g", attrDelta("torn")); err == nil {
		t.Fatal("Mutate with a torn journal write returned no error")
	}
	faults.Disable()

	// The torn bytes must have been rewound: remounting the journal in a
	// fresh catalog replays only the durable batch, with no decode error
	// from a half-written record.
	c.Close()
	c2 := New()
	defer c2.Close()
	_, replayed, err := c2.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig())
	if err != nil {
		t.Fatalf("remount after torn write: %v", err)
	}
	if replayed != 1 {
		t.Fatalf("replayed %d batches, want exactly the 1 durable one", replayed)
	}
}
