package catalog

// HTTP surface of a Catalog: the engine's full query surface (/search,
// /batch, /compare, /healthz, /stats) routed per dataset through the wire
// request's "graph" field, plus the catalog's own endpoints:
//
//	GET  /graphs          → mounted datasets with shape, source and stats
//	GET  /stats           → engine counters enriched with the dataset's
//	                        journal seq/batches and lineage
//	GET  /metrics         → the same counters in Prometheus text format,
//	                        one sample per dataset (label graph="...")
//	POST /admin/reload    → {"graph":"fb","path":"fb2.snap"}: load the file
//	                        off to the side, hot-swap it in (mount when new)
//	POST /admin/mutate    → {"graph":"fb","deltas":[{"op":"add_edge","u":1,"v":2}]}:
//	                        apply a live mutation batch (journaled when the
//	                        dataset mounted with a journal); no hot-swap
//	POST /admin/compact   → {"graph":"fb"}: fold the journal into a fresh
//	                        snapshot and truncate it
//	GET  /admin/replicate → ?graph=fb: stream a snapshot of the dataset's
//	                        current serving state; X-Sea-Version and
//	                        X-Sea-Lineage carry the replication cursor
//	GET  /admin/journal   → ?graph=fb&lineage=L&from=V: the journal batches
//	                        past cursor V, rebased onto graph versions;
//	                        410 Gone when only a fresh snapshot can serve
//	                        the cursor (compacted past, new lineage)
//
// /admin/replicate and /admin/journal make any journaled seaserve a
// replication primary: internal/cluster's follower bootstraps from the
// first and tails the second, folding batches through Engine.Apply.
//
// Reload never disturbs the running engine on failure: a corrupt or
// missing file reports 422/500 and the old engine keeps serving. Mutate is
// all-or-nothing per batch: a rejected delta reports 400 and nothing
// changes. Concurrent mutate requests coalesce through the dataset's
// group-commit batcher (internal/commit): the response carries the caller's
// per-delta outcomes plus batch-level batch_size/queue_ns/flush_ns, and a
// full commit queue sheds with 429 + Retry-After before anything enqueues.

import (
	"errors"
	"io"
	"net/http"
	"os"
	"strconv"

	"repro/internal/commit"
	"repro/internal/cserr"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/mutate"
)

// Replication wire protocol: endpoint paths and the headers carrying the
// snapshot cursor. internal/cluster's client speaks exactly these.
const (
	ReplicatePath = "/admin/replicate"
	JournalPath   = "/admin/journal"

	// HeaderGraph names the dataset a replication response describes (the
	// resolved name, even when the request named the default by omission).
	HeaderGraph = "X-Sea-Graph"
	// HeaderVersion is the graph generation the response captured — the
	// replication cursor a follower resumes tailing from.
	HeaderVersion = "X-Sea-Version"
	// HeaderLineage is the dataset's lineage token (swap count); journal
	// tails are only valid within one lineage.
	HeaderLineage = "X-Sea-Lineage"
)

// graphsResponse is the GET /graphs body.
type graphsResponse struct {
	Default string `json:"default,omitempty"`
	Graphs  []Info `json:"graphs"`
}

// statsResponse is the GET /stats body: the engine counters plus the
// catalog-level journal and lineage state replication lag is read from,
// the per-stage latency percentile summary (µs; see engine.LatencySummary),
// and the group-commit batcher digest (batch-size distribution, queue-wait
// and flush percentiles; see commit.Summary).
type statsResponse struct {
	Graph string `json:"graph"`
	engine.Stats
	Lineage        uint64                `json:"lineage"`
	JournalSeq     uint64                `json:"journal_seq"`
	JournalBatches int                   `json:"journal_batches"`
	Latency        engine.LatencySummary `json:"latency"`
	Commit         commit.Summary        `json:"commit"`
}

// journalResponse is the GET /admin/journal body.
type journalResponse struct {
	Graph   string `json:"graph"`
	Lineage uint64 `json:"lineage"`
	From    uint64 `json:"from"`
	// Version is the dataset's current graph generation; Version − From is
	// the lag the returned batches close.
	Version uint64           `json:"version"`
	Batches []VersionedBatch `json:"batches"`
}

// reloadRequest is the POST /admin/reload body.
type reloadRequest struct {
	Graph string `json:"graph"`
	Path  string `json:"path"`
}

type reloadResponse struct {
	Graph string `json:"graph"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	Swaps uint64 `json:"swaps"`
}

// mutateRequest is the POST /admin/mutate body; an empty Graph targets the
// default dataset.
type mutateRequest struct {
	Graph  string         `json:"graph"`
	Deltas []mutate.Delta `json:"deltas"`
}

// compactRequest is the POST /admin/compact body.
type compactRequest struct {
	Graph string `json:"graph"`
}

// NewHTTPHandler returns the multi-dataset JSON serving surface of c. base
// is the engine config template used when /admin/reload mounts a dataset
// under a new name (existing datasets keep the config they were mounted
// with).
func NewHTTPHandler(c *Catalog, base engine.Config) http.Handler {
	mux := engine.NewResolverHandler(c.Resolve)
	mux.HandleFunc("/graphs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			engine.WriteError(w, http.StatusMethodNotAllowed, cserr.Invalidf("use GET"))
			return
		}
		engine.WriteJSON(w, http.StatusOK, graphsResponse{Default: c.Default(), Graphs: c.Infos()})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			engine.WriteError(w, http.StatusMethodNotAllowed, cserr.Invalidf("use GET"))
			return
		}
		w.Header().Set("Content-Type", metricsContentType)
		WriteMetrics(w, c.Infos())
	})
	mux.HandleFunc("/admin/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			engine.WriteError(w, http.StatusMethodNotAllowed, cserr.Invalidf("use POST"))
			return
		}
		var req reloadRequest
		if err := engine.DecodeJSONBody(w, r, &req); err != nil {
			engine.WriteError(w, engine.StatusFor(err), err)
			return
		}
		if req.Graph == "" || req.Path == "" {
			engine.WriteError(w, http.StatusBadRequest, cserr.Invalidf(`need "graph" and "path"`))
			return
		}
		d, err := c.SwapPath(req.Graph, req.Path, base)
		if err != nil {
			engine.WriteError(w, engine.StatusFor(err), err)
			return
		}
		g := d.Engine().Graph()
		d.mu.Lock()
		swaps := d.swaps
		d.mu.Unlock()
		engine.WriteJSON(w, http.StatusOK, reloadResponse{
			Graph: d.Name(), Nodes: g.NumNodes(), Edges: g.NumEdges(), Swaps: swaps,
		})
	})
	mux.HandleFunc("/admin/mutate", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			engine.WriteError(w, http.StatusMethodNotAllowed, cserr.Invalidf("use POST"))
			return
		}
		var req mutateRequest
		if err := engine.DecodeJSONBody(w, r, &req); err != nil {
			engine.WriteError(w, engine.StatusFor(err), err)
			return
		}
		if len(req.Deltas) == 0 {
			engine.WriteError(w, http.StatusBadRequest, cserr.Invalidf(`need a non-empty "deltas" array`))
			return
		}
		res, err := c.Mutate(req.Graph, req.Deltas)
		if err != nil {
			if res != nil && res.Applied > 0 {
				// The batch IS live but failed to journal: a bare error
				// would invite a retry that double-applies it. Report the
				// full result (JournalError set) under a 500 status.
				engine.WriteJSON(w, http.StatusInternalServerError, res)
				return
			}
			engine.WriteError(w, engine.StatusFor(err), err)
			return
		}
		engine.WriteJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("/admin/compact", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			engine.WriteError(w, http.StatusMethodNotAllowed, cserr.Invalidf("use POST"))
			return
		}
		var req compactRequest
		if err := engine.DecodeJSONBody(w, r, &req); err != nil {
			engine.WriteError(w, engine.StatusFor(err), err)
			return
		}
		res, err := c.Compact(req.Graph)
		if err != nil {
			engine.WriteError(w, engine.StatusFor(err), err)
			return
		}
		engine.WriteJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc(ReplicatePath, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			engine.WriteError(w, http.StatusMethodNotAllowed, cserr.Invalidf("use GET"))
			return
		}
		c.serveReplicate(w, r)
	})
	mux.HandleFunc(JournalPath, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			engine.WriteError(w, http.StatusMethodNotAllowed, cserr.Invalidf("use GET"))
			return
		}
		c.serveJournal(w, r)
	})
	// The resolver handler registered a plain engine /stats; the catalog
	// enriches it with journal/lineage state, so the wrapper owns the path.
	return engine.WithRequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/stats" {
			info, err := c.InfoFor(r.URL.Query().Get("graph"))
			if err != nil {
				engine.WriteError(w, engine.StatusFor(err), err)
				return
			}
			engine.WriteJSON(w, http.StatusOK, statsResponse{
				Graph: info.Name, Stats: info.Stats, Lineage: info.Swaps,
				JournalSeq: info.JournalSeq, JournalBatches: info.JournalBatches,
				Latency: info.Latency.Summary(), Commit: info.Commit.Summary(),
			})
			return
		}
		mux.ServeHTTP(w, r)
	}))
}

// serveReplicate streams a snapshot of the dataset's current serving state.
// The snapshot spools through a temp file first: the cursor headers must be
// written before the body, and the cursor is only known once the engine
// state has been captured — and a slow client must not hold the dataset
// lock or pin the engine any longer than the capture itself.
func (c *Catalog) serveReplicate(w http.ResponseWriter, r *http.Request) {
	f, err := os.CreateTemp("", "sea-replicate-*.snap")
	if err != nil {
		engine.WriteError(w, http.StatusInternalServerError, err)
		return
	}
	defer func() {
		f.Close()
		os.Remove(f.Name())
	}()
	name := r.URL.Query().Get("graph")
	info, err := c.InfoFor(name)
	if err != nil {
		engine.WriteError(w, engine.StatusFor(err), err)
		return
	}
	version, lineage, err := c.ReplicateSnapshot(name, f)
	if err != nil {
		engine.WriteError(w, engine.StatusFor(err), err)
		return
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err == nil {
		_, err = f.Seek(0, io.SeekStart)
	}
	if err != nil {
		engine.WriteError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.Header().Set(HeaderGraph, info.Name)
	w.Header().Set(HeaderVersion, strconv.FormatUint(version, 10))
	w.Header().Set(HeaderLineage, strconv.FormatUint(lineage, 10))
	// "replicate.stream" severs the bootstrap transfer mid-body (headers and
	// Content-Length already sent), the shape of a connection dropped during
	// a long snapshot download.
	io.Copy(faults.Wrap("replicate.stream", w), f)
}

// serveJournal answers a follower's tail poll. A cursor no journal tail can
// serve maps to 410 Gone — the follower's signal to bootstrap a fresh
// snapshot.
func (c *Catalog) serveJournal(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("graph")
	lineage, err := parseUint(q.Get("lineage"))
	if err != nil {
		engine.WriteError(w, http.StatusBadRequest, cserr.Invalidf("bad lineage=%q", q.Get("lineage")))
		return
	}
	from, err := parseUint(q.Get("from"))
	if err != nil {
		engine.WriteError(w, http.StatusBadRequest, cserr.Invalidf("bad from=%q", q.Get("from")))
		return
	}
	info, err := c.InfoFor(name)
	if err != nil {
		engine.WriteError(w, engine.StatusFor(err), err)
		return
	}
	batches, cur, err := c.JournalSince(name, lineage, from)
	if err == nil {
		err = faults.Check("journal.serve")
	}
	if err != nil {
		status := engine.StatusFor(err)
		if errors.Is(err, ErrResync) {
			status = http.StatusGone
		}
		engine.WriteError(w, status, err)
		return
	}
	if batches == nil {
		batches = []VersionedBatch{} // a caught-up tail is [], not null
	}
	engine.WriteJSON(w, http.StatusOK, journalResponse{
		Graph: info.Name, Lineage: lineage, From: from, Version: cur, Batches: batches,
	})
}

// parseUint parses a decimal uint64 query parameter, "" meaning 0.
func parseUint(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseUint(s, 10, 64)
}
