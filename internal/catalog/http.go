package catalog

// HTTP surface of a Catalog: the engine's full query surface (/search,
// /batch, /compare, /healthz, /stats) routed per dataset through the wire
// request's "graph" field, plus the catalog's own endpoints:
//
//	GET  /graphs        → mounted datasets with shape, source and stats
//	POST /admin/reload  → {"graph":"fb","path":"fb2.snap"}: load the file
//	                      off to the side, hot-swap it in (mount when new)
//	POST /admin/mutate  → {"graph":"fb","deltas":[{"op":"add_edge","u":1,"v":2}]}:
//	                      apply a live mutation batch (journaled when the
//	                      dataset mounted with a journal); no hot-swap
//	POST /admin/compact → {"graph":"fb"}: fold the journal into a fresh
//	                      snapshot and truncate it
//
// Reload never disturbs the running engine on failure: a corrupt or
// missing file reports 422/500 and the old engine keeps serving. Mutate is
// all-or-nothing per batch: a rejected delta reports 400 and nothing
// changes.

import (
	"net/http"

	"repro/internal/cserr"
	"repro/internal/engine"
	"repro/internal/mutate"
)

// graphsResponse is the GET /graphs body.
type graphsResponse struct {
	Default string `json:"default,omitempty"`
	Graphs  []Info `json:"graphs"`
}

// reloadRequest is the POST /admin/reload body.
type reloadRequest struct {
	Graph string `json:"graph"`
	Path  string `json:"path"`
}

type reloadResponse struct {
	Graph string `json:"graph"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	Swaps uint64 `json:"swaps"`
}

// mutateRequest is the POST /admin/mutate body; an empty Graph targets the
// default dataset.
type mutateRequest struct {
	Graph  string         `json:"graph"`
	Deltas []mutate.Delta `json:"deltas"`
}

// compactRequest is the POST /admin/compact body.
type compactRequest struct {
	Graph string `json:"graph"`
}

// NewHTTPHandler returns the multi-dataset JSON serving surface of c. base
// is the engine config template used when /admin/reload mounts a dataset
// under a new name (existing datasets keep the config they were mounted
// with).
func NewHTTPHandler(c *Catalog, base engine.Config) http.Handler {
	mux := engine.NewResolverHandler(c.Resolve)
	mux.HandleFunc("/graphs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			engine.WriteError(w, http.StatusMethodNotAllowed, cserr.Invalidf("use GET"))
			return
		}
		engine.WriteJSON(w, http.StatusOK, graphsResponse{Default: c.Default(), Graphs: c.Infos()})
	})
	mux.HandleFunc("/admin/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			engine.WriteError(w, http.StatusMethodNotAllowed, cserr.Invalidf("use POST"))
			return
		}
		var req reloadRequest
		if err := engine.DecodeJSONBody(w, r, &req); err != nil {
			engine.WriteError(w, engine.StatusFor(err), err)
			return
		}
		if req.Graph == "" || req.Path == "" {
			engine.WriteError(w, http.StatusBadRequest, cserr.Invalidf(`need "graph" and "path"`))
			return
		}
		d, err := c.SwapPath(req.Graph, req.Path, base)
		if err != nil {
			engine.WriteError(w, engine.StatusFor(err), err)
			return
		}
		g := d.Engine().Graph()
		d.mu.Lock()
		swaps := d.swaps
		d.mu.Unlock()
		engine.WriteJSON(w, http.StatusOK, reloadResponse{
			Graph: d.Name(), Nodes: g.NumNodes(), Edges: g.NumEdges(), Swaps: swaps,
		})
	})
	mux.HandleFunc("/admin/mutate", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			engine.WriteError(w, http.StatusMethodNotAllowed, cserr.Invalidf("use POST"))
			return
		}
		var req mutateRequest
		if err := engine.DecodeJSONBody(w, r, &req); err != nil {
			engine.WriteError(w, engine.StatusFor(err), err)
			return
		}
		if len(req.Deltas) == 0 {
			engine.WriteError(w, http.StatusBadRequest, cserr.Invalidf(`need a non-empty "deltas" array`))
			return
		}
		res, err := c.Mutate(req.Graph, req.Deltas)
		if err != nil {
			if res != nil && res.Applied > 0 {
				// The batch IS live but failed to journal: a bare error
				// would invite a retry that double-applies it. Report the
				// full result (JournalError set) under a 500 status.
				engine.WriteJSON(w, http.StatusInternalServerError, res)
				return
			}
			engine.WriteError(w, engine.StatusFor(err), err)
			return
		}
		engine.WriteJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("/admin/compact", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			engine.WriteError(w, http.StatusMethodNotAllowed, cserr.Invalidf("use POST"))
			return
		}
		var req compactRequest
		if err := engine.DecodeJSONBody(w, r, &req); err != nil {
			engine.WriteError(w, engine.StatusFor(err), err)
			return
		}
		res, err := c.Compact(req.Graph)
		if err != nil {
			engine.WriteError(w, engine.StatusFor(err), err)
			return
		}
		engine.WriteJSON(w, http.StatusOK, res)
	})
	return mux
}
