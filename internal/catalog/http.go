package catalog

// HTTP surface of a Catalog: the engine's full query surface (/search,
// /batch, /compare, /healthz, /stats) routed per dataset through the wire
// request's "graph" field, plus the catalog's own endpoints:
//
//	GET  /graphs        → mounted datasets with shape, source and stats
//	POST /admin/reload  → {"graph":"fb","path":"fb2.snap"}: load the file
//	                      off to the side, hot-swap it in (mount when new)
//
// Reload never disturbs the running engine on failure: a corrupt or
// missing file reports 422/500 and the old engine keeps serving.

import (
	"encoding/json"
	"net/http"

	"repro/internal/cserr"
	"repro/internal/engine"
)

// graphsResponse is the GET /graphs body.
type graphsResponse struct {
	Default string `json:"default,omitempty"`
	Graphs  []Info `json:"graphs"`
}

// reloadRequest is the POST /admin/reload body.
type reloadRequest struct {
	Graph string `json:"graph"`
	Path  string `json:"path"`
}

type reloadResponse struct {
	Graph string `json:"graph"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	Swaps uint64 `json:"swaps"`
}

// NewHTTPHandler returns the multi-dataset JSON serving surface of c. base
// is the engine config template used when /admin/reload mounts a dataset
// under a new name (existing datasets keep the config they were mounted
// with).
func NewHTTPHandler(c *Catalog, base engine.Config) http.Handler {
	mux := engine.NewResolverHandler(c.Resolve)
	mux.HandleFunc("/graphs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			engine.WriteError(w, http.StatusMethodNotAllowed, cserr.Invalidf("use GET"))
			return
		}
		engine.WriteJSON(w, http.StatusOK, graphsResponse{Default: c.Default(), Graphs: c.Infos()})
	})
	mux.HandleFunc("/admin/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			engine.WriteError(w, http.StatusMethodNotAllowed, cserr.Invalidf("use POST"))
			return
		}
		var req reloadRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			engine.WriteError(w, http.StatusBadRequest, cserr.Invalidf("bad request body: %v", err))
			return
		}
		if req.Graph == "" || req.Path == "" {
			engine.WriteError(w, http.StatusBadRequest, cserr.Invalidf(`need "graph" and "path"`))
			return
		}
		d, err := c.SwapPath(req.Graph, req.Path, base)
		if err != nil {
			engine.WriteError(w, engine.StatusFor(err), err)
			return
		}
		g := d.Engine().Graph()
		d.mu.Lock()
		swaps := d.swaps
		d.mu.Unlock()
		engine.WriteJSON(w, http.StatusOK, reloadResponse{
			Graph: d.Name(), Nodes: g.NumNodes(), Edges: g.NumEdges(), Swaps: swaps,
		})
	})
	return mux
}
