package catalog

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
)

// newTestServer mounts two differently-sized analogs and returns the catalog
// and a test server over its HTTP handler.
func newTestServer(t *testing.T) (*Catalog, *httptest.Server) {
	t.Helper()
	c := New()
	if _, err := c.Mount("fb", makeEngine(t, "facebook", 0.2), engine.DefaultConfig(), "test"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Mount("gh", makeEngine(t, "github", 0.1), engine.DefaultConfig(), "test"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHTTPHandler(c, engine.DefaultConfig()))
	t.Cleanup(srv.Close)
	return c, srv
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body
}

func TestGraphsEndpoint(t *testing.T) {
	_, srv := newTestServer(t)
	body := getJSON(t, srv.URL+"/graphs", http.StatusOK)
	if body["default"] != "fb" {
		t.Fatalf("default: %v", body["default"])
	}
	graphs, ok := body["graphs"].([]any)
	if !ok || len(graphs) != 2 {
		t.Fatalf("graphs: %v", body["graphs"])
	}
	first := graphs[0].(map[string]any)
	if first["name"] != "fb" || first["default"] != true {
		t.Fatalf("first graph: %v", first)
	}
	if first["nodes"].(float64) <= 0 || first["edges"].(float64) <= 0 {
		t.Fatalf("graph shape missing: %v", first)
	}
	if _, ok := first["stats"].(map[string]any); !ok {
		t.Fatalf("stats missing: %v", first)
	}

	resp, err := http.Post(srv.URL+"/graphs", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /graphs: %d", resp.StatusCode)
	}
}

// TestPerDatasetRouting proves the "graph" wire field (and ?graph=) selects
// the dataset, on /search, /healthz and /stats, and that an unknown name is
// a 404.
func TestPerDatasetRouting(t *testing.T) {
	c, srv := newTestServer(t)
	fb, _ := c.Engine("fb")
	gh, _ := c.Engine("gh")

	hFB := getJSON(t, srv.URL+"/healthz", http.StatusOK) // default = fb
	if int(hFB["nodes"].(float64)) != fb.Graph().NumNodes() {
		t.Fatalf("default healthz nodes: %v", hFB["nodes"])
	}
	hGH := getJSON(t, srv.URL+"/healthz?graph=gh", http.StatusOK)
	if int(hGH["nodes"].(float64)) != gh.Graph().NumNodes() {
		t.Fatalf("gh healthz nodes: %v", hGH["nodes"])
	}
	getJSON(t, srv.URL+"/healthz?graph=nope", http.StatusNotFound)

	// GET /search routes by ?graph=.
	getJSON(t, srv.URL+"/search?q=0&k=2&method=structural&graph=gh", http.StatusOK)
	getJSON(t, srv.URL+"/search?q=0&k=2&method=structural&graph=nope", http.StatusNotFound)

	// POST /search routes by the body's "graph" field; the per-engine query
	// counters prove which engine served it.
	before := gh.Stats().Queries
	reqBody := `{"q":0,"k":2,"method":"structural","graph":"gh"}`
	resp, err := http.Post(srv.URL+"/search", "application/json", strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /search graph=gh: %d", resp.StatusCode)
	}
	if gh.Stats().Queries != before+1 {
		t.Fatal("request did not route to the gh engine")
	}

	// /stats routes too.
	sGH := getJSON(t, srv.URL+"/stats?graph=gh", http.StatusOK)
	if uint64(sGH["queries"].(float64)) != gh.Stats().Queries {
		t.Fatalf("stats not from gh engine: %v", sGH["queries"])
	}
}

func TestAdminReload(t *testing.T) {
	c, srv := newTestServer(t)
	eng := makeEngine(t, "facebook", 0.4)
	snapPath := packFile(t, eng, "v2.snap")

	// Swap the existing fb dataset to the new snapshot.
	body := fmt.Sprintf(`{"graph":"fb","path":%q}`, snapPath)
	resp, err := http.Post(srv.URL+"/admin/reload", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var reload map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&reload); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d (%v)", resp.StatusCode, reload)
	}
	if int(reload["nodes"].(float64)) != eng.Graph().NumNodes() {
		t.Fatalf("reload shape: %v", reload)
	}
	now, _ := c.Engine("fb")
	if now.Graph().NumNodes() != eng.Graph().NumNodes() {
		t.Fatal("reload did not swap the engine")
	}

	// Mounting a brand-new name through the same endpoint.
	body = fmt.Sprintf(`{"graph":"fresh","path":%q}`, snapPath)
	resp, err = http.Post(srv.URL+"/admin/reload", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload new name: %d", resp.StatusCode)
	}
	if _, err := c.Engine("fresh"); err != nil {
		t.Fatal("new dataset not mounted")
	}

	// A corrupt snapshot is rejected without disturbing the running engine.
	corrupt := filepath.Join(t.TempDir(), "bad.snap")
	data, _ := os.ReadFile(snapPath)
	data[len(data)-10] ^= 0xff
	if err := os.WriteFile(corrupt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	body = fmt.Sprintf(`{"graph":"fb","path":%q}`, corrupt)
	resp, err = http.Post(srv.URL+"/admin/reload", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt reload: %d", resp.StatusCode)
	}
	still, _ := c.Engine("fb")
	if still != now {
		t.Fatal("corrupt reload disturbed the engine")
	}

	// Missing fields are a 400.
	resp, err = http.Post(srv.URL+"/admin/reload", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty reload: %d", resp.StatusCode)
	}
}

// TestHotSwapUnderHTTPLoad drives concurrent /search requests while
// /admin/reload swaps the dataset between two snapshots: every response
// must be a coherent 200/404 from exactly one snapshot, and in-flight
// requests on the old engine complete while new ones hit the new snapshot.
func TestHotSwapUnderHTTPLoad(t *testing.T) {
	c, srv := newTestServer(t)
	small, _ := c.Engine("fb")
	big := makeEngine(t, "facebook", 0.4)
	smallPath := packFile(t, small, "small.snap")
	bigPath := packFile(t, big, "big.snap")
	nSmall, nBig := small.Graph().NumNodes(), big.Graph().NumNodes()

	var workers, swapper sync.WaitGroup
	stop := make(chan struct{})
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		paths := [2]string{bigPath, smallPath}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			body := fmt.Sprintf(`{"graph":"fb","path":%q}`, paths[i%2])
			resp, err := http.Post(srv.URL+"/admin/reload", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("reload during load: %d", resp.StatusCode)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 30; i++ {
				resp, err := http.Get(srv.URL + "/search?q=0&k=2&method=structural")
				if err != nil {
					t.Error(err)
					return
				}
				var body struct {
					Community []int64 `json:"community"`
				}
				err = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					t.Errorf("search during swap: %d", resp.StatusCode)
					return
				}
				// Each response comes from one coherent graph: members are
				// in-range for the larger, and if any exceeds the smaller
				// graph the whole community must have come from the big one.
				for _, v := range body.Community {
					if v >= int64(nBig) {
						t.Errorf("member %d outside both graphs (%d/%d)", v, nSmall, nBig)
						return
					}
				}
			}
		}()
	}
	workers.Wait()
	close(stop)
	swapper.Wait()
}
