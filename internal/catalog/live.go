package catalog

// Live updates through the catalog: a dataset can mount with a write-ahead
// mutation journal (internal/store.Journal). Mutate applies a delta batch
// to the dataset's engine — incremental index maintenance, scoped cache
// invalidation, no hot-swap — and journals it durably before returning, so
// a restart reconstructs the exact live state by replaying the journal on
// top of the last snapshot. A background compactor folds the journal into a
// fresh snapshot (atomic rename) and truncates it, either on demand
// (Compact, POST /admin/compact) or automatically once the journal exceeds
// the dataset's compaction threshold.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/cserr"
	"repro/internal/engine"
	"repro/internal/mutate"
	"repro/internal/store"
)

// DefaultCompactEvery is the journal batch count that triggers background
// compaction on a journaled dataset.
const DefaultCompactEvery = 64

// liveState is the journaling state of a mounted dataset, guarded by the
// dataset's mu.
type liveState struct {
	journal      *store.Journal
	snapPath     string // where Compact writes the folded snapshot
	compactEvery int
	compacting   bool
	compactErr   error // last background compaction failure, cleared on success
	// broken marks a journal with a semantic hole: a batch was applied to
	// the engine but its append failed, so later appends would replay
	// against a state missing it. Mutations fail closed until a compaction
	// rebuilds durability from the live state.
	broken bool
	wg     sync.WaitGroup
}

// MountPathJournaled mounts the dataset file at path with the write-ahead
// journal at journalPath (created when absent), replaying any journaled
// batches on top of the file before the dataset starts serving. It returns
// the mounted dataset and the number of replayed batches.
//
// Compaction folds the journal into a packed snapshot: over path itself
// when it already is one, else alongside it at path+".snap" (the text
// source is never overwritten). The mount prefers that sidecar snapshot
// when it exists — it is what the journal was last truncated against, so
// booting from the text source instead would silently drop every batch a
// compaction folded.
func (c *Catalog) MountPathJournaled(name, path, journalPath string, cfg engine.Config) (*Dataset, int, error) {
	src := path
	if info, err := store.DetectFile(path); err == nil && !info.IsSnapshot() {
		if sidecar := path + ".snap"; fileExists(sidecar) {
			src = sidecar
		}
	}
	eng, mounted, err := c.openPath(src, cfg)
	if err != nil {
		return nil, 0, err
	}
	journal, batches, err := store.OpenJournal(journalPath)
	if err != nil {
		mounted.Close()
		return nil, 0, err
	}
	// Replay applies each batch as an overlay over the mounted base (which
	// may be a zero-copy mapped snapshot — the mutation path never writes
	// the read-only pages) and materializes a fresh heap graph per batch.
	for _, b := range batches {
		if _, err := eng.Apply(b.Deltas); err != nil {
			journal.Close()
			mounted.Close()
			return nil, 0, fmt.Errorf("%w: journal %s batch %d does not apply to %s: %v",
				cserr.ErrSnapshotCorrupt, journalPath, b.Seq, path, err)
		}
	}
	d, err := c.Mount(name, eng, cfg, src)
	if err != nil {
		journal.Close()
		mounted.Close()
		return nil, 0, err
	}
	snapPath := src
	if info, err := store.DetectFile(src); err != nil || !info.IsSnapshot() {
		snapPath = src + ".snap"
	}
	d.mu.Lock()
	d.live = &liveState{journal: journal, snapPath: snapPath, compactEvery: DefaultCompactEvery}
	d.mounted = mounted
	d.mu.Unlock()
	return d, len(batches), nil
}

// SetCompactEvery sets the journal batch count that triggers background
// compaction (≤0 disables automatic compaction). No-op on an unjournaled
// dataset.
func (d *Dataset) SetCompactEvery(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.live != nil {
		d.live.compactEvery = n
	}
}

// MutateResult reports one applied mutation batch.
type MutateResult struct {
	Graph string `json:"graph"`
	engine.ApplyResult
	// Journaled is the journal sequence number of the batch (0 when the
	// dataset has no journal).
	Journaled uint64 `json:"journaled,omitempty"`
	// JournalError reports a batch that is live on the engine but could
	// not be made durable (journal append failed): retrying the mutation
	// would double-apply it — compact instead, which restores durability
	// from the live state.
	JournalError string `json:"journal_error,omitempty"`
	// Compacting reports that this batch tipped the journal over its
	// threshold and a background compaction started.
	Compacting bool `json:"compacting,omitempty"`
	// JournalNS is the durability stage: the whole journal append (marshal,
	// write, fsync). JournalFsyncNS is the fsync alone — the storage-latency
	// component. Both are 0 on an unjournaled dataset. Together with
	// ApplyNS/InvalidateNS from the embedded ApplyResult, the write path's
	// latency decomposes stage by stage.
	JournalNS      int64 `json:"journal_ns,omitempty"`
	JournalFsyncNS int64 `json:"journal_fsync_ns,omitempty"`
}

// Mutate applies one delta batch to the named dataset's engine and journals
// it durably (when the dataset is journaled) before returning. Mutations on
// one dataset serialize; queries keep flowing throughout, and the engine is
// never hot-swapped — that is the point.
func (c *Catalog) Mutate(name string, deltas []mutate.Delta) (*MutateResult, error) {
	d, err := c.dataset(name)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.live != nil && d.live.broken {
		// A previous batch is live but missing from the journal; appending
		// more would create a replayable journal with a semantic hole
		// (contiguous sequence numbers, missing state). Fail closed until a
		// compaction rebuilds durability from the live state.
		return nil, fmt.Errorf("%w: journal for %q is missing an applied batch; compact to restore durability",
			cserr.ErrSnapshotCorrupt, d.name)
	}
	eng := d.eng.Load()
	res, err := eng.Apply(deltas)
	if err != nil {
		return nil, err
	}
	out := &MutateResult{Graph: d.name, ApplyResult: *res}
	if d.live != nil {
		tJournal := time.Now()
		seq, err := d.live.journal.Append(deltas)
		out.JournalNS = time.Since(tJournal).Nanoseconds()
		if err == nil {
			out.JournalFsyncNS = d.live.journal.LastSyncNS()
			eng.ObserveJournalAppend(out.JournalNS)
		}
		if err != nil {
			// The mutation is live but not durable. Fail this dataset's
			// mutations closed and return the result WITH the error
			// recorded on it: the caller must see what was applied
			// (retrying would double-apply the batch) and that compacting
			// restores durability from the live state.
			d.live.broken = true
			out.JournalError = err.Error()
			return out, fmt.Errorf("mutation applied but not journaled: %w", err)
		}
		out.Journaled = seq
		if d.live.compactEvery > 0 && d.live.journal.Batches() >= d.live.compactEvery && !d.live.compacting {
			d.live.compacting = true
			d.live.wg.Add(1)
			// The goroutine gets the liveState captured under d.mu: a
			// concurrent Unmount may nil d.live, and the compactor must
			// neither dereference that nor fold a journal it no longer owns.
			go c.compactAsync(d, d.live)
			out.Compacting = true
		}
	}
	return out, nil
}

// CompactResult reports one journal compaction.
type CompactResult struct {
	Graph string `json:"graph"`
	// Path is the snapshot file the journal folded into.
	Path string `json:"path"`
	// Bytes is the written snapshot size.
	Bytes int64 `json:"bytes"`
	// BatchesFolded is the number of journal batches the snapshot absorbed.
	BatchesFolded int `json:"batches_folded"`
	// Version is the engine's graph generation captured by the snapshot.
	Version uint64 `json:"version"`
}

// Compact folds the named dataset's journal into a fresh snapshot (written
// atomically over the dataset's snapshot path) and truncates the journal.
// The serving engine is untouched — compaction changes only what a future
// boot reads. An unjournaled dataset is an error.
func (c *Catalog) Compact(name string) (*CompactResult, error) {
	d, err := c.dataset(name)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.compactLocked()
}

// compactLocked is Compact holding d.mu.
func (d *Dataset) compactLocked() (*CompactResult, error) {
	if d.live == nil {
		return nil, cserr.Invalidf("catalog: dataset %q has no journal to compact", d.name)
	}
	eng := d.eng.Load()
	folded := d.live.journal.Batches()
	size, err := store.AtomicWriteFile(d.live.snapPath, eng.WriteSnapshot)
	if err != nil {
		return nil, err
	}
	if err := d.live.journal.Reset(); err != nil {
		return nil, err
	}
	d.live.broken = false
	d.source = d.live.snapPath
	return &CompactResult{
		Graph: d.name, Path: d.live.snapPath, Bytes: size,
		BatchesFolded: folded, Version: eng.Version(),
	}, nil
}

// compactAsync is the background compactor body; live.compacting is already
// set by the caller. Unlike the explicit Compact, it does not hold d.mu
// across the snapshot write — mutations keep flowing while the fold is on
// disk. The write is optimistic: the engine state and journal batch count
// are captured together under d.mu, the snapshot streams to a temp file
// unlocked, and the rename + journal reset happen back under d.mu only if
// no further batch landed in between (otherwise the temp file is discarded
// and the next threshold crossing retries with the newer state).
func (c *Catalog) compactAsync(d *Dataset, live *liveState) {
	defer live.wg.Done()
	err := c.compactOptimistic(d, live)
	d.mu.Lock()
	live.compactErr = err
	live.compacting = false
	d.mu.Unlock()
}

func (c *Catalog) compactOptimistic(d *Dataset, live *liveState) error {
	d.mu.Lock()
	if d.live != live { // unmounted or swapped since the trigger
		d.mu.Unlock()
		return nil
	}
	eng := d.eng.Load()
	ver := eng.Version()
	snapPath := live.snapPath
	d.mu.Unlock()

	dir, base := filepath.Split(snapPath)
	f, err := os.CreateTemp(dir, base+".compact*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	discard := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := eng.WriteSnapshot(f); err != nil {
		return discard(err)
	}
	if err := f.Sync(); err != nil {
		return discard(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	// Staleness is judged by the engine pointer (a Swap installs a new
	// engine) and its monotonic version (a Mutate bumps it) — NOT by the
	// journal batch count, which aliases across a concurrent Reset (an
	// explicit Compact, or a Swap) and could let a stale snapshot fold over
	// durably-acknowledged batches.
	if d.live != live || d.eng.Load() != eng || eng.Version() != ver {
		os.Remove(tmp)
		return nil
	}
	if err := os.Rename(tmp, snapPath); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := live.journal.Reset(); err != nil {
		return err
	}
	live.broken = false
	d.source = snapPath
	return nil
}

// fileExists reports whether path names an existing regular file.
func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.Mode().IsRegular()
}

// Close releases every dataset's journal and unmaps every snapshot mapping
// — live and retired. Serving must have stopped: no query may still hold an
// engine over a mapped backing. Mount no further datasets after closing;
// in-flight background compactions are waited out.
func (c *Catalog) Close() error {
	c.mu.Lock()
	ds := make([]*Dataset, 0, len(c.datasets))
	for _, d := range c.datasets {
		ds = append(ds, d)
	}
	retired := c.retired
	c.retired = nil
	c.mu.Unlock()
	var errs []string
	for _, d := range ds {
		d.mu.Lock()
		live := d.live
		mounted := d.mounted
		d.mounted = nil
		d.mu.Unlock()
		if live != nil {
			live.wg.Wait()
			if err := live.journal.Close(); err != nil {
				errs = append(errs, fmt.Sprintf("%s: %v", d.name, err))
			}
		}
		if err := mounted.Close(); err != nil {
			errs = append(errs, fmt.Sprintf("%s: unmap: %v", d.name, err))
		}
	}
	for _, m := range retired {
		if err := m.Close(); err != nil {
			errs = append(errs, fmt.Sprintf("retired mapping: %v", err))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("catalog: closing: %s", strings.Join(errs, "; "))
	}
	return nil
}
