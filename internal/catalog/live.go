package catalog

// Live updates through the catalog: a dataset can mount with a write-ahead
// mutation journal (internal/store.Journal). Mutate enqueues a delta group
// on the dataset's group-commit batcher (internal/commit) and waits for its
// flush: concurrent callers coalesce into one staged commit —
//
//	engine   one ApplyGroups folds every group through one incremental
//	         maintenance session and publishes ONE generation;
//	catalog  this file's flushGroups drives the stages under d.mu;
//	journal  one AppendGroups record (one seq, one CRC, one fsync) makes
//	         the whole batch durable;
//	replication  followers see one shipped record per flush, so the
//	         version-per-record cursor math is untouched.
//
// so fsync and the core/truss cascades amortize across the batch, while
// each caller still gets an all-or-nothing verdict for its own group. A
// restart reconstructs the exact live state by replaying the journal on top
// of the last snapshot. A background compactor folds the journal into a
// fresh snapshot (atomic rename) and truncates it, either on demand
// (Compact, POST /admin/compact) or automatically once the journal exceeds
// the dataset's compaction threshold; compaction and hot-swaps drain the
// batcher first so no flush lands astride the journal reset.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/commit"
	"repro/internal/cserr"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/store"
)

// DefaultCompactEvery is the journal batch count that triggers background
// compaction on a journaled dataset.
const DefaultCompactEvery = 64

// liveState is the journaling state of a mounted dataset, guarded by the
// dataset's mu.
type liveState struct {
	journal      *store.Journal
	snapPath     string // where Compact writes the folded snapshot
	compactEvery int
	compacting   bool
	compactErr   error // last background compaction failure, cleared on success
	// broken marks a journal with a semantic hole: a batch was applied to
	// the engine but its append failed, so later appends would replay
	// against a state missing it. Mutations fail closed until a compaction
	// rebuilds durability from the live state.
	broken bool
	wg     sync.WaitGroup
}

// MountPathJournaled mounts the dataset file at path with the write-ahead
// journal at journalPath (created when absent), replaying any journaled
// batches on top of the file before the dataset starts serving. It returns
// the mounted dataset and the number of replayed batches.
//
// Compaction folds the journal into a packed snapshot: over path itself
// when it already is one, else alongside it at path+".snap" (the text
// source is never overwritten). The mount prefers that sidecar snapshot
// when it exists — it is what the journal was last truncated against, so
// booting from the text source instead would silently drop every batch a
// compaction folded.
func (c *Catalog) MountPathJournaled(name, path, journalPath string, cfg engine.Config) (*Dataset, int, error) {
	src := path
	if info, err := store.DetectFile(path); err == nil && !info.IsSnapshot() {
		if sidecar := path + ".snap"; fileExists(sidecar) {
			src = sidecar
		}
	}
	eng, mounted, err := c.openPath(src, cfg)
	if err != nil {
		return nil, 0, err
	}
	journal, batches, err := store.OpenJournal(journalPath)
	if err != nil {
		mounted.Close()
		return nil, 0, err
	}
	// Replay applies each batch as an overlay over the mounted base (which
	// may be a zero-copy mapped snapshot — the mutation path never writes
	// the read-only pages) and materializes a fresh heap graph per batch.
	for _, b := range batches {
		if _, err := eng.Apply(b.Deltas); err != nil {
			journal.Close()
			mounted.Close()
			return nil, 0, fmt.Errorf("%w: journal %s batch %d does not apply to %s: %v",
				cserr.ErrSnapshotCorrupt, journalPath, b.Seq, path, err)
		}
	}
	d, err := c.Mount(name, eng, cfg, src)
	if err != nil {
		journal.Close()
		mounted.Close()
		return nil, 0, err
	}
	snapPath := src
	if info, err := store.DetectFile(src); err != nil || !info.IsSnapshot() {
		snapPath = src + ".snap"
	}
	d.mu.Lock()
	d.live = &liveState{journal: journal, snapPath: snapPath, compactEvery: DefaultCompactEvery}
	d.mounted = mounted
	d.mu.Unlock()
	return d, len(batches), nil
}

// SetCompactEvery sets the journal batch count that triggers background
// compaction (≤0 disables automatic compaction). No-op on an unjournaled
// dataset.
func (d *Dataset) SetCompactEvery(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.live != nil {
		d.live.compactEvery = n
	}
}

// DeltaOutcome reports one delta of the caller's group in a committed
// flush. A group is all-or-nothing, so on a successful MutateResult every
// outcome is applied; add_node outcomes carry the assigned node ID.
type DeltaOutcome struct {
	Op      string       `json:"op"`
	Applied bool         `json:"applied"`
	NewNode graph.NodeID `json:"new_node,omitempty"`
}

// MutateResult reports one caller's delta group after its commit flush. The
// embedded ApplyResult is batch-level — the flush that carried this group
// may have coalesced others (Groups/GroupsApplied count them, BatchSize the
// callers) — except NewNodes, which is narrowed to the nodes THIS group
// added; Outcomes details the group delta by delta.
type MutateResult struct {
	Graph string `json:"graph"`
	engine.ApplyResult
	// Outcomes is the per-delta verdict for the caller's own group.
	Outcomes []DeltaOutcome `json:"outcomes,omitempty"`
	// Journaled is the journal sequence number of the commit record that
	// carried this group (0 when the dataset has no journal). Groups that
	// flushed together share one record — one seq, one CRC, one fsync.
	Journaled uint64 `json:"journaled,omitempty"`
	// JournalError reports a batch that is live on the engine but could
	// not be made durable (journal append failed): retrying the mutation
	// would double-apply it — compact instead, which restores durability
	// from the live state.
	JournalError string `json:"journal_error,omitempty"`
	// Compacting reports that this batch tipped the journal over its
	// threshold and a background compaction started.
	Compacting bool `json:"compacting,omitempty"`
	// JournalNS is the durability stage: the whole journal append (marshal,
	// write, fsync). JournalFsyncNS is the fsync alone — the storage-latency
	// component. Both are 0 on an unjournaled dataset. Together with
	// ApplyNS/InvalidateNS from the embedded ApplyResult, the write path's
	// latency decomposes stage by stage.
	JournalNS      int64 `json:"journal_ns,omitempty"`
	JournalFsyncNS int64 `json:"journal_fsync_ns,omitempty"`
	// BatchSize is how many callers' groups the flush coalesced (1 = this
	// group flushed alone); QueueNS is the wait from enqueue to flush
	// start; FlushNS is the whole flush (apply + journal + fan-out).
	BatchSize int   `json:"batch_size,omitempty"`
	QueueNS   int64 `json:"queue_ns,omitempty"`
	FlushNS   int64 `json:"flush_ns,omitempty"`
}

// Mutate applies one delta group to the named dataset and journals it
// durably (when the dataset is journaled) before returning. It enqueues the
// group on the dataset's group-commit batcher and waits for its flush;
// groups from concurrent callers coalesce into one commit, each keeping its
// own all-or-nothing verdict. A full commit queue sheds with
// cserr.ErrOverloaded (HTTP 429 + Retry-After; the group was never
// enqueued, safe to retry). Queries keep flowing throughout, and the engine
// is never hot-swapped — that is the point.
func (c *Catalog) Mutate(name string, deltas []mutate.Delta) (*MutateResult, error) {
	d, err := c.dataset(name)
	if err != nil {
		return nil, err
	}
	val, stats, err := d.commit.Submit(deltas)
	res, _ := val.(*MutateResult)
	if res != nil {
		res.BatchSize = stats.BatchSize
		res.QueueNS = stats.QueueNS
		res.FlushNS = stats.FlushNS
	}
	if errors.Is(err, commit.ErrClosed) {
		// The dataset unmounted between lookup and enqueue.
		err = fmt.Errorf("%w: %q", cserr.ErrUnknownGraph, name)
	}
	return res, err
}

// Fold applies one delta group directly — no batcher, no coalescing: one
// engine generation and one journal record for exactly this group. It is
// the replication fold: a follower replays shipped journal records, and
// each record must advance the version by exactly 1 to keep the
// record-per-version cursor math true; letting follower folds coalesce
// would break that invariant.
func (c *Catalog) Fold(name string, deltas []mutate.Delta) (*MutateResult, error) {
	d, err := c.dataset(name)
	if err != nil {
		return nil, err
	}
	results := c.flushGroups(d, [][]mutate.Delta{deltas})
	res, _ := results[0].Value.(*MutateResult)
	return res, results[0].Err
}

// flushGroups is the dataset's commit.Flush callback: it drives one
// coalesced batch through the staged pipeline under d.mu — engine
// (ApplyGroups publishes ONE generation), journal (AppendGroups writes ONE
// record), compaction trigger — and maps each group's outcome to its
// waiter. It runs on the batcher's flusher goroutine, serialized with every
// other flush of the dataset.
func (c *Catalog) flushGroups(d *Dataset, groups [][]mutate.Delta) []commit.Result {
	results := make([]commit.Result, len(groups))
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.live != nil && d.live.broken {
		// A previous batch is live but missing from the journal; appending
		// more would create a replayable journal with a semantic hole
		// (contiguous sequence numbers, missing state). Fail closed until a
		// compaction rebuilds durability from the live state.
		err := fmt.Errorf("%w: journal for %q is missing an applied batch; compact to restore durability",
			cserr.ErrSnapshotCorrupt, d.name)
		for i := range results {
			results[i] = commit.Result{Err: err}
		}
		return results
	}
	eng := d.eng.Load()
	res, outs, err := eng.ApplyGroups(groups)
	if err != nil {
		// No group applied (the serving state is untouched): rejected
		// groups carry their own error, the rest the batch-level one.
		for i := range results {
			ge := err
			if outs != nil && outs[i].Err != nil {
				ge = outs[i].Err
			}
			results[i] = commit.Result{Err: ge}
		}
		return results
	}

	// Journal only what applied: replay must reproduce exactly the state
	// the engine published, so rejected groups stay out of the record.
	applied := make([][]mutate.Delta, 0, len(groups))
	for i, o := range outs {
		if o.Err == nil && o.Applied {
			applied = append(applied, groups[i])
		}
	}
	var seq uint64
	var journalNS, fsyncNS int64
	var journalErr error
	var compacting bool
	if d.live != nil {
		tJournal := time.Now()
		seq, journalErr = d.live.journal.AppendGroups(applied)
		journalNS = time.Since(tJournal).Nanoseconds()
		if journalErr == nil {
			fsyncNS = d.live.journal.LastSyncNS()
			eng.ObserveJournalAppend(journalNS)
			if d.live.compactEvery > 0 && d.live.journal.Batches() >= d.live.compactEvery && !d.live.compacting {
				d.live.compacting = true
				d.live.wg.Add(1)
				// The goroutine gets the liveState captured under d.mu: a
				// concurrent Unmount may nil d.live, and the compactor must
				// neither dereference that nor fold a journal it no longer
				// owns.
				go c.compactAsync(d, d.live)
				compacting = true
			}
		} else {
			// The whole batch is live but not durable. Fail the dataset's
			// mutations closed and hand every applied waiter its result
			// WITH the error recorded on it: the caller must see what was
			// applied (retrying would double-apply the group) and that
			// compacting restores durability from the live state.
			d.live.broken = true
		}
	}

	for i, o := range outs {
		if o.Err != nil {
			results[i] = commit.Result{Err: o.Err}
			continue
		}
		mr := &MutateResult{Graph: d.name, ApplyResult: *res}
		mr.NewNodes = o.NewNodes
		mr.Outcomes = make([]DeltaOutcome, len(groups[i]))
		nn := 0
		for di, del := range groups[i] {
			mr.Outcomes[di] = DeltaOutcome{Op: del.Op.String(), Applied: true}
			if del.Op == mutate.OpAddNode && nn < len(o.NewNodes) {
				mr.Outcomes[di].NewNode = o.NewNodes[nn]
				nn++
			}
		}
		mr.JournalNS = journalNS
		mr.JournalFsyncNS = fsyncNS
		if journalErr != nil {
			mr.JournalError = journalErr.Error()
			results[i] = commit.Result{Value: mr,
				Err: fmt.Errorf("mutation applied but not journaled: %w", journalErr)}
			continue
		}
		mr.Journaled = seq
		mr.Compacting = compacting
		results[i] = commit.Result{Value: mr}
	}
	return results
}

// CompactResult reports one journal compaction.
type CompactResult struct {
	Graph string `json:"graph"`
	// Path is the snapshot file the journal folded into.
	Path string `json:"path"`
	// Bytes is the written snapshot size.
	Bytes int64 `json:"bytes"`
	// BatchesFolded is the number of journal batches the snapshot absorbed.
	BatchesFolded int `json:"batches_folded"`
	// Version is the engine's graph generation captured by the snapshot.
	Version uint64 `json:"version"`
}

// Compact folds the named dataset's journal into a fresh snapshot (written
// atomically over the dataset's snapshot path) and truncates the journal.
// The serving engine is untouched — compaction changes only what a future
// boot reads. An unjournaled dataset is an error.
func (c *Catalog) Compact(name string) (*CompactResult, error) {
	d, err := c.dataset(name)
	if err != nil {
		return nil, err
	}
	// Drain before locking: every group already acknowledged into the
	// commit queue flushes (and journals) first, so the fold below captures
	// it and the journal reset cannot strand an acknowledged-but-unflushed
	// group. Flushes take d.mu, so the drain must finish before we do.
	d.commit.Drain()
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.compactLocked()
}

// compactLocked is Compact holding d.mu.
func (d *Dataset) compactLocked() (*CompactResult, error) {
	if d.live == nil {
		return nil, cserr.Invalidf("catalog: dataset %q has no journal to compact", d.name)
	}
	eng := d.eng.Load()
	folded := d.live.journal.Batches()
	size, err := store.AtomicWriteFile(d.live.snapPath, eng.WriteSnapshot)
	if err != nil {
		return nil, err
	}
	if err := d.live.journal.Reset(); err != nil {
		return nil, err
	}
	d.live.broken = false
	d.source = d.live.snapPath
	return &CompactResult{
		Graph: d.name, Path: d.live.snapPath, Bytes: size,
		BatchesFolded: folded, Version: eng.Version(),
	}, nil
}

// compactAsync is the background compactor body; live.compacting is already
// set by the caller. Unlike the explicit Compact, it does not hold d.mu
// across the snapshot write — mutations keep flowing while the fold is on
// disk. The write is optimistic: the engine state and journal batch count
// are captured together under d.mu, the snapshot streams to a temp file
// unlocked, and the rename + journal reset happen back under d.mu only if
// no further batch landed in between (otherwise the temp file is discarded
// and the next threshold crossing retries with the newer state).
func (c *Catalog) compactAsync(d *Dataset, live *liveState) {
	defer live.wg.Done()
	err := c.compactOptimistic(d, live)
	d.mu.Lock()
	live.compactErr = err
	live.compacting = false
	d.mu.Unlock()
}

func (c *Catalog) compactOptimistic(d *Dataset, live *liveState) error {
	d.mu.Lock()
	if d.live != live { // unmounted or swapped since the trigger
		d.mu.Unlock()
		return nil
	}
	eng := d.eng.Load()
	ver := eng.Version()
	snapPath := live.snapPath
	d.mu.Unlock()

	dir, base := filepath.Split(snapPath)
	f, err := os.CreateTemp(dir, base+".compact*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	discard := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := eng.WriteSnapshot(f); err != nil {
		return discard(err)
	}
	if err := f.Sync(); err != nil {
		return discard(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	// Staleness is judged by the engine pointer (a Swap installs a new
	// engine) and its monotonic version (a Mutate bumps it) — NOT by the
	// journal batch count, which aliases across a concurrent Reset (an
	// explicit Compact, or a Swap) and could let a stale snapshot fold over
	// durably-acknowledged batches.
	if d.live != live || d.eng.Load() != eng || eng.Version() != ver {
		os.Remove(tmp)
		return nil
	}
	if err := os.Rename(tmp, snapPath); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := live.journal.Reset(); err != nil {
		return err
	}
	live.broken = false
	d.source = snapPath
	return nil
}

// fileExists reports whether path names an existing regular file.
func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.Mode().IsRegular()
}

// Close releases every dataset's journal and unmaps every snapshot mapping
// — live and retired. Serving must have stopped: no query may still hold an
// engine over a mapped backing. Mount no further datasets after closing;
// in-flight background compactions are waited out.
func (c *Catalog) Close() error {
	c.mu.Lock()
	ds := make([]*Dataset, 0, len(c.datasets))
	for _, d := range c.datasets {
		ds = append(ds, d)
	}
	retired := c.retired
	c.retired = nil
	c.mu.Unlock()
	var errs []string
	for _, d := range ds {
		// Close the batcher first: it flushes everything acknowledged into
		// the queue (flushes take d.mu, so this must precede the lock),
		// then refuses further Submits with commit.ErrClosed.
		d.commit.Close()
		d.mu.Lock()
		live := d.live
		mounted := d.mounted
		d.mounted = nil
		d.mu.Unlock()
		if live != nil {
			live.wg.Wait()
			if err := live.journal.Close(); err != nil {
				errs = append(errs, fmt.Sprintf("%s: %v", d.name, err))
			}
		}
		if err := mounted.Close(); err != nil {
			errs = append(errs, fmt.Sprintf("%s: unmap: %v", d.name, err))
		}
	}
	for _, m := range retired {
		if err := m.Close(); err != nil {
			errs = append(errs, fmt.Sprintf("retired mapping: %v", err))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("catalog: closing: %s", strings.Join(errs, "; "))
	}
	return nil
}
