package catalog

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/cserr"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/query"
	"repro/internal/store"
)

// liveFixture packs a small graph into a snapshot and returns its path plus
// a journal path in the same temp dir.
func liveFixture(t *testing.T) (snapPath, journalPath string) {
	t.Helper()
	dir := t.TempDir()
	b := graph.NewBuilder(12, 1)
	for v := 0; v < 12; v++ {
		b.SetTextAttrs(graph.NodeID(v), fmt.Sprintf("tag%d", v%3))
		b.SetNumAttrs(graph.NodeID(v), float64(v)/12)
	}
	// Two squares plus a path between them.
	for _, e := range [][2]graph.NodeID{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2},
		{6, 7}, {7, 8}, {8, 9}, {9, 6}, {6, 8},
		{3, 5}, {5, 6},
	} {
		b.AddEdge(e[0], e[1])
	}
	g := b.MustBuild()
	eng, err := engine.New(g, engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	snapPath = filepath.Join(dir, "g.snap")
	if _, err := store.AtomicWriteFile(snapPath, eng.WriteSnapshot); err != nil {
		t.Fatal(err)
	}
	return snapPath, filepath.Join(dir, "g.journal")
}

func TestMutateJournalReplay(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	ctx := context.Background()
	req := query.Request{Query: 0, Method: query.MethodStructural, K: 3}.WithDefaults()

	c := New()
	d, replayed, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("replayed %d batches from a fresh journal", replayed)
	}
	// Make node 4 part of a 3-core with the first square.
	res, err := c.Mutate("g", []mutate.Delta{
		mutate.AddEdge(4, 0), mutate.AddEdge(4, 1), mutate.AddEdge(4, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Journaled != 1 || res.Version != 1 {
		t.Fatalf("mutate result %+v", res)
	}
	liveOut, err := d.Engine().Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// A rebooted catalog replays the journal and answers identically.
	c2 := New()
	d2, replayed, err := c2.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if replayed != 1 {
		t.Fatalf("replayed %d batches, want 1", replayed)
	}
	rebootOut, err := d2.Engine().Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(liveOut.Community, rebootOut.Community) || liveOut.Delta != rebootOut.Delta {
		t.Fatalf("replayed state diverges:\nlive   %v δ=%v\nreboot %v δ=%v",
			liveOut.Community, liveOut.Delta, rebootOut.Community, rebootOut.Delta)
	}
	if d2.Engine().Version() != 1 {
		t.Fatalf("reboot version = %d", d2.Engine().Version())
	}
}

func TestCompactFoldsJournal(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	ctx := context.Background()
	req := query.Request{Query: 6, Method: query.MethodStructural, K: 3}.WithDefaults()

	c := New()
	d, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Mutate("g", []mutate.Delta{mutate.AddEdge(10, 6), mutate.AddEdge(10, 7)}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Mutate("g", []mutate.Delta{mutate.AddEdge(10, 8), mutate.SetAttr(10, []string{"hub"}, nil)}); err != nil {
		t.Fatal(err)
	}
	liveOut, err := d.Engine().Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	cres, err := c.Compact("g")
	if err != nil {
		t.Fatal(err)
	}
	if cres.BatchesFolded != 2 || cres.Path != snapPath || cres.Version != 2 {
		t.Fatalf("compact result %+v", cres)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Rebooting from the compacted snapshot: nothing to replay, identical
	// answers (byte-identical outcome for the same request).
	c2 := New()
	d2, replayed, err := c2.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if replayed != 0 {
		t.Fatalf("journal not truncated: %d batches replayed", replayed)
	}
	compactOut, err := d2.Engine().Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(liveOut.Community, compactOut.Community) || liveOut.Delta != compactOut.Delta {
		t.Fatalf("compacted state diverges:\nlive    %v δ=%v\ncompact %v δ=%v",
			liveOut.Community, liveOut.Delta, compactOut.Community, compactOut.Delta)
	}
	// The folded snapshot carries the mutated attributes.
	g := d2.Engine().Graph()
	name := g.Dict().Name(g.TextAttrs(10)[0])
	if name != "hub" {
		t.Fatalf("node 10 attr %q after compaction", name)
	}
	// Compacting an unjournaled dataset errors.
	cat := New()
	if _, err := cat.MountPath("plain", snapPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Compact("plain"); err == nil {
		t.Fatal("compact on unjournaled dataset accepted")
	}
}

func TestAutoCompaction(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	c := New()
	d, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d.SetCompactEvery(2)
	if _, err := c.Mutate("g", []mutate.Delta{mutate.AddEdge(4, 0)}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Mutate("g", []mutate.Delta{mutate.AddEdge(4, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacting {
		t.Fatalf("second batch should trigger compaction: %+v", res)
	}
	if err := c.Close(); err != nil { // waits for the background compactor
		t.Fatal(err)
	}
	j, replayed, err := store.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(replayed) != 0 {
		t.Fatalf("journal holds %d batches after auto-compaction", len(replayed))
	}
}

// TestConcurrentQueryMutateCompact runs queries, journaled mutation batches
// and explicit compactions concurrently; under -race this proves the whole
// live-serving path — atomic engine state, scoped sweeps, journal appends,
// snapshot rewrites — is data-race free.
func TestConcurrentQueryMutateCompact(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	c := New()
	d, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	d.SetCompactEvery(0) // explicit compaction only, so the test controls it

	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				eng := d.Engine()
				q := graph.NodeID((i*7 + w) % eng.Graph().NumNodes())
				req := query.Request{Query: q, Method: query.MethodStructural, K: 1 + i%3}.WithDefaults()
				if _, err := eng.Query(ctx, req); err != nil && !errors.Is(err, cserr.ErrNoCommunity) {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := c.Compact("g"); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	next := graph.NodeID(12)
	for i := 0; i < 20; i++ {
		deltas := []mutate.Delta{
			mutate.AddNode([]string{"n"}, []float64{0.5}),
			mutate.AddEdge(next, graph.NodeID(i%12)),
		}
		next++
		if _, err := c.Mutate("g", deltas); err != nil {
			t.Fatalf("mutate %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if v := d.Engine().Version(); v != 20 {
		t.Fatalf("version = %d, want 20", v)
	}
}

func TestMutateHTTP(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	c := New()
	if _, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewHTTPHandler(c, engine.DefaultConfig()))
	defer srv.Close()

	post := func(path, body string) (*http.Response, string) {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.String()
	}

	// Before: no 3-core around node 4 (degree 0-ish).
	resp, body := post("/search", `{"q":4,"method":"structural","k":3}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-mutation search: %d %s", resp.StatusCode, body)
	}

	resp, body = post("/admin/mutate",
		`{"graph":"g","deltas":[{"op":"add_edge","u":4,"v":0},{"op":"add_edge","u":4,"v":1},{"op":"add_edge","u":4,"v":2}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %d %s", resp.StatusCode, body)
	}
	var mres MutateResult
	if err := json.Unmarshal([]byte(body), &mres); err != nil {
		t.Fatal(err)
	}
	if mres.Applied != 3 || mres.Journaled != 1 {
		t.Fatalf("mutate response %+v", mres)
	}

	// After: the mutation is visible, zero swaps (no hot-swap happened).
	resp, body = post("/search", `{"q":4,"method":"structural","k":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-mutation search: %d %s", resp.StatusCode, body)
	}
	for _, info := range c.Infos() {
		if info.Swaps != 0 || info.Version != 1 || info.JournalBatches != 1 {
			t.Fatalf("info %+v", info)
		}
	}

	resp, body = post("/admin/compact", `{"graph":"g"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: %d %s", resp.StatusCode, body)
	}
	var cres CompactResult
	if err := json.Unmarshal([]byte(body), &cres); err != nil {
		t.Fatal(err)
	}
	if cres.BatchesFolded != 1 {
		t.Fatalf("compact response %+v", cres)
	}

	// Malformed and rejected batches.
	if resp, _ := post("/admin/mutate", `{"graph":"g","deltas":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty deltas: %d", resp.StatusCode)
	}
	if resp, _ := post("/admin/mutate", `{"graph":"g","deltas":[{"op":"add_edge","u":4,"v":4}]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("self-loop: %d", resp.StatusCode)
	}
	if resp, _ := post("/admin/mutate", `{"graph":"nope","deltas":[{"op":"add_edge","u":1,"v":5}]}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: %d", resp.StatusCode)
	}
	if resp, _ := post("/admin/mutate", `{"graph":"g","deltas":[{"op":"warp","u":1}]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown op: %d", resp.StatusCode)
	}
	// A delta with "op" omitted must be rejected, not applied as add_edge.
	if resp, _ := post("/admin/mutate", `{"graph":"g","deltas":[{"u":1,"v":5}]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing op: %d", resp.StatusCode)
	}
}

// TestTextSourceCompactionSurvivesReboot mounts a journaled *text* source,
// compacts (which writes the sidecar path+".snap"), and proves a reboot
// with the same flags serves the compacted state instead of silently
// re-reading the stale text file.
func TestTextSourceCompactionSurvivesReboot(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	// Convert the fixture snapshot into a text-format source.
	snap, err := store.OpenFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	textPath := filepath.Join(filepath.Dir(snapPath), "g.txt")
	if _, err := store.AtomicWriteFile(textPath, func(w io.Writer) error {
		return dataset.WriteGraph(w, snap.Graph)
	}); err != nil {
		t.Fatal(err)
	}

	c := New()
	d, _, err := c.MountPathJournaled("g", textPath, journalPath, engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Mutate("g", []mutate.Delta{mutate.AddEdge(4, 0), mutate.AddEdge(4, 1)}); err != nil {
		t.Fatal(err)
	}
	cres, err := c.Compact("g")
	if err != nil {
		t.Fatal(err)
	}
	if cres.Path != textPath+".snap" {
		t.Fatalf("compacted to %q, want the sidecar next to the text source", cres.Path)
	}
	wantEdges := d.Engine().Graph().NumEdges()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := New()
	d2, replayed, err := c2.MountPathJournaled("g", textPath, journalPath, engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if replayed != 0 {
		t.Fatalf("replayed %d batches after compaction", replayed)
	}
	if got := d2.Engine().Graph().NumEdges(); got != wantEdges {
		t.Fatalf("reboot lost compacted mutations: %d edges, want %d", got, wantEdges)
	}
}

// TestAddNodeKeepsDistVectorsWarm pins the appended-node guarantee: an
// add_node + add_edge batch extends cached distance vectors instead of
// dropping the touched component's.
func TestAddNodeKeepsDistVectorsWarm(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	c := New()
	d, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	// Cache a distance vector in the component the new node will join.
	if _, err := d.Engine().Query(ctx, query.Request{Query: 0, Method: query.MethodSEA, K: 2, Seed: 1}.WithDefaults()); err != nil {
		t.Fatal(err)
	}
	res, err := c.Mutate("g", []mutate.Delta{
		mutate.AddNode([]string{"fresh"}, []float64{0.5}),
		mutate.AddEdge(12, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DistsInvalidated != 0 {
		t.Fatalf("DistsInvalidated = %d, want 0 (new node must not drop the component's vectors)", res.DistsInvalidated)
	}
	if res.DistsExtended != 1 {
		t.Fatalf("DistsExtended = %d, want 1", res.DistsExtended)
	}
}

// TestBodyLimits exercises the MaxBytesReader + trailing-garbage hardening
// across the admin and query decoders.
func TestBodyLimits(t *testing.T) {
	snapPath, journalPath := liveFixture(t)
	c := New()
	if _, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewHTTPHandler(c, engine.DefaultConfig()))
	defer srv.Close()

	huge := `{"graph":"g","deltas":[{"op":"add_node","text":["` +
		strings.Repeat("x", engine.MaxBodyBytes+1024) + `"]}]}`
	for _, path := range []string{"/admin/mutate", "/admin/reload", "/search", "/batch", "/compare"} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body: %d, want 413", path, resp.StatusCode)
		}
	}
	for _, path := range []string{"/admin/mutate", "/admin/compact", "/admin/reload", "/search"} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(`{"q":1} trailing-garbage`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s trailing garbage: %d, want 400", path, resp.StatusCode)
		}
	}
	// Concatenated JSON values are garbage too.
	resp, err := http.Post(srv.URL+"/search", "application/json", strings.NewReader(`{"q":1}{"q":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("concatenated bodies: %d, want 400", resp.StatusCode)
	}
}
