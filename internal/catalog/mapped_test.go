package catalog

// Mapped-serving catalog tests: a v2 aligned snapshot mounts zero-copy, the
// journal replays its deltas as a heap overlay over the read-only mapped
// base, and the served answers are byte-identical to a heap-resident mount
// of the same state. Under -race these pin the mapped pages as read-only in
// practice, not just by contract.

import (
	"context"
	"io"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/engine"
	"repro/internal/mutate"
	"repro/internal/query"
	"repro/internal/store"
)

// mappedFixture packs the liveFixture graph in the layout opt selects.
func mappedFixture(t *testing.T, opt store.PackOptions) (snapPath, journalPath string) {
	t.Helper()
	v1Path, _ := liveFixture(t)
	snap, err := store.OpenFile(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.NewFromSnapshot(snap, engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	snapPath = filepath.Join(dir, "g2.snap")
	if _, err := store.AtomicWriteFile(snapPath, func(w io.Writer) error {
		return eng.WriteSnapshotOpts(w, opt)
	}); err != nil {
		t.Fatal(err)
	}
	return snapPath, filepath.Join(dir, "g2.journal")
}

// mmapExpected mirrors the store package's unix build constraint: on these
// platforms a v2 mount that is not zero-copy is a regression.
func mmapExpected() bool {
	switch runtime.GOOS {
	case "windows", "plan9", "js", "wasip1":
		return false
	}
	return true
}

func TestMappedMountJournalReplay(t *testing.T) {
	for _, layout := range []struct {
		name string
		opt  store.PackOptions
	}{
		{"aligned", store.PackOptions{Align: true}},
		{"compressed", store.PackOptions{Compress: true}},
	} {
		t.Run(layout.name, func(t *testing.T) {
			snapPath, journalPath := mappedFixture(t, layout.opt)
			ctx := context.Background()
			req := query.Request{Query: 0, Method: query.MethodStructural, K: 3}.WithDefaults()
			deltas := []mutate.Delta{
				mutate.AddEdge(4, 0), mutate.AddEdge(4, 1), mutate.AddEdge(4, 2),
			}

			// Heap-resident reference: the same snapshot with mmap disabled.
			ref := New()
			ref.SetMmap(false)
			refDS, _, err := ref.MountPathJournaled("g", snapPath, filepath.Join(t.TempDir(), "ref.journal"), engine.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			for _, info := range ref.Infos() {
				if info.Mapped {
					t.Fatalf("mmap-disabled catalog reports mapped: %+v", info)
				}
			}
			if _, err := ref.Mutate("g", deltas); err != nil {
				t.Fatal(err)
			}
			want, err := refDS.Engine().Query(ctx, req)
			if err != nil {
				t.Fatal(err)
			}

			// Mapped mount: journal replay builds overlays over the read-only
			// mapped base; answers must match the heap reference exactly.
			c := New()
			d, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			for _, info := range c.Infos() {
				if info.Mapped != mmapExpected() {
					t.Fatalf("mapped = %v, platform expects %v (%+v)", info.Mapped, mmapExpected(), info)
				}
				if info.Mapped && info.MappedBytes == 0 {
					t.Fatalf("mapped dataset reports 0 resident bytes: %+v", info)
				}
			}
			if _, err := c.Mutate("g", deltas); err != nil {
				t.Fatal(err)
			}
			got, err := d.Engine().Query(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Community, got.Community) || want.Delta != got.Delta {
				t.Fatalf("mapped mount diverges from heap:\nheap   %v δ=%v\nmapped %v δ=%v",
					want.Community, want.Delta, got.Community, got.Delta)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}

			// Reboot: the journaled batch replays onto a fresh mapping.
			c2 := New()
			d2, replayed, err := c2.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			if replayed != 1 {
				t.Fatalf("replayed %d batches, want 1", replayed)
			}
			reboot, err := d2.Engine().Query(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Community, reboot.Community) || want.Delta != reboot.Delta {
				t.Fatalf("replay over mapped base diverges:\nheap   %v δ=%v\nreboot %v δ=%v",
					want.Community, want.Delta, reboot.Community, reboot.Delta)
			}
		})
	}
}

// TestMappedSwapRetiresMapping hot-swaps a mapped dataset and proves the
// displaced mapping stays valid for in-flight readers until Catalog.Close.
func TestMappedSwapRetiresMapping(t *testing.T) {
	snapPath, _ := mappedFixture(t, store.PackOptions{Align: true})
	c := New()
	d, err := c.MountPath("g", snapPath, engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Hold the pre-swap engine the way an in-flight query would.
	oldEng := d.Engine()

	if _, err := c.SwapPath("g", snapPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	// The displaced engine still answers: its mapping is retired, not closed.
	req := query.Request{Query: 0, Method: query.MethodStructural, K: 2}.WithDefaults()
	if _, err := oldEng.Query(context.Background(), req); err != nil {
		t.Fatalf("displaced mapped engine: %v", err)
	}
	if _, err := d.Engine().Query(context.Background(), req); err != nil {
		t.Fatalf("swapped-in engine: %v", err)
	}
	if err := c.Unmount("g"); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
