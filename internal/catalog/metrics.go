package catalog

// Prometheus text-format exposition of the catalog's serving state: the
// engine.Stats counters and cache occupancy per dataset, the
// shape/journal/replication gauges of Info, and the per-stage latency
// histograms the engines record (internal/obs) — queries by stage and
// outcome, mutations by stage — labelled by dataset so one scrape covers
// the whole catalog.

import (
	"fmt"
	"io"

	"repro/internal/commit"
	"repro/internal/engine"
	"repro/internal/obs"
)

// metricsContentType is the Content-Type of the /metrics exposition.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// promFamily is one metric family: name, type, help, and a value per
// dataset.
type promFamily struct {
	name  string
	typ   string // "counter" or "gauge"
	help  string
	value func(Info) float64
}

var promFamilies = []promFamily{
	{"sea_queries_total", "counter", "Search/batch requests accepted.",
		func(i Info) float64 { return float64(i.Stats.Queries) }},
	{"sea_search_runs_total", "counter", "Searches actually executed (cache and admission misses).",
		func(i Info) float64 { return float64(i.Stats.SearchRuns) }},
	{"sea_coalesced_total", "counter", "Requests that joined an identical in-flight query.",
		func(i Info) float64 { return float64(i.Stats.Coalesced) }},
	{"sea_index_rejects_total", "counter", "Requests rejected by the shared admission index without a search.",
		func(i Info) float64 { return float64(i.Stats.IndexRejects) }},
	{"sea_errors_total", "counter", "Requests that returned an error.",
		func(i Info) float64 { return float64(i.Stats.Errors) }},
	{"sea_shed_total", "counter", "Requests shed by MaxInFlight admission control (429).",
		func(i Info) float64 { return float64(i.Stats.Shed) }},
	{"sea_result_cache_hits_total", "counter", "Result cache hits.",
		func(i Info) float64 { return float64(i.Stats.ResultHits) }},
	{"sea_result_cache_misses_total", "counter", "Result cache misses.",
		func(i Info) float64 { return float64(i.Stats.ResultMisses) }},
	{"sea_result_cache_evictions_total", "counter", "Result cache evictions.",
		func(i Info) float64 { return float64(i.Stats.ResultEvictions) }},
	{"sea_result_cache_entries", "gauge", "Result cache occupancy.",
		func(i Info) float64 { return float64(i.Stats.ResultEntries) }},
	{"sea_dist_cache_hits_total", "counter", "Distance-vector cache hits.",
		func(i Info) float64 { return float64(i.Stats.DistHits) }},
	{"sea_dist_cache_misses_total", "counter", "Distance-vector cache misses.",
		func(i Info) float64 { return float64(i.Stats.DistMisses) }},
	{"sea_dist_cache_evictions_total", "counter", "Distance-vector cache evictions.",
		func(i Info) float64 { return float64(i.Stats.DistEvictions) }},
	{"sea_dist_cache_entries", "gauge", "Distance-vector cache occupancy.",
		func(i Info) float64 { return float64(i.Stats.DistEntries) }},
	{"sea_mutations_total", "counter", "Applied mutation batches.",
		func(i Info) float64 { return float64(i.Stats.Mutations) }},
	{"sea_deltas_applied_total", "counter", "Applied mutation deltas.",
		func(i Info) float64 { return float64(i.Stats.DeltasApplied) }},
	{"sea_result_invalidations_total", "counter", "Result cache entries dropped by scoped invalidation.",
		func(i Info) float64 { return float64(i.Stats.ResultInvalidations) }},
	{"sea_dist_invalidations_total", "counter", "Distance vectors dropped by scoped invalidation.",
		func(i Info) float64 { return float64(i.Stats.DistInvalidations) }},
	{"sea_dist_extensions_total", "counter", "Distance vectors extended in place for appended nodes.",
		func(i Info) float64 { return float64(i.Stats.DistExtensions) }},
	{"sea_graph_version", "gauge", "Graph generation (mutation batches applied since mount); the replication cursor.",
		func(i Info) float64 { return float64(i.Version) }},
	{"sea_graph_nodes", "gauge", "Nodes in the served graph.",
		func(i Info) float64 { return float64(i.Nodes) }},
	{"sea_graph_edges", "gauge", "Edges in the served graph.",
		func(i Info) float64 { return float64(i.Edges) }},
	{"sea_swaps_total", "counter", "Hot-swaps (lineage changes) since mount.",
		func(i Info) float64 { return float64(i.Swaps) }},
	{"sea_journal_seq", "gauge", "Last written journal sequence number (0 when unjournaled or freshly compacted).",
		func(i Info) float64 { return float64(i.JournalSeq) }},
	{"sea_journal_batches", "gauge", "Journal batches awaiting compaction.",
		func(i Info) float64 { return float64(i.JournalBatches) }},
	{"sea_mapped_bytes", "gauge", "Size of the zero-copy snapshot mapping backing the dataset (0 for heap mounts).",
		func(i Info) float64 { return float64(i.MappedBytes) }},
	{"sea_commit_submitted_total", "counter", "Delta groups accepted onto the group-commit queue.",
		func(i Info) float64 { return float64(i.Commit.Submitted) }},
	{"sea_commit_shed_total", "counter", "Delta groups shed by commit-queue backpressure (429).",
		func(i Info) float64 { return float64(i.Commit.Shed) }},
	{"sea_commit_flushes_total", "counter", "Group-commit flushes (one journal record and one engine generation each).",
		func(i Info) float64 { return float64(i.Commit.Flushes) }},
	{"sea_commit_failures_total", "counter", "Delta groups whose commit flush failed.",
		func(i Info) float64 { return float64(i.Commit.Failures) }},
	{"sea_commit_queue_depth", "gauge", "Instantaneous commit-queue occupancy.",
		func(i Info) float64 { return float64(i.Commit.QueueDepth) }},
}

// commitHistFamilies are the group-commit batcher's distributions: the
// batch-size histogram is unit-less (groups per flush, scale 1); the
// queue-wait and flush histograms observe nanoseconds and expose seconds.
var commitHistFamilies = []struct {
	name  string
	help  string
	scale float64
	snap  func(commit.Stats) obs.Snapshot
}{
	{"sea_commit_batch_size", "Delta groups coalesced per group-commit flush.", 1,
		func(s commit.Stats) obs.Snapshot { return s.BatchSize }},
	{"sea_commit_queue_wait_seconds", "Wait from commit-queue enqueue to flush start.", 1e-9,
		func(s commit.Stats) obs.Snapshot { return s.QueueWait }},
	{"sea_commit_flush_seconds", "Whole group-commit flush: batched apply, journal append, result fan-out.", 1e-9,
		func(s commit.Stats) obs.Snapshot { return s.FlushLat }},
}

// histFamily is one histogram metric family: name, help, and the labelled
// stage snapshots it exposes per dataset. Observations are nanoseconds;
// exposition scales them to the conventional seconds.
type histFamily struct {
	name   string
	help   string
	series func(engine.LatencyStats) []histSeries
}

type histSeries struct {
	label string // the value of the family's discriminating label
	snap  obs.Snapshot
}

var histFamilies = []struct {
	histFamily
	label string // discriminating label name ("stage" or "outcome")
}{
	{histFamily{"sea_query_stage_latency_seconds",
		"Per-stage read-path latency: shared-index admission, distance-vector fetch/compute, search execution.",
		func(l engine.LatencyStats) []histSeries {
			return []histSeries{
				{"admission", l.Admission},
				{"distance", l.Distance},
				{"search", l.Search},
			}
		}}, "stage"},
	{histFamily{"sea_query_latency_seconds",
		"Whole-request latency by outcome: result-cache hit, computed miss, coalesced join, admission shed.",
		func(l engine.LatencyStats) []histSeries {
			return []histSeries{
				{"hit", l.TotalHit},
				{"miss", l.TotalMiss},
				{"coalesced", l.TotalCoalesced},
				{"shed", l.TotalShed},
			}
		}}, "outcome"},
	{histFamily{"sea_mutation_stage_latency_seconds",
		"Per-stage write-path latency: delta apply (fold+materialize+index), journal append (fsync included), scoped cache invalidation.",
		func(l engine.LatencyStats) []histSeries {
			return []histSeries{
				{"apply", l.MutateApply},
				{"journal_append", l.MutateJournal},
				{"invalidate", l.MutateInvalidate},
			}
		}}, "stage"},
}

// WriteMetrics renders the datasets' serving counters and latency
// histograms in the Prometheus text exposition format (version 0.0.4), one
// sample (or histogram labelset) per dataset per family with the dataset
// name as the graph label.
func WriteMetrics(w io.Writer, infos []Info) error {
	for _, f := range promFamilies {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, info := range infos {
			if _, err := fmt.Fprintf(w, "%s{graph=\"%s\"} %g\n",
				f.name, obs.EscapeLabel(info.Name), f.value(info)); err != nil {
				return err
			}
		}
	}
	for _, f := range histFamilies {
		obs.WriteHistogramHeader(w, f.name, f.help)
		for _, info := range infos {
			for _, s := range f.series(info.Latency) {
				obs.WriteHistogram(w, f.name, []obs.Label{
					{Name: "graph", Value: info.Name},
					{Name: f.label, Value: s.label},
				}, s.snap, 1e-9)
			}
		}
	}
	for _, f := range commitHistFamilies {
		obs.WriteHistogramHeader(w, f.name, f.help)
		for _, info := range infos {
			obs.WriteHistogram(w, f.name, []obs.Label{
				{Name: "graph", Value: info.Name},
			}, f.snap(info.Commit), f.scale)
		}
	}
	return nil
}
