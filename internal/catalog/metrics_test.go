package catalog

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/query"
)

// TestMetricsExpositionStrict runs the node's full /metrics output — counter
// families, gauges and the per-stage latency histograms, over a dataset name
// that exercises label escaping — through the parser-strictness checker. The
// seed handlers drifted from the exposition format (bare series without
// HELP/TYPE, %q-escaped labels); this test pins the repaired output.
func TestMetricsExpositionStrict(t *testing.T) {
	c := New()
	t.Cleanup(func() { c.Close() })
	// A name with a backslash and a quote: %q-style escaping would emit
	// sequences strict parsers reject; the exposition escaping must handle
	// exactly these three specials (\, ", newline).
	name := `fb\"prod"`
	eng := makeEngine(t, "facebook", 0.2)
	if _, err := c.Mount(name, eng, engine.DefaultConfig(), "test"); err != nil {
		t.Fatal(err)
	}
	// Populate the read-path histograms: one computed miss, one cache hit.
	req := query.Request{Query: 0, Method: query.MethodStructural, K: 2}
	for i := 0; i < 2; i++ {
		if _, _, err := eng.QueryWithMetrics(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(NewHTTPHandler(c, engine.DefaultConfig()))
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if err := obs.CheckExposition(body); err != nil {
		t.Fatalf("node /metrics fails strict parsing: %v\nbody:\n%s", err, body)
	}
	// The histogram families the tentpole adds must be present with full
	// bucket/sum/count structure and the escaped dataset label.
	for _, want := range []string{
		"# TYPE sea_query_latency_seconds histogram",
		"# TYPE sea_query_stage_latency_seconds histogram",
		"# TYPE sea_mutation_stage_latency_seconds histogram",
		`sea_query_latency_seconds_bucket{graph="fb\\\"prod\"",outcome="miss",le="+Inf"} 1`,
		`sea_query_latency_seconds_sum{graph="fb\\\"prod\"",outcome="miss"}`,
		`sea_query_latency_seconds_count{graph="fb\\\"prod\"",outcome="hit"} 1`,
		`sea_query_stage_latency_seconds_bucket{graph="fb\\\"prod\"",stage="search",le=`,
		`sea_mutation_stage_latency_seconds_count{graph="fb\\\"prod\"",stage="apply"} 0`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics lacks %q in:\n%s", want, body)
		}
	}
}
