package catalog

// Replication hooks: the primary-side primitives of journal-shipping
// replication (internal/cluster layers the HTTP protocol and the follower
// loop on top of them). A follower bootstraps by fetching a full snapshot of
// the dataset's current serving state (ReplicateSnapshot) together with the
// (version, lineage) cursor it captured, then stays caught up by repeatedly
// asking for the journal batches past its cursor (JournalSince) and folding
// them through Engine.Apply — the scoped cache invalidation of the mutation
// path keeps the replica's caches warm across the stream.
//
// The replication cursor is the engine's graph generation (version), not the
// journal's own sequence number: a compaction resets the journal but never
// the version, so the cursor stays monotonic for as long as the dataset's
// lineage lasts. The journal's numbering is rebased against it — the journal
// record with sequence s describes the batch that produced version base+s,
// where base = version − journal.Seq() — and a cursor that falls outside the
// journal's [base, version] window (compacted past, ahead of the primary, or
// from another lineage entirely) answers ErrResync: the follower's only move
// is a fresh snapshot bootstrap. A Swap starts a new lineage (the swaps
// counter is the lineage token), since journaled deltas of the old lineage
// do not describe the new one.

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/mutate"
	"repro/internal/store"
)

// ErrResync reports a replication cursor the primary cannot serve a journal
// tail for: the journal was compacted past it, the cursor is ahead of the
// primary (a primary restart or a stale follower), the dataset's lineage
// changed (Swap), or the journal has a durability hole. The follower must
// bootstrap a fresh snapshot; no journal tail can bridge the gap.
var ErrResync = errors.New("catalog: replication cursor unserviceable; bootstrap a fresh snapshot")

// ReplicationInfo is the replication-relevant state of one mounted dataset:
// the cursor a snapshot fetched now would carry, and the journal window a
// tail can be served from.
type ReplicationInfo struct {
	Graph string `json:"graph"`
	// Version is the engine's graph generation — the replication cursor.
	Version uint64 `json:"version"`
	// Lineage is the dataset's swap count; a journal tail is only valid
	// within one lineage.
	Lineage uint64 `json:"lineage"`
	// Journaled reports whether the dataset mounted with a write-ahead
	// journal; an unjournaled dataset can only be replicated by snapshot.
	Journaled bool `json:"journaled"`
	// JournalSeq and JournalBatches describe the journal since its last
	// compaction; Version − JournalSeq is the oldest cursor a tail serves.
	JournalSeq     uint64 `json:"journal_seq"`
	JournalBatches int    `json:"journal_batches"`
	// Broken marks a journal with a durability hole (an applied batch whose
	// append failed); tails are refused until a compaction heals it.
	Broken bool `json:"broken,omitempty"`
}

// ReplicationInfo describes the named dataset's replication state.
func (c *Catalog) ReplicationInfo(name string) (ReplicationInfo, error) {
	d, err := c.dataset(name)
	if err != nil {
		return ReplicationInfo{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.replicationInfoLocked(), nil
}

// ReplicationInfos describes every mounted dataset's replication state,
// sorted by name.
func (c *Catalog) ReplicationInfos() []ReplicationInfo {
	out := make([]ReplicationInfo, 0, c.Len())
	for _, name := range c.Names() {
		if info, err := c.ReplicationInfo(name); err == nil {
			out = append(out, info)
		}
	}
	return out
}

// replicationInfoLocked builds the dataset's ReplicationInfo; the caller
// holds d.mu.
func (d *Dataset) replicationInfoLocked() ReplicationInfo {
	info := ReplicationInfo{
		Graph:   d.name,
		Version: d.eng.Load().Version(),
		Lineage: d.swaps,
	}
	if d.live != nil {
		info.Journaled = true
		info.JournalSeq = d.live.journal.Seq()
		info.JournalBatches = d.live.journal.Batches()
		info.Broken = d.live.broken
	}
	return info
}

// ReplicateSnapshot streams the named dataset's current serving state to w
// in the store snapshot format and returns the (version, lineage) cursor
// the stream captured. The engine and lineage are resolved together under
// the dataset lock, but the write itself streams unlocked — mutations keep
// flowing while a bootstrap is on the wire, and the returned version is the
// generation actually written, whatever lands meanwhile.
func (c *Catalog) ReplicateSnapshot(name string, w io.Writer) (version, lineage uint64, err error) {
	d, err := c.dataset(name)
	if err != nil {
		return 0, 0, err
	}
	d.mu.Lock()
	eng := d.eng.Load()
	lineage = d.swaps
	d.mu.Unlock()
	version, err = eng.WriteSnapshotAt(w)
	return version, lineage, err
}

// VersionedBatch is one journal batch rebased onto the replication cursor:
// applying Deltas to a replica at Version−1 brings it to Version.
type VersionedBatch struct {
	Version uint64         `json:"version"`
	Deltas  []mutate.Delta `json:"deltas"`
}

// JournalSince returns the journal batches that move a replica of the named
// dataset from cursor from (exclusive) toward the current version, plus the
// current version itself. lineage must match the dataset's; an empty slice
// with a nil error means the replica is caught up. Errors wrapping ErrResync
// mean no tail can serve the cursor and the follower must bootstrap a fresh
// snapshot. The journal is read under the dataset lock, so a tail is always
// consistent with the (version, lineage) it reports.
func (c *Catalog) JournalSince(name string, lineage, from uint64) ([]VersionedBatch, uint64, error) {
	d, err := c.dataset(name)
	if err != nil {
		return nil, 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := d.eng.Load().Version()
	if lineage != d.swaps {
		return nil, cur, fmt.Errorf("%w: lineage %d, dataset %q is on lineage %d",
			ErrResync, lineage, d.name, d.swaps)
	}
	if from == cur {
		return nil, cur, nil // caught up
	}
	if from > cur {
		return nil, cur, fmt.Errorf("%w: cursor %d is ahead of version %d (primary restarted?)",
			ErrResync, from, cur)
	}
	if d.live == nil {
		return nil, cur, fmt.Errorf("%w: dataset %q has no journal to tail", ErrResync, d.name)
	}
	if d.live.broken {
		return nil, cur, fmt.Errorf("%w: journal for %q has a durability hole; compact to heal it",
			ErrResync, d.name)
	}
	seq := d.live.journal.Seq()
	base := cur - seq // version the journal's numbering is rebased at
	if from < base {
		return nil, cur, fmt.Errorf("%w: cursor %d precedes the compacted journal base %d",
			ErrResync, from, base)
	}
	batches, err := store.TailJournal(d.live.journal.Path(), from-base)
	if err != nil {
		return nil, cur, err
	}
	out := make([]VersionedBatch, len(batches))
	for i, b := range batches {
		out[i] = VersionedBatch{Version: base + b.Seq, Deltas: b.Deltas}
	}
	return out, cur, nil
}
