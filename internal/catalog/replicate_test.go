package catalog

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/store"
)

// replicatedFixture mounts the live fixture journaled as "g" and applies n
// mutation batches (one edge each, all distinct).
func replicatedFixture(t *testing.T, n int) *Catalog {
	t.Helper()
	snapPath, journalPath := liveFixture(t)
	c := New()
	t.Cleanup(func() { c.Close() })
	if _, _, err := c.MountPathJournaled("g", snapPath, journalPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := c.Mutate("g", []mutate.Delta{mutate.AddEdge(0, graph.NodeID(4+i))}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestReplicateSnapshotRoundtrip(t *testing.T) {
	c := replicatedFixture(t, 2)
	var buf bytes.Buffer
	version, lineage, err := c.ReplicateSnapshot("g", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 || lineage != 0 {
		t.Fatalf("cursor = (v=%d, lin=%d), want (2, 0)", version, lineage)
	}
	snap, err := store.Open(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("replicated snapshot does not open: %v", err)
	}
	src, err := c.Resolve("g")
	if err != nil {
		t.Fatal(err)
	}
	g := src.Graph()
	if snap.Graph.NumNodes() != g.NumNodes() || snap.Graph.NumEdges() != g.NumEdges() {
		t.Fatalf("replicated shape %d/%d, primary %d/%d",
			snap.Graph.NumNodes(), snap.Graph.NumEdges(), g.NumNodes(), g.NumEdges())
	}
}

func TestJournalSinceWindows(t *testing.T) {
	c := replicatedFixture(t, 3)

	// Full tail from zero: every batch, rebased 1..3.
	batches, cur, err := c.JournalSince("g", 0, 0)
	if err != nil || cur != 3 || len(batches) != 3 {
		t.Fatalf("full tail: %d batches, cur=%d, err=%v", len(batches), cur, err)
	}
	for i, b := range batches {
		if b.Version != uint64(i+1) || len(b.Deltas) != 1 {
			t.Fatalf("batch %d: version=%d deltas=%d", i, b.Version, len(b.Deltas))
		}
	}

	// Mid-cursor tail.
	batches, _, err = c.JournalSince("g", 0, 1)
	if err != nil || len(batches) != 2 || batches[0].Version != 2 {
		t.Fatalf("tail from 1: %d batches, first=%v, err=%v", len(batches), batches, err)
	}

	// Caught up: empty, nil error.
	if batches, _, err = c.JournalSince("g", 0, 3); err != nil || len(batches) != 0 {
		t.Fatalf("caught-up tail: %d batches, err=%v", len(batches), err)
	}

	// Ahead of the primary and wrong lineage both demand a resync.
	if _, _, err = c.JournalSince("g", 0, 4); !errors.Is(err, ErrResync) {
		t.Fatalf("cursor ahead: %v, want ErrResync", err)
	}
	if _, _, err = c.JournalSince("g", 7, 2); !errors.Is(err, ErrResync) {
		t.Fatalf("wrong lineage: %v, want ErrResync", err)
	}
}

func TestJournalSinceAfterCompaction(t *testing.T) {
	c := replicatedFixture(t, 3)
	if _, err := c.Compact("g"); err != nil {
		t.Fatal(err)
	}
	// The journal is empty now; only the current cursor is servable.
	if batches, cur, err := c.JournalSince("g", 0, 3); err != nil || cur != 3 || len(batches) != 0 {
		t.Fatalf("post-compact caught-up: %d batches, cur=%d, err=%v", len(batches), cur, err)
	}
	if _, _, err := c.JournalSince("g", 0, 2); !errors.Is(err, ErrResync) {
		t.Fatalf("cursor before compacted base: %v, want ErrResync", err)
	}
	// New mutations rebase onto the compacted journal: version 4 is journal
	// seq 1, and a cursor at the compaction point tails it seamlessly.
	if _, err := c.Mutate("g", []mutate.Delta{mutate.AddEdge(1, 8)}); err != nil {
		t.Fatal(err)
	}
	batches, cur, err := c.JournalSince("g", 0, 3)
	if err != nil || cur != 4 || len(batches) != 1 || batches[0].Version != 4 {
		t.Fatalf("post-compact tail: %+v, cur=%d, err=%v", batches, cur, err)
	}
}

func TestJournalSinceUnjournaled(t *testing.T) {
	snapPath, _ := liveFixture(t)
	c := New()
	defer c.Close()
	if _, err := c.MountPath("g", snapPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Mutate("g", []mutate.Delta{mutate.AddEdge(0, 5)}); err != nil {
		t.Fatal(err)
	}
	info, err := c.ReplicationInfo("g")
	if err != nil || info.Journaled {
		t.Fatalf("unjournaled dataset reports Journaled=%v, err=%v", info.Journaled, err)
	}
	if _, _, err := c.JournalSince("g", 0, 0); !errors.Is(err, ErrResync) {
		t.Fatalf("unjournaled tail: %v, want ErrResync", err)
	}
	// Snapshot replication still works — it is how such a dataset ships.
	if v, _, err := c.ReplicateSnapshot("g", io.Discard); err != nil || v != 1 {
		t.Fatalf("unjournaled snapshot: v=%d, err=%v", v, err)
	}
}

func TestSwapStartsNewLineage(t *testing.T) {
	c := replicatedFixture(t, 2)
	snapPath, _ := liveFixture(t)
	if _, err := c.SwapPath("g", snapPath, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	info, err := c.ReplicationInfo("g")
	if err != nil {
		t.Fatal(err)
	}
	if info.Lineage != 1 || info.JournalSeq != 0 {
		t.Fatalf("post-swap: lineage=%d journalSeq=%d, want 1/0", info.Lineage, info.JournalSeq)
	}
	// A cursor from the old lineage answers resync, whatever its position.
	if _, _, err := c.JournalSince("g", 0, 0); !errors.Is(err, ErrResync) {
		t.Fatalf("old-lineage cursor: %v, want ErrResync", err)
	}
}

// TestReplicationHTTPSurface drives the replication endpoints end to end
// over the catalog handler: snapshot fetch with cursor headers, journal
// tail, 410 on an unserviceable cursor, and the enriched /stats.
func TestReplicationHTTPSurface(t *testing.T) {
	c := replicatedFixture(t, 2)
	ts := httptest.NewServer(NewHTTPHandler(c, engine.DefaultConfig()))
	defer ts.Close()

	resp, err := http.Get(ts.URL + ReplicatePath + "?graph=g")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replicate: %d %s", resp.StatusCode, body)
	}
	if g, v, l := resp.Header.Get(HeaderGraph), resp.Header.Get(HeaderVersion), resp.Header.Get(HeaderLineage); g != "g" || v != "2" || l != "0" {
		t.Fatalf("replicate headers: graph=%q version=%q lineage=%q", g, v, l)
	}
	if _, err := store.Open(bytes.NewReader(body)); err != nil {
		t.Fatalf("replicate body is not a snapshot: %v", err)
	}

	resp, err = http.Get(ts.URL + JournalPath + "?graph=g&lineage=0&from=1")
	if err != nil {
		t.Fatal(err)
	}
	tail, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("journal: %d %s", resp.StatusCode, tail)
	}
	for _, want := range []string{`"version":2`, `"batches":[{"version":2`} {
		if !strings.Contains(string(tail), want) {
			t.Fatalf("journal body %s lacks %s", tail, want)
		}
	}

	resp, err = http.Get(ts.URL + JournalPath + "?graph=g&lineage=9&from=0")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("unserviceable cursor: %d, want 410", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/stats?graph=g")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{`"graph":"g"`, `"journal_seq":2`, `"journal_batches":2`, `"lineage":0`} {
		if !strings.Contains(string(stats), want) {
			t.Fatalf("/stats body %s lacks %s", stats, want)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	c := replicatedFixture(t, 1)
	ts := httptest.NewServer(NewHTTPHandler(c, engine.DefaultConfig()))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metricsContentType {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE sea_queries_total counter",
		`sea_graph_version{graph="g"} 1`,
		`sea_journal_seq{graph="g"} 1`,
		`sea_mutations_total{graph="g"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics lacks %q in:\n%s", want, body)
		}
	}
}
