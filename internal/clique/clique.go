// Package clique implements the k-clique community model, the most cohesive
// (and most expensive) end of the paper's §II structure-cohesiveness ranking
// k-core ⪯ k-truss ⪯ k-clique. A k-clique community is the classic clique
// percolation community: the union of k-cliques reachable from one another
// through (k−1)-node overlaps.
//
// The package provides maximal clique enumeration (Bron–Kerbosch with
// pivoting) and the k-clique community of a query node, both bounded by an
// explicit work budget because clique enumeration is exponential in the
// worst case.
package clique

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/kcore"
)

// ErrBudgetExceeded is returned when enumeration hits its clique budget.
var ErrBudgetExceeded = errors.New("clique: enumeration budget exceeded")

// MaximalCliques enumerates the maximal cliques of g with at least minSize
// nodes using Bron–Kerbosch with pivoting, stopping after maxCliques
// results (0 means 100000).
func MaximalCliques(s graph.Store, minSize, maxCliques int) ([][]graph.NodeID, error) {
	if maxCliques <= 0 {
		maxCliques = 100000
	}
	// The pivoted recursion holds aliased neighbor lists across recursive
	// calls, so it runs on a heap CSR; non-heap backings are materialized
	// once up front (clique enumeration dwarfs the copy).
	g := graph.CopyStore(s)
	n := g.NumNodes()
	var out [][]graph.NodeID
	var overBudget bool

	adjSet := func(v graph.NodeID) []graph.NodeID { return g.Neighbors(v) }
	var bk func(r, p, x []graph.NodeID)
	bk = func(r, p, x []graph.NodeID) {
		if overBudget {
			return
		}
		if len(p) == 0 && len(x) == 0 {
			if len(r) >= minSize {
				out = append(out, append([]graph.NodeID(nil), r...))
				if len(out) >= maxCliques {
					overBudget = true
				}
			}
			return
		}
		// Pivot: the vertex of p ∪ x with most neighbors in p.
		var pivot graph.NodeID = -1
		best := -1
		for _, cand := range [2][]graph.NodeID{p, x} {
			for _, u := range cand {
				cnt := countIntersect(adjSet(u), p)
				if cnt > best {
					best = cnt
					pivot = u
				}
			}
		}
		pivotAdj := adjSet(pivot)
		for i := 0; i < len(p); i++ {
			v := p[i]
			if containsSorted(pivotAdj, v) {
				continue
			}
			nv := adjSet(v)
			// Copy r: sibling recursions must not share its backing array.
			rr := make([]graph.NodeID, len(r)+1)
			copy(rr, r)
			rr[len(r)] = v
			bk(rr, intersectSorted(p, nv), intersectSorted(x, nv))
			// Move v from p to x.
			p = append(p[:i], p[i+1:]...)
			i--
			x = insertSorted(x, v)
		}
	}
	all := make([]graph.NodeID, n)
	for v := 0; v < n; v++ {
		all[v] = graph.NodeID(v)
	}
	bk(nil, all, nil)
	if overBudget {
		return out, ErrBudgetExceeded
	}
	return out, nil
}

// Community returns the k-clique (percolation) community of q: the union of
// all k-cliques connected to a k-clique containing q through chains of
// (k−1)-node overlaps. Returns nil when q is in no k-clique. maxCliques
// bounds the enumeration (0 means 200000).
func Community(g graph.Store, q graph.NodeID, k int, maxCliques int) ([]graph.NodeID, error) {
	if k < 2 {
		return nil, fmt.Errorf("clique: k must be ≥ 2, got %d", k)
	}
	if maxCliques <= 0 {
		maxCliques = 200000
	}
	// k-clique members have coreness ≥ k−1 and the community is connected,
	// so restrict enumeration to the maximal connected (k−1)-core of q.
	region := kcore.MaximalConnectedKCore(g, q, k-1)
	if region == nil {
		return nil, nil
	}
	sub, orig := graph.InducedSubgraphOf(g, region)
	var subQ graph.NodeID = -1
	for i, v := range orig {
		if v == q {
			subQ = graph.NodeID(i)
		}
	}

	cliques, err := enumerateKCliques(sub, k, maxCliques)
	if err != nil {
		return nil, err
	}
	if len(cliques) == 0 {
		return nil, nil
	}

	// Union-find over cliques; two cliques join when they share k−1 nodes.
	// Index each clique by all its (k−1)-subsets.
	parent := make([]int, len(cliques))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(a int) int {
		for parent[a] != a {
			parent[a] = parent[parent[a]]
			a = parent[a]
		}
		return a
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	subsets := map[string]int{}
	key := make([]graph.NodeID, 0, k-1)
	for ci, c := range cliques {
		for drop := 0; drop < len(c); drop++ {
			key = key[:0]
			for i, v := range c {
				if i != drop {
					key = append(key, v)
				}
			}
			s := subsetKey(key)
			if prev, ok := subsets[s]; ok {
				union(ci, prev)
			} else {
				subsets[s] = ci
			}
		}
	}

	// The community component: any clique containing q.
	root := -1
	for ci, c := range cliques {
		if containsSorted(c, subQ) {
			root = find(ci)
			break
		}
	}
	if root < 0 {
		return nil, nil
	}
	memberSet := map[graph.NodeID]bool{}
	for ci, c := range cliques {
		if find(ci) == root {
			for _, v := range c {
				memberSet[v] = true
			}
		}
	}
	out := make([]graph.NodeID, 0, len(memberSet))
	for v := range memberSet {
		out = append(out, orig[v])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// enumerateKCliques lists every clique of exactly k nodes (sorted ascending)
// by ordered DFS extension.
func enumerateKCliques(g *graph.Graph, k int, budget int) ([][]graph.NodeID, error) {
	var out [][]graph.NodeID
	cur := make([]graph.NodeID, 0, k)
	var over bool
	var extend func(cands []graph.NodeID)
	extend = func(cands []graph.NodeID) {
		if over {
			return
		}
		if len(cur) == k {
			out = append(out, append([]graph.NodeID(nil), cur...))
			if len(out) >= budget {
				over = true
			}
			return
		}
		for i, v := range cands {
			cur = append(cur, v)
			// Candidates must follow v and be adjacent to it.
			next := intersectSorted(cands[i+1:], g.Neighbors(v))
			if len(cur)+len(next) >= k {
				extend(next)
			}
			cur = cur[:len(cur)-1]
			if over {
				return
			}
		}
	}
	all := make([]graph.NodeID, g.NumNodes())
	for v := range all {
		all[v] = graph.NodeID(v)
	}
	extend(all)
	if over {
		return out, ErrBudgetExceeded
	}
	return out, nil
}

func subsetKey(ids []graph.NodeID) string {
	b := make([]byte, 0, len(ids)*4)
	for _, v := range ids {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

func countIntersect(a, b []graph.NodeID) int {
	i, j, cnt := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			cnt++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return cnt
}

func intersectSorted(a, b []graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

func containsSorted(s []graph.NodeID, v graph.NodeID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

func insertSorted(s []graph.NodeID, v graph.NodeID) []graph.NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
