package clique

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func buildGraph(n int, edges [][2]int) *graph.Graph {
	b := graph.NewBuilder(n, 0)
	for _, e := range edges {
		b.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]))
	}
	return b.MustBuild()
}

func kn(n int) *graph.Graph {
	b := graph.NewBuilder(n, 0)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	return b.MustBuild()
}

func TestMaximalCliquesKn(t *testing.T) {
	for n := 3; n <= 6; n++ {
		g := kn(n)
		cliques, err := MaximalCliques(g, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(cliques) != 1 || len(cliques[0]) != n {
			t.Errorf("K%d: cliques = %v", n, cliques)
		}
	}
}

func TestMaximalCliquesTwoTriangles(t *testing.T) {
	// Two triangles sharing an edge form two maximal triangles.
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 3}})
	cliques, err := MaximalCliques(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cliques) != 2 {
		t.Fatalf("cliques = %v, want 2 triangles", cliques)
	}
	for _, c := range cliques {
		if len(c) != 3 {
			t.Errorf("clique %v is not a triangle", c)
		}
	}
}

func TestMaximalCliquesMinSize(t *testing.T) {
	g := buildGraph(5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}})
	cliques, err := MaximalCliques(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cliques) != 1 {
		t.Errorf("cliques = %v, want only the triangle", cliques)
	}
}

func TestMaximalCliquesBudget(t *testing.T) {
	// A graph with many maximal cliques: a complete tripartite-ish star of
	// triangles around node 0.
	edges := [][2]int{}
	n := 21
	for i := 1; i+1 < n; i += 2 {
		edges = append(edges, [2]int{0, i}, [2]int{0, i + 1}, [2]int{i, i + 1})
	}
	g := buildGraph(n, edges)
	cliques, err := MaximalCliques(g, 3, 3)
	if err != ErrBudgetExceeded {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if len(cliques) != 3 {
		t.Errorf("returned %d cliques, want the 3 found before the budget", len(cliques))
	}
}

func TestCommunityPercolation(t *testing.T) {
	// Two K4s sharing a triangle (3 nodes): for k=4 they percolate (overlap
	// k−1=3), so the community is all 5 nodes.
	g := buildGraph(5, [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, // K4 on 0..3
		{1, 4}, {2, 4}, {3, 4}, // K4 on 1,2,3,4
	})
	members, err := Community(g, 0, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 5 {
		t.Fatalf("community = %v, want all 5 nodes", members)
	}
}

func TestCommunityNoPercolationAcrossSmallOverlap(t *testing.T) {
	// Two triangles sharing one node: for k=3 the overlap is 1 < k−1=2, so
	// the community of q=0 is only its own triangle.
	g := buildGraph(5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}})
	members, err := Community(g, 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.NodeID{0, 1, 2}
	if len(members) != 3 {
		t.Fatalf("community = %v, want %v", members, want)
	}
	for i := range want {
		if members[i] != want[i] {
			t.Fatalf("community = %v, want %v", members, want)
		}
	}
}

func TestCommunityEdgeOverlapPercolates(t *testing.T) {
	// Two triangles sharing an edge percolate at k=3 (overlap 2 = k−1).
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 3}})
	members, err := Community(g, 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 4 {
		t.Fatalf("community = %v, want all 4 nodes", members)
	}
}

func TestCommunityNone(t *testing.T) {
	g := buildGraph(3, [][2]int{{0, 1}, {1, 2}})
	members, err := Community(g, 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if members != nil {
		t.Errorf("community = %v, want nil (no triangle)", members)
	}
	if _, err := Community(g, 0, 1, 0); err == nil {
		t.Error("k=1 accepted")
	}
}

// naiveMaximalCliques enumerates maximal cliques by subset brute force.
func naiveMaximalCliques(g *graph.Graph, minSize int) [][]graph.NodeID {
	n := g.NumNodes()
	isClique := func(mask int) bool {
		for v := 0; v < n; v++ {
			if mask&(1<<v) == 0 {
				continue
			}
			for u := v + 1; u < n; u++ {
				if mask&(1<<u) != 0 && !g.HasEdge(graph.NodeID(v), graph.NodeID(u)) {
					return false
				}
			}
		}
		return true
	}
	var out [][]graph.NodeID
	for mask := 1; mask < 1<<n; mask++ {
		if !isClique(mask) {
			continue
		}
		// Maximal: no superset clique.
		maximal := true
		for v := 0; v < n && maximal; v++ {
			if mask&(1<<v) == 0 && isClique(mask|1<<v) {
				maximal = false
			}
		}
		if !maximal {
			continue
		}
		var c []graph.NodeID
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				c = append(c, graph.NodeID(v))
			}
		}
		if len(c) >= minSize {
			out = append(out, c)
		}
	}
	return out
}

func TestPropertyBronKerboschMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		b := graph.NewBuilder(n, 0)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g := b.MustBuild()
		got, err := MaximalCliques(g, 1, 0)
		if err != nil {
			return false
		}
		want := naiveMaximalCliques(g, 1)
		if len(got) != len(want) {
			return false
		}
		canon := func(cs [][]graph.NodeID) []string {
			keys := make([]string, len(cs))
			for i, c := range cs {
				s := append([]graph.NodeID(nil), c...)
				sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
				keys[i] = subsetKey(s)
			}
			sort.Strings(keys)
			return keys
		}
		a, bkeys := canon(got), canon(want)
		for i := range a {
			if a[i] != bkeys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCommunityIsUnionOfKCliquesWithQ(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(10)
		b := graph.NewBuilder(n, 0)
		for i := 0; i < 4*n; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g := b.MustBuild()
		q := graph.NodeID(rng.Intn(n))
		k := 3 + rng.Intn(2)
		members, err := Community(g, q, k, 0)
		if err != nil {
			return false
		}
		if members == nil {
			return true
		}
		// q must be a member, and every member must be in some k-clique
		// inside the community (i.e. the community's induced subgraph has a
		// k-clique through each member).
		in := map[graph.NodeID]bool{}
		hasQ := false
		for _, v := range members {
			in[v] = true
			if v == q {
				hasQ = true
			}
		}
		if !hasQ {
			return false
		}
		sub, orig := g.InducedSubgraph(members)
		cliques, err := enumerateKCliques(sub, k, 100000)
		if err != nil {
			return false
		}
		covered := map[graph.NodeID]bool{}
		for _, c := range cliques {
			for _, v := range c {
				covered[orig[v]] = true
			}
		}
		for _, v := range members {
			if !covered[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
