package cluster

// Per-member circuit breaker for the router's outbound calls. A member that
// fails Threshold consecutive calls stops receiving traffic (open); after
// Cooldown one probe request is let through (half-open), and its outcome
// decides between closing the breaker and re-opening it for another
// cooldown. The breaker exists so a dead or drowning member costs the
// router one failed call per cooldown instead of a timeout per request —
// the difference between a latency blip and a fan-out-wide stall.

import (
	"sync"
	"time"
)

// Breaker states, in the order they cycle.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breakerStateNames indexes the states for /healthz and /metrics.
var breakerStateNames = [...]string{"closed", "open", "half-open"}

// breaker is one member's circuit. The zero value is not ready; use
// newBreaker.
type breaker struct {
	threshold int           // consecutive failures that open the circuit
	cooldown  time.Duration // open time before the half-open probe
	now       func() time.Time

	mu       sync.Mutex
	state    int
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a call may be sent to the member now. In the open
// state the first Allow after the cooldown transitions to half-open and is
// granted as the probe; concurrent callers keep being refused until the
// probe's Success or Failure resolves the state.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		return false // one probe at a time; it is already in flight
	default: // open
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		return true
	}
}

// Success records a completed call: the circuit closes and the failure
// streak resets, whatever state it was in.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
}

// Failure records a failed call. A half-open probe failure re-opens
// immediately; in the closed state the circuit opens once the streak
// reaches the threshold.
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
		}
	}
}

// State returns the current state name ("closed", "open", "half-open").
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerStateNames[b.state]
}

// stateValue returns the state as a metric value (0 closed, 1 open, 2
// half-open).
func (b *breaker) stateValue() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return 1
	case breakerHalfOpen:
		return 2
	default:
		return 0
	}
}
