package cluster

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives a breaker's notion of time by hand.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Failure()
	}
	if b.State() != "closed" {
		t.Fatalf("state after 2 failures: %s, want closed", b.State())
	}
	b.Allow()
	b.Failure() // third consecutive failure: open
	if b.State() != "open" {
		t.Fatalf("state after threshold failures: %s, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before the cooldown")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Allow()
	b.Failure()
	b.Allow()
	b.Failure()
	b.Allow()
	b.Success() // interleaved success: the count is *consecutive* failures
	b.Allow()
	b.Failure()
	b.Allow()
	b.Failure()
	if b.State() != "closed" {
		t.Fatalf("state: %s, want closed (failures never ran consecutive to threshold)", b.State())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Allow()
	b.Failure()
	if b.State() != "open" {
		t.Fatalf("state: %s, want open", b.State())
	}
	// Cooldown not yet elapsed: still refusing.
	clk.advance(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker admitted a call mid-cooldown")
	}
	// Cooldown elapsed: exactly one probe gets through, concurrent callers
	// are refused while it is in flight.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after the cooldown")
	}
	if b.State() != "half-open" {
		t.Fatalf("state: %s, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("breaker admitted a second caller while the probe was in flight")
	}
	// Probe failure re-opens and restarts the cooldown.
	b.Failure()
	if b.State() != "open" {
		t.Fatalf("state after failed probe: %s, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("breaker admitted a call right after a failed probe")
	}
	// Next cooldown, successful probe closes it for good.
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the second probe")
	}
	b.Success()
	if b.State() != "closed" {
		t.Fatalf("state after successful probe: %s, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a call")
	}
}

func TestBreakerStateValues(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	if got := b.stateValue(); got != 0 {
		t.Fatalf("closed stateValue: %d, want 0", got)
	}
	b.Allow()
	b.Failure()
	if got := b.stateValue(); got != 1 {
		t.Fatalf("open stateValue: %d, want 1", got)
	}
	clk.advance(2 * time.Second)
	b.Allow()
	if got := b.stateValue(); got != 2 {
		t.Fatalf("half-open stateValue: %d, want 2", got)
	}
}
