package cluster

// HTTP client for the replication and cluster-control endpoints of one
// node. Thin by design: the wire protocol is the catalog's replication
// surface plus the NodeHandler's control paths, and every method maps to
// exactly one request.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/faults"
	"repro/internal/store"
)

// Client speaks to one cluster node by base URL.
type Client struct {
	// Base is the node's root URL, e.g. "http://127.0.0.1:7070".
	Base string
	// HTTP is the underlying client; nil uses a private client with a 30s
	// overall timeout (per-call contexts tighten it further).
	HTTP *http.Client
}

// NewClient returns a Client for the node at base. hc may be nil, which
// builds a private client with a 30s overall timeout whose transport passes
// the "cluster.client" fault-injection site — so follower bootstrap/tail
// traffic (and anything else on the default client) can be failed, delayed
// or severed by an armed faults spec. A caller-supplied hc is used as-is.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{
			Timeout:   30 * time.Second,
			Transport: faults.Transport("cluster.client", nil),
		}
	}
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: hc}
}

// apiError is a non-2xx response decoded from the node's error body.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("node answered %d: %s", e.Status, e.Msg)
}

// errorFrom drains resp and builds the call error. 410 Gone wraps
// catalog.ErrResync so callers can trigger a snapshot re-bootstrap with
// errors.Is.
func errorFrom(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	msg := strings.TrimSpace(string(body))
	var wire struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &wire) == nil && wire.Error != "" {
		msg = wire.Error
	}
	if resp.StatusCode == http.StatusGone {
		return fmt.Errorf("%w: %s", catalog.ErrResync, msg)
	}
	return &apiError{Status: resp.StatusCode, Msg: msg}
}

// get issues a GET against path with query values and returns the response
// on 200; any other status is drained into an error.
func (c *Client) get(ctx context.Context, path string, q url.Values) (*http.Response, error) {
	u := c.Base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, errorFrom(resp)
	}
	return resp, nil
}

// post issues a JSON POST against path and decodes a 2xx response into out
// (when non-nil).
func (c *Client) post(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return errorFrom(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Graphs lists the datasets the node serves.
func (c *Client) Graphs(ctx context.Context) ([]catalog.Info, error) {
	resp, err := c.get(ctx, "/graphs", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var wire struct {
		Graphs []catalog.Info `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return nil, fmt.Errorf("decoding /graphs from %s: %w", c.Base, err)
	}
	return wire.Graphs, nil
}

// SnapshotMeta is the replication cursor a fetched snapshot captured.
type SnapshotMeta struct {
	Graph   string
	Version uint64
	Lineage uint64
}

// FetchSnapshot streams GET /admin/replicate for graph into the file at
// dest (written atomically: a torn download never leaves a partial file)
// and returns the cursor the snapshot carries.
func (c *Client) FetchSnapshot(ctx context.Context, graph, dest string) (SnapshotMeta, error) {
	q := url.Values{}
	if graph != "" {
		q.Set("graph", graph)
	}
	resp, err := c.get(ctx, catalog.ReplicatePath, q)
	if err != nil {
		return SnapshotMeta{}, err
	}
	defer resp.Body.Close()
	meta := SnapshotMeta{Graph: resp.Header.Get(catalog.HeaderGraph)}
	if meta.Version, err = strconv.ParseUint(resp.Header.Get(catalog.HeaderVersion), 10, 64); err != nil {
		return SnapshotMeta{}, fmt.Errorf("replicate response from %s lacks %s", c.Base, catalog.HeaderVersion)
	}
	if meta.Lineage, err = strconv.ParseUint(resp.Header.Get(catalog.HeaderLineage), 10, 64); err != nil {
		return SnapshotMeta{}, fmt.Errorf("replicate response from %s lacks %s", c.Base, catalog.HeaderLineage)
	}
	if _, err := store.AtomicWriteFile(dest, func(w io.Writer) error {
		_, err := io.Copy(w, resp.Body)
		return err
	}); err != nil {
		return SnapshotMeta{}, err
	}
	return meta, nil
}

// JournalTail is the GET /admin/journal body: the batches past the polled
// cursor, rebased onto graph versions, plus the primary's current version.
type JournalTail struct {
	Graph   string                   `json:"graph"`
	Lineage uint64                   `json:"lineage"`
	From    uint64                   `json:"from"`
	Version uint64                   `json:"version"`
	Batches []catalog.VersionedBatch `json:"batches"`
}

// JournalSince polls the journal batches past cursor from. An error
// wrapping catalog.ErrResync (HTTP 410) means no tail can serve the cursor
// and the caller must re-bootstrap from a fresh snapshot.
func (c *Client) JournalSince(ctx context.Context, graph string, lineage, from uint64) (*JournalTail, error) {
	q := url.Values{}
	if graph != "" {
		q.Set("graph", graph)
	}
	q.Set("lineage", strconv.FormatUint(lineage, 10))
	q.Set("from", strconv.FormatUint(from, 10))
	resp, err := c.get(ctx, catalog.JournalPath, q)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var tail JournalTail
	if err := json.NewDecoder(resp.Body).Decode(&tail); err != nil {
		return nil, fmt.Errorf("decoding journal tail from %s: %w", c.Base, err)
	}
	return &tail, nil
}

// Status fetches the node's replication status.
func (c *Client) Status(ctx context.Context) (*NodeStatus, error) {
	resp, err := c.get(ctx, ReplicationPath, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st NodeStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("decoding %s from %s: %w", ReplicationPath, c.Base, err)
	}
	return &st, nil
}

// Promote asks the node to become a writable primary (idempotent).
func (c *Client) Promote(ctx context.Context) error {
	return c.post(ctx, PromotePath, struct{}{}, nil)
}

// Follow re-points the node at a new primary.
func (c *Client) Follow(ctx context.Context, primary string) error {
	return c.post(ctx, FollowPath, followRequest{Primary: primary}, nil)
}
