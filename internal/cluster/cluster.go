// Package cluster turns single-process seaserve instances into a serving
// cluster: journal-shipping replication between a primary and its
// followers, and a scatter-gather router (cmd/searouter) in front of them.
//
// Replication rides the catalog's primary-side hooks (catalog.ReplicateSnapshot,
// catalog.JournalSince) over plain HTTP. A Follower bootstraps each dataset
// by fetching a full snapshot together with its (version, lineage) cursor,
// mounts it journaled in a local replica directory, then tails the
// primary's journal and folds each batch through the catalog's mutation
// path — incremental index maintenance and scoped cache invalidation keep
// the replica's caches warm across the stream, so a promoted follower
// serves at full speed immediately. Any cursor the primary cannot bridge
// with a journal tail (compaction passed it, a swap started a new lineage,
// the primary restarted) answers 410 Gone and the follower re-bootstraps
// from a fresh snapshot; replication is always convergent, never wedged.
//
// The Router spreads /batch queries and /compare methods across the
// replica set chosen by consistent hashing on the dataset name, with
// per-shard deadlines and partial-result degradation: a slow or dead shard
// costs its own items, never the request. Writes forward to the primary;
// reads go to in-sync replicas only (followers lagging more than MaxLag
// batches drop out of the read set until they catch up). When the primary
// dies the router promotes the most-caught-up follower and re-points the
// rest at it.
package cluster

// Cluster-control endpoints every node serves (NewNodeHandler); the router
// and followers speak exactly these paths.
const (
	// ReplicationPath reports the node's NodeStatus (GET).
	ReplicationPath = "/admin/replication"
	// PromotePath turns a follower into a writable primary (POST). A node
	// that already is one answers 200 without change, so promotion is
	// idempotent.
	PromotePath = "/admin/promote"
	// FollowPath re-points a follower at a new primary (POST
	// {"primary":"http://..."}); it re-bootstraps every dataset from the
	// new upstream. A primary answers 409 — demotion is not a thing, kill
	// the process instead.
	FollowPath = "/admin/follow"
)

// Node roles as reported in NodeStatus.Role.
const (
	RolePrimary  = "primary"
	RoleFollower = "follower"
)

// ReplicaStatus is the replication state of one dataset on one node.
type ReplicaStatus struct {
	Graph string `json:"graph"`
	// Version is the replication cursor the node has applied up to. On the
	// primary this is the dataset's graph generation itself.
	Version uint64 `json:"version"`
	// Lineage is the primary-side lineage token the cursor lives in.
	Lineage uint64 `json:"lineage"`
	// PrimaryVersion is the primary's version as of the follower's last
	// successful poll (0 on the primary itself).
	PrimaryVersion uint64 `json:"primary_version,omitempty"`
	// Lag is max(PrimaryVersion−Version, 0): the batches the follower still
	// has to fold before it is in sync.
	Lag uint64 `json:"lag,omitempty"`
	// JournalSeq is the node's own local journal position (what a follower
	// of this node would tail).
	JournalSeq uint64 `json:"journal_seq,omitempty"`
	// LastError is the most recent replication failure for this dataset,
	// cleared by the next successful sync.
	LastError string `json:"last_error,omitempty"`
}

// NodeStatus is the GET /admin/replication body: the node's role and the
// replication state of every dataset it serves.
type NodeStatus struct {
	Role string `json:"role"`
	// Primary is the upstream a follower replicates from (empty on a
	// primary).
	Primary  string          `json:"primary,omitempty"`
	Datasets []ReplicaStatus `json:"datasets"`
	// SyncFailures is the follower's consecutive failed sync ticks (0 when
	// healthy or primary); SyncBackoffMS is the delay before its next sync
	// attempt — the poll interval while healthy, growing exponentially
	// (jittered, capped) under failures.
	SyncFailures  int   `json:"sync_failures,omitempty"`
	SyncBackoffMS int64 `json:"sync_backoff_ms,omitempty"`
}

// followRequest is the POST /admin/follow body.
type followRequest struct {
	Primary string `json:"primary"`
}
