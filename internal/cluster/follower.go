package cluster

// The follower side of journal-shipping replication: bootstrap every
// dataset from a primary snapshot, then poll the primary's journal and fold
// each batch through the local catalog's mutation path. Folding through
// catalog.Mutate (not a blind engine swap) is the point of the design: the
// replica maintains its indexes incrementally, invalidates caches by scope,
// and journals every batch locally — so a promoted follower is immediately
// a warm, durable, replicable primary.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/engine"
)

// DefaultPollEvery is the follower's journal poll interval.
const DefaultPollEvery = 500 * time.Millisecond

// maxBackoffPolls caps the sync-failure backoff at this many poll
// intervals: a follower of a down primary settles at ~30× its poll rate
// instead of hammering, but still notices recovery within seconds.
const maxBackoffPolls = 30

// replica is the follower-side cursor state of one dataset.
type replica struct {
	// lineage is the primary lineage the cursor lives in.
	lineage uint64
	// base rebases the local engine's generation onto the primary cursor:
	// cursor = base + local version. A fresh mount starts at local version
	// 0, so base is simply the snapshot's version; it is recomputed on
	// every bootstrap.
	base uint64
	// primaryVersion is the primary's version at the last successful poll.
	primaryVersion uint64
	lastErr        string
}

// Follower replicates every dataset of a primary into a local catalog.
type Follower struct {
	cat  *catalog.Catalog
	cfg  engine.Config
	dir  string
	poll time.Duration

	mu       sync.Mutex
	primary  string
	client   *Client
	replicas map[string]*replica
	promoted bool
	// syncFails counts consecutive failed sync ticks; backoff is the delay
	// Run is currently waiting (poll while healthy, growing under failures).
	syncFails int
	backoff   time.Duration
}

// NewFollower returns a follower that replicates from the primary at
// primaryURL into cat, keeping its replica snapshots and journals under
// dir. cfg is the engine config replicas mount with; poll ≤ 0 uses
// DefaultPollEvery.
func NewFollower(cat *catalog.Catalog, primaryURL, dir string, cfg engine.Config, poll time.Duration) *Follower {
	if poll <= 0 {
		poll = DefaultPollEvery
	}
	return &Follower{
		cat:      cat,
		cfg:      cfg,
		dir:      dir,
		poll:     poll,
		primary:  primaryURL,
		client:   NewClient(primaryURL, nil),
		replicas: make(map[string]*replica),
	}
}

// Primary is the upstream URL currently replicated from.
func (f *Follower) Primary() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.primary
}

// Promoted reports whether the follower has been promoted to primary.
func (f *Follower) Promoted() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.promoted
}

// Promote turns the follower into a writable primary: replication stops
// (Run returns at its next tick) and the write fence lifts. The local
// catalog mounted every dataset journaled, so the node can immediately
// serve snapshot bootstraps and journal tails to its own followers.
func (f *Follower) Promote() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.promoted = true
}

// SetPrimary re-points the follower at a new primary. Every dataset
// re-bootstraps from the new upstream on the next tick: cursors from the
// old primary are meaningless against a different node's lineage tokens.
func (f *Follower) SetPrimary(url string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.primary = url
	f.client = NewClient(url, nil)
	f.replicas = make(map[string]*replica)
}

// snapshot of the mutable state a sync tick works against.
func (f *Follower) state() (*Client, map[string]*replica, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.client, f.replicas, f.promoted
}

// Bootstrap fetches and mounts every dataset the primary serves. Called
// once before Run; Run re-bootstraps on its own whenever a cursor stops
// being serviceable.
func (f *Follower) Bootstrap(ctx context.Context) error {
	client, _, _ := f.state()
	infos, err := client.Graphs(ctx)
	if err != nil {
		return fmt.Errorf("listing primary datasets: %w", err)
	}
	for _, info := range infos {
		if err := f.bootstrapDataset(ctx, client, info.Name); err != nil {
			return fmt.Errorf("bootstrapping %q: %w", info.Name, err)
		}
	}
	return nil
}

// Run polls the primary until ctx is cancelled or the follower is
// promoted. Sync failures are recorded per dataset (visible in Status) and
// retried — a follower never gives up on a live primary — but consecutive
// failures back off exponentially with jitter (capped at maxBackoffPolls ×
// the poll interval) instead of hammering a primary that is down or
// drowning; one successful tick resets the cadence. The jitter spreads a
// fleet of followers that all lost the same primary, so its recovery is not
// met by a synchronized re-bootstrap storm.
func (f *Follower) Run(ctx context.Context) {
	timer := time.NewTimer(f.poll)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		if f.Promoted() {
			return
		}
		ok := f.syncOnce(ctx)
		f.mu.Lock()
		if ok {
			f.syncFails = 0
		} else {
			f.syncFails++
		}
		delay := backoffDelay(f.poll, f.syncFails)
		f.backoff = delay
		f.mu.Unlock()
		timer.Reset(delay)
	}
}

// backoffDelay is the wait before the next sync tick after fails
// consecutive failures: poll × 2^fails, capped at maxBackoffPolls × poll,
// with ±25% jitter once backing off.
func backoffDelay(poll time.Duration, fails int) time.Duration {
	if fails <= 0 {
		return poll
	}
	d := poll
	for i := 0; i < fails && d < maxBackoffPolls*poll; i++ {
		d *= 2
	}
	if d > maxBackoffPolls*poll {
		d = maxBackoffPolls * poll
	}
	return jitter(d)
}

// jitter spreads d into [0.75d, 1.25d): enough to decorrelate a fleet of
// clients retrying against the same node, small enough that caps stay
// meaningful.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d - d/4 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// SyncBackoff reports the follower's current retry cadence: the delay before
// the next sync tick and the consecutive-failure count driving it.
func (f *Follower) SyncBackoff() (time.Duration, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.backoff <= 0 {
		return f.poll, f.syncFails
	}
	return f.backoff, f.syncFails
}

// syncOnce advances every dataset by one poll: ask the primary where it is,
// bootstrap datasets this follower has never seen (or whose lineage
// changed), and tail the journal for the ones that lag. It reports whether
// the whole tick succeeded; any failure (status poll, bootstrap, catch-up)
// makes the tick a failure and feeds Run's backoff.
func (f *Follower) syncOnce(ctx context.Context) bool {
	client, replicas, promoted := f.state()
	if promoted {
		return true
	}
	status, err := client.Status(ctx)
	if err != nil {
		f.mu.Lock()
		for _, r := range f.replicas {
			r.lastErr = fmt.Sprintf("polling primary: %v", err)
		}
		f.mu.Unlock()
		return false
	}
	ok := true
	for _, ds := range status.Datasets {
		f.mu.Lock()
		r := replicas[ds.Graph]
		f.mu.Unlock()
		if r == nil || r.lineage != ds.Lineage {
			if err := f.bootstrapDataset(ctx, client, ds.Graph); err != nil {
				f.setErr(ds.Graph, fmt.Sprintf("bootstrap: %v", err))
				ok = false
			}
			continue
		}
		if err := f.catchUp(ctx, client, ds.Graph, r, ds.Version); err != nil {
			f.setErr(ds.Graph, err.Error())
			ok = false
		}
	}
	return ok
}

// catchUp tails the primary's journal for one dataset until the cursor
// reaches primaryVersion (as of this poll). A cursor the primary cannot
// serve triggers a fresh bootstrap.
func (f *Follower) catchUp(ctx context.Context, client *Client, name string, r *replica, primaryVersion uint64) error {
	cursor, err := f.cursor(name, r)
	if err != nil {
		return err
	}
	f.mu.Lock()
	r.primaryVersion = primaryVersion
	r.lastErr = ""
	f.mu.Unlock()
	if cursor >= primaryVersion {
		return nil
	}
	tail, err := client.JournalSince(ctx, name, r.lineage, cursor)
	if err != nil {
		if isResync(err) {
			if berr := f.bootstrapDataset(ctx, client, name); berr != nil {
				return fmt.Errorf("re-bootstrap after %v: %w", err, berr)
			}
			return nil
		}
		return fmt.Errorf("tailing journal: %w", err)
	}
	for _, b := range tail.Batches {
		if b.Version != cursor+1 {
			// The tail skips or repeats a generation — the journal moved
			// under us in a way the protocol does not explain. Resync.
			if berr := f.bootstrapDataset(ctx, client, name); berr != nil {
				return fmt.Errorf("re-bootstrap after out-of-order batch %d (cursor %d): %w",
					b.Version, cursor, berr)
			}
			return nil
		}
		// Fold, not Mutate: a shipped record must advance the local version
		// by exactly 1 to keep the record-per-version cursor math true, so
		// the fold bypasses the group-commit batcher — the primary already
		// coalesced, and the record is replayed atomically as one batch.
		if _, err := f.cat.Fold(name, b.Deltas); err != nil {
			return fmt.Errorf("applying batch %d: %w", b.Version, err)
		}
		cursor = b.Version
	}
	f.mu.Lock()
	r.primaryVersion = tail.Version
	f.mu.Unlock()
	return nil
}

// bootstrapDataset fetches a fresh snapshot of name from the primary and
// (re)mounts it journaled in the replica directory, resetting the dataset's
// cursor to the snapshot's.
func (f *Follower) bootstrapDataset(ctx context.Context, client *Client, name string) error {
	snapPath := filepath.Join(f.dir, sanitizeName(name)+".replica.snap")
	jrnlPath := filepath.Join(f.dir, sanitizeName(name)+".replica.journal")
	meta, err := client.FetchSnapshot(ctx, name, snapPath)
	if err != nil {
		return err
	}
	if f.mounted(name) {
		// SwapPath keeps the journaled mount and resets the local journal —
		// deltas journaled against the old snapshot do not describe the new
		// one.
		if _, err := f.cat.SwapPath(name, snapPath, f.cfg); err != nil {
			return err
		}
	} else {
		// A journal left over from an earlier follower life would replay
		// over the fresh snapshot; it describes a state that no longer
		// exists.
		os.Remove(jrnlPath)
		if _, _, err := f.cat.MountPathJournaled(name, snapPath, jrnlPath, f.cfg); err != nil {
			return err
		}
	}
	local, err := f.cat.InfoFor(name)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.replicas[name] = &replica{
		lineage:        meta.Lineage,
		base:           meta.Version - local.Version,
		primaryVersion: meta.Version,
	}
	f.mu.Unlock()
	return nil
}

// cursor is the primary-side generation the local replica has applied up
// to: the snapshot's base plus every batch folded since.
func (f *Follower) cursor(name string, r *replica) (uint64, error) {
	info, err := f.cat.InfoFor(name)
	if err != nil {
		return 0, err
	}
	return r.base + info.Version, nil
}

func (f *Follower) mounted(name string) bool {
	for _, n := range f.cat.Names() {
		if n == name {
			return true
		}
	}
	return false
}

func (f *Follower) setErr(name, msg string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if r := f.replicas[name]; r != nil {
		r.lastErr = msg
	}
}

// Status reports the follower's replication state, sorted by dataset name.
func (f *Follower) Status() []ReplicaStatus {
	f.mu.Lock()
	snap := make(map[string]replica, len(f.replicas))
	for name, r := range f.replicas {
		snap[name] = *r
	}
	f.mu.Unlock()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]ReplicaStatus, 0, len(names))
	for _, name := range names {
		r := snap[name]
		st := ReplicaStatus{
			Graph:          name,
			Lineage:        r.lineage,
			PrimaryVersion: r.primaryVersion,
			LastError:      r.lastErr,
		}
		if info, err := f.cat.InfoFor(name); err == nil {
			st.Version = r.base + info.Version
			st.JournalSeq = info.JournalSeq
		}
		if r.primaryVersion > st.Version {
			st.Lag = r.primaryVersion - st.Version
		}
		out = append(out, st)
	}
	return out
}

// sanitizeName maps a dataset name onto a filesystem-safe file stem.
func sanitizeName(name string) string {
	out := []byte(name)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// isResync reports whether err asks for a snapshot re-bootstrap.
func isResync(err error) bool {
	return errors.Is(err, catalog.ErrResync)
}
