package cluster

// NewNodeHandler: the HTTP surface of one cluster node. It wraps the
// catalog's full serving surface (queries, admin, replication source
// endpoints) with the cluster-control endpoints and, on followers, a write
// fence — replicated state must only change through the replication
// stream, or the follower's cursor would lie.

import (
	"net/http"

	"repro/internal/catalog"
	"repro/internal/cserr"
	"repro/internal/engine"
)

// writeFenced are the admin paths a non-promoted follower refuses: each
// would fork the replica away from the primary's history.
var writeFenced = map[string]bool{
	"/admin/mutate":  true,
	"/admin/reload":  true,
	"/admin/compact": true,
}

// NewNodeHandler returns the serving surface of a cluster node over cat:
// the catalog handler plus /admin/replication, /admin/promote and
// /admin/follow. fol is nil on a node born primary; on a follower it
// supplies the replication status, the write fence, and the promotion
// switch. Every response echoes the request's X-Request-ID.
func NewNodeHandler(cat *catalog.Catalog, base engine.Config, fol *Follower) http.Handler {
	inner := catalog.NewHTTPHandler(cat, base)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case ReplicationPath:
			if r.Method != http.MethodGet {
				engine.WriteError(w, http.StatusMethodNotAllowed, cserr.Invalidf("use GET"))
				return
			}
			engine.WriteJSON(w, http.StatusOK, nodeStatus(cat, fol))
		case PromotePath:
			if r.Method != http.MethodPost {
				engine.WriteError(w, http.StatusMethodNotAllowed, cserr.Invalidf("use POST"))
				return
			}
			if fol != nil {
				fol.Promote()
			}
			engine.WriteJSON(w, http.StatusOK, nodeStatus(cat, fol))
		case FollowPath:
			if r.Method != http.MethodPost {
				engine.WriteError(w, http.StatusMethodNotAllowed, cserr.Invalidf("use POST"))
				return
			}
			if fol == nil || fol.Promoted() {
				engine.WriteError(w, http.StatusConflict,
					cserr.Invalidf("node is a primary; it cannot follow"))
				return
			}
			var req followRequest
			if err := engine.DecodeJSONBody(w, r, &req); err != nil {
				engine.WriteError(w, engine.StatusFor(err), err)
				return
			}
			if req.Primary == "" {
				engine.WriteError(w, http.StatusBadRequest, cserr.Invalidf(`need "primary"`))
				return
			}
			fol.SetPrimary(req.Primary)
			engine.WriteJSON(w, http.StatusOK, nodeStatus(cat, fol))
		default:
			if fol != nil && !fol.Promoted() && writeFenced[r.URL.Path] {
				engine.WriteError(w, http.StatusForbidden,
					cserr.Invalidf("node is a follower of %s; write through the primary", fol.Primary()))
				return
			}
			inner.ServeHTTP(w, r)
		}
	})
	return engine.WithRequestID(h)
}

// nodeStatus builds the node's NodeStatus: the follower's cursor view when
// replicating, the catalog's own replication info when primary.
func nodeStatus(cat *catalog.Catalog, fol *Follower) NodeStatus {
	if fol != nil && !fol.Promoted() {
		backoff, fails := fol.SyncBackoff()
		return NodeStatus{
			Role: RoleFollower, Primary: fol.Primary(), Datasets: fol.Status(),
			SyncFailures: fails, SyncBackoffMS: backoff.Milliseconds(),
		}
	}
	infos := cat.ReplicationInfos()
	datasets := make([]ReplicaStatus, len(infos))
	for i, info := range infos {
		datasets[i] = ReplicaStatus{
			Graph:      info.Graph,
			Version:    info.Version,
			Lineage:    info.Lineage,
			JournalSeq: info.JournalSeq,
		}
		if info.Broken {
			datasets[i].LastError = "journal has a durability hole; compact to heal it"
		}
	}
	return NodeStatus{Role: RolePrimary, Datasets: datasets}
}
