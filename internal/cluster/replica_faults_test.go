package cluster

// Fault-injection tests for replication: a snapshot stream severed
// mid-transfer must fail the bootstrap cleanly — no partially-mounted
// dataset, no stray snapshot file — and the next attempt must succeed.

import (
	"context"
	"os"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/mutate"
)

// TestBootstrapSeveredStreamFailsCleanThenSucceeds severs the replication
// snapshot body halfway through the transfer (server side, after the
// headers and Content-Length are already out — the nastiest spot).
func TestBootstrapSeveredStreamFailsCleanThenSucceeds(t *testing.T) {
	_, pts := newPrimary(t)
	cat := catalog.New()
	t.Cleanup(func() { cat.Close() })
	dir := t.TempDir()
	fol := NewFollower(cat, pts.URL, dir, engine.DefaultConfig(), 0)

	faults.Enable(11, faults.Spec{Site: "replicate.stream", Count: 1, Partial: true, Err: "reset"})
	defer faults.Disable()

	if err := fol.Bootstrap(context.Background()); err == nil {
		t.Fatal("bootstrap over a severed snapshot stream reported success")
	}
	// Clean failure: nothing mounted, and the atomic snapshot write left no
	// partial file a later mount could trip over.
	if n := len(cat.Names()); n != 0 {
		t.Fatalf("severed bootstrap left %d dataset(s) mounted", n)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Fatalf("severed bootstrap left a stray file: %s", e.Name())
	}

	// The fault is spent: the retry bootstraps for real and the follower
	// serves the dataset.
	if err := fol.Bootstrap(context.Background()); err != nil {
		t.Fatalf("bootstrap after the severed attempt: %v", err)
	}
	if n := len(cat.Names()); n != 1 {
		t.Fatalf("post-retry datasets: %d, want 1", n)
	}
	if _, err := cat.InfoFor("g"); err != nil {
		t.Fatalf("replica dataset not serving: %v", err)
	}
}

// TestFollowerTailFaultBacksOffAndRecovers injects a burst of journal-tail
// failures and checks the follower's responses: the per-dataset LastError
// surfaces while the fault holds, consecutive failures grow the sync
// backoff, and the follower converges once the fault clears.
func TestFollowerTailFaultBacksOffAndRecovers(t *testing.T) {
	pcat, pts := newPrimary(t)
	cat := catalog.New()
	t.Cleanup(func() { cat.Close() })
	fol := NewFollower(cat, pts.URL, t.TempDir(), engine.DefaultConfig(), 10*time.Millisecond)
	if err := fol.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go fol.Run(ctx)

	// Write on the primary, then break the journal-serve path: the follower
	// sees the new version via status polls but cannot tail it.
	faults.Enable(13, faults.Spec{Site: "journal.serve", Err: "eio"})
	t.Cleanup(faults.Disable)
	if _, err := pcat.Mutate("g", attrDeltaCluster("v1")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "sync failures to accumulate", func() bool {
		_, fails := fol.SyncBackoff()
		return fails >= 2
	})
	backoff, _ := fol.SyncBackoff()
	if backoff <= 10*time.Millisecond {
		t.Fatalf("backoff %v has not grown past the poll interval", backoff)
	}
	for _, st := range fol.Status() {
		if st.LastError == "" {
			t.Fatalf("dataset %q shows no LastError while tails fail", st.Graph)
		}
	}

	// Clear the fault: the follower recovers, catches up, and the backoff
	// resets to the poll cadence.
	faults.Disable()
	waitFor(t, 10*time.Second, "follower to catch up", func() bool {
		for _, st := range fol.Status() {
			if st.Lag != 0 || st.LastError != "" {
				return false
			}
		}
		_, fails := fol.SyncBackoff()
		return fails == 0
	})
}

// attrDeltaCluster is a minimal valid mutation batch for cluster tests.
func attrDeltaCluster(tag string) []mutate.Delta {
	return []mutate.Delta{{Op: mutate.OpSetAttr, U: 0, Text: []string{tag}}}
}
