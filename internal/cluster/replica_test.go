package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/query"
	"repro/internal/store"
)

// testSnapshot packs the shared 12-node fixture graph (two squares joined
// by a path, mixed text/numeric attributes) into a snapshot file.
func testSnapshot(t *testing.T, dir string) string {
	t.Helper()
	b := graph.NewBuilder(12, 1)
	for v := 0; v < 12; v++ {
		b.SetTextAttrs(graph.NodeID(v), fmt.Sprintf("tag%d", v%3))
		b.SetNumAttrs(graph.NodeID(v), float64(v)/12)
	}
	for _, e := range [][2]graph.NodeID{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2},
		{6, 7}, {7, 8}, {8, 9}, {9, 6}, {6, 8},
		{3, 5}, {5, 6},
	} {
		b.AddEdge(e[0], e[1])
	}
	eng, err := engine.New(b.MustBuild(), engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "g.snap")
	if _, err := store.AtomicWriteFile(path, eng.WriteSnapshot); err != nil {
		t.Fatal(err)
	}
	return path
}

// newPrimary boots a journaled primary node serving dataset "g".
func newPrimary(t *testing.T) (*catalog.Catalog, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	cat := catalog.New()
	t.Cleanup(func() { cat.Close() })
	snap := testSnapshot(t, dir)
	if _, _, err := cat.MountPathJournaled("g", snap, filepath.Join(dir, "g.journal"), engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewNodeHandler(cat, engine.DefaultConfig(), nil))
	t.Cleanup(ts.Close)
	return cat, ts
}

// newFollowerNode boots a bootstrapped follower of primaryURL.
func newFollowerNode(t *testing.T, primaryURL string) (*catalog.Catalog, *Follower, *httptest.Server) {
	t.Helper()
	cat := catalog.New()
	t.Cleanup(func() { cat.Close() })
	fol := NewFollower(cat, primaryURL, t.TempDir(), engine.DefaultConfig(), 0)
	if err := fol.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewNodeHandler(cat, engine.DefaultConfig(), fol))
	t.Cleanup(ts.Close)
	return cat, fol, ts
}

// outcomesMatch runs req on both engines and requires byte-identical
// marshalled Outcomes.
func outcomesMatch(t *testing.T, primary, follower *catalog.Catalog, req query.Request) {
	t.Helper()
	pe, err := primary.Resolve("g")
	if err != nil {
		t.Fatal(err)
	}
	fe, err := follower.Resolve("g")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pout, perr := pe.Query(ctx, req)
	fout, ferr := fe.Query(ctx, req)
	if (perr == nil) != (ferr == nil) {
		t.Fatalf("error mismatch: primary=%v follower=%v", perr, ferr)
	}
	pj, err := json.Marshal(pout)
	if err != nil {
		t.Fatal(err)
	}
	fj, err := json.Marshal(fout)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj, fj) {
		t.Fatalf("outcomes differ for %+v:\nprimary:  %s\nfollower: %s", req, pj, fj)
	}
}

func testRequests() []query.Request {
	structural := query.Request{Query: 0, Method: query.MethodStructural, K: 3}.WithDefaults()
	seeded := query.Request{Query: 6, Method: query.MethodSEA, K: 3, Seed: 42}.WithDefaults()
	return []query.Request{structural, seeded}
}

// TestFollowerReplicatesByteIdentical is the tentpole E2E: a follower that
// bootstrapped and tailed the journal answers every Request with an
// Outcome byte-identical to the primary's.
func TestFollowerReplicatesByteIdentical(t *testing.T) {
	pcat, pts := newPrimary(t)
	fcat, fol, _ := newFollowerNode(t, pts.URL)
	ctx := context.Background()

	// Identical before any mutation…
	for _, req := range testRequests() {
		outcomesMatch(t, pcat, fcat, req)
	}

	// …and identical again after a stream of mutation batches replicates.
	for i := 0; i < 3; i++ {
		if _, err := pcat.Mutate("g", []mutate.Delta{
			mutate.AddEdge(graph.NodeID(i), graph.NodeID(10+i%2)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	fol.syncOnce(ctx)
	st := fol.Status()
	if len(st) != 1 || st[0].Version != 3 || st[0].Lag != 0 || st[0].LastError != "" {
		t.Fatalf("follower status after sync: %+v", st)
	}
	for _, req := range testRequests() {
		outcomesMatch(t, pcat, fcat, req)
	}
}

// TestFollowerResyncAfterCompaction wedges the follower's cursor behind a
// compaction and checks it re-bootstraps transparently.
func TestFollowerResyncAfterCompaction(t *testing.T) {
	pcat, pts := newPrimary(t)
	fcat, fol, _ := newFollowerNode(t, pts.URL)
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := pcat.Mutate("g", []mutate.Delta{mutate.AddEdge(graph.NodeID(i), 11)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pcat.Compact("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := pcat.Mutate("g", []mutate.Delta{mutate.AddEdge(4, 7)}); err != nil {
		t.Fatal(err)
	}
	// The follower sits at cursor 0; the journal now starts at base 2. The
	// sync must detect 410, fetch a fresh snapshot, and land at cursor 3.
	fol.syncOnce(ctx)
	st := fol.Status()
	if len(st) != 1 || st[0].Version != 3 || st[0].Lag != 0 {
		t.Fatalf("follower status after resync: %+v", st)
	}
	for _, req := range testRequests() {
		outcomesMatch(t, pcat, fcat, req)
	}
}

// TestFollowerResyncAfterSwap checks lineage fencing: a hot-swap on the
// primary forces followers onto the new lineage via a fresh bootstrap.
func TestFollowerResyncAfterSwap(t *testing.T) {
	pcat, pts := newPrimary(t)
	fcat, fol, _ := newFollowerNode(t, pts.URL)
	ctx := context.Background()

	if _, err := pcat.SwapPath("g", testSnapshot(t, t.TempDir()), engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := pcat.Mutate("g", []mutate.Delta{mutate.AddEdge(1, 9)}); err != nil {
		t.Fatal(err)
	}
	fol.syncOnce(ctx)
	st := fol.Status()
	if len(st) != 1 || st[0].Lineage != 1 || st[0].Lag != 0 {
		t.Fatalf("follower status after swap: %+v", st)
	}
	for _, req := range testRequests() {
		outcomesMatch(t, pcat, fcat, req)
	}
}

// TestPromoteLiftsWriteFence drives the follower's node surface: writes are
// fenced while following, promotion flips the role, lifts the fence, and
// leaves the node serving journal tails to its own followers.
func TestPromoteLiftsWriteFence(t *testing.T) {
	pcat, pts := newPrimary(t)
	_, fol, fts := newFollowerNode(t, pts.URL)
	ctx := context.Background()
	if _, err := pcat.Mutate("g", []mutate.Delta{mutate.AddEdge(0, 10)}); err != nil {
		t.Fatal(err)
	}
	fol.syncOnce(ctx)

	mutateBody := `{"graph":"g","deltas":[{"op":"add_edge","u":2,"v":9}]}`
	resp, err := http.Post(fts.URL+"/admin/mutate", "application/json", strings.NewReader(mutateBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("fenced mutate: %d, want 403", resp.StatusCode)
	}

	c := NewClient(fts.URL, nil)
	if st, err := c.Status(ctx); err != nil || st.Role != RoleFollower {
		t.Fatalf("pre-promote status: %+v, err=%v", st, err)
	}
	if err := c.Promote(ctx); err != nil {
		t.Fatal(err)
	}
	if st, err := c.Status(ctx); err != nil || st.Role != RolePrimary {
		t.Fatalf("post-promote status: %+v, err=%v", st, err)
	}

	resp, err = http.Post(fts.URL+"/admin/mutate", "application/json", strings.NewReader(mutateBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promoted mutate: %d, want 200", resp.StatusCode)
	}

	// The promoted node is itself a replication source: its journal serves
	// tails from its current lineage (local version 2: one replicated, one
	// written batch).
	if tail, err := c.JournalSince(ctx, "g", 0, 1); err != nil || len(tail.Batches) != 1 {
		t.Fatalf("promoted journal tail: %+v, err=%v", tail, err)
	}

	// Promotion is terminal for the follower loop: Follow now conflicts.
	if err := c.Follow(ctx, pts.URL); err == nil {
		t.Fatal("promoted node accepted /admin/follow")
	}
}

// TestRequestIDEcho checks the correlation header end to end on a node:
// echoed when present on success and error paths alike.
func TestRequestIDEcho(t *testing.T) {
	_, pts := newPrimary(t)
	for _, path := range []string{"/healthz", "/nope-does-not-exist"} {
		req, err := http.NewRequest(http.MethodGet, pts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(engine.RequestIDHeader, "req-abc-123")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get(engine.RequestIDHeader); got != "req-abc-123" {
			t.Fatalf("%s: request id %q, want echo", path, got)
		}
	}
}
