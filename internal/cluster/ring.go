package cluster

// Consistent-hash placement: datasets map onto replica-set members through
// a ring of virtual nodes, so adding or removing a member only moves the
// datasets that hashed next to it — the rest of the placement is stable.

import (
	"hash/fnv"
	"sort"
)

// vnodesPerMember is how many ring points each member contributes. 64
// points per member keeps the placement spread within a few percent of even
// for the single-digit member counts a searouter fronts.
const vnodesPerMember = 64

type ringPoint struct {
	hash   uint64
	member int // index into ring.members
}

// ring is an immutable consistent-hash ring over member URLs.
type ring struct {
	members []string
	points  []ringPoint
}

func newRing(members []string) *ring {
	r := &ring{
		members: members,
		points:  make([]ringPoint, 0, len(members)*vnodesPerMember),
	}
	var buf [8]byte
	for m, url := range members {
		for v := 0; v < vnodesPerMember; v++ {
			h := fnv.New64a()
			h.Write([]byte(url))
			buf[0], buf[1] = byte(v), byte(v>>8)
			h.Write(buf[:2])
			r.points = append(r.points, ringPoint{hash: h.Sum64(), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// lookup returns the first n distinct members clockwise from key's hash —
// the dataset's replica set, primary-for-placement first. n is clamped to
// the member count.
func (r *ring) lookup(key string, n int) []string {
	if len(r.members) == 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	target := h.Sum64()
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= target })
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}
