package cluster

import (
	"fmt"
	"testing"
)

func TestRingLookupProperties(t *testing.T) {
	members := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r := newRing(members)
	for _, key := range []string{"", "facebook", "github", "orkut", "a-very-long-dataset-name"} {
		set := r.lookup(key, 2)
		if len(set) != 2 {
			t.Fatalf("lookup(%q, 2) = %v", key, set)
		}
		if set[0] == set[1] {
			t.Fatalf("lookup(%q) repeats a member: %v", key, set)
		}
		// Deterministic: the same key always lands on the same set.
		again := r.lookup(key, 2)
		if set[0] != again[0] || set[1] != again[1] {
			t.Fatalf("lookup(%q) unstable: %v then %v", key, set, again)
		}
	}
	// n clamps to the member count and covers everyone.
	all := r.lookup("x", 99)
	if len(all) != len(members) {
		t.Fatalf("lookup(99) = %d members, want %d", len(all), len(members))
	}
	seen := map[string]bool{}
	for _, m := range all {
		seen[m] = true
	}
	if len(seen) != len(members) {
		t.Fatalf("lookup(99) repeats members: %v", all)
	}
}

// TestRingStability checks the consistent part of consistent hashing:
// removing one member only moves the keys that mapped to it.
func TestRingStability(t *testing.T) {
	members := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	full := newRing(members)
	reduced := newRing(members[:3]) // drop d
	moved := 0
	const keys = 200
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("dataset-%d", i)
		before := full.lookup(key, 1)[0]
		after := reduced.lookup(key, 1)[0]
		if before == "http://d:4" {
			continue // had to move
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d/%d keys moved despite their member surviving", moved, keys)
	}
}

func TestRingSpread(t *testing.T) {
	members := []string{"http://a:1", "http://b:2", "http://c:3"}
	r := newRing(members)
	counts := map[string]int{}
	const keys = 300
	for i := 0; i < keys; i++ {
		counts[r.lookup(fmt.Sprintf("g%d", i), 1)[0]]++
	}
	for m, n := range counts {
		if n < keys/len(members)/3 {
			t.Fatalf("member %s starves: %d of %d keys (%v)", m, n, keys, counts)
		}
	}
}
