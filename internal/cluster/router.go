package cluster

// Router is the scatter-gather front tier (cmd/searouter): a stateless HTTP
// proxy that spreads read load over a replicated seaserve cluster and
// survives the primary's death.
//
//   - Placement: each dataset maps onto a ReplicationFactor-sized replica
//     set by consistent hashing on the dataset name. Followers outside the
//     set still replicate everything (replication is whole-catalog); the
//     ring only decides who serves reads, so it stays stable when members
//     come and go.
//   - Scatter-gather: /batch splits its queries and /compare its methods
//     across the in-sync replica set, each shard under its own deadline. A
//     failed shard degrades its own items to per-item errors instead of
//     failing the request; every item is annotated with the member that
//     served it.
//   - Health: a prober polls every member's /admin/replication. A member
//     that misses FailAfter consecutive probes is dead; followers lagging
//     more than MaxLag batches leave the read set until they catch up.
//   - Failover: when the primary dies the router promotes the alive
//     follower with the highest summed cursor and re-points the rest at it.
//     Writes (/admin/*) always forward to the current primary.
//   - Fault tolerance: reads (/search and scatter shards — idempotent by
//     construction) get a bounded retry budget with jittered exponential
//     backoff, each retry preferring a different in-sync replica. Every
//     member has a circuit breaker (consecutive failures open it; after a
//     cooldown one half-open probe decides whether it closes again) so a
//     struggling member stops absorbing traffic before the prober notices.
//     Writes and admin forwards are never retried — the router cannot know
//     whether a failed write landed.

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/obs"
)

// ServedByHeader names the cluster member that actually served a proxied
// request.
const ServedByHeader = "X-Sea-Served-By"

// FanoutHeader carries the number of shards a scatter-gather request fanned
// out to.
const FanoutHeader = "X-Sea-Fanout"

// RouterConfig configures a Router. Members is required; everything else
// has serviceable defaults.
type RouterConfig struct {
	// Members are the base URLs of every cluster node, primary included.
	Members []string
	// Primary is the member writes forward to; defaults to Members[0]. The
	// router moves it on failover.
	Primary string
	// ReplicationFactor is the read-set size per dataset (default 2,
	// clamped to len(Members)).
	ReplicationFactor int
	// ShardTimeout bounds each scatter shard and health probe (default 2s).
	ShardTimeout time.Duration
	// ProbeEvery is the health-probe interval (default 1s).
	ProbeEvery time.Duration
	// FailAfter is how many consecutive probe failures mark a member dead
	// (default 3).
	FailAfter int
	// MaxLag is the most batches a follower may trail the primary and still
	// serve reads (default 8).
	MaxLag uint64
	// Retries is the per-read retry budget: how many additional attempts a
	// failed /search or scatter shard gets, each against a different in-sync
	// replica when one is available, with jittered exponential backoff
	// between attempts. 0 selects the default (2); negative disables
	// retries. Writes and admin forwards are never retried — the router
	// cannot know whether a failed write landed.
	Retries int
	// RetryBase is the first retry's backoff (default 50ms); attempt n waits
	// roughly RetryBase·2ⁿ, jittered ±50%.
	RetryBase time.Duration
	// BreakerThreshold is the consecutive outbound-call failures that open a
	// member's circuit breaker (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses traffic before
	// letting one half-open probe through (default 5s).
	BreakerCooldown time.Duration
	// HTTP optionally overrides the outbound client (nil builds one; shard
	// deadlines come from per-request contexts, not a client timeout).
	HTTP *http.Client
}

func (cfg RouterConfig) withDefaults() RouterConfig {
	if cfg.Primary == "" && len(cfg.Members) > 0 {
		cfg.Primary = cfg.Members[0]
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 2
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 2 * time.Second
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.MaxLag == 0 {
		cfg.MaxLag = 8
	}
	switch {
	case cfg.Retries == 0:
		cfg.Retries = 2
	case cfg.Retries < 0:
		cfg.Retries = 0
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{}
	}
	return cfg
}

// memberState is the router's health view of one member.
type memberState struct {
	url    string
	alive  bool
	fails  int
	status *NodeStatus // last successful probe, nil until one lands
}

// Router is an http.Handler implementing the front tier. Create with
// NewRouter, release with Close.
type Router struct {
	cfg  RouterConfig
	ring *ring
	hc   *http.Client
	// readHC is hc with the "router.shard" fault-injection site on its
	// transport: read traffic can be failed/delayed/severed by an armed
	// faults spec without also poisoning health probes and failover calls.
	readHC *http.Client
	// breakers holds one circuit breaker per member URL. The map is built in
	// NewRouter and read-only afterwards; the breakers themselves lock.
	breakers map[string]*breaker

	mu      sync.Mutex
	primary string
	members map[string]*memberState

	rr         atomic.Uint64 // round-robin cursor for single-target reads
	promotions atomic.Uint64
	shardErrs  atomic.Uint64
	retries    atomic.Uint64 // read attempts beyond the first

	// shardLat records the latency of each upstream call by path ("/batch",
	// "/compare" per shard; "/search" and "forward" per proxied request).
	// fanWidth records the per-request scatter width (shards per fan-out).
	shardLat map[string]*obs.Histogram
	fanWidth map[string]*obs.Histogram
	// trace keeps the most recent router spans for GET /debug/trace.
	trace *obs.Ring[RouterSpan]

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// routerPaths are the shardLat/fanWidth histogram keys. "forward" covers
// every primary-forwarded request (writes, admin, stats), whatever its path.
var routerPaths = []string{"/search", "/batch", "/compare", "forward"}

// RouterSpan is one request's trace record at the router: correlation id,
// route, scatter width, failed shards and the member(s) that served it.
type RouterSpan struct {
	RequestID string `json:"request_id"`
	Path      string `json:"path"`
	Graph     string `json:"graph,omitempty"`
	StartNS   int64  `json:"start_unix_ns"`
	TotalNS   int64  `json:"total_ns"`
	Fanout    int    `json:"fanout,omitempty"`
	Failures  int    `json:"failures,omitempty"`
	ServedBy  string `json:"served_by,omitempty"`
}

// Trace returns up to n router spans, newest first (n ≤ 0 returns everything
// the ring holds).
func (r *Router) Trace(n int) []RouterSpan { return r.trace.Last(n) }

// NewRouter builds a router over cfg.Members, runs one synchronous probe
// round so the first request already sees member health, and starts the
// background prober.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one member")
	}
	members := make([]string, len(cfg.Members))
	for i, m := range cfg.Members {
		members[i] = strings.TrimRight(m, "/")
	}
	cfg.Members = members
	cfg.Primary = strings.TrimRight(cfg.Primary, "/")
	readHC := *cfg.HTTP
	readHC.Transport = faults.Transport("router.shard", cfg.HTTP.Transport)
	r := &Router{
		cfg:      cfg,
		ring:     newRing(members),
		hc:       cfg.HTTP,
		readHC:   &readHC,
		breakers: make(map[string]*breaker, len(members)),
		primary:  cfg.Primary,
		members:  make(map[string]*memberState, len(members)),
		shardLat: make(map[string]*obs.Histogram, len(routerPaths)),
		fanWidth: make(map[string]*obs.Histogram, 2),
		trace:    obs.NewRing[RouterSpan](256),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, m := range members {
		r.breakers[m] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	for _, p := range routerPaths {
		r.shardLat[p] = &obs.Histogram{}
	}
	r.fanWidth["/batch"] = &obs.Histogram{}
	r.fanWidth["/compare"] = &obs.Histogram{}
	for _, m := range members {
		// Members start alive: death is an observation (FailAfter missed
		// probes), not a default — a router booted moments before its
		// cluster must not instantly promote over a primary that is still
		// starting up.
		r.members[m] = &memberState{url: m, alive: true}
	}
	r.probeOnce(context.Background(), false)
	go r.probeLoop()
	return r, nil
}

// Close stops the prober. In-flight requests finish on their own contexts.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

func (r *Router) probeLoop() {
	defer close(r.done)
	ticker := time.NewTicker(r.cfg.ProbeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			r.probeOnce(context.Background(), true)
		}
	}
}

// probeOnce polls every member's replication status and, when allowed to
// failover, promotes a follower over a dead primary.
func (r *Router) probeOnce(ctx context.Context, failover bool) {
	var wg sync.WaitGroup
	for _, url := range r.cfg.Members {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
			defer cancel()
			st, err := NewClient(url, r.hc).Status(cctx)
			r.mu.Lock()
			defer r.mu.Unlock()
			m := r.members[url]
			if err != nil {
				m.fails++
				if m.fails >= r.cfg.FailAfter {
					m.alive = false
				}
				return
			}
			m.fails = 0
			m.alive = true
			m.status = st
		}(url)
	}
	wg.Wait()
	if failover {
		r.maybeFailover(ctx)
	}
}

// maybeFailover promotes the most-caught-up alive follower when the
// primary is dead, then re-points the surviving followers at it.
func (r *Router) maybeFailover(ctx context.Context) {
	r.mu.Lock()
	if p := r.members[r.primary]; p != nil && p.alive {
		r.mu.Unlock()
		return
	}
	// Pick the alive member with the highest summed replication cursor —
	// the one that loses the fewest acknowledged batches.
	var candidate string
	var best uint64
	var survivors []string
	for _, m := range r.members {
		if !m.alive || m.url == r.primary {
			continue
		}
		survivors = append(survivors, m.url)
		var total uint64
		if m.status != nil {
			for _, ds := range m.status.Datasets {
				total += ds.Version
			}
		}
		if candidate == "" || total > best {
			candidate, best = m.url, total
		}
	}
	r.mu.Unlock()
	if candidate == "" {
		return // nobody left to promote; keep probing
	}
	cctx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
	err := NewClient(candidate, r.hc).Promote(cctx)
	cancel()
	if err != nil {
		return // next probe round retries
	}
	r.promotions.Add(1)
	r.mu.Lock()
	r.primary = candidate
	r.mu.Unlock()
	for _, url := range survivors {
		if url == candidate {
			continue
		}
		cctx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
		// Best effort: a follower that misses the re-point keeps erroring
		// against the dead primary until the next failover pass notices.
		NewClient(url, r.hc).Follow(cctx, candidate)
		cancel()
	}
}

// Primary is the member writes currently forward to.
func (r *Router) Primary() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.primary
}

// readSet is the ordered list of members that may serve reads for graph
// right now: the ring placement filtered down to alive, in-sync members,
// falling back to any alive member (and last to the primary URL itself, so
// the caller always has a target and surfaces a connection error rather
// than an empty split).
func (r *Router) readSet(graph string) []string {
	placement := r.ring.lookup(graph, r.cfg.ReplicationFactor)
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, url := range placement {
		if r.inSyncLocked(url, graph) {
			out = append(out, url)
		}
	}
	if len(out) > 0 {
		return out
	}
	for _, url := range r.cfg.Members {
		if r.inSyncLocked(url, graph) {
			out = append(out, url)
		}
	}
	if len(out) > 0 {
		return out
	}
	return []string{r.primary}
}

// inSyncLocked reports whether url may serve reads for graph; r.mu held.
func (r *Router) inSyncLocked(url, graph string) bool {
	m := r.members[url]
	if m == nil || !m.alive {
		return false
	}
	if url == r.primary {
		return true // the primary is definitionally in sync with itself
	}
	if m.status == nil {
		return false // never successfully probed; sync state unknown
	}
	if m.status.Role == RolePrimary {
		return true
	}
	for _, ds := range m.status.Datasets {
		if graph != "" && ds.Graph != graph {
			continue
		}
		if ds.LastError != "" || ds.Lag > r.cfg.MaxLag {
			return false
		}
		if graph != "" {
			return true
		}
	}
	// graph == "": the empty name resolves to the node's default dataset;
	// reaching here means no dataset disqualified the member. A named graph
	// the member has not bootstrapped yet falls through to false.
	return graph == "" && m.status != nil && len(m.status.Datasets) > 0
}

// ServeHTTP routes: scatter-gather for /batch and /compare, single in-sync
// replica for /search, the primary for everything else (writes, admin,
// stats). Every response carries an X-Request-ID, generated here when the
// client did not send one.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	id := req.Header.Get(engine.RequestIDHeader)
	if id == "" {
		id = newRequestID()
		req.Header.Set(engine.RequestIDHeader, id)
	}
	w.Header().Set(engine.RequestIDHeader, id)
	switch req.URL.Path {
	case "/healthz":
		r.serveHealth(w)
	case "/metrics":
		r.serveMetrics(w)
	case "/debug/trace":
		r.serveTrace(w, req)
	case "/batch":
		r.serveScatter(w, req, id, scatterBatch)
	case "/compare":
		r.serveScatter(w, req, id, scatterCompare)
	case "/search":
		r.serveSearch(w, req, id)
	default:
		start := time.Now()
		target := r.Primary()
		r.forward(w, req, target, id)
		ns := time.Since(start).Nanoseconds()
		r.shardLat["forward"].Observe(ns)
		r.trace.Add(RouterSpan{RequestID: id, Path: req.URL.Path,
			StartNS: start.UnixNano(), TotalNS: ns, ServedBy: target})
	}
}

// serveTrace answers GET /debug/trace?n= with the newest router spans.
func (r *Router) serveTrace(w http.ResponseWriter, req *http.Request) {
	n := 0
	if s := req.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			engine.WriteJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad n=%q", s)})
			return
		}
		n = v
	}
	spans := r.Trace(n)
	if spans == nil {
		spans = []RouterSpan{}
	}
	engine.WriteJSON(w, http.StatusOK, map[string]any{"spans": spans})
}

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "searouter-unrandom"
	}
	return hex.EncodeToString(b[:])
}

// routerError is an error originated by the router itself (as opposed to
// one proxied through from a member); it always names the request, and
// transient statuses carry a Retry-After hint so clients back off instead
// of hammering. (engine.WriteJSON adds the hint for 429/503 on its own;
// 502 is the router's to stamp.)
func routerError(w http.ResponseWriter, id string, status int, format string, args ...any) {
	if status == http.StatusBadGateway {
		w.Header().Set("Retry-After", engine.RetryAfterHint)
	}
	engine.WriteJSON(w, status, map[string]string{
		"error":      fmt.Sprintf(format, args...),
		"request_id": id,
	})
}

// errBreakersOpen is the terminal error when every read-set member's
// circuit breaker refuses the call.
var errBreakersOpen = errors.New("every member's circuit breaker is open")

// retryFailureStatus maps the terminal error of an exhausted read-retry
// budget onto the status the router reports: an upstream that answered 429
// on every attempt stays a 429 (the cluster is shedding, not broken), open
// breakers are a 503 (back off and let the cooldown run), everything else
// is a plain bad gateway.
func retryFailureStatus(err error) int {
	var ae *apiError
	if errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests {
		return http.StatusTooManyRequests
	}
	if errors.Is(err, errBreakersOpen) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadGateway
}

// cancelBody ties a retry attempt's deadline cancel to the response body's
// Close, so the per-attempt timeout stays armed while the caller streams
// the body out.
type cancelBody struct {
	rc     io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelBody) Read(p []byte) (int, error) { return c.rc.Read(p) }
func (c *cancelBody) Close() error {
	err := c.rc.Close()
	c.cancel()
	return err
}

// pickMember returns the next read target: the first candidate whose
// breaker admits a call, preferring members not tried yet this request so
// retries land on a different replica. Once every candidate has been tried
// a member may be reused — a single-node read set still gets its full
// retry budget. "" means every breaker refused.
func (r *Router) pickMember(candidates []string, tried map[string]bool) string {
	for _, url := range candidates {
		if !tried[url] && r.breakerAllows(url) {
			return url
		}
	}
	for _, url := range candidates {
		if tried[url] && r.breakerAllows(url) {
			return url
		}
	}
	return ""
}

func (r *Router) breakerAllows(url string) bool {
	b := r.breakers[url]
	return b == nil || b.Allow()
}

// tryRead issues one idempotent read with the router's retry budget:
// attempt 0 goes to the first admissible candidate, each retry to the next
// (preferring untried members), with jittered exponential backoff between
// attempts. Transport errors and 5xx responses count against the member's
// breaker and are retried; 429 is retried without a breaker penalty — a
// shedding member is alive and protecting itself, tripping its breaker
// would amplify the overload onto its peers; any other status returns as
// the result. The returned response's Body must be closed by the caller
// (closing it releases the attempt's deadline).
func (r *Router) tryRead(ctx context.Context, candidates []string,
	build func(ctx context.Context, url string) (*http.Request, error)) (*http.Response, string, error) {
	tried := make(map[string]bool, len(candidates))
	var lastErr error
	lastURL := ""
	for attempt := 0; attempt <= r.cfg.Retries; attempt++ {
		if attempt > 0 {
			r.retries.Add(1)
			select {
			case <-time.After(jitter(r.cfg.RetryBase << uint(attempt-1))):
			case <-ctx.Done():
				if lastErr == nil {
					lastErr = ctx.Err()
				}
				return nil, lastURL, lastErr
			}
		}
		url := r.pickMember(candidates, tried)
		if url == "" {
			if lastErr != nil {
				return nil, lastURL, fmt.Errorf("%w (last error: %v)", errBreakersOpen, lastErr)
			}
			return nil, lastURL, errBreakersOpen
		}
		tried[url] = true
		lastURL = url
		resp, err := r.attempt(ctx, url, build)
		if err != nil {
			lastErr = fmt.Errorf("member %s: %w", url, err)
			continue
		}
		return resp, url, nil
	}
	return nil, lastURL, lastErr
}

// attempt runs one upstream call under its own ShardTimeout deadline and
// settles the member's breaker. pickMember already consumed the breaker's
// Allow, so every path out of here must record exactly one Success or
// Failure — a half-open probe left unresolved would wedge the breaker.
func (r *Router) attempt(ctx context.Context, url string,
	build func(ctx context.Context, url string) (*http.Request, error)) (*http.Response, error) {
	b := r.breakers[url]
	cctx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
	req, err := build(cctx, url)
	if err != nil {
		cancel()
		if b != nil {
			// Never reached the member, but the probe grant must resolve;
			// failing is the conservative choice.
			b.Failure()
		}
		return nil, err
	}
	resp, err := r.readHC.Do(req)
	if err != nil {
		cancel()
		if b != nil {
			b.Failure()
		}
		return nil, err
	}
	switch {
	case resp.StatusCode >= 500:
		if b != nil {
			b.Failure()
		}
		err = errorFrom(resp)
		resp.Body.Close()
		cancel()
		return nil, err
	case resp.StatusCode == http.StatusTooManyRequests:
		if b != nil {
			b.Success()
		}
		err = errorFrom(resp)
		resp.Body.Close()
		cancel()
		return nil, err
	default:
		if b != nil {
			b.Success()
		}
		resp.Body = &cancelBody{rc: resp.Body, cancel: cancel}
		return resp, nil
	}
}

// forward proxies req verbatim to target, tagging the response with the
// member that served it.
func (r *Router) forward(w http.ResponseWriter, req *http.Request, target, id string) {
	out, err := http.NewRequestWithContext(req.Context(), req.Method,
		target+req.URL.Path+queryString(req), req.Body)
	if err != nil {
		routerError(w, id, http.StatusInternalServerError, "building upstream request: %v", err)
		return
	}
	out.Header = req.Header.Clone()
	resp, err := r.hc.Do(out)
	if err != nil {
		routerError(w, id, http.StatusBadGateway, "member %s: %v", target, err)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set(engine.RequestIDHeader, id)
	w.Header().Set(ServedByHeader, target)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func queryString(req *http.Request) string {
	if req.URL.RawQuery == "" {
		return ""
	}
	return "?" + req.URL.RawQuery
}

// serveSearch proxies a single query to one in-sync replica, round-robin
// across the dataset's read set. The body is buffered so a failed attempt
// can be retried verbatim against a different replica — /search is a pure
// read, replaying it is always safe.
func (r *Router) serveSearch(w http.ResponseWriter, req *http.Request, id string) {
	graph := req.URL.Query().Get("graph")
	var body []byte
	if req.Method != http.MethodGet {
		var err error
		body, err = io.ReadAll(io.LimitReader(req.Body, engine.MaxBodyBytes))
		if err != nil {
			routerError(w, id, http.StatusBadRequest, "reading body: %v", err)
			return
		}
		var peek struct {
			Graph string `json:"graph"`
		}
		json.Unmarshal(body, &peek)
		graph = peek.Graph
	}
	set := r.readSet(graph)
	// Rotate the read set by the round-robin cursor: attempt 0 spreads load,
	// retries walk the rest of the set.
	off := int(r.rr.Add(1)-1) % len(set)
	candidates := make([]string, 0, len(set))
	for i := range set {
		candidates = append(candidates, set[(off+i)%len(set)])
	}
	header := req.Header.Clone()
	start := time.Now()
	resp, target, err := r.tryRead(req.Context(), candidates, func(ctx context.Context, url string) (*http.Request, error) {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		out, err := http.NewRequestWithContext(ctx, req.Method, url+req.URL.Path+queryString(req), rd)
		if err != nil {
			return nil, err
		}
		out.Header = header.Clone()
		return out, nil
	})
	if err != nil {
		routerError(w, id, retryFailureStatus(err), "read failed: %v", err)
	} else {
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.Header().Set(engine.RequestIDHeader, id)
		w.Header().Set(ServedByHeader, target)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}
	ns := time.Since(start).Nanoseconds()
	r.shardLat["/search"].Observe(ns)
	r.trace.Add(RouterSpan{RequestID: id, Path: "/search", Graph: graph,
		StartNS: start.UnixNano(), TotalNS: ns, ServedBy: target})
}

// scatterPlan describes how one endpoint splits and reassembles: which
// field fans out and how shard responses merge back together.
type scatterPlan struct {
	field string // the wire field that splits across shards
	path  string
	// merge builds the client response from the per-item results (in
	// original order) and the shard responses keyed by member.
	merge func(req map[string]any, items []map[string]any, degraded bool) map[string]any
}

var scatterBatch = scatterPlan{
	field: "queries",
	path:  "/batch",
	merge: func(req map[string]any, items []map[string]any, degraded bool) map[string]any {
		out := map[string]any{"items": items}
		if degraded {
			out["degraded"] = true
		}
		return out
	},
}

var scatterCompare = scatterPlan{
	field: "methods",
	path:  "/compare",
	merge: func(req map[string]any, items []map[string]any, degraded bool) map[string]any {
		out := map[string]any{"items": items}
		if q, ok := req["q"]; ok {
			out["query"] = q
		}
		// Recompute Best across the merged set exactly as the engine does
		// per shard: among items that succeeded (or exhausted their budget
		// with a best-so-far community), smallest δ wins.
		best := -1
		for i, it := range items {
			errStr, _ := it["err"].(string)
			trunc, _ := it["truncated"].(bool)
			if errStr != "" && !trunc {
				continue
			}
			delta, ok := it["delta"].(float64)
			if !ok {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			prev, _ := items[best]["delta"].(float64)
			if delta < prev {
				best = i
			}
		}
		if best >= 0 {
			if m, ok := items[best]["method"].(string); ok {
				out["best"] = m
			}
		}
		if degraded {
			out["degraded"] = true
		}
		return out
	},
}

// serveScatter splits the request's fan-out field across the dataset's read
// set, runs the shards concurrently under per-shard deadlines, and
// reassembles the items in their original order. A failed shard degrades to
// per-item errors; only a total wipeout fails the request.
func (r *Router) serveScatter(w http.ResponseWriter, req *http.Request, id string, plan scatterPlan) {
	if req.Method != http.MethodPost {
		routerError(w, id, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body, err := io.ReadAll(io.LimitReader(req.Body, engine.MaxBodyBytes))
	if err != nil {
		routerError(w, id, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var wire map[string]any
	if err := json.Unmarshal(body, &wire); err != nil {
		routerError(w, id, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	fan, _ := wire[plan.field].([]any)
	if len(fan) == 0 {
		routerError(w, id, http.StatusBadRequest, "missing %q", plan.field)
		return
	}
	graph, _ := wire["graph"].(string)
	set := r.readSet(graph)

	// Shard i takes the fan-out entries at positions i, i+len(set),
	// i+2len(set)… — round-robin keeps the shards within one item of even.
	assign := make(map[string][]int, len(set))
	for i := range fan {
		url := set[i%len(set)]
		assign[url] = append(assign[url], i)
	}
	start := time.Now()
	r.fanWidth[plan.path].Observe(int64(len(assign)))
	w.Header().Set(FanoutHeader, strconv.Itoa(len(assign)))

	items := make([]map[string]any, len(fan))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures int
	)
	for url, idxs := range assign {
		wg.Add(1)
		go func(url string, idxs []int) {
			defer wg.Done()
			got, served, err := r.runShard(req.Context(), url, set, id, plan, wire, fan, idxs)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				r.shardErrs.Add(1)
				failures++
				for _, i := range idxs {
					items[i] = shardErrorItem(plan, fan[i], url, id, err)
				}
				return
			}
			for k, i := range idxs {
				got[k][ServedByKey] = served
				items[i] = got[k]
			}
		}(url, idxs)
	}
	wg.Wait()
	r.trace.Add(RouterSpan{RequestID: id, Path: plan.path, Graph: graph,
		StartNS: start.UnixNano(), TotalNS: time.Since(start).Nanoseconds(),
		Fanout: len(assign), Failures: failures})
	if failures == len(assign) {
		routerError(w, id, http.StatusBadGateway, "all %d shards failed; first target %s", len(assign), set[0])
		return
	}
	engine.WriteJSON(w, http.StatusOK, plan.merge(wire, items, failures > 0))
}

// ServedByKey annotates each scatter-gather item with the member that
// served it.
const ServedByKey = "served_by"

// runShard sends one shard's slice of the fan-out field to url — retrying
// against the rest of the read set on transport errors, 5xx and 429 (shard
// sub-requests are reads, replaying one is safe) — and returns its items,
// which must match the slice one-to-one, plus the member that actually
// served them.
func (r *Router) runShard(ctx context.Context, url string, set []string, id string, plan scatterPlan,
	wire map[string]any, fan []any, idxs []int) ([]map[string]any, string, error) {
	sub := make(map[string]any, len(wire))
	for k, v := range wire {
		sub[k] = v
	}
	slice := make([]any, len(idxs))
	for k, i := range idxs {
		slice[k] = fan[i]
	}
	sub[plan.field] = slice
	payload, err := json.Marshal(sub)
	if err != nil {
		return nil, url, err
	}
	// Retry candidates: the assigned member first, then the rest of the read
	// set in order.
	candidates := make([]string, 0, len(set))
	candidates = append(candidates, url)
	for _, m := range set {
		if m != url {
			candidates = append(candidates, m)
		}
	}
	// Shard latency counts failures too: a timed-out shard is exactly the
	// tail the histogram exists to expose. Retries fold into their shard's
	// observation — the client experienced the whole sequence.
	start := time.Now()
	defer r.shardLat[plan.path].ObserveSince(start)
	resp, served, err := r.tryRead(ctx, candidates, func(cctx context.Context, target string) (*http.Request, error) {
		req, err := http.NewRequestWithContext(cctx, http.MethodPost, target+plan.path, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(engine.RequestIDHeader, id)
		return req, nil
	})
	if err != nil {
		if served == "" {
			served = url
		}
		return nil, served, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, served, errorFrom(resp)
	}
	var out struct {
		Items []map[string]any `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, served, fmt.Errorf("decoding shard response: %w", err)
	}
	if len(out.Items) != len(idxs) {
		return nil, served, fmt.Errorf("shard returned %d items for %d inputs", len(out.Items), len(idxs))
	}
	return out.Items, served, nil
}

// shardErrorItem is the degraded placeholder for one item of a failed
// shard, shaped like the engine's own per-item error responses and carrying
// the request id so a degraded item can be traced end to end.
func shardErrorItem(plan scatterPlan, entry any, url, id string, err error) map[string]any {
	item := map[string]any{
		"err":        fmt.Sprintf("shard %s: %v", url, err),
		ServedByKey:  url,
		"request_id": id,
	}
	switch plan.field {
	case "queries":
		item["query"] = entry
	case "methods":
		item["method"] = entry
	}
	return item
}

// healthMember is one member's row in the router's /healthz body.
type healthMember struct {
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
	Role  string `json:"role,omitempty"`
	Fails int    `json:"fails,omitempty"`
	// Breaker is the member's circuit-breaker state: "closed" (healthy),
	// "open" (refusing traffic until the cooldown runs) or "half-open" (one
	// probe in flight deciding which way it goes).
	Breaker string `json:"breaker"`
}

// serveHealth reports the router's member view: 200 while the primary is
// alive, 503 once it is not (failover may still be in flight).
func (r *Router) serveHealth(w http.ResponseWriter) {
	r.mu.Lock()
	primary := r.primary
	members := make([]healthMember, 0, len(r.cfg.Members))
	primaryAlive := false
	for _, url := range r.cfg.Members {
		m := r.members[url]
		hm := healthMember{URL: url, Alive: m.alive, Fails: m.fails, Breaker: r.breakers[url].State()}
		if m.status != nil {
			hm.Role = m.status.Role
		}
		if url == primary && m.alive {
			primaryAlive = true
		}
		members = append(members, hm)
	}
	r.mu.Unlock()
	status := http.StatusOK
	state := "ok"
	if !primaryAlive {
		status = http.StatusServiceUnavailable
		state = "no-primary"
	}
	engine.WriteJSON(w, status, map[string]any{
		"status":  state,
		"primary": primary,
		"members": members,
	})
}

// serveMetrics exposes the router's own counters and latency histograms in
// the Prometheus text format (the members' serving metrics live on their own
// /metrics).
func (r *Router) serveMetrics(w http.ResponseWriter) {
	r.mu.Lock()
	type row struct {
		url     string
		up      int
		breaker int
	}
	rows := make([]row, 0, len(r.cfg.Members))
	for _, url := range r.cfg.Members {
		up := 0
		if r.members[url].alive {
			up = 1
		}
		rows = append(rows, row{url, up, r.breakers[url].stateValue()})
	}
	r.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP searouter_member_up Member answers health probes (1) or is considered dead (0).\n# TYPE searouter_member_up gauge\n")
	for _, row := range rows {
		fmt.Fprintf(w, "searouter_member_up{member=\"%s\"} %d\n", obs.EscapeLabel(row.url), row.up)
	}
	fmt.Fprintf(w, "# HELP searouter_breaker_state Member circuit-breaker state: 0 closed, 1 open, 2 half-open.\n# TYPE searouter_breaker_state gauge\n")
	for _, row := range rows {
		fmt.Fprintf(w, "searouter_breaker_state{member=\"%s\"} %d\n", obs.EscapeLabel(row.url), row.breaker)
	}
	fmt.Fprintf(w, "# HELP searouter_promotions_total Follower promotions performed by this router.\n# TYPE searouter_promotions_total counter\nsearouter_promotions_total %d\n", r.promotions.Load())
	fmt.Fprintf(w, "# HELP searouter_shard_errors_total Scatter shards that failed and degraded to per-item errors.\n# TYPE searouter_shard_errors_total counter\nsearouter_shard_errors_total %d\n", r.shardErrs.Load())
	fmt.Fprintf(w, "# HELP searouter_read_retries_total Read attempts beyond the first (/search and scatter shards).\n# TYPE searouter_read_retries_total counter\nsearouter_read_retries_total %d\n", r.retries.Load())
	obs.WriteHistogramHeader(w, "searouter_shard_latency_seconds",
		"Upstream call latency by route: per shard for /batch and /compare, per proxied request for /search, and every primary-forwarded request under \"forward\".")
	for _, p := range routerPaths {
		obs.WriteHistogram(w, "searouter_shard_latency_seconds",
			[]obs.Label{{Name: "path", Value: p}}, r.shardLat[p].Snapshot(), 1e-9)
	}
	obs.WriteHistogramHeader(w, "searouter_fanout_width",
		"Shards per scatter-gather request (unitless width, not seconds).")
	for _, p := range []string{"/batch", "/compare"} {
		obs.WriteHistogram(w, "searouter_fanout_width",
			[]obs.Label{{Name: "path", Value: p}}, r.fanWidth[p].Snapshot(), 1)
	}
}
