package cluster

// Fault-tolerance tests for the router's read path: retries against a
// different replica, circuit breakers opening and recovering, and the
// degradation statuses when nothing is left to retry against.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

// flakyMember is an httptest member that always answers health probes as an
// in-sync follower of primaryURL but answers every serving request with the
// configured status while broken.
func flakyMember(t *testing.T, primaryURL string, status *atomic.Int32) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == ReplicationPath {
			engine.WriteJSON(w, http.StatusOK, NodeStatus{
				Role:     RoleFollower,
				Primary:  primaryURL,
				Datasets: []ReplicaStatus{{Graph: "g"}},
			})
			return
		}
		http.Error(w, "injected member failure", int(status.Load()))
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestRouterRetryHealsShard: a member that fails every serving request
// costs nothing when retries are on — its shard replays against the
// primary and the /batch comes back whole, not degraded.
func TestRouterRetryHealsShard(t *testing.T) {
	_, pts := newPrimary(t)
	var status atomic.Int32
	status.Store(http.StatusInternalServerError)
	flaky := flakyMember(t, pts.URL, &status)
	router, err := NewRouter(RouterConfig{
		Members:           []string{pts.URL, flaky.URL},
		ReplicationFactor: 2,
		ProbeEvery:        time.Hour,
		ShardTimeout:      2 * time.Second,
		RetryBase:         time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	rts := httptest.NewServer(router)
	defer rts.Close()

	st, body, _ := postJSON(t, rts.URL+"/batch",
		`{"graph":"g","queries":[0,1,2,3],"method":"structural","k":2}`)
	if st != http.StatusOK {
		t.Fatalf("/batch: %d %v", st, body)
	}
	if body["degraded"] != nil {
		t.Fatalf("retries should have healed the shard: %v", body)
	}
	items, _ := body["items"].([]any)
	if len(items) != 4 {
		t.Fatalf("items: %d, want 4", len(items))
	}
	for _, it := range items {
		item := it.(map[string]any)
		if errStr, _ := item["err"].(string); errStr != "" {
			t.Fatalf("item failed despite a healthy replica to retry against: %v", item)
		}
		if item[ServedByKey] != pts.URL {
			t.Fatalf("item served by %v, want the healthy primary %s", item[ServedByKey], pts.URL)
		}
	}
	if router.retries.Load() == 0 {
		t.Fatal("no retries recorded; the flaky member was never even tried")
	}
}

// TestRouterSearchRetriesAndBreaker: /search keeps answering while one
// member fails everything; after enough consecutive failures the member's
// breaker opens (visible in /healthz and /metrics) so it stops absorbing
// first attempts, and once the member heals the half-open probe closes the
// breaker again.
func TestRouterSearchRetriesAndBreaker(t *testing.T) {
	_, pts := newPrimary(t)
	var status atomic.Int32
	status.Store(http.StatusInternalServerError)
	flaky := flakyMember(t, pts.URL, &status)
	router, err := NewRouter(RouterConfig{
		Members:           []string{pts.URL, flaky.URL},
		ReplicationFactor: 2,
		ProbeEvery:        time.Hour,
		ShardTimeout:      2 * time.Second,
		RetryBase:         time.Millisecond,
		BreakerThreshold:  2,
		BreakerCooldown:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	rts := httptest.NewServer(router)
	defer rts.Close()

	search := func() (int, string) {
		t.Helper()
		resp, err := http.Get(rts.URL + "/search?graph=g&q=0&method=structural&k=2")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, resp.Header.Get(ServedByHeader)
	}
	// Every request must succeed: round-robin lands half of them on the
	// flaky member first, and those retry onto the primary.
	for i := 0; i < 6; i++ {
		st, served := search()
		if st != http.StatusOK {
			t.Fatalf("/search %d: status %d", i, st)
		}
		if served != pts.URL {
			t.Fatalf("/search %d served by %q, want the healthy primary", i, served)
		}
	}
	if got := router.breakers[flaky.URL].State(); got != "open" {
		t.Fatalf("flaky member's breaker: %s, want open after consecutive failures", got)
	}
	// The open breaker is visible on both surfaces.
	resp, err := http.Get(rts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(hbody), `"breaker":"open"`) {
		t.Fatalf("/healthz shows no open breaker: %s", hbody)
	}
	resp, err = http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := fmt.Sprintf("searouter_breaker_state{member=%q} 1", flaky.URL)
	if !strings.Contains(string(mbody), want) {
		t.Fatalf("/metrics missing %s:\n%s", want, mbody)
	}

	// Heal the member and wait out the cooldown: the next requests let the
	// half-open probe through and the breaker closes.
	status.Store(http.StatusOK)
	time.Sleep(60 * time.Millisecond)
	waitFor(t, 2*time.Second, "breaker to close", func() bool {
		search()
		return router.breakers[flaky.URL].State() == "closed"
	})
}

// TestRouterAllMembersShedding: when every member answers 429 the router
// reports 429 too (with a Retry-After hint), not a bogus 502 — the cluster
// is overloaded, not broken.
func TestRouterAllMembersShedding(t *testing.T) {
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == ReplicationPath {
			engine.WriteJSON(w, http.StatusOK, NodeStatus{Role: RolePrimary,
				Datasets: []ReplicaStatus{{Graph: "g"}}})
			return
		}
		w.Header().Set("Retry-After", "1")
		engine.WriteError(w, http.StatusTooManyRequests, fmt.Errorf("overloaded"))
	}))
	defer busy.Close()
	router, err := NewRouter(RouterConfig{
		Members:      []string{busy.URL},
		ProbeEvery:   time.Hour,
		ShardTimeout: 2 * time.Second,
		Retries:      1,
		RetryBase:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	rts := httptest.NewServer(router)
	defer rts.Close()

	resp, err := http.Get(rts.URL + "/search?graph=g&q=0&method=structural&k=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status: %d, want 429 passed through", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "request_id") {
		t.Fatalf("router error carries no request_id: %s", body)
	}
}

// TestRouterBreakersOpenAnswers503: with the only member's breaker open
// and no cooldown elapsed, reads fail fast with 503 + Retry-After instead
// of hammering the broken member.
func TestRouterBreakersOpenAnswers503(t *testing.T) {
	var status atomic.Int32
	status.Store(http.StatusInternalServerError)
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == ReplicationPath {
			engine.WriteJSON(w, http.StatusOK, NodeStatus{Role: RolePrimary,
				Datasets: []ReplicaStatus{{Graph: "g"}}})
			return
		}
		http.Error(w, "down", int(status.Load()))
	}))
	defer down.Close()
	router, err := NewRouter(RouterConfig{
		Members:          []string{down.URL},
		ProbeEvery:       time.Hour,
		ShardTimeout:     2 * time.Second,
		Retries:          1,
		RetryBase:        time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	rts := httptest.NewServer(router)
	defer rts.Close()

	get := func() *http.Response {
		t.Helper()
		resp, err := http.Get(rts.URL + "/search?graph=g&q=0&method=structural&k=2")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		io.Copy(io.Discard, resp.Body)
		return resp
	}
	// First request burns the breaker threshold (attempt + retry), answering
	// 502 for the genuinely-failing upstream.
	if resp := get(); resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status while failing: %d, want 502", resp.StatusCode)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Fatal("502 without a Retry-After hint")
	}
	if got := router.breakers[down.URL].State(); got != "open" {
		t.Fatalf("breaker: %s, want open", got)
	}
	// Now the breaker refuses before any call goes out: 503, fast.
	if resp := get(); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status with open breaker: %d, want 503", resp.StatusCode)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without a Retry-After hint")
	}
}
