package cluster

import (
	"context"
	"encoding/json"

	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/mutate"
	"repro/internal/obs"
)

// testCluster is a primary, two live followers (with running sync loops),
// and a router fronting all three.
type testCluster struct {
	pcat   *catalog.Catalog
	pts    *httptest.Server
	fcats  []*catalog.Catalog
	fols   []*Follower
	ftss   []*httptest.Server
	router *Router
	rts    *httptest.Server
}

func newTestCluster(t *testing.T, cfg RouterConfig) *testCluster {
	t.Helper()
	tc := &testCluster{}
	tc.pcat, tc.pts = newPrimary(t)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for i := 0; i < 2; i++ {
		cat, fol, fts := newFollowerNode(t, tc.pts.URL)
		tc.fcats = append(tc.fcats, cat)
		tc.fols = append(tc.fols, fol)
		tc.ftss = append(tc.ftss, fts)
		go fol.Run(ctx)
	}
	cfg.Members = []string{tc.pts.URL, tc.ftss[0].URL, tc.ftss[1].URL}
	router, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	tc.router = router
	tc.rts = httptest.NewServer(router)
	t.Cleanup(tc.rts.Close)
	return tc
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func postJSON(t *testing.T, url, body string) (int, map[string]any, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var decoded map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", url, err, raw)
		}
	}
	return resp.StatusCode, decoded, resp.Header
}

// TestRouterScatterGather fans a /batch across the read set and a /compare
// across methods, checking order preservation, per-item attribution, and
// the recomputed best.
func TestRouterScatterGather(t *testing.T) {
	tc := newTestCluster(t, RouterConfig{
		ReplicationFactor: 3,
		ProbeEvery:        20 * time.Millisecond,
		ShardTimeout:      5 * time.Second,
	})

	status, body, _ := postJSON(t, tc.rts.URL+"/batch",
		`{"graph":"g","queries":[0,1,2,6,7,8],"method":"structural","k":2}`)
	if status != http.StatusOK {
		t.Fatalf("/batch: %d %v", status, body)
	}
	if body["degraded"] != nil {
		t.Fatalf("/batch degraded with all members up: %v", body)
	}
	items, _ := body["items"].([]any)
	if len(items) != 6 {
		t.Fatalf("/batch items: %d, want 6", len(items))
	}
	servers := map[string]int{}
	for i, it := range items {
		item := it.(map[string]any)
		if q, _ := item["query"].(float64); int(q) != []int{0, 1, 2, 6, 7, 8}[i] {
			t.Fatalf("item %d out of order: %v", i, item)
		}
		if errStr, _ := item["err"].(string); errStr != "" {
			t.Fatalf("item %d errored: %v", i, item)
		}
		sb, _ := item[ServedByKey].(string)
		if sb == "" {
			t.Fatalf("item %d lacks %s: %v", i, ServedByKey, item)
		}
		servers[sb]++
	}
	if len(servers) < 2 {
		t.Fatalf("scatter used %d member(s), want several: %v", len(servers), servers)
	}

	status, body, _ = postJSON(t, tc.rts.URL+"/compare",
		`{"graph":"g","q":0,"methods":["structural","sea"],"k":2,"seed":42}`)
	if status != http.StatusOK {
		t.Fatalf("/compare: %d %v", status, body)
	}
	items, _ = body["items"].([]any)
	if len(items) != 2 {
		t.Fatalf("/compare items: %d, want 2", len(items))
	}
	for i, want := range []string{"structural", "sea"} {
		item := items[i].(map[string]any)
		if m, _ := item["method"].(string); m != want {
			t.Fatalf("/compare item %d is %q, want %q", i, m, want)
		}
	}
	if best, _ := body["best"].(string); best == "" {
		t.Fatalf("/compare lost best: %v", body)
	}
	if q, _ := body["query"].(float64); int(q) != 0 {
		t.Fatalf("/compare query = %v, want 0", body["query"])
	}
}

// TestRouterWriteForwardingAndCatchUp mutates through the router and checks
// the write lands on the primary and replicates to the followers, after
// which a /search is served by a follower too.
func TestRouterWriteForwardingAndCatchUp(t *testing.T) {
	tc := newTestCluster(t, RouterConfig{
		ReplicationFactor: 3,
		ProbeEvery:        20 * time.Millisecond,
		ShardTimeout:      5 * time.Second,
	})

	status, body, hdr := postJSON(t, tc.rts.URL+"/admin/mutate",
		`{"graph":"g","deltas":[{"op":"add_edge","u":0,"v":10}]}`)
	if status != http.StatusOK {
		t.Fatalf("mutate via router: %d %v", status, body)
	}
	if sb := hdr.Get(ServedByHeader); sb != tc.pts.URL {
		t.Fatalf("mutate served by %q, want primary %q", sb, tc.pts.URL)
	}
	if v, _ := body["version"].(float64); int(v) != 1 {
		t.Fatalf("mutate result: %v", body)
	}

	waitFor(t, 5*time.Second, "followers to catch up", func() bool {
		for _, fol := range tc.fols {
			for _, st := range fol.Status() {
				if st.Version != 1 || st.Lag != 0 {
					return false
				}
			}
		}
		return true
	})

	// Hit /search until a follower serves it (round-robin over the read
	// set makes that deterministic within a few tries).
	followers := map[string]bool{tc.ftss[0].URL: true, tc.ftss[1].URL: true}
	served := map[string]bool{}
	for i := 0; i < 6; i++ {
		req, _ := http.NewRequest(http.MethodGet, tc.rts.URL+"/search?graph=g&q=0&method=structural&k=2", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/search try %d: %d", i, resp.StatusCode)
		}
		served[resp.Header.Get(ServedByHeader)] = true
	}
	anyFollower := false
	for sb := range served {
		if followers[sb] {
			anyFollower = true
		}
	}
	if !anyFollower {
		t.Fatalf("no follower served /search; served_by = %v", served)
	}
}

// TestRouterPartialDegradation pairs the primary with a member that answers
// health probes as an in-sync follower but fails every serving request, so
// its shard dies in-band: the /batch must come back 200 with that shard's
// items degraded to errors while the primary's items succeed.
func TestRouterPartialDegradation(t *testing.T) {
	_, pts := newPrimary(t)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == ReplicationPath {
			engine.WriteJSON(w, http.StatusOK, NodeStatus{
				Role:     RoleFollower,
				Primary:  pts.URL,
				Datasets: []ReplicaStatus{{Graph: "g"}},
			})
			return
		}
		http.Error(w, "shard on fire", http.StatusInternalServerError)
	}))
	defer flaky.Close()
	deadURL := flaky.URL
	router, err := NewRouter(RouterConfig{
		Members:           []string{pts.URL, deadURL},
		ReplicationFactor: 2,
		ProbeEvery:        time.Hour, // the initial probe marks it in-sync; never re-probe
		ShardTimeout:      2 * time.Second,
		Retries:           -1, // no retries: this test pins the degradation contract itself
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	rts := httptest.NewServer(router)
	defer rts.Close()

	status, body, _ := postJSON(t, rts.URL+"/batch",
		`{"graph":"g","queries":[0,1,2,3],"method":"structural","k":2}`)
	if status != http.StatusOK {
		t.Fatalf("degraded /batch: %d %v", status, body)
	}
	if body["degraded"] != true {
		t.Fatalf("degraded flag missing: %v", body)
	}
	items, _ := body["items"].([]any)
	if len(items) != 4 {
		t.Fatalf("items: %d, want 4", len(items))
	}
	good, bad := 0, 0
	for _, it := range items {
		item := it.(map[string]any)
		if errStr, _ := item["err"].(string); errStr != "" {
			if !strings.Contains(errStr, "shard "+deadURL) {
				t.Fatalf("degraded item names no shard: %v", item)
			}
			bad++
		} else {
			good++
		}
	}
	if good == 0 || bad == 0 {
		t.Fatalf("want a mix of served and degraded items, got %d/%d", good, bad)
	}
}

// TestRouterPromotesOnPrimaryDeath kills the primary and checks the router
// promotes the most-caught-up follower, keeps serving reads, and accepts
// writes again.
func TestRouterPromotesOnPrimaryDeath(t *testing.T) {
	tc := newTestCluster(t, RouterConfig{
		ReplicationFactor: 3,
		ProbeEvery:        20 * time.Millisecond,
		FailAfter:         2,
		ShardTimeout:      time.Second,
	})

	// Put some replicated state in so the candidates have real cursors.
	if _, err := tc.pcat.Mutate("g", []mutate.Delta{mutate.AddEdge(0, 10)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "followers to catch up", func() bool {
		for _, fol := range tc.fols {
			for _, st := range fol.Status() {
				if st.Version != 1 {
					return false
				}
			}
		}
		return true
	})

	oldPrimary := tc.router.Primary()
	tc.pts.CloseClientConnections()
	tc.pts.Close()
	waitFor(t, 10*time.Second, "router to promote a follower", func() bool {
		return tc.router.Primary() != oldPrimary
	})
	newPrimary := tc.router.Primary()
	if newPrimary != tc.ftss[0].URL && newPrimary != tc.ftss[1].URL {
		t.Fatalf("promoted %q, not a follower", newPrimary)
	}

	// Reads survive the failover…
	status, body, _ := postJSON(t, tc.rts.URL+"/batch",
		`{"graph":"g","queries":[0,6],"method":"structural","k":2}`)
	if status != http.StatusOK {
		t.Fatalf("post-failover /batch: %d %v", status, body)
	}
	// …and writes land on the new primary.
	waitFor(t, 5*time.Second, "new primary to accept writes", func() bool {
		st, _, _ := postJSON(t, tc.rts.URL+"/admin/mutate",
			`{"graph":"g","deltas":[{"op":"add_edge","u":1,"v":8}]}`)
		return st == http.StatusOK
	})

	// /healthz shows the new primary and a dead member.
	resp, err := http.Get(tc.rts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Primary string `json:"primary"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Primary != newPrimary {
		t.Fatalf("post-failover health: %+v", health)
	}
}

// TestRouterRequestID checks the router's correlation behavior: absent IDs
// are generated, present ones flow through to the member and back, and
// router-origin errors carry the ID in the body.
func TestRouterRequestID(t *testing.T) {
	tc := newTestCluster(t, RouterConfig{
		ReplicationFactor: 2,
		ProbeEvery:        time.Hour,
		ShardTimeout:      2 * time.Second,
	})

	// Generated when absent.
	resp, err := http.Get(tc.rts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(engine.RequestIDHeader) == "" {
		t.Fatal("router did not generate a request id")
	}

	// Propagated end to end through a proxied request.
	req, _ := http.NewRequest(http.MethodGet, tc.rts.URL+"/stats?graph=g", nil)
	req.Header.Set(engine.RequestIDHeader, "corr-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(engine.RequestIDHeader); got != "corr-42" {
		t.Fatalf("proxied request id %q, want corr-42", got)
	}

	// Included in router-origin error bodies.
	status, body, hdr := postJSON(t, tc.rts.URL+"/batch", `{"graph":"g"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("empty /batch: %d", status)
	}
	id := hdr.Get(engine.RequestIDHeader)
	if id == "" || body["request_id"] != id {
		t.Fatalf("error body request_id %v, header %q", body["request_id"], id)
	}
}

// TestMetricsExpositionStrict runs the full /metrics output of the router
// AND of a cluster node (primary, behind NewNodeHandler) through the
// parser-strictness checker, with the latency histograms populated by real
// scattered and forwarded traffic. PR 7's handlers emitted bare series
// without HELP/TYPE and %q-escaped labels; this pins the repaired output.
func TestMetricsExpositionStrict(t *testing.T) {
	tc := newTestCluster(t, RouterConfig{
		ReplicationFactor: 3,
		ProbeEvery:        20 * time.Millisecond,
		ShardTimeout:      5 * time.Second,
	})

	// Populate: one scatter (/batch), one single-replica read (/search),
	// one primary forward (/stats).
	if status, body, _ := postJSON(t, tc.rts.URL+"/batch",
		`{"graph":"g","queries":[0,1,2],"method":"structural","k":2}`); status != http.StatusOK {
		t.Fatalf("/batch: %d %v", status, body)
	}
	if status, body, _ := postJSON(t, tc.rts.URL+"/search",
		`{"graph":"g","q":0,"method":"structural","k":2}`); status != http.StatusOK {
		t.Fatalf("/search: %d %v", status, body)
	}
	scrape := func(base string) []byte {
		t.Helper()
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s/metrics: %d", base, resp.StatusCode)
		}
		return body
	}

	router := scrape(tc.rts.URL)
	if err := obs.CheckExposition(router); err != nil {
		t.Fatalf("router /metrics fails strict parsing: %v\nbody:\n%s", err, router)
	}
	for _, want := range []string{
		"# TYPE searouter_member_up gauge",
		"# TYPE searouter_shard_latency_seconds histogram",
		"# TYPE searouter_fanout_width histogram",
		`searouter_shard_latency_seconds_bucket{path="/batch",le="+Inf"}`,
		`searouter_shard_latency_seconds_count{path="/search"} 1`,
		`searouter_fanout_width_sum{path="/batch"} 3`,
	} {
		if !strings.Contains(string(router), want) {
			t.Fatalf("router /metrics lacks %q in:\n%s", want, router)
		}
	}

	node := scrape(tc.pts.URL)
	if err := obs.CheckExposition(node); err != nil {
		t.Fatalf("node /metrics fails strict parsing: %v\nbody:\n%s", err, node)
	}
	for _, want := range []string{
		"# TYPE sea_query_latency_seconds histogram",
		`sea_query_stage_latency_seconds_count{graph="g",stage="search"}`,
	} {
		if !strings.Contains(string(node), want) {
			t.Fatalf("node /metrics lacks %q in:\n%s", want, node)
		}
	}

	// The router's trace ring saw the scatter and the search.
	resp, err := http.Get(tc.rts.URL + "/debug/trace?n=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var trace struct {
		Spans []RouterSpan `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatal(err)
	}
	paths := map[string]bool{}
	for _, s := range trace.Spans {
		paths[s.Path] = true
		if s.RequestID == "" {
			t.Fatalf("router span lacks request id: %+v", s)
		}
	}
	if !paths["/batch"] || !paths["/search"] {
		t.Fatalf("trace ring lacks /batch or /search spans: %v", paths)
	}
}
