// Package cohesive defines the interface shared by the k-core and k-truss
// maintenance structures. Community-search algorithms peel nodes from a
// cohesive subgraph one at a time; deleting a node may cascade (other nodes
// or edges drop below the structural threshold) and must be reversible so
// that branch-and-bound enumeration can backtrack.
package cohesive

import "repro/internal/graph"

// Maintainer maintains a connected cohesive subgraph (a connected k-core or
// k-truss) around a query node under node deletions with rollback.
type Maintainer interface {
	// Query returns the query node the community must contain.
	Query() graph.NodeID
	// Size returns the number of alive nodes.
	Size() int
	// Alive reports whether v is currently in the subgraph.
	Alive(v graph.NodeID) bool
	// Members appends the alive nodes to dst and returns it.
	Members(dst []graph.NodeID) []graph.NodeID
	// RemoveCascade deletes v, cascades structural violations, and restricts
	// the subgraph to the query's connected component. It returns every node
	// removed (v first) and whether the query survived. If the query did not
	// survive the caller must still Restore the returned nodes.
	RemoveCascade(v graph.NodeID) (removed []graph.NodeID, qAlive bool)
	// Restore re-inserts nodes previously returned by RemoveCascade. The
	// slice must be passed back unmodified, most recent removal first.
	Restore(removed []graph.NodeID)
}
