package cohesive_test

// Conformance suite run against every Maintainer implementation: the same
// behavioural contract, checked for k-core and k-truss.

import (
	"math/rand"
	"testing"

	"repro/internal/cohesive"
	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/truss"
)

// randomDense returns a dense random graph.
func randomDense(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, 0)
	for i := 0; i < 5*n; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return b.MustBuild()
}

type factory struct {
	name  string
	k     int
	build func(g *graph.Graph, q graph.NodeID) (cohesive.Maintainer, bool)
}

func factories() []factory {
	return []factory{
		{"kcore", 3, func(g *graph.Graph, q graph.NodeID) (cohesive.Maintainer, bool) {
			members := kcore.MaximalConnectedKCore(g, q, 3)
			if members == nil {
				return nil, false
			}
			m, err := kcore.NewSub(g, q, 3, members)
			if err != nil {
				return nil, false
			}
			return m, true
		}},
		{"truss", 3, func(g *graph.Graph, q graph.NodeID) (cohesive.Maintainer, bool) {
			members := truss.MaximalConnectedKTruss(g, q, 3)
			if members == nil {
				return nil, false
			}
			m, err := truss.NewSub(g, q, 3, members)
			if err != nil {
				return nil, false
			}
			return m, true
		}},
	}
}

func TestConformance(t *testing.T) {
	for _, f := range factories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			found := 0
			for seed := int64(0); seed < 20; seed++ {
				g := randomDense(seed, 14)
				rng := rand.New(rand.NewSource(seed))
				q := graph.NodeID(rng.Intn(g.NumNodes()))
				m, ok := f.build(g, q)
				if !ok {
					continue
				}
				found++
				checkContract(t, m, q, rng)
			}
			if found == 0 {
				t.Fatalf("%s: no structure found on any seed", f.name)
			}
		})
	}
}

// checkContract exercises the Maintainer contract on one instance.
func checkContract(t *testing.T, m cohesive.Maintainer, q graph.NodeID, rng *rand.Rand) {
	t.Helper()
	if m.Query() != q {
		t.Fatalf("Query() = %d, want %d", m.Query(), q)
	}
	members := m.Members(nil)
	if len(members) != m.Size() {
		t.Fatalf("Members len %d != Size %d", len(members), m.Size())
	}
	for _, v := range members {
		if !m.Alive(v) {
			t.Fatalf("member %d not Alive", v)
		}
	}
	hasQ := false
	for _, v := range members {
		if v == q {
			hasQ = true
		}
	}
	if !hasQ {
		t.Fatal("query not a member")
	}

	// Nested remove/restore must be an exact inverse (LIFO discipline).
	type frame struct{ removed []graph.NodeID }
	var stack []frame
	sizes := []int{m.Size()}
	depth := 3
	for d := 0; d < depth; d++ {
		cur := m.Members(nil)
		var v graph.NodeID = -1
		for _, cand := range cur {
			if cand != q {
				v = cand
				break
			}
		}
		if v < 0 {
			break
		}
		removed, qAlive := m.RemoveCascade(v)
		stack = append(stack, frame{removed})
		if !qAlive {
			break
		}
		sizes = append(sizes, m.Size())
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		m.Restore(f.removed)
		if m.Size() != sizes[len(stack)] {
			t.Fatalf("size after restore = %d, want %d", m.Size(), sizes[len(stack)])
		}
	}
	after := m.Members(nil)
	if len(after) != len(members) {
		t.Fatalf("members after full restore: %d, want %d", len(after), len(members))
	}
	// Removing a dead node is a no-op that still restores cleanly.
	all := m.Members(nil)
	var nonMember graph.NodeID = -1
	for v := graph.NodeID(0); int(v) < 14; v++ {
		if !m.Alive(v) {
			nonMember = v
			break
		}
	}
	if nonMember >= 0 {
		removed, _ := m.RemoveCascade(nonMember)
		if len(removed) != 0 {
			t.Fatalf("removing dead node removed %v", removed)
		}
		m.Restore(removed)
		if m.Size() != len(all) {
			t.Fatal("no-op remove/restore changed size")
		}
	}
}
