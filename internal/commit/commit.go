// Package commit implements per-dataset group commit for the write path: a
// Batcher coalesces concurrent mutation requests into one flush — one
// journal record, one incremental-maintenance session, one published engine
// generation — so the fsync and the core/truss promote/demote cascades
// amortize across every caller that arrived while the previous flush was on
// disk.
//
// Submit enqueues one caller's delta group on a bounded queue and blocks on
// a per-caller result channel until its flush commits. The flusher goroutine
// drains the queue into batches of at most Config.MaxBatch groups: under
// concurrency, batches grow naturally to whatever queued while the previous
// flush ran (group commit without added latency); Config.MaxWait > 0
// additionally holds an incomplete batch open for companions. A full queue
// sheds immediately with cserr.ErrOverloaded — the HTTP layer's 429 +
// Retry-After — and a shed request was never enqueued, so nothing the
// batcher acknowledged is ever lost.
//
// The batcher knows nothing about engines or journals: the owner supplies a
// Flush callback that applies one batch and reports one Result per group.
// Fault-injection sites: "commit.enqueue" fails Submit before the request
// enqueues; "commit.flush" fails a whole flush before the callback runs —
// every waiter in the batch fails closed, nothing partially applies.
package commit

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cserr"
	"repro/internal/faults"
	"repro/internal/mutate"
	"repro/internal/obs"
)

// Defaults for the zero Config.
const (
	DefaultMaxBatch = 64
	DefaultQueue    = 256
)

// ErrClosed reports a Submit on a closed Batcher (the dataset was unmounted
// or the catalog closed while the request was in flight).
var ErrClosed = errors.New("commit: batcher closed")

// Config are the group-commit knobs of one Batcher.
type Config struct {
	// MaxBatch caps the groups coalesced into one flush (default 64).
	MaxBatch int
	// MaxWait holds an incomplete batch open this long for companions.
	// 0 (the default) flushes as soon as the queue stops yielding: batching
	// then comes entirely from requests that queued while the previous
	// flush ran, and an uncontended caller pays no added latency.
	MaxWait time.Duration
	// Queue bounds the submit queue (default 256). A Submit beyond it sheds
	// with cserr.ErrOverloaded instead of queueing without bound.
	Queue int
}

// withDefaults resolves the zero value to the documented defaults.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.Queue <= 0 {
		c.Queue = DefaultQueue
	}
	if c.MaxWait < 0 {
		c.MaxWait = 0
	}
	return c
}

// Result is one group's outcome of a flush, as reported by the Flush
// callback: Value is the caller-visible result (may be non-nil even when
// Err is — an applied-but-not-durable group carries both), Err fails the
// group's waiter.
type Result struct {
	Value any
	Err   error
}

// Flush applies one coalesced batch and returns exactly one Result per
// group, index-aligned. It runs on the flusher goroutine, serialized with
// every other flush of the same Batcher.
type Flush func(groups [][]mutate.Delta) []Result

// SubmitStats are the batch-level timings a Submit observed: when its group
// was enqueued, how long it queued before its flush started, how long the
// flush took, and how many groups the flush coalesced.
type SubmitStats struct {
	Enqueued  time.Time
	QueueNS   int64
	FlushNS   int64
	BatchSize int
}

// pending is one enqueued request: a delta group plus the channel its
// result comes back on. A drain sentinel (deltas nil, drained non-nil)
// flushes everything ahead of it and signals instead of expecting a result.
type pending struct {
	deltas  []mutate.Delta
	enq     time.Time
	done    chan submitOutcome
	drained chan struct{}
}

type submitOutcome struct {
	res   Result
	stats SubmitStats
}

// Batcher coalesces Submit calls into group-commit flushes. Create with
// New; Close before discarding (the flusher is a goroutine).
type Batcher struct {
	cfg   Config
	flush Flush

	mu     sync.RWMutex // guards closed vs. the channel send in Submit
	closed bool
	ch     chan *pending
	done   chan struct{} // closed when the flusher exits

	submitted atomic.Uint64
	shed      atomic.Uint64
	flushes   atomic.Uint64
	failures  atomic.Uint64 // groups whose waiter was failed

	batchSize obs.Histogram // groups per flush
	queueWait obs.Histogram // ns from enqueue to flush start
	flushLat  obs.Histogram // ns per flush (callback duration)
}

// New starts a Batcher flushing through flush. The zero Config takes the
// documented defaults.
func New(cfg Config, flush Flush) *Batcher {
	b := &Batcher{
		cfg:   cfg.withDefaults(),
		flush: flush,
		done:  make(chan struct{}),
	}
	b.ch = make(chan *pending, b.cfg.Queue)
	go b.run()
	return b
}

// Submit enqueues one delta group and blocks until its flush commits,
// returning the group's Result value, the batch-level timings, and the
// group's error. A full queue sheds immediately with cserr.ErrOverloaded
// (never enqueued, safe to retry); a closed batcher reports ErrClosed. Once
// enqueued, Submit always returns the flush's verdict — an acknowledged
// group is never dropped.
func (b *Batcher) Submit(deltas []mutate.Delta) (any, SubmitStats, error) {
	if err := faults.Check("commit.enqueue"); err != nil {
		return nil, SubmitStats{}, err
	}
	p := &pending{deltas: deltas, enq: time.Now(), done: make(chan submitOutcome, 1)}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, SubmitStats{}, ErrClosed
	}
	select {
	case b.ch <- p:
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		b.shed.Add(1)
		return nil, SubmitStats{}, fmt.Errorf("%w (commit queue full at %d)", cserr.ErrOverloaded, b.cfg.Queue)
	}
	b.submitted.Add(1)
	out := <-p.done
	return out.res.Value, out.stats, out.res.Err
}

// Drain blocks until every request enqueued before the call has flushed.
// Compaction and hot-swaps drain the batcher so no flush lands astride the
// journal reset.
func (b *Batcher) Drain() {
	s := &pending{drained: make(chan struct{})}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		<-b.done // closing drains; wait for the flusher to finish
		return
	}
	b.ch <- s // blocking: a full queue drains ahead of the sentinel
	b.mu.RUnlock()
	<-s.drained
}

// Close stops the batcher: no further Submit is accepted, everything
// already enqueued flushes, then the flusher exits. Idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	close(b.ch) // buffered requests still drain before the flusher sees EOF
	b.mu.Unlock()
	<-b.done
}

// run is the flusher goroutine: block for the first pending, sweep the
// queue for companions (bounded by MaxBatch, optionally held open MaxWait),
// flush, deliver, repeat.
func (b *Batcher) run() {
	defer close(b.done)
	for {
		p, ok := <-b.ch
		if !ok {
			return
		}
		if p.drained != nil {
			close(p.drained)
			continue
		}
		batch := []*pending{p}
		var sentinel *pending
		if b.cfg.MaxWait > 0 {
			timer := time.NewTimer(b.cfg.MaxWait)
		held:
			for len(batch) < b.cfg.MaxBatch {
				select {
				case q, ok := <-b.ch:
					if !ok {
						break held
					}
					if q.drained != nil {
						sentinel = q
						break held
					}
					batch = append(batch, q)
				case <-timer.C:
					break held
				}
			}
			timer.Stop()
		} else {
		sweep:
			for len(batch) < b.cfg.MaxBatch {
				select {
				case q, ok := <-b.ch:
					if !ok {
						break sweep
					}
					if q.drained != nil {
						sentinel = q
						break sweep
					}
					batch = append(batch, q)
				default:
					break sweep
				}
			}
		}
		b.flushBatch(batch)
		if sentinel != nil {
			close(sentinel.drained)
		}
	}
}

// flushBatch runs one flush and delivers every waiter's result.
func (b *Batcher) flushBatch(batch []*pending) {
	start := time.Now()
	b.batchSize.Observe(int64(len(batch)))
	for _, p := range batch {
		b.queueWait.Observe(start.Sub(p.enq).Nanoseconds())
	}

	var results []Result
	if err := faults.Check("commit.flush"); err != nil {
		// The flush failed before anything could apply: every waiter in the
		// batch fails closed, no group partially applied.
		results = make([]Result, len(batch))
		for i := range results {
			results[i] = Result{Err: fmt.Errorf("commit: flush failed: %w", err)}
		}
	} else {
		groups := make([][]mutate.Delta, len(batch))
		for i, p := range batch {
			groups[i] = p.deltas
		}
		results = b.flush(groups)
		if len(results) != len(batch) {
			err := fmt.Errorf("commit: flush returned %d results for %d groups", len(results), len(batch))
			results = make([]Result, len(batch))
			for i := range results {
				results[i] = Result{Err: err}
			}
		}
	}
	flushNS := time.Since(start).Nanoseconds()
	b.flushLat.Observe(flushNS)
	b.flushes.Add(1)

	for i, p := range batch {
		if results[i].Err != nil {
			b.failures.Add(1)
		}
		p.done <- submitOutcome{
			res: results[i],
			stats: SubmitStats{
				Enqueued:  p.enq,
				QueueNS:   start.Sub(p.enq).Nanoseconds(),
				FlushNS:   flushNS,
				BatchSize: len(batch),
			},
		}
	}
}

// Stats is a point-in-time snapshot of the batcher's counters and
// histograms. The histogram snapshots are exposed on /metrics
// (sea_commit_batch_size, sea_commit_queue_wait_seconds,
// sea_commit_flush_seconds); Summary flattens everything for /stats JSON.
type Stats struct {
	Submitted uint64 `json:"submitted"`
	Shed      uint64 `json:"shed"`
	Flushes   uint64 `json:"flushes"`
	Failures  uint64 `json:"failures"`
	// QueueDepth is the instantaneous submit-queue occupancy.
	QueueDepth int `json:"queue_depth"`
	// MaxBatch/QueueCap echo the resolved config so operators can read the
	// knobs off a running process.
	MaxBatch int `json:"max_batch"`
	QueueCap int `json:"queue_cap"`

	BatchSize obs.Snapshot `json:"-"` // groups per flush (unit-less)
	QueueWait obs.Snapshot `json:"-"` // ns, enqueue → flush start
	FlushLat  obs.Snapshot `json:"-"` // ns per flush
}

// Stats snapshots the batcher.
func (b *Batcher) Stats() Stats {
	return Stats{
		Submitted:  b.submitted.Load(),
		Shed:       b.shed.Load(),
		Flushes:    b.flushes.Load(),
		Failures:   b.failures.Load(),
		QueueDepth: len(b.ch),
		MaxBatch:   b.cfg.MaxBatch,
		QueueCap:   b.cfg.Queue,
		BatchSize:  b.batchSize.Snapshot(),
		QueueWait:  b.queueWait.Snapshot(),
		FlushLat:   b.flushLat.Snapshot(),
	}
}

// Summary is the JSON digest of Stats for /stats: counters plus batch-size
// distribution and the queue-wait/flush latency percentiles in µs.
type Summary struct {
	Submitted  uint64  `json:"submitted"`
	Shed       uint64  `json:"shed"`
	Flushes    uint64  `json:"flushes"`
	Failures   uint64  `json:"failures,omitempty"`
	QueueDepth int     `json:"queue_depth"`
	MaxBatch   int     `json:"max_batch"`
	QueueCap   int     `json:"queue_cap"`
	BatchMean  float64 `json:"batch_mean"`
	BatchMax   uint64  `json:"batch_max"`

	QueueWait obs.Summary `json:"queue_wait"`
	FlushLat  obs.Summary `json:"flush"`
}

// Summary flattens the snapshot for JSON.
func (s Stats) Summary() Summary {
	return Summary{
		Submitted:  s.Submitted,
		Shed:       s.Shed,
		Flushes:    s.Flushes,
		Failures:   s.Failures,
		QueueDepth: s.QueueDepth,
		MaxBatch:   s.MaxBatch,
		QueueCap:   s.QueueCap,
		BatchMean:  s.BatchSize.Mean(),
		BatchMax:   s.BatchSize.Max(),
		QueueWait:  s.QueueWait.Summary(),
		FlushLat:   s.FlushLat.Summary(),
	}
}
