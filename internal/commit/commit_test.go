package commit

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cserr"
	"repro/internal/faults"
	"repro/internal/mutate"
)

// echoFlush returns a Flush that answers each group with its own length and
// records every batch it saw.
func echoFlush() (Flush, *[][]int) {
	var mu sync.Mutex
	batches := &[][]int{}
	return func(groups [][]mutate.Delta) []Result {
		sizes := make([]int, len(groups))
		results := make([]Result, len(groups))
		for i, g := range groups {
			sizes[i] = len(g)
			results[i] = Result{Value: len(g)}
		}
		mu.Lock()
		*batches = append(*batches, sizes)
		mu.Unlock()
		return results
	}, batches
}

func deltas(n int) []mutate.Delta {
	ds := make([]mutate.Delta, n)
	for i := range ds {
		ds[i] = mutate.Delta{Op: mutate.OpSetAttr, U: 0, Text: []string{"t"}}
	}
	return ds
}

// TestSubmitReturnsGroupResult proves the basic contract: one Submit, one
// flush, the caller gets its group's Result value and batch stats.
func TestSubmitReturnsGroupResult(t *testing.T) {
	flush, _ := echoFlush()
	b := New(Config{}, flush)
	defer b.Close()
	val, stats, err := b.Submit(deltas(3))
	if err != nil {
		t.Fatal(err)
	}
	if val.(int) != 3 {
		t.Fatalf("value %v, want the group length 3", val)
	}
	if stats.BatchSize < 1 {
		t.Fatalf("stats must record a batch size: %+v", stats)
	}
	if stats.Enqueued.IsZero() {
		t.Fatalf("stats must carry the enqueue timestamp: %+v", stats)
	}
	s := b.Stats()
	if s.Submitted != 1 || s.Flushes < 1 {
		t.Fatalf("counters: %+v", s)
	}
}

// TestConcurrentSubmitsCoalesce holds the flusher on the first flush while
// companions queue, then verifies a later flush carried more than one group
// — the group-commit effect — and that every caller got exactly its own
// result back.
func TestConcurrentSubmitsCoalesce(t *testing.T) {
	release := make(chan struct{})
	first := true
	var maxBatch atomic.Int64
	b := New(Config{}, func(groups [][]mutate.Delta) []Result {
		if first {
			first = false // flusher goroutine: no race
			<-release
		}
		if n := int64(len(groups)); n > maxBatch.Load() {
			maxBatch.Store(n)
		}
		results := make([]Result, len(groups))
		for i, g := range groups {
			results[i] = Result{Value: len(g)}
		}
		return results
	})
	defer b.Close()

	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	vals := make([]any, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals[w], _, errs[w] = b.Submit(deltas(w + 1))
		}(w)
	}
	// Wait until every writer has enqueued (or is the held flush), then
	// release: everything that queued behind the held flush must coalesce.
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().Submitted < writers {
		if time.Now().After(deadline) {
			t.Fatal("writers did not all enqueue")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for w := 0; w < writers; w++ {
		if errs[w] != nil {
			t.Fatalf("writer %d: %v", w, errs[w])
		}
		if vals[w].(int) != w+1 {
			t.Fatalf("writer %d got value %v, want its own group length %d", w, vals[w], w+1)
		}
	}
	if maxBatch.Load() < 2 {
		t.Fatalf("no flush coalesced concurrent groups (max batch %d)", maxBatch.Load())
	}
}

// TestMaxBatchCapsFlush proves no flush ever exceeds MaxBatch groups.
func TestMaxBatchCapsFlush(t *testing.T) {
	release := make(chan struct{})
	first := true
	var over atomic.Bool
	b := New(Config{MaxBatch: 2}, func(groups [][]mutate.Delta) []Result {
		if first {
			first = false
			<-release
		}
		if len(groups) > 2 {
			over.Store(true)
		}
		results := make([]Result, len(groups))
		for i := range results {
			results[i] = Result{Value: len(groups[i])}
		}
		return results
	})
	defer b.Close()
	var wg sync.WaitGroup
	for w := 0; w < 7; w++ {
		wg.Add(1)
		go func() { defer wg.Done(); b.Submit(deltas(1)) }()
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().Submitted < 7 {
		if time.Now().After(deadline) {
			t.Fatal("writers did not all enqueue")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if over.Load() {
		t.Fatal("a flush exceeded MaxBatch=2 groups")
	}
}

// TestMaxWaitFlushesIncompleteBatch proves a lone group still flushes once
// MaxWait expires, without a companion ever arriving.
func TestMaxWaitFlushesIncompleteBatch(t *testing.T) {
	flush, _ := echoFlush()
	b := New(Config{MaxBatch: 64, MaxWait: 5 * time.Millisecond}, flush)
	defer b.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, _, err := b.Submit(deltas(1)); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("lone Submit under MaxWait never flushed")
	}
}

// TestQueueFullShedsOverloaded fills the queue behind a blocked flush and
// proves the overflow Submit sheds immediately with cserr.ErrOverloaded —
// and that nothing the batcher acknowledged is lost: every enqueued group
// still commits after the flusher resumes.
func TestQueueFullShedsOverloaded(t *testing.T) {
	release := make(chan struct{})
	first := true
	flush := func(groups [][]mutate.Delta) []Result {
		if first {
			first = false
			<-release
		}
		results := make([]Result, len(groups))
		for i := range results {
			results[i] = Result{Value: true}
		}
		return results
	}
	b := New(Config{Queue: 2}, flush)
	defer b.Close()

	// Occupy the flusher, then fill the queue.
	var wg sync.WaitGroup
	acked := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, acked[i] = b.Submit(deltas(1))
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().QueueDepth < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %+v", b.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	_, _, err := b.Submit(deltas(1))
	if !errors.Is(err, cserr.ErrOverloaded) {
		t.Fatalf("overflow Submit: %v, want ErrOverloaded", err)
	}
	if b.Stats().Shed != 1 {
		t.Fatalf("shed counter: %+v", b.Stats())
	}

	close(release)
	wg.Wait()
	for i, err := range acked {
		if err != nil {
			t.Fatalf("acknowledged group %d was lost: %v", i, err)
		}
	}
}

// TestDrainWaitsForEnqueued proves Drain returns only after everything
// enqueued before it has flushed.
func TestDrainWaitsForEnqueued(t *testing.T) {
	var flushed atomic.Int64
	release := make(chan struct{})
	first := true
	b := New(Config{}, func(groups [][]mutate.Delta) []Result {
		if first {
			first = false
			<-release
		}
		flushed.Add(int64(len(groups)))
		results := make([]Result, len(groups))
		for i := range results {
			results[i] = Result{}
		}
		return results
	})
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); b.Submit(deltas(1)) }()
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().Submitted < 4 {
		if time.Now().After(deadline) {
			t.Fatal("writers did not all enqueue")
		}
		time.Sleep(time.Millisecond)
	}
	go func() { time.Sleep(5 * time.Millisecond); close(release) }()
	b.Drain()
	if flushed.Load() != 4 {
		t.Fatalf("Drain returned with %d of 4 groups flushed", flushed.Load())
	}
	wg.Wait()
}

// TestCloseFlushesPendingThenRefuses proves Close drains what was
// acknowledged and later Submits fail with ErrClosed.
func TestCloseFlushesPendingThenRefuses(t *testing.T) {
	flush, batches := echoFlush()
	b := New(Config{}, flush)
	if _, _, err := b.Submit(deltas(2)); err != nil {
		t.Fatal(err)
	}
	b.Close()
	b.Close() // idempotent
	if len(*batches) == 0 {
		t.Fatal("the pre-close group never flushed")
	}
	if _, _, err := b.Submit(deltas(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	if b.Drain(); false {
		t.Fatal("unreachable")
	}
}

// TestFlushLengthMismatchFailsBatch proves a Flush callback returning the
// wrong result count fails every waiter instead of misdelivering.
func TestFlushLengthMismatchFailsBatch(t *testing.T) {
	b := New(Config{}, func(groups [][]mutate.Delta) []Result {
		return nil // wrong: must be one Result per group
	})
	defer b.Close()
	if _, _, err := b.Submit(deltas(1)); err == nil {
		t.Fatal("mismatched flush result count must fail the waiter")
	}
	if b.Stats().Failures != 1 {
		t.Fatalf("failure counter: %+v", b.Stats())
	}
}

// TestEnqueueFaultSite proves the commit.enqueue fault site fails Submit
// before anything enqueues.
func TestEnqueueFaultSite(t *testing.T) {
	flush, batches := echoFlush()
	b := New(Config{}, flush)
	defer b.Close()
	faults.Enable(1, faults.Spec{Site: "commit.enqueue", Count: 1, Err: "eio"})
	defer faults.Disable()
	_, _, err := b.Submit(deltas(1))
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Submit under commit.enqueue fault: %v", err)
	}
	if b.Stats().Submitted != 0 || len(*batches) != 0 {
		t.Fatalf("a faulted enqueue must not reach the queue: %+v", b.Stats())
	}
}

// TestFlushFaultFailsEveryWaiterClosed proves the commit.flush fault site
// fails the whole batch before the callback runs: every waiter gets the
// error, nothing partially applies.
func TestFlushFaultFailsEveryWaiterClosed(t *testing.T) {
	var ran atomic.Bool
	b := New(Config{}, func(groups [][]mutate.Delta) []Result {
		ran.Store(true)
		results := make([]Result, len(groups))
		for i := range results {
			results[i] = Result{}
		}
		return results
	})
	defer b.Close()
	faults.Enable(1, faults.Spec{Site: "commit.flush", Count: 3, Err: "eio"})
	defer faults.Disable()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = b.Submit(deltas(1))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("waiter %d: %v, want the injected flush fault", i, err)
		}
	}
	if ran.Load() {
		t.Fatal("the flush callback ran despite the commit.flush fault")
	}
	if got := b.Stats().Failures; got != 3 {
		t.Fatalf("failures %d, want 3", got)
	}
}

// TestSubmittedNeverLostUnderChurn hammers the batcher with concurrent
// writers and random timing and proves conservation: every Submit either
// sheds (ErrOverloaded, never enqueued) or its group reaches exactly one
// flush.
func TestSubmittedNeverLostUnderChurn(t *testing.T) {
	var delivered atomic.Int64
	b := New(Config{MaxBatch: 4, Queue: 8}, func(groups [][]mutate.Delta) []Result {
		delivered.Add(int64(len(groups)))
		results := make([]Result, len(groups))
		for i := range results {
			results[i] = Result{}
		}
		return results
	})
	var accepted, shed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, _, err := b.Submit(deltas(1))
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, cserr.ErrOverloaded):
					shed.Add(1)
				default:
					t.Errorf("writer %d: unexpected error %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.Close()
	if got, want := delivered.Load(), accepted.Load(); got != want {
		t.Fatalf("flushed %d groups, acknowledged %d — conservation violated (shed %d)",
			got, want, shed.Load())
	}
	if total := accepted.Load() + shed.Load(); total != 16*50 {
		t.Fatalf("accounted %d of %d submits", total, 16*50)
	}
}

// TestStatsSummaryShape sanity-checks the JSON digest wiring.
func TestStatsSummaryShape(t *testing.T) {
	flush, _ := echoFlush()
	b := New(Config{MaxBatch: 7, Queue: 9}, flush)
	defer b.Close()
	for i := 0; i < 5; i++ {
		if _, _, err := b.Submit(deltas(1)); err != nil {
			t.Fatal(err)
		}
	}
	s := b.Stats().Summary()
	if s.MaxBatch != 7 || s.QueueCap != 9 {
		t.Fatalf("config echo: %+v", s)
	}
	if s.Submitted != 5 || s.BatchMean < 1 || s.QueueWait.Count != 5 || s.FlushLat.Count == 0 {
		t.Fatalf("summary: %+v", s)
	}
	if fmt.Sprint(s.BatchMax) == "" {
		t.Fatal("unreachable")
	}
}
