// Package cserr defines the error taxonomy shared by every community-search
// method in this module. The SEA pipeline, the exact branch-and-bound, and
// the ACQ/LocATC/VAC/EVAC baselines historically each declared their own
// sentinel errors; a caller comparing methods (the Engine, the /compare HTTP
// endpoint, the CLI) had to know which package produced an error to classify
// it. Every method-level package now aliases its sentinels to the ones here,
// so a single errors.Is check classifies an outcome regardless of the method
// that produced it:
//
//	errors.Is(err, cserr.ErrNoCommunity)     // no qualifying community exists
//	errors.Is(err, cserr.ErrBudgetExhausted) // search truncated by a state budget
//	errors.Is(err, cserr.ErrInvalidRequest)  // the request itself is malformed
//
// Interrupted searches (deadline, client disconnect) are reported by wrapping
// the context's own error, so errors.Is(err, context.DeadlineExceeded) and
// errors.Is(err, context.Canceled) classify them; no extra sentinel exists.
package cserr

import (
	"errors"
	"fmt"
)

// ErrNoCommunity reports that no community satisfying the structural (and
// size) constraints exists around the query node. It is definitive: no
// budget or parameter change short of relaxing the constraints can help.
var ErrNoCommunity = errors.New("community search: no community satisfying the constraints")

// ErrBudgetExhausted reports that a state budget cut an exact search short.
// The accompanying result still carries the best community found, so callers
// may treat it as a valid (if unproven) answer.
var ErrBudgetExhausted = errors.New("community search: state budget exhausted")

// ErrInvalidRequest reports a malformed request: bad parameters, an unknown
// method, a method/model combination that is not supported, or a query node
// outside the graph. The HTTP layer maps it to 400 Bad Request.
var ErrInvalidRequest = errors.New("community search: invalid request")

// ErrSnapshotVersion reports a snapshot whose format version this build does
// not understand (written by a newer build, or not a snapshot at all when
// the magic is wrong). Re-pack the dataset from its text form.
var ErrSnapshotVersion = errors.New("snapshot: unsupported format")

// ErrSnapshotCorrupt reports a snapshot that fails its checksum or whose
// decoded structure is inconsistent (truncated file, flipped bits, arrays
// that disagree with each other). The snapshot must be regenerated.
var ErrSnapshotCorrupt = errors.New("snapshot: corrupt")

// ErrUnknownGraph reports a request naming a dataset the catalog has not
// mounted. The HTTP layer maps it to 404 Not Found; /graphs lists the
// datasets that exist.
var ErrUnknownGraph = errors.New("catalog: unknown graph")

// ErrOverloaded reports a request shed by admission control: the serving
// engine already has its configured maximum of searches in flight, and
// failing fast beats queueing unboundedly (the queue would only push p99
// past every deadline). The condition is transient — the HTTP layer maps it
// to 429 Too Many Requests with a Retry-After hint, and the router may retry
// another replica.
var ErrOverloaded = errors.New("community search: overloaded, request shed")

// Invalidf builds an error wrapping ErrInvalidRequest with a detail message
// formatted by fmt.Sprintf. The %w verb is NOT supported — a cause passed
// to it is flattened into text, not wrapped; format causes with %v.
func Invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidRequest, fmt.Sprintf(format, args...))
}

// Interruptedf wraps a context error with a formatted prefix describing
// where the search was when it stopped. cause must be non-nil (typically
// ctx.Err()); the result satisfies errors.Is against cause.
func Interruptedf(cause error, format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), cause)
}
