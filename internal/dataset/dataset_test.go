package dataset

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/kcore"
)

func TestGenerateBasicInvariants(t *testing.T) {
	d, err := Generate(Spec{
		Name: "t", Nodes: 500, MinCommunity: 10, MaxCommunity: 30,
		IntraDegree: 8, InterDegree: 1,
		TokensPerNode: 4, PoolSize: 5, Vocab: 60, NoiseProb: 0.2,
		NumDim: 2, NumSigma: 0.05, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Graph.NumNodes() != 500 {
		t.Errorf("nodes = %d", d.Graph.NumNodes())
	}
	// Every node belongs to exactly one community of admissible size.
	seen := make([]bool, 500)
	for c, members := range d.Communities {
		if len(members) < 10 {
			t.Errorf("community %d has %d members < MinCommunity", c, len(members))
		}
		for _, v := range members {
			if seen[v] {
				t.Fatalf("node %d in two communities", v)
			}
			seen[v] = true
			if d.CommunityOf[v] != int32(c) {
				t.Errorf("CommunityOf[%d] = %d, want %d", v, d.CommunityOf[v], c)
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("node %d in no community", v)
		}
	}
	// Attributes present and normalized.
	for v := 0; v < 500; v++ {
		if len(d.Graph.TextAttrs(graph.NodeID(v))) == 0 {
			t.Fatalf("node %d has no textual attributes", v)
		}
		for _, x := range d.Graph.NumAttrs(graph.NodeID(v)) {
			if x < 0 || x > 1 {
				t.Fatalf("node %d numerical attr %v outside [0,1]", v, x)
			}
		}
	}
}

func TestGenerateCommunitiesAreCohesive(t *testing.T) {
	d, err := Generate(Spec{
		Name: "t", Nodes: 300, MinCommunity: 12, MaxCommunity: 24,
		IntraDegree: 8, InterDegree: 0.5,
		TokensPerNode: 4, PoolSize: 5, Vocab: 50, NoiseProb: 0.1,
		NumDim: 2, NumSigma: 0.05, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Most planted communities should contain a decent k-core around their
	// members for k=4 — the regime the experiments rely on.
	hosts := 0
	for _, members := range d.Communities {
		q := members[0]
		core := kcore.MaximalConnectedKCore(d.Graph, q, 4)
		if core != nil {
			hosts++
		}
	}
	if hosts*2 < len(d.Communities) {
		t.Errorf("only %d/%d communities host a 4-core", hosts, len(d.Communities))
	}
}

func TestGenerateNumericalOnly(t *testing.T) {
	d, err := Generate(Spec{
		Name: "kg", Nodes: 100, MinCommunity: 10, MaxCommunity: 20,
		IntraDegree: 6, InterDegree: 0.5, NumericalOnly: true,
		TokensPerNode: 4, PoolSize: 5, Vocab: 50,
		NumDim: 3, NumSigma: 0.05, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < d.Graph.NumNodes(); v++ {
		if len(d.Graph.TextAttrs(graph.NodeID(v))) != 0 {
			t.Fatalf("numerical-only dataset has textual attrs on %d", v)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Spec{Nodes: 1, MinCommunity: 3, MaxCommunity: 5}); err == nil {
		t.Error("accepted 1 node")
	}
	if _, err := Generate(Spec{Nodes: 100, MinCommunity: 2, MaxCommunity: 1}); err == nil {
		t.Error("accepted bad community bounds")
	}
}

func TestHomogeneousProfiles(t *testing.T) {
	for _, name := range HomogeneousNames {
		d, err := Homogeneous(name, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Graph.NumNodes() == 0 || d.Graph.NumEdges() == 0 {
			t.Errorf("%s: empty graph", name)
		}
	}
	if _, err := Homogeneous("nope", 1); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestQueryNodesDeterministic(t *testing.T) {
	d, _ := Homogeneous("facebook", 0.2)
	a := d.QueryNodes(10, 4, 7)
	b := d.QueryNodes(10, 4, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("QueryNodes not deterministic")
		}
	}
	// Ground truth contains the query.
	for _, q := range a {
		gt := d.GroundTruth(q)
		found := false
		for _, v := range gt {
			if v == q {
				found = true
			}
		}
		if !found {
			t.Errorf("q=%d not in its ground truth", q)
		}
	}
}

func TestEgoNetworks(t *testing.T) {
	for i := 0; i < 10; i++ {
		d, err := EgoNetwork(i)
		if err != nil {
			t.Fatalf("ego %d: %v", i, err)
		}
		if d.Spec.Name != EgoNames[i] {
			t.Errorf("ego %d name = %q", i, d.Spec.Name)
		}
		if d.Graph.NumNodes() < 100 {
			t.Errorf("ego %d too small: %d", i, d.Graph.NumNodes())
		}
	}
}

func TestHetProfiles(t *testing.T) {
	for _, name := range HetNames {
		d, err := Heterogeneous(name, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Het.NumNodes() == 0 {
			t.Errorf("%s: empty het graph", name)
		}
		if err := d.Path.Validate(); err != nil {
			t.Errorf("%s: bad meta-path: %v", name, err)
		}
		// Targets all have the path's target type.
		for _, v := range d.Targets[:10] {
			if d.Het.NodeType(v) != d.Path.Target() {
				t.Errorf("%s: target %d has wrong type", name, v)
			}
		}
		// Knowledge-graph analogs must be numerical-only.
		if d.Spec.NumericalOnly {
			for _, v := range d.Targets[:10] {
				if len(d.Het.TextAttrs(v)) != 0 {
					t.Errorf("%s: numerical-only target has text attrs", name)
				}
			}
		}
	}
	if _, err := Heterogeneous("nope", 1); err == nil {
		t.Error("unknown het name accepted")
	}
}

func TestHetProjectionRecoversCommunities(t *testing.T) {
	d, err := Heterogeneous("dblp", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := d.Het.Project(d.Path)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Graph.NumNodes() != len(d.Targets) {
		t.Fatalf("projection has %d nodes, want %d", proj.Graph.NumNodes(), len(d.Targets))
	}
	// Planted intra-community links exist as projected edges: check that the
	// first community is connected in the projection.
	members := d.Communities[0]
	sub := make([]graph.NodeID, len(members))
	for i, v := range members {
		sub[i] = proj.FromHet[v]
	}
	comp := proj.Graph.Component(sub[0], func(v graph.NodeID) bool {
		for _, x := range sub {
			if x == v {
				return true
			}
		}
		return false
	})
	if len(comp) != len(sub) {
		t.Errorf("community not connected in projection: %d of %d reachable", len(comp), len(sub))
	}
}

func TestLoadWriteRoundTrip(t *testing.T) {
	d, _ := Homogeneous("facebook", 0.1)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, d.Graph); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != d.Graph.NumNodes() || g.NumEdges() != d.Graph.NumEdges() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d",
			g.NumNodes(), g.NumEdges(), d.Graph.NumNodes(), d.Graph.NumEdges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		if len(g.TextAttrs(id)) != len(d.Graph.TextAttrs(id)) {
			t.Fatalf("node %d text attrs differ", v)
		}
		a, b := g.NumAttrs(id), d.Graph.NumAttrs(id)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d numeric attr %d differs: %v vs %v", v, i, a[i], b[i])
			}
		}
	}
}

func TestLoadGraphErrors(t *testing.T) {
	cases := []string{
		"",
		"v 0 - -",
		"n 2 0\ne 0",
		"n 2 0\nx 1 2",
		"n 2 1\nv 0 - 1,2",
		"n two 0",
	}
	for _, in := range cases {
		if _, err := LoadGraph(strings.NewReader(in)); err == nil {
			t.Errorf("LoadGraph(%q) accepted", in)
		}
	}
}

func TestLoadGraphCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nn 2 1\nv 0 a,b 0.5\nv 1 - -\ne 0 1\n"
	g, err := LoadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Errorf("parsed %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if len(g.TextAttrs(0)) != 2 {
		t.Errorf("node 0 attrs = %d", len(g.TextAttrs(0)))
	}
}

func TestPropertyPowerLawSizesInRange(t *testing.T) {
	f := func(seed int64) bool {
		d, err := Generate(Spec{
			Name: "p", Nodes: 200, MinCommunity: 8, MaxCommunity: 20,
			IntraDegree: 5, InterDegree: 0.3,
			TokensPerNode: 2, PoolSize: 3, Vocab: 20,
			NumDim: 1, NumSigma: 0.1, Seed: seed,
		})
		if err != nil {
			return false
		}
		total := 0
		for _, members := range d.Communities {
			// The tail community may absorb leftovers up to Max+Min.
			if len(members) < 8 || len(members) > 20+8 {
				return false
			}
			total += len(members)
		}
		return total == 200
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
