package dataset

// EgoNames are the ten Facebook ego networks of Figure 6.
var EgoNames = []string{"f0", "f107", "f348", "f414", "f686", "f698", "f1684", "f1912", "f3437", "f3980"}

// EgoNetwork generates the i-th ego-network analog (i in [0,10)): a small
// graph of a few social circles around an ego, with circle-correlated
// attributes, standing in for the Facebook ego networks used by Figure 6.
// Circle structure and noise vary per network so the per-network F1 spread
// of the figure reproduces.
func EgoNetwork(i int) (*Generated, error) {
	specs := []Spec{
		{Nodes: 160, MinCommunity: 14, MaxCommunity: 30, IntraDegree: 8, InterDegree: 0.9, NoiseProb: 0.25},
		{Nodes: 220, MinCommunity: 16, MaxCommunity: 36, IntraDegree: 8, InterDegree: 1.1, NoiseProb: 0.30},
		{Nodes: 120, MinCommunity: 14, MaxCommunity: 26, IntraDegree: 9, InterDegree: 0.3, NoiseProb: 0.05},
		{Nodes: 180, MinCommunity: 15, MaxCommunity: 32, IntraDegree: 8, InterDegree: 0.8, NoiseProb: 0.22},
		{Nodes: 140, MinCommunity: 14, MaxCommunity: 28, IntraDegree: 8, InterDegree: 1.0, NoiseProb: 0.28},
		{Nodes: 200, MinCommunity: 16, MaxCommunity: 34, IntraDegree: 9, InterDegree: 0.7, NoiseProb: 0.18},
		{Nodes: 170, MinCommunity: 15, MaxCommunity: 30, IntraDegree: 9, InterDegree: 0.8, NoiseProb: 0.20},
		{Nodes: 150, MinCommunity: 14, MaxCommunity: 28, IntraDegree: 8, InterDegree: 0.9, NoiseProb: 0.26},
		{Nodes: 130, MinCommunity: 14, MaxCommunity: 26, IntraDegree: 8, InterDegree: 1.3, NoiseProb: 0.35},
		{Nodes: 190, MinCommunity: 15, MaxCommunity: 32, IntraDegree: 9, InterDegree: 0.7, NoiseProb: 0.17},
	}
	s := specs[i%len(specs)]
	s.Name = EgoNames[i%len(EgoNames)]
	s.TokensPerNode = 4
	s.PoolSize = 5
	s.Vocab = 60
	s.NumDim = 2
	s.NumSigma = 0.07
	s.Seed = int64(300 + i)
	return Generate(s)
}
