package dataset

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// loadSeedCorpus is the seed corpus shared by the fuzzer and the error-path
// unit test: valid inputs, every malformed-record shape the loader guards
// against, and a few adversarial layouts.
var loadSeedCorpus = []string{
	// Valid.
	"n 3 2\nv 0 a,b 0.1,0.2\nv 1 b 0.3,0.4\nv 2 - -\ne 0 1\ne 1 2\n",
	"n 1 0\nv 0 - -\n",
	"# comment\n\nn 2 0\ne 0 1\n",
	// Malformed records.
	"",
	"n\n",
	"n 3\n",
	"n x 2\n",
	"n 3 y\n",
	"n -1 0\n",
	"n 3 -2\n",
	"n 2 0\nn 2 0\n",
	"v 0 a 0.1\n",
	"e 0 1\n",
	"n 2 0\nv 5 - -\n",
	"n 2 0\nv -1 - -\n",
	"n 2 0\nv 0 - -\nv 0 - -\n",
	"n 2 1\nv 0 - 0.1,0.2\n",
	"n 2 1\nv 0 - x\n",
	"n 2 0\nv 0 -\n",
	"n 2 0\ne 0\n",
	"n 2 0\ne 0 x\n",
	"n 2 0\ne 0 9\n",
	"n 2 0\ne -3 0\n",
	"n 2 0\nz 0\n",
	"n 99999999999999999999 0\n",
	"n 4611686018427387904 3\n",
	"n 2147483647 2147483647\n",
	"n 2 0\ne 0 99999999999999999999\n",
	// Adversarial shapes.
	"n 2 0\nv 0 " + strings.Repeat("a,", 100) + "a -\n",
	"n 0 0\n",
	"n 0 0\nv 0 - -\n",
}

// FuzzLoadGraph asserts the loader's contract on arbitrary bytes: malformed
// input must produce an error, never a panic, and success must produce a
// non-nil graph whose text round-trips to an equivalent graph.
func FuzzLoadGraph(f *testing.F) {
	for _, seed := range loadSeedCorpus {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// A few header bytes can declare millions of empty nodes ("n 9999999
		// 9" is legal: isolated, attribute-free nodes are representable).
		// That is a resource bound, not a parser bug — skip the giants so
		// the fuzzer spends its budget on parse logic. Checked per-factor
		// (not as a product) so huge values cannot overflow past the guard.
		if n, dim, ok := declaredShape(data); ok && (n > 1<<20 || dim > 1<<20 || n*(dim+1) > 1<<20) {
			t.Skip("declared shape too large for the fuzz harness")
		}
		g, err := LoadGraph(bytes.NewReader(data))
		if err != nil {
			if g != nil {
				t.Fatal("error with non-nil graph")
			}
			return
		}
		if g == nil {
			t.Fatal("nil graph without error")
		}
		// Whatever loaded must round-trip: write → load again → same shape.
		var buf bytes.Buffer
		if err := WriteGraph(&buf, g); err != nil {
			t.Fatalf("WriteGraph on loaded graph: %v", err)
		}
		g2, err := LoadGraph(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reloading written graph: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d → %d/%d",
				g.NumNodes(), g.NumEdges(), g2.NumNodes(), g2.NumEdges())
		}
	})
}

// declaredShape scans data for its "n <nodes> <dim>" record without
// building anything.
func declaredShape(data []byte) (n, dim int, ok bool) {
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 3 && fields[0] == "n" {
			nn, err1 := strconv.Atoi(fields[1])
			dd, err2 := strconv.Atoi(fields[2])
			if err1 == nil && err2 == nil {
				return nn, dd, true
			}
		}
	}
	return 0, 0, false
}

// TestLoadGraphSeedCorpus runs the corpus as a plain unit test so the
// malformed shapes are exercised on every `go test`, not only under the
// fuzzer, and asserts the malformed ones error with a line number.
func TestLoadGraphSeedCorpus(t *testing.T) {
	for i, seed := range loadSeedCorpus {
		g, err := LoadGraph(strings.NewReader(seed))
		if err == nil && g == nil {
			t.Errorf("corpus[%d]: nil graph without error", i)
		}
		if err != nil && g != nil {
			t.Errorf("corpus[%d]: error with non-nil graph", i)
		}
	}
	for _, tc := range []struct {
		in   string
		want string
	}{
		{"n 2 0\nv 0 - -\nv 0 - -\n", "line 3: duplicate v record"},
		{"e 0 1\n", "line 1: e record before n"},
		{"v 0 - -\n", "line 1: v record before n"},
		{"n 2 0\nv 5 - -\n", "line 2: node 5 outside"},
		{"n 2 0\ne 0 9\n", "line 2: edge (0,9) outside"},
		{"n 2 0\nn 2 0\n", "line 2: duplicate n record"},
	} {
		_, err := LoadGraph(strings.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("LoadGraph(%q) error = %v, want containing %q", tc.in, err, tc.want)
		}
	}
}

// TestLoadGraphScannerError: an input with a line longer than the scanner
// buffer must surface the read error instead of silently truncating.
func TestLoadGraphScannerError(t *testing.T) {
	long := "n 2 0\nv 0 " + strings.Repeat("a", 1<<24+1) + " -\n"
	_, err := LoadGraph(strings.NewReader(long))
	if err == nil || !strings.Contains(err.Error(), "read failed after line") {
		t.Fatalf("over-long line: %v", err)
	}
}
