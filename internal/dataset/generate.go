// Package dataset generates the synthetic attributed graphs that stand in
// for the paper's ten real-world datasets (§VII-A, Table I), with planted
// ground-truth communities for the F1 experiments, heterogeneous analogs for
// §VI-A, ego networks for Figure 6, and simple file loaders so users can run
// the library on their own data.
//
// The generator plants a partition of power-law-sized communities, wires
// dense intra-community and sparse inter-community edges, and correlates
// both textual attributes (per-community keyword pools plus noise) and
// numerical attributes (per-community Gaussian centroids) with the planted
// structure. DESIGN.md documents why this preserves the behaviours the
// paper's experiments measure.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Spec parameterizes a homogeneous generated dataset.
type Spec struct {
	Name  string
	Nodes int
	// Community size bounds; sizes follow a truncated power law.
	MinCommunity, MaxCommunity int
	// IntraDegree is the target number of intra-community neighbors per core
	// member.
	IntraDegree int
	// InterDegree is the expected number of cross-community edges per node.
	// Inter-community edges attach to boundary members only, so planted
	// community cores stay separate connected k-cores (see DESIGN.md).
	InterDegree float64
	// BoundaryFrac is the fraction of each community wired sparsely as its
	// boundary (default 0.3); BoundaryDegree is a boundary member's number
	// of intra-community edges (default 3).
	BoundaryFrac   float64
	BoundaryDegree int
	// Textual attributes: tokens per node, per-community pool size, global
	// vocabulary size, probability a token is noise rather than pool-drawn.
	TokensPerNode, PoolSize, Vocab int
	NoiseProb                      float64
	// NumericalOnly drops textual attributes (knowledge-graph analogs).
	NumericalOnly bool
	// NumDim numerical attribute dimensions; per-community centroids with
	// NumSigma Gaussian spread.
	NumDim   int
	NumSigma float64
	Seed     int64
}

// Generated bundles a generated graph with its planted ground truth.
type Generated struct {
	Spec        Spec
	Graph       *graph.Graph
	Communities [][]graph.NodeID // planted communities, ground truth for F1
	CommunityOf []int32          // node → community index
	IsCore      []bool           // node → densely-wired core member?
}

// Generate builds the dataset described by s.
func Generate(s Spec) (*Generated, error) {
	if s.Nodes < 2 {
		return nil, fmt.Errorf("dataset: need at least 2 nodes, got %d", s.Nodes)
	}
	if s.MinCommunity < 3 || s.MaxCommunity < s.MinCommunity {
		return nil, fmt.Errorf("dataset: bad community bounds [%d,%d]", s.MinCommunity, s.MaxCommunity)
	}
	rng := rand.New(rand.NewSource(s.Seed))

	// Partition nodes into power-law-sized communities.
	var sizes []int
	remaining := s.Nodes
	for remaining > 0 {
		sz := powerLawSize(rng, s.MinCommunity, s.MaxCommunity, 2.0)
		if sz > remaining {
			sz = remaining
		}
		if remaining-sz < s.MinCommunity && remaining-sz > 0 {
			sz = remaining // absorb the tail
		}
		sizes = append(sizes, sz)
		remaining -= sz
	}
	communityOf := make([]int32, s.Nodes)
	communities := make([][]graph.NodeID, len(sizes))
	id := 0
	for c, sz := range sizes {
		for i := 0; i < sz; i++ {
			communityOf[id] = int32(c)
			communities[c] = append(communities[c], graph.NodeID(id))
			id++
		}
	}

	boundaryFrac := s.BoundaryFrac
	if boundaryFrac == 0 {
		boundaryFrac = 0.3
	}
	boundaryDeg := s.BoundaryDegree
	if boundaryDeg == 0 {
		boundaryDeg = 3
	}

	b := graph.NewBuilder(s.Nodes, s.NumDim)
	isCore := make([]bool, s.Nodes)
	isBlob := make([]bool, s.Nodes)
	var boundary []graph.NodeID
	// Intra-community wiring. Each community splits into three classes:
	//   - core (~60%): densely wired, community attributes — the ground
	//     truth the F1 experiments score against;
	//   - blob (~half the remainder): densely wired INTO the core so it
	//     survives k-core peeling, but carrying random attributes — the
	//     structurally-cohesive-yet-dissimilar periphery that separates
	//     attribute-distance methods from equality-matching ones;
	//   - bridge (rest): sparse members carrying the inter-community edges,
	//     peeled structurally at any meaningful k, which keeps the maximal
	//     connected k-core community-local (see DESIGN.md).
	for _, members := range communities {
		n := len(members)
		periN := int(boundaryFrac * float64(n))
		coreN := n - periN
		if coreN < 3 {
			coreN = n
			periN = 0
		}
		blobN := periN * 2 / 3
		core := members[:coreN]
		blob := members[coreN : coreN+blobN]
		bridge := members[coreN+blobN:]
		for i := 0; i < coreN; i++ {
			isCore[core[i]] = true
			b.AddEdge(core[i], core[(i+1)%coreN])
		}
		extra := s.IntraDegree - 2
		for i := 0; i < coreN; i++ {
			for e := 0; e < extra; e++ {
				j := rng.Intn(coreN)
				if core[j] != core[i] {
					b.AddEdge(core[i], core[j])
				}
			}
		}
		denseTo := append(append([]graph.NodeID(nil), core...), blob...)
		for _, v := range blob {
			isBlob[v] = true
			for e := 0; e < s.IntraDegree; e++ {
				u := denseTo[rng.Intn(len(denseTo))]
				if u != v {
					b.AddEdge(v, u)
				}
			}
		}
		for _, v := range bridge {
			boundary = append(boundary, v)
			for e := 0; e < boundaryDeg; e++ {
				u := members[rng.Intn(n)]
				if u != v {
					b.AddEdge(v, u)
				}
			}
		}
	}
	// Inter-community edges between boundary members only, so community
	// cores remain separate connected k-cores.
	if s.InterDegree > 0 && len(communities) > 1 && len(boundary) > 1 {
		for _, v := range boundary {
			cnt := poisson(rng, s.InterDegree/2) // each edge counts for two endpoints
			for e := 0; e < cnt; e++ {
				u := boundary[rng.Intn(len(boundary))]
				if communityOf[u] != communityOf[v] {
					b.AddEdge(v, u)
				}
			}
		}
	}

	// Attributes.
	assignAttrs(b, rng, s, communities, isBlob)

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Generated{
		Spec: s, Graph: g,
		Communities: communities, CommunityOf: communityOf, IsCore: isCore,
	}, nil
}

// assignAttrs writes textual and numerical attributes correlated with the
// planted communities. Blob members draw both kinds of attributes at random
// instead: they are the structurally cohesive but dissimilar periphery.
func assignAttrs(b *graph.Builder, rng *rand.Rand, s Spec, communities [][]graph.NodeID, isBlob []bool) {
	vocab := s.Vocab
	if vocab < s.PoolSize*2 {
		vocab = s.PoolSize * 2
	}
	// Pre-intern the vocabulary so token IDs are stable.
	tokens := make([]int32, vocab)
	for i := range tokens {
		tokens[i] = b.Dict().Intern(fmt.Sprintf("tok%04d", i))
	}
	centroids := make([][]float64, len(communities))
	pools := make([][]int32, len(communities))
	for c := range communities {
		pool := make([]int32, s.PoolSize)
		for i := range pool {
			pool[i] = tokens[rng.Intn(vocab)]
		}
		pools[c] = pool
		cen := make([]float64, s.NumDim)
		for d := range cen {
			cen[d] = rng.Float64()
		}
		centroids[c] = cen
	}
	for c, members := range communities {
		for _, v := range members {
			// Blob members replay the paper's Figure-1 story (the low-rated
			// action movies v11/v12): their TEXTUAL attributes match the
			// community, so equality-matching methods keep them, but their
			// NUMERICAL attributes are far off, so the composite distance
			// exposes them.
			blob := isBlob != nil && isBlob[v]
			if !s.NumericalOnly && s.TokensPerNode > 0 {
				attrs := make([]int32, 0, s.TokensPerNode)
				for t := 0; t < s.TokensPerNode; t++ {
					if rng.Float64() < s.NoiseProb {
						attrs = append(attrs, tokens[rng.Intn(vocab)])
					} else {
						attrs = append(attrs, pools[c][rng.Intn(len(pools[c]))])
					}
				}
				b.SetTextTokens(v, attrs)
			}
			if s.NumDim > 0 {
				vals := make([]float64, s.NumDim)
				for d := range vals {
					x := centroids[c][d] + rng.NormFloat64()*s.NumSigma
					if blob {
						// Push to the far side of the unit range.
						x = clamp01(1 - centroids[c][d] + rng.NormFloat64()*0.1)
					}
					vals[d] = clamp01(x)
				}
				b.SetNumAttrs(v, vals...)
			}
		}
	}
}

// powerLawSize draws a size in [lo,hi] with density ∝ x^(-alpha).
func powerLawSize(rng *rand.Rand, lo, hi int, alpha float64) int {
	if lo >= hi {
		return lo
	}
	// Inverse-CDF sampling for a truncated continuous power law.
	a, b := float64(lo), float64(hi)
	u := rng.Float64()
	oneMinus := 1 - alpha
	x := math.Pow(u*(math.Pow(b, oneMinus)-math.Pow(a, oneMinus))+math.Pow(a, oneMinus), 1/oneMinus)
	sz := int(x)
	if sz < lo {
		sz = lo
	}
	if sz > hi {
		sz = hi
	}
	return sz
}

// poisson draws from Poisson(lambda) by Knuth's method (small lambda only).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// QueryNodes picks n deterministic query nodes among core members of
// communities large enough to host a (k+1)-node community, mirroring how the
// paper selects random query nodes that actually belong to k-cores.
func (d *Generated) QueryNodes(n, k int, seed int64) []graph.NodeID {
	rng := rand.New(rand.NewSource(seed))
	var eligible []graph.NodeID
	for _, members := range d.Communities {
		if len(members) < k+1 {
			continue
		}
		for _, v := range members {
			if d.IsCore[v] && d.Graph.Degree(v) >= k {
				eligible = append(eligible, v)
			}
		}
	}
	if len(eligible) == 0 {
		eligible = append(eligible, 0)
	}
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = eligible[rng.Intn(len(eligible))]
	}
	return out
}

// GroundTruth returns the ground-truth community of v for F1 scoring: the
// densely wired core members of v's planted community. Boundary members are
// excluded — they model the loose periphery around a real circle, which the
// human-annotated ground truths of the paper's datasets also leave out.
func (d *Generated) GroundTruth(v graph.NodeID) []graph.NodeID {
	members := d.Communities[d.CommunityOf[v]]
	core := make([]graph.NodeID, 0, len(members))
	for _, u := range members {
		if d.IsCore[u] {
			core = append(core, u)
		}
	}
	if len(core) == 0 {
		return members
	}
	return core
}
