package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/hetgraph"
)

// HetSpec parameterizes a heterogeneous dataset analog. Communities are
// planted over the target node type; every planted target-target relation is
// materialized through a fresh intermediate node (e.g. a co-authored paper),
// so the canonical meta-path target–mid–target recovers the planted
// structure. Decorative node and edge types enrich the schema the way
// venues, genres or entity types do in the real datasets.
type HetSpec struct {
	Name                       string
	TargetNodes                int
	MinCommunity, MaxCommunity int
	IntraDegree                int
	InterDegree                float64

	TargetType, MidType, LinkEdge string // e.g. author, paper, writes
	DecorTypes                    []string
	DecorEdge                     string
	DecorPerMid                   int

	TokensPerNode, PoolSize, Vocab int
	NoiseProb                      float64
	NumericalOnly                  bool
	NumDim                         int
	NumSigma                       float64
	Seed                           int64
}

// HetGenerated bundles a heterogeneous graph with its planted ground truth.
type HetGenerated struct {
	Spec        HetSpec
	Het         *hetgraph.HetGraph
	Path        hetgraph.MetaPath // target–mid–target
	Targets     []graph.NodeID    // heterogeneous IDs of target nodes
	Communities [][]graph.NodeID  // planted communities, heterogeneous IDs
	CommunityOf []int32           // indexed by target position (0..TargetNodes)
}

// GenerateHet builds the heterogeneous dataset described by s.
func GenerateHet(s HetSpec) (*HetGenerated, error) {
	if s.TargetNodes < 2 {
		return nil, fmt.Errorf("dataset: need at least 2 target nodes, got %d", s.TargetNodes)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	b := hetgraph.NewBuilder()
	tTarget := b.NodeType(s.TargetType)
	tMid := b.NodeType(s.MidType)
	eLink := b.EdgeType(s.LinkEdge)
	var decor []hetgraph.TypeID
	for _, d := range s.DecorTypes {
		decor = append(decor, b.NodeType(d))
	}
	var eDecor hetgraph.TypeID
	if len(decor) > 0 {
		eDecor = b.EdgeType(s.DecorEdge)
	}

	targets := make([]graph.NodeID, s.TargetNodes)
	for i := range targets {
		targets[i] = b.AddNode(tTarget)
	}

	// Plant communities over target indices.
	sizes := planSizes(rng, s.TargetNodes, s.MinCommunity, s.MaxCommunity)
	communityOf := make([]int32, s.TargetNodes)
	communities := make([][]graph.NodeID, len(sizes))
	idx := 0
	for c, sz := range sizes {
		for i := 0; i < sz; i++ {
			communityOf[idx] = int32(c)
			communities[c] = append(communities[c], targets[idx])
			idx++
		}
	}

	// Materialize target-target relations through mid nodes. As in the
	// homogeneous generator, each community has a densely linked core and a
	// sparse boundary; inter-community links go through boundary targets so
	// planted (k,P)-cores stay separate in the projection.
	addLink := func(u, v graph.NodeID) {
		mid := b.AddNode(tMid)
		b.AddEdge(u, mid, eLink)
		b.AddEdge(v, mid, eLink)
		for d := 0; d < s.DecorPerMid && len(decor) > 0; d++ {
			dn := b.AddNode(decor[rng.Intn(len(decor))])
			b.AddEdge(mid, dn, eDecor)
		}
	}
	var boundary []graph.NodeID
	boundaryOf := make([]int32, 0)
	for c, members := range communities {
		n := len(members)
		coreN := n - int(0.3*float64(n))
		if coreN < 3 {
			coreN = n
		}
		core := members[:coreN]
		for i := 0; i < coreN; i++ {
			addLink(core[i], core[(i+1)%coreN])
		}
		extra := s.IntraDegree - 2
		for i := 0; i < coreN; i++ {
			for e := 0; e < extra; e++ {
				j := rng.Intn(coreN)
				if core[j] != core[i] {
					addLink(core[i], core[j])
				}
			}
		}
		for _, v := range members[coreN:] {
			boundary = append(boundary, v)
			boundaryOf = append(boundaryOf, int32(c))
			for e := 0; e < 3; e++ {
				u := members[rng.Intn(n)]
				if u != v {
					addLink(v, u)
				}
			}
		}
	}
	if s.InterDegree > 0 && len(communities) > 1 && len(boundary) > 1 {
		for i, v := range boundary {
			cnt := poisson(rng, s.InterDegree/2)
			for e := 0; e < cnt; e++ {
				j := rng.Intn(len(boundary))
				if boundaryOf[j] != boundaryOf[i] {
					addLink(v, boundary[j])
				}
			}
		}
	}

	// Attributes on target nodes, correlated with communities.
	vocab := s.Vocab
	if vocab < s.PoolSize*2 {
		vocab = s.PoolSize * 2
	}
	pools := make([][]string, len(communities))
	centroids := make([][]float64, len(communities))
	for c := range communities {
		pool := make([]string, s.PoolSize)
		for i := range pool {
			pool[i] = fmt.Sprintf("tok%04d", rng.Intn(vocab))
		}
		pools[c] = pool
		cen := make([]float64, s.NumDim)
		for d := range cen {
			cen[d] = rng.Float64()
		}
		centroids[c] = cen
	}
	for c, members := range communities {
		for _, v := range members {
			if !s.NumericalOnly && s.TokensPerNode > 0 {
				attrs := make([]string, 0, s.TokensPerNode)
				for t := 0; t < s.TokensPerNode; t++ {
					if rng.Float64() < s.NoiseProb {
						attrs = append(attrs, fmt.Sprintf("tok%04d", rng.Intn(vocab)))
					} else {
						attrs = append(attrs, pools[c][rng.Intn(len(pools[c]))])
					}
				}
				b.SetTextAttrs(v, attrs...)
			}
			if s.NumDim > 0 {
				vals := make([]float64, s.NumDim)
				for d := range vals {
					vals[d] = clamp01(centroids[c][d] + rng.NormFloat64()*s.NumSigma)
				}
				b.SetNumAttrs(v, vals...)
			}
		}
	}

	het, err := b.Build()
	if err != nil {
		return nil, err
	}
	path, err := b.MetaPathByNames(s.TargetType, s.LinkEdge, s.MidType, s.LinkEdge, s.TargetType)
	if err != nil {
		return nil, err
	}
	return &HetGenerated{
		Spec: s, Het: het, Path: path, Targets: targets,
		Communities: communities, CommunityOf: communityOf,
	}, nil
}

// planSizes partitions n into power-law sizes within [lo,hi].
func planSizes(rng *rand.Rand, n, lo, hi int) []int {
	var sizes []int
	remaining := n
	for remaining > 0 {
		sz := powerLawSize(rng, lo, hi, 2.0)
		if sz > remaining {
			sz = remaining
		}
		if remaining-sz < lo && remaining-sz > 0 {
			sz = remaining
		}
		sizes = append(sizes, sz)
		remaining -= sz
	}
	return sizes
}

// QueryTargets picks n query nodes among core targets of communities with at
// least k+1 members (the first 70% of each community list are its densely
// linked core, mirroring the homogeneous generator).
func (d *HetGenerated) QueryTargets(n, k int, seed int64) []graph.NodeID {
	rng := rand.New(rand.NewSource(seed))
	var eligible []graph.NodeID
	for _, members := range d.Communities {
		if len(members) < k+1 {
			continue
		}
		coreN := len(members) - int(0.3*float64(len(members)))
		if coreN < 3 {
			coreN = len(members)
		}
		eligible = append(eligible, members[:coreN]...)
	}
	if len(eligible) == 0 {
		eligible = append(eligible, d.Targets[0])
	}
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = eligible[rng.Intn(len(eligible))]
	}
	return out
}

// Heterogeneous dataset profiles mirroring Table I's five heterogeneous
// graphs. The knowledge-graph analogs carry numerical attributes only, which
// reproduces the paper's observation that equality-matching methods (ACQ)
// return nothing there.
var hetProfiles = map[string]HetSpec{
	"dblp": {
		Name: "dblp", TargetNodes: 1500, MinCommunity: 14, MaxCommunity: 36,
		IntraDegree: 9, InterDegree: 0.8,
		TargetType: "author", MidType: "paper", LinkEdge: "writes",
		DecorTypes: []string{"venue", "topic"}, DecorEdge: "about", DecorPerMid: 1,
		TokensPerNode: 4, PoolSize: 6, Vocab: 200, NoiseProb: 0.15,
		NumDim: 2, NumSigma: 0.06, Seed: 201,
	},
	"imdb": {
		Name: "imdb", TargetNodes: 2400, MinCommunity: 14, MaxCommunity: 40,
		IntraDegree: 9, InterDegree: 0.8,
		TargetType: "actor", MidType: "movie", LinkEdge: "acts_in",
		DecorTypes: []string{"director", "genre"}, DecorEdge: "has", DecorPerMid: 1,
		TokensPerNode: 4, PoolSize: 6, Vocab: 260, NoiseProb: 0.15,
		NumDim: 2, NumSigma: 0.06, Seed: 202,
	},
	"dbpedia": {
		Name: "dbpedia", TargetNodes: 2000, MinCommunity: 16, MaxCommunity: 40,
		IntraDegree: 10, InterDegree: 0.7,
		TargetType: "entity", MidType: "statement", LinkEdge: "subject",
		DecorTypes: []string{"class", "property", "literal"}, DecorEdge: "typed", DecorPerMid: 2,
		NumericalOnly: true, NumDim: 3, NumSigma: 0.05, Seed: 203,
	},
	"yago": {
		Name: "yago", TargetNodes: 2600, MinCommunity: 16, MaxCommunity: 42,
		IntraDegree: 10, InterDegree: 0.7,
		TargetType: "entity", MidType: "fact", LinkEdge: "subject",
		DecorTypes: []string{"class", "wordnet"}, DecorEdge: "typed", DecorPerMid: 1,
		NumericalOnly: true, NumDim: 3, NumSigma: 0.05, Seed: 204,
	},
	"freebase": {
		Name: "freebase", TargetNodes: 2200, MinCommunity: 16, MaxCommunity: 40,
		IntraDegree: 10, InterDegree: 0.7,
		TargetType: "topic", MidType: "cvt", LinkEdge: "subject",
		DecorTypes: []string{"domain", "type", "property"}, DecorEdge: "typed", DecorPerMid: 2,
		NumericalOnly: true, NumDim: 3, NumSigma: 0.05, Seed: 205,
	},
}

// HetNames lists the heterogeneous dataset analogs in Table-I order.
var HetNames = []string{"dblp", "imdb", "dbpedia", "yago", "freebase"}

// Heterogeneous generates the named heterogeneous dataset analog.
func Heterogeneous(name string, scale float64) (*HetGenerated, error) {
	spec, ok := hetProfiles[name]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown heterogeneous dataset %q", name)
	}
	if scale > 0 && scale != 1 {
		spec.TargetNodes = int(float64(spec.TargetNodes) * scale)
		if spec.TargetNodes < spec.MaxCommunity*2 {
			spec.TargetNodes = spec.MaxCommunity * 2
		}
	}
	return GenerateHet(spec)
}
