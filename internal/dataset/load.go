package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// LoadGraph reads an attributed graph from the repository's plain-text
// exchange format, one record per line:
//
//	# comment
//	n <numNodes> <numDim>
//	v <id> <tok1,tok2,...|-> <num1,num2,...|->
//	e <u> <v>
//
// The "n" record must come first. "-" stands for no attributes. This is the
// format cmd/datagen writes.
func LoadGraph(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var b *graph.Builder
	var seen []bool // duplicate-v detection
	numDim := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "n":
			if b != nil {
				return nil, fmt.Errorf("dataset: line %d: duplicate n record", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("dataset: line %d: n record needs 2 fields", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %v", line, err)
			}
			if n < 0 || int64(n) > math.MaxInt32 {
				return nil, fmt.Errorf("dataset: line %d: node count %d outside the NodeID range [0,2^31)", line, n)
			}
			numDim, err = strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %v", line, err)
			}
			if numDim < 0 || int64(numDim) > math.MaxInt32 {
				return nil, fmt.Errorf("dataset: line %d: attribute dimension %d outside [0,2^31)", line, numDim)
			}
			// Bound the declared attribute payload so a malformed header
			// errors instead of panicking in the n×numDim allocation.
			if numDim > 0 && n > math.MaxInt32/numDim {
				return nil, fmt.Errorf("dataset: line %d: attribute payload %d×%d too large", line, n, numDim)
			}
			b = graph.NewBuilder(n, numDim)
			seen = make([]bool, n)
		case "v":
			if b == nil {
				return nil, fmt.Errorf("dataset: line %d: v record before n", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("dataset: line %d: v record needs 3 fields", line)
			}
			id64, err := strconv.ParseInt(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %v", line, err)
			}
			if id64 < 0 || id64 >= int64(b.NumNodes()) {
				return nil, fmt.Errorf("dataset: line %d: node %d outside [0,%d)", line, id64, b.NumNodes())
			}
			if seen[id64] {
				return nil, fmt.Errorf("dataset: line %d: duplicate v record for node %d", line, id64)
			}
			seen[id64] = true
			id := graph.NodeID(id64)
			if fields[2] != "-" {
				toks := strings.Split(fields[2], ",")
				for _, tok := range toks {
					if tok == "" {
						// An empty token is unrepresentable on write, so it
						// would silently break the round trip.
						return nil, fmt.Errorf("dataset: line %d: empty attribute token", line)
					}
				}
				b.SetTextAttrs(id, toks...)
			}
			if fields[3] != "-" {
				parts := strings.Split(fields[3], ",")
				if len(parts) != numDim {
					return nil, fmt.Errorf("dataset: line %d: %d numerical values, want %d", line, len(parts), numDim)
				}
				vals := make([]float64, numDim)
				for i, p := range parts {
					vals[i], err = strconv.ParseFloat(p, 64)
					if err != nil {
						return nil, fmt.Errorf("dataset: line %d: %v", line, err)
					}
				}
				b.SetNumAttrs(id, vals...)
			}
		case "e":
			if b == nil {
				return nil, fmt.Errorf("dataset: line %d: e record before n", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("dataset: line %d: e record needs 2 fields", line)
			}
			u, err := strconv.ParseInt(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %v", line, err)
			}
			v, err := strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %v", line, err)
			}
			if u < 0 || u >= int64(b.NumNodes()) || v < 0 || v >= int64(b.NumNodes()) {
				return nil, fmt.Errorf("dataset: line %d: edge (%d,%d) outside [0,%d)", line, u, v, b.NumNodes())
			}
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		default:
			return nil, fmt.Errorf("dataset: line %d: unknown record %q", line, fields[0])
		}
	}
	// A scanner error (an over-long line, an underlying read failure) means
	// the input was not fully consumed; surfacing it — with how far we got —
	// is the difference between an error and a silently truncated graph.
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read failed after line %d: %w", line, err)
	}
	if b == nil {
		return nil, fmt.Errorf("dataset: empty input")
	}
	return b.Build()
}

// WriteGraph writes g in the exchange format LoadGraph reads.
func WriteGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "n %d %d\n", g.NumNodes(), g.NumDim())
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		toks := g.TextAttrs(id)
		tf := "-"
		if len(toks) > 0 {
			names := make([]string, len(toks))
			for i, t := range toks {
				names[i] = g.Dict().Name(t)
			}
			tf = strings.Join(names, ",")
		}
		nf := "-"
		if g.NumDim() > 0 {
			vals := g.NumAttrs(id)
			parts := make([]string, len(vals))
			for i, x := range vals {
				parts[i] = strconv.FormatFloat(x, 'g', -1, 64)
			}
			nf = strings.Join(parts, ",")
		}
		fmt.Fprintf(bw, "v %d %s %s\n", v, tf, nf)
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if u > graph.NodeID(v) {
				fmt.Fprintf(bw, "e %d %d\n", v, u)
			}
		}
	}
	return bw.Flush()
}
