package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// LoadGraph reads an attributed graph from the repository's plain-text
// exchange format, one record per line:
//
//	# comment
//	n <numNodes> <numDim>
//	v <id> <tok1,tok2,...|-> <num1,num2,...|->
//	e <u> <v>
//
// The "n" record must come first. "-" stands for no attributes. This is the
// format cmd/datagen writes.
func LoadGraph(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var b *graph.Builder
	numDim := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "n":
			if len(fields) != 3 {
				return nil, fmt.Errorf("dataset: line %d: n record needs 2 fields", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %v", line, err)
			}
			numDim, err = strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %v", line, err)
			}
			b = graph.NewBuilder(n, numDim)
		case "v":
			if b == nil {
				return nil, fmt.Errorf("dataset: line %d: v before n", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("dataset: line %d: v record needs 3 fields", line)
			}
			id64, err := strconv.ParseInt(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %v", line, err)
			}
			id := graph.NodeID(id64)
			if fields[2] != "-" {
				b.SetTextAttrs(id, strings.Split(fields[2], ",")...)
			}
			if fields[3] != "-" {
				parts := strings.Split(fields[3], ",")
				if len(parts) != numDim {
					return nil, fmt.Errorf("dataset: line %d: %d numerical values, want %d", line, len(parts), numDim)
				}
				vals := make([]float64, numDim)
				for i, p := range parts {
					vals[i], err = strconv.ParseFloat(p, 64)
					if err != nil {
						return nil, fmt.Errorf("dataset: line %d: %v", line, err)
					}
				}
				b.SetNumAttrs(id, vals...)
			}
		case "e":
			if b == nil {
				return nil, fmt.Errorf("dataset: line %d: e before n", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("dataset: line %d: e record needs 2 fields", line)
			}
			u, err := strconv.ParseInt(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %v", line, err)
			}
			v, err := strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %v", line, err)
			}
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		default:
			return nil, fmt.Errorf("dataset: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("dataset: empty input")
	}
	return b.Build()
}

// WriteGraph writes g in the exchange format LoadGraph reads.
func WriteGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "n %d %d\n", g.NumNodes(), g.NumDim())
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		toks := g.TextAttrs(id)
		tf := "-"
		if len(toks) > 0 {
			names := make([]string, len(toks))
			for i, t := range toks {
				names[i] = g.Dict().Name(t)
			}
			tf = strings.Join(names, ",")
		}
		nf := "-"
		if g.NumDim() > 0 {
			vals := g.NumAttrs(id)
			parts := make([]string, len(vals))
			for i, x := range vals {
				parts[i] = strconv.FormatFloat(x, 'g', -1, 64)
			}
			nf = strings.Join(parts, ",")
		}
		fmt.Fprintf(bw, "v %d %s %s\n", v, tf, nf)
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if u > graph.NodeID(v) {
				fmt.Fprintf(bw, "e %d %d\n", v, u)
			}
		}
	}
	return bw.Flush()
}
