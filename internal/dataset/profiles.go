package dataset

import "fmt"

// Profiles for the five homogeneous datasets of Table I, scaled to run on a
// laptop while preserving the paper's relative size ordering
// (Facebook < GitHub < Twitch < LiveJournal < Twitter-2010) and the regime
// the experiments need: dense planted communities that form k-cores around
// the query, sparse inter-community wiring, attributes correlated with the
// planted structure.
var homogeneousProfiles = map[string]Spec{
	"facebook": {
		Name: "facebook", Nodes: 1200, MinCommunity: 16, MaxCommunity: 40,
		IntraDegree: 10, InterDegree: 1.0,
		TokensPerNode: 4, PoolSize: 6, Vocab: 120, NoiseProb: 0.15,
		NumDim: 2, NumSigma: 0.06, Seed: 101,
	},
	"github": {
		Name: "github", Nodes: 3000, MinCommunity: 16, MaxCommunity: 44,
		IntraDegree: 10, InterDegree: 0.9,
		TokensPerNode: 4, PoolSize: 6, Vocab: 200, NoiseProb: 0.15,
		NumDim: 2, NumSigma: 0.06, Seed: 102,
	},
	"twitch": {
		Name: "twitch", Nodes: 8000, MinCommunity: 18, MaxCommunity: 48,
		IntraDegree: 11, InterDegree: 0.8,
		TokensPerNode: 4, PoolSize: 6, Vocab: 320, NoiseProb: 0.15,
		NumDim: 2, NumSigma: 0.06, Seed: 103,
	},
	"livejournal": {
		Name: "livejournal", Nodes: 20000, MinCommunity: 18, MaxCommunity: 52,
		IntraDegree: 11, InterDegree: 0.7,
		TokensPerNode: 4, PoolSize: 6, Vocab: 640, NoiseProb: 0.15,
		NumDim: 2, NumSigma: 0.06, Seed: 104,
	},
	"twitter": {
		Name: "twitter", Nodes: 48000, MinCommunity: 20, MaxCommunity: 56,
		IntraDegree: 12, InterDegree: 0.6,
		TokensPerNode: 4, PoolSize: 6, Vocab: 1280, NoiseProb: 0.15,
		NumDim: 2, NumSigma: 0.06, Seed: 105,
	},
	// Ground-truth F1 datasets beyond the five above (Table III).
	"orkut": {
		Name: "orkut", Nodes: 6000, MinCommunity: 18, MaxCommunity: 48,
		IntraDegree: 10, InterDegree: 1.4, // noisier boundaries: lowest F1 in the paper
		TokensPerNode: 3, PoolSize: 5, Vocab: 300, NoiseProb: 0.3,
		NumDim: 2, NumSigma: 0.1, Seed: 106,
	},
	"amazon": {
		Name: "amazon", Nodes: 4000, MinCommunity: 14, MaxCommunity: 36,
		IntraDegree: 9, InterDegree: 0.3, // crisp product communities: highest F1
		TokensPerNode: 5, PoolSize: 6, Vocab: 260, NoiseProb: 0.05,
		NumDim: 2, NumSigma: 0.04, Seed: 107,
	},
}

// HomogeneousNames lists the homogeneous dataset analogs in Table-I order.
var HomogeneousNames = []string{"facebook", "github", "twitch", "livejournal", "twitter"}

// Homogeneous generates the named homogeneous dataset analog at the given
// scale factor (1.0 = default size; benches and tests pass smaller factors).
func Homogeneous(name string, scale float64) (*Generated, error) {
	spec, ok := homogeneousProfiles[name]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown homogeneous dataset %q", name)
	}
	if scale > 0 && scale != 1 {
		spec.Nodes = int(float64(spec.Nodes) * scale)
		if spec.Nodes < spec.MaxCommunity*2 {
			spec.Nodes = spec.MaxCommunity * 2
		}
	}
	return Generate(spec)
}
