package engine

// ApplyGroups tests: the staged group-commit fold — per-group isolation,
// one published generation per batch, and equivalence with the same groups
// applied sequentially.

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/cserr"
	"repro/internal/graph"
	"repro/internal/mutate"
)

// snapshotBytes serializes the engine's serving state; the version is not
// part of the snapshot, so states reached by different numbers of commits
// compare byte for byte.
func snapshotBytes(t *testing.T, e *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestApplyGroupsOneGeneration proves a multi-group batch publishes exactly
// one engState generation and reports per-group outcomes.
func TestApplyGroupsOneGeneration(t *testing.T) {
	g := twoClusterGraph(t, 6)
	e, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	v0 := e.Version()
	groups := [][]mutate.Delta{
		{mutate.SetAttr(0, []string{"a"}, nil)},
		{mutate.SetAttr(1, []string{"b"}, nil), mutate.SetAttr(2, []string{"c"}, nil)},
		{mutate.AddNode([]string{"new"}, nil)},
	}
	res, outs, err := e.ApplyGroups(groups)
	if err != nil {
		t.Fatal(err)
	}
	if e.Version() != v0+1 || res.Version != v0+1 {
		t.Fatalf("version %d after a 3-group batch, want exactly %d", e.Version(), v0+1)
	}
	if res.Groups != 3 || res.GroupsApplied != 3 {
		t.Fatalf("group accounting: %+v", res)
	}
	if res.Applied != 4 {
		t.Fatalf("deltas applied %d, want 4", res.Applied)
	}
	for gi, o := range outs {
		if !o.Applied || o.Err != nil {
			t.Fatalf("group %d outcome: %+v", gi, o)
		}
	}
	if len(outs[2].NewNodes) != 1 {
		t.Fatalf("the add_node group's outcome must carry its node: %+v", outs[2])
	}
}

// TestApplyGroupsEquivalentToSequential proves the tentpole equivalence at
// the engine layer: a coalesced batch lands the same bytes as the same
// groups applied one Apply at a time.
func TestApplyGroupsEquivalentToSequential(t *testing.T) {
	groups := [][]mutate.Delta{
		{mutate.AddEdge(0, 7)},
		{mutate.SetAttr(3, []string{"x"}, []float64{0.25})},
		{mutate.AddNode([]string{"n1"}, nil)},
		{mutate.RemoveEdge(0, 7)},
		{mutate.AddNode([]string{"n2"}, []float64{1})},
	}

	batched, err := New(twoClusterGraph(t, 6), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := batched.ApplyGroups(groups); err != nil {
		t.Fatal(err)
	}

	serial, err := New(twoClusterGraph(t, 6), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range groups {
		if _, err := serial.Apply(g); err != nil {
			t.Fatalf("serial group %d: %v", gi, err)
		}
	}

	if !bytes.Equal(snapshotBytes(t, batched), snapshotBytes(t, serial)) {
		t.Fatal("batched ApplyGroups diverged from sequential Apply")
	}
}

// TestApplyGroupsRejectsOnlyTheBadGroup proves per-group isolation: an
// invalid group is rejected whole, its companions still apply, and the
// state matches sequentially applying just the good groups.
func TestApplyGroupsRejectsOnlyTheBadGroup(t *testing.T) {
	groups := [][]mutate.Delta{
		{mutate.SetAttr(0, []string{"good1"}, nil)},
		{mutate.SetAttr(1, []string{"ok"}, nil), mutate.AddEdge(0, 1)}, // edge exists: rejected whole
		{mutate.SetAttr(2, []string{"good2"}, nil)},
	}
	e, err := New(twoClusterGraph(t, 6), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, outs, err := e.ApplyGroups(groups)
	if err != nil {
		t.Fatalf("a batch with surviving groups must not error: %v", err)
	}
	if res.Groups != 3 || res.GroupsApplied != 2 {
		t.Fatalf("group accounting: %+v", res)
	}
	if !outs[0].Applied || !outs[2].Applied {
		t.Fatalf("good groups must apply: %+v", outs)
	}
	if outs[1].Applied || outs[1].Err == nil {
		t.Fatalf("bad group must be rejected whole: %+v", outs[1])
	}
	if !errors.Is(outs[1].Err, cserr.ErrInvalidRequest) {
		t.Fatalf("rejection must classify as invalid: %v", outs[1].Err)
	}
	if !strings.Contains(outs[1].Err.Error(), "delta 1") {
		t.Fatalf("rejection must name the failing delta: %v", outs[1].Err)
	}

	want, err := New(twoClusterGraph(t, 6), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range [][]mutate.Delta{groups[0], groups[2]} {
		if _, err := want.Apply(g); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(snapshotBytes(t, e), snapshotBytes(t, want)) {
		t.Fatal("state after a partial batch diverged from the good groups applied alone")
	}
}

// TestApplyGroupsAllRejected proves a batch where every group fails leaves
// the state untouched and returns the first group's error.
func TestApplyGroupsAllRejected(t *testing.T) {
	e, err := New(twoClusterGraph(t, 6), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := snapshotBytes(t, e)
	v0 := e.Version()
	_, outs, err := e.ApplyGroups([][]mutate.Delta{
		{mutate.AddEdge(0, 1)}, // exists
		{},                     // empty
	})
	if err == nil {
		t.Fatal("an all-rejected batch must error")
	}
	for gi, o := range outs {
		if o.Err == nil || o.Applied {
			t.Fatalf("group %d: %+v", gi, o)
		}
	}
	if e.Version() != v0 {
		t.Fatalf("version moved on an all-rejected batch: %d", e.Version())
	}
	if !bytes.Equal(before, snapshotBytes(t, e)) {
		t.Fatal("state changed on an all-rejected batch")
	}
}

// TestApplyGroupsInterleavedNewNodes proves node-ID assignment across a
// batch matches the sequential order of the admitted groups — each group's
// outcome carries exactly its own IDs.
func TestApplyGroupsInterleavedNewNodes(t *testing.T) {
	e, err := New(twoClusterGraph(t, 4), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	base := graph.NodeID(8)
	_, outs, err := e.ApplyGroups([][]mutate.Delta{
		{mutate.AddNode([]string{"a"}, nil), mutate.AddNode([]string{"b"}, nil)},
		{mutate.SetAttr(0, []string{"mid"}, nil)},
		{mutate.AddNode([]string{"c"}, nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := outs[0].NewNodes; len(got) != 2 || got[0] != base || got[1] != base+1 {
		t.Fatalf("group 0 nodes %v, want [%d %d]", got, base, base+1)
	}
	if len(outs[1].NewNodes) != 0 {
		t.Fatalf("group 1 added no nodes but reports %v", outs[1].NewNodes)
	}
	if got := outs[2].NewNodes; len(got) != 1 || got[0] != base+2 {
		t.Fatalf("group 2 nodes %v, want [%d]", got, base+2)
	}
}
