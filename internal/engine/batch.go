package engine

// Batch execution through the engine: a bounded worker pool drives many
// requests against the shared index and caches, each item carrying its own
// per-stage metrics. Unlike sea.BatchSearch, repeated or concurrent
// identical requests in a batch are served once (cache + coalescing), and
// Config.RequestTimeout genuinely interrupts each item's search — a stuck
// query is cancelled at its deadline instead of holding a worker and a
// concurrency slot until it finishes on its own.

import (
	"context"
	"encoding/csv"
	"io"
	"sync"

	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/sea"
)

// BatchItem pairs one request of a batch with its outcome and metrics. A
// truncated search (exhausted state budget) sets both Outcome — carrying
// the best-so-far community — and Err; Outcome is nil only when the request
// produced nothing at all.
type BatchItem struct {
	Request query.Request
	Outcome *query.Outcome
	Err     error
	Metrics QueryMetrics
}

// Batch executes every request through the engine's worker pool
// (Config.Workers goroutines) and returns the outcomes in request order.
// Config.RequestTimeout bounds — and on expiry cancels — each item
// individually; cancelling ctx stops feeding the pool, interrupts running
// items, and marks unstarted items with ctx's error.
func (e *Engine) Batch(ctx context.Context, reqs []query.Request) ([]BatchItem, error) {
	for i := range reqs {
		if err := reqs[i].Validate(); err != nil {
			return nil, err
		}
	}
	workers := e.cfg.Workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers < 1 {
		workers = 1
	}
	out := make([]BatchItem, len(reqs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, qm, err := e.QueryWithMetrics(ctx, reqs[i])
				out[i] = BatchItem{Request: reqs[i], Outcome: res, Err: err, Metrics: qm}
			}
		}()
	}
feed:
	for i := range reqs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			for j := i; j < len(reqs); j++ {
				out[j] = BatchItem{Request: reqs[j], Err: ctx.Err(),
					Metrics: QueryMetrics{Query: int64(reqs[j].Query), Err: ctx.Err().Error()}}
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return out, nil
}

// SEABatchItem pairs one query of the legacy BatchSearch with its outcome.
// New code should use Batch, whose BatchItem carries the full
// Request/Outcome pair.
type SEABatchItem struct {
	Query   graph.NodeID
	Result  *sea.Result // nil when Err != nil
	Err     error
	Metrics QueryMetrics
}

// BatchSearch executes every query as a SEA request with opts; it is a
// thin legacy adapter over Batch.
func (e *Engine) BatchSearch(ctx context.Context, queries []graph.NodeID, opts sea.Options) ([]SEABatchItem, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	reqs := make([]query.Request, len(queries))
	for i, q := range queries {
		reqs[i] = query.FromOptions(q, opts)
	}
	items, err := e.Batch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	out := make([]SEABatchItem, len(items))
	for i, it := range items {
		out[i] = SEABatchItem{Query: it.Request.Query, Err: it.Err, Metrics: it.Metrics}
		if it.Outcome != nil {
			out[i].Result = it.Outcome.SEA
		}
	}
	return out, nil
}

// metricsRow is any batch item exposing per-request metrics.
type metricsRow interface{ metrics() QueryMetrics }

func (it BatchItem) metrics() QueryMetrics    { return it.Metrics }
func (it SEABatchItem) metrics() QueryMetrics { return it.Metrics }

// WriteMetricsCSV writes one CSV row per batch item (header included), the
// flat per-stage timing format of QueryMetrics. It accepts the items of
// both Batch and the legacy BatchSearch.
func WriteMetricsCSV[T metricsRow](w io.Writer, items []T) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(QueryMetricsHeader()); err != nil {
		return err
	}
	for _, it := range items {
		if err := cw.Write(it.metrics().CSVRecord()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
