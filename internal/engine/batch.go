package engine

// Batch execution through the engine: a bounded worker pool drives many
// queries against the shared index and caches, each item carrying its own
// per-stage metrics. Unlike sea.BatchSearch, repeated or concurrent
// identical queries in a batch are served once (cache + coalescing).

import (
	"context"
	"encoding/csv"
	"io"
	"sync"

	"repro/internal/graph"
	"repro/internal/sea"
)

// BatchItem pairs one query of a batch with its outcome and metrics.
type BatchItem struct {
	Query   graph.NodeID
	Result  *sea.Result // nil when Err != nil
	Err     error
	Metrics QueryMetrics
}

// BatchSearch executes every query with opts through the engine's worker
// pool (Config.Workers goroutines) and returns the outcomes in query order.
// Config.RequestTimeout bounds each item individually; cancelling ctx stops
// feeding the pool and marks unstarted items with ctx's error.
func (e *Engine) BatchSearch(ctx context.Context, queries []graph.NodeID, opts sea.Options) ([]BatchItem, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	workers := e.cfg.Workers
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers < 1 {
		workers = 1
	}
	out := make([]BatchItem, len(queries))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				q := queries[i]
				res, qm, err := e.SearchWithMetrics(ctx, q, opts)
				out[i] = BatchItem{Query: q, Result: res, Err: err, Metrics: qm}
			}
		}()
	}
feed:
	for i := range queries {
		select {
		case jobs <- i:
		case <-ctx.Done():
			for j := i; j < len(queries); j++ {
				out[j] = BatchItem{Query: queries[j], Err: ctx.Err(),
					Metrics: QueryMetrics{Query: int64(queries[j]), Err: ctx.Err().Error()}}
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return out, nil
}

// WriteMetricsCSV writes one CSV row per batch item (header included), the
// flat per-stage timing format of QueryMetrics.
func WriteMetricsCSV(w io.Writer, items []BatchItem) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(QueryMetricsHeader()); err != nil {
		return err
	}
	for _, it := range items {
		if err := cw.Write(it.Metrics.CSVRecord()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
