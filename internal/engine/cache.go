package engine

import "sync"

// Sharded LRU cache. Each shard is an independent mutex-protected LRU so
// concurrent queries touching different keys rarely contend. Capacity is
// divided evenly across shards; eviction is strictly least-recently-used
// within a shard.

type lruEntry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *lruEntry[K, V]
}

type lruShard[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	items    map[K]*lruEntry[K, V]
	// head.next is most recently used; tail.prev least recently used.
	head, tail lruEntry[K, V]

	hits, misses, evictions uint64
}

func (s *lruShard[K, V]) init(capacity int) {
	s.capacity = capacity
	s.items = make(map[K]*lruEntry[K, V], capacity)
	s.head.next = &s.tail
	s.tail.prev = &s.head
}

func (s *lruShard[K, V]) unlink(e *lruEntry[K, V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (s *lruShard[K, V]) pushFront(e *lruEntry[K, V]) {
	e.next = s.head.next
	e.prev = &s.head
	e.next.prev = e
	s.head.next = e
}

func (s *lruShard[K, V]) get(key K) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.items[key]
	if !ok {
		s.misses++
		var zero V
		return zero, false
	}
	s.hits++
	s.unlink(e)
	s.pushFront(e)
	return e.val, true
}

func (s *lruShard[K, V]) put(key K, val V) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.items[key]; ok {
		e.val = val
		s.unlink(e)
		s.pushFront(e)
		return
	}
	if len(s.items) >= s.capacity {
		lru := s.tail.prev
		s.unlink(lru)
		delete(s.items, lru.key)
		s.evictions++
	}
	e := &lruEntry[K, V]{key: key, val: val}
	s.items[key] = e
	s.pushFront(e)
}

func (s *lruShard[K, V]) stats() (hits, misses, evictions uint64, entries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.evictions, len(s.items)
}

// shardedLRU distributes keys over shards by a caller-supplied hash.
type shardedLRU[K comparable, V any] struct {
	shards []lruShard[K, V]
	hash   func(K) uint64
}

// newShardedLRU builds a cache holding up to capacity entries in total,
// spread over shards (both floored to 1).
func newShardedLRU[K comparable, V any](capacity, shards int, hash func(K) uint64) *shardedLRU[K, V] {
	if shards < 1 {
		shards = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	if shards > capacity {
		shards = capacity
	}
	c := &shardedLRU[K, V]{shards: make([]lruShard[K, V], shards), hash: hash}
	per := (capacity + shards - 1) / shards
	for i := range c.shards {
		c.shards[i].init(per)
	}
	return c
}

func (c *shardedLRU[K, V]) shard(key K) *lruShard[K, V] {
	return &c.shards[c.hash(key)%uint64(len(c.shards))]
}

func (c *shardedLRU[K, V]) get(key K) (V, bool) { return c.shard(key).get(key) }
func (c *shardedLRU[K, V]) put(key K, val V)    { c.shard(key).put(key, val) }

// sweepAction is the verdict of a sweep callback for one cache entry.
type sweepAction int

const (
	sweepKeep sweepAction = iota
	sweepDrop
	sweepReplace
)

// sweep visits every cached entry under the shard locks, applying fn's
// verdict: keep it, drop it, or replace its value in place (preserving LRU
// position). It is the scoped-invalidation primitive: unlike a flush, it
// removes exactly the entries fn condemns and leaves the rest warm.
func (c *shardedLRU[K, V]) sweep(fn func(K, V) (V, sweepAction)) (dropped, replaced int) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key, e := range s.items {
			switch v, act := fn(key, e.val); act {
			case sweepDrop:
				s.unlink(e)
				delete(s.items, key)
				dropped++
			case sweepReplace:
				e.val = v
				replaced++
			}
		}
		s.mu.Unlock()
	}
	return dropped, replaced
}

func (c *shardedLRU[K, V]) stats() (hits, misses, evictions uint64, entries int) {
	for i := range c.shards {
		h, m, e, n := c.shards[i].stats()
		hits += h
		misses += m
		evictions += e
		entries += n
	}
	return hits, misses, evictions, entries
}

// fnvMix folds x into an FNV-1a style hash starting from h (pass fnvOffset).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}
