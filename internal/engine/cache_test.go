package engine

import "testing"

func identHash(k int) uint64 { return uint64(k) }

func TestLRUEvictionOrder(t *testing.T) {
	c := newShardedLRU[int, string](2, 1, identHash)
	c.put(1, "a")
	c.put(2, "b")
	if _, ok := c.get(1); !ok { // 1 becomes most recently used
		t.Fatal("expected hit on 1")
	}
	c.put(3, "c") // evicts 2, the LRU
	if _, ok := c.get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	for _, k := range []int{1, 3} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%d should be cached", k)
		}
	}
	_, _, ev, n := c.stats()
	if ev != 1 || n != 2 {
		t.Fatalf("evictions=%d entries=%d, want 1 and 2", ev, n)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newShardedLRU[int, string](2, 1, identHash)
	c.put(1, "a")
	c.put(1, "b")
	if v, ok := c.get(1); !ok || v != "b" {
		t.Fatalf("got %q,%v want b,true", v, ok)
	}
	if _, _, ev, n := c.stats(); ev != 0 || n != 1 {
		t.Fatalf("update must not evict: evictions=%d entries=%d", ev, n)
	}
}

func TestLRUSharding(t *testing.T) {
	c := newShardedLRU[int, int](64, 8, identHash)
	for i := 0; i < 64; i++ {
		c.put(i, i*i)
	}
	hit := 0
	for i := 0; i < 64; i++ {
		if v, ok := c.get(i); ok {
			if v != i*i {
				t.Fatalf("key %d: got %d", i, v)
			}
			hit++
		}
	}
	// Even splitting guarantees every shard holds its full quota.
	if hit != 64 {
		t.Fatalf("only %d/64 keys cached", hit)
	}
}

func TestLRUDegenerateSizes(t *testing.T) {
	c := newShardedLRU[int, int](0, 0, identHash) // floors to 1×1
	c.put(1, 10)
	c.put(2, 20)
	if _, ok := c.get(1); ok {
		t.Fatal("capacity-1 cache kept two entries")
	}
	if v, ok := c.get(2); !ok || v != 20 {
		t.Fatal("latest entry lost")
	}
}
