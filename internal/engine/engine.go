// Package engine provides a long-lived, concurrency-safe serving layer over
// a fixed attributed graph. Where the library-level sea.Search pays the full
// per-query cost — metric construction, distance vectors, structural
// decompositions — on every call, an Engine precomputes the per-graph state
// once and shares it across queries:
//
//   - the attribute Metric (min/max normalizer scan) is built at construction;
//   - the core decomposition is built at construction and the truss-level
//     decomposition on first k-truss query, and both serve as a shared
//     admission index: a query node whose coreness (or incident trussness)
//     is below k provably has no community, so the engine answers
//     ErrNoCommunity without running a search;
//   - per-query f(·,q) distance vectors and full search Results are held in
//     sharded LRU caches;
//   - concurrent identical queries are coalesced single-flight style, so the
//     work happens once while every caller gets the answer.
//
// Requests carry contexts; a per-request deadline bounds the wait, not the
// computation, so an abandoned query still completes and warms the caches.
// Every request yields flat, CSV-friendly per-stage timing metrics
// (QueryMetrics) and the engine aggregates global counters (Stats).
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/attr"
	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/sea"
	"repro/internal/truss"
)

// ErrQueryOutOfRange is returned (wrapped) when the query node ID is not a
// node of the engine's graph.
var ErrQueryOutOfRange = errors.New("engine: query node outside the graph")

// Config parameterizes an Engine. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// Gamma is the attribute-metric balance factor in [0,1] (see attr.Metric).
	Gamma float64
	// DistCacheSize bounds the number of cached f(·,q) distance vectors.
	// Each entry holds 8·NumNodes bytes. ≤0 selects the default.
	DistCacheSize int
	// ResultCacheSize bounds the number of cached (query, options) Results.
	// ≤0 selects the default.
	ResultCacheSize int
	// CacheShards is the number of independent LRU shards per cache.
	// ≤0 selects the default.
	CacheShards int
	// MaxConcurrent caps the number of searches executing at once; further
	// computations queue. ≤0 selects 2×GOMAXPROCS.
	MaxConcurrent int
	// Workers is the BatchSearch worker-pool size. ≤0 selects GOMAXPROCS.
	Workers int
	// RequestTimeout, when positive, bounds every request (Search and each
	// BatchSearch item) that does not already carry an earlier deadline.
	RequestTimeout time.Duration
	// EagerTruss also builds the truss-level index at construction instead
	// of on the first k-truss query.
	EagerTruss bool
}

// DefaultConfig returns a serving configuration suitable for mid-size graphs.
func DefaultConfig() Config {
	return Config{
		Gamma:           0.5,
		DistCacheSize:   256,
		ResultCacheSize: 4096,
		CacheShards:     16,
	}
}

// resultKey identifies one cached search: Options has only value-typed
// fields, so the key is comparable and equality is exact.
type resultKey struct {
	q    graph.NodeID
	opts sea.Options
}

func (k resultKey) hash() uint64 {
	h := fnvMix(fnvOffset, uint64(k.q))
	h = fnvMix(h, uint64(k.opts.K))
	h = fnvMix(h, uint64(k.opts.Model))
	h = fnvMix(h, uint64(k.opts.Seed))
	h = fnvMix(h, uint64(k.opts.SizeLo)<<32|uint64(k.opts.SizeHi))
	h = fnvMix(h, math.Float64bits(k.opts.ErrorBound))
	return h
}

// searchOutcome is the shared product of one coalesced computation.
type searchOutcome struct {
	res      *sea.Result
	err      error
	distHit  bool
	distNS   int64
	searchNS int64
}

// Engine is a concurrency-safe query-serving layer over one fixed graph.
// Returned Results and their Community slices are shared across callers and
// must be treated as immutable.
type Engine struct {
	g      *graph.Graph
	metric *attr.Metric
	cfg    Config

	core []int32 // coreness per node, built at construction

	trussOnce sync.Once
	truss     []int32 // max trussness over edges incident to each node

	dists   *shardedLRU[graph.NodeID, []float64]
	results *shardedLRU[resultKey, *sea.Result]
	flight  flightGroup[resultKey, *searchOutcome]
	dflight flightGroup[graph.NodeID, []float64]

	sem chan struct{} // bounds concurrently executing searches

	ctr counters
}

// New builds an Engine over g, precomputing the attribute metric and the
// core decomposition. The graph must not be mutated afterwards (Graphs are
// immutable by construction).
func New(g *graph.Graph, cfg Config) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("engine: nil graph")
	}
	m, err := attr.NewMetric(g, cfg.Gamma)
	if err != nil {
		return nil, err
	}
	def := DefaultConfig()
	if cfg.DistCacheSize <= 0 {
		cfg.DistCacheSize = def.DistCacheSize
	}
	if cfg.ResultCacheSize <= 0 {
		cfg.ResultCacheSize = def.ResultCacheSize
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = def.CacheShards
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		g:      g,
		metric: m,
		cfg:    cfg,
		core:   kcore.Decompose(g),
		sem:    make(chan struct{}, cfg.MaxConcurrent),
	}
	e.dists = newShardedLRU[graph.NodeID, []float64](
		cfg.DistCacheSize, cfg.CacheShards,
		func(q graph.NodeID) uint64 { return fnvMix(fnvOffset, uint64(q)) })
	e.results = newShardedLRU[resultKey, *sea.Result](
		cfg.ResultCacheSize, cfg.CacheShards, resultKey.hash)
	if cfg.EagerTruss {
		e.nodeTruss()
	}
	return e, nil
}

// Graph returns the graph the engine serves.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Metric returns the shared attribute metric.
func (e *Engine) Metric() *attr.Metric { return e.metric }

// Coreness returns the precomputed coreness of q.
func (e *Engine) Coreness(q graph.NodeID) int32 { return e.core[q] }

// Search runs one community search, serving from the result cache, the
// shared admission index, or a (possibly coalesced) SEA execution. See
// SearchWithMetrics for per-stage timings.
func (e *Engine) Search(ctx context.Context, q graph.NodeID, opts sea.Options) (*sea.Result, error) {
	res, _, err := e.SearchWithMetrics(ctx, q, opts)
	return res, err
}

// SearchWithMetrics is Search returning per-stage timing metrics alongside
// the result. The metrics row is valid on error paths too (Err is set).
func (e *Engine) SearchWithMetrics(ctx context.Context, q graph.NodeID, opts sea.Options) (*sea.Result, QueryMetrics, error) {
	t0 := time.Now()
	qm := QueryMetrics{Query: int64(q), K: opts.K, Model: opts.Model.String()}
	res, err := e.search(ctx, q, opts, &qm)
	qm.TotalNS = time.Since(t0).Nanoseconds()
	if err != nil {
		qm.Err = err.Error()
		e.ctr.errors.Add(1)
	}
	return res, qm, err
}

func (e *Engine) search(ctx context.Context, q graph.NodeID, opts sea.Options, qm *QueryMetrics) (*sea.Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if int(q) < 0 || int(q) >= e.g.NumNodes() {
		return nil, fmt.Errorf("%w: node %d, graph [0,%d)", ErrQueryOutOfRange, q, e.g.NumNodes())
	}
	e.ctr.queries.Add(1)
	if e.cfg.RequestTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, e.cfg.RequestTimeout)
			defer cancel()
		}
	}

	key := resultKey{q: q, opts: opts}
	if res, ok := e.results.get(key); ok {
		qm.ResultHit = true
		return res, nil
	}

	// Admission: the shared decomposition proves absence without a search.
	ti := time.Now()
	admitted := e.admit(q, opts)
	qm.IndexNS = time.Since(ti).Nanoseconds()
	if !admitted {
		qm.IndexHit = true
		e.ctr.indexRejects.Add(1)
		return nil, sea.ErrNoCommunity
	}

	out, err, joined := e.flight.do(ctx, key, func() (*searchOutcome, error) {
		return e.compute(key), nil
	})
	if joined {
		qm.Coalesced = true
		e.ctr.coalesced.Add(1)
	}
	if err != nil {
		return nil, err // context expired while waiting
	}
	qm.DistHit, qm.DistNS, qm.SearchNS = out.distHit, out.distNS, out.searchNS
	return out.res, out.err
}

// compute performs the cache-miss path of one search under the concurrency
// cap. It runs detached from request contexts so a completed computation
// always lands in the caches.
func (e *Engine) compute(key resultKey) *searchOutcome {
	e.sem <- struct{}{}
	defer func() { <-e.sem }()

	out := &searchOutcome{}
	td := time.Now()
	dist, hit := e.queryDist(key.q)
	out.distHit = hit
	out.distNS = time.Since(td).Nanoseconds()

	ts := time.Now()
	e.ctr.searchRuns.Add(1)
	res, err := sea.SearchWithDist(e.g, dist, key.q, key.opts)
	out.searchNS = time.Since(ts).Nanoseconds()
	if err != nil {
		out.err = err
		return out
	}
	out.res = res
	e.results.put(key, res)
	return out
}

// queryDist returns the f(·,q) vector from the distance cache, computing and
// caching it (single-flight per q) on a miss. hit reports a cache hit.
func (e *Engine) queryDist(q graph.NodeID) (dist []float64, hit bool) {
	if d, ok := e.dists.get(q); ok {
		return d, true
	}
	d, _, _ := e.dflight.do(context.Background(), q, func() ([]float64, error) {
		d := e.metric.QueryDist(q)
		e.dists.put(q, d)
		return d, nil
	})
	return d, false
}

// admit reports whether a community satisfying opts' structural model can
// exist around q, answered from the shared decompositions. A false return is
// definitive: sea.Search would return ErrNoCommunity. (A k-core or k-truss of
// any induced subgraph is one of g itself, so a full-graph rejection covers
// every sample too.)
func (e *Engine) admit(q graph.NodeID, opts sea.Options) bool {
	switch opts.Model {
	case sea.KTruss:
		return int(e.nodeTruss()[q]) >= opts.K
	default:
		return int(e.core[q]) >= opts.K
	}
}

// nodeTruss lazily builds the truss-level index: for each node the maximum
// trussness over its incident edges, i.e. the largest k for which the node
// belongs to some k-truss.
func (e *Engine) nodeTruss() []int32 {
	e.trussOnce.Do(func() {
		ix, tr := truss.Decompose(e.g)
		nt := make([]int32, e.g.NumNodes())
		for eid := range tr {
			if t := tr[eid]; t > 0 {
				if u := ix.U[eid]; t > nt[u] {
					nt[u] = t
				}
				if v := ix.V[eid]; t > nt[v] {
					nt[v] = t
				}
			}
		}
		e.truss = nt
	})
	return e.truss
}
