// Package engine provides a long-lived, concurrency-safe serving layer over
// an attributed graph. Where the library-level query.Execute pays the full
// per-query cost — metric construction, distance vectors, structural
// decompositions — on every call, an Engine precomputes the per-graph state
// once and shares it across queries:
//
//   - the attribute Metric (min/max normalizer scan) is built at construction;
//   - the core decomposition is built at construction and the truss-level
//     decomposition on first k-truss query, and both serve as a shared
//     admission index: a query node whose coreness (or incident trussness)
//     is below k provably has no community, so the engine answers
//     ErrNoCommunity without running a search — for every method;
//   - per-query f(·,q) distance vectors and full Outcomes are held in
//     sharded LRU caches, keyed by the canonical query.Request;
//   - concurrent identical queries are coalesced single-flight style, so the
//     work happens once while every caller gets the answer.
//
// Every request is one query.Request, whatever the method; Engine.Query is
// the unified entry point and Engine.Search the SEA-only legacy form.
// Requests carry contexts all the way into the search loops: a per-request
// deadline (or a client disconnect) genuinely stops the computation once no
// caller is waiting on it, freeing its concurrency slot. Every request
// yields flat, CSV-friendly per-stage timing metrics (QueryMetrics) and the
// engine aggregates global counters (Stats).
//
// The served graph is live: Engine.Apply folds a batch of mutate.Deltas
// (edge/node/attribute mutations) into a fresh graph + incrementally
// maintained indexes and publishes them atomically, invalidating only the
// cache entries whose query node falls in the mutation's affected region
// (see mutate.go). Queries load one state pointer at entry, so a request
// always runs against one consistent snapshot of the graph and its indexes.
package engine

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attr"
	"repro/internal/cserr"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/mutate"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/sea"
	"repro/internal/truss"
)

// ErrQueryOutOfRange is returned (wrapped) when the query node ID is not a
// node of the engine's graph. It wraps cserr.ErrInvalidRequest.
var ErrQueryOutOfRange = fmt.Errorf("%w: query node outside the graph", cserr.ErrInvalidRequest)

// Config parameterizes an Engine. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// Gamma is the attribute-metric balance factor in [0,1] (see attr.Metric).
	Gamma float64
	// DistCacheSize bounds the number of cached f(·,q) distance vectors.
	// Each entry holds 8·NumNodes bytes. ≤0 selects the default.
	DistCacheSize int
	// ResultCacheSize bounds the number of cached Request → Outcome entries.
	// ≤0 selects the default.
	ResultCacheSize int
	// CacheShards is the number of independent LRU shards per cache.
	// ≤0 selects the default.
	CacheShards int
	// MaxConcurrent caps the number of searches executing at once; further
	// computations queue. ≤0 selects 2×GOMAXPROCS.
	MaxConcurrent int
	// MaxInFlight, when positive, bounds admission: at most this many
	// cache-miss computations may be in flight (executing or queued on the
	// MaxConcurrent slots) at once, and requests beyond the bound are shed
	// immediately with cserr.ErrOverloaded (HTTP 429) instead of queueing —
	// shed-before-queue keeps the queue, and with it p99, bounded under
	// overload. Cache hits, admission-index rejects and coalesced joins are
	// never shed. Set it above MaxConcurrent to allow a bounded queue;
	// 0 disables shedding.
	MaxInFlight int
	// Workers is the BatchSearch worker-pool size. ≤0 selects GOMAXPROCS.
	Workers int
	// RequestTimeout, when positive, bounds every request (Query, Search and
	// each batch item) that does not already carry an earlier deadline. The
	// deadline cancels the underlying search, not just the wait.
	RequestTimeout time.Duration
	// EagerTruss also builds the truss-level index at construction instead
	// of on the first k-truss query.
	EagerTruss bool
	// TraceRing is the request-trace ring capacity (spans kept for
	// GET /debug/trace). ≤0 selects the default (256); set TraceOff to
	// disable tracing entirely.
	TraceRing int
	// TraceOff disables the span ring (histograms still record).
	TraceOff bool
	// SlowQuery, when positive, logs one structured JSON line (to
	// SlowQueryLog, default stderr) for every request whose total latency
	// meets or exceeds it.
	SlowQuery time.Duration
	// SlowQueryLog receives slow-query lines; nil means os.Stderr.
	SlowQueryLog io.Writer
}

// DefaultConfig returns a serving configuration suitable for mid-size graphs.
func DefaultConfig() Config {
	return Config{
		Gamma:           0.5,
		DistCacheSize:   256,
		ResultCacheSize: 4096,
		CacheShards:     16,
	}
}

// requestHash folds the discriminating fields of a canonical Request into
// the shard/bucket hash. Equality is still exact (the full struct is the
// map key); the hash only spreads entries.
func requestHash(r query.Request) uint64 {
	h := fnvMix(fnvOffset, uint64(r.Query))
	h = fnvMix(h, uint64(r.Method))
	h = fnvMix(h, uint64(r.K))
	h = fnvMix(h, uint64(r.Model))
	h = fnvMix(h, uint64(r.Seed))
	h = fnvMix(h, uint64(r.SizeLo)<<32|uint64(r.SizeHi))
	h = fnvMix(h, math.Float64bits(r.ErrorBound))
	return h
}

// searchOutcome is the shared product of one coalesced computation.
type searchOutcome struct {
	out      *query.Outcome
	err      error
	shed     bool // rejected by MaxInFlight admission (err wraps ErrOverloaded)
	distHit  bool
	distNS   int64
	searchNS int64
}

// engState is the engine's per-graph serving state: the graph and every
// shared structure derived from it, published as one unit through an atomic
// pointer so a request never mixes two generations. Apply builds a new
// engState per mutation batch; the old one keeps serving in-flight requests.
type engState struct {
	g       graph.Store
	metric  *attr.Metric
	core    []int32 // coreness per node
	version uint64  // increments once per applied mutation batch

	trussOnce sync.Once
	truss     atomic.Pointer[[]int32] // node trussness; nil until built
}

// nodeTruss lazily builds (or returns) the truss-level index: for each node
// the maximum trussness over its incident edges.
func (st *engState) nodeTruss() []int32 {
	st.trussOnce.Do(func() {
		ix, tr := truss.Decompose(st.g)
		nt := make([]int32, st.g.NumNodes())
		for eid := range tr {
			if t := tr[eid]; t > 0 {
				if u := ix.U[eid]; t > nt[u] {
					nt[u] = t
				}
				if v := ix.V[eid]; t > nt[v] {
					nt[v] = t
				}
			}
		}
		st.truss.Store(&nt)
	})
	return *st.truss.Load()
}

// trussPeek returns the node-truss index if it has been built, else nil,
// without triggering the build. Safe against a concurrent first build.
func (st *engState) trussPeek() []int32 {
	if p := st.truss.Load(); p != nil {
		return *p
	}
	return nil
}

// adoptTruss installs a precomputed node-truss index (snapshot reopen,
// incremental maintenance). Must be called before the state is published.
func (st *engState) adoptTruss(nt []int32) {
	st.trussOnce.Do(func() { st.truss.Store(&nt) })
}

// Engine is a concurrency-safe query-serving layer over one live graph.
// Returned Outcomes and their Community slices are shared across callers
// and must be treated as immutable.
type Engine struct {
	cfg Config

	// st is the current serving state; every request loads it exactly once.
	st atomic.Pointer[engState]
	// epoch counts applied mutation batches; it always equals the current
	// state's version. Cache fills check it (under pubMu.RLock) against the
	// version of the state they computed on, so a computation that started
	// against a pre-mutation state can never re-insert a stale entry after
	// that mutation's scoped sweep.
	epoch atomic.Uint64
	// pubMu orders cache fills against the epoch bump: Apply takes the
	// write side for the bump alone, so every fill either completes before
	// the bump (and is visible to the sweep) or observes the new epoch and
	// skips itself.
	pubMu sync.RWMutex

	// mu serializes mutation batches; etruss is the per-edge trussness
	// table maintained incrementally under it (nil until the node-truss
	// index exists and a first mutation seeds it).
	mu     sync.Mutex
	etruss map[mutate.Edge]int32

	dists   *shardedLRU[graph.NodeID, []float64]
	results *shardedLRU[query.Request, *query.Outcome]
	flight  flightGroup[flightKey, *searchOutcome]
	dflight flightGroup[distKey, []float64]

	sem      chan struct{} // bounds concurrently executing searches
	inflight atomic.Int64  // computations executing or queued (MaxInFlight admission)

	ctr counters
	lat latency

	// name attributes spans, slow-query lines and aggregated metrics to a
	// dataset; the catalog sets it at mount time (see SetName).
	name atomic.Pointer[string]
	// trace holds the most recent request spans (nil when tracing is off).
	trace *obs.Ring[Span]
}

// flightKey scopes result coalescing to one graph generation, so a request
// arriving after a mutation never joins a computation on the old graph.
type flightKey struct {
	req     query.Request
	version uint64
}

// distKey scopes distance-vector coalescing the same way.
type distKey struct {
	q       graph.NodeID
	version uint64
}

// New builds an Engine over g — any immutable graph.Store backing: a heap
// CSR, a zero-copy mapped snapshot, a compressed adjacency — precomputing
// the attribute metric and the core decomposition. The engine serves g until
// a mutation batch replaces it; the backing itself is never written.
func New(g graph.Store, cfg Config) (*Engine, error) {
	if g == nil {
		return nil, cserr.Invalidf("engine: nil graph")
	}
	m, err := attr.NewMetric(g, cfg.Gamma)
	if err != nil {
		return nil, err
	}
	e, err := newEngine(g, cfg, m, kcore.Decompose(g))
	if err != nil {
		return nil, err
	}
	if cfg.EagerTruss {
		e.st.Load().nodeTruss()
	}
	return e, nil
}

// newEngine applies config defaults and assembles the caches around a
// metric and core index the caller supplies — computed fresh by New,
// reopened without recomputation by NewFromIndex.
func newEngine(g graph.Store, cfg Config, m *attr.Metric, core []int32) (*Engine, error) {
	def := DefaultConfig()
	if cfg.DistCacheSize <= 0 {
		cfg.DistCacheSize = def.DistCacheSize
	}
	if cfg.ResultCacheSize <= 0 {
		cfg.ResultCacheSize = def.ResultCacheSize
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = def.CacheShards
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = 256
	}
	e := &Engine{
		cfg: cfg,
		sem: make(chan struct{}, cfg.MaxConcurrent),
	}
	if !cfg.TraceOff {
		e.trace = obs.NewRing[Span](cfg.TraceRing)
	}
	e.st.Store(&engState{g: g, metric: m, core: core})
	e.dists = newShardedLRU[graph.NodeID, []float64](
		cfg.DistCacheSize, cfg.CacheShards,
		func(q graph.NodeID) uint64 { return fnvMix(fnvOffset, uint64(q)) })
	e.results = newShardedLRU[query.Request, *query.Outcome](
		cfg.ResultCacheSize, cfg.CacheShards, requestHash)
	return e, nil
}

// Graph returns the graph backing the engine currently serves. Across a
// concurrent Apply, successive calls may return different (individually
// immutable) backings; hold the returned value for one consistent view.
func (e *Engine) Graph() graph.Store { return e.st.Load().g }

// Metric returns the shared attribute metric of the current graph.
func (e *Engine) Metric() *attr.Metric { return e.st.Load().metric }

// Coreness returns the precomputed coreness of q on the current graph.
func (e *Engine) Coreness(q graph.NodeID) int32 { return e.st.Load().core[q] }

// Version returns the graph generation: 0 for the mounted graph, +1 per
// applied mutation batch.
func (e *Engine) Version() uint64 { return e.st.Load().version }

// Query runs one community-search request with whatever method it names,
// serving from the result cache, the shared admission index, or a (possibly
// coalesced) execution. See QueryWithMetrics for per-stage timings.
func (e *Engine) Query(ctx context.Context, req query.Request) (*query.Outcome, error) {
	out, _, err := e.QueryWithMetrics(ctx, req)
	return out, err
}

// QueryWithMetrics is Query returning per-stage timing metrics alongside
// the outcome. The metrics row is valid on error paths too (Err is set).
func (e *Engine) QueryWithMetrics(ctx context.Context, req query.Request) (*query.Outcome, QueryMetrics, error) {
	t0 := time.Now()
	req = req.WithDefaults()
	// Graph is routing metadata for multi-dataset servers; this engine IS
	// the routed-to graph, so drop it before it can split cache keys.
	req.Graph = ""
	qm := QueryMetrics{Query: int64(req.Query), K: req.K, Model: req.Model.String(), Method: req.Method.String()}
	out, err := e.serve(ctx, req, &qm)
	qm.TotalNS = time.Since(t0).Nanoseconds()
	if err != nil {
		qm.Err = err.Error()
		e.ctr.errors.Add(1)
	}
	e.recordQuery(RequestIDFromContext(ctx), t0, qm)
	return out, qm, err
}

// Search runs one SEA request in the legacy (query, options) form; it is a
// thin adapter over Query, kept so the deprecated public wrappers and older
// callers keep working. New code should build a query.Request and use Query.
func (e *Engine) Search(ctx context.Context, q graph.NodeID, opts sea.Options) (*sea.Result, error) {
	res, _, err := e.SearchWithMetrics(ctx, q, opts)
	return res, err
}

// SearchWithMetrics is Search returning per-stage timing metrics alongside
// the result. Like Search, it is a legacy adapter over QueryWithMetrics.
func (e *Engine) SearchWithMetrics(ctx context.Context, q graph.NodeID, opts sea.Options) (*sea.Result, QueryMetrics, error) {
	// Validate the literal options first: the Request form resolves zero
	// values to defaults, but the legacy contract rejects them.
	if err := opts.Validate(); err != nil {
		return nil, QueryMetrics{Query: int64(q), K: opts.K, Model: opts.Model.String(),
			Method: query.MethodSEA.String(), Err: err.Error()}, err
	}
	out, qm, err := e.QueryWithMetrics(ctx, query.FromOptions(q, opts))
	if err != nil {
		return nil, qm, err
	}
	return out.SEA, qm, nil
}

func (e *Engine) serve(ctx context.Context, req query.Request, qm *QueryMetrics) (*query.Outcome, error) {
	e.ctr.queries.Add(1)
	// One state load per request: the graph, the metric and the admission
	// indexes all come from this generation even if a mutation lands
	// mid-request.
	st := e.st.Load()
	// Cache first, validation after: only validated requests ever land in
	// the cache, so a hit proves validity and the hot path skips the
	// Validate/Options projection entirely; anything malformed misses and
	// is rejected below before reaching the indexes.
	if out, ok := e.results.get(req); ok {
		qm.ResultHit = true
		return out, nil
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if int(req.Query) < 0 || int(req.Query) >= st.g.NumNodes() {
		return nil, fmt.Errorf("%w: node %d, graph [0,%d)", ErrQueryOutOfRange, req.Query, st.g.NumNodes())
	}
	if e.cfg.RequestTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, e.cfg.RequestTimeout)
			defer cancel()
		}
	}

	// Admission: the shared decomposition proves absence without a search.
	// Every registered method returns a connected k-core or k-truss around
	// the query node, so the check is method-agnostic.
	ti := time.Now()
	admitted := admit(st, req.Query, req.K, req.Model)
	qm.IndexNS = time.Since(ti).Nanoseconds()
	if !admitted {
		qm.IndexHit = true
		e.ctr.indexRejects.Add(1)
		return nil, cserr.ErrNoCommunity
	}

	out, err, joined := e.flight.do(ctx, flightKey{req, st.version}, func(cctx context.Context) (*searchOutcome, error) {
		return e.compute(cctx, st, req), nil
	})
	if joined {
		qm.Coalesced = true
		e.ctr.coalesced.Add(1)
	}
	if err != nil {
		return nil, err // context expired while waiting
	}
	qm.DistHit, qm.DistNS, qm.SearchNS = out.distHit, out.distNS, out.searchNS
	qm.Shed = out.shed
	return out.out, out.err
}

// compute performs the cache-miss path of one request under the concurrency
// cap, against one fixed state generation. ctx is the flight's computation
// context: it is cancelled when every caller has abandoned the request,
// which stops the search loops and frees the slot. Only error-free outcomes
// land in the cache, and only when no mutation intervened (fill fence).
func (e *Engine) compute(ctx context.Context, st *engState, req query.Request) *searchOutcome {
	out := &searchOutcome{}
	// Shed-before-queue: when the in-flight bound is hit, fail this request
	// now rather than letting it queue on the sem — under sustained overload
	// a queue only converts load into latency.
	if max := int64(e.cfg.MaxInFlight); max > 0 {
		if e.inflight.Add(1) > max {
			e.inflight.Add(-1)
			e.ctr.shed.Add(1)
			out.shed = true
			out.err = fmt.Errorf("%w: %d computations in flight", cserr.ErrOverloaded, max)
			return out
		}
		defer e.inflight.Add(-1)
	}
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		out.err = ctx.Err()
		return out
	}
	defer func() { <-e.sem }()
	// "engine.search" is the fault-injection site for a slow or failing
	// search execution; it holds a concurrency slot while it sleeps, so an
	// armed delay is also the deterministic way to fill MaxInFlight in tests.
	if err := faults.Check("engine.search"); err != nil {
		out.err = err
		return out
	}

	td := time.Now()
	dist, hit := e.queryDist(st, req.Query)
	out.distHit = hit
	out.distNS = time.Since(td).Nanoseconds()

	ts := time.Now()
	e.ctr.searchRuns.Add(1)
	res, err := query.Run(ctx, st.g, st.metric, dist, req)
	out.searchNS = time.Since(ts).Nanoseconds()
	out.out, out.err = res, err
	if err == nil {
		e.fill(st, func() { e.results.put(req, res) })
	}
	return out
}

// fill runs a cache insertion for a value computed against st, unless a
// mutation has been applied since st was current. The read-lock pairs with
// Apply's write-locked epoch bump: a fill is either fully visible to the
// mutation's scoped sweep or skips itself, so stale entries can never
// outlive the sweep.
func (e *Engine) fill(st *engState, put func()) {
	e.pubMu.RLock()
	if e.epoch.Load() == st.version {
		put()
	}
	e.pubMu.RUnlock()
}

// queryDist returns the f(·,q) vector from the distance cache, computing and
// caching it (single-flight per q and generation) on a miss. hit reports a
// cache hit. The computation is brief and always completes, so it runs
// detached from request contexts and warms the cache even for abandoned
// requests — unless a mutation intervened (fill fence).
func (e *Engine) queryDist(st *engState, q graph.NodeID) (dist []float64, hit bool) {
	if d, ok := e.dists.get(q); ok && len(d) >= st.g.NumNodes() {
		return d, true
	}
	d, _, _ := e.dflight.do(context.Background(), distKey{q, st.version}, func(context.Context) ([]float64, error) {
		d := st.metric.QueryDist(q)
		e.fill(st, func() { e.dists.put(q, d) })
		return d, nil
	})
	return d, false
}

// admit reports whether a community under the structural model can exist
// around q, answered from the shared decompositions. A false return is
// definitive: any method would return ErrNoCommunity. (A k-core or k-truss
// of any induced subgraph is one of g itself, so a full-graph rejection
// covers every sample too.)
func admit(st *engState, q graph.NodeID, k int, model sea.Model) bool {
	switch model {
	case sea.KTruss:
		return int(st.nodeTruss()[q]) >= k
	default:
		return int(st.core[q]) >= k
	}
}
