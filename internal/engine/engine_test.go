package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/attr"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/sea"
)

// testDataset builds a small planted-community graph shared by the tests.
func testDataset(t testing.TB) *dataset.Generated {
	t.Helper()
	d, err := dataset.Generate(dataset.Spec{
		Name: "engine-test", Nodes: 400, MinCommunity: 12, MaxCommunity: 28,
		IntraDegree: 8, InterDegree: 0.8,
		TokensPerNode: 4, PoolSize: 5, Vocab: 80, NoiseProb: 0.15,
		NumDim: 2, NumSigma: 0.06, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testEngine(t testing.TB, cfg Config) (*Engine, *dataset.Generated, graph.NodeID) {
	t.Helper()
	d := testDataset(t)
	e, err := New(d.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, d, d.QueryNodes(1, 6, 3)[0]
}

func testOpts() sea.Options {
	o := sea.DefaultOptions()
	o.K = 6
	o.MaxRounds = 2
	return o
}

func TestEngineMatchesDirectSearch(t *testing.T) {
	e, d, q := testEngine(t, DefaultConfig())
	opts := testOpts()

	got, err := e.Search(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := attr.NewMetric(d.Graph, DefaultConfig().Gamma)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sea.Search(d.Graph, m, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Community) != fmt.Sprint(want.Community) {
		t.Errorf("community mismatch:\nengine %v\ndirect %v", got.Community, want.Community)
	}
	if got.Delta != want.Delta || got.CI != want.CI || got.Satisfied != want.Satisfied {
		t.Errorf("result mismatch: engine δ=%v CI=%v sat=%v, direct δ=%v CI=%v sat=%v",
			got.Delta, got.CI, got.Satisfied, want.Delta, want.CI, want.Satisfied)
	}
}

func TestEngineResultCacheHit(t *testing.T) {
	e, _, q := testEngine(t, DefaultConfig())
	opts := testOpts()
	ctx := context.Background()

	first, qm1, err := e.SearchWithMetrics(ctx, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if qm1.ResultHit || qm1.DistHit {
		t.Fatalf("first query must miss: %+v", qm1)
	}
	second, qm2, err := e.SearchWithMetrics(ctx, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !qm2.ResultHit {
		t.Fatalf("second identical query must hit the result cache: %+v", qm2)
	}
	if second != first {
		t.Error("cache hit should return the shared result")
	}
	if s := e.Stats(); s.SearchRuns != 1 || s.ResultHits != 1 {
		t.Errorf("stats after hit: %+v", s)
	}

	// Same query under different options shares the distance vector.
	opts2 := opts
	opts2.K = 4
	_, qm3, err := e.SearchWithMetrics(ctx, q, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if qm3.ResultHit || !qm3.DistHit {
		t.Fatalf("changed options: want result miss + dist hit, got %+v", qm3)
	}
}

func TestEngineCacheEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DistCacheSize = 2
	cfg.ResultCacheSize = 2
	cfg.CacheShards = 1
	e, d, _ := testEngine(t, cfg)
	opts := testOpts()
	opts.K = 2 // low k so any query node hosts a community
	ctx := context.Background()

	qs := d.QueryNodes(3, 2, 5)
	for _, q := range qs {
		if _, err := e.Search(ctx, q, opts); err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
	}
	s := e.Stats()
	if s.DistEvictions < 1 || s.ResultEvictions < 1 {
		t.Fatalf("expected evictions from capacity-2 caches: %+v", s)
	}
	if s.DistEntries != 2 || s.ResultEntries != 2 {
		t.Fatalf("expected full caches: %+v", s)
	}
	// The oldest query was evicted, so it recomputes.
	_, qm, err := e.SearchWithMetrics(ctx, qs[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	if qm.ResultHit || qm.DistHit {
		t.Fatalf("evicted query should recompute, got %+v", qm)
	}
}

func TestEngineIndexReject(t *testing.T) {
	e, d, _ := testEngine(t, DefaultConfig())
	ctx := context.Background()

	// Pick the node with the smallest coreness; asking for k one above its
	// coreness must be rejected by the shared index, with no search run.
	var q graph.NodeID
	for v := 0; v < d.Graph.NumNodes(); v++ {
		if e.Coreness(graph.NodeID(v)) < e.Coreness(q) {
			q = graph.NodeID(v)
		}
	}
	opts := testOpts()
	opts.K = int(e.Coreness(q)) + 1

	_, qm, err := e.SearchWithMetrics(ctx, q, opts)
	if !errors.Is(err, sea.ErrNoCommunity) {
		t.Fatalf("want ErrNoCommunity, got %v", err)
	}
	if !qm.IndexHit {
		t.Fatalf("want index reject, got %+v", qm)
	}
	if s := e.Stats(); s.IndexRejects != 1 || s.SearchRuns != 0 {
		t.Fatalf("reject must not run a search: %+v", s)
	}
	// The index's answer agrees with an actual search.
	m, _ := attr.NewMetric(d.Graph, DefaultConfig().Gamma)
	if _, err := sea.Search(d.Graph, m, q, opts); !errors.Is(err, sea.ErrNoCommunity) {
		t.Fatalf("direct search disagrees with index: %v", err)
	}

	// Same for the truss-level index.
	topts := opts
	topts.Model = sea.KTruss
	topts.K = int(e.st.Load().nodeTruss()[q]) + 1
	_, qm, err = e.SearchWithMetrics(ctx, q, topts)
	if !errors.Is(err, sea.ErrNoCommunity) || !qm.IndexHit {
		t.Fatalf("truss reject: err=%v metrics=%+v", err, qm)
	}
	if _, err := sea.Search(d.Graph, m, q, topts); !errors.Is(err, sea.ErrNoCommunity) {
		t.Fatalf("direct truss search disagrees with index: %v", err)
	}
}

func TestEngineCoalescing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 1
	e, _, q := testEngine(t, cfg)
	opts := testOpts()
	key := flightKey{req: query.FromOptions(q, opts).WithDefaults(), version: e.Version()}

	e.sem <- struct{}{} // block the compute path behind the concurrency cap

	const callers = 6
	results := make(chan *sea.Result, callers)
	errc := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			res, err := e.Search(context.Background(), q, opts)
			results <- res
			errc <- err
		}()
	}
	waitFor(t, func() bool { return e.flight.waiting(key) == callers }, "callers to coalesce")
	<-e.sem // release; the single shared computation proceeds

	var first *sea.Result
	for i := 0; i < callers; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
		res := <-results
		if first == nil {
			first = res
		} else if res != first {
			t.Fatal("coalesced callers should share one result")
		}
	}
	s := e.Stats()
	if s.SearchRuns != 1 {
		t.Fatalf("coalesced queries ran %d searches, want 1", s.SearchRuns)
	}
	if s.Coalesced != callers-1 {
		t.Fatalf("coalesced=%d, want %d", s.Coalesced, callers-1)
	}
}

func TestEngineRequestDeadline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 1
	cfg.RequestTimeout = time.Nanosecond
	e, _, q := testEngine(t, cfg)
	opts := testOpts()

	e.sem <- struct{}{} // hold the computation so the deadline must fire
	_, _, err := e.SearchWithMetrics(context.Background(), q, opts)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	<-e.sem

	// The deadline cancelled the underlying computation (no caller was left
	// waiting), so nothing lands in the cache and the slot is free again; a
	// request that brings its own ample deadline succeeds from scratch.
	waitFor(t, func() bool {
		e.flight.mu.Lock()
		defer e.flight.mu.Unlock()
		return len(e.flight.calls) == 0
	}, "cancelled computation to drain")
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, qm, err := e.SearchWithMetrics(ctx, q, opts)
	if err != nil || res == nil || qm.ResultHit {
		t.Fatalf("fresh retry: res=%v metrics=%+v err=%v", res, qm, err)
	}
}

func TestEngineBatchSearch(t *testing.T) {
	e, d, _ := testEngine(t, DefaultConfig())
	opts := testOpts()
	opts.K = 2

	qs := d.QueryNodes(4, 2, 9)
	queries := append(append([]graph.NodeID{}, qs...), qs[0]) // duplicate tail
	items, err := e.BatchSearch(context.Background(), queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(queries) {
		t.Fatalf("got %d items, want %d", len(items), len(queries))
	}
	for i, it := range items {
		if it.Query != queries[i] {
			t.Fatalf("item %d out of order: %d != %d", i, it.Query, queries[i])
		}
		if it.Err != nil {
			t.Fatalf("item %d: %v", i, it.Err)
		}
	}
	// The duplicate was served without a second execution.
	if s := e.Stats(); s.SearchRuns != uint64(len(qs)) {
		t.Errorf("runs=%d, want %d (duplicate must not recompute)", s.SearchRuns, len(qs))
	}

	var sb strings.Builder
	if err := WriteMetricsCSV(&sb, items); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(items)+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), len(items)+1)
	}
	if !strings.HasPrefix(lines[0], "query,k,model,") {
		t.Fatalf("bad CSV header: %q", lines[0])
	}
}

func TestEngineBatchCancelled(t *testing.T) {
	e, d, _ := testEngine(t, DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items, err := e.BatchSearch(ctx, d.QueryNodes(3, 2, 9), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if it.Err == nil {
			t.Fatal("cancelled batch items must carry an error")
		}
	}
}

func TestEngineInvalidInputs(t *testing.T) {
	e, _, q := testEngine(t, DefaultConfig())
	ctx := context.Background()

	bad := testOpts()
	bad.K = 0
	if _, err := e.Search(ctx, q, bad); err == nil {
		t.Error("invalid options accepted")
	}
	if _, err := e.Search(ctx, -1, testOpts()); err == nil {
		t.Error("negative query accepted")
	}
	if _, err := e.Search(ctx, graph.NodeID(e.Graph().NumNodes()), testOpts()); err == nil {
		t.Error("out-of-range query accepted")
	}
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("nil graph accepted")
	}
	cfg := DefaultConfig()
	cfg.Gamma = 2
	if _, err := New(testDataset(t).Graph, cfg); err == nil {
		t.Error("invalid gamma accepted")
	}
}

// TestEngineConcurrentMixed hammers one engine with a mix of models, ks,
// invalid queries and tiny caches; run under -race this is the
// concurrent-access test of the serving layer.
func TestEngineConcurrentMixed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DistCacheSize = 4
	cfg.ResultCacheSize = 8
	cfg.CacheShards = 2
	e, d, _ := testEngine(t, cfg)
	qs := d.QueryNodes(8, 2, 17)

	const goroutines = 16
	done := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		go func(gi int) {
			ctx := context.Background()
			for i := 0; i < 10; i++ {
				opts := testOpts()
				opts.K = 2 + (gi+i)%3
				if gi%4 == 3 {
					opts.Model = sea.KTruss
					opts.K = 3
				}
				q := qs[(gi+i)%len(qs)]
				if gi%5 == 4 && i%3 == 0 {
					q = -1 // invalid on purpose
				}
				res, err := e.Search(ctx, q, opts)
				if q == -1 {
					if err == nil {
						done <- errors.New("invalid query accepted")
						return
					}
					continue
				}
				if err != nil && !errors.Is(err, sea.ErrNoCommunity) {
					done <- fmt.Errorf("q=%d k=%d: %w", q, opts.K, err)
					return
				}
				if err == nil && len(res.Community) == 0 {
					done <- errors.New("empty community without error")
					return
				}
			}
			done <- nil
		}(gi)
	}
	for i := 0; i < goroutines; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.Queries == 0 || s.SearchRuns == 0 {
		t.Fatalf("stress ran nothing: %+v", s)
	}
}

// TestEngineCachedSpeedup codifies the acceptance criterion: the cached path
// must be at least 5× faster than a cold sea.Search (in practice it is
// orders of magnitude faster — one cold search vs one cache lookup).
func TestEngineCachedSpeedup(t *testing.T) {
	e, d, q := testEngine(t, DefaultConfig())
	opts := testOpts()
	ctx := context.Background()

	if _, err := e.Search(ctx, q, opts); err != nil { // warm
		t.Fatal(err)
	}

	const iters = 50
	tc := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := e.Search(ctx, q, opts); err != nil {
			t.Fatal(err)
		}
	}
	cached := time.Since(tc) / iters

	cold := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ { // best of 3 favors the cold side
		t0 := time.Now()
		m, err := attr.NewMetric(d.Graph, DefaultConfig().Gamma)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sea.Search(d.Graph, m, q, opts); err != nil {
			t.Fatal(err)
		}
		if el := time.Since(t0); el < cold {
			cold = el
		}
	}
	if cached == 0 {
		return // below timer resolution: trivially faster
	}
	if ratio := float64(cold) / float64(cached); ratio < 5 {
		t.Fatalf("cached path only %.1f× faster than cold search (cold %v, cached %v); want ≥ 5×",
			ratio, cold, cached)
	}
}
