package engine

// Regression tests for request interruption: per-item deadlines must cancel
// the underlying search (not just the wait), and the unified Query path
// must answer every registered method through the shared index and caches.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/sea"
)

// slowEngine builds an engine over a 6000-node ring lattice whose SEA
// search takes hundreds of milliseconds (see internal/sea's cancellation
// test for the workload's anatomy), with one worker and one concurrency
// slot so a stuck search blocks everything behind it.
func slowEngine(t testing.TB, timeout time.Duration) *Engine {
	t.Helper()
	const n, d = 6000, 6
	rng := rand.New(rand.NewSource(3))
	b := graph.NewBuilder(n, 1)
	for i := 0; i < n; i++ {
		b.SetNumAttrs(graph.NodeID(i), rng.Float64())
		for j := 1; j <= d; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID((i+j)%n))
		}
	}
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 1
	cfg.Workers = 1
	cfg.RequestTimeout = timeout
	e, err := New(b.MustBuild(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// slowRequest makes one SEA round walk the full greedy peel of the
// whole-graph community: sample everything, demand an unreachable bound.
func slowRequest(q graph.NodeID) query.Request {
	req := query.DefaultRequest(q)
	req.K = 4
	req.Lambda = 1
	req.Eps = 0.01
	req.ErrorBound = 0.0001
	req.MaxRounds = 1
	return req
}

// TestBatchItemTimeoutInterruptsSearch is the regression test for the
// engine's per-item deadline: with one worker and one concurrency slot,
// three artificially slow queries (~500ms each if left alone) must all be
// cancelled at their ~50ms deadlines, so the whole batch finishes in well
// under the ~1.5s the uninterrupted searches would take.
func TestBatchItemTimeoutInterruptsSearch(t *testing.T) {
	e := slowEngine(t, 50*time.Millisecond)
	reqs := []query.Request{slowRequest(0), slowRequest(2000), slowRequest(4000)}

	t0 := time.Now()
	items, err := e.Batch(context.Background(), reqs)
	elapsed := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if !errors.Is(it.Err, context.DeadlineExceeded) {
			t.Fatalf("item %d: want DeadlineExceeded, got %v", i, it.Err)
		}
	}
	// Three 50ms deadlines plus cancellation latency; an engine that only
	// abandoned the wait would keep the single slot busy for the full
	// search on every item and take several times longer.
	if elapsed > time.Second {
		t.Fatalf("batch with per-item 50ms deadlines took %v; deadlines are not interrupting searches", elapsed)
	}
}

// TestQueryAnswersEveryMethod drives one Request through every registered
// method via the unified engine path on a realistic dataset, checking
// caches and admission work method-agnostically.
func TestQueryAnswersEveryMethod(t *testing.T) {
	e, _, q := testEngine(t, DefaultConfig())
	ctx := context.Background()
	for _, m := range query.Methods() {
		req := query.DefaultRequest(q)
		req.K = 2
		req.Method = m
		req.MaxStates = 20000
		out, qm, err := e.QueryWithMetrics(ctx, req)
		if err != nil && !errors.Is(err, ErrQueryOutOfRange) {
			// Budget exhaustion still carries a community.
			if out == nil || len(out.Community) == 0 {
				t.Fatalf("%v: %v", m, err)
			}
		}
		if qm.Method != m.String() {
			t.Fatalf("%v: metrics method %q", m, qm.Method)
		}
		// An identical request must now hit the cache (error-free runs only).
		if err == nil {
			out2, qm2, err2 := e.QueryWithMetrics(ctx, req)
			if err2 != nil || !qm2.ResultHit || out2 != out {
				t.Fatalf("%v: identical request missed the cache: hit=%v err=%v", m, qm2.ResultHit, err2)
			}
		}
	}
}

// TestQueryIndexRejectIsMethodAgnostic pins the shared admission index on
// the unified path: a query node whose coreness is below k is rejected for
// every method without running a search.
func TestQueryIndexRejectIsMethodAgnostic(t *testing.T) {
	e, d, _ := testEngine(t, DefaultConfig())
	var q graph.NodeID
	for v := 0; v < d.Graph.NumNodes(); v++ {
		if e.Coreness(graph.NodeID(v)) < e.Coreness(q) {
			q = graph.NodeID(v)
		}
	}
	runsBefore := e.Stats().SearchRuns
	for _, m := range []query.Method{query.MethodSEA, query.MethodExact, query.MethodVAC, query.MethodStructural} {
		req := query.DefaultRequest(q)
		req.K = int(e.Coreness(q)) + 1
		req.Method = m
		_, qm, err := e.QueryWithMetrics(context.Background(), req)
		if !errors.Is(err, sea.ErrNoCommunity) || !qm.IndexHit {
			t.Fatalf("%v: want index reject, got err=%v metrics=%+v", m, err, qm)
		}
	}
	if got := e.Stats().SearchRuns; got != runsBefore {
		t.Fatalf("index rejects ran %d searches", got-runsBefore)
	}
}

// TestRequestRoundTripsThroughEngine is the acceptance criterion's
// library-vs-engine leg: one Request answered directly by a Searcher and
// through the Engine yields the identical community and δ.
func TestRequestRoundTripsThroughEngine(t *testing.T) {
	e, d, q := testEngine(t, DefaultConfig())
	for _, m := range []query.Method{query.MethodSEA, query.MethodExact, query.MethodVAC} {
		// k=6 keeps the maximal community small enough for exact to finish.
		req := query.DefaultRequest(q)
		req.K = 6
		req.Method = m
		req.MaxStates = 500000

		viaEngine, err := e.Query(context.Background(), req)
		if err != nil {
			t.Fatalf("%v engine: %v", m, err)
		}
		s, err := query.NewSearcher(m)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := s.Search(context.Background(), d.Graph, req)
		if err != nil {
			t.Fatalf("%v direct: %v", m, err)
		}
		if fmt.Sprint(viaEngine.Community) != fmt.Sprint(direct.Community) || viaEngine.Delta != direct.Delta {
			t.Fatalf("%v: engine %v δ=%v vs direct %v δ=%v",
				m, viaEngine.Community, viaEngine.Delta, direct.Community, direct.Delta)
		}
	}
}
