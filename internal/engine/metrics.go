package engine

import (
	"strconv"
	"sync/atomic"
)

// QueryMetrics captures per-request stage timing and cache provenance. The
// struct is intentionally flat and CSV-friendly so serving experiments can
// stream one row per request. All durations are nanoseconds; zero means the
// stage did not run (e.g. SearchNS on a result-cache hit).
//
// For a request that joined an in-flight identical query (Coalesced), the
// stage timings are those of the shared execution, not of the wait.
type QueryMetrics struct {
	Query     int64  `json:"query"`      // query node ID
	K         int    `json:"k"`          // structural parameter
	Model     string `json:"model"`      // community model name
	Method    string `json:"method"`     // search method name
	ResultHit bool   `json:"result_hit"` // served from the result cache
	DistHit   bool   `json:"dist_hit"`   // f(·,q) vector served from the distance cache
	Coalesced bool   `json:"coalesced"`  // joined an identical in-flight query
	Shed      bool   `json:"shed"`       // rejected by MaxInFlight admission control (429)
	IndexHit  bool   `json:"index_hit"`  // shared index answered admission (reject) without a search
	IndexNS   int64  `json:"index_ns"`   // shared-index admission check
	DistNS    int64  `json:"dist_ns"`    // distance-vector fetch or compute
	SearchNS  int64  `json:"search_ns"`  // SEA search proper
	TotalNS   int64  `json:"total_ns"`   // whole request, queueing included
	Err       string `json:"err"`        // empty on success
}

// QueryMetricsHeader returns the CSV header matching CSVRecord.
func QueryMetricsHeader() []string {
	return []string{
		"query", "k", "model", "method", "result_hit", "dist_hit", "coalesced",
		"shed", "index_hit", "index_ns", "dist_ns", "search_ns", "total_ns", "err",
	}
}

// CSVRecord renders the metrics as one CSV row.
func (m QueryMetrics) CSVRecord() []string {
	return []string{
		strconv.FormatInt(m.Query, 10),
		strconv.Itoa(m.K),
		m.Model,
		m.Method,
		strconv.FormatBool(m.ResultHit),
		strconv.FormatBool(m.DistHit),
		strconv.FormatBool(m.Coalesced),
		strconv.FormatBool(m.Shed),
		strconv.FormatBool(m.IndexHit),
		strconv.FormatInt(m.IndexNS, 10),
		strconv.FormatInt(m.DistNS, 10),
		strconv.FormatInt(m.SearchNS, 10),
		strconv.FormatInt(m.TotalNS, 10),
		m.Err,
	}
}

// counters aggregates engine-wide event counts with atomic increments.
type counters struct {
	queries      atomic.Uint64
	searchRuns   atomic.Uint64
	coalesced    atomic.Uint64
	indexRejects atomic.Uint64
	errors       atomic.Uint64
	shed         atomic.Uint64

	mutations          atomic.Uint64
	deltas             atomic.Uint64
	resultInvalidation atomic.Uint64
	distInvalidation   atomic.Uint64
	distExtended       atomic.Uint64
}

// Stats is a point-in-time snapshot of the engine's aggregate state,
// flat for JSON (/stats) and CSV export.
type Stats struct {
	Queries      uint64 `json:"queries"`       // Search/BatchSearch requests accepted
	SearchRuns   uint64 `json:"search_runs"`   // SEA executions actually performed
	Coalesced    uint64 `json:"coalesced"`     // requests that joined an in-flight twin
	IndexRejects uint64 `json:"index_rejects"` // requests rejected by the shared index
	Errors       uint64 `json:"errors"`        // requests that returned an error
	Shed         uint64 `json:"shed"`          // requests shed by MaxInFlight admission control

	ResultHits      uint64 `json:"result_hits"`
	ResultMisses    uint64 `json:"result_misses"`
	ResultEvictions uint64 `json:"result_evictions"`
	ResultEntries   int    `json:"result_entries"`

	DistHits      uint64 `json:"dist_hits"`
	DistMisses    uint64 `json:"dist_misses"`
	DistEvictions uint64 `json:"dist_evictions"`
	DistEntries   int    `json:"dist_entries"`

	// Live-update counters: applied mutation batches/deltas, the current
	// graph generation, and the scoped-invalidation tallies — cache entries
	// dropped because their query node fell in a mutation's affected
	// region, and distance vectors extended in place for appended nodes.
	Mutations           uint64 `json:"mutations"`
	DeltasApplied       uint64 `json:"deltas_applied"`
	GraphVersion        uint64 `json:"graph_version"`
	ResultInvalidations uint64 `json:"result_invalidations"`
	DistInvalidations   uint64 `json:"dist_invalidations"`
	DistExtensions      uint64 `json:"dist_extensions"`
}

// Stats returns a snapshot of the engine's counters and cache occupancy.
func (e *Engine) Stats() Stats {
	s := Stats{
		Queries:             e.ctr.queries.Load(),
		SearchRuns:          e.ctr.searchRuns.Load(),
		Coalesced:           e.ctr.coalesced.Load(),
		IndexRejects:        e.ctr.indexRejects.Load(),
		Errors:              e.ctr.errors.Load(),
		Shed:                e.ctr.shed.Load(),
		Mutations:           e.ctr.mutations.Load(),
		DeltasApplied:       e.ctr.deltas.Load(),
		GraphVersion:        e.Version(),
		ResultInvalidations: e.ctr.resultInvalidation.Load(),
		DistInvalidations:   e.ctr.distInvalidation.Load(),
		DistExtensions:      e.ctr.distExtended.Load(),
	}
	s.ResultHits, s.ResultMisses, s.ResultEvictions, s.ResultEntries = e.results.stats()
	s.DistHits, s.DistMisses, s.DistEvictions, s.DistEntries = e.dists.stats()
	return s
}
