package engine

// Live graph updates. Apply folds a batch of mutate.Deltas into the serving
// state without a reload or an engine hot-swap:
//
//  1. a mutate.Session accumulates the deltas in a graph.Overlay and
//     maintains the coreness and per-edge trussness indexes incrementally
//     (bounded re-computation over the affected scope, never the graph);
//  2. the overlay materializes into a fresh immutable CSR graph and the
//     metric is rebound to it, keeping the mounted normalizer table;
//  3. cache fills from pre-mutation computations are fenced off (epoch
//     bump), then the caches are swept with *scoped* invalidation: an entry
//     is dropped only if its query node lies in the mutation's affected
//     region, everything else stays warm;
//  4. the new state publishes with one atomic pointer store; in-flight
//     queries finish on the generation they loaded at entry.
//
// The affected region of a result entry (q, k, model) is sound by
// construction: an outcome can change only if the maximal connected
// k-core/k-truss around q (before or after the mutation) contains a touched
// node — a mutation endpoint, an index-changed node, or an attribute-changed
// node. The sweep reaches exactly the nodes connected to the touched set
// through nodes whose index level (max of old and new) is ≥ k, in the union
// of the old and new adjacencies, which covers both sides conservatively.
// Distance vectors depend only on attributes, so structural mutations leave
// the whole distance cache warm; an attribute change invalidates only the
// vectors of queries connected to the changed node (a disconnected q can
// never read the stale entry), and appended nodes extend surviving vectors
// copy-on-write instead of dropping them.

import (
	"fmt"
	"time"

	"repro/internal/attr"
	"repro/internal/cserr"
	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/query"
	"repro/internal/sea"
	"repro/internal/truss"
)

// ApplyResult reports what one mutation batch did.
type ApplyResult struct {
	// Applied is the number of deltas folded in (all of them: a batch is
	// all-or-nothing).
	Applied int `json:"applied"`
	// NewNodes lists the IDs assigned to add_node deltas, in batch order.
	NewNodes []graph.NodeID `json:"new_nodes,omitempty"`
	// Version is the graph generation after the batch.
	Version uint64 `json:"version"`
	// Nodes/Edges describe the post-mutation graph.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// ResultsInvalidated / DistsInvalidated count cache entries dropped by
	// the scoped sweep; DistsExtended counts distance vectors grown in
	// place for appended nodes.
	ResultsInvalidated int `json:"results_invalidated"`
	DistsInvalidated   int `json:"dists_invalidated"`
	DistsExtended      int `json:"dists_extended"`
	// ApplyNS is the apply stage: session fold, materialization and index
	// rebind. InvalidateNS is the scoped cache sweep. (Journal timing is the
	// journal owner's — see catalog.MutateResult.JournalNS.)
	ApplyNS      int64 `json:"apply_ns"`
	InvalidateNS int64 `json:"invalidate_ns"`
	// TouchedNodes is the size of the mutation's touched set (endpoints,
	// index-changed and attribute-changed nodes). RegionNodes is the size of
	// the union of affected regions the sweep actually expanded — regions
	// are computed lazily per cached (model, k), so 0 means no cached entry
	// required an expansion, not that the mutation touched nothing.
	TouchedNodes int `json:"touched_nodes"`
	RegionNodes  int `json:"region_nodes"`
	// Groups is the number of caller groups the batch coalesced (1 for a
	// plain Apply); GroupsApplied counts the groups that validated and were
	// folded in — rejected groups are skipped whole, they never partially
	// apply.
	Groups        int `json:"groups,omitempty"`
	GroupsApplied int `json:"groups_applied,omitempty"`
}

// GroupOutcome reports one caller group of an ApplyGroups batch: either the
// group applied whole (Applied, with the node IDs its add_node deltas were
// assigned), or it was rejected whole (Err identifies the failing delta as
// "delta i: ..." — the same error Apply would return for the group alone).
type GroupOutcome struct {
	Applied  bool
	NewNodes []graph.NodeID
	Err      error
}

// Apply folds one batch of deltas into the serving state, maintaining the
// admission indexes incrementally and invalidating only the cache entries
// whose query node falls in the affected region. The batch is
// all-or-nothing: on error nothing changes and the error wraps
// cserr.ErrInvalidRequest. Apply serializes with other Apply calls; queries
// proceed concurrently throughout.
func (e *Engine) Apply(deltas []mutate.Delta) (*ApplyResult, error) {
	res, _, err := e.ApplyGroups([][]mutate.Delta{deltas})
	return res, err
}

// ApplyGroups folds a group-commit batch — several callers' delta groups —
// into the serving state as ONE generation: one incremental-maintenance
// session, one epoch fence, one scoped cache sweep over the union of the
// touched regions, one atomic publish. Each group is all-or-nothing
// individually: a group that fails validation is rejected whole (its
// GroupOutcome carries the error) while the others still apply, exactly as
// if the groups had been applied sequentially and the failing ones skipped.
//
// The fold runs in three stages:
//
//   - prepare: every group validates against a throwaway overlay
//     (mutate.Preflight) so rejections are decided before any index
//     maintenance runs;
//   - maintain: the admitted groups stream through one mutate.Session —
//     coreness and trussness update incrementally once over the whole
//     batch, and the overlay materializes once;
//   - publish: one engState generation (version advances by exactly 1,
//     whatever the group count), one scoped invalidation over the union of
//     every group's touched region.
//
// The error is non-nil only when NO group applied (then it is the first
// group's error, and the serving state is untouched). Outcomes always has
// one entry per input group.
func (e *Engine) ApplyGroups(groups [][]mutate.Delta) (*ApplyResult, []GroupOutcome, error) {
	if len(groups) == 0 {
		return nil, nil, cserr.Invalidf("engine: empty commit batch")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Stage clock starts after the lock: ApplyNS times the work, not the
	// queueing behind other batches (the caller's wall clock covers that).
	tApply := time.Now()
	old := e.st.Load()
	outs := make([]GroupOutcome, len(groups))

	// Prepare: validate every group against a throwaway overlay. A
	// single-group batch skips the preflight — the session's own rollback
	// gives the same all-or-nothing contract without validating twice.
	admitted := groups
	if len(groups) > 1 {
		pf := mutate.NewPreflight(old.g)
		for gi, g := range groups {
			if len(g) == 0 {
				outs[gi].Err = cserr.Invalidf("engine: empty mutation batch")
				continue
			}
			if err := pf.Group(g); err != nil {
				outs[gi].Err = err
			}
		}
		admitted = pf.Admitted()
	} else if len(groups[0]) == 0 {
		outs[0].Err = cserr.Invalidf("engine: empty mutation batch")
		return nil, outs, outs[0].Err
	}
	if len(admitted) == 0 {
		return nil, outs, firstGroupErr(outs, nil)
	}

	// Seed the per-edge trussness table the first time a mutation arrives
	// after the node-truss index exists; from then on it is maintained
	// incrementally. While the node index has never been built (no k-truss
	// query yet), maintenance is skipped and the new state rebuilds lazily.
	oldTruss := old.trussPeek()
	if oldTruss != nil && e.etruss == nil {
		e.etruss = edgeTrussTable(old.g)
	}

	// Maintain: one session folds every admitted group; the admission
	// indexes update incrementally across the whole batch. An admitted
	// group cannot fail here — preflight applied the identical overlay
	// edits — except on the unpreflighted single-group path, where the
	// session rollback keeps the all-or-nothing contract.
	sess := mutate.NewSession(old.g, old.core, e.etruss)
	gi := 0
	for _, g := range admitted {
		for outs[gi].Err != nil {
			gi++ // skip rejected groups: admitted is the accepted subsequence
		}
		nn := len(sess.NewNodes())
		for i, d := range g {
			if err := sess.Apply(d); err != nil {
				sess.Rollback()
				outs[gi].Err = fmt.Errorf("delta %d: %w", i, err)
				return nil, outs, outs[gi].Err
			}
		}
		outs[gi].Applied = true
		outs[gi].NewNodes = sess.NewNodes()[nn:]
		gi++
	}

	newG := sess.Materialize()
	m, err := attr.NewMetricWithNormalizer(newG, old.metric.Gamma(), old.metric.Normalizer())
	if err != nil {
		sess.Rollback()
		return nil, outs, err
	}
	st := &engState{g: newG, metric: m, core: sess.Core(), version: old.version + 1}
	if nt := sess.NodeTruss(oldTruss); nt != nil {
		st.adoptTruss(nt)
	}
	applyNS := time.Since(tApply).Nanoseconds()

	// Publish. Fence: the write-locked bump waits out in-flight cache fills
	// and makes every later fill observe the new epoch (and skip itself,
	// since it computed against the old state) — so the sweep below removes
	// every stale entry for good.
	e.pubMu.Lock()
	e.epoch.Add(1)
	e.pubMu.Unlock()
	res := &ApplyResult{
		Applied:       sess.Applied(),
		NewNodes:      sess.NewNodes(),
		Version:       st.version,
		Nodes:         newG.NumNodes(),
		Edges:         newG.NumEdges(),
		ApplyNS:       applyNS,
		Groups:        len(groups),
		GroupsApplied: len(admitted),
	}
	tInv := time.Now()
	sw := e.invalidateScoped(old, st, sess)
	res.InvalidateNS = time.Since(tInv).Nanoseconds()
	res.ResultsInvalidated, res.DistsInvalidated, res.DistsExtended = sw.results, sw.dists, sw.extended
	res.TouchedNodes, res.RegionNodes = sw.touched, sw.region
	e.lat.mutApply.Observe(res.ApplyNS)
	e.lat.mutInvalidate.Observe(res.InvalidateNS)
	e.st.Store(st)

	e.ctr.mutations.Add(1)
	e.ctr.deltas.Add(uint64(sess.Applied()))
	e.ctr.resultInvalidation.Add(uint64(res.ResultsInvalidated))
	e.ctr.distInvalidation.Add(uint64(res.DistsInvalidated))
	e.ctr.distExtended.Add(uint64(res.DistsExtended))
	return res, outs, nil
}

// firstGroupErr returns the first rejected group's error (fallback when none
// is recorded) — the batch-level error when no group applied.
func firstGroupErr(outs []GroupOutcome, fallback error) error {
	for _, o := range outs {
		if o.Err != nil {
			return o.Err
		}
	}
	if fallback != nil {
		return fallback
	}
	return cserr.Invalidf("engine: no group in the commit batch applied")
}

// edgeTrussTable runs one full truss decomposition and keys it by endpoint
// pair, the persistent form the incremental maintenance works on.
func edgeTrussTable(g graph.CSR) map[mutate.Edge]int32 {
	ix, tr := truss.Decompose(g)
	out := make(map[mutate.Edge]int32, ix.NumEdges())
	for e := range tr {
		out[mutate.EdgeOf(ix.U[e], ix.V[e])] = tr[e]
	}
	return out
}

// sweepResult reports what one scoped invalidation pass did: cache entries
// dropped/extended plus the affected-region accounting surfaced in
// ApplyResult.
type sweepResult struct {
	results, dists, extended int
	touched                  int // structural + attribute touched nodes
	region                   int // union of the regions actually expanded
}

// invalidateScoped sweeps both caches against the mutation's affected
// region; see the file comment for the soundness argument.
func (e *Engine) invalidateScoped(old, new *engState, sess *mutate.Session) sweepResult {
	var sw sweepResult
	structural := sess.StructuralNodes()
	attrNodes := sess.AttrNodes()
	touched := make([]graph.NodeID, 0, len(structural)+len(attrNodes))
	touched = append(touched, structural...)
	touched = append(touched, attrNodes...)
	sw.touched = len(touched)
	oldN, newN := old.g.NumNodes(), new.g.NumNodes()
	oldTruss, newTruss := old.trussPeek(), new.trussPeek()

	// expandRegion grows region from the seeds over the union of old and
	// new adjacencies, entering a node only when level(v) ≥ k and expanding
	// only through entered nodes.
	expandRegion := func(seeds []graph.NodeID, level func(graph.NodeID) int32, k int) map[graph.NodeID]bool {
		region := make(map[graph.NodeID]bool, len(seeds))
		queue := make([]graph.NodeID, 0, len(seeds))
		for _, t := range seeds {
			if !region[t] {
				region[t] = true
				queue = append(queue, t)
			}
		}
		var nbr []graph.NodeID
		for i := 0; i < len(queue); i++ {
			x := queue[i]
			if int(level(x)) < k {
				continue // in the region, but no level-k path runs through it
			}
			visit := func(ns []graph.NodeID) {
				for _, w := range ns {
					if !region[w] && int(level(w)) >= k {
						region[w] = true
						queue = append(queue, w)
					}
				}
			}
			if int(x) < oldN {
				visit(old.g.NeighborsInto(&nbr, x))
			}
			if int(x) < newN {
				visit(new.g.NeighborsInto(&nbr, x))
			}
		}
		return region
	}
	coreLevel := func(v graph.NodeID) int32 {
		l := new.core[v]
		if int(v) < oldN && old.core[v] > l {
			l = old.core[v]
		}
		return l
	}
	trussLevel := func(v graph.NodeID) int32 {
		var l int32
		if int(v) < len(newTruss) {
			l = newTruss[v]
		}
		if int(v) < len(oldTruss) && oldTruss[v] > l {
			l = oldTruss[v]
		}
		return l
	}

	type regionKey struct {
		model sea.Model
		k     int
	}
	regions := make(map[regionKey]map[graph.NodeID]bool)
	regionFor := func(model sea.Model, k int) map[graph.NodeID]bool {
		rk := regionKey{model, k}
		if r, ok := regions[rk]; ok {
			return r
		}
		level := coreLevel
		if model == sea.KTruss {
			level = trussLevel
		}
		r := expandRegion(touched, level, k)
		regions[rk] = r
		return r
	}

	sw.results, _ = e.results.sweep(func(req query.Request, _ *query.Outcome) (*query.Outcome, sweepAction) {
		if req.Model == sea.KTruss && (oldTruss == nil || newTruss == nil) {
			// No truss index on one side means no scoped region can be
			// proven for the entry; drop it conservatively. (Reachable only
			// when k-truss results were cached against an index a reload
			// discarded — a mutation itself never unbuilds the index.)
			return nil, sweepDrop
		}
		if regionFor(req.Model, req.K)[req.Query] {
			return nil, sweepDrop
		}
		return nil, sweepKeep
	})

	// Distance vectors depend only on attributes: a structural mutation
	// invalidates none of them. An attribute change invalidates the vectors
	// of queries connected to a changed node (level 0 = plain reachability
	// in either graph). Appended nodes are excluded from the seeds: no
	// existing vector can hold a stale entry for a node that did not exist,
	// so they only extend surviving vectors in place.
	attrSeeds := make([]graph.NodeID, 0, len(attrNodes))
	for _, v := range attrNodes {
		if int(v) < oldN {
			attrSeeds = append(attrSeeds, v)
		}
	}
	var attrRegion map[graph.NodeID]bool
	if len(attrSeeds) > 0 {
		attrRegion = expandRegion(attrSeeds, func(graph.NodeID) int32 { return 1 }, 0)
	}
	sw.dists, sw.extended = e.dists.sweep(func(q graph.NodeID, vec []float64) ([]float64, sweepAction) {
		if attrRegion[q] {
			return nil, sweepDrop
		}
		if len(vec) < newN {
			grown := make([]float64, newN)
			copy(grown, vec)
			for v := len(vec); v < newN; v++ {
				grown[v] = new.metric.Distance(graph.NodeID(v), q)
			}
			return grown, sweepReplace
		}
		return nil, sweepKeep
	})

	// Affected-region accounting: the union of every region the sweep
	// expanded. Regions are built lazily per cached (model, k), so this
	// reflects the expansion work done, not a hypothetical full region.
	union := make(map[graph.NodeID]bool)
	for _, r := range regions {
		for v := range r {
			union[v] = true
		}
	}
	for v := range attrRegion {
		union[v] = true
	}
	sw.region = len(union)
	return sw
}
