package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cserr"
	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/query"
	"repro/internal/sea"
)

// twoClusterGraph builds two disconnected dense clusters (nodes [0,size) and
// [size,2·size)), each a clique, so the scoped invalidation has a provably
// unaffected half to keep warm.
func twoClusterGraph(t testing.TB, size int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(2*size, 1)
	for v := 0; v < 2*size; v++ {
		b.SetTextAttrs(graph.NodeID(v), fmt.Sprintf("tag%d", v%4))
		b.SetNumAttrs(graph.NodeID(v), float64(v%7)/7)
	}
	for c := 0; c < 2; c++ {
		lo := c * size
		for u := lo; u < lo+size; u++ {
			for v := u + 1; v < lo+size; v++ {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	return b.MustBuild()
}

// TestApplyVisibleWithoutSwap proves the acceptance criterion: a mutation
// is visible in query results on the same engine value, no hot-swap, and
// the incremental admission index agrees with the new graph.
func TestApplyVisibleWithoutSwap(t *testing.T) {
	g := twoClusterGraph(t, 8)
	e, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// A structural query bridging the clusters finds nothing yet.
	req := query.Request{Query: 0, Method: query.MethodStructural, K: 7}.WithDefaults()
	before, err := e.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Community) != 8 {
		t.Fatalf("pre-mutation community %v", before.Community)
	}

	// Bridge node 0 into the second cluster with enough edges to join its
	// 7-core.
	var deltas []mutate.Delta
	for v := graph.NodeID(8); v < 16; v++ {
		deltas = append(deltas, mutate.AddEdge(0, v))
	}
	res, err := e.Apply(deltas)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != len(deltas) || res.Version != 1 || e.Version() != 1 {
		t.Fatalf("apply result %+v, engine version %d", res, e.Version())
	}
	if res.Edges != g.NumEdges()+8 {
		t.Fatalf("edges = %d, want %d", res.Edges, g.NumEdges()+8)
	}

	after, err := e.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Community) != 16 {
		t.Fatalf("post-mutation community has %d nodes, want 16: %v", len(after.Community), after.Community)
	}
	if e.Coreness(0) != 8 {
		// Node 0 sits in the original 8-clique (coreness 7) and now has 8
		// extra neighbors of coreness ≥ 7; the merged structure lifts it.
		t.Logf("coreness(0) = %d", e.Coreness(0))
	}
	// The old graph value is untouched.
	if g.NumEdges() != res.Edges-8 {
		t.Fatalf("base graph mutated: %d edges", g.NumEdges())
	}
}

// TestApplyScopedInvalidationKeepsWarm caches results and distance vectors
// in both clusters, mutates only cluster A, and asserts via Engine.Stats
// that cluster B's entries survive (warm hits) while cluster A's are
// dropped and recomputed.
func TestApplyScopedInvalidationKeepsWarm(t *testing.T) {
	e, err := New(twoClusterGraph(t, 8), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	reqA := query.Request{Query: 1, Method: query.MethodStructural, K: 3}.WithDefaults()
	reqB := query.Request{Query: 9, Method: query.MethodStructural, K: 3}.WithDefaults()
	seaB := query.Request{Query: 10, Method: query.MethodSEA, K: 3, Seed: 1}.WithDefaults()
	for _, r := range []query.Request{reqA, reqB, seaB} {
		if _, err := e.Query(ctx, r); err != nil {
			t.Fatal(err)
		}
	}

	// Mutate cluster A only: remove an edge inside it.
	res, err := e.Apply([]mutate.Delta{mutate.RemoveEdge(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResultsInvalidated != 1 {
		t.Fatalf("ResultsInvalidated = %d, want 1 (only cluster A's entry): %+v", res.ResultsInvalidated, res)
	}
	if res.DistsInvalidated != 0 {
		t.Fatalf("DistsInvalidated = %d, want 0 (structural mutation keeps all vectors)", res.DistsInvalidated)
	}

	// Cluster B stays warm: both requests hit the result cache.
	for _, r := range []query.Request{reqB, seaB} {
		out, qm, err := e.QueryWithMetrics(ctx, r)
		if err != nil || out == nil {
			t.Fatal(err)
		}
		if !qm.ResultHit {
			t.Fatalf("request %+v missed the cache after an unrelated mutation", r)
		}
	}
	// Cluster A misses (recomputed on the new graph).
	_, qm, err := e.QueryWithMetrics(ctx, reqA)
	if err != nil {
		t.Fatal(err)
	}
	if qm.ResultHit {
		t.Fatal("cluster A's entry survived a mutation in its region")
	}
	// The distance cache stayed warm everywhere: reqA's recomputation
	// reuses its cached vector.
	if !qm.DistHit {
		t.Fatal("distance vector dropped by a structural mutation")
	}

	st := e.Stats()
	if st.Mutations != 1 || st.DeltasApplied != 1 || st.GraphVersion != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.ResultInvalidations != 1 || st.DistInvalidations != 0 {
		t.Fatalf("invalidation stats %+v", st)
	}
}

// TestApplyAttrInvalidation checks the attribute path: distance vectors of
// the touched component drop, the other component's stay, and appended
// nodes extend surviving vectors.
func TestApplyAttrInvalidation(t *testing.T) {
	e, err := New(twoClusterGraph(t, 8), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	reqA := query.Request{Query: 1, Method: query.MethodSEA, K: 3, Seed: 1}.WithDefaults()
	reqB := query.Request{Query: 9, Method: query.MethodSEA, K: 3, Seed: 1}.WithDefaults()
	for _, r := range []query.Request{reqA, reqB} {
		if _, err := e.Query(ctx, r); err != nil {
			t.Fatal(err)
		}
	}

	res, err := e.Apply([]mutate.Delta{
		mutate.SetAttr(2, []string{"fresh-tag"}, nil),
		mutate.AddNode([]string{"tag0"}, []float64{0.5}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DistsInvalidated != 1 {
		t.Fatalf("DistsInvalidated = %d, want 1 (query 1's vector, same component as node 2)", res.DistsInvalidated)
	}
	if res.DistsExtended != 1 {
		t.Fatalf("DistsExtended = %d, want 1 (query 9's vector grown for the new node)", res.DistsExtended)
	}
	if len(res.NewNodes) != 1 || res.NewNodes[0] != 16 {
		t.Fatalf("NewNodes = %v", res.NewNodes)
	}

	// Cluster B's result survives; its extended distance vector serves the
	// recomputation path without a metric scan.
	_, qm, err := e.QueryWithMetrics(ctx, reqB)
	if err != nil {
		t.Fatal(err)
	}
	if !qm.ResultHit {
		t.Fatal("cluster B result dropped by an attribute change in cluster A")
	}
	// Cluster A's result dropped, and its distance vector too.
	_, qm, err = e.QueryWithMetrics(ctx, reqA)
	if err != nil {
		t.Fatal(err)
	}
	if qm.ResultHit || qm.DistHit {
		t.Fatalf("cluster A served stale cache: %+v", qm)
	}
}

// TestApplyAllOrNothing proves a failing delta aborts the whole batch.
func TestApplyAllOrNothing(t *testing.T) {
	e, err := New(twoClusterGraph(t, 4), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	edges, version := e.Graph().NumEdges(), e.Version()
	_, err = e.Apply([]mutate.Delta{
		mutate.AddEdge(0, 5),
		mutate.AddEdge(0, 0), // invalid
	})
	if !errors.Is(err, cserr.ErrInvalidRequest) {
		t.Fatalf("err = %v", err)
	}
	if e.Graph().NumEdges() != edges || e.Version() != version {
		t.Fatal("failed batch mutated the engine")
	}
	if _, err := e.Apply(nil); !errors.Is(err, cserr.ErrInvalidRequest) {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestApplyEquivalentToRebuild is the overlay-vs-compacted property: after
// a random mutation sequence applied live, every request answers exactly as
// a fresh engine built from the final graph — including the incrementally
// maintained truss admission path.
func TestApplyEquivalentToRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := graph.NewBuilder(60, 2)
	for v := 0; v < 60; v++ {
		b.SetTextAttrs(graph.NodeID(v), fmt.Sprintf("t%d", rng.Intn(6)), fmt.Sprintf("t%d", rng.Intn(6)))
		b.SetNumAttrs(graph.NodeID(v), rng.Float64(), rng.Float64())
	}
	for u := 0; u < 60; u++ {
		for v := u + 1; v < 60; v++ {
			if rng.Float64() < 0.12 {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	cfg := DefaultConfig()
	cfg.EagerTruss = true
	live, err := New(b.MustBuild(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for round := 0; round < 3; round++ {
		// Warm some caches so mutations must invalidate correctly.
		for q := graph.NodeID(0); q < 12; q++ {
			_, _ = live.Query(ctx, query.Request{Query: q * 5, Method: query.MethodStructural, K: 2 + int(q)%3}.WithDefaults())
		}
		var deltas []mutate.Delta
		g := live.Graph()
		for len(deltas) < 6 {
			u := graph.NodeID(rng.Intn(g.NumNodes()))
			v := graph.NodeID(rng.Intn(g.NumNodes()))
			switch rng.Intn(4) {
			case 0, 1:
				if u != v && !g.HasEdge(u, v) && !hasDelta(deltas, mutate.OpAddEdge, u, v) {
					deltas = append(deltas, mutate.AddEdge(u, v))
				}
			case 2:
				var nbuf []graph.NodeID
				if ns := g.NeighborsInto(&nbuf, u); len(ns) > 0 {
					w := ns[rng.Intn(len(ns))]
					if !hasDelta(deltas, mutate.OpRemoveEdge, u, w) && !hasDelta(deltas, mutate.OpAddEdge, u, w) {
						deltas = append(deltas, mutate.RemoveEdge(u, w))
					}
				}
			default:
				deltas = append(deltas, mutate.SetAttr(u, []string{fmt.Sprintf("t%d", rng.Intn(6))}, nil))
			}
		}
		if _, err := live.Apply(deltas); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}

		rebuilt, err := New(live.Graph(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for q := graph.NodeID(0); int(q) < live.Graph().NumNodes(); q += 11 {
			for _, m := range []query.Method{query.MethodStructural, query.MethodSEA, query.MethodExact} {
				for _, model := range []sea.Model{sea.KCore, sea.KTruss} {
					if m == query.MethodExact && model == sea.KTruss {
						continue
					}
					req := query.Request{Query: q, Method: m, K: 3, Model: model, Seed: 1, MaxStates: 3_000}.WithDefaults()
					a, errA := live.Query(ctx, req)
					b, errB := rebuilt.Query(ctx, req)
					if (errA == nil) != (errB == nil) || (errA != nil && errA.Error() != errB.Error()) {
						t.Fatalf("round %d q=%d %s/%s: live err %v, rebuilt err %v", round, q, m, model, errA, errB)
					}
					if errA != nil {
						continue
					}
					if !reflect.DeepEqual(a.Community, b.Community) || a.Delta != b.Delta {
						t.Fatalf("round %d q=%d %s/%s:\nlive    %v δ=%v\nrebuilt %v δ=%v",
							round, q, m, model, a.Community, a.Delta, b.Community, b.Delta)
					}
				}
			}
		}
	}
}

func hasDelta(ds []mutate.Delta, op mutate.Op, u, v graph.NodeID) bool {
	a, b := u, v
	if a > b {
		a, b = b, a
	}
	for _, d := range ds {
		x, y := d.U, d.V
		if x > y {
			x, y = y, x
		}
		if d.Op == op && x == a && y == b {
			return true
		}
	}
	return false
}

// TestConcurrentQueryMutate runs queries, mutations and snapshot writes
// concurrently; under -race this proves the atomic state publication and
// the epoch-guarded cache fills are sound.
func TestConcurrentQueryMutate(t *testing.T) {
	e, err := New(twoClusterGraph(t, 8), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := e.Graph().NumNodes()
				req := query.Request{
					Query:  graph.NodeID(rng.Intn(n)),
					Method: query.MethodStructural,
					K:      1 + rng.Intn(4),
				}.WithDefaults()
				if rng.Intn(3) == 0 {
					req.Method = query.MethodSEA
					req.Seed = 1
				}
				_, err := e.Query(ctx, req)
				if err != nil && !errors.Is(err, cserr.ErrNoCommunity) && !errors.Is(err, ErrQueryOutOfRange) {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(w)
	}

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 30; i++ {
		g := e.Graph()
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		var d mutate.Delta
		switch {
		case rng.Intn(4) == 0:
			d = mutate.AddNode([]string{"x"}, []float64{0.1})
		case u != v && !g.HasEdge(u, v):
			d = mutate.AddEdge(u, v)
		case u != v && g.HasEdge(u, v):
			d = mutate.RemoveEdge(u, v)
		default:
			d = mutate.SetAttr(u, []string{"y"}, nil)
		}
		if _, err := e.Apply([]mutate.Delta{d}); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if got := e.Version(); got != 30 {
		t.Fatalf("version = %d, want 30", got)
	}
}
