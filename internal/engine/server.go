package engine

// HTTP serving surface for an Engine: a stdlib http.Handler exposing
// /search, /batch, /healthz and /stats as JSON endpoints. cmd/seaserve
// wires this to flags and a listener.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"repro/internal/graph"
	"repro/internal/sea"
)

// toNodeID converts a wire-format node ID, rejecting values that would
// silently truncate to a different (possibly valid) int32 node.
func toNodeID(v int64) (graph.NodeID, error) {
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, fmt.Errorf("query node %d outside the node-ID range", v)
	}
	return graph.NodeID(v), nil
}

// optionsJSON is the wire form of sea.Options; zero-valued fields keep the
// paper defaults of sea.DefaultOptions.
type optionsJSON struct {
	K          int     `json:"k"`
	Model      string  `json:"model"` // "core" (default) or "truss"
	ErrorBound float64 `json:"e"`
	Confidence float64 `json:"confidence"`
	SizeLo     int     `json:"size_lo"`
	SizeHi     int     `json:"size_hi"`
	Seed       int64   `json:"seed"`
	NoRefine   bool    `json:"no_refine"`
}

func (o optionsJSON) toOptions() (sea.Options, error) {
	opts := sea.DefaultOptions()
	if o.K != 0 {
		opts.K = o.K
	}
	switch o.Model {
	case "", "core":
	case "truss":
		opts.Model = sea.KTruss
	default:
		return opts, fmt.Errorf("unknown model %q (want core or truss)", o.Model)
	}
	if o.ErrorBound != 0 {
		opts.ErrorBound = o.ErrorBound
	}
	if o.Confidence != 0 {
		opts.Confidence = o.Confidence
	}
	opts.SizeLo, opts.SizeHi = o.SizeLo, o.SizeHi
	if o.Seed != 0 {
		opts.Seed = o.Seed
	}
	opts.NoRefine = o.NoRefine
	return opts, opts.Validate()
}

type searchRequest struct {
	Q *int64 `json:"q"`
	optionsJSON
}

type batchRequest struct {
	Queries []int64 `json:"queries"`
	optionsJSON
}

type ciJSON struct {
	Center     float64 `json:"center"`
	MoE        float64 `json:"moe"`
	Lo         float64 `json:"lo"`
	Hi         float64 `json:"hi"`
	Confidence float64 `json:"confidence"`
}

type searchResponse struct {
	Query     int64          `json:"query"`
	Community []graph.NodeID `json:"community,omitempty"`
	Size      int            `json:"size"`
	Delta     float64        `json:"delta"`
	CI        ciJSON         `json:"ci"`
	Satisfied bool           `json:"satisfied"`
	Metrics   QueryMetrics   `json:"metrics"`
	Err       string         `json:"err,omitempty"`
}

type batchResponse struct {
	Items []searchResponse `json:"items"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func toResponse(q graph.NodeID, res *sea.Result, qm QueryMetrics, err error) searchResponse {
	out := searchResponse{Query: int64(q), Metrics: qm}
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.Community = res.Community
	out.Size = len(res.Community)
	out.Delta = res.Delta
	out.CI = ciJSON{
		Center: res.CI.Center, MoE: res.CI.MoE,
		Lo: res.CI.Lo(), Hi: res.CI.Hi(), Confidence: res.CI.Confidence,
	}
	out.Satisfied = res.Satisfied
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// NewHTTPHandler returns the JSON serving surface of e:
//
//	POST /search   {"q":12,"k":6,"model":"core",...} → one community
//	GET  /search?q=12&k=6&model=core                → same, for curl
//	POST /batch    {"queries":[1,2,3],"k":6,...}    → one item per query
//	GET  /healthz                                   → liveness + graph shape
//	GET  /stats                                     → engine counters/caches
func NewHTTPHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		var req searchRequest
		switch r.Method {
		case http.MethodGet:
			if err := searchRequestFromQuery(r, &req); err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
		case http.MethodPost:
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
				return
			}
		default:
			writeError(w, http.StatusMethodNotAllowed, errors.New("use GET or POST"))
			return
		}
		if req.Q == nil {
			writeError(w, http.StatusBadRequest, errors.New("missing query node \"q\""))
			return
		}
		opts, err := req.toOptions()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		q, err := toNodeID(*req.Q)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		res, qm, err := e.SearchWithMetrics(r.Context(), q, opts)
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, sea.ErrNoCommunity):
				status = http.StatusNotFound
			case errors.Is(err, ErrQueryOutOfRange):
				status = http.StatusBadRequest
			case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
				status = http.StatusRequestTimeout
			}
			writeJSON(w, status, toResponse(q, nil, qm, err))
			return
		}
		writeJSON(w, http.StatusOK, toResponse(q, res, qm, nil))
	})
	mux.HandleFunc("/batch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
			return
		}
		var req batchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		if len(req.Queries) == 0 {
			writeError(w, http.StatusBadRequest, errors.New("missing \"queries\""))
			return
		}
		opts, err := req.toOptions()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		queries := make([]graph.NodeID, len(req.Queries))
		for i, q := range req.Queries {
			id, err := toNodeID(q)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			queries[i] = id
		}
		items, err := e.BatchSearch(r.Context(), queries, opts)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		resp := batchResponse{Items: make([]searchResponse, len(items))}
		for i, it := range items {
			resp.Items[i] = toResponse(it.Query, it.Result, it.Metrics, it.Err)
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok",
			"nodes":  e.Graph().NumNodes(),
			"edges":  e.Graph().NumEdges(),
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Stats())
	})
	return mux
}

// searchRequestFromQuery fills req from URL query parameters (GET /search).
func searchRequestFromQuery(r *http.Request, req *searchRequest) error {
	vals := r.URL.Query()
	intField := func(name string, dst *int) error {
		if s := vals.Get(name); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				return fmt.Errorf("bad %s=%q", name, s)
			}
			*dst = v
		}
		return nil
	}
	floatField := func(name string, dst *float64) error {
		if s := vals.Get(name); s != "" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("bad %s=%q", name, s)
			}
			*dst = v
		}
		return nil
	}
	if s := vals.Get("q"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("bad q=%q", s)
		}
		req.Q = &v
	}
	if s := vals.Get("seed"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed=%q", s)
		}
		req.Seed = v
	}
	req.Model = vals.Get("model")
	req.NoRefine = vals.Get("no_refine") == "true"
	for _, f := range []struct {
		name string
		dst  *int
	}{{"k", &req.K}, {"size_lo", &req.SizeLo}, {"size_hi", &req.SizeHi}} {
		if err := intField(f.name, f.dst); err != nil {
			return err
		}
	}
	for _, f := range []struct {
		name string
		dst  *float64
	}{{"e", &req.ErrorBound}, {"confidence", &req.Confidence}} {
		if err := floatField(f.name, f.dst); err != nil {
			return err
		}
	}
	return nil
}
