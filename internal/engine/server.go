package engine

// HTTP serving surface for an Engine: a stdlib http.Handler exposing
// /search, /batch, /compare, /healthz and /stats as JSON endpoints. All
// query endpoints decode the same wire form of query.Request, so one JSON
// body works across single search, batch and method comparison; /compare
// replays one request through several methods side by side.
//
// Every endpoint routes through a Resolver, which maps the wire request's
// optional "graph" field (or ?graph= parameter) to the Engine serving that
// dataset. NewHTTPHandler wraps one engine in a single-graph resolver;
// internal/catalog supplies the multi-dataset resolver with hot-swap, and
// cmd/seaserve wires either to flags and a listener.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/cserr"
	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/stats"
)

// toNodeID converts a wire-format node ID, rejecting values that would
// silently truncate to a different (possibly valid) int32 node.
func toNodeID(v int64) (graph.NodeID, error) {
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, cserr.Invalidf("query node %d outside the node-ID range", v)
	}
	return graph.NodeID(v), nil
}

// wireRequest is the JSON wire form shared by /search, /batch and /compare:
// the fields of query.Request plus the endpoint-specific Q/Queries/Methods.
// The outer Q shadows the embedded Request's "q" tag so a missing query
// node is distinguishable from node 0.
type wireRequest struct {
	Q       *int64   `json:"q"`
	Queries []int64  `json:"queries"`
	Methods []string `json:"methods"`
	query.Request
}

// toRequest resolves the wire form into one canonical Request (using q, not
// Queries/Methods) and validates it.
func (w wireRequest) toRequest() (query.Request, error) {
	req := w.Request
	if w.Q == nil {
		return req, cserr.Invalidf("missing query node \"q\"")
	}
	q, err := toNodeID(*w.Q)
	if err != nil {
		return req, err
	}
	req.Query = q
	req = req.WithDefaults()
	return req, req.Validate()
}

type ciJSON struct {
	Center     float64 `json:"center"`
	MoE        float64 `json:"moe"`
	Lo         float64 `json:"lo"`
	Hi         float64 `json:"hi"`
	Confidence float64 `json:"confidence"`
}

type searchResponse struct {
	Query     int64          `json:"query"`
	Method    string         `json:"method,omitempty"`
	Community []graph.NodeID `json:"community,omitempty"`
	Size      int            `json:"size"`
	Delta     float64        `json:"delta"`
	CI        ciJSON         `json:"ci"`
	Satisfied bool           `json:"satisfied"`
	States    int64          `json:"states,omitempty"`
	Truncated bool           `json:"truncated,omitempty"`
	Metrics   QueryMetrics   `json:"metrics"`
	Err       string         `json:"err,omitempty"`
}

type batchResponse struct {
	Items []searchResponse `json:"items"`
}

type compareResponse struct {
	Query int64 `json:"query"`
	// Best names the method with the smallest δ among the successful runs
	// (empty when none succeeded).
	Best  string           `json:"best,omitempty"`
	Items []searchResponse `json:"items"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// StatusFor maps the unified error taxonomy to HTTP statuses: invalid
// requests → 400, oversized request bodies → 413, provable absence and
// unknown datasets → 404, interruptions → 408, shed requests → 429,
// unreadable snapshots → 422, exhausted budgets still carry a best-so-far
// community → 200 with Err set.
func StatusFor(err error) int {
	var tooBig *http.MaxBytesError
	switch {
	case err == nil, errors.Is(err, cserr.ErrBudgetExhausted):
		return http.StatusOK
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, cserr.ErrInvalidRequest):
		return http.StatusBadRequest
	case errors.Is(err, cserr.ErrNoCommunity), errors.Is(err, cserr.ErrUnknownGraph):
		return http.StatusNotFound
	case errors.Is(err, cserr.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, cserr.ErrSnapshotCorrupt), errors.Is(err, cserr.ErrSnapshotVersion):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

func toResponse(req query.Request, out *query.Outcome, qm QueryMetrics, err error) searchResponse {
	resp := searchResponse{Query: int64(req.Query), Method: req.Method.String(), Metrics: qm}
	if err != nil {
		resp.Err = err.Error()
	}
	if out == nil {
		return resp
	}
	resp.Community = out.Community
	resp.Size = len(out.Community)
	resp.Delta = out.Delta
	resp.CI = toCIJSON(out.CI)
	resp.Satisfied = out.Satisfied
	resp.States = out.States
	resp.Truncated = out.Truncated
	return resp
}

func toCIJSON(ci stats.CI) ciJSON {
	return ciJSON{Center: ci.Center, MoE: ci.MoE, Lo: ci.Lo(), Hi: ci.Hi(), Confidence: ci.Confidence}
}

// RetryAfterHint is the Retry-After value (seconds) stamped on every
// transient-rejection response (429, 503) across the serving stack. The
// condition a shed or breaker-rejected request hit is measured in
// in-flight-request lifetimes, so "one second" is the honest granularity.
const RetryAfterHint = "1"

// WriteJSON writes v as a JSON response body with the given status. It is
// the one JSON-writing helper shared by this surface and the catalog's.
// Transient-rejection statuses (429, 503) carry a Retry-After hint so
// well-behaved clients back off instead of hammering.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", RetryAfterHint)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// WriteError writes err in the {"error": "..."} body every endpoint uses,
// with the given status.
func WriteError(w http.ResponseWriter, status int, err error) {
	WriteJSON(w, status, errorResponse{Error: err.Error()})
}

// RequestIDHeader is the correlation header propagated end-to-end through
// the distributed serving stack: the router generates an ID when the client
// sent none, stamps it on every scatter-gather shard request, and each
// seaserve echoes it back — so one failing shard of one fan-out is traceable
// across processes by a single ID.
const RequestIDHeader = "X-Request-ID"

// WithRequestID wraps h to echo the request's X-Request-ID header on the
// response (error responses included — the header is set before the handler
// can write a status) and to carry the ID down through the request context,
// where QueryWithMetrics picks it up for span attribution. It never
// generates IDs: origination is the router's job, and a directly-addressed
// seaserve stays byte-stable for clients that sent no ID.
func WithRequestID(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id := r.Header.Get(RequestIDHeader); id != "" {
			w.Header().Set(RequestIDHeader, id)
			r = r.WithContext(ContextWithRequestID(r.Context(), id))
		}
		h.ServeHTTP(w, r)
	})
}

type requestIDKey struct{}

// ContextWithRequestID attaches a correlation ID to ctx; every query served
// under it records the ID on its trace span.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFromContext returns the correlation ID attached by
// ContextWithRequestID ("" when none).
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// Resolver maps a dataset name from the wire ("graph" field or ?graph=
// parameter; empty = the default dataset) to the Engine serving it. Errors
// should wrap cserr.ErrUnknownGraph so they map to 404.
type Resolver func(name string) (*Engine, error)

// NewHTTPHandler returns the JSON serving surface of one engine — the
// single-graph form of NewResolverHandler, where every request resolves to
// e and naming any other graph is an error.
func NewHTTPHandler(e *Engine) http.Handler {
	return WithRequestID(NewResolverHandler(func(name string) (*Engine, error) {
		if name != "" {
			return nil, fmt.Errorf("%w: %q (single-graph server)", cserr.ErrUnknownGraph, name)
		}
		return e, nil
	}))
}

// NewResolverHandler returns the JSON serving surface over a Resolver:
//
//	POST /search    {"q":12,"method":"sea","k":6,...}       → one community
//	GET  /search?q=12&k=6&method=exact                      → same, for curl
//	POST /batch     {"queries":[1,2,3],"k":6,...}           → one item per query
//	POST /compare   {"q":12,"methods":["sea","exact"],...}  → one item per method
//	GET  /compare?q=12&methods=sea,exact,vac                → same, for curl
//	GET  /healthz                                           → liveness + graph shape
//	GET  /stats                                             → engine counters/caches
//
// Every endpoint accepts an optional dataset name ("graph" in the body,
// ?graph= on GET); the resolver maps it to the engine serving that dataset.
// The resolved engine is used for the whole request, so a concurrent
// hot-swap never splits one request across two snapshots. The returned mux
// is open for extension: the catalog registers /graphs and /admin/reload on
// top of it.
func NewResolverHandler(resolve Resolver) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		wire, ok := decodeWire(w, r, http.MethodGet, http.MethodPost)
		if !ok {
			return
		}
		e, err := resolve(wire.Graph)
		if err != nil {
			WriteError(w, StatusFor(err), err)
			return
		}
		req, err := wire.toRequest()
		if err != nil {
			WriteError(w, StatusFor(err), err)
			return
		}
		out, qm, err := e.QueryWithMetrics(r.Context(), req)
		WriteJSON(w, StatusFor(err), toResponse(req, out, qm, err))
	})
	mux.HandleFunc("/batch", func(w http.ResponseWriter, r *http.Request) {
		wire, ok := decodeWire(w, r, http.MethodPost)
		if !ok {
			return
		}
		e, err := resolve(wire.Graph)
		if err != nil {
			WriteError(w, StatusFor(err), err)
			return
		}
		if len(wire.Queries) == 0 {
			WriteError(w, http.StatusBadRequest, cserr.Invalidf("missing \"queries\""))
			return
		}
		reqs := make([]query.Request, len(wire.Queries))
		for i, q := range wire.Queries {
			id, err := toNodeID(q)
			if err != nil {
				WriteError(w, http.StatusBadRequest, err)
				return
			}
			req := wire.Request
			req.Query = id
			reqs[i] = req.WithDefaults()
		}
		items, err := e.Batch(r.Context(), reqs)
		if err != nil {
			WriteError(w, StatusFor(err), err)
			return
		}
		resp := batchResponse{Items: make([]searchResponse, len(items))}
		shedAll := len(items) > 0
		for i, it := range items {
			resp.Items[i] = toResponse(it.Request, it.Outcome, it.Metrics, it.Err)
			shedAll = shedAll && errors.Is(it.Err, cserr.ErrOverloaded)
		}
		// Per-item shedding is partial degradation (200, item Errs set); a
		// batch with every item shed is an overloaded node and says so.
		status := http.StatusOK
		if shedAll {
			status = http.StatusTooManyRequests
		}
		WriteJSON(w, status, resp)
	})
	mux.HandleFunc("/compare", func(w http.ResponseWriter, r *http.Request) {
		wire, ok := decodeWire(w, r, http.MethodGet, http.MethodPost)
		if !ok {
			return
		}
		e, err := resolve(wire.Graph)
		if err != nil {
			WriteError(w, StatusFor(err), err)
			return
		}
		if wire.Q == nil {
			WriteError(w, http.StatusBadRequest, cserr.Invalidf("missing query node \"q\""))
			return
		}
		q, err := toNodeID(*wire.Q)
		if err != nil {
			WriteError(w, http.StatusBadRequest, err)
			return
		}
		names := wire.Methods
		if len(names) == 0 {
			WriteError(w, http.StatusBadRequest, cserr.Invalidf("missing \"methods\""))
			return
		}
		reqs := make([]query.Request, len(names))
		for i, name := range names {
			if name == "" {
				// ParseMethod resolves "" to SEA for omitted single-method
				// fields; in an explicit list it is a malformed entry
				// (typically a stray comma), not a request for SEA.
				WriteError(w, http.StatusBadRequest, cserr.Invalidf("empty method name in \"methods\""))
				return
			}
			m, err := query.ParseMethod(name)
			if err != nil {
				WriteError(w, http.StatusBadRequest, err)
				return
			}
			// Canonicalize from the raw wire request per method, never from
			// another method's canonical form: WithDefaults neutralizes the
			// parameters a method ignores (e.g. MaxStates under SEA), so a
			// shared canonical base would silently drop parameters the
			// other methods need.
			req := wire.Request
			req.Query = q
			req.Method = m
			req = req.WithDefaults()
			if err := req.Validate(); err != nil {
				WriteError(w, http.StatusBadRequest, err)
				return
			}
			reqs[i] = req
		}
		// One request, several solvers, side by side, through the engine's
		// bounded worker pool (admission, caches, coalescing, per-stage
		// metrics all apply per method).
		items, err := e.Batch(r.Context(), reqs)
		if err != nil {
			WriteError(w, StatusFor(err), err)
			return
		}
		resp := compareResponse{Query: int64(q), Items: make([]searchResponse, len(items))}
		for i, it := range items {
			resp.Items[i] = toResponse(it.Request, it.Outcome, it.Metrics, it.Err)
		}
		best := -1
		for i := range resp.Items {
			if resp.Items[i].Err != "" && !resp.Items[i].Truncated {
				continue
			}
			if best < 0 || resp.Items[i].Delta < resp.Items[best].Delta {
				best = i
			}
		}
		if best >= 0 {
			resp.Best = resp.Items[best].Method
		}
		WriteJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		e, err := resolve(r.URL.Query().Get("graph"))
		if err != nil {
			WriteError(w, StatusFor(err), err)
			return
		}
		g := e.Graph()
		WriteJSON(w, http.StatusOK, map[string]any{
			"status":  "ok",
			"nodes":   g.NumNodes(),
			"edges":   g.NumEdges(),
			"version": e.Version(),
			"methods": query.MethodNames(),
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		e, err := resolve(r.URL.Query().Get("graph"))
		if err != nil {
			WriteError(w, StatusFor(err), err)
			return
		}
		WriteJSON(w, http.StatusOK, struct {
			Stats
			Latency LatencySummary `json:"latency"`
		}{e.Stats(), e.Latency().Summary()})
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		e, err := resolve(r.URL.Query().Get("graph"))
		if err != nil {
			WriteError(w, StatusFor(err), err)
			return
		}
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			if n, err = strconv.Atoi(s); err != nil {
				WriteError(w, http.StatusBadRequest, cserr.Invalidf("bad n=%q", s))
				return
			}
		}
		spans := e.Trace(n)
		if spans == nil {
			spans = []Span{}
		}
		WriteJSON(w, http.StatusOK, map[string]any{"spans": spans})
	})
	return mux
}

// decodeWire extracts a wireRequest from the body (POST) or the URL query
// parameters (GET), writing the error response itself when it fails.
func decodeWire(w http.ResponseWriter, r *http.Request, allowed ...string) (wireRequest, bool) {
	var wire wireRequest
	methodOK := false
	for _, m := range allowed {
		methodOK = methodOK || r.Method == m
	}
	switch {
	case !methodOK:
		WriteError(w, http.StatusMethodNotAllowed, fmt.Errorf("use %s", strings.Join(allowed, " or ")))
		return wire, false
	case r.Method == http.MethodGet:
		if err := wireFromQuery(r, &wire); err != nil {
			WriteError(w, http.StatusBadRequest, err)
			return wire, false
		}
	default:
		if err := DecodeJSONBody(w, r, &wire); err != nil {
			WriteError(w, StatusFor(err), err)
			return wire, false
		}
	}
	return wire, true
}

// MaxBodyBytes caps every JSON request body this surface (and the
// catalog's) reads; larger bodies answer 413 instead of buffering
// unboundedly.
const MaxBodyBytes = 1 << 20

// DecodeJSONBody decodes r's JSON body into v under the MaxBodyBytes cap,
// rejecting trailing garbage after the JSON value. Errors map through
// StatusFor: an overlong body to 413, anything else malformed to 400.
func DecodeJSONBody(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return tooBig
		}
		if errors.Is(err, cserr.ErrInvalidRequest) {
			return err
		}
		return cserr.Invalidf("bad request body: %v", err)
	}
	// A conforming body is exactly one JSON value; trailing non-whitespace
	// is a malformed request, not ignorable padding.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return cserr.Invalidf("trailing data after JSON request body")
	}
	return nil
}

// wireFromQuery fills wire from URL query parameters (GET endpoints).
func wireFromQuery(r *http.Request, wire *wireRequest) error {
	vals := r.URL.Query()
	intField := func(name string, dst *int) error {
		if s := vals.Get(name); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				return cserr.Invalidf("bad %s=%q", name, s)
			}
			*dst = v
		}
		return nil
	}
	int64Field := func(name string, dst *int64) error {
		if s := vals.Get(name); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return cserr.Invalidf("bad %s=%q", name, s)
			}
			*dst = v
		}
		return nil
	}
	floatField := func(name string, dst *float64) error {
		if s := vals.Get(name); s != "" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return cserr.Invalidf("bad %s=%q", name, s)
			}
			*dst = v
		}
		return nil
	}
	if s := vals.Get("q"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return cserr.Invalidf("bad q=%q", s)
		}
		wire.Q = &v
	}
	if s := vals.Get("methods"); s != "" {
		wire.Methods = strings.Split(s, ",")
	}
	wire.Graph = vals.Get("graph")
	if err := wire.Method.UnmarshalText([]byte(vals.Get("method"))); err != nil {
		return err
	}
	if err := wire.Model.UnmarshalText([]byte(vals.Get("model"))); err != nil {
		return err
	}
	wire.NoRefine = vals.Get("no_refine") == "true"
	for _, f := range []struct {
		name string
		dst  *int
	}{{"k", &wire.K}, {"size_lo", &wire.SizeLo}, {"size_hi", &wire.SizeHi}, {"max_rounds", &wire.MaxRounds}} {
		if err := intField(f.name, f.dst); err != nil {
			return err
		}
	}
	for _, f := range []struct {
		name string
		dst  *int64
	}{{"seed", &wire.Seed}, {"max_states", &wire.MaxStates}} {
		if err := int64Field(f.name, f.dst); err != nil {
			return err
		}
	}
	for _, f := range []struct {
		name string
		dst  *float64
	}{{"e", &wire.ErrorBound}, {"confidence", &wire.Confidence}, {"lambda", &wire.Lambda}} {
		if err := floatField(f.name, f.dst); err != nil {
			return err
		}
	}
	return nil
}
