package engine

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T) (*httptest.Server, *Engine) {
	t.Helper()
	e, _, _ := testEngine(t, DefaultConfig())
	srv := httptest.NewServer(NewHTTPHandler(e))
	t.Cleanup(srv.Close)
	return srv, e
}

func getJSON(t *testing.T, url string, wantStatus int, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, url, body string, wantStatus int, into any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

func TestServerHealthz(t *testing.T) {
	srv, e := testServer(t)
	var out map[string]any
	getJSON(t, srv.URL+"/healthz", http.StatusOK, &out)
	if out["status"] != "ok" {
		t.Fatalf("healthz: %v", out)
	}
	if int(out["nodes"].(float64)) != e.Graph().NumNodes() {
		t.Fatalf("healthz nodes: %v", out)
	}
}

func TestServerSearchPostAndGet(t *testing.T) {
	srv, e := testServer(t)
	q := int64(testDataset(t).QueryNodes(1, 6, 3)[0])

	var post searchResponse
	postJSON(t, srv.URL+"/search", fmt.Sprintf(`{"q":%d,"k":6}`, q), http.StatusOK, &post)
	if post.Size == 0 || len(post.Community) != post.Size || post.Err != "" {
		t.Fatalf("POST /search: %+v", post)
	}
	if post.Metrics.ResultHit {
		t.Fatal("first request cannot be a cache hit")
	}

	var get searchResponse
	getJSON(t, fmt.Sprintf("%s/search?q=%d&k=6", srv.URL, q), http.StatusOK, &get)
	if !get.Metrics.ResultHit {
		t.Fatalf("identical GET should hit the result cache: %+v", get.Metrics)
	}
	if fmt.Sprint(get.Community) != fmt.Sprint(post.Community) || get.Delta != post.Delta {
		t.Fatal("GET and POST answers differ")
	}
	if s := e.Stats(); s.SearchRuns != 1 {
		t.Fatalf("server ran %d searches, want 1", s.SearchRuns)
	}
}

func TestServerSearchErrors(t *testing.T) {
	srv, _ := testServer(t)
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"missing q", `{"k":6}`, http.StatusBadRequest},
		{"bad model", `{"q":1,"model":"clique"}`, http.StatusBadRequest},
		{"bad options", `{"q":1,"e":7}`, http.StatusBadRequest},
		{"bad json", `{`, http.StatusBadRequest},
		{"out of range", `{"q":99999999}`, http.StatusBadRequest},
		{"int32 overflow", `{"q":4294967301}`, http.StatusBadRequest},
	} {
		var out map[string]any
		postJSON(t, srv.URL+"/search", tc.body, tc.status, &out)
	}
	// A node ID that truncates to a valid int32 must be rejected in batches too.
	var batchErr map[string]any
	postJSON(t, srv.URL+"/batch", `{"queries":[4294967301],"k":2}`, http.StatusBadRequest, &batchErr)
	// Rejection by the shared index surfaces as 404 with metrics attached.
	var out searchResponse
	postJSON(t, srv.URL+"/search", `{"q":0,"k":999}`, http.StatusNotFound, &out)
	if out.Err == "" || !out.Metrics.IndexHit {
		t.Fatalf("index reject response: %+v", out)
	}
}

func TestServerDeadlineMapsTo408(t *testing.T) {
	d := testDataset(t)
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 1
	cfg.RequestTimeout = time.Millisecond
	e, err := New(d.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHTTPHandler(e))
	t.Cleanup(srv.Close)

	e.sem <- struct{}{} // hold the compute path so the engine deadline fires
	defer func() { <-e.sem }()
	q := int64(d.QueryNodes(1, 6, 3)[0])
	var out searchResponse
	postJSON(t, srv.URL+"/search", fmt.Sprintf(`{"q":%d,"k":6}`, q), http.StatusRequestTimeout, &out)
	if out.Err == "" {
		t.Fatalf("timeout response missing error: %+v", out)
	}
}

func TestServerBatchAndStats(t *testing.T) {
	srv, _ := testServer(t)
	qs := testDataset(t).QueryNodes(3, 2, 9)
	body := fmt.Sprintf(`{"queries":[%d,%d,%d,%d],"k":2}`, qs[0], qs[1], qs[2], qs[0])

	var out batchResponse
	postJSON(t, srv.URL+"/batch", body, http.StatusOK, &out)
	if len(out.Items) != 4 {
		t.Fatalf("got %d items", len(out.Items))
	}
	for i, it := range out.Items {
		if it.Err != "" {
			t.Fatalf("item %d: %s", i, it.Err)
		}
	}
	if out.Items[3].Query != out.Items[0].Query {
		t.Fatal("batch order not preserved")
	}

	var stats Stats
	getJSON(t, srv.URL+"/stats", http.StatusOK, &stats)
	if stats.Queries != 4 || stats.SearchRuns != 3 {
		t.Fatalf("stats after batch: %+v", stats)
	}

	var errOut map[string]any
	postJSON(t, srv.URL+"/batch", `{"queries":[]}`, http.StatusBadRequest, &errOut)
}
