package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/query"
)

func testServer(t *testing.T) (*httptest.Server, *Engine) {
	t.Helper()
	e, _, _ := testEngine(t, DefaultConfig())
	srv := httptest.NewServer(NewHTTPHandler(e))
	t.Cleanup(srv.Close)
	return srv, e
}

func getJSON(t *testing.T, url string, wantStatus int, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, url, body string, wantStatus int, into any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

func TestServerHealthz(t *testing.T) {
	srv, e := testServer(t)
	var out map[string]any
	getJSON(t, srv.URL+"/healthz", http.StatusOK, &out)
	if out["status"] != "ok" {
		t.Fatalf("healthz: %v", out)
	}
	if int(out["nodes"].(float64)) != e.Graph().NumNodes() {
		t.Fatalf("healthz nodes: %v", out)
	}
}

func TestServerSearchPostAndGet(t *testing.T) {
	srv, e := testServer(t)
	q := int64(testDataset(t).QueryNodes(1, 6, 3)[0])

	var post searchResponse
	postJSON(t, srv.URL+"/search", fmt.Sprintf(`{"q":%d,"k":6}`, q), http.StatusOK, &post)
	if post.Size == 0 || len(post.Community) != post.Size || post.Err != "" {
		t.Fatalf("POST /search: %+v", post)
	}
	if post.Metrics.ResultHit {
		t.Fatal("first request cannot be a cache hit")
	}

	var get searchResponse
	getJSON(t, fmt.Sprintf("%s/search?q=%d&k=6", srv.URL, q), http.StatusOK, &get)
	if !get.Metrics.ResultHit {
		t.Fatalf("identical GET should hit the result cache: %+v", get.Metrics)
	}
	if fmt.Sprint(get.Community) != fmt.Sprint(post.Community) || get.Delta != post.Delta {
		t.Fatal("GET and POST answers differ")
	}
	if s := e.Stats(); s.SearchRuns != 1 {
		t.Fatalf("server ran %d searches, want 1", s.SearchRuns)
	}
}

func TestServerSearchErrors(t *testing.T) {
	srv, _ := testServer(t)
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"missing q", `{"k":6}`, http.StatusBadRequest},
		{"bad model", `{"q":1,"model":"clique"}`, http.StatusBadRequest},
		{"bad options", `{"q":1,"e":7}`, http.StatusBadRequest},
		{"bad json", `{`, http.StatusBadRequest},
		{"out of range", `{"q":99999999}`, http.StatusBadRequest},
		{"int32 overflow", `{"q":4294967301}`, http.StatusBadRequest},
	} {
		var out map[string]any
		postJSON(t, srv.URL+"/search", tc.body, tc.status, &out)
	}
	// A node ID that truncates to a valid int32 must be rejected in batches too.
	var batchErr map[string]any
	postJSON(t, srv.URL+"/batch", `{"queries":[4294967301],"k":2}`, http.StatusBadRequest, &batchErr)
	// Rejection by the shared index surfaces as 404 with metrics attached.
	var out searchResponse
	postJSON(t, srv.URL+"/search", `{"q":0,"k":999}`, http.StatusNotFound, &out)
	if out.Err == "" || !out.Metrics.IndexHit {
		t.Fatalf("index reject response: %+v", out)
	}
}

func TestServerDeadlineMapsTo408(t *testing.T) {
	d := testDataset(t)
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 1
	cfg.RequestTimeout = time.Millisecond
	e, err := New(d.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHTTPHandler(e))
	t.Cleanup(srv.Close)

	e.sem <- struct{}{} // hold the compute path so the engine deadline fires
	defer func() { <-e.sem }()
	q := int64(d.QueryNodes(1, 6, 3)[0])
	var out searchResponse
	postJSON(t, srv.URL+"/search", fmt.Sprintf(`{"q":%d,"k":6}`, q), http.StatusRequestTimeout, &out)
	if out.Err == "" {
		t.Fatalf("timeout response missing error: %+v", out)
	}
}

func TestServerBatchAndStats(t *testing.T) {
	srv, _ := testServer(t)
	qs := testDataset(t).QueryNodes(3, 2, 9)
	body := fmt.Sprintf(`{"queries":[%d,%d,%d,%d],"k":2}`, qs[0], qs[1], qs[2], qs[0])

	var out batchResponse
	postJSON(t, srv.URL+"/batch", body, http.StatusOK, &out)
	if len(out.Items) != 4 {
		t.Fatalf("got %d items", len(out.Items))
	}
	for i, it := range out.Items {
		if it.Err != "" {
			t.Fatalf("item %d: %s", i, it.Err)
		}
	}
	if out.Items[3].Query != out.Items[0].Query {
		t.Fatal("batch order not preserved")
	}

	var stats Stats
	getJSON(t, srv.URL+"/stats", http.StatusOK, &stats)
	if stats.Queries != 4 || stats.SearchRuns != 3 {
		t.Fatalf("stats after batch: %+v", stats)
	}

	var errOut map[string]any
	postJSON(t, srv.URL+"/batch", `{"queries":[]}`, http.StatusBadRequest, &errOut)
}

func TestServerSearchWithMethod(t *testing.T) {
	srv, _ := testServer(t)
	q := int64(testDataset(t).QueryNodes(1, 6, 3)[0])

	var exact searchResponse
	postJSON(t, srv.URL+"/search", fmt.Sprintf(`{"q":%d,"k":6,"method":"exact","max_states":500000}`, q), http.StatusOK, &exact)
	if exact.Method != "exact" || exact.Size == 0 || exact.States == 0 {
		t.Fatalf("exact via HTTP: %+v", exact)
	}
	var structural searchResponse
	getJSON(t, fmt.Sprintf("%s/search?q=%d&k=6&method=structural", srv.URL, q), http.StatusOK, &structural)
	if structural.Method != "structural" || structural.Size < exact.Size {
		t.Fatalf("structural ⊇ exact expected: %+v vs %+v", structural, exact)
	}
	var bad map[string]any
	postJSON(t, srv.URL+"/search", fmt.Sprintf(`{"q":%d,"method":"bogus"}`, q), http.StatusBadRequest, &bad)
	// Method/model mismatch is a 400, not a silent fallback.
	postJSON(t, srv.URL+"/search", fmt.Sprintf(`{"q":%d,"method":"exact","model":"truss"}`, q), http.StatusBadRequest, &bad)
}

// TestServerCompare pins the /compare contract: one request replayed
// through several methods, one item per method, with Best naming the
// smallest δ among the successful runs.
func TestServerCompare(t *testing.T) {
	srv, e := testServer(t)
	q := int64(testDataset(t).QueryNodes(1, 6, 3)[0])

	var out compareResponse
	postJSON(t, srv.URL+"/compare",
		fmt.Sprintf(`{"q":%d,"k":6,"methods":["sea","exact","vac","structural"],"max_states":500000}`, q),
		http.StatusOK, &out)
	if len(out.Items) != 4 {
		t.Fatalf("got %d items", len(out.Items))
	}
	deltas := map[string]float64{}
	for i, it := range out.Items {
		if it.Err != "" {
			t.Fatalf("item %d (%s): %s", i, it.Method, it.Err)
		}
		if it.Size == 0 {
			t.Fatalf("item %d (%s) has no community", i, it.Method)
		}
		deltas[it.Method] = it.Delta
	}
	// The exact δ is the optimum: nothing beats it, and Best reflects that.
	for m, d := range deltas {
		if d < deltas["exact"] {
			t.Fatalf("method %s beat the exact optimum: %v < %v", m, d, deltas["exact"])
		}
	}
	if out.Best == "" || deltas[out.Best] != deltas["exact"] {
		t.Fatalf("best=%q deltas=%v", out.Best, deltas)
	}
	if s := e.Stats(); s.Queries < 4 {
		t.Fatalf("compare ran %d queries", s.Queries)
	}

	// GET form with comma-separated methods.
	var out2 compareResponse
	getJSON(t, fmt.Sprintf("%s/compare?q=%d&k=6&methods=sea,structural", srv.URL, q), http.StatusOK, &out2)
	if len(out2.Items) != 2 {
		t.Fatalf("GET compare: %+v", out2)
	}
	// max_states must reach the budgeted method, not be neutralized by the
	// wire request's default (SEA) canonical form: a 2-state budget forces a
	// truncated best-so-far exact answer.
	var tiny compareResponse
	postJSON(t, srv.URL+"/compare",
		fmt.Sprintf(`{"q":%d,"k":2,"methods":["exact"],"max_states":2}`, q), http.StatusOK, &tiny)
	if len(tiny.Items) != 1 || !tiny.Items[0].Truncated || tiny.Items[0].Err == "" || tiny.Items[0].Size == 0 {
		t.Fatalf("budgeted compare item: %+v", tiny.Items)
	}

	var errOut map[string]any
	postJSON(t, srv.URL+"/compare", fmt.Sprintf(`{"q":%d,"k":6}`, q), http.StatusBadRequest, &errOut)
	postJSON(t, srv.URL+"/compare", fmt.Sprintf(`{"q":%d,"methods":["bogus"]}`, q), http.StatusBadRequest, &errOut)
	// An empty entry (stray trailing comma) is malformed, not implicit SEA.
	getJSON(t, fmt.Sprintf("%s/compare?q=%d&k=6&methods=sea,exact,", srv.URL, q), http.StatusBadRequest, &errOut)
}

// TestRequestRoundTripsThroughHTTP is the acceptance criterion's HTTP leg:
// the same Request serialized as JSON and answered over HTTP returns the
// identical community the library returns, field for field through the wire.
func TestRequestRoundTripsThroughHTTP(t *testing.T) {
	srv, e := testServer(t)
	d := testDataset(t)
	q := d.QueryNodes(1, 6, 3)[0]

	req := query.DefaultRequest(q)
	req.K = 6
	req.Method = query.MethodSEA

	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var viaHTTP searchResponse
	postJSON(t, srv.URL+"/search", string(blob), http.StatusOK, &viaHTTP)

	direct, err := query.Run(context.Background(), d.Graph, e.Metric(), nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(viaHTTP.Community) != fmt.Sprint(direct.Community) || viaHTTP.Delta != direct.Delta {
		t.Fatalf("HTTP %v δ=%v vs library %v δ=%v",
			viaHTTP.Community, viaHTTP.Delta, direct.Community, direct.Delta)
	}
	if viaHTTP.Method != req.Method.String() {
		t.Fatalf("method lost on the wire: %+v", viaHTTP)
	}
}
