package engine

// Overload-control tests: MaxInFlight admission bounds cache-miss
// computations and sheds the excess fast with cserr.ErrOverloaded, which
// the HTTP layer turns into 429 + Retry-After.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cserr"
	"repro/internal/faults"
)

// TestMaxInFlightSheds holds one slow computation in flight (an injected
// engine.search delay keeps it there deterministically) and checks that
// concurrent cache-miss queries shed instead of queueing: ErrOverloaded,
// the Shed counter, and the shed latency histogram all fire — and the
// engine serves normally again once the slot frees.
func TestMaxInFlightSheds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInFlight = 1
	e, d, _ := testEngine(t, cfg)
	nodes := d.QueryNodes(3, 6, 3)
	opts := testOpts()

	faults.Enable(21, faults.Spec{Site: "engine.search", Count: 1, Delay: 300 * time.Millisecond})
	defer faults.Disable()

	var wg sync.WaitGroup
	wg.Add(1)
	started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(started)
		if _, err := e.Search(context.Background(), nodes[0], opts); err != nil {
			t.Errorf("the slow holder query failed: %v", err)
		}
	}()
	<-started
	time.Sleep(50 * time.Millisecond) // let the holder take the in-flight slot

	// Distinct query nodes: no result-cache hit, no coalesced join — these
	// are genuine computations and the admission gate must shed them.
	for _, q := range nodes[1:] {
		_, qm, err := e.SearchWithMetrics(context.Background(), q, opts)
		if !errors.Is(err, cserr.ErrOverloaded) {
			t.Fatalf("query %d over the in-flight bound: err=%v, want ErrOverloaded", q, err)
		}
		if !qm.Shed {
			t.Fatalf("shed query's metrics not marked: %+v", qm)
		}
	}
	wg.Wait()

	if shed := e.Stats().Shed; shed != 2 {
		t.Fatalf("Stats.Shed = %d, want 2", shed)
	}
	if e.Latency().TotalShed.Count != 2 {
		t.Fatalf("shed latency observations = %d, want 2", e.Latency().TotalShed.Count)
	}

	// Slot free again: the same queries now compute.
	for _, q := range nodes[1:] {
		if _, err := e.Search(context.Background(), q, opts); err != nil {
			t.Fatalf("query %d after the slot freed: %v", q, err)
		}
	}
	if shed := e.Stats().Shed; shed != 2 {
		t.Fatalf("Stats.Shed grew to %d after recovery, want still 2", shed)
	}
}

// TestCacheHitsNeverShed: with the in-flight slot held, a query whose
// result is already cached must still answer — shedding exists to protect
// computation, and a cache hit costs none.
func TestCacheHitsNeverShed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInFlight = 1
	e, d, _ := testEngine(t, cfg)
	nodes := d.QueryNodes(2, 6, 3)
	opts := testOpts()

	// Warm the cache before anything is slow.
	if _, err := e.Search(context.Background(), nodes[0], opts); err != nil {
		t.Fatal(err)
	}

	faults.Enable(22, faults.Spec{Site: "engine.search", Count: 1, Delay: 300 * time.Millisecond})
	defer faults.Disable()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.Search(context.Background(), nodes[1], opts) // holder
	}()
	time.Sleep(50 * time.Millisecond)

	if _, qm, err := e.SearchWithMetrics(context.Background(), nodes[0], opts); err != nil {
		t.Fatalf("cached query shed under load: %v", err)
	} else if !qm.ResultHit {
		t.Fatalf("expected a result-cache hit: %+v", qm)
	}
	wg.Wait()
}

// TestOverloadedHTTPContract pins the wire shape of a shed: 429 with a
// Retry-After hint.
func TestOverloadedHTTPContract(t *testing.T) {
	if got := StatusFor(cserr.ErrOverloaded); got != http.StatusTooManyRequests {
		t.Fatalf("StatusFor(ErrOverloaded) = %d, want 429", got)
	}
	rec := httptest.NewRecorder()
	WriteError(rec, StatusFor(cserr.ErrOverloaded), cserr.ErrOverloaded)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After hint")
	}
}
