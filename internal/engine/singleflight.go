package engine

import (
	"context"
	"sync"
)

// Single-flight request coalescing: concurrent calls with the same key share
// one execution of the compute function. The computation runs under its own
// context, detached from any single caller's, and is cancelled only when the
// last waiting caller abandons the wait — so an abandoned-by-all computation
// genuinely stops work (freeing its concurrency slot), while one that still
// has an audience completes and can populate caches.

type flightCall[V any] struct {
	done      chan struct{}
	cancel    context.CancelFunc
	val       V
	err       error
	waiters   int  // callers currently blocked on done, leader's included
	cancelled bool // every waiter left and the computation context was cancelled
}

type flightGroup[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*flightCall[V]
}

// do returns the result of fn for key, running fn at most once across all
// concurrent live callers of the same key. joined reports whether this
// caller attached to an already in-flight computation. If ctx expires
// before the computation finishes, do returns ctx's error and abandons the
// wait; when the last waiter abandons, the context passed to fn is
// cancelled so the computation can stop early. A caller that arrives after
// that cancellation (but before the doomed computation winds down) starts a
// fresh computation rather than inheriting a Canceled error it never caused.
func (g *flightGroup[K, V]) do(ctx context.Context, key K, fn func(ctx context.Context) (V, error)) (val V, err error, joined bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*flightCall[V])
	}
	c, ok := g.calls[key]
	if ok && c.cancelled {
		ok = false // the in-flight computation is doomed; replace it
	}
	if !ok {
		cctx, cancel := context.WithCancel(context.Background())
		nc := &flightCall[V]{done: make(chan struct{}), cancel: cancel}
		g.calls[key] = nc
		go func() {
			v, e := fn(cctx)
			g.mu.Lock()
			nc.val, nc.err = v, e
			// A doomed call may have been replaced in the map; only remove
			// the entry if it is still ours.
			if g.calls[key] == nc {
				delete(g.calls, key)
			}
			g.mu.Unlock()
			close(nc.done)
			cancel() // release the context's resources; the result is stored
		}()
		c = nc
	}
	c.waiters++
	g.mu.Unlock()

	select {
	case <-c.done:
		return c.val, c.err, ok
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		abandoned := c.waiters == 0
		if abandoned {
			c.cancelled = true
		}
		g.mu.Unlock()
		if abandoned {
			c.cancel()
		}
		var zero V
		return zero, ctx.Err(), ok
	}
}

// waiting reports how many callers are currently blocked on key's in-flight
// computation (0 when none is in flight). Used by tests to synchronize.
func (g *flightGroup[K, V]) waiting(key K) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.waiters
	}
	return 0
}
