package engine

import (
	"context"
	"sync"
)

// Single-flight request coalescing: concurrent calls with the same key share
// one execution of the compute function. The computation runs detached from
// any caller, so a caller whose context expires abandons the wait while the
// work still completes (and can populate caches for the next request).

type flightCall[V any] struct {
	done    chan struct{}
	val     V
	err     error
	waiters int // callers currently blocked on done, leader's included
}

type flightGroup[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*flightCall[V]
}

// do returns the result of fn for key, running fn at most once across all
// concurrent callers of the same key. joined reports whether this caller
// attached to an already in-flight computation. If ctx expires before the
// computation finishes, do returns ctx's error; the computation itself is
// never cancelled.
func (g *flightGroup[K, V]) do(ctx context.Context, key K, fn func() (V, error)) (val V, err error, joined bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*flightCall[V])
	}
	c, ok := g.calls[key]
	if !ok {
		c = &flightCall[V]{done: make(chan struct{})}
		g.calls[key] = c
		go func() {
			v, e := fn()
			g.mu.Lock()
			c.val, c.err = v, e
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
		}()
	}
	c.waiters++
	g.mu.Unlock()

	select {
	case <-c.done:
		return c.val, c.err, ok
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		g.mu.Unlock()
		var zero V
		return zero, ctx.Err(), ok
	}
}

// waiting reports how many callers are currently blocked on key's in-flight
// computation (0 when none is in flight). Used by tests to synchronize.
func (g *flightGroup[K, V]) waiting(key K) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.waiters
	}
	return 0
}
