package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until true or the deadline elapses.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for ", msg)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFlightCoalesces(t *testing.T) {
	var g flightGroup[string, int]
	gate := make(chan struct{})
	var runs atomic.Int32

	const callers = 8
	var wg sync.WaitGroup
	vals := make([]int, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i], _ = g.do(context.Background(), "k", func() (int, error) {
				runs.Add(1)
				<-gate
				return 42, nil
			})
		}(i)
	}
	waitFor(t, func() bool { return g.waiting("k") == callers }, "all callers to join")
	close(gate)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil || vals[i] != 42 {
			t.Fatalf("caller %d: got %d,%v", i, vals[i], errs[i])
		}
	}
	if g.waiting("k") != 0 {
		t.Fatal("call not cleaned up")
	}
}

func TestFlightDistinctKeysRunIndependently(t *testing.T) {
	var g flightGroup[int, int]
	var runs atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := g.do(context.Background(), i, func() (int, error) {
				runs.Add(1)
				return i * 2, nil
			})
			if err != nil || v != i*2 {
				t.Errorf("key %d: got %d,%v", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	if got := runs.Load(); got != 4 {
		t.Fatalf("fn ran %d times, want 4", got)
	}
}

func TestFlightContextAbandonsWaitNotWork(t *testing.T) {
	var g flightGroup[string, int]
	gate := make(chan struct{})
	finished := make(chan struct{})

	go func() {
		g.do(context.Background(), "k", func() (int, error) {
			<-gate
			close(finished)
			return 7, nil
		})
	}()
	waitFor(t, func() bool { return g.waiting("k") == 1 }, "leader to start")

	// A second caller joins, then abandons the wait when its context dies.
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		err    error
		joined bool
	}
	done := make(chan outcome, 1)
	go func() {
		_, err, joined := g.do(ctx, "k", func() (int, error) { return 0, errors.New("must not run") })
		done <- outcome{err, joined}
	}()
	waitFor(t, func() bool { return g.waiting("k") == 2 }, "second caller to join")
	cancel()
	got := <-done
	if !errors.Is(got.err, context.Canceled) {
		t.Fatalf("cancelled waiter got err %v", got.err)
	}
	if !got.joined {
		t.Fatal("second caller should report having joined the in-flight call")
	}
	select {
	case <-finished:
		t.Fatal("work finished before gate opened")
	default:
	}
	close(gate) // the abandoned work still completes
	waitFor(t, func() bool {
		select {
		case <-finished:
			return true
		default:
			return false
		}
	}, "abandoned work to complete")
}
