package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until true or the deadline elapses.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for ", msg)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFlightCoalesces(t *testing.T) {
	var g flightGroup[string, int]
	gate := make(chan struct{})
	var runs atomic.Int32

	const callers = 8
	var wg sync.WaitGroup
	vals := make([]int, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i], _ = g.do(context.Background(), "k", func(context.Context) (int, error) {
				runs.Add(1)
				<-gate
				return 42, nil
			})
		}(i)
	}
	waitFor(t, func() bool { return g.waiting("k") == callers }, "all callers to join")
	close(gate)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil || vals[i] != 42 {
			t.Fatalf("caller %d: got %d,%v", i, vals[i], errs[i])
		}
	}
	if g.waiting("k") != 0 {
		t.Fatal("call not cleaned up")
	}
}

func TestFlightDistinctKeysRunIndependently(t *testing.T) {
	var g flightGroup[int, int]
	var runs atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := g.do(context.Background(), i, func(context.Context) (int, error) {
				runs.Add(1)
				return i * 2, nil
			})
			if err != nil || v != i*2 {
				t.Errorf("key %d: got %d,%v", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	if got := runs.Load(); got != 4 {
		t.Fatalf("fn ran %d times, want 4", got)
	}
}

func TestFlightContextAbandonsWaitNotWork(t *testing.T) {
	var g flightGroup[string, int]
	gate := make(chan struct{})
	finished := make(chan struct{})

	go func() {
		g.do(context.Background(), "k", func(context.Context) (int, error) {
			<-gate
			close(finished)
			return 7, nil
		})
	}()
	waitFor(t, func() bool { return g.waiting("k") == 1 }, "leader to start")

	// A second caller joins, then abandons the wait when its context dies.
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		err    error
		joined bool
	}
	done := make(chan outcome, 1)
	go func() {
		_, err, joined := g.do(ctx, "k", func(context.Context) (int, error) { return 0, errors.New("must not run") })
		done <- outcome{err, joined}
	}()
	waitFor(t, func() bool { return g.waiting("k") == 2 }, "second caller to join")
	cancel()
	got := <-done
	if !errors.Is(got.err, context.Canceled) {
		t.Fatalf("cancelled waiter got err %v", got.err)
	}
	if !got.joined {
		t.Fatal("second caller should report having joined the in-flight call")
	}
	select {
	case <-finished:
		t.Fatal("work finished before gate opened")
	default:
	}
	close(gate) // the abandoned work still completes
	waitFor(t, func() bool {
		select {
		case <-finished:
			return true
		default:
			return false
		}
	}, "abandoned work to complete")
}

// TestFlightCancelsWorkWhenLastWaiterLeaves pins the cancellation contract:
// the computation's context is cancelled once every caller has abandoned the
// wait, so deadlines genuinely stop work instead of detaching from it.
func TestFlightCancelsWorkWhenLastWaiterLeaves(t *testing.T) {
	var g flightGroup[string, int]
	cancelled := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err, _ := g.do(ctx, "k", func(cctx context.Context) (int, error) {
			<-cctx.Done() // simulate a search polling its context
			close(cancelled)
			return 0, cctx.Err()
		})
		done <- err
	}()
	waitFor(t, func() bool { return g.waiting("k") == 1 }, "leader to start")
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning waiter got err %v", err)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("computation context was not cancelled after the last waiter left")
	}
	waitFor(t, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.calls) == 0
	}, "cancelled call to be cleaned up")
}

// TestFlightReplacesDoomedCall pins the late-joiner contract: a caller that
// arrives after a computation was cancelled (last waiter left) but before
// it wound down starts a fresh computation instead of inheriting the
// doomed call's Canceled error.
func TestFlightReplacesDoomedCall(t *testing.T) {
	var g flightGroup[string, int]
	var runs atomic.Int32
	release := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	firstDone := make(chan error, 1)
	go func() {
		_, err, _ := g.do(ctx, "k", func(cctx context.Context) (int, error) {
			runs.Add(1)
			<-cctx.Done()
			<-release // hold the doomed call in flight past its cancellation
			return 0, cctx.Err()
		})
		firstDone <- err
	}()
	waitFor(t, func() bool { return g.waiting("k") == 1 }, "leader to start")
	cancel()
	if err := <-firstDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning waiter got %v", err)
	}

	// The doomed call is still in flight (blocked on release); a fresh
	// caller must get a fresh run, not the doomed call's error.
	v, err, joined := g.do(context.Background(), "k", func(context.Context) (int, error) {
		runs.Add(1)
		return 9, nil
	})
	if err != nil || v != 9 {
		t.Fatalf("late joiner got %d, %v", v, err)
	}
	if joined {
		t.Fatal("late joiner should have started a fresh call, not joined the doomed one")
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("fn ran %d times, want 2", got)
	}
	close(release)
	waitFor(t, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.calls) == 0
	}, "all calls to clean up")
}
