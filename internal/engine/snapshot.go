package engine

// Snapshot integration: an Engine's precomputed per-graph state — the core
// and node-truss admission indexes and the attribute-metric normalization
// table — exports as a store.Index so store.Write can persist it, and an
// Engine reopens from a store.Snapshot with zero recomputation: no text
// parse, no min/max attribute scan, no core or truss decomposition at boot.

import (
	"io"

	"repro/internal/attr"
	"repro/internal/cserr"
	"repro/internal/graph"
	"repro/internal/store"
)

// exportIndex flattens one state generation into a store.Index, building
// the truss-level index first if it was not already so snapshots always
// carry the complete admission state.
func exportIndex(st *engState) *store.Index {
	min, max := st.metric.Normalizer().Bounds()
	return &store.Index{
		Coreness:  st.core,
		NodeTruss: st.nodeTruss(),
		NormMin:   min,
		NormMax:   max,
	}
}

// ExportIndex flattens the engine's precomputed state into a store.Index.
// The returned slices alias the engine's own and must not be modified.
func (e *Engine) ExportIndex() *store.Index {
	return exportIndex(e.st.Load())
}

// WriteSnapshot serializes the engine's current graph and precomputed index
// to w in the store snapshot format. Reopening it with NewFromSnapshot
// yields an engine that answers every request identically to this one. The
// state is captured atomically: a concurrent mutation lands either entirely
// before or entirely after the written snapshot.
func (e *Engine) WriteSnapshot(w io.Writer) error {
	_, err := e.WriteSnapshotAt(w)
	return err
}

// WriteSnapshotAt is WriteSnapshot also reporting the graph generation the
// written snapshot captured. Callers that need the (snapshot, version) pair
// to cohere under concurrent mutation — replication bootstrap serving
// /admin/replicate — use this instead of pairing WriteSnapshot with a
// separate Version call, which a mutation could land between.
func (e *Engine) WriteSnapshotAt(w io.Writer) (uint64, error) {
	st := e.st.Load()
	// Snapshot writing needs the materialized CSR arrays; a mapped or
	// compressed backing is copied to the heap first (a *Graph passes
	// through unchanged).
	return st.version, store.Write(w, graph.CopyStore(st.g), exportIndex(st))
}

// WriteSnapshotOpts is WriteSnapshot with an explicit on-disk layout: the
// zero PackOptions writes the legacy v1 stream, Align the mmap-ready v2
// section-table layout, Compress the v2 layout with delta+varint adjacency.
func (e *Engine) WriteSnapshotOpts(w io.Writer, opt store.PackOptions) error {
	st := e.st.Load()
	return store.WriteSnapshot(w, graph.CopyStore(st.g), exportIndex(st), opt)
}

// NewFromSnapshot builds an Engine directly from a reopened snapshot: the
// graph is adopted as-is and the index section (when present) replaces the
// construction-time core decomposition, metric scan and truss build.
func NewFromSnapshot(snap *store.Snapshot, cfg Config) (*Engine, error) {
	if snap == nil {
		return nil, cserr.Invalidf("engine: nil snapshot")
	}
	g := snap.Backing()
	if g == nil {
		return nil, cserr.Invalidf("engine: snapshot has no graph backing")
	}
	return NewFromIndex(g, cfg, snap.Index)
}

// NewFromIndex is New with a precomputed index. idx may be nil, which is
// plain New; otherwise its arrays are validated against the graph shape and
// adopted (not copied — the caller must not modify them). g may be any
// graph.Store backing, most importantly a zero-copy mapped snapshot.
func NewFromIndex(g graph.Store, cfg Config, idx *store.Index) (*Engine, error) {
	if idx == nil {
		return New(g, cfg)
	}
	if g == nil {
		return nil, cserr.Invalidf("engine: nil graph")
	}
	if len(idx.Coreness) != g.NumNodes() {
		return nil, cserr.Invalidf("engine: index coreness length %d, graph has %d nodes",
			len(idx.Coreness), g.NumNodes())
	}
	if idx.NodeTruss != nil && len(idx.NodeTruss) != g.NumNodes() {
		return nil, cserr.Invalidf("engine: index truss length %d, graph has %d nodes",
			len(idx.NodeTruss), g.NumNodes())
	}
	nz, err := attr.NewNormalizerFromBounds(idx.NormMin, idx.NormMax)
	if err != nil {
		return nil, cserr.Invalidf("engine: %v", err)
	}
	m, err := attr.NewMetricWithNormalizer(g, cfg.Gamma, nz)
	if err != nil {
		return nil, err
	}
	e, err := newEngine(g, cfg, m, idx.Coreness)
	if err != nil {
		return nil, err
	}
	if idx.NodeTruss != nil {
		e.st.Load().adoptTruss(idx.NodeTruss)
	}
	if cfg.EagerTruss {
		e.st.Load().nodeTruss()
	}
	return e, nil
}
