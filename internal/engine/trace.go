package engine

// Per-request observability: stage-latency histograms, the span trace ring
// and the slow-query log. Counters (metrics.go) say how often things happen;
// the structures here say how long they take and which requests were the
// outliers.
//
// Histograms are obs.Histogram — the record path is three atomic adds, so
// every stage of every request is recorded unconditionally. The trace ring
// keeps the last Config.TraceRing spans (request id, stage timings, cache
// provenance) in fixed memory, readable at GET /debug/trace. The slow-query
// log writes one JSON line per request slower than Config.SlowQuery.

import (
	"encoding/json"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// latency is the engine's stage-histogram bundle. Read stages record
// per-request in QueryWithMetrics; mutation stages record per-batch in Apply
// (journal appends are recorded by the owner of the journal via
// ObserveJournalAppend, since the engine itself does not journal).
type latency struct {
	admission      obs.Histogram // shared-index admission check
	distance       obs.Histogram // f(·,q) vector fetch or compute
	search         obs.Histogram // search execution proper
	totalHit       obs.Histogram // whole request, served from the result cache
	totalMiss      obs.Histogram // whole request, computed
	totalCoalesced obs.Histogram // whole request, joined an in-flight twin
	totalShed      obs.Histogram // whole request, shed by MaxInFlight admission

	mutApply      obs.Histogram // session apply + materialize + index rebind
	mutJournal    obs.Histogram // journal append (recorded by the catalog)
	mutInvalidate obs.Histogram // scoped cache sweep
}

// LatencyStats is a point-in-time snapshot of every stage histogram. The
// snapshots are mergeable across engines (catalog-level aggregation) and
// carry full bucket resolution; Summary flattens them for JSON.
type LatencyStats struct {
	Admission        obs.Snapshot
	Distance         obs.Snapshot
	Search           obs.Snapshot
	TotalHit         obs.Snapshot
	TotalMiss        obs.Snapshot
	TotalCoalesced   obs.Snapshot
	TotalShed        obs.Snapshot
	MutateApply      obs.Snapshot
	MutateJournal    obs.Snapshot
	MutateInvalidate obs.Snapshot
}

// Merge aggregates two engines' stage snapshots field-wise.
func (l LatencyStats) Merge(o LatencyStats) LatencyStats {
	return LatencyStats{
		Admission:        l.Admission.Merge(o.Admission),
		Distance:         l.Distance.Merge(o.Distance),
		Search:           l.Search.Merge(o.Search),
		TotalHit:         l.TotalHit.Merge(o.TotalHit),
		TotalMiss:        l.TotalMiss.Merge(o.TotalMiss),
		TotalCoalesced:   l.TotalCoalesced.Merge(o.TotalCoalesced),
		TotalShed:        l.TotalShed.Merge(o.TotalShed),
		MutateApply:      l.MutateApply.Merge(o.MutateApply),
		MutateJournal:    l.MutateJournal.Merge(o.MutateJournal),
		MutateInvalidate: l.MutateInvalidate.Merge(o.MutateInvalidate),
	}
}

// LatencySummary is the flat JSON digest of LatencyStats served by /stats:
// count/mean/p50/p90/p99/p999/max in microseconds per stage.
type LatencySummary struct {
	Admission        obs.Summary `json:"admission"`
	Distance         obs.Summary `json:"distance"`
	Search           obs.Summary `json:"search"`
	TotalHit         obs.Summary `json:"total_hit"`
	TotalMiss        obs.Summary `json:"total_miss"`
	TotalCoalesced   obs.Summary `json:"total_coalesced"`
	TotalShed        obs.Summary `json:"total_shed"`
	MutateApply      obs.Summary `json:"mutate_apply"`
	MutateJournal    obs.Summary `json:"mutate_journal"`
	MutateInvalidate obs.Summary `json:"mutate_invalidate"`
}

// Summary flattens the snapshot bundle into the JSON form.
func (l LatencyStats) Summary() LatencySummary {
	return LatencySummary{
		Admission:        l.Admission.Summary(),
		Distance:         l.Distance.Summary(),
		Search:           l.Search.Summary(),
		TotalHit:         l.TotalHit.Summary(),
		TotalMiss:        l.TotalMiss.Summary(),
		TotalCoalesced:   l.TotalCoalesced.Summary(),
		TotalShed:        l.TotalShed.Summary(),
		MutateApply:      l.MutateApply.Summary(),
		MutateJournal:    l.MutateJournal.Summary(),
		MutateInvalidate: l.MutateInvalidate.Summary(),
	}
}

// Latency snapshots every stage histogram at once.
func (e *Engine) Latency() LatencyStats {
	return LatencyStats{
		Admission:        e.lat.admission.Snapshot(),
		Distance:         e.lat.distance.Snapshot(),
		Search:           e.lat.search.Snapshot(),
		TotalHit:         e.lat.totalHit.Snapshot(),
		TotalMiss:        e.lat.totalMiss.Snapshot(),
		TotalCoalesced:   e.lat.totalCoalesced.Snapshot(),
		TotalShed:        e.lat.totalShed.Snapshot(),
		MutateApply:      e.lat.mutApply.Snapshot(),
		MutateJournal:    e.lat.mutJournal.Snapshot(),
		MutateInvalidate: e.lat.mutInvalidate.Snapshot(),
	}
}

// ObserveJournalAppend records one durability-path journal append (ns) into
// the mutation-stage histograms. The engine does not journal itself — the
// catalog (or any other journal owner) reports the append it performed for a
// batch this engine applied, so /metrics shows the full write path in one
// place.
func (e *Engine) ObserveJournalAppend(ns int64) { e.lat.mutJournal.Observe(ns) }

// SetName attributes this engine's spans and slow-query lines to a dataset
// name. The catalog calls it at mount/swap time; a bare engine stays
// anonymous.
func (e *Engine) SetName(name string) { e.name.Store(&name) }

// Name returns the attribution set by SetName ("" when none).
func (e *Engine) Name() string {
	if p := e.name.Load(); p != nil {
		return *p
	}
	return ""
}

// Span is one request's trace record: correlation id, dataset attribution,
// start timestamp and the full per-stage metrics row. Spans live in a
// fixed-size ring; GET /debug/trace?n= returns the newest n.
type Span struct {
	RequestID string `json:"request_id,omitempty"`
	Graph     string `json:"graph,omitempty"`
	StartNS   int64  `json:"start_unix_ns"`
	QueryMetrics
}

// Trace returns up to n spans, newest first (n ≤ 0 returns everything the
// ring holds).
func (e *Engine) Trace(n int) []Span {
	if e.trace == nil {
		return nil
	}
	return e.trace.Last(n)
}

// recordQuery is the per-request observability tail, called once per
// QueryWithMetrics: stage histograms, the span ring, and the slow-query log.
func (e *Engine) recordQuery(requestID string, start time.Time, qm QueryMetrics) {
	switch {
	case qm.Shed:
		// Shed requests get their own outcome series: their point is that
		// they stay fast, and folding them into the miss histogram would
		// fake a p50 improvement exactly when the node is overloaded.
		e.lat.totalShed.Observe(qm.TotalNS)
	case qm.Coalesced:
		e.lat.totalCoalesced.Observe(qm.TotalNS)
	case qm.ResultHit:
		e.lat.totalHit.Observe(qm.TotalNS)
	default:
		e.lat.totalMiss.Observe(qm.TotalNS)
	}
	// Stage histograms only count requests where the stage actually ran:
	// admission is skipped on a result-cache hit or a malformed request, and
	// a coalesced joiner carries the shared execution's distance/search
	// timings, which the executing request already recorded.
	ranSearch := qm.SearchNS > 0 || qm.DistNS > 0
	if !qm.ResultHit && (qm.IndexHit || ranSearch || qm.Err == "") {
		e.lat.admission.Observe(qm.IndexNS)
	}
	if ranSearch && !qm.Coalesced {
		e.lat.distance.Observe(qm.DistNS)
		e.lat.search.Observe(qm.SearchNS)
	}

	if e.trace == nil && e.cfg.SlowQuery <= 0 {
		return
	}
	span := Span{
		RequestID:    requestID,
		Graph:        e.Name(),
		StartNS:      start.UnixNano(),
		QueryMetrics: qm,
	}
	if e.trace != nil {
		e.trace.Add(span)
	}
	if e.cfg.SlowQuery > 0 && qm.TotalNS >= e.cfg.SlowQuery.Nanoseconds() {
		e.logSlow(span)
	}
}

// logSlow writes one structured line for a threshold-crossing request. The
// writer is shared and line-buffered under a mutex; a slow-query flood
// serializes here, never on the request path's histograms.
func (e *Engine) logSlow(span Span) {
	w := e.cfg.SlowQueryLog
	if w == nil {
		w = os.Stderr
	}
	line, err := json.Marshal(struct {
		Kind string `json:"kind"`
		Span
	}{Kind: "slow_query", Span: span})
	if err != nil {
		return
	}
	slowMu.Lock()
	w.Write(append(line, '\n'))
	slowMu.Unlock()
}

// slowMu serializes slow-query lines process-wide, so engines sharing a
// writer (every dataset of one catalog logging to stderr) never interleave
// partial lines.
var slowMu sync.Mutex
