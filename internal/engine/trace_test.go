package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/query"
)

func TestLatencyHistogramsRecord(t *testing.T) {
	e, _, q := testEngine(t, DefaultConfig())
	ctx := context.Background()
	req := query.DefaultRequest(q)
	req.K = 6

	if _, _, err := e.QueryWithMetrics(ctx, req); err != nil {
		t.Fatal(err)
	}
	if _, qm, err := e.QueryWithMetrics(ctx, req); err != nil || !qm.ResultHit {
		t.Fatalf("identical request missed the cache: hit=%v err=%v", qm.ResultHit, err)
	}

	lat := e.Latency()
	if lat.TotalMiss.Count != 1 {
		t.Fatalf("total_miss count = %d, want 1", lat.TotalMiss.Count)
	}
	if lat.TotalHit.Count != 1 {
		t.Fatalf("total_hit count = %d, want 1", lat.TotalHit.Count)
	}
	if lat.Search.Count != 1 || lat.Distance.Count != 1 {
		t.Fatalf("stage counts: search=%d distance=%d, want 1 each", lat.Search.Count, lat.Distance.Count)
	}
	// The executed request must have spent time somewhere.
	if lat.TotalMiss.Sum == 0 {
		t.Fatal("total_miss sum is zero for an executed search")
	}
	sum := lat.Summary()
	if sum.TotalMiss.Count != 1 || sum.TotalMiss.P50US <= 0 {
		t.Fatalf("summary: %+v", sum.TotalMiss)
	}
}

func TestTraceRingCapturesSpans(t *testing.T) {
	e, _, q := testEngine(t, DefaultConfig())
	e.SetName("fbtest")
	ctx := ContextWithRequestID(context.Background(), "req-abc")
	req := query.DefaultRequest(q)
	req.K = 6
	if _, _, err := e.QueryWithMetrics(ctx, req); err != nil {
		t.Fatal(err)
	}

	spans := e.Trace(0)
	if len(spans) != 1 {
		t.Fatalf("trace holds %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.RequestID != "req-abc" {
		t.Fatalf("span request id %q", sp.RequestID)
	}
	if sp.Graph != "fbtest" {
		t.Fatalf("span graph %q", sp.Graph)
	}
	if sp.StartNS == 0 || sp.TotalNS <= 0 {
		t.Fatalf("span timings: %+v", sp)
	}
	if sp.Query != int64(q) || sp.ResultHit {
		t.Fatalf("span metrics: %+v", sp)
	}

	// Newest first: a second, cache-hitting query becomes spans[0].
	if _, _, err := e.QueryWithMetrics(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	spans = e.Trace(2)
	if len(spans) != 2 || !spans[0].ResultHit || spans[1].ResultHit {
		t.Fatalf("trace order: %+v", spans)
	}
}

func TestTraceRingDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TraceOff = true
	e, _, q := testEngine(t, cfg)
	req := query.DefaultRequest(q)
	req.K = 6
	if _, _, err := e.QueryWithMetrics(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if spans := e.Trace(0); spans != nil {
		t.Fatalf("tracing disabled but got %d spans", len(spans))
	}
}

// syncBuffer serializes writes: the slow-query log writer may be hit from
// concurrent request goroutines.
type syncBuffer struct {
	bytes.Buffer
}

func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	cfg := DefaultConfig()
	cfg.SlowQuery = time.Nanosecond // everything is slow
	cfg.SlowQueryLog = &buf
	e, _, q := testEngine(t, cfg)
	req := query.DefaultRequest(q)
	req.K = 6
	if _, _, err := e.QueryWithMetrics(ContextWithRequestID(context.Background(), "slow-1"), req); err != nil {
		t.Fatal(err)
	}

	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("no slow-query line logged")
	}
	var entry struct {
		Kind      string `json:"kind"`
		RequestID string `json:"request_id"`
		TotalNS   int64  `json:"total_ns"`
	}
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("slow log is not one JSON object per line: %v\n%s", err, line)
	}
	if entry.Kind != "slow_query" || entry.RequestID != "slow-1" || entry.TotalNS <= 0 {
		t.Fatalf("slow log entry: %+v", entry)
	}
}

func TestSlowQueryLogThresholdFilters(t *testing.T) {
	var buf syncBuffer
	cfg := DefaultConfig()
	cfg.SlowQuery = time.Hour // nothing is slow
	cfg.SlowQueryLog = &buf
	e, _, q := testEngine(t, cfg)
	req := query.DefaultRequest(q)
	req.K = 6
	if _, _, err := e.QueryWithMetrics(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("fast query logged as slow: %s", buf.String())
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	// The engine echoes but never generates request IDs (that is the
	// router's job), so send one and expect it on the span.
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/search?q=1&k=2", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "trace-me")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /search: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(RequestIDHeader); got != "trace-me" {
		t.Fatalf("response request id %q", got)
	}

	var trace struct {
		Spans []Span `json:"spans"`
	}
	getJSON(t, srv.URL+"/debug/trace?n=5", http.StatusOK, &trace)
	if len(trace.Spans) == 0 {
		t.Fatal("no spans after a served query")
	}
	sp := trace.Spans[0]
	if sp.RequestID != "trace-me" {
		t.Fatalf("span request id %q, want the propagated header", sp.RequestID)
	}
	if sp.Query != 1 || sp.TotalNS <= 0 {
		t.Fatalf("span: %+v", sp)
	}

	bad, err := http.Get(srv.URL + "/debug/trace?n=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n: status %d, want 400", bad.StatusCode)
	}
}

func TestStatsIncludesLatency(t *testing.T) {
	srv, _ := testServer(t)
	var out searchResponse
	getJSON(t, srv.URL+"/search?q=1&k=2", http.StatusOK, &out)

	var stats struct {
		Queries int64 `json:"queries"`
		Latency struct {
			TotalMiss struct {
				Count uint64  `json:"count"`
				P50US float64 `json:"p50_us"`
			} `json:"total_miss"`
		} `json:"latency"`
	}
	getJSON(t, srv.URL+"/stats", http.StatusOK, &stats)
	if stats.Latency.TotalMiss.Count == 0 {
		t.Fatalf("stats latency missing the served query: %+v", stats)
	}
	if stats.Latency.TotalMiss.P50US <= 0 {
		t.Fatalf("p50 of an executed query is %v", stats.Latency.TotalMiss.P50US)
	}
}

func TestApplyResultStageTimings(t *testing.T) {
	e, d, q := testEngine(t, DefaultConfig())
	ctx := context.Background()
	req := query.DefaultRequest(q)
	req.K = 6
	// Warm the caches so invalidation has something to sweep.
	if _, _, err := e.QueryWithMetrics(ctx, req); err != nil {
		t.Fatal(err)
	}

	res, err := e.Apply([]mutate.Delta{mutate.AddEdge(q, pickNonNeighbor(t, e, q, d.Graph.NumNodes()))})
	if err != nil {
		t.Fatal(err)
	}
	if res.ApplyNS <= 0 {
		t.Fatalf("ApplyNS = %d, want > 0", res.ApplyNS)
	}
	if res.InvalidateNS < 0 {
		t.Fatalf("InvalidateNS = %d", res.InvalidateNS)
	}
	if res.TouchedNodes < 2 {
		t.Fatalf("TouchedNodes = %d, want the edge endpoints at least", res.TouchedNodes)
	}

	lat := e.Latency()
	if lat.MutateApply.Count != 1 || lat.MutateInvalidate.Count != 1 {
		t.Fatalf("mutation stage counts: apply=%d invalidate=%d, want 1 each",
			lat.MutateApply.Count, lat.MutateInvalidate.Count)
	}
}

// pickNonNeighbor finds a node that is not yet adjacent to q so AddEdge
// cannot collide with an existing edge.
func pickNonNeighbor(t *testing.T, e *Engine, q graph.NodeID, n int) graph.NodeID {
	t.Helper()
	adjacent := map[graph.NodeID]bool{q: true}
	var buf []graph.NodeID
	for _, w := range e.Graph().NeighborsInto(&buf, q) {
		adjacent[w] = true
	}
	for v := 0; v < n; v++ {
		if !adjacent[graph.NodeID(v)] {
			return graph.NodeID(v)
		}
	}
	t.Fatal("graph is complete; no non-neighbor to add an edge to")
	return 0
}
