// Package exact implements the paper's exact baseline (§IV): enumeration of
// all connected k-cores containing the query node over the maximal connected
// k-core, with three pruning strategies that can be toggled independently
// for the Table-IV ablation:
//
//	P1 — duplicate states, via priority enumeration and Theorem 4;
//	P2 — unnecessary states, via Theorem 5;
//	P3 — unpromising states, via the lower bound of Theorem 6.
package exact

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/attr"
	"repro/internal/cserr"
	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/ws"
)

// Config selects pruning strategies and bounds the search.
type Config struct {
	PruneDuplicates  bool // P1: priority enumeration + Theorem 4
	PruneUnnecessary bool // P2: Theorem 5
	PruneUnpromising bool // P3: Theorem 6
	// MaxStates aborts the search after visiting this many states (0 means
	// unlimited). The best community found so far is returned together with
	// ErrBudgetExhausted.
	MaxStates int64
}

// DefaultConfig enables all three prunings.
func DefaultConfig() Config {
	return Config{PruneDuplicates: true, PruneUnnecessary: true, PruneUnpromising: true}
}

// Stats reports search effort.
type Stats struct {
	States           int64 // states visited (nodes of the search tree)
	PrunedDuplicate  int64 // substates cut by Theorem 4
	PrunedUnpromise  int64 // states cut by Theorem 6
	CandidatesScored int64 // states whose δ was evaluated
}

// Result is the outcome of an exact search.
type Result struct {
	Community []graph.NodeID // node set of the best connected k-core
	Delta     float64        // its q-centric attribute distance
	Stats     Stats
}

// ErrBudgetExhausted is returned (wrapped) when MaxStates is hit; the Result
// still carries the best community found. It is the shared sentinel of
// internal/cserr, so errors.Is matches it across every search method.
var ErrBudgetExhausted = cserr.ErrBudgetExhausted

// ErrNoCommunity is returned when q belongs to no connected k-core.
var ErrNoCommunity = cserr.ErrNoCommunity

type searcher struct {
	ctx   context.Context
	sub   *kcore.Sub
	dist  []float64
	q     graph.NodeID
	k     int
	cfg   Config
	stats Stats

	sumDist     float64 // Σ f(v,q) over alive nodes (f(q,q)=0 contributes nothing)
	bestSet     []graph.NodeID
	best        float64
	exceeded    bool
	interrupted bool
}

// ctxCheckMask sets how often the state-expansion loop polls the context: on
// every state whose ordinal has these low bits clear. 64 states sit well
// under a millisecond even on dense graphs, so cancellation is prompt while
// the poll itself stays out of the profile.
const ctxCheckMask = 63

// Search solves CS-AG exactly: it finds the connected k-core containing q
// with the smallest q-centric attribute distance δ. dist[v] must hold f(v,q)
// for every node (see attr.Metric.QueryDist).
func Search(g graph.Adjacency, q graph.NodeID, k int, dist []float64, cfg Config) (Result, error) {
	return SearchContext(context.Background(), g, q, k, dist, cfg)
}

// SearchContext is Search under a context. The state-expansion loop polls
// ctx every few states; when it is cancelled the search stops promptly and
// returns the best community found so far together with an error wrapping
// ctx's error — symmetric with the ErrBudgetExhausted contract, so a
// deadline behaves like a budget that ran out mid-search.
func SearchContext(ctx context.Context, g graph.Adjacency, q graph.NodeID, k int, dist []float64, cfg Config) (Result, error) {
	if k < 1 {
		return Result{}, cserr.Invalidf("exact: k must be ≥ 1, got %d", k)
	}
	members := kcore.MaximalConnectedKCore(g, q, k)
	if members == nil {
		return Result{}, ErrNoCommunity
	}
	sub, err := kcore.NewSub(g, q, k, members)
	if err != nil {
		return Result{}, err
	}
	s := &searcher{ctx: ctx, sub: sub, dist: dist, q: q, k: k, cfg: cfg, best: math.Inf(1)}
	for _, v := range members {
		s.sumDist += dist[v]
	}
	s.record()
	s.enumerate(math.Inf(1))
	// The search tracks δ incrementally; recompute it exactly for the
	// winner so callers can compare against attr.Delta bit-for-bit.
	res := Result{
		Community: s.bestSet,
		Delta:     attr.Delta(dist, s.bestSet, q),
		Stats:     s.stats,
	}
	if s.interrupted {
		return res, cserr.Interruptedf(ctx.Err(), "exact: search interrupted after %d states", s.stats.States)
	}
	if s.exceeded {
		return res, ErrBudgetExhausted
	}
	return res, nil
}

// record scores the current state and keeps it if it beats the best.
func (s *searcher) record() {
	s.stats.CandidatesScored++
	d := s.delta()
	if d < s.best {
		s.best = d
		s.bestSet = s.sub.Members(s.bestSet[:0])
	}
}

// delta returns δ of the current state from the maintained distance sum.
func (s *searcher) delta() float64 {
	n := s.sub.Size() - 1
	if n <= 0 {
		return 0
	}
	return s.sumDist / float64(n)
}

// lowerBound computes the Theorem-6 bound: the mean of the k smallest
// f(·,q) among alive nodes other than q (Eqs. 3–4).
func (s *searcher) lowerBound() float64 {
	// Max-heap of size k over the smallest distances.
	heap := make([]float64, 0, s.k)
	push := func(x float64) {
		if len(heap) < s.k {
			heap = append(heap, x)
			for i := len(heap) - 1; i > 0; {
				p := (i - 1) / 2
				if heap[p] >= heap[i] {
					break
				}
				heap[p], heap[i] = heap[i], heap[p]
				i = p
			}
			return
		}
		if x >= heap[0] {
			return
		}
		heap[0] = x
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(heap) && heap[l] > heap[big] {
				big = l
			}
			if r < len(heap) && heap[r] > heap[big] {
				big = r
			}
			if big == i {
				break
			}
			heap[i], heap[big] = heap[big], heap[i]
			i = big
		}
	}
	for _, v := range s.sub.Universe() {
		if v != s.q && s.sub.Alive(v) {
			push(s.dist[v])
		}
	}
	sum := 0.0
	for _, x := range heap {
		sum += x
	}
	if len(heap) == 0 {
		return 0
	}
	return sum / float64(len(heap))
}

// enumerate implements the Enumerate procedure of Algorithm 1. fuq is the
// composite distance of the node whose deletion produced the current state
// (+Inf at the root).
func (s *searcher) enumerate(fuq float64) {
	s.stats.States++
	if s.cfg.MaxStates > 0 && s.stats.States > s.cfg.MaxStates {
		s.exceeded = true
		return
	}
	if s.stats.States&ctxCheckMask == 0 && s.ctx.Err() != nil {
		s.interrupted = true
		return
	}
	// P3: prune unpromising states (Theorem 6).
	if s.cfg.PruneUnpromising {
		if s.lowerBound() >= s.best {
			s.stats.PrunedUnpromise++
			return
		}
	}
	// P2: only delete nodes with f(·,q) > δ(current) (Theorem 5).
	curDelta := s.delta()
	var candidates []graph.NodeID
	for _, id := range s.sub.Universe() {
		if id == s.q || !s.sub.Alive(id) {
			continue
		}
		if s.cfg.PruneUnnecessary && s.dist[id] <= curDelta {
			continue
		}
		candidates = append(candidates, id)
	}
	if s.cfg.PruneDuplicates {
		// Priority enumeration: descending f(·,q).
		sort.Slice(candidates, func(i, j int) bool {
			return s.dist[candidates[i]] > s.dist[candidates[j]]
		})
	}
	for _, v := range candidates {
		if s.exceeded || s.interrupted {
			return
		}
		if !s.sub.Alive(v) {
			// A sibling subtree is explored and restored before the next
			// candidate, so v is always alive again here; guard anyway.
			continue
		}
		removed, qAlive := s.sub.RemoveCascade(v)
		if !qAlive || s.sub.Size() < s.k+1 {
			s.sub.Restore(removed)
			continue
		}
		// P1 (Theorem 4): vm = removed node with the largest f(·,q).
		if s.cfg.PruneDuplicates {
			fm := 0.0
			for _, w := range removed {
				if s.dist[w] > fm {
					fm = s.dist[w]
				}
			}
			if fm > fuq {
				s.stats.PrunedDuplicate++
				s.sub.Restore(removed)
				continue
			}
		}
		for _, w := range removed {
			s.sumDist -= s.dist[w]
		}
		s.record()
		s.enumerate(s.dist[v])
		for _, w := range removed {
			s.sumDist += s.dist[w]
		}
		s.sub.Restore(removed)
	}
}

// BruteForce enumerates every subset of g's nodes that contains q and forms a
// connected k-core, returning the one with minimum δ. It is exponential in
// the number of nodes (≤ 20) and exists as the ground-truth oracle for tests.
func BruteForce(g graph.Adjacency, q graph.NodeID, k int, dist []float64) (Result, error) {
	n := g.NumNodes()
	if n > 20 {
		return Result{}, fmt.Errorf("exact: BruteForce limited to 20 nodes, got %d", n)
	}
	best := math.Inf(1)
	var bestSet []graph.NodeID
	members := make([]graph.NodeID, 0, n)
	for mask := 0; mask < 1<<n; mask++ {
		if mask&(1<<uint(q)) == 0 {
			continue
		}
		members = members[:0]
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				members = append(members, graph.NodeID(v))
			}
		}
		if len(members) < k+1 {
			continue
		}
		if !kcore.InKCoreSet(g, members, k) {
			continue
		}
		if !connectedSet(g, members, q) {
			continue
		}
		d := attr.Delta(dist, members, q)
		if d < best {
			best = d
			bestSet = append([]graph.NodeID(nil), members...)
		}
	}
	if bestSet == nil {
		return Result{}, ErrNoCommunity
	}
	return Result{Community: bestSet, Delta: best}, nil
}

// connectedSet reports whether members induce a connected subgraph reaching
// q. Membership and visitation use epoch-stamped sets from the workspace
// pool instead of per-call maps.
func connectedSet(g graph.Adjacency, members []graph.NodeID, q graph.NodeID) bool {
	w := ws.Get()
	defer w.Release()
	in := &w.Member
	in.Reset(g.NumNodes())
	for _, v := range members {
		in.Add(v)
	}
	if !in.Has(q) {
		return false
	}
	seen := &w.Visited
	seen.Reset(g.NumNodes())
	seen.Add(q)
	stack := append(w.Nodes[:0], q)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.NeighborsInto(&w.NbrA, v) {
			if in.Has(u) && seen.Add(u) {
				stack = append(stack, u)
			}
		}
	}
	w.Nodes = stack[:0]
	return seen.Len() == len(members)
}
