package exact

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/attr"
	"repro/internal/graph"
	"repro/internal/kcore"
)

// figure3Graph reproduces the running example of Figures 2(c)/3: the
// connected 2-core over {v1..v6} with q=v5 and the distances listed at the
// top of Figure 3. IDs: v1..v6 → 0..5, q = 4.
func figure3Graph(t testing.TB) (*graph.Graph, []float64, graph.NodeID) {
	t.Helper()
	b := graph.NewBuilder(6, 0)
	// Figure 2(c): a 2-core on six nodes. Ring plus chords so that deleting
	// any single non-cut node keeps a 2-core.
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 2}, {1, 3}, {2, 4}, {3, 5}} {
		b.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]))
	}
	g := b.MustBuild()
	// f(v1..v6, q=v5): 0.7, 0.6, 0.6, 0.5, 0 (q), 0.3.
	dist := []float64{0.7, 0.6, 0.6, 0.5, 0, 0.3}
	return g, dist, 4
}

func TestSearchMatchesBruteForceOnFigure3(t *testing.T) {
	g, dist, q := figure3Graph(t)
	want, err := BruteForce(g, q, 2, dist)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range allConfigs() {
		got, err := Search(g, q, 2, dist, cfg)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if math.Abs(got.Delta-want.Delta) > 1e-12 {
			t.Errorf("cfg %+v: δ = %v, want %v (community %v vs %v)",
				cfg, got.Delta, want.Delta, got.Community, want.Community)
		}
	}
}

// allConfigs enumerates the pruning ablation grid of Table IV.
func allConfigs() []Config {
	return []Config{
		{PruneDuplicates: true, PruneUnnecessary: true, PruneUnpromising: true},
		{PruneDuplicates: true, PruneUnnecessary: true},
		{PruneDuplicates: true},
		{MaxStates: 200000}, // no prunings: bound the duplicate explosion
	}
}

func TestSearchRootOnlyWhenNoBetterSubstate(t *testing.T) {
	// A 4-clique with k=3: the only connected 3-core is the clique itself.
	b := graph.NewBuilder(4, 0)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	g := b.MustBuild()
	dist := []float64{0, 0.9, 0.5, 0.2}
	got, err := Search(g, 0, 3, dist, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Community) != 4 {
		t.Errorf("community = %v, want whole clique", got.Community)
	}
	if want := (0.9 + 0.5 + 0.2) / 3; math.Abs(got.Delta-want) > 1e-12 {
		t.Errorf("δ = %v, want %v", got.Delta, want)
	}
}

func TestSearchNoCommunity(t *testing.T) {
	g, dist, _ := figure3Graph(t)
	if _, err := Search(g, 0, 5, dist, DefaultConfig()); !errors.Is(err, ErrNoCommunity) {
		t.Errorf("err = %v, want ErrNoCommunity", err)
	}
}

func TestSearchRejectsBadK(t *testing.T) {
	g, dist, q := figure3Graph(t)
	if _, err := Search(g, q, 0, dist, DefaultConfig()); err == nil {
		t.Error("accepted k=0")
	}
}

func TestPruningReducesStates(t *testing.T) {
	g, dist, q := figure3Graph(t)
	full, err := Search(g, q, 2, dist, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p1only, err := Search(g, q, 2, dist, Config{PruneDuplicates: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.States > p1only.Stats.States {
		t.Errorf("all prunings visited %d states, P1-only %d", full.Stats.States, p1only.Stats.States)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	g, dist, q := figure3Graph(t)
	res, err := Search(g, q, 2, dist, Config{MaxStates: 1})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if res.Community == nil {
		t.Error("budget-exhausted search returned no community")
	}
}

// randomAttributed builds a random connected-ish attributed graph small
// enough for BruteForce.
func randomAttributed(rng *rand.Rand) (*graph.Graph, []float64, graph.NodeID) {
	n := 5 + rng.Intn(7) // ≤ 11 nodes keeps BruteForce fast
	b := graph.NewBuilder(n, 0)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	m := n * (1 + rng.Intn(3))
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g := b.MustBuild()
	q := graph.NodeID(rng.Intn(n))
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = float64(rng.Intn(100)) / 100
	}
	dist[q] = 0
	return g, dist, q
}

func TestPropertySearchMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, dist, q := randomAttributed(rng)
		k := 1 + rng.Intn(3)
		want, errWant := BruteForce(g, q, k, dist)
		for _, cfg := range allConfigs() {
			got, err := Search(g, q, k, dist, cfg)
			if errors.Is(errWant, ErrNoCommunity) {
				if !errors.Is(err, ErrNoCommunity) {
					return false
				}
				continue
			}
			if err != nil && !errors.Is(err, ErrBudgetExhausted) {
				return false
			}
			if errors.Is(err, ErrBudgetExhausted) {
				// Best-effort result: must be valid but may be suboptimal.
				if got.Delta+1e-9 < want.Delta {
					return false
				}
			} else if math.Abs(got.Delta-want.Delta) > 1e-9 {
				return false
			}
			// The returned community must be a valid connected k-core with q.
			if !kcore.InKCoreSet(g, got.Community, k) {
				return false
			}
			if attr.Delta(dist, got.Community, q) != got.Delta {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStatsPopulated(t *testing.T) {
	g, dist, q := figure3Graph(t)
	res, err := Search(g, q, 2, dist, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.States < 1 || res.Stats.CandidatesScored < 1 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
}

// TestSearchContextCancellation proves the acceptance criterion for the
// exact method: a context cancelled mid-search returns promptly (well under
// 50ms) with the best community found so far and an error wrapping the
// context's error — symmetric with the ErrBudgetExhausted contract.
func TestSearchContextCancellation(t *testing.T) {
	// A complete graph on 40 nodes with distinct distances: without pruning
	// the enumeration tree has ~2^39 states, so the search cannot finish on
	// its own within any test budget.
	const n = 40
	b := graph.NewBuilder(n, 0)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	g := b.MustBuild()
	rng := rand.New(rand.NewSource(7))
	dist := make([]float64, n)
	for i := 1; i < n; i++ {
		dist[i] = rng.Float64()
	}

	ctx, cancel := context.WithCancel(context.Background())
	type answer struct {
		res Result
		err error
	}
	done := make(chan answer, 1)
	go func() {
		res, err := SearchContext(ctx, g, 0, 3, dist, Config{}) // no pruning, no budget
		done <- answer{res, err}
	}()
	time.Sleep(20 * time.Millisecond) // let the enumeration get going
	cancel()
	t0 := time.Now()
	var got answer
	select {
	case got = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled exact search did not return")
	}
	if el := time.Since(t0); el > 50*time.Millisecond {
		t.Fatalf("cancelled search took %v to return, want < 50ms", el)
	}
	if !errors.Is(got.err, context.Canceled) {
		t.Fatalf("want error wrapping context.Canceled, got %v", got.err)
	}
	if len(got.res.Community) == 0 {
		t.Fatal("interrupted search should carry the best community found so far")
	}
	if got.res.Stats.States == 0 {
		t.Fatal("search did not explore any states before cancellation")
	}
}
