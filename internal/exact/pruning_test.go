package exact

// Focused tests on the individual pruning strategies of §IV, beyond the
// end-to-end equivalence checked in exact_test.go.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// denseRandom builds a dense random graph whose 2-core spans most nodes, so
// the search tree is non-trivial.
func denseRandom(seed int64, n int) (*graph.Graph, []float64, graph.NodeID) {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, 0)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	for i := 0; i < 4*n; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g := b.MustBuild()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = rng.Float64()
	}
	q := graph.NodeID(rng.Intn(n))
	dist[q] = 0
	return g, dist, q
}

func TestP3NeverChangesTheOptimum(t *testing.T) {
	f := func(seed int64) bool {
		g, dist, q := denseRandom(seed, 9)
		with, err1 := Search(g, q, 2, dist, Config{PruneDuplicates: true, PruneUnnecessary: true, PruneUnpromising: true})
		without, err2 := Search(g, q, 2, dist, Config{PruneDuplicates: true, PruneUnnecessary: true})
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return math.Abs(with.Delta-without.Delta) < 1e-9 &&
			with.Stats.States <= without.Stats.States
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestP2NeverChangesTheOptimum(t *testing.T) {
	f := func(seed int64) bool {
		g, dist, q := denseRandom(seed, 9)
		with, err1 := Search(g, q, 2, dist, Config{PruneDuplicates: true, PruneUnnecessary: true})
		without, err2 := Search(g, q, 2, dist, Config{PruneDuplicates: true})
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return math.Abs(with.Delta-without.Delta) < 1e-9 &&
			with.Stats.States <= without.Stats.States
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestP1CutsDuplicateStatesMassively(t *testing.T) {
	// The paper reports P1 pruning 99.8% of states on Facebook. On a dense
	// random graph the pruned search must explore far fewer states than the
	// unpruned one.
	g, dist, q := denseRandom(3, 10)
	pruned, err := Search(g, q, 2, dist, Config{PruneDuplicates: true})
	if err != nil {
		t.Fatal(err)
	}
	unpruned, err := Search(g, q, 2, dist, Config{MaxStates: 2_000_000})
	if err != nil && err != ErrBudgetExhausted {
		t.Fatal(err)
	}
	if pruned.Stats.States*4 > unpruned.Stats.States {
		t.Errorf("P1 explored %d states vs %d unpruned — expected a much larger cut",
			pruned.Stats.States, unpruned.Stats.States)
	}
}

func TestPrunedCountersIncrement(t *testing.T) {
	g, dist, q := denseRandom(7, 11)
	res, err := Search(g, q, 2, dist, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// At least one of the pruning counters must have fired on a dense graph.
	if res.Stats.PrunedDuplicate == 0 && res.Stats.PrunedUnpromise == 0 {
		t.Errorf("no pruning recorded: %+v", res.Stats)
	}
}

func TestLowerBoundIsSound(t *testing.T) {
	// The Theorem-6 bound (mean of the k smallest f(·,q)) can never exceed
	// the δ of any connected k-core in the state, in particular the optimum.
	f := func(seed int64) bool {
		g, dist, q := denseRandom(seed, 9)
		res, err := Search(g, q, 2, dist, DefaultConfig())
		if err != nil {
			return true
		}
		// Recompute the root bound by hand.
		members := res.Community
		_ = members
		var all []float64
		for v := range dist {
			if graph.NodeID(v) != q {
				all = append(all, dist[v])
			}
		}
		// two smallest
		min1, min2 := math.Inf(1), math.Inf(1)
		for _, x := range all {
			if x < min1 {
				min1, min2 = x, min1
			} else if x < min2 {
				min2 = x
			}
		}
		bound := (min1 + min2) / 2
		return bound <= res.Delta+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
