// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII) on the synthetic dataset analogs. Each runner returns
// structured rows and renders a plain-text table, so the same code backs the
// seabench command, the benchmark suite, and EXPERIMENTS.md.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/attr"
	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/sea"
)

// Config controls experiment scale so the full suite runs in minutes rather
// than the paper's server-days.
type Config struct {
	Scale       float64 // dataset scale factor (1.0 = default profile sizes)
	Queries     int     // queries per dataset (paper: 200)
	K           int     // structural parameter
	Gamma       float64 // attribute balance factor
	ErrorBound  float64 // e
	Confidence  float64 // 1−α
	ExactBudget int64   // MaxStates for the exact reference on large cores
	Seed        int64
}

// Default mirrors the paper's defaults at laptop scale.
func Default() Config {
	return Config{
		Scale:       1.0,
		Queries:     20,
		K:           6,
		Gamma:       0.5,
		ErrorBound:  0.02,
		Confidence:  0.95,
		ExactBudget: 30000,
		Seed:        42,
	}
}

// Quick is a miniature configuration for tests and smoke benches.
func Quick() Config {
	c := Default()
	c.Scale = 0.15
	c.Queries = 4
	c.ExactBudget = 8000
	return c
}

// seaOptions builds SEA options from the experiment config.
func (c Config) seaOptions() sea.Options {
	o := sea.DefaultOptions()
	o.K = c.K
	o.ErrorBound = c.ErrorBound
	o.Confidence = c.Confidence
	o.Seed = c.Seed
	// Three sampling rounds keep the whole suite minutes-fast; the paper
	// observes convergence within two rounds.
	o.MaxRounds = 3
	return o
}

// MethodRow aggregates one method's behaviour over all queries of a dataset.
type MethodRow struct {
	Dataset  string
	Method   string
	Delta    float64 // mean δ over queries
	RelErr   float64 // mean relative error of δ vs the exact reference (%)
	TimeMS   float64 // mean response time in milliseconds
	Failures int     // queries where the method found no community
}

// methodFunc runs one method for one query and returns the community.
type methodFunc func(g *graph.Graph, m *attr.Metric, dist []float64, q graph.NodeID) ([]graph.NodeID, error)

// homogeneousMethods enumerates the §VII-A method lineup for k-core.
func (c Config) homogeneousMethods(withEVAC bool) (names []string, fns []methodFunc) {
	names = []string{"SEA", "Exact", "LocATC-Core", "ACQ-Core", "VAC-Core"}
	fns = []methodFunc{
		func(g *graph.Graph, m *attr.Metric, dist []float64, q graph.NodeID) ([]graph.NodeID, error) {
			res, err := sea.SearchWithDist(g, dist, q, c.seaOptions())
			if err != nil {
				return nil, err
			}
			return res.Community, nil
		},
		func(g *graph.Graph, m *attr.Metric, dist []float64, q graph.NodeID) ([]graph.NodeID, error) {
			res, err := exact.Search(g, q, c.K, dist, exact.Config{
				PruneDuplicates: true, PruneUnnecessary: true, PruneUnpromising: true,
				MaxStates: c.ExactBudget,
			})
			if err != nil && !errors.Is(err, exact.ErrBudgetExhausted) {
				return nil, err
			}
			return res.Community, nil
		},
		func(g *graph.Graph, m *attr.Metric, dist []float64, q graph.NodeID) ([]graph.NodeID, error) {
			return baselines.LocATC(g, q, c.K, baselines.KCore)
		},
		func(g *graph.Graph, m *attr.Metric, dist []float64, q graph.NodeID) ([]graph.NodeID, error) {
			return baselines.ACQ(g, q, c.K, baselines.KCore)
		},
		func(g *graph.Graph, m *attr.Metric, dist []float64, q graph.NodeID) ([]graph.NodeID, error) {
			return baselines.VAC(g, m, q, c.K, baselines.KCore)
		},
	}
	if withEVAC {
		names = append(names, "E-VAC-Core")
		fns = append(fns, func(g *graph.Graph, m *attr.Metric, dist []float64, q graph.NodeID) ([]graph.NodeID, error) {
			return baselines.EVAC(g, m, q, c.K, baselines.KCore, int(c.ExactBudget))
		})
	}
	return names, fns
}

// RunMethods evaluates every method on every query of d and aggregates.
// The "Exact" row is the relative-error reference for the others.
func (c Config) RunMethods(d *dataset.Generated, withEVAC bool) ([]MethodRow, error) {
	m, err := attr.NewMetric(d.Graph, c.Gamma)
	if err != nil {
		return nil, err
	}
	queries := d.QueryNodes(c.Queries, c.K, c.Seed)
	names, fns := c.homogeneousMethods(withEVAC)
	rows := make([]MethodRow, len(names))
	for i := range rows {
		rows[i] = MethodRow{Dataset: d.Spec.Name, Method: names[i]}
	}
	counts := make([]int, len(names))
	for _, q := range queries {
		dist := m.QueryDist(q)
		// Exact reference first (index 1 in the lineup).
		exactDelta := math.NaN()
		communities := make([][]graph.NodeID, len(names))
		for i, fn := range fns {
			start := time.Now()
			members, err := fn(d.Graph, m, dist, q)
			elapsed := time.Since(start)
			if err != nil || members == nil {
				rows[i].Failures++
				continue
			}
			communities[i] = members
			rows[i].TimeMS += float64(elapsed.Microseconds()) / 1000
			counts[i]++
			if names[i] == "Exact" {
				exactDelta = attr.Delta(dist, members, q)
			}
		}
		for i := range names {
			if communities[i] == nil {
				continue
			}
			delta := attr.Delta(dist, communities[i], q)
			rows[i].Delta += delta
			if !math.IsNaN(exactDelta) && exactDelta > 0 {
				rows[i].RelErr += 100 * math.Abs(delta-exactDelta) / exactDelta
			}
		}
	}
	for i := range rows {
		if counts[i] > 0 {
			rows[i].Delta /= float64(counts[i])
			rows[i].RelErr /= float64(counts[i])
			rows[i].TimeMS /= float64(counts[i])
		}
	}
	return rows, nil
}

// F1 computes the F1-score of a community against a ground-truth set.
func F1(community, truth []graph.NodeID) float64 {
	if len(community) == 0 || len(truth) == 0 {
		return 0
	}
	in := make(map[graph.NodeID]bool, len(truth))
	for _, v := range truth {
		in[v] = true
	}
	tp := 0
	for _, v := range community {
		if in[v] {
			tp++
		}
	}
	if tp == 0 {
		return 0
	}
	precision := float64(tp) / float64(len(community))
	recall := float64(tp) / float64(len(truth))
	return 2 * precision * recall / (precision + recall)
}

// Table is a simple fixed-width text table used by every runner.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Caption != "" {
		fmt.Fprintln(w, t.Caption)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fmtF renders a float with sensible precision for tables.
func fmtF(x float64) string {
	switch {
	case math.IsNaN(x):
		return "-"
	case x != 0 && math.Abs(x) < 0.01:
		return fmt.Sprintf("%.2e", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// rank returns 1-based ranks of values (ascending when asc, else descending),
// with ties sharing the better rank, as in Table II.
func rank(values []float64, asc bool) []int {
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if asc {
			return values[idx[a]] < values[idx[b]]
		}
		return values[idx[a]] > values[idx[b]]
	})
	ranks := make([]int, len(values))
	for pos, i := range idx {
		if pos > 0 && values[i] == values[idx[pos-1]] {
			ranks[i] = ranks[idx[pos-1]]
		} else {
			ranks[i] = pos + 1
		}
	}
	return ranks
}
