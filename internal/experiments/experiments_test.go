package experiments

import (
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/graph"
)

// quietOrVerbose writes tables to stderr under -v, otherwise discards.
func quietOrVerbose(t *testing.T) io.Writer {
	if testing.Verbose() {
		return os.Stderr
	}
	return io.Discard
}

func TestF1(t *testing.T) {
	a := []graph.NodeID{1, 2, 3, 4}
	b := []graph.NodeID{3, 4, 5, 6}
	// precision 0.5, recall 0.5 → F1 0.5.
	if got := F1(a, b); got != 0.5 {
		t.Errorf("F1 = %v, want 0.5", got)
	}
	if F1(a, a) != 1 {
		t.Error("identical sets should score 1")
	}
	if F1(a, []graph.NodeID{9}) != 0 {
		t.Error("disjoint sets should score 0")
	}
	if F1(nil, a) != 0 || F1(a, nil) != 0 {
		t.Error("empty sets should score 0")
	}
}

func TestRank(t *testing.T) {
	ranks := rank([]float64{0.3, 0.1, 0.3, 0.5}, true)
	want := []int{2, 1, 2, 4}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("rank = %v, want %v", ranks, want)
		}
	}
	desc := rank([]float64{1, 3, 2}, false)
	if desc[1] != 1 || desc[0] != 3 {
		t.Errorf("descending ranks = %v", desc)
	}
}

func TestTableRender(t *testing.T) {
	var sb strings.Builder
	tab := &Table{
		Title:   "demo",
		Header:  []string{"a", "long-header"},
		Rows:    [][]string{{"x", "1"}, {"yyyy", "2"}},
		Caption: "cap",
	}
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "long-header", "yyyy", "cap"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Smoke(t *testing.T) {
	rows, err := Table1(Quick(), quietOrVerbose(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10 datasets", len(rows))
	}
	for _, r := range rows {
		if r.Nodes == 0 || r.Edges == 0 {
			t.Errorf("%s: empty stats", r.Name)
		}
	}
	// Heterogeneous analogs must report multiple node types.
	if rows[5].NTypes < 2 {
		t.Errorf("%s: NTypes = %d", rows[5].Name, rows[5].NTypes)
	}
}

func TestRunMethodsSmoke(t *testing.T) {
	cfg := Quick()
	rows, err := runQuickFacebook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string]MethodRow{}
	for _, r := range rows {
		byMethod[r.Method] = r
	}
	seaRow, ok := byMethod["SEA"]
	if !ok {
		t.Fatal("no SEA row")
	}
	if seaRow.Failures == cfg.Queries {
		t.Error("SEA failed on every query")
	}
	if seaRow.Delta <= 0 {
		t.Errorf("SEA δ = %v", seaRow.Delta)
	}
	// SEA's relative error should be small on the quick config.
	if seaRow.RelErr > 25 {
		t.Errorf("SEA rel err = %v%%, suspiciously high", seaRow.RelErr)
	}
}

func runQuickFacebook(cfg Config) ([]MethodRow, error) {
	d, err := quickFacebook(cfg)
	if err != nil {
		return nil, err
	}
	return cfg.RunMethods(d, true)
}
