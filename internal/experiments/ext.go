package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/attr"
	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/sea"
)

// Table5Row aggregates one method on one heterogeneous dataset.
type Table5Row struct {
	Dataset string
	Method  string
	TimeMS  float64
	RelErr  float64 // % vs the budgeted exact reference on the projection
	Fail    int
}

// Table5 runs core- and truss-based methods on the heterogeneous analogs
// via the meta-path projection (§VI-A). ACQ rows on the numerical-only
// knowledge-graph analogs report failures, matching the paper's '-' cells.
func Table5(cfg Config, w io.Writer) ([]Table5Row, error) {
	var rows []Table5Row
	for _, name := range dataset.HetNames {
		d, err := dataset.Heterogeneous(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		proj, err := d.Het.Project(d.Path)
		if err != nil {
			return nil, err
		}
		m, err := attr.NewMetric(proj.Graph, cfg.Gamma)
		if err != nil {
			return nil, err
		}
		var queries []graph.NodeID
		for _, hq := range d.QueryTargets(cfg.Queries, cfg.K, cfg.Seed) {
			queries = append(queries, proj.FromHet[hq])
		}
		rows = append(rows, runHetMethods(cfg, name, proj.Graph, m, queries)...)
	}
	t := &Table{
		Title:  "Table V: heterogeneous graphs, core- and truss-based methods",
		Header: []string{"dataset", "method", "time ms", "rel.err %", "failures"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Dataset, r.Method, fmtF(r.TimeMS), fmtF(r.RelErr), fmt.Sprint(r.Fail),
		})
	}
	t.Render(w)
	return rows, nil
}

// runHetMethods evaluates the Table-V method lineup on a projected graph.
func runHetMethods(cfg Config, name string, g *graph.Graph, m *attr.Metric, queries []graph.NodeID) []Table5Row {
	type method struct {
		name string
		fn   methodFunc
	}
	coreOpts := cfg.seaOptions()
	trussOpts := cfg.seaOptions()
	trussOpts.Model = sea.KTruss
	methods := []method{
		{"SEA", func(g *graph.Graph, m *attr.Metric, dist []float64, q graph.NodeID) ([]graph.NodeID, error) {
			res, err := sea.SearchWithDist(g, dist, q, coreOpts)
			if err != nil {
				return nil, err
			}
			return res.Community, nil
		}},
		{"ACQ-Core", func(g *graph.Graph, m *attr.Metric, dist []float64, q graph.NodeID) ([]graph.NodeID, error) {
			members, err := baselines.ACQ(g, q, cfg.K, baselines.KCore)
			if err != nil {
				return nil, err
			}
			// The paper's '-' cells: ACQ requires shared textual attributes;
			// with none it cannot return an attributed community.
			if len(g.TextAttrs(q)) == 0 {
				return nil, baselines.ErrNoCommunity
			}
			return members, nil
		}},
		{"LocATC-Core", func(g *graph.Graph, m *attr.Metric, dist []float64, q graph.NodeID) ([]graph.NodeID, error) {
			return baselines.LocATC(g, q, cfg.K, baselines.KCore)
		}},
		{"VAC-Core", func(g *graph.Graph, m *attr.Metric, dist []float64, q graph.NodeID) ([]graph.NodeID, error) {
			return baselines.VAC(g, m, q, cfg.K, baselines.KCore)
		}},
		{"SEA-Truss", func(g *graph.Graph, m *attr.Metric, dist []float64, q graph.NodeID) ([]graph.NodeID, error) {
			res, err := sea.SearchWithDist(g, dist, q, trussOpts)
			if err != nil {
				return nil, err
			}
			return res.Community, nil
		}},
		{"LocATC-Truss", func(g *graph.Graph, m *attr.Metric, dist []float64, q graph.NodeID) ([]graph.NodeID, error) {
			return baselines.LocATC(g, q, cfg.K, baselines.KTruss)
		}},
		{"VAC-Truss", func(g *graph.Graph, m *attr.Metric, dist []float64, q graph.NodeID) ([]graph.NodeID, error) {
			return baselines.VAC(g, m, q, cfg.K, baselines.KTruss)
		}},
	}
	rows := make([]Table5Row, len(methods))
	counts := make([]int, len(methods))
	for i := range rows {
		rows[i] = Table5Row{Dataset: name, Method: methods[i].name}
	}
	for _, q := range queries {
		dist := m.QueryDist(q)
		ref, err := exact.Search(g, q, cfg.K, dist, exact.Config{
			PruneDuplicates: true, PruneUnnecessary: true, PruneUnpromising: true,
			MaxStates: cfg.ExactBudget,
		})
		refDelta := math.NaN()
		if err == nil || errors.Is(err, exact.ErrBudgetExhausted) {
			refDelta = ref.Delta
		}
		for i, meth := range methods {
			start := time.Now()
			members, err := meth.fn(g, m, dist, q)
			if err != nil || members == nil {
				rows[i].Fail++
				continue
			}
			rows[i].TimeMS += ms(time.Since(start))
			if !math.IsNaN(refDelta) && refDelta > 0 {
				delta := attr.Delta(dist, members, q)
				rows[i].RelErr += 100 * math.Abs(delta-refDelta) / refDelta
			}
			counts[i]++
		}
	}
	for i := range rows {
		if counts[i] > 0 {
			rows[i].TimeMS /= float64(counts[i])
			rows[i].RelErr /= float64(counts[i])
		}
	}
	return rows
}

// Fig7Row is one size-range point of Figure 7.
type Fig7Row struct {
	Dataset        string
	SizeLo, SizeHi int
	TimeMS         float64
	RelErr         float64 // % vs size-unbounded SEA reference
	Hits           int
}

// fig7Bounds are the size ranges of Figure 7.
var fig7Bounds = [][2]int{{30, 35}, {35, 40}, {40, 45}, {45, 50}}

// Fig7 runs size-bounded SEA over the size ranges of Figure 7 on the DBLP
// projection and the GitHub analog.
func Fig7(cfg Config, w io.Writer) ([]Fig7Row, error) {
	var rows []Fig7Row
	// DBLP analog (projected) and GitHub analog.
	dblp, err := dataset.Heterogeneous("dblp", cfg.Scale)
	if err != nil {
		return nil, err
	}
	proj, err := dblp.Het.Project(dblp.Path)
	if err != nil {
		return nil, err
	}
	var dblpQ []graph.NodeID
	for _, hq := range dblp.QueryTargets(cfg.Queries, cfg.K, cfg.Seed) {
		dblpQ = append(dblpQ, proj.FromHet[hq])
	}
	gh, err := dataset.Homogeneous("github", cfg.Scale)
	if err != nil {
		return nil, err
	}
	targets := []struct {
		name    string
		g       *graph.Graph
		queries []graph.NodeID
	}{
		{"dblp", proj.Graph, dblpQ},
		{"github", gh.Graph, gh.QueryNodes(cfg.Queries, cfg.K, cfg.Seed)},
	}
	for _, tgt := range targets {
		m, err := attr.NewMetric(tgt.g, cfg.Gamma)
		if err != nil {
			return nil, err
		}
		for _, bound := range fig7Bounds {
			row := Fig7Row{Dataset: tgt.name, SizeLo: bound[0], SizeHi: bound[1]}
			for _, q := range tgt.queries {
				dist := m.QueryDist(q)
				opts := cfg.seaOptions()
				opts.SizeLo, opts.SizeHi = bound[0], bound[1]
				start := time.Now()
				res, err := sea.SearchWithDist(tgt.g, dist, q, opts)
				if err != nil {
					continue
				}
				row.TimeMS += ms(time.Since(start))
				// Reference: unbounded SEA δ.
				free, err := sea.SearchWithDist(tgt.g, dist, q, cfg.seaOptions())
				if err == nil && free.Delta > 0 {
					row.RelErr += 100 * math.Abs(res.Delta-free.Delta) / free.Delta
				}
				row.Hits++
			}
			if row.Hits > 0 {
				row.TimeMS /= float64(row.Hits)
				row.RelErr /= float64(row.Hits)
			}
			rows = append(rows, row)
		}
	}
	t := &Table{
		Title:  "Figure 7: size-bounded community search (SEA)",
		Header: []string{"dataset", "size bound", "time ms", "rel.err %", "hits"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Dataset, fmt.Sprintf("[%d,%d]", r.SizeLo, r.SizeHi),
			fmtF(r.TimeMS), fmtF(r.RelErr), fmt.Sprint(r.Hits),
		})
	}
	t.Render(w)
	return rows, nil
}
