package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/attr"
	"repro/internal/dataset"
	"repro/internal/sea"
)

// Fig5Result carries the per-dataset method rows backing Figures 5(a)-(c).
type Fig5Result struct {
	Rows []MethodRow
}

// Fig5 runs the homogeneous effectiveness/efficiency comparison of
// Figures 5(a)-(c): attribute distance δ, relative error of δ, and response
// time for every method on every homogeneous dataset analog. E-VAC runs only
// on the two smallest datasets, as in the paper.
func Fig5(cfg Config, w io.Writer) (*Fig5Result, error) {
	var all []MethodRow
	for i, name := range dataset.HomogeneousNames {
		d, err := dataset.Homogeneous(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		withEVAC := i < 2 // Facebook and GitHub analogs only
		rows, err := cfg.RunMethods(d, withEVAC)
		if err != nil {
			return nil, err
		}
		all = append(all, rows...)
	}
	res := &Fig5Result{Rows: all}
	res.render(w)
	return res, nil
}

func (r *Fig5Result) render(w io.Writer) {
	ta := &Table{Title: "Figure 5(a): attribute distance δ", Header: []string{"dataset", "method", "δ"}}
	tb := &Table{Title: "Figure 5(b): relative error of δ (%)", Header: []string{"dataset", "method", "rel.err %"}}
	tc := &Table{Title: "Figure 5(c): response time (ms)", Header: []string{"dataset", "method", "time ms", "SEA speedup"}}
	seaTime := map[string]float64{}
	for _, row := range r.Rows {
		if row.Method == "SEA" {
			seaTime[row.Dataset] = row.TimeMS
		}
	}
	for _, row := range r.Rows {
		ta.Rows = append(ta.Rows, []string{row.Dataset, row.Method, fmtF(row.Delta)})
		if row.Method != "Exact" {
			tb.Rows = append(tb.Rows, []string{row.Dataset, row.Method, fmtF(row.RelErr)})
		}
		speedup := "-"
		if st := seaTime[row.Dataset]; st > 0 && row.Method != "SEA" {
			speedup = fmt.Sprintf("%.2fx", row.TimeMS/st)
		}
		tc.Rows = append(tc.Rows, []string{row.Dataset, row.Method, fmtF(row.TimeMS), speedup})
	}
	ta.Render(w)
	tb.Render(w)
	tc.Render(w)
}

// Fig5dRow is the per-step time breakdown of Figure 5(d).
type Fig5dRow struct {
	Dataset                string
	S1MS, S2MS, S3MS       float64
	GqSize, SampleSize     float64
	Rounds, SatisfiedCount int
}

// Fig5d measures SEA's three pipeline steps (S1 sampling, S2 estimation,
// S3 incremental sampling) per dataset.
func Fig5d(cfg Config, w io.Writer) ([]Fig5dRow, error) {
	var rows []Fig5dRow
	for _, name := range dataset.HomogeneousNames {
		d, err := dataset.Homogeneous(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		m, err := attr.NewMetric(d.Graph, cfg.Gamma)
		if err != nil {
			return nil, err
		}
		row := Fig5dRow{Dataset: name}
		n := 0
		for _, q := range d.QueryNodes(cfg.Queries, cfg.K, cfg.Seed) {
			res, err := sea.Search(d.Graph, m, q, cfg.seaOptions())
			if err != nil {
				continue
			}
			row.S1MS += ms(res.Steps.Sampling)
			row.S2MS += ms(res.Steps.Estimation)
			row.S3MS += ms(res.Steps.Incremental)
			row.GqSize += float64(res.GqSize)
			row.SampleSize += float64(res.SampleSize)
			row.Rounds += len(res.Rounds)
			if res.Satisfied {
				row.SatisfiedCount++
			}
			n++
		}
		if n > 0 {
			row.S1MS /= float64(n)
			row.S2MS /= float64(n)
			row.S3MS /= float64(n)
			row.GqSize /= float64(n)
			row.SampleSize /= float64(n)
		}
		rows = append(rows, row)
	}
	t := &Table{
		Title:  "Figure 5(d): SEA per-step time (ms)",
		Header: []string{"dataset", "S1 sampling", "S2 estimation", "S3 incremental", "|Gq|", "|S|", "satisfied"},
	}
	for _, row := range rows {
		t.Rows = append(t.Rows, []string{
			row.Dataset, fmtF(row.S1MS), fmtF(row.S2MS), fmtF(row.S3MS),
			fmt.Sprintf("%.0f", row.GqSize), fmt.Sprintf("%.0f", row.SampleSize),
			fmt.Sprintf("%d/%d", row.SatisfiedCount, cfg.Queries),
		})
	}
	t.Render(w)
	return rows, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
