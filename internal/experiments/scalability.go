package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/attr"
	"repro/internal/dataset"
	"repro/internal/exact"
	"repro/internal/sea"
)

// ScaleRow is one graph-size point of the scalability sweep.
type ScaleRow struct {
	Scale     float64
	Nodes     int
	Edges     int
	SEAMS     float64
	ExactMS   float64
	Speedup   float64
	SEARelErr float64 // % vs the budgeted exact
}

// Scalability answers §VII-E's scalability question directly: sweep the
// twitter analog's size and measure SEA versus the budgeted Exact. SEA's
// advantage must grow with the graph (the paper's Figure 5(c) trend).
func Scalability(cfg Config, w io.Writer) ([]ScaleRow, error) {
	scales := []float64{0.1, 0.2, 0.4}
	if cfg.Scale >= 0.5 {
		scales = []float64{0.2, 0.5, 1.0}
	}
	var rows []ScaleRow
	for _, scale := range scales {
		d, err := dataset.Homogeneous("twitter", scale)
		if err != nil {
			return nil, err
		}
		m, err := attr.NewMetric(d.Graph, cfg.Gamma)
		if err != nil {
			return nil, err
		}
		row := ScaleRow{Scale: scale, Nodes: d.Graph.NumNodes(), Edges: d.Graph.NumEdges()}
		n := 0
		for _, q := range d.QueryNodes(cfg.Queries, cfg.K, cfg.Seed) {
			dist := m.QueryDist(q)
			start := time.Now()
			res, err := sea.SearchWithDist(d.Graph, dist, q, cfg.seaOptions())
			if err != nil {
				continue
			}
			seaMS := ms(time.Since(start))
			start = time.Now()
			ex, err := exact.Search(d.Graph, q, cfg.K, dist, exact.Config{
				PruneDuplicates: true, PruneUnnecessary: true, PruneUnpromising: true,
				MaxStates: cfg.ExactBudget,
			})
			if err != nil && !errors.Is(err, exact.ErrBudgetExhausted) {
				continue
			}
			row.SEAMS += seaMS
			row.ExactMS += ms(time.Since(start))
			if ex.Delta > 0 {
				rel := (res.Delta - ex.Delta) / ex.Delta
				if rel < 0 {
					rel = -rel
				}
				row.SEARelErr += 100 * rel
			}
			n++
		}
		if n > 0 {
			row.SEAMS /= float64(n)
			row.ExactMS /= float64(n)
			row.SEARelErr /= float64(n)
			if row.SEAMS > 0 {
				row.Speedup = row.ExactMS / row.SEAMS
			}
		}
		rows = append(rows, row)
	}
	t := &Table{
		Title:  "Scalability: SEA vs budgeted Exact as the twitter analog grows",
		Header: []string{"scale", "#nodes", "#edges", "SEA ms", "Exact ms", "speedup", "SEA rel.err %"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", r.Scale), fmt.Sprint(r.Nodes), fmt.Sprint(r.Edges),
			fmtF(r.SEAMS), fmtF(r.ExactMS), fmt.Sprintf("%.1fx", r.Speedup), fmtF(r.SEARelErr),
		})
	}
	t.Render(w)
	return rows, nil
}
