package experiments

import "testing"

func TestScalabilitySmoke(t *testing.T) {
	cfg := Quick()
	cfg.Queries = 3
	rows, err := Scalability(cfg, quietOrVerbose(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 scales", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Nodes <= rows[i-1].Nodes {
			t.Errorf("scale sweep not growing: %d after %d nodes", rows[i].Nodes, rows[i-1].Nodes)
		}
	}
	// SEA must beat the budgeted exact at every scale.
	for _, r := range rows {
		if r.SEAMS > 0 && r.Speedup < 1 {
			t.Errorf("scale %.1f: SEA slower than Exact (%.2fx)", r.Scale, r.Speedup)
		}
	}
}
