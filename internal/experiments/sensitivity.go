package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/attr"
	"repro/internal/dataset"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/sea"
)

// Fig6Row is one ego-network F1 column of Figure 6.
type Fig6Row struct {
	Ego string
	F1  map[string]float64
}

// Fig6 computes per-ego-network F1 for SEA, Exact, and the baselines on the
// ten generated ego networks.
func Fig6(cfg Config, w io.Writer) ([]Fig6Row, error) {
	methods := []string{"SEA", "Exact", "LocATC-Core", "ACQ-Core", "VAC-Core"}
	var rows []Fig6Row
	egoCfg := cfg
	egoCfg.K = 4 // ego networks are small; use a gentler core
	for i := 0; i < 10; i++ {
		d, err := dataset.EgoNetwork(i)
		if err != nil {
			return nil, err
		}
		row, err := f1ForDataset(egoCfg, d, methods)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig6Row{Ego: d.Spec.Name, F1: row.F1})
	}
	t := &Table{
		Title:  "Figure 6: F1-score per ego network",
		Header: append([]string{"method"}, dataset.EgoNames...),
	}
	for _, method := range methods {
		cells := []string{method}
		for _, row := range rows {
			cells = append(cells, fmtF(row.F1[method]))
		}
		t.Rows = append(t.Rows, cells)
	}
	t.Render(w)
	return rows, nil
}

// SweepPoint is one x-value of a parameter-sensitivity curve.
type SweepPoint struct {
	Dataset string
	Param   string
	X       float64
	TimeMS  float64
	Delta   float64
	RelErr  float64 // % vs budgeted exact (only for the e and 1−α sweeps)
}

// fig8Datasets: the paper sweeps DBLP and Twitter; we use their analogs
// (DBLP via projection, Twitter homogeneous).
func fig8Datasets(cfg Config) (map[string]*graph.Graph, map[string][]graph.NodeID, error) {
	graphs := map[string]*graph.Graph{}
	queries := map[string][]graph.NodeID{}
	dblp, err := dataset.Heterogeneous("dblp", cfg.Scale)
	if err != nil {
		return nil, nil, err
	}
	proj, err := dblp.Het.Project(dblp.Path)
	if err != nil {
		return nil, nil, err
	}
	graphs["dblp"] = proj.Graph
	for _, hq := range dblp.QueryTargets(cfg.Queries, cfg.K, cfg.Seed) {
		queries["dblp"] = append(queries["dblp"], proj.FromHet[hq])
	}
	tw, err := dataset.Homogeneous("twitter", cfg.Scale)
	if err != nil {
		return nil, nil, err
	}
	graphs["twitter"] = tw.Graph
	queries["twitter"] = tw.QueryNodes(cfg.Queries, cfg.K, cfg.Seed)
	return graphs, queries, nil
}

// Fig8 sweeps λ, ϵ, 1−β, e, 1−α and k as in Figure 8, reporting efficiency
// (time) and effectiveness (δ, and relative error for the accuracy sweeps).
func Fig8(cfg Config, w io.Writer) ([]SweepPoint, error) {
	graphs, queries, err := fig8Datasets(cfg)
	if err != nil {
		return nil, err
	}
	sweeps := []struct {
		param  string
		values []float64
		apply  func(*sea.Options, float64)
	}{
		{"lambda", []float64{0.1, 0.2, 0.4, 0.6, 0.8}, func(o *sea.Options, x float64) { o.Lambda = x }},
		{"eps", []float64{0.01, 0.02, 0.03, 0.04, 0.05}, func(o *sea.Options, x float64) { o.Eps = x }},
		{"1-beta", []float64{0.86, 0.90, 0.94, 0.98}, func(o *sea.Options, x float64) { o.Beta = 1 - x }},
		{"e", []float64{0.01, 0.02, 0.03, 0.04, 0.05}, func(o *sea.Options, x float64) { o.ErrorBound = x }},
		{"1-alpha", []float64{0.86, 0.90, 0.94, 0.98}, func(o *sea.Options, x float64) { o.Confidence = x }},
		{"k", []float64{4, 5, 6, 7, 8}, func(o *sea.Options, x float64) { o.K = int(x) }},
	}
	var points []SweepPoint
	for name, g := range graphs {
		m, err := attr.NewMetric(g, cfg.Gamma)
		if err != nil {
			return nil, err
		}
		dists := map[graph.NodeID][]float64{}
		exacts := map[graph.NodeID]float64{}
		for _, q := range queries[name] {
			dists[q] = m.QueryDist(q)
		}
		for _, sweep := range sweeps {
			for _, x := range sweep.values {
				pt := SweepPoint{Dataset: name, Param: sweep.param, X: x}
				n := 0
				needRef := sweep.param == "e" || sweep.param == "1-alpha"
				for _, q := range queries[name] {
					opts := cfg.seaOptions()
					sweep.apply(&opts, x)
					start := time.Now()
					res, err := sea.SearchWithDist(g, dists[q], q, opts)
					if err != nil {
						continue
					}
					pt.TimeMS += ms(time.Since(start))
					pt.Delta += res.Delta
					if needRef {
						ref, ok := exacts[q]
						if !ok {
							ex, err := exact.Search(g, q, cfg.K, dists[q], exact.Config{
								PruneDuplicates: true, PruneUnnecessary: true, PruneUnpromising: true,
								MaxStates: cfg.ExactBudget,
							})
							if err == nil || errors.Is(err, exact.ErrBudgetExhausted) {
								ref = ex.Delta
							} else {
								ref = math.NaN()
							}
							exacts[q] = ref
						}
						if !math.IsNaN(ref) && ref > 0 && opts.K == cfg.K {
							pt.RelErr += 100 * math.Abs(res.Delta-ref) / ref
						}
					}
					n++
				}
				if n > 0 {
					pt.TimeMS /= float64(n)
					pt.Delta /= float64(n)
					pt.RelErr /= float64(n)
				}
				points = append(points, pt)
			}
		}
	}
	t := &Table{
		Title:  "Figure 8: parameter sensitivity (dblp and twitter analogs)",
		Header: []string{"dataset", "param", "x", "time ms", "δ", "rel.err %"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			p.Dataset, p.Param, fmt.Sprintf("%.3g", p.X),
			fmtF(p.TimeMS), fmtF(p.Delta), fmtF(p.RelErr),
		})
	}
	t.Render(w)
	return points, nil
}

// Fig10Row is one γ point of Figure 10: the independent textual (Jaccard)
// and numerical (Manhattan) cohesiveness of SEA's community.
type Fig10Row struct {
	Dataset   string
	Gamma     float64
	Jaccard   float64
	Manhattan float64
}

// Fig10 sweeps the balance factor γ and reports the two independent
// attribute-distance components of the returned communities.
func Fig10(cfg Config, w io.Writer) ([]Fig10Row, error) {
	graphs, queries, err := fig8Datasets(cfg)
	if err != nil {
		return nil, err
	}
	gammas := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	var rows []Fig10Row
	for name, g := range graphs {
		for _, gamma := range gammas {
			m, err := attr.NewMetric(g, gamma)
			if err != nil {
				return nil, err
			}
			row := Fig10Row{Dataset: name, Gamma: gamma}
			n := 0
			for _, q := range queries[name] {
				res, err := sea.Search(g, m, q, cfg.seaOptions())
				if err != nil {
					continue
				}
				var jd, md float64
				cnt := 0
				for _, v := range res.Community {
					if v == q {
						continue
					}
					jd += m.Jaccard(v, q)
					md += m.Manhattan(v, q)
					cnt++
				}
				if cnt > 0 {
					row.Jaccard += jd / float64(cnt)
					row.Manhattan += md / float64(cnt)
					n++
				}
			}
			if n > 0 {
				row.Jaccard /= float64(n)
				row.Manhattan /= float64(n)
			}
			rows = append(rows, row)
		}
	}
	t := &Table{
		Title:  "Figure 10: effect of γ on independent attribute cohesiveness",
		Header: []string{"dataset", "γ", "Jaccard dist", "Manhattan dist"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Dataset, fmt.Sprintf("%.1f", r.Gamma), fmtF(r.Jaccard), fmtF(r.Manhattan),
		})
	}
	t.Render(w)
	return rows, nil
}
