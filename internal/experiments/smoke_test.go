package experiments

import (
	"testing"

	"repro/internal/dataset"
)

func quickFacebook(cfg Config) (*dataset.Generated, error) {
	return dataset.Homogeneous("facebook", cfg.Scale)
}

func TestTable2Smoke(t *testing.T) {
	rows, err := Table2(Quick(), quietOrVerbose(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 methods", len(rows))
	}
	for _, r := range rows {
		if r.TotalRank < 4 {
			t.Errorf("%s: total rank %d < 4", r.Method, r.TotalRank)
		}
	}
}

func TestTable3Smoke(t *testing.T) {
	rows, err := Table3(Quick(), quietOrVerbose(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 datasets", len(rows))
	}
	for _, r := range rows {
		if r.F1["SEA"] <= 0 || r.F1["SEA"] > 1 {
			t.Errorf("%s: SEA F1 = %v", r.Dataset, r.F1["SEA"])
		}
	}
}

func TestTable4Smoke(t *testing.T) {
	rows, err := Table4(Quick(), quietOrVerbose(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 4 configs × 2 datasets
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	// Prunings must reduce (or preserve) explored states per dataset.
	for ds := 0; ds < 2; ds++ {
		full := rows[ds*4+0].States
		none := rows[ds*4+3].States
		if full > none {
			t.Errorf("%s: P1+P2+P3 states %v > unpruned %v",
				rows[ds*4].Dataset, full, none)
		}
	}
}

func TestTable5Smoke(t *testing.T) {
	rows, err := Table5(Quick(), quietOrVerbose(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5*7 {
		t.Fatalf("rows = %d, want 35", len(rows))
	}
	// ACQ must fail on every query of the numerical-only analogs (the '-'
	// cells of the paper's Table V).
	for _, r := range rows {
		if r.Method == "ACQ-Core" && (r.Dataset == "dbpedia" || r.Dataset == "yago" || r.Dataset == "freebase") {
			if r.Fail == 0 {
				t.Errorf("%s/%s: expected failures on numerical-only dataset", r.Dataset, r.Method)
			}
		}
	}
}

func TestTable6Smoke(t *testing.T) {
	rows, err := Table6(Quick(), quietOrVerbose(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no case-study rounds")
	}
}

func TestFig5Smoke(t *testing.T) {
	res, err := Fig5(Quick(), quietOrVerbose(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestFig5dSmoke(t *testing.T) {
	rows, err := Fig5d(Quick(), quietOrVerbose(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
}

func TestFig6Smoke(t *testing.T) {
	rows, err := Fig6(Quick(), quietOrVerbose(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10 ego networks", len(rows))
	}
}

func TestFig7Smoke(t *testing.T) {
	rows, err := Fig7(Quick(), quietOrVerbose(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 4 bounds × 2 datasets
		t.Fatalf("rows = %d, want 8", len(rows))
	}
}

func TestFig8Smoke(t *testing.T) {
	cfg := Quick()
	cfg.Queries = 2
	pts, err := Fig8(cfg, quietOrVerbose(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no sweep points")
	}
}

func TestFig10Smoke(t *testing.T) {
	cfg := Quick()
	cfg.Queries = 2
	rows, err := Fig10(cfg, quietOrVerbose(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 6 gammas × 2 datasets
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	// γ=1 optimizes Jaccard: its Jaccard distance should not exceed γ=0's.
	byDataset := map[string]map[float64]Fig10Row{}
	for _, r := range rows {
		if byDataset[r.Dataset] == nil {
			byDataset[r.Dataset] = map[float64]Fig10Row{}
		}
		byDataset[r.Dataset][r.Gamma] = r
	}
	for ds, m := range byDataset {
		if m[1.0].Jaccard > m[0.0].Jaccard+0.15 {
			t.Errorf("%s: γ=1 Jaccard %v much worse than γ=0 %v", ds, m[1.0].Jaccard, m[0.0].Jaccard)
		}
	}
}
