package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/attr"
	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/sea"
)

// Table1Row is one dataset-statistics row of Table I.
type Table1Row struct {
	Name           string
	Nodes, Edges   int
	NTypes, ETypes int
	DMax           int
	DAvg           float64
	KMax           int32
	KAvg           float64
}

// Table1 generates every dataset analog and reports the Table-I statistics.
func Table1(cfg Config, w io.Writer) ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range dataset.HomogeneousNames {
		d, err := dataset.Homogeneous(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		kmax, kavg := kcore.MaxCoreness(d.Graph)
		rows = append(rows, Table1Row{
			Name: name, Nodes: d.Graph.NumNodes(), Edges: d.Graph.NumEdges(),
			NTypes: 1, ETypes: 1,
			DMax: d.Graph.MaxDegree(), DAvg: d.Graph.AvgDegree(),
			KMax: kmax, KAvg: kavg,
		})
	}
	for _, name := range dataset.HetNames {
		d, err := dataset.Heterogeneous(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		proj, err := d.Het.Project(d.Path)
		if err != nil {
			return nil, err
		}
		kmax, kavg := kcore.MaxCoreness(proj.Graph)
		maxDeg, sumDeg := 0, 0
		for v := 0; v < d.Het.NumNodes(); v++ {
			ns, _ := d.Het.Neighbors(graph.NodeID(v))
			if len(ns) > maxDeg {
				maxDeg = len(ns)
			}
			sumDeg += len(ns)
		}
		rows = append(rows, Table1Row{
			Name: name, Nodes: d.Het.NumNodes(), Edges: d.Het.NumEdges(),
			NTypes: d.Het.NumNodeTypes(), ETypes: d.Het.NumEdgeTypes(),
			DMax: maxDeg, DAvg: float64(sumDeg) / float64(d.Het.NumNodes()),
			KMax: kmax, KAvg: kavg,
		})
	}
	t := &Table{
		Title:   "Table I: dataset statistics (synthetic analogs)",
		Header:  []string{"dataset", "#nodes", "#edges", "#n-types", "#e-types", "dmax", "davg", "kmax", "kavg"},
		Caption: "kmax/kavg for heterogeneous analogs are over the meta-path projection.",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Name, fmt.Sprint(r.Nodes), fmt.Sprint(r.Edges),
			fmt.Sprint(r.NTypes), fmt.Sprint(r.ETypes),
			fmt.Sprint(r.DMax), fmt.Sprintf("%.2f", r.DAvg),
			fmt.Sprint(r.KMax), fmt.Sprintf("%.2f", r.KAvg),
		})
	}
	t.Render(w)
	return rows, nil
}

// Table2Row scores one method under all four attribute-cohesiveness metrics
// of Table II, with per-metric ranks and the total rank.
type Table2Row struct {
	Method    string
	MinMax    float64 // VAC's objective (lower better)
	Coverage  float64 // ATC's objective (higher better)
	Shared    float64 // ACQ's objective, normalized per node (higher better)
	Delta     float64 // ours (lower better)
	Ranks     [4]int
	TotalRank int
}

// Table2 evaluates every method's community under every metric on the
// Facebook analog.
func Table2(cfg Config, w io.Writer) ([]Table2Row, error) {
	d, err := dataset.Homogeneous("facebook", cfg.Scale)
	if err != nil {
		return nil, err
	}
	m, err := attr.NewMetric(d.Graph, cfg.Gamma)
	if err != nil {
		return nil, err
	}
	names, fns := cfg.homogeneousMethods(true)
	queries := d.QueryNodes(cfg.Queries, cfg.K, cfg.Seed)
	rows := make([]Table2Row, len(names))
	counts := make([]int, len(names))
	for i := range rows {
		rows[i].Method = names[i]
	}
	for _, q := range queries {
		dist := m.QueryDist(q)
		qAttrs := d.Graph.TextAttrs(q)
		for i, fn := range fns {
			members, err := fn(d.Graph, m, dist, q)
			if err != nil || members == nil {
				continue
			}
			counts[i]++
			rows[i].MinMax += m.MaxPairwise(members)
			rows[i].Coverage += baselines.CoverageScore(d.Graph, q, members)
			shared := 0
			for _, v := range members {
				if v != q {
					shared += attr.SharedTokens(d.Graph.TextAttrs(v), qAttrs)
				}
			}
			if len(members) > 1 {
				rows[i].Shared += float64(shared) / float64(len(members)-1) / float64(maxInt(1, len(qAttrs)))
			}
			rows[i].Delta += attr.Delta(dist, members, q)
		}
	}
	minmax := make([]float64, len(rows))
	cover := make([]float64, len(rows))
	sharedV := make([]float64, len(rows))
	deltas := make([]float64, len(rows))
	for i := range rows {
		if counts[i] > 0 {
			rows[i].MinMax /= float64(counts[i])
			rows[i].Coverage /= float64(counts[i])
			rows[i].Shared /= float64(counts[i])
			rows[i].Delta /= float64(counts[i])
		}
		minmax[i], cover[i], sharedV[i], deltas[i] = rows[i].MinMax, rows[i].Coverage, rows[i].Shared, rows[i].Delta
	}
	r1 := rank(minmax, true)
	r2 := rank(cover, false)
	r3 := rank(sharedV, false)
	r4 := rank(deltas, true)
	t := &Table{
		Title:  "Table II: cross-metric attribute cohesiveness (facebook analog)",
		Header: []string{"method", "min-max(VAC)", "coverage(ATC)", "#shared(ACQ)", "δ(ours)", "total rank"},
	}
	for i := range rows {
		rows[i].Ranks = [4]int{r1[i], r2[i], r3[i], r4[i]}
		rows[i].TotalRank = r1[i] + r2[i] + r3[i] + r4[i]
		t.Rows = append(t.Rows, []string{
			rows[i].Method,
			fmt.Sprintf("%s(%d)", fmtF(rows[i].MinMax), r1[i]),
			fmt.Sprintf("%s(%d)", fmtF(rows[i].Coverage), r2[i]),
			fmt.Sprintf("%s(%d)", fmtF(rows[i].Shared), r3[i]),
			fmt.Sprintf("%s(%d)", fmtF(rows[i].Delta), r4[i]),
			fmt.Sprint(rows[i].TotalRank),
		})
	}
	t.Render(w)
	return rows, nil
}

// Table3Row is one dataset's F1 column of Table III.
type Table3Row struct {
	Dataset string
	F1      map[string]float64 // method → mean F1
}

// table3Datasets are the ground-truth datasets of Table III.
var table3Datasets = []string{"facebook", "livejournal", "orkut", "amazon"}

// Table3 computes F1 against the planted ground-truth communities.
func Table3(cfg Config, w io.Writer) ([]Table3Row, error) {
	methods := []string{"SEA", "Exact", "LocATC-Core", "ACQ-Core", "VAC-Core"}
	var rows []Table3Row
	for _, name := range table3Datasets {
		d, err := dataset.Homogeneous(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		row, err := f1ForDataset(cfg, d, methods)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	t := &Table{
		Title:  "Table III: F1-score w.r.t. planted ground-truth communities",
		Header: append([]string{"method"}, table3Datasets...),
	}
	for _, method := range methods {
		cells := []string{method}
		for _, row := range rows {
			cells = append(cells, fmtF(row.F1[method]))
		}
		t.Rows = append(t.Rows, cells)
	}
	t.Render(w)
	return rows, nil
}

// f1ForDataset runs the method lineup and scores each against ground truth.
func f1ForDataset(cfg Config, d *dataset.Generated, methods []string) (Table3Row, error) {
	m, err := attr.NewMetric(d.Graph, cfg.Gamma)
	if err != nil {
		return Table3Row{}, err
	}
	names, fns := cfg.homogeneousMethods(false)
	row := Table3Row{Dataset: d.Spec.Name, F1: map[string]float64{}}
	counts := map[string]int{}
	for _, q := range d.QueryNodes(cfg.Queries, cfg.K, cfg.Seed) {
		dist := m.QueryDist(q)
		truth := d.GroundTruth(q)
		for i, fn := range fns {
			if !contains(methods, names[i]) {
				continue
			}
			members, err := fn(d.Graph, m, dist, q)
			if err != nil || members == nil {
				continue
			}
			row.F1[names[i]] += F1(members, truth)
			counts[names[i]]++
		}
	}
	for k, c := range counts {
		if c > 0 {
			row.F1[k] /= float64(c)
		}
	}
	return row, nil
}

func contains(s []string, x string) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Table4Row is one pruning-configuration row of Table IV.
type Table4Row struct {
	Config  string
	Dataset string
	TimeMS  float64
	States  float64 // mean states explored
}

// Table4 runs the exact-search pruning ablation on the two smallest
// homogeneous analogs (the paper uses four datasets; the unpruned
// configuration is bounded by the state budget as discussed in DESIGN.md).
func Table4(cfg Config, w io.Writer) ([]Table4Row, error) {
	configs := []struct {
		name string
		c    exact.Config
	}{
		{"Exact (P1+P2+P3)", exact.Config{PruneDuplicates: true, PruneUnnecessary: true, PruneUnpromising: true, MaxStates: cfg.ExactBudget}},
		{"Exact\\P3 (P1+P2)", exact.Config{PruneDuplicates: true, PruneUnnecessary: true, MaxStates: cfg.ExactBudget}},
		{"Exact\\P3+P2 (P1)", exact.Config{PruneDuplicates: true, MaxStates: cfg.ExactBudget}},
		{"Exact w/o P", exact.Config{MaxStates: cfg.ExactBudget}},
	}
	var rows []Table4Row
	for _, name := range []string{"facebook", "github"} {
		d, err := dataset.Homogeneous(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		m, err := attr.NewMetric(d.Graph, cfg.Gamma)
		if err != nil {
			return nil, err
		}
		queries := d.QueryNodes(cfg.Queries, cfg.K, cfg.Seed)
		for _, c := range configs {
			row := Table4Row{Config: c.name, Dataset: name}
			n := 0
			for _, q := range queries {
				dist := m.QueryDist(q)
				start := time.Now()
				res, err := exact.Search(d.Graph, q, cfg.K, dist, c.c)
				if err != nil && !errors.Is(err, exact.ErrBudgetExhausted) {
					continue
				}
				row.TimeMS += ms(time.Since(start))
				row.States += float64(res.Stats.States)
				n++
			}
			if n > 0 {
				row.TimeMS /= float64(n)
				row.States /= float64(n)
			}
			rows = append(rows, row)
		}
	}
	t := &Table{
		Title:   "Table IV: effect of pruning strategies on Exact",
		Header:  []string{"config", "dataset", "time ms", "#states"},
		Caption: fmt.Sprintf("state budget %d per query; unpruned configs saturate it", cfg.ExactBudget),
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Config, r.Dataset, fmtF(r.TimeMS), fmt.Sprintf("%.0f", r.States)})
	}
	t.Render(w)
	return rows, nil
}

// Table6Row is one round of the SEA case study (Table VI).
type Table6Row struct {
	SizeLo, SizeHi int
	Round          int
	Delta          float64
	MoE            float64
	DeltaS         int
	TimeMS         float64
}

// Table6 reproduces the case study: size-bounded SEA on the IMDB analog's
// projection, reporting the round-by-round refinement trace.
func Table6(cfg Config, w io.Writer) ([]Table6Row, error) {
	d, err := dataset.Heterogeneous("imdb", cfg.Scale)
	if err != nil {
		return nil, err
	}
	proj, err := d.Het.Project(d.Path)
	if err != nil {
		return nil, err
	}
	m, err := attr.NewMetric(proj.Graph, cfg.Gamma)
	if err != nil {
		return nil, err
	}
	hetQ := d.QueryTargets(1, cfg.K, cfg.Seed)[0]
	q := proj.FromHet[hetQ]
	var rows []Table6Row
	for _, bound := range [][2]int{{10, 30}, {30, 50}} {
		opts := cfg.seaOptions()
		opts.SizeLo, opts.SizeHi = bound[0], bound[1]
		res, err := sea.Search(proj.Graph, m, q, opts)
		if errors.Is(err, sea.ErrNoCommunity) {
			continue
		}
		if err != nil {
			return nil, err
		}
		for _, r := range res.Rounds {
			rows = append(rows, Table6Row{
				SizeLo: bound[0], SizeHi: bound[1],
				Round: r.Round, Delta: r.Delta, MoE: r.MoE,
				DeltaS: r.DeltaS, TimeMS: ms(r.Time),
			})
		}
	}
	t := &Table{
		Title:  "Table VI: case study — SEA round-by-round (imdb analog)",
		Header: []string{"size bound", "round", "δ*", "MoE ε", "ΔS", "time ms"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("[%d,%d]", r.SizeLo, r.SizeHi),
			fmt.Sprint(r.Round), fmtF(r.Delta), fmtF(r.MoE),
			fmt.Sprint(r.DeltaS), fmtF(r.TimeMS),
		})
	}
	t.Render(w)
	return rows, nil
}
