// Package faults is a deterministic, seed-driven fault-injection layer for
// exercising the serving stack's failure paths. Production code marks the
// places where the outside world can fail — a journal fsync, a snapshot
// write, a replication stream, a shard call — as named *sites*; a test (or a
// chaos run, via the SEAFAULTS environment variable) arms a subset of those
// sites with a spec saying how and how often they should fail. Disarmed, a
// site costs one atomic load, so the hooks stay compiled into release
// builds and chaos runs exercise the exact binaries that serve traffic.
//
// # Spec format
//
// A spec string arms one or more sites, separated by ';':
//
//	site=field:value[,field:value...][;site2=...]
//
// Fields (all optional; a bare "site=" fires always, forever):
//
//	prob:P     fire with probability P in [0,1] (deterministic per seed)
//	count:N    fire at most N times, then disarm (default: unlimited)
//	after:N    let the first N reaches pass untouched before arming
//	delay:D    sleep D (Go duration) at the site before continuing
//	err:NAME   error to inject: enospc, eio, closed, reset, or any literal
//	           string (wrapped in ErrInjected); default "injected"
//	partial    for write sites: let roughly half the payload through before
//	           failing, producing a torn write rather than a clean error
//
// A delay-only spec (delay without err/partial) slows the site down but lets
// it succeed — the tool for latency and timeout testing. Examples:
//
//	SEAFAULTS='journal.fsync=count:1,err:eio'
//	SEAFAULTS='replicate.stream=count:1,partial;journal.append=prob:0.1,err:enospc'
//	SEAFAULTS='engine.search=delay:50ms'
//
// # Determinism
//
// Probabilistic sites draw from a per-site PRNG seeded by (global seed,
// site name), so a run with the same seed and the same sequence of reaches
// fires identically. Count/after sites are exact regardless of seed.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected error, so tests can
// assert an observed failure came from the harness and not a real fault:
// errors.Is(err, faults.ErrInjected).
var ErrInjected = errors.New("fault injected")

// Spec describes how one armed site misbehaves. The zero value (beyond
// Site) fires always, forever, with the default injected error.
type Spec struct {
	Site    string        // injection-point name, e.g. "journal.fsync"
	Prob    float64       // fire probability; 0 means "always" (unset)
	Count   int64         // max fires before the site disarms; 0 = unlimited
	After   int64         // reaches to let pass before arming
	Delay   time.Duration // sleep before continuing (even on non-fire passes when DelayOnly)
	Err     string        // error name: enospc, eio, closed, reset, or literal
	Partial bool          // write sites: torn write (about half the bytes land)
}

// DelayOnly reports whether the spec slows the site without failing it.
func (s Spec) DelayOnly() bool {
	return s.Delay > 0 && s.Err == "" && !s.Partial
}

// Error materializes the spec's injected error, always wrapping ErrInjected.
func (s Spec) Error() error {
	name := s.Err
	if name == "" {
		name = "injected"
	}
	switch name {
	case "enospc":
		return fmt.Errorf("%w: %s: %w", ErrInjected, s.Site, syscall.ENOSPC)
	case "eio":
		return fmt.Errorf("%w: %s: %w", ErrInjected, s.Site, syscall.EIO)
	case "closed":
		return fmt.Errorf("%w: %s: %w", ErrInjected, s.Site, syscall.EPIPE)
	case "reset":
		return fmt.Errorf("%w: %s: %w", ErrInjected, s.Site, syscall.ECONNRESET)
	default:
		return fmt.Errorf("%w: %s: %s", ErrInjected, s.Site, name)
	}
}

// site is one armed injection point's live state.
type site struct {
	spec    Spec
	mu      sync.Mutex
	rng     *rand.Rand
	reaches int64 // total times the site was reached
	fired   int64 // times it injected
}

// fire decides (under the site lock, so counters and the PRNG stay
// consistent under concurrent reaches) whether this reach injects.
func (s *site) fire() (Spec, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reaches++
	if s.reaches <= s.spec.After {
		return Spec{}, false
	}
	if s.spec.Count > 0 && s.fired >= s.spec.Count {
		return Spec{}, false
	}
	if s.spec.Prob > 0 && s.rng.Float64() >= s.spec.Prob {
		return Spec{}, false
	}
	s.fired++
	return s.spec, true
}

// registry is the process-wide armed-site table. enabled is the fast path:
// production reaches pay one atomic load when nothing is armed.
var (
	enabled atomic.Bool
	regMu   sync.RWMutex
	reg     map[string]*site
)

// Enable arms the given specs with a deterministic seed, replacing any
// previously armed set. An empty spec list disables injection entirely.
func Enable(seed int64, specs ...Spec) {
	m := make(map[string]*site, len(specs))
	for _, sp := range specs {
		h := fnv.New64a()
		io.WriteString(h, sp.Site)
		m[sp.Site] = &site{
			spec: sp,
			rng:  rand.New(rand.NewSource(seed ^ int64(h.Sum64()))),
		}
	}
	regMu.Lock()
	reg = m
	regMu.Unlock()
	enabled.Store(len(m) > 0)
}

// Disable disarms every site. Idempotent; safe to defer from tests.
func Disable() { Enable(0) }

// Setup parses a spec string (the SEAFAULTS format) and arms it. It is the
// one-call entry point for main(): Setup(os.Getenv("SEAFAULTS"), seed).
// An empty spec string disables injection and returns nil.
func Setup(spec string, seed int64) error {
	specs, err := Parse(spec)
	if err != nil {
		return err
	}
	Enable(seed, specs...)
	return nil
}

// Parse parses the SEAFAULTS spec format (see the package comment). An
// empty string parses to no specs.
func Parse(s string) ([]Spec, error) {
	var specs []Spec
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("faults: bad spec %q: want site=field:value,...", part)
		}
		sp := Spec{Site: name}
		for _, field := range strings.Split(rest, ",") {
			field = strings.TrimSpace(field)
			if field == "" {
				continue
			}
			key, val, _ := strings.Cut(field, ":")
			switch key {
			case "prob":
				p, err := strconv.ParseFloat(val, 64)
				if err != nil || p < 0 || p > 1 {
					return nil, fmt.Errorf("faults: %s: bad prob %q", name, val)
				}
				sp.Prob = p
			case "count":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("faults: %s: bad count %q", name, val)
				}
				sp.Count = n
			case "after":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("faults: %s: bad after %q", name, val)
				}
				sp.After = n
			case "delay":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("faults: %s: bad delay %q", name, val)
				}
				sp.Delay = d
			case "err":
				if val == "" {
					return nil, fmt.Errorf("faults: %s: empty err", name)
				}
				sp.Err = val
			case "partial":
				sp.Partial = true
			default:
				return nil, fmt.Errorf("faults: %s: unknown field %q", name, key)
			}
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// lookup returns the armed site for name, nil when disarmed.
func lookup(name string) *site {
	if !enabled.Load() {
		return nil
	}
	regMu.RLock()
	s := reg[name]
	regMu.RUnlock()
	return s
}

// Check is the plain injection hook: call it where an error can be
// injected. It returns nil when the site is disarmed or this reach does not
// fire; otherwise it sleeps the spec's delay (if any) and returns the
// injected error. A delay-only spec sleeps and returns nil.
func Check(name string) error {
	s := lookup(name)
	if s == nil {
		return nil
	}
	sp, hit := s.fire()
	if !hit {
		return nil
	}
	if sp.Delay > 0 {
		time.Sleep(sp.Delay)
	}
	if sp.DelayOnly() {
		return nil
	}
	return sp.Error()
}

// Wrap decorates a writer with the site's write faults: when the site
// fires, the faulty write lets about half its bytes through first when the
// spec says partial (a torn write), then fails with the injected error.
// Disarmed, it returns w unchanged — zero wrapping cost.
func Wrap(name string, w io.Writer) io.Writer {
	if s := lookup(name); s != nil {
		return &faultWriter{name: name, w: w}
	}
	return w
}

type faultWriter struct {
	name   string
	w      io.Writer
	failed error // once failed, every later write fails the same way
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	if fw.failed != nil {
		return 0, fw.failed
	}
	s := lookup(fw.name)
	if s == nil {
		return fw.w.Write(p)
	}
	sp, hit := s.fire()
	if !hit {
		return fw.w.Write(p)
	}
	if sp.Delay > 0 {
		time.Sleep(sp.Delay)
	}
	if sp.DelayOnly() {
		return fw.w.Write(p)
	}
	fw.failed = sp.Error()
	if sp.Partial && len(p) > 1 {
		n, err := fw.w.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fw.failed
	}
	return 0, fw.failed
}

// Transport decorates an http.RoundTripper with the site's faults: a firing
// reach can delay the request, fail it outright before it is sent, or — with
// partial — let the response through but sever its body mid-read, the shape
// of a connection dropped during a long transfer. Disarmed, rt is returned
// unchanged.
func Transport(name string, rt http.RoundTripper) http.RoundTripper {
	if rt == nil {
		rt = http.DefaultTransport
	}
	return &faultTransport{name: name, rt: rt}
}

type faultTransport struct {
	name string
	rt   http.RoundTripper
}

func (ft *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	s := lookup(ft.name)
	if s == nil {
		return ft.rt.RoundTrip(req)
	}
	sp, hit := s.fire()
	if !hit {
		return ft.rt.RoundTrip(req)
	}
	if sp.Delay > 0 {
		select {
		case <-time.After(sp.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if sp.DelayOnly() {
		return ft.rt.RoundTrip(req)
	}
	if !sp.Partial {
		return nil, sp.Error()
	}
	resp, err := ft.rt.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	resp.Body = &severedBody{rc: resp.Body, remain: 1 << 12, err: sp.Error()}
	return resp, nil
}

// severedBody reads through up to remain bytes, then fails — a response
// whose connection died mid-body.
type severedBody struct {
	rc     io.ReadCloser
	remain int
	err    error
}

func (sb *severedBody) Read(p []byte) (int, error) {
	if sb.remain <= 0 {
		return 0, sb.err
	}
	if len(p) > sb.remain {
		p = p[:sb.remain]
	}
	n, err := sb.rc.Read(p)
	sb.remain -= n
	if err == io.EOF {
		return n, io.EOF // body shorter than the sever point: pass through
	}
	if sb.remain <= 0 && err == nil {
		err = sb.err
	}
	return n, err
}

func (sb *severedBody) Close() error { return sb.rc.Close() }

// SiteStat is one armed site's counters, for diagnostics and tests.
type SiteStat struct {
	Site    string `json:"site"`
	Reaches int64  `json:"reaches"`
	Fired   int64  `json:"fired"`
}

// Stats returns the armed sites' reach/fire counters, sorted by site name.
// Empty when injection is disabled.
func Stats() []SiteStat {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]SiteStat, 0, len(reg))
	for name, s := range reg {
		s.mu.Lock()
		out = append(out, SiteStat{Site: name, Reaches: s.reaches, Fired: s.fired})
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}
