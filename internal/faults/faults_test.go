package faults

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParse(t *testing.T) {
	specs, err := Parse("journal.fsync=count:1,err:eio; replicate.stream=prob:0.5,partial;engine.search=delay:10ms,after:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d specs, want 3", len(specs))
	}
	if s := specs[0]; s.Site != "journal.fsync" || s.Count != 1 || s.Err != "eio" {
		t.Errorf("spec 0 = %+v", s)
	}
	if s := specs[1]; s.Site != "replicate.stream" || s.Prob != 0.5 || !s.Partial {
		t.Errorf("spec 1 = %+v", s)
	}
	if s := specs[2]; s.Site != "engine.search" || s.Delay != 10*time.Millisecond || s.After != 2 || !s.DelayOnly() {
		t.Errorf("spec 2 = %+v", s)
	}
	if specs, err := Parse(""); err != nil || len(specs) != 0 {
		t.Errorf("empty spec: %v, %v", specs, err)
	}
	for _, bad := range []string{"nosite", "x=prob:2", "x=count:-1", "x=delay:zzz", "x=bogus:1", "x=err:"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestCheckDisarmedIsNil(t *testing.T) {
	Disable()
	if err := Check("anything"); err != nil {
		t.Fatalf("disarmed Check = %v", err)
	}
}

func TestCountAndAfter(t *testing.T) {
	defer Disable()
	Enable(1, Spec{Site: "s", After: 2, Count: 3, Err: "enospc"})
	var fails int
	for i := 0; i < 10; i++ {
		if err := Check("s"); err != nil {
			if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("wrong error: %v", err)
			}
			if i < 2 {
				t.Fatalf("fired during the after window at reach %d", i)
			}
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("fired %d times, want 3", fails)
	}
	st := Stats()
	if len(st) != 1 || st[0].Reaches != 10 || st[0].Fired != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProbDeterministic(t *testing.T) {
	defer Disable()
	run := func(seed int64) []bool {
		Enable(seed, Spec{Site: "p", Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = Check("p") != nil
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at reach %d", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		same = same && a[i] == c[i]
	}
	if same {
		t.Fatal("different seeds produced identical firing sequences")
	}
}

func TestWrapPartialWrite(t *testing.T) {
	defer Disable()
	Enable(1, Spec{Site: "w", Count: 1, Partial: true, Err: "eio"})
	var buf bytes.Buffer
	w := Wrap("w", &buf)
	payload := bytes.Repeat([]byte("x"), 100)
	n, err := w.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if n != 50 || buf.Len() != 50 {
		t.Fatalf("torn write let %d bytes through, want 50", buf.Len())
	}
	// A failed writer stays failed: later writes must not land after the tear.
	if _, err := w.Write(payload); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-failure write succeeded: %v", err)
	}
	if buf.Len() != 50 {
		t.Fatalf("bytes landed after the failure: %d", buf.Len())
	}
}

func TestWrapDisarmedPassthrough(t *testing.T) {
	Disable()
	var buf bytes.Buffer
	if w := Wrap("w", &buf); w != io.Writer(&buf) {
		t.Fatal("disarmed Wrap should return the writer unchanged")
	}
}

func TestTransportErrorAndSeveredBody(t *testing.T) {
	defer Disable()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(bytes.Repeat([]byte("y"), 1<<14))
	}))
	defer srv.Close()

	Enable(1, Spec{Site: "t", Count: 1, Err: "reset"})
	hc := &http.Client{Transport: Transport("t", nil)}
	if _, err := hc.Get(srv.URL); err == nil || !strings.Contains(err.Error(), "fault injected") {
		t.Fatalf("want injected transport error, got %v", err)
	}
	// Disarmed reach passes through.
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	Enable(1, Spec{Site: "t", Count: 1, Partial: true})
	resp, err = hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want severed body, got %v", err)
	}
}

func TestSetupEnvRoundTrip(t *testing.T) {
	defer Disable()
	if err := Setup("x=count:1", 3); err != nil {
		t.Fatal(err)
	}
	if err := Check("x"); err == nil {
		t.Fatal("armed site did not fire")
	}
	if err := Setup("", 0); err != nil {
		t.Fatal(err)
	}
	if err := Check("x"); err != nil {
		t.Fatalf("Setup(\"\") should disable: %v", err)
	}
}
