package graph

// This file defines the adjacency-access interfaces every consumer of graph
// topology goes through. Historically the algorithms reached straight into
// the exported CSR slices of a heap *Graph; the interfaces decouple them
// from the backing so the same code serves a heap CSR, a zero-copy mmap'd
// snapshot (whose slices alias the page cache), a delta+varint compressed
// adjacency (internal/store.PackedGraph), or a mutation Overlay.
//
// The central contract is NeighborsInto: neighbor-range iteration into
// caller scratch. A backing that already holds a materialized neighbor list
// (heap or mapped CSR) returns an alias and never touches the scratch, so
// the hot paths stay zero-copy and zero-alloc; a backing that must decode
// (compressed lists, overlay merges) decodes into *buf, growing it as
// needed. Callers that hold two neighbor lists at once must pass two
// distinct buffers.

// Adjacency is read-only access to graph structure. All backings — *Graph,
// *Overlay, the snapshot store's mapped and compressed graphs — implement
// it. Implementations must be safe for concurrent readers as long as each
// goroutine uses its own scratch buffers.
type Adjacency interface {
	// NumNodes returns the number of nodes; IDs are dense in [0, NumNodes).
	NumNodes() int
	// NumEdges returns the number of undirected edges.
	NumEdges() int
	// Degree returns the degree of v in O(1).
	Degree(v NodeID) int
	// NeighborsInto returns v's sorted neighbor list. Backings that hold the
	// list contiguously return an alias into their storage and ignore buf;
	// backings that must decode write into *buf (growing it, persisting the
	// growth for reuse) and return the decoded prefix. In both cases the
	// result is read-only and valid only until the next NeighborsInto call
	// with the same buf. Callers must not store the result back into the
	// buffer variable they passed.
	NeighborsInto(buf *[]NodeID, v NodeID) []NodeID
	// HasEdge reports whether the edge (u,v) exists.
	HasEdge(u, v NodeID) bool
}

// CSR extends Adjacency with the positional contract of a compressed sparse
// row layout: every directed arc (v,u) has a dense position
// ListOffset(v)+i where i is u's rank in v's neighbor list, and positions
// cover [0, 2·NumEdges) exactly. The truss edge index relies on it to map
// adjacency positions to edge IDs. An Overlay has no stable positions and
// deliberately does not implement CSR.
type CSR interface {
	Adjacency
	// ListOffset returns the CSR element offset of v's neighbor list, i.e.
	// the position of its first directed arc.
	ListOffset(v NodeID) int32
}

// AttrSource is read-only access to node attribute columns and the token
// dictionary resolving textual attribute IDs.
type AttrSource interface {
	// NumDim returns the width of the numerical attribute vector.
	NumDim() int
	// TextAttrs returns v's sorted textual token IDs. The slice aliases
	// backing storage and must not be modified.
	TextAttrs(v NodeID) []int32
	// NumAttrs returns v's numerical attribute vector (nil when NumDim is
	// 0). The slice aliases backing storage and must not be modified.
	NumAttrs(v NodeID) []float64
	// Dict returns the token dictionary.
	Dict() *Dict
}

// Store is the full serving surface of an immutable graph backing:
// positional CSR structure plus attribute columns. The engine, catalog and
// query layers hold a Store; *Graph and the snapshot store's mapped and
// compressed backings implement it.
type Store interface {
	CSR
	AttrSource
}

// Compile-time interface checks for the in-package backings.
var (
	_ Store     = (*Graph)(nil)
	_ Adjacency = (*Overlay)(nil)
)

// NeighborsInto implements Adjacency. The heap CSR holds every list
// contiguously, so it returns an alias into internal storage and never
// touches buf — identical cost to Neighbors.
func (g *Graph) NeighborsInto(buf *[]NodeID, v NodeID) []NodeID {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// ListOffset implements CSR: the element offset of v's neighbor list.
func (g *Graph) ListOffset(v NodeID) int32 { return g.offsets[v] }

// NeighborsInto implements Adjacency for the overlay by merging the base
// list with the pending deltas into *buf. Untouched base-node lists are
// returned as aliases of the base backing without copying.
func (o *Overlay) NeighborsInto(buf *[]NodeID, v NodeID) []NodeID {
	if int(v) < o.base.NumNodes() && !o.Touched(v) {
		return o.base.NeighborsInto(buf, v)
	}
	*buf = o.AppendNeighbors((*buf)[:0], v)
	return *buf
}

// MaxDegreeOf returns the maximum degree of any node of a (0 when empty).
func MaxDegreeOf(a Adjacency) int {
	max := 0
	for v := 0; v < a.NumNodes(); v++ {
		if d := a.Degree(NodeID(v)); d > max {
			max = d
		}
	}
	return max
}

// CopyStore materializes s into a heap *Graph, decoding every neighbor list
// and copying every attribute row. A *Graph passes through unchanged (no
// copy). It is the compaction/export path for mapped and compressed
// backings: snapshot writing and overlay materialization always operate on
// a heap CSR.
func CopyStore(s Store) *Graph {
	if g, ok := s.(*Graph); ok {
		return g
	}
	n := s.NumNodes()
	offsets := make([]int32, n+1)
	adj := make([]NodeID, 0, 2*s.NumEdges())
	var scratch []NodeID
	for v := 0; v < n; v++ {
		adj = append(adj, s.NeighborsInto(&scratch, NodeID(v))...)
		offsets[v+1] = int32(len(adj))
	}
	textOff := make([]int32, n+1)
	text := []int32{}
	for v := 0; v < n; v++ {
		text = append(text, s.TextAttrs(NodeID(v))...)
		textOff[v+1] = int32(len(text))
	}
	dim := s.NumDim()
	num := make([]float64, n*dim)
	for v := 0; v < n; v++ {
		copy(num[v*dim:(v+1)*dim], s.NumAttrs(NodeID(v)))
	}
	return &Graph{
		offsets: offsets,
		adj:     adj,
		textOff: textOff,
		text:    text,
		numDim:  dim,
		num:     num,
		dict:    s.Dict(),
	}
}
