package graph

import "fmt"

// Dict interns textual attribute strings to dense int32 token IDs.
// It is not safe for concurrent writers; freeze it (stop interning) before
// sharing a graph across goroutines.
type Dict struct {
	byName map[string]int32
	names  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byName: make(map[string]int32)}
}

// Intern returns the token ID for s, assigning a fresh ID on first use.
func (d *Dict) Intern(s string) int32 {
	if id, ok := d.byName[s]; ok {
		return id
	}
	id := int32(len(d.names))
	d.byName[s] = id
	d.names = append(d.names, s)
	return id
}

// Lookup returns the token ID for s and whether it is known.
func (d *Dict) Lookup(s string) (int32, bool) {
	id, ok := d.byName[s]
	return id, ok
}

// Name returns the string for a token ID.
func (d *Dict) Name(id int32) string { return d.names[id] }

// Names returns a copy of the ID → string table, the serializable form of
// the dictionary (index i holds the name of token i).
func (d *Dict) Names() []string {
	return append([]string(nil), d.names...)
}

// NewDictFromNames rebuilds a dictionary from an ID → string table, the
// inverse of Names. Duplicate names are rejected: they would make Intern and
// Lookup disagree with the table.
func NewDictFromNames(names []string) (*Dict, error) {
	d := &Dict{byName: make(map[string]int32, len(names)), names: append([]string(nil), names...)}
	for i, s := range names {
		if prev, ok := d.byName[s]; ok {
			return nil, fmt.Errorf("graph: dict: duplicate name %q (tokens %d and %d)", s, prev, i)
		}
		d.byName[s] = int32(i)
	}
	return d, nil
}

// Len returns the number of interned tokens.
func (d *Dict) Len() int { return len(d.names) }
