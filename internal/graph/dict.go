package graph

// Dict interns textual attribute strings to dense int32 token IDs.
// It is not safe for concurrent writers; freeze it (stop interning) before
// sharing a graph across goroutines.
type Dict struct {
	byName map[string]int32
	names  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byName: make(map[string]int32)}
}

// Intern returns the token ID for s, assigning a fresh ID on first use.
func (d *Dict) Intern(s string) int32 {
	if id, ok := d.byName[s]; ok {
		return id
	}
	id := int32(len(d.names))
	d.byName[s] = id
	d.names = append(d.names, s)
	return id
}

// Lookup returns the token ID for s and whether it is known.
func (d *Dict) Lookup(s string) (int32, bool) {
	id, ok := d.byName[s]
	return id, ok
}

// Name returns the string for a token ID.
func (d *Dict) Name(id int32) string { return d.names[id] }

// Len returns the number of interned tokens.
func (d *Dict) Len() int { return len(d.names) }
