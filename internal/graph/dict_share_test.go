package graph

import "testing"

func TestSetDictSharesTokens(t *testing.T) {
	// Intern tokens in one dictionary, build a second graph reusing them.
	d := NewDict()
	crime := d.Intern("crime")
	drama := d.Intern("drama")

	b := NewBuilder(2, 0)
	b.SetDict(d)
	b.SetTextTokens(0, []int32{crime, drama})
	g := b.MustBuild()

	if g.Dict() != d {
		t.Fatal("dictionary not shared")
	}
	toks := g.TextAttrs(0)
	if len(toks) != 2 {
		t.Fatalf("attrs = %v", toks)
	}
	names := map[string]bool{}
	for _, tok := range toks {
		names[g.Dict().Name(tok)] = true
	}
	if !names["crime"] || !names["drama"] {
		t.Errorf("resolved names = %v", names)
	}
}
