package graph

import "fmt"

// Raw is the flat, serializable form of a Graph: the CSR arrays, the
// attribute columns and the dictionary names, exactly as a Graph stores them
// internally. It is the exchange shape between a Graph and the binary
// snapshot store (internal/store): Export flattens a Graph into a Raw and
// FromRaw validates one back into a ready-to-serve Graph with no re-sorting
// or re-indexing.
type Raw struct {
	// Offsets is the CSR offset array, len NumNodes+1, Offsets[0] == 0.
	Offsets []int32
	// Adj holds the concatenated sorted neighbor lists, len 2·NumEdges.
	Adj []NodeID
	// TextOff/Text hold the per-node sorted textual token IDs in the same
	// offset/payload layout; len(TextOff) == NumNodes+1.
	TextOff []int32
	Text    []int32
	// NumDim is the width of the numerical attribute vector; Num is row-major
	// with len NumNodes·NumDim.
	NumDim int
	Num    []float64
	// DictNames maps token ID → attribute string.
	DictNames []string
}

// Export flattens g into its Raw form. The returned slices alias g's internal
// storage (DictNames excepted, which is copied) and must not be modified.
func (g *Graph) Export() Raw {
	return Raw{
		Offsets:   g.offsets,
		Adj:       g.adj,
		TextOff:   g.textOff,
		Text:      g.text,
		NumDim:    g.numDim,
		Num:       g.num,
		DictNames: g.dict.Names(),
	}
}

// FromRaw validates r and adopts it as a Graph. Unlike Builder.Build it does
// not sort, deduplicate or symmetrize: r must already be in the canonical
// form Export produces, and FromRaw verifies that it is — offsets monotone,
// adjacency lists sorted, loop-free and symmetric, tokens sorted and within
// the dictionary, attribute rows the declared width. The slices are adopted,
// not copied; the caller must not modify them afterwards.
func FromRaw(r Raw) (*Graph, error) {
	if len(r.Offsets) < 1 {
		return nil, fmt.Errorf("graph: raw: empty offsets")
	}
	n := len(r.Offsets) - 1
	if err := checkOffsets("offsets", r.Offsets, len(r.Adj)); err != nil {
		return nil, err
	}
	if len(r.Adj)%2 != 0 {
		return nil, fmt.Errorf("graph: raw: odd directed edge count %d", len(r.Adj))
	}
	if len(r.TextOff) != n+1 {
		return nil, fmt.Errorf("graph: raw: len(TextOff) = %d, want %d", len(r.TextOff), n+1)
	}
	if err := checkOffsets("text offsets", r.TextOff, len(r.Text)); err != nil {
		return nil, err
	}
	if r.NumDim < 0 {
		return nil, fmt.Errorf("graph: raw: negative NumDim %d", r.NumDim)
	}
	if len(r.Num) != n*r.NumDim {
		return nil, fmt.Errorf("graph: raw: len(Num) = %d, want %d·%d", len(r.Num), n, r.NumDim)
	}
	dict, err := NewDictFromNames(r.DictNames)
	if err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		ns := r.Adj[r.Offsets[v]:r.Offsets[v+1]]
		for i, u := range ns {
			switch {
			case int(u) < 0 || int(u) >= n:
				return nil, fmt.Errorf("graph: raw: node %d: neighbor %d out of range [0,%d)", v, u, n)
			case u == NodeID(v):
				return nil, fmt.Errorf("graph: raw: node %d: self-loop", v)
			case i > 0 && u <= ns[i-1]:
				return nil, fmt.Errorf("graph: raw: node %d: neighbors not sorted/unique at %d", v, u)
			}
		}
		toks := r.Text[r.TextOff[v]:r.TextOff[v+1]]
		for i, id := range toks {
			switch {
			case int(id) < 0 || int(id) >= len(r.DictNames):
				return nil, fmt.Errorf("graph: raw: node %d: token %d outside dictionary [0,%d)", v, id, len(r.DictNames))
			case i > 0 && id <= toks[i-1]:
				return nil, fmt.Errorf("graph: raw: node %d: tokens not sorted/unique at %d", v, id)
			}
		}
	}
	g := &Graph{
		offsets: r.Offsets,
		adj:     r.Adj,
		textOff: r.TextOff,
		text:    r.Text,
		numDim:  r.NumDim,
		num:     r.Num,
		dict:    dict,
	}
	// Symmetry: every directed arc must have its reverse, checked in O(n+m).
	// Arcs (v,u) are visited in lexicographic order, so for each node u the
	// reverse arcs u→v arrive in increasing v — exactly u's sorted adjacency
	// order. A cursor per node consumes them; any mismatch is an arc whose
	// reverse is missing or out of place.
	cursor := make([]int32, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(NodeID(v)) {
			c := cursor[u]
			if int(r.Offsets[u])+int(c) >= int(r.Offsets[u+1]) || r.Adj[int(r.Offsets[u])+int(c)] != NodeID(v) {
				return nil, fmt.Errorf("graph: raw: edge (%d,%d) has no reverse arc", v, u)
			}
			cursor[u] = c + 1
		}
	}
	return g, nil
}

// FromRawTrusted adopts r as a Graph without the O(n+m) structural
// validation FromRaw performs — only the shape invariants that keep
// accessors memory-safe are checked (offset array lengths and bounds
// against the payloads). It exists for backings whose bytes were already
// validated when they were written, most importantly the mmap'd snapshot
// path, where re-walking every adjacency list on open would turn an O(1)
// boot into an O(n+m) one. The slices are adopted, not copied; callers
// wanting corruption detection must use FromRaw.
func FromRawTrusted(r Raw) (*Graph, error) {
	if len(r.Offsets) < 1 {
		return nil, fmt.Errorf("graph: raw: empty offsets")
	}
	n := len(r.Offsets) - 1
	if r.Offsets[0] != 0 || int(r.Offsets[n]) != len(r.Adj) {
		return nil, fmt.Errorf("graph: raw: offsets span [%d,%d], payload %d", r.Offsets[0], r.Offsets[n], len(r.Adj))
	}
	if len(r.TextOff) != n+1 {
		return nil, fmt.Errorf("graph: raw: len(TextOff) = %d, want %d", len(r.TextOff), n+1)
	}
	if r.TextOff[0] != 0 || int(r.TextOff[n]) != len(r.Text) {
		return nil, fmt.Errorf("graph: raw: text offsets span [%d,%d], payload %d", r.TextOff[0], r.TextOff[n], len(r.Text))
	}
	if r.NumDim < 0 || len(r.Num) != n*r.NumDim {
		return nil, fmt.Errorf("graph: raw: len(Num) = %d, want %d·%d", len(r.Num), n, r.NumDim)
	}
	dict, err := NewDictFromNames(r.DictNames)
	if err != nil {
		return nil, err
	}
	return &Graph{
		offsets: r.Offsets,
		adj:     r.Adj,
		textOff: r.TextOff,
		text:    r.Text,
		numDim:  r.NumDim,
		num:     r.Num,
		dict:    dict,
	}, nil
}

// Clone deep-copies every slice of r, detaching it from whatever storage
// the original aliased (a live Graph, an mmap'd snapshot about to be
// unmapped, a decode buffer). The copy-mode counterpart of the borrowing
// Export.
func (r Raw) Clone() Raw {
	return Raw{
		Offsets:   append([]int32(nil), r.Offsets...),
		Adj:       append([]NodeID(nil), r.Adj...),
		TextOff:   append([]int32(nil), r.TextOff...),
		Text:      append([]int32(nil), r.Text...),
		NumDim:    r.NumDim,
		Num:       append([]float64(nil), r.Num...),
		DictNames: append([]string(nil), r.DictNames...),
	}
}

// ExportCopy is Export in copy mode: the returned Raw owns its storage and
// stays valid independently of g.
func (g *Graph) ExportCopy() Raw { return g.Export().Clone() }

// checkOffsets verifies an offset array: starts at 0, nondecreasing, and
// ends exactly at the payload length.
func checkOffsets(what string, off []int32, payload int) error {
	if off[0] != 0 {
		return fmt.Errorf("graph: raw: %s[0] = %d, want 0", what, off[0])
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("graph: raw: %s decreasing at %d", what, i)
		}
	}
	if int(off[len(off)-1]) != payload {
		return fmt.Errorf("graph: raw: %s end %d, want payload length %d", what, off[len(off)-1], payload)
	}
	return nil
}
