// Package graph provides the attributed homogeneous graph substrate used by
// every community-search algorithm in this repository.
//
// A Graph is an immutable undirected graph in CSR (compressed sparse row)
// form. Each node carries a set of textual attributes (interned to integer
// token IDs through a Dict) and a fixed-width vector of numerical attributes.
// Graphs are assembled through a Builder and frozen with Build; the frozen
// form is safe for concurrent readers.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. IDs are dense in [0, NumNodes).
type NodeID = int32

// Graph is an immutable undirected attributed graph in CSR form.
type Graph struct {
	offsets []int32  // len = n+1
	adj     []NodeID // len = 2*m, neighbor lists sorted ascending

	// Textual attributes: token IDs per node, sorted ascending.
	textOff []int32
	text    []int32

	// Numerical attributes: NumDim values per node, row-major.
	numDim int
	num    []float64

	dict *Dict
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.offsets) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// NumDim returns the width of the numerical attribute vector.
func (g *Graph) NumDim() int { return g.numDim }

// Dict returns the token dictionary for textual attributes.
func (g *Graph) Dict() *Dict { return g.dict }

// Neighbors returns the sorted neighbor list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v NodeID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// HasEdge reports whether the edge (u,v) exists. O(log deg(u)).
func (g *Graph) HasEdge(u, v NodeID) bool {
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// TextAttrs returns the sorted token IDs of v's textual attributes.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) TextAttrs(v NodeID) []int32 {
	return g.text[g.textOff[v]:g.textOff[v+1]]
}

// NumAttrs returns v's numerical attribute vector.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) NumAttrs(v NodeID) []float64 {
	if g.numDim == 0 {
		return nil
	}
	return g.num[int(v)*g.numDim : (int(v)+1)*g.numDim]
}

// Offsets exposes the CSR offset array (len NumNodes+1). Read-only.
//
// Deprecated: raw slice access ties callers to the heap CSR backing. Use
// ListOffset (the positional CSR contract) and Degree/NeighborsInto, which
// every Store backing — heap, mapped, compressed — implements.
func (g *Graph) Offsets() []int32 { return g.offsets }

// MaxDegree returns the maximum degree in the graph (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(NodeID(v)); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average degree.
func (g *Graph) AvgDegree() float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	return float64(2*g.NumEdges()) / float64(n)
}

// Builder assembles a Graph. The zero value is not usable; call NewBuilder.
type Builder struct {
	n      int
	numDim int
	edges  [][2]NodeID
	text   [][]int32
	num    [][]float64
	dict   *Dict
}

// NewBuilder returns a Builder for a graph with n nodes and numDim numerical
// attribute dimensions per node.
func NewBuilder(n, numDim int) *Builder {
	return &Builder{
		n:      n,
		numDim: numDim,
		text:   make([][]int32, n),
		num:    make([][]float64, n),
		dict:   NewDict(),
	}
}

// NumNodes returns the number of nodes the builder was created with.
func (b *Builder) NumNodes() int { return b.n }

// Dict returns the builder's token dictionary.
func (b *Builder) Dict() *Dict { return b.dict }

// SetDict replaces the builder's token dictionary. Use it when token IDs
// passed to SetTextTokens were interned elsewhere (e.g. projecting a
// heterogeneous graph), so the built graph resolves them to the right names.
func (b *Builder) SetDict(d *Dict) { b.dict = d }

// AddEdge records an undirected edge between u and v. Self-loops and
// duplicate edges are dropped at Build time.
func (b *Builder) AddEdge(u, v NodeID) {
	b.edges = append(b.edges, [2]NodeID{u, v})
}

// SetTextAttrs sets v's textual attributes from strings, interning them in
// the builder's dictionary.
func (b *Builder) SetTextAttrs(v NodeID, attrs ...string) {
	ids := make([]int32, 0, len(attrs))
	for _, a := range attrs {
		ids = append(ids, b.dict.Intern(a))
	}
	b.SetTextTokens(v, ids)
}

// SetTextTokens sets v's textual attributes from pre-interned token IDs.
func (b *Builder) SetTextTokens(v NodeID, ids []int32) {
	sorted := append([]int32(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Deduplicate.
	out := sorted[:0]
	for i, id := range sorted {
		if i == 0 || id != sorted[i-1] {
			out = append(out, id)
		}
	}
	b.text[v] = out
}

// SetNumAttrs sets v's numerical attribute vector; len(vals) must equal the
// builder's numDim.
func (b *Builder) SetNumAttrs(v NodeID, vals ...float64) {
	if len(vals) != b.numDim {
		panic(fmt.Sprintf("graph: SetNumAttrs(%d): got %d values, want %d", v, len(vals), b.numDim))
	}
	b.num[v] = append([]float64(nil), vals...)
}

// Build freezes the builder into an immutable Graph. It validates edge
// endpoints, symmetrizes, deduplicates, and drops self-loops.
func (b *Builder) Build() (*Graph, error) {
	n := b.n
	deg := make([]int32, n)
	for _, e := range b.edges {
		u, v := e[0], e[1]
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
		if u == v {
			continue
		}
		deg[u]++
		deg[v]++
	}
	offsets := make([]int32, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i]
	}
	adj := make([]NodeID, offsets[n])
	fill := make([]int32, n)
	copy(fill, offsets[:n])
	for _, e := range b.edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		adj[fill[u]] = v
		fill[u]++
		adj[fill[v]] = u
		fill[v]++
	}
	// Sort and deduplicate each adjacency list, then recompact.
	newAdj := adj[:0]
	newOff := make([]int32, n+1)
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		ns := adj[lo:hi]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		start := len(newAdj)
		for i, u := range ns {
			if i > 0 && u == ns[i-1] {
				continue
			}
			newAdj = append(newAdj, u)
		}
		_ = start
		newOff[v+1] = int32(len(newAdj))
	}
	if len(newAdj)%2 != 0 {
		return nil, fmt.Errorf("graph: internal error: odd directed edge count %d", len(newAdj))
	}

	textOff := make([]int32, n+1)
	total := 0
	for v := 0; v < n; v++ {
		total += len(b.text[v])
		textOff[v+1] = int32(total)
	}
	text := make([]int32, 0, total)
	for v := 0; v < n; v++ {
		text = append(text, b.text[v]...)
	}

	num := make([]float64, n*b.numDim)
	for v := 0; v < n; v++ {
		if b.num[v] != nil {
			copy(num[v*b.numDim:], b.num[v])
		}
	}

	g := &Graph{
		offsets: newOff,
		adj:     append([]NodeID(nil), newAdj...),
		textOff: textOff,
		text:    text,
		numDim:  b.numDim,
		num:     num,
		dict:    b.dict,
	}
	return g, nil
}

// MustBuild is Build that panics on error, for tests and generators that
// construct edges from trusted indices.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
