package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildPath(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n, 0)
	for i := 0; i < n-1; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4, 2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(3, 3) // self loop
	b.SetTextAttrs(0, "movie", "crime", "drama")
	b.SetNumAttrs(0, 9.2, 1.6e6)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumNodes() != 4 {
		t.Errorf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3 (dup and self-loop dropped)", g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(3) != 0 {
		t.Errorf("degrees = %d,%d want 2,0", g.Degree(0), g.Degree(3))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 3) {
		t.Errorf("HasEdge wrong")
	}
	if got := len(g.TextAttrs(0)); got != 3 {
		t.Errorf("TextAttrs(0) len = %d, want 3", got)
	}
	if got := g.NumAttrs(0); got[0] != 9.2 || got[1] != 1.6e6 {
		t.Errorf("NumAttrs(0) = %v", got)
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2, 0)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted out-of-range edge")
	}
}

func TestTextAttrsDeduplicated(t *testing.T) {
	b := NewBuilder(1, 0)
	b.SetTextAttrs(0, "a", "b", "a", "a")
	g := b.MustBuild()
	if got := len(g.TextAttrs(0)); got != 2 {
		t.Errorf("deduplicated len = %d, want 2", got)
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.Intern("alpha")
	b := d.Intern("beta")
	if a == b {
		t.Fatal("distinct strings got same ID")
	}
	if again := d.Intern("alpha"); again != a {
		t.Errorf("re-intern changed ID: %d vs %d", again, a)
	}
	if d.Name(a) != "alpha" {
		t.Errorf("Name(%d) = %q", a, d.Name(a))
	}
	if id, ok := d.Lookup("beta"); !ok || id != b {
		t.Errorf("Lookup(beta) = %d,%v", id, ok)
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Error("Lookup(gamma) found missing token")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestBFSDistances(t *testing.T) {
	g := buildPath(t, 5)
	want := []int{0, 1, 2, 3, 4}
	g.BFS(0, func(v NodeID, dist int) bool {
		if dist != want[v] {
			t.Errorf("BFS dist of %d = %d, want %d", v, dist, want[v])
		}
		return true
	})
}

func TestBFSEarlyStop(t *testing.T) {
	g := buildPath(t, 10)
	visited := 0
	g.BFS(0, func(NodeID, int) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Errorf("visited %d nodes, want 3", visited)
	}
}

func TestComponentWithFilter(t *testing.T) {
	g := buildPath(t, 6)
	comp := g.Component(0, func(v NodeID) bool { return v != 3 })
	if len(comp) != 3 {
		t.Errorf("component = %v, want {0,1,2}", comp)
	}
	if comp = g.Component(0, func(v NodeID) bool { return v == 5 }); comp != nil {
		t.Errorf("component of filtered-out src = %v, want nil", comp)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6, 0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g := b.MustBuild()
	labels, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[3] != labels[4] {
		t.Errorf("labels = %v", labels)
	}
	if labels[0] == labels[2] || labels[5] == labels[0] || labels[5] == labels[2] {
		t.Errorf("labels = %v", labels)
	}
}

func TestInducedSubgraph(t *testing.T) {
	b := NewBuilder(5, 1)
	edges := [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	for v := 0; v < 5; v++ {
		b.SetNumAttrs(NodeID(v), float64(v))
		b.SetTextAttrs(NodeID(v), "x")
	}
	g := b.MustBuild()
	sub, orig := g.InducedSubgraph([]NodeID{1, 2, 3})
	if sub.NumNodes() != 3 {
		t.Fatalf("sub nodes = %d", sub.NumNodes())
	}
	if sub.NumEdges() != 3 { // 1-2, 2-3, 1-3
		t.Errorf("sub edges = %d, want 3", sub.NumEdges())
	}
	for i, o := range orig {
		if sub.NumAttrs(NodeID(i))[0] != float64(o) {
			t.Errorf("attr of induced %d = %v, want %d", i, sub.NumAttrs(NodeID(i)), o)
		}
	}
}

// randomGraph builds a deterministic random graph for property tests.
func randomGraph(rng *rand.Rand, n, m int) *Graph {
	b := NewBuilder(n, 0)
	for i := 0; i < m; i++ {
		b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	return b.MustBuild()
}

func TestPropertyAdjacencySymmetricSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(4*n))
		for v := 0; v < n; v++ {
			ns := g.Neighbors(NodeID(v))
			for i, u := range ns {
				if i > 0 && ns[i-1] >= u {
					return false // not strictly sorted → dup or disorder
				}
				if !g.HasEdge(u, NodeID(v)) {
					return false // asymmetric
				}
				if u == NodeID(v) {
					return false // self loop survived
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDegreeSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(4*n))
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(NodeID(v))
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyInducedSubgraphEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(4*n))
		// Random subset.
		var nodes []NodeID
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				nodes = append(nodes, NodeID(v))
			}
		}
		if len(nodes) == 0 {
			return true
		}
		sub, orig := g.InducedSubgraph(nodes)
		// Every induced edge exists in g; count matches direct count.
		cnt := 0
		in := map[NodeID]bool{}
		for _, v := range nodes {
			in[v] = true
		}
		for _, v := range nodes {
			for _, u := range g.Neighbors(v) {
				if in[u] && u > v {
					cnt++
				}
			}
		}
		if sub.NumEdges() != cnt {
			return false
		}
		for v := 0; v < sub.NumNodes(); v++ {
			for _, u := range sub.Neighbors(NodeID(v)) {
				if !g.HasEdge(orig[v], orig[u]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDegreeStats(t *testing.T) {
	g := buildPath(t, 4) // degrees 1,2,2,1
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 1.5 {
		t.Errorf("AvgDegree = %v, want 1.5", got)
	}
}
