package graph

import "slices"

// SubScratch holds the reusable buffers for InducedStructure: the
// full-graph-sized epoch-stamped membership set and remap, the CSR arrays
// of the induced subgraph, and the Graph header itself. One scratch
// supports one live induced subgraph at a time — the next InducedStructure
// call on the same scratch overwrites the previous result. The zero value
// is ready to use.
type SubScratch struct {
	in    NodeSet // stamped membership; remap[v] valid iff in.Has(v)
	remap []int32 // remap[v] = induced ID of v

	orig    []NodeID
	nbuf    []NodeID // neighbor-decode scratch for non-aliasing backings
	offsets []int32
	adj     []NodeID
	textOff []int32 // all-zero textOff so TextAttrs works on the sub graph
	sub     Graph
}

// InducedStructure builds the structure-only subgraph induced by nodes: CSR
// adjacency identical to InducedSubgraph's, but no attribute copying (the
// community-search extraction paths only ever read adjacency from the
// induced graph — attribute distances are looked up through the returned
// orig mapping on the parent graph). All storage comes from sc, so in the
// steady state the call performs no allocation.
//
// The returned Graph and orig slice alias sc and are valid until the next
// InducedStructure call on the same scratch. nodes must contain no
// duplicates and is not modified; the induced IDs follow ascending original
// ID order, so neighbor lists are sorted without a per-list sort.
func (g *Graph) InducedStructure(nodes []NodeID, sc *SubScratch) (*Graph, []NodeID) {
	sub, orig := InducedStructureOf(g, nodes, sc)
	sub.dict = g.dict
	return sub, orig
}

// InducedStructureOf is InducedStructure over any Adjacency backing; the
// neighbor lists of a decoding backing are drawn through sc's internal
// scratch buffer. The induced graph's dictionary is nil (structure only).
func InducedStructureOf(g Adjacency, nodes []NodeID, sc *SubScratch) (*Graph, []NodeID) {
	n := g.NumNodes()
	k := len(nodes)
	sc.in.Reset(n)
	if n > len(sc.remap) {
		sc.remap = make([]int32, n)
	}

	sc.orig = append(sc.orig[:0], nodes...)
	slices.Sort(sc.orig)
	for i, v := range sc.orig {
		sc.in.Add(v)
		sc.remap[v] = int32(i)
	}

	if cap(sc.offsets) < k+1 {
		sc.offsets = make([]int32, k+1)
		sc.textOff = make([]int32, k+1)
	}
	sc.offsets = sc.offsets[:k+1]
	sc.textOff = sc.textOff[:k+1]
	sc.offsets[0] = 0

	sc.adj = sc.adj[:0]
	for i, v := range sc.orig {
		for _, u := range g.NeighborsInto(&sc.nbuf, v) {
			if sc.in.Has(u) {
				sc.adj = append(sc.adj, sc.remap[u])
			}
		}
		sc.offsets[i+1] = int32(len(sc.adj))
	}

	sc.sub = Graph{
		offsets: sc.offsets,
		adj:     sc.adj,
		textOff: sc.textOff,
		numDim:  0,
	}
	return &sc.sub, sc.orig
}
