package graph

import "math"

// NodeSet is an epoch-stamped membership set over dense node IDs. Where a
// map[NodeID]bool or a fresh []bool costs an allocation (and, for the bool
// slice, an O(n) clear) per use, a NodeSet is reset by bumping a 32-bit
// epoch: a node is a member iff its stamp equals the current epoch. Reset is
// O(1) in the steady state and the backing array is reused for the lifetime
// of the set, which is what makes the hot-loop membership tests of the
// sampling and extraction paths allocation-free.
//
// The zero value is valid; call Reset before the first Add/Has to size it.
// A NodeSet is not safe for concurrent use.
type NodeSet struct {
	stamp []int32
	epoch int32
	count int
}

// Reset clears the set and ensures capacity for node IDs in [0, n).
// Amortized O(1): it reallocates only when n grows beyond every previous
// Reset, and rewrites the stamps only on epoch wraparound (every 2³¹−1
// resets).
func (s *NodeSet) Reset(n int) {
	if n > len(s.stamp) {
		// No copy: Reset empties the set, and old stamps are all below the
		// post-bump epoch, so they could never read as members anyway.
		s.stamp = make([]int32, n)
	}
	if s.epoch == math.MaxInt32 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 0
	}
	s.epoch++
	s.count = 0
}

// Add inserts v and reports whether it was newly added.
func (s *NodeSet) Add(v NodeID) bool {
	if s.stamp[v] == s.epoch {
		return false
	}
	s.stamp[v] = s.epoch
	s.count++
	return true
}

// Has reports membership of v.
func (s *NodeSet) Has(v NodeID) bool { return s.stamp[v] == s.epoch }

// Remove deletes v and reports whether it was a member.
func (s *NodeSet) Remove(v NodeID) bool {
	if s.stamp[v] != s.epoch {
		return false
	}
	s.stamp[v] = s.epoch - 1
	s.count--
	return true
}

// Len returns the number of members.
func (s *NodeSet) Len() int { return s.count }

// Cap returns the node-ID capacity the set currently covers.
func (s *NodeSet) Cap() int { return len(s.stamp) }
