package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestNodeSetBasics(t *testing.T) {
	var s NodeSet
	s.Reset(10)
	if s.Len() != 0 {
		t.Fatalf("fresh set Len=%d", s.Len())
	}
	if !s.Add(3) || s.Add(3) {
		t.Fatal("Add should report first insertion only")
	}
	if !s.Has(3) || s.Has(4) {
		t.Fatal("Has wrong")
	}
	s.Add(7)
	if s.Len() != 2 {
		t.Fatalf("Len=%d, want 2", s.Len())
	}
	if !s.Remove(3) || s.Remove(3) {
		t.Fatal("Remove should report prior membership only")
	}
	if s.Has(3) || s.Len() != 1 {
		t.Fatal("Remove did not delete")
	}
	s.Reset(10)
	if s.Has(7) || s.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestNodeSetGrowKeepsMembership(t *testing.T) {
	var s NodeSet
	s.Reset(4)
	s.Add(2)
	// Growing within the same generation must preserve the epoch discipline
	// on the copied prefix.
	if n := s.Cap(); n != 4 {
		t.Fatalf("Cap=%d, want 4", n)
	}
	s.Reset(100)
	if s.Has(2) {
		t.Fatal("Reset(grow) kept stale member")
	}
	s.Add(99)
	if !s.Has(99) {
		t.Fatal("Add after grow failed")
	}
}

func TestNodeSetEpochWraparound(t *testing.T) {
	var s NodeSet
	s.Reset(4)
	s.Add(1)
	s.epoch = math.MaxInt32 // next Reset must rewrite stamps, not wrap
	s.Reset(4)
	if s.Has(1) {
		t.Fatal("stale membership survived epoch wraparound")
	}
	s.Add(2)
	if !s.Has(2) || s.Has(1) {
		t.Fatal("membership wrong after wraparound")
	}
}

// TestInducedStructureMatchesInducedSubgraph checks the structure-only
// scratch-backed builder produces the same induced adjacency as the
// allocating builder, across random graphs and node subsets.
func TestInducedStructureMatchesInducedSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sc SubScratch
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(40)
		b := NewBuilder(n, 0)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g := b.MustBuild()
		// Random subset in shuffled order, no duplicates.
		perm := rng.Perm(n)
		k := 1 + rng.Intn(n)
		nodes := make([]NodeID, k)
		for i := 0; i < k; i++ {
			nodes[i] = NodeID(perm[i])
		}

		want, wantOrig := g.InducedSubgraph(nodes)
		got, gotOrig := g.InducedStructure(nodes, &sc)

		if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
			t.Fatalf("trial %d: size mismatch: got %d/%d want %d/%d",
				trial, got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
		}
		// Compare adjacency in original-ID space (the two builders may
		// assign different induced IDs).
		wantAdj := map[[2]NodeID]bool{}
		for v := 0; v < want.NumNodes(); v++ {
			for _, u := range want.Neighbors(NodeID(v)) {
				wantAdj[[2]NodeID{wantOrig[v], wantOrig[u]}] = true
			}
		}
		count := 0
		for v := 0; v < got.NumNodes(); v++ {
			ns := got.Neighbors(NodeID(v))
			for i, u := range ns {
				if i > 0 && ns[i-1] >= u {
					t.Fatalf("trial %d: neighbors of %d not strictly sorted", trial, v)
				}
				if !wantAdj[[2]NodeID{gotOrig[v], gotOrig[u]}] {
					t.Fatalf("trial %d: extra edge (%d,%d)", trial, gotOrig[v], gotOrig[u])
				}
				count++
			}
		}
		if count != len(wantAdj) {
			t.Fatalf("trial %d: %d directed edges, want %d", trial, count, len(wantAdj))
		}
		// TextAttrs must stay callable on the structure-only graph.
		for v := 0; v < got.NumNodes(); v++ {
			if len(got.TextAttrs(NodeID(v))) != 0 {
				t.Fatalf("trial %d: structure-only graph has text attrs", trial)
			}
		}
	}
}

// TestInducedStructureReuse checks a scratch survives back-to-back builds of
// different sizes.
func TestInducedStructureReuse(t *testing.T) {
	b := NewBuilder(6, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 0)
	g := b.MustBuild()
	var sc SubScratch
	sub1, orig1 := g.InducedStructure([]NodeID{0, 1, 2}, &sc)
	if sub1.NumNodes() != 3 || sub1.NumEdges() != 2 || orig1[0] != 0 {
		t.Fatalf("first build wrong: n=%d m=%d", sub1.NumNodes(), sub1.NumEdges())
	}
	sub2, orig2 := g.InducedStructure([]NodeID{5, 4}, &sc)
	if sub2.NumNodes() != 2 || sub2.NumEdges() != 1 {
		t.Fatalf("second build wrong: n=%d m=%d", sub2.NumNodes(), sub2.NumEdges())
	}
	if orig2[0] != 4 || orig2[1] != 5 {
		t.Fatalf("orig2=%v, want sorted [4 5]", orig2)
	}
}
