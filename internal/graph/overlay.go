package graph

import (
	"fmt"
	"sort"
)

// Overlay is a mutable delta view over an immutable base Store: edges and
// nodes can be added, edges removed, and per-node attributes replaced without
// touching the base storage. The base may be any Store backing — a heap
// Graph, an mmap'd snapshot, a compressed adjacency — which is what lets the
// serving layer replay journaled mutations over a read-only mapped base.
// Reads (Degree, NeighborsInto, HasEdge, attributes) see the base patched by
// the accumulated deltas, so index-maintenance code can traverse the
// post-mutation graph before any CSR exists for it; Materialize folds the
// deltas into a fresh immutable heap Graph in one pass, copying the adjacency
// spans of untouched nodes verbatim (no re-sorting, no re-deduplication, no
// decomposition).
//
// An Overlay is not safe for concurrent use; the serving layer applies
// mutations under its own lock and publishes only materialized Graphs.
type Overlay struct {
	base Store

	// added/removed neighbor lists per touched node, kept sorted. A neighbor
	// appears in at most one of the two (adding an edge cancels a pending
	// removal and vice versa).
	added   map[NodeID][]NodeID
	removed map[NodeID][]NodeID

	// newNodes holds the attribute rows of nodes appended past the base
	// graph; node i of the slice has ID base.NumNodes()+i.
	newText [][]int32
	newNum  [][]float64

	// attribute overrides for base nodes (SetAttr); nil entry means "keep".
	textOver map[NodeID][]int32
	numOver  map[NodeID][]float64

	// dict starts as the base dictionary and is cloned copy-on-write the
	// first time a mutation interns an unseen token, so the base graph's
	// dictionary is never written while concurrent readers hold it.
	dict      *Dict
	dictOwned bool

	edgeDelta int // added minus removed undirected edges

	nbuf []NodeID // neighbor-decode scratch for non-aliasing bases
}

// NewOverlay returns an empty overlay over base.
func NewOverlay(base Store) *Overlay {
	return &Overlay{
		base:     base,
		added:    make(map[NodeID][]NodeID),
		removed:  make(map[NodeID][]NodeID),
		textOver: make(map[NodeID][]int32),
		numOver:  make(map[NodeID][]float64),
		dict:     base.Dict(),
	}
}

// Base returns the overlay's base store.
func (o *Overlay) Base() Store { return o.base }

// NumNodes returns the node count including appended nodes.
func (o *Overlay) NumNodes() int { return o.base.NumNodes() + len(o.newText) }

// NumEdges returns the undirected edge count after the deltas.
func (o *Overlay) NumEdges() int { return o.base.NumEdges() + o.edgeDelta }

// NumDim returns the width of the numerical attribute vector.
func (o *Overlay) NumDim() int { return o.base.NumDim() }

// Dict returns the dictionary resolving token IDs, including tokens interned
// by mutations (which may differ from the base graph's dictionary).
func (o *Overlay) Dict() *Dict { return o.dict }

// Touched reports whether v's adjacency differs from the base graph.
func (o *Overlay) Touched(v NodeID) bool {
	if int(v) >= o.base.NumNodes() {
		return true
	}
	return len(o.added[v]) > 0 || len(o.removed[v]) > 0
}

// Degree returns v's degree under the deltas.
func (o *Overlay) Degree(v NodeID) int {
	if int(v) >= o.base.NumNodes() {
		return len(o.added[v])
	}
	return o.base.Degree(v) + len(o.added[v]) - len(o.removed[v])
}

// HasEdge reports whether edge (u,v) exists under the deltas.
func (o *Overlay) HasEdge(u, v NodeID) bool {
	if containsSorted(o.added[u], v) {
		return true
	}
	if containsSorted(o.removed[u], v) {
		return false
	}
	return int(u) < o.base.NumNodes() && o.base.HasEdge(u, v)
}

// AppendNeighbors appends v's neighbor list under the deltas to dst and
// returns it, sorted ascending. It allocates only when dst lacks capacity,
// so traversal loops can reuse one buffer.
func (o *Overlay) AppendNeighbors(dst []NodeID, v NodeID) []NodeID {
	add := o.added[v]
	if int(v) >= o.base.NumNodes() {
		return append(dst, add...)
	}
	base := o.base.NeighborsInto(&o.nbuf, v)
	rem := o.removed[v]
	if len(add) == 0 && len(rem) == 0 {
		return append(dst, base...)
	}
	// Merge base minus removed with added; all three lists are sorted.
	i, j := 0, 0
	for _, u := range base {
		if i < len(rem) && rem[i] == u {
			i++
			continue
		}
		for j < len(add) && add[j] < u {
			dst = append(dst, add[j])
			j++
		}
		dst = append(dst, u)
	}
	return append(dst, add[j:]...)
}

// TextAttrs returns v's textual token IDs under the deltas. The returned
// slice must not be modified.
func (o *Overlay) TextAttrs(v NodeID) []int32 {
	if over, ok := o.textOver[v]; ok {
		return over
	}
	if i := int(v) - o.base.NumNodes(); i >= 0 {
		return o.newText[i]
	}
	return o.base.TextAttrs(v)
}

// NumAttrs returns v's numerical attribute vector under the deltas. The
// returned slice must not be modified.
func (o *Overlay) NumAttrs(v NodeID) []float64 {
	if over, ok := o.numOver[v]; ok {
		return over
	}
	if i := int(v) - o.base.NumNodes(); i >= 0 {
		return o.newNum[i]
	}
	return o.base.NumAttrs(v)
}

// AddEdge records the undirected edge (u,v). It is an error if the edge
// already exists, the endpoints coincide, or either is out of range.
func (o *Overlay) AddEdge(u, v NodeID) error {
	if err := o.checkEndpoints(u, v); err != nil {
		return err
	}
	if o.HasEdge(u, v) {
		return fmt.Errorf("graph: overlay: edge (%d,%d) already exists", u, v)
	}
	o.patchEdge(u, v, true)
	o.patchEdge(v, u, true)
	o.edgeDelta++
	return nil
}

// RemoveEdge removes the undirected edge (u,v). It is an error if the edge
// does not exist.
func (o *Overlay) RemoveEdge(u, v NodeID) error {
	if err := o.checkEndpoints(u, v); err != nil {
		return err
	}
	if !o.HasEdge(u, v) {
		return fmt.Errorf("graph: overlay: edge (%d,%d) does not exist", u, v)
	}
	o.patchEdge(u, v, false)
	o.patchEdge(v, u, false)
	o.edgeDelta--
	return nil
}

// AddNode appends a node with the given attributes and returns its ID.
// numAttrs must have the graph's NumDim width (nil means all-zero).
func (o *Overlay) AddNode(textAttrs []string, numAttrs []float64) (NodeID, error) {
	if numAttrs != nil && len(numAttrs) != o.NumDim() {
		return 0, fmt.Errorf("graph: overlay: %d numerical attributes, graph has %d dimensions",
			len(numAttrs), o.NumDim())
	}
	id := NodeID(o.NumNodes())
	o.newText = append(o.newText, o.internTokens(textAttrs))
	row := make([]float64, o.NumDim())
	copy(row, numAttrs)
	o.newNum = append(o.newNum, row)
	return id, nil
}

// SetAttrs replaces v's attributes: a non-nil textAttrs replaces the textual
// set, a non-nil numAttrs (NumDim wide) replaces the numerical vector, and a
// nil keeps the current value.
func (o *Overlay) SetAttrs(v NodeID, textAttrs []string, numAttrs []float64) error {
	if int(v) < 0 || int(v) >= o.NumNodes() {
		return fmt.Errorf("graph: overlay: node %d out of range [0,%d)", v, o.NumNodes())
	}
	if numAttrs != nil && len(numAttrs) != o.NumDim() {
		return fmt.Errorf("graph: overlay: %d numerical attributes, graph has %d dimensions",
			len(numAttrs), o.NumDim())
	}
	if i := int(v) - o.base.NumNodes(); i >= 0 {
		if textAttrs != nil {
			o.newText[i] = o.internTokens(textAttrs)
		}
		if numAttrs != nil {
			copy(o.newNum[i], numAttrs)
		}
		return nil
	}
	if textAttrs != nil {
		o.textOver[v] = o.internTokens(textAttrs)
	}
	if numAttrs != nil {
		o.numOver[v] = append([]float64(nil), numAttrs...)
	}
	return nil
}

// internTokens interns attribute strings into the overlay's dictionary,
// cloning it copy-on-write before the first unseen token, and returns the
// sorted, deduplicated token IDs.
func (o *Overlay) internTokens(attrs []string) []int32 {
	ids := make([]int32, 0, len(attrs))
	for _, a := range attrs {
		id, ok := o.dict.Lookup(a)
		if !ok {
			if !o.dictOwned {
				d, err := NewDictFromNames(o.dict.Names())
				if err != nil {
					// The base dictionary is duplicate-free by construction.
					panic(err)
				}
				o.dict, o.dictOwned = d, true
			}
			id = o.dict.Intern(a)
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

func (o *Overlay) checkEndpoints(u, v NodeID) error {
	n := o.NumNodes()
	if int(u) < 0 || int(u) >= n || int(v) < 0 || int(v) >= n {
		return fmt.Errorf("graph: overlay: edge (%d,%d) out of range [0,%d)", u, v, n)
	}
	if u == v {
		return fmt.Errorf("graph: overlay: self-loop (%d,%d)", u, v)
	}
	return nil
}

// patchEdge records the directed half-edge u→v (add) or its removal. An add
// first cancels a pending removal of the same half-edge, and a removal first
// cancels a pending add, so the two lists stay disjoint.
func (o *Overlay) patchEdge(u, v NodeID, add bool) {
	from, to := o.removed, o.added
	if !add {
		from, to = o.added, o.removed
	}
	if l, ok := deleteSorted(from[u], v); ok {
		if len(l) == 0 {
			delete(from, u)
		} else {
			from[u] = l
		}
		return
	}
	// Removing an edge of an appended node never reaches here through the
	// cancel path only if it was added first, which HasEdge guarantees.
	to[u] = insertSorted(to[u], v)
}

// Materialize folds the deltas into a fresh immutable Graph. Untouched
// adjacency spans and attribute rows are copied verbatim from the base CSR;
// touched nodes are merged in sorted order. The overlay remains usable (its
// deltas are not consumed), so a caller can materialize intermediate states.
func (o *Overlay) Materialize() *Graph {
	n := o.NumNodes()
	baseN := o.base.NumNodes()

	offsets := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + int32(o.Degree(NodeID(v)))
	}
	adj := make([]NodeID, offsets[n])
	for v := 0; v < n; v++ {
		span := adj[offsets[v]:offsets[v]:offsets[v+1]]
		if v < baseN && !o.Touched(NodeID(v)) {
			copy(adj[offsets[v]:offsets[v+1]], o.base.NeighborsInto(&o.nbuf, NodeID(v)))
			continue
		}
		o.AppendNeighbors(span, NodeID(v))
	}

	textOff := make([]int32, n+1)
	for v := 0; v < n; v++ {
		textOff[v+1] = textOff[v] + int32(len(o.TextAttrs(NodeID(v))))
	}
	text := make([]int32, 0, textOff[n])
	for v := 0; v < n; v++ {
		text = append(text, o.TextAttrs(NodeID(v))...)
	}

	dim := o.NumDim()
	num := make([]float64, n*dim)
	for v := 0; v < n; v++ {
		copy(num[v*dim:(v+1)*dim], o.NumAttrs(NodeID(v)))
	}

	return &Graph{
		offsets: offsets,
		adj:     adj,
		textOff: textOff,
		text:    text,
		numDim:  dim,
		num:     num,
		dict:    o.dict,
	}
}

// containsSorted reports whether v is in the sorted slice l.
func containsSorted(l []NodeID, v NodeID) bool {
	i := sort.Search(len(l), func(i int) bool { return l[i] >= v })
	return i < len(l) && l[i] == v
}

// insertSorted inserts v into the sorted slice l, keeping it sorted.
func insertSorted(l []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(l), func(i int) bool { return l[i] >= v })
	l = append(l, 0)
	copy(l[i+1:], l[i:])
	l[i] = v
	return l
}

// deleteSorted removes v from the sorted slice l, reporting whether it was
// present.
func deleteSorted(l []NodeID, v NodeID) ([]NodeID, bool) {
	i := sort.Search(len(l), func(i int) bool { return l[i] >= v })
	if i >= len(l) || l[i] != v {
		return l, false
	}
	return append(l[:i], l[i+1:]...), true
}
