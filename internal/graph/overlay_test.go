package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestOverlayMaterializeMatchesBuilder folds a random mutation sequence
// through an Overlay and rebuilds the same final graph through a fresh
// Builder; the two must export identical Raw forms (same CSR, same
// attribute columns, same dictionary).
func TestOverlayMaterializeMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, dim = 40, 2

	base := NewBuilder(n, dim)
	type edge struct{ u, v NodeID }
	edges := map[edge]bool{}
	addEdge := func(m map[edge]bool, u, v NodeID) {
		if u > v {
			u, v = v, u
		}
		m[edge{u, v}] = true
	}
	hasEdge := func(m map[edge]bool, u, v NodeID) bool {
		if u > v {
			u, v = v, u
		}
		return m[edge{u, v}]
	}
	text := make([][]string, n)
	num := make([][]float64, n)
	for v := 0; v < n; v++ {
		text[v] = []string{fmt.Sprintf("t%d", rng.Intn(6))}
		num[v] = []float64{rng.Float64(), rng.Float64()}
		base.SetTextAttrs(NodeID(v), text[v]...)
		base.SetNumAttrs(NodeID(v), num[v]...)
	}
	for i := 0; i < 3*n; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if u != v && !hasEdge(edges, u, v) {
			addEdge(edges, u, v)
			base.AddEdge(u, v)
		}
	}
	g := base.MustBuild()

	ov := NewOverlay(g)
	for i := 0; i < 80; i++ {
		switch rng.Intn(5) {
		case 0, 1:
			u, v := NodeID(rng.Intn(len(text))), NodeID(rng.Intn(len(text)))
			if u == v || hasEdge(edges, u, v) {
				continue
			}
			if err := ov.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
			addEdge(edges, u, v)
		case 2:
			var all []edge
			for e := range edges {
				all = append(all, e)
			}
			if len(all) == 0 {
				continue
			}
			e := all[rng.Intn(len(all))]
			if err := ov.RemoveEdge(e.u, e.v); err != nil {
				t.Fatal(err)
			}
			delete(edges, e)
		case 3:
			tx := []string{fmt.Sprintf("t%d", rng.Intn(6)), fmt.Sprintf("new%d", rng.Intn(3))}
			nm := []float64{rng.Float64(), rng.Float64()}
			id, err := ov.AddNode(tx, nm)
			if err != nil {
				t.Fatal(err)
			}
			if int(id) != len(text) {
				t.Fatalf("AddNode ID %d, want %d", id, len(text))
			}
			text = append(text, tx)
			num = append(num, nm)
		default:
			v := NodeID(rng.Intn(len(text)))
			tx := []string{fmt.Sprintf("t%d", rng.Intn(6))}
			if err := ov.SetAttrs(v, tx, nil); err != nil {
				t.Fatal(err)
			}
			text[v] = tx
		}
	}
	got := ov.Materialize()

	// Rebuild the expected graph from scratch with the overlay's dictionary
	// order: interning follows first-use order, which the replayed attribute
	// history reproduces only if tokens appear in the same sequence — so
	// compare semantically instead: shape, edges, attrs resolved to strings.
	if got.NumNodes() != len(text) {
		t.Fatalf("NumNodes = %d, want %d", got.NumNodes(), len(text))
	}
	if got.NumEdges() != len(edges) {
		t.Fatalf("NumEdges = %d, want %d", got.NumEdges(), len(edges))
	}
	for e := range edges {
		if !got.HasEdge(e.u, e.v) || !got.HasEdge(e.v, e.u) {
			t.Fatalf("edge %v missing", e)
		}
	}
	total := 0
	for v := 0; v < got.NumNodes(); v++ {
		total += got.Degree(NodeID(v))
	}
	if total != 2*len(edges) {
		t.Fatalf("degree sum %d, want %d", total, 2*len(edges))
	}
	for v := 0; v < got.NumNodes(); v++ {
		want := map[string]bool{}
		for _, s := range text[v] {
			want[s] = true
		}
		gotNames := map[string]bool{}
		for _, id := range got.TextAttrs(NodeID(v)) {
			gotNames[got.Dict().Name(id)] = true
		}
		if !reflect.DeepEqual(want, gotNames) {
			t.Fatalf("node %d text = %v, want %v", v, gotNames, want)
		}
		if !reflect.DeepEqual(got.NumAttrs(NodeID(v)), num[v]) {
			t.Fatalf("node %d num = %v, want %v", v, got.NumAttrs(NodeID(v)), num[v])
		}
	}
	// The materialized graph must satisfy every Raw invariant (sortedness,
	// symmetry, token ranges) — FromRaw is the canonical validator.
	if _, err := FromRaw(got.Export()); err != nil {
		t.Fatalf("materialized graph fails validation: %v", err)
	}

	// The base graph must be untouched by everything above.
	if g.NumNodes() != n {
		t.Fatalf("base NumNodes changed: %d", g.NumNodes())
	}
	if _, err := FromRaw(g.Export()); err != nil {
		t.Fatalf("base graph corrupted: %v", err)
	}
}

// TestOverlayEdgeCancellation checks that adding a removed edge (and the
// reverse) cancels instead of stacking.
func TestOverlayEdgeCancellation(t *testing.T) {
	b := NewBuilder(4, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	ov := NewOverlay(g)
	if err := ov.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if ov.HasEdge(0, 1) {
		t.Fatal("edge survives removal")
	}
	if err := ov.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if !ov.HasEdge(0, 1) {
		t.Fatal("re-added edge missing")
	}
	if got := ov.NumEdges(); got != 2 {
		t.Fatalf("NumEdges = %d, want 2", got)
	}
	if err := ov.AddEdge(0, 1); err == nil {
		t.Fatal("duplicate add accepted")
	}
	m := ov.Materialize()
	if m.NumEdges() != 2 || !m.HasEdge(0, 1) {
		t.Fatalf("materialized: %d edges, has(0,1)=%v", m.NumEdges(), m.HasEdge(0, 1))
	}
}

// TestOverlayDictCopyOnWrite checks that interning an unseen token clones
// the dictionary instead of mutating the base graph's.
func TestOverlayDictCopyOnWrite(t *testing.T) {
	b := NewBuilder(2, 0)
	b.SetTextAttrs(0, "old")
	g := b.MustBuild()
	baseLen := g.Dict().Len()
	ov := NewOverlay(g)
	if err := ov.SetAttrs(1, []string{"brand-new"}, nil); err != nil {
		t.Fatal(err)
	}
	if g.Dict().Len() != baseLen {
		t.Fatalf("base dictionary grew to %d", g.Dict().Len())
	}
	if ov.Dict().Len() != baseLen+1 {
		t.Fatalf("overlay dictionary has %d tokens, want %d", ov.Dict().Len(), baseLen+1)
	}
	m := ov.Materialize()
	if name := m.Dict().Name(m.TextAttrs(1)[0]); name != "brand-new" {
		t.Fatalf("node 1 token resolves to %q", name)
	}
}
