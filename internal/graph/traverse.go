package graph

// BFS visits nodes reachable from src in breadth-first order, calling visit
// for each with its hop distance. Traversal stops early if visit returns
// false.
func (g *Graph) BFS(src NodeID, visit func(v NodeID, dist int) bool) {
	seen := make([]bool, g.NumNodes())
	queue := []NodeID{src}
	seen[src] = true
	dist := 0
	for len(queue) > 0 {
		var next []NodeID
		for _, v := range queue {
			if !visit(v, dist) {
				return
			}
			for _, u := range g.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					next = append(next, u)
				}
			}
		}
		queue = next
		dist++
	}
}

// Component returns the connected component containing src, restricted to
// nodes for which keep returns true (keep == nil keeps everything). src is
// included only if keep allows it.
func (g *Graph) Component(src NodeID, keep func(NodeID) bool) []NodeID {
	if keep != nil && !keep(src) {
		return nil
	}
	seen := make([]bool, g.NumNodes())
	seen[src] = true
	out := []NodeID{src}
	for i := 0; i < len(out); i++ {
		for _, u := range g.Neighbors(out[i]) {
			if seen[u] || (keep != nil && !keep(u)) {
				continue
			}
			seen[u] = true
			out = append(out, u)
		}
	}
	return out
}

// ConnectedComponents returns a label per node and the number of components.
func (g *Graph) ConnectedComponents() (labels []int32, count int) {
	n := g.NumNodes()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var c int32
	stack := make([]NodeID, 0, 64)
	for v := 0; v < n; v++ {
		if labels[v] >= 0 {
			continue
		}
		stack = append(stack[:0], NodeID(v))
		labels[v] = c
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.Neighbors(x) {
				if labels[u] < 0 {
					labels[u] = c
					stack = append(stack, u)
				}
			}
		}
		c++
	}
	return labels, int(c)
}

// InducedSubgraphOf is InducedSubgraph over any Store backing: the subgraph
// induced by nodes with attributes copied and the dictionary shared, plus
// the mapping from new IDs to original IDs.
func InducedSubgraphOf(g Store, nodes []NodeID) (*Graph, []NodeID) {
	remap := make(map[NodeID]NodeID, len(nodes))
	orig := make([]NodeID, len(nodes))
	for i, v := range nodes {
		remap[v] = NodeID(i)
		orig[i] = v
	}
	dim := g.NumDim()
	b := NewBuilder(len(nodes), dim)
	b.dict = g.Dict()
	var nbr []NodeID
	for i, v := range nodes {
		b.SetTextTokens(NodeID(i), g.TextAttrs(v))
		if dim > 0 {
			b.SetNumAttrs(NodeID(i), g.NumAttrs(v)...)
		}
		for _, u := range g.NeighborsInto(&nbr, v) {
			if j, ok := remap[u]; ok && j > NodeID(i) {
				b.AddEdge(NodeID(i), j)
			}
		}
	}
	sub := b.MustBuild()
	return sub, orig
}

// InducedSubgraph returns the subgraph induced by nodes, along with the
// mapping from new IDs to original IDs. Attributes are copied; the dictionary
// is shared with g.
func (g *Graph) InducedSubgraph(nodes []NodeID) (*Graph, []NodeID) {
	remap := make(map[NodeID]NodeID, len(nodes))
	orig := make([]NodeID, len(nodes))
	for i, v := range nodes {
		remap[v] = NodeID(i)
		orig[i] = v
	}
	b := NewBuilder(len(nodes), g.numDim)
	b.dict = g.dict
	for i, v := range nodes {
		b.SetTextTokens(NodeID(i), g.TextAttrs(v))
		if g.numDim > 0 {
			b.SetNumAttrs(NodeID(i), g.NumAttrs(v)...)
		}
		for _, u := range g.Neighbors(v) {
			if j, ok := remap[u]; ok && j > NodeID(i) {
				b.AddEdge(NodeID(i), j)
			}
		}
	}
	sub := b.MustBuild()
	return sub, orig
}
