package hetgraph

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Builder assembles a HetGraph.
type Builder struct {
	nodeTypes []string
	edgeTypes []string
	ntByName  map[string]TypeID
	etByName  map[string]TypeID

	nodeType []TypeID
	edges    []hetEdge
	text     [][]int32
	num      [][]float64
	dict     *graph.Dict
}

type hetEdge struct {
	u, v graph.NodeID
	t    TypeID
}

// NewBuilder returns an empty heterogeneous graph builder.
func NewBuilder() *Builder {
	return &Builder{
		ntByName: map[string]TypeID{},
		etByName: map[string]TypeID{},
		dict:     graph.NewDict(),
	}
}

// NodeType interns a node type name.
func (b *Builder) NodeType(name string) TypeID {
	if t, ok := b.ntByName[name]; ok {
		return t
	}
	t := TypeID(len(b.nodeTypes))
	b.ntByName[name] = t
	b.nodeTypes = append(b.nodeTypes, name)
	return t
}

// EdgeType interns an edge type name.
func (b *Builder) EdgeType(name string) TypeID {
	if t, ok := b.etByName[name]; ok {
		return t
	}
	t := TypeID(len(b.edgeTypes))
	b.etByName[name] = t
	b.edgeTypes = append(b.edgeTypes, name)
	return t
}

// AddNode appends a node of type t and returns its ID.
func (b *Builder) AddNode(t TypeID) graph.NodeID {
	id := graph.NodeID(len(b.nodeType))
	b.nodeType = append(b.nodeType, t)
	b.text = append(b.text, nil)
	b.num = append(b.num, nil)
	return id
}

// AddEdge records an undirected typed edge.
func (b *Builder) AddEdge(u, v graph.NodeID, t TypeID) {
	b.edges = append(b.edges, hetEdge{u, v, t})
}

// SetTextAttrs sets v's textual attributes.
func (b *Builder) SetTextAttrs(v graph.NodeID, attrs ...string) {
	ids := make([]int32, 0, len(attrs))
	for _, a := range attrs {
		ids = append(ids, b.dict.Intern(a))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	b.text[v] = out
}

// SetNumAttrs sets v's numerical attribute vector.
func (b *Builder) SetNumAttrs(v graph.NodeID, vals ...float64) {
	b.num[v] = append([]float64(nil), vals...)
}

// MetaPathByNames builds a meta-path from type names, alternating
// node, edge, node, edge, …, node.
func (b *Builder) MetaPathByNames(names ...string) (MetaPath, error) {
	if len(names) < 3 || len(names)%2 == 0 {
		return MetaPath{}, fmt.Errorf("hetgraph: meta-path needs odd ≥3 names, got %d", len(names))
	}
	var p MetaPath
	for i, name := range names {
		if i%2 == 0 {
			t, ok := b.ntByName[name]
			if !ok {
				return MetaPath{}, fmt.Errorf("hetgraph: unknown node type %q", name)
			}
			p.NodeTypes = append(p.NodeTypes, t)
		} else {
			t, ok := b.etByName[name]
			if !ok {
				return MetaPath{}, fmt.Errorf("hetgraph: unknown edge type %q", name)
			}
			p.EdgeTypes = append(p.EdgeTypes, t)
		}
	}
	return p, nil
}

// Build freezes the heterogeneous graph.
func (b *Builder) Build() (*HetGraph, error) {
	n := len(b.nodeType)
	deg := make([]int32, n)
	for _, e := range b.edges {
		if int(e.u) >= n || int(e.v) >= n || e.u < 0 || e.v < 0 {
			return nil, fmt.Errorf("hetgraph: edge (%d,%d) out of range", e.u, e.v)
		}
		if e.u == e.v {
			continue
		}
		deg[e.u]++
		deg[e.v]++
	}
	offsets := make([]int32, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i]
	}
	adj := make([]graph.NodeID, offsets[n])
	ety := make([]TypeID, offsets[n])
	fill := make([]int32, n)
	copy(fill, offsets[:n])
	for _, e := range b.edges {
		if e.u == e.v {
			continue
		}
		adj[fill[e.u]], ety[fill[e.u]] = e.v, e.t
		fill[e.u]++
		adj[fill[e.v]], ety[fill[e.v]] = e.u, e.t
		fill[e.v]++
	}
	return &HetGraph{
		nodeType:      append([]TypeID(nil), b.nodeType...),
		offsets:       offsets,
		adj:           adj,
		etype:         ety,
		nodeTypeNames: append([]string(nil), b.nodeTypes...),
		edgeTypeNames: append([]string(nil), b.edgeTypes...),
		text:          b.text,
		num:           b.num,
		attrDic:       b.dict,
	}, nil
}
