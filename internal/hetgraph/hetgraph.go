// Package hetgraph provides the heterogeneous-graph substrate of §VI-A:
// typed nodes and edges, meta-paths, P-neighbor computation, and the
// projection of target nodes onto a homogeneous attributed graph on which
// the (k,P)-core / (k,P)-truss community search runs via the main pipeline.
package hetgraph

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// TypeID identifies a node or edge type.
type TypeID = int32

// HetGraph is an immutable heterogeneous attributed graph. Only nodes can
// carry attributes (matching the paper's datasets, where e.g. authors have
// research interests and publication counts).
type HetGraph struct {
	nodeType []TypeID
	offsets  []int32
	adj      []graph.NodeID
	etype    []TypeID

	nodeTypeNames []string
	edgeTypeNames []string

	text    [][]int32
	num     [][]float64
	numDim  int
	attrDic *graph.Dict
}

// NumNodes returns the node count.
func (h *HetGraph) NumNodes() int { return len(h.nodeType) }

// NumEdges returns the undirected edge count.
func (h *HetGraph) NumEdges() int { return len(h.adj) / 2 }

// NumNodeTypes returns the number of node types.
func (h *HetGraph) NumNodeTypes() int { return len(h.nodeTypeNames) }

// NumEdgeTypes returns the number of edge types.
func (h *HetGraph) NumEdgeTypes() int { return len(h.edgeTypeNames) }

// NodeType returns v's type.
func (h *HetGraph) NodeType(v graph.NodeID) TypeID { return h.nodeType[v] }

// NodeTypeName resolves a node type name.
func (h *HetGraph) NodeTypeName(t TypeID) string { return h.nodeTypeNames[t] }

// EdgeTypeName resolves an edge type name.
func (h *HetGraph) EdgeTypeName(t TypeID) string { return h.edgeTypeNames[t] }

// Neighbors returns v's neighbors and parallel edge types.
func (h *HetGraph) Neighbors(v graph.NodeID) ([]graph.NodeID, []TypeID) {
	lo, hi := h.offsets[v], h.offsets[v+1]
	return h.adj[lo:hi], h.etype[lo:hi]
}

// TextAttrs returns v's sorted textual attribute tokens.
func (h *HetGraph) TextAttrs(v graph.NodeID) []int32 { return h.text[v] }

// NumAttrs returns v's numerical attribute vector (may be nil).
func (h *HetGraph) NumAttrs(v graph.NodeID) []float64 { return h.num[v] }

// MetaPath is an alternating sequence of node and edge types,
// NodeTypes[0] —EdgeTypes[0]— NodeTypes[1] … ; len(NodeTypes) =
// len(EdgeTypes)+1. The paper's A-P-A is {author,paper,author} with edge
// type "writes" twice.
type MetaPath struct {
	NodeTypes []TypeID
	EdgeTypes []TypeID
}

// Validate reports malformed paths.
func (p MetaPath) Validate() error {
	if len(p.NodeTypes) < 2 || len(p.EdgeTypes) != len(p.NodeTypes)-1 {
		return fmt.Errorf("hetgraph: meta-path with %d node types and %d edge types", len(p.NodeTypes), len(p.EdgeTypes))
	}
	return nil
}

// Target returns the type of the path's endpoints; community members have
// this type.
func (p MetaPath) Target() TypeID { return p.NodeTypes[0] }

// PNeighbors returns the target nodes connected to v by at least one
// instance of p (excluding v itself). v must have p's target type.
func (h *HetGraph) PNeighbors(v graph.NodeID, p MetaPath) []graph.NodeID {
	if h.nodeType[v] != p.Target() {
		return nil
	}
	frontier := map[graph.NodeID]bool{v: true}
	for step := 0; step < len(p.EdgeTypes); step++ {
		next := make(map[graph.NodeID]bool)
		wantNode := p.NodeTypes[step+1]
		wantEdge := p.EdgeTypes[step]
		for u := range frontier {
			ns, ets := h.Neighbors(u)
			for i, w := range ns {
				if ets[i] == wantEdge && h.nodeType[w] == wantNode {
					next[w] = true
				}
			}
		}
		frontier = next
	}
	delete(frontier, v)
	out := make([]graph.NodeID, 0, len(frontier))
	for u := range frontier {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountInstances counts the path instances of p starting at v (walks, not
// necessarily simple), used to rank meta-paths by frequency as in §VII-A.
func (h *HetGraph) CountInstances(v graph.NodeID, p MetaPath) int64 {
	if h.nodeType[v] != p.Target() {
		return 0
	}
	counts := map[graph.NodeID]int64{v: 1}
	for step := 0; step < len(p.EdgeTypes); step++ {
		next := make(map[graph.NodeID]int64)
		wantNode := p.NodeTypes[step+1]
		wantEdge := p.EdgeTypes[step]
		for u, c := range counts {
			ns, ets := h.Neighbors(u)
			for i, w := range ns {
				if ets[i] == wantEdge && h.nodeType[w] == wantNode {
					next[w] += c
				}
			}
		}
		counts = next
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	return total
}

// Projection is the homogeneous graph over the target nodes of a meta-path:
// an edge joins two target nodes iff they are P-neighbors. ToHet maps
// projected IDs back to heterogeneous IDs.
type Projection struct {
	Graph   *graph.Graph
	ToHet   []graph.NodeID
	FromHet map[graph.NodeID]graph.NodeID
}

// Project builds the P-neighbor projection. Numerical attribute width is the
// maximum over target nodes; missing vectors are zero-filled.
func (h *HetGraph) Project(p MetaPath) (*Projection, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var targets []graph.NodeID
	for v := 0; v < h.NumNodes(); v++ {
		if h.nodeType[v] == p.Target() {
			targets = append(targets, graph.NodeID(v))
		}
	}
	fromHet := make(map[graph.NodeID]graph.NodeID, len(targets))
	for i, v := range targets {
		fromHet[v] = graph.NodeID(i)
	}
	numDim := 0
	for _, v := range targets {
		if d := len(h.num[v]); d > numDim {
			numDim = d
		}
	}
	b := graph.NewBuilder(len(targets), numDim)
	// Token IDs below come from the heterogeneous graph's dictionary; share
	// it so the projected graph resolves them to the same names.
	b.SetDict(h.attrDic)
	for i, v := range targets {
		b.SetTextTokens(graph.NodeID(i), h.text[v])
		if numDim > 0 {
			vals := make([]float64, numDim)
			copy(vals, h.num[v])
			b.SetNumAttrs(graph.NodeID(i), vals...)
		}
		for _, u := range h.PNeighbors(v, p) {
			if j := fromHet[u]; j > graph.NodeID(i) {
				b.AddEdge(graph.NodeID(i), j)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Projection{Graph: g, ToHet: targets, FromHet: fromHet}, nil
}
