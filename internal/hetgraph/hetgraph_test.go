package hetgraph

import (
	"testing"

	"repro/internal/graph"
)

// dblpFixture builds a tiny DBLP-like graph: 4 authors, 3 papers, 1 venue.
// a0,a1 co-wrote p0; a1,a2 co-wrote p1; a3 wrote p2 alone.
func dblpFixture(t *testing.T) (*Builder, *HetGraph, MetaPath, []graph.NodeID) {
	t.Helper()
	b := NewBuilder()
	author := b.NodeType("author")
	paper := b.NodeType("paper")
	venue := b.NodeType("venue")
	writes := b.EdgeType("writes")
	publishedIn := b.EdgeType("published_in")

	var a [4]graph.NodeID
	for i := range a {
		a[i] = b.AddNode(author)
	}
	var p [3]graph.NodeID
	for i := range p {
		p[i] = b.AddNode(paper)
	}
	v0 := b.AddNode(venue)
	b.AddEdge(a[0], p[0], writes)
	b.AddEdge(a[1], p[0], writes)
	b.AddEdge(a[1], p[1], writes)
	b.AddEdge(a[2], p[1], writes)
	b.AddEdge(a[3], p[2], writes)
	b.AddEdge(p[0], v0, publishedIn)
	b.SetTextAttrs(a[0], "db", "graphs")
	b.SetNumAttrs(a[0], 10, 3)
	b.SetTextAttrs(a[1], "db")
	b.SetNumAttrs(a[1], 5, 1)

	path, err := b.MetaPathByNames("author", "writes", "paper", "writes", "author")
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return b, g, path, a[:]
}

func TestBuilderTypeInterning(t *testing.T) {
	b := NewBuilder()
	if b.NodeType("x") != b.NodeType("x") {
		t.Error("NodeType not idempotent")
	}
	if b.EdgeType("e") != b.EdgeType("e") {
		t.Error("EdgeType not idempotent")
	}
	if b.NodeType("x") == b.NodeType("y") {
		t.Error("distinct node types share ID")
	}
}

func TestHetGraphBasics(t *testing.T) {
	_, g, _, a := dblpFixture(t)
	if g.NumNodes() != 8 {
		t.Errorf("nodes = %d, want 8", g.NumNodes())
	}
	if g.NumEdges() != 6 {
		t.Errorf("edges = %d, want 6", g.NumEdges())
	}
	if g.NumNodeTypes() != 3 || g.NumEdgeTypes() != 2 {
		t.Errorf("types = %d/%d, want 3/2", g.NumNodeTypes(), g.NumEdgeTypes())
	}
	if g.NodeTypeName(g.NodeType(a[0])) != "author" {
		t.Errorf("a0 type = %q", g.NodeTypeName(g.NodeType(a[0])))
	}
	ns, ets := g.Neighbors(a[1])
	if len(ns) != 2 || len(ets) != 2 {
		t.Errorf("a1 has %d neighbors, want 2", len(ns))
	}
	if len(g.TextAttrs(a[0])) != 2 || g.NumAttrs(a[0])[0] != 10 {
		t.Error("attributes lost")
	}
}

func TestPNeighbors(t *testing.T) {
	_, g, path, a := dblpFixture(t)
	cases := []struct {
		v    graph.NodeID
		want []graph.NodeID
	}{
		{a[0], []graph.NodeID{a[1]}},
		{a[1], []graph.NodeID{a[0], a[2]}},
		{a[3], nil},
	}
	for _, c := range cases {
		got := g.PNeighbors(c.v, path)
		if len(got) != len(c.want) {
			t.Errorf("PNeighbors(%d) = %v, want %v", c.v, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("PNeighbors(%d) = %v, want %v", c.v, got, c.want)
			}
		}
	}
	// Wrong-type start returns nil.
	if got := g.PNeighbors(4, path); got != nil { // node 4 is a paper
		t.Errorf("PNeighbors(paper) = %v", got)
	}
}

func TestCountInstances(t *testing.T) {
	_, g, path, a := dblpFixture(t)
	// a1 reaches a0 via p0, a2 via p1, and itself twice (back-and-forth):
	// walks counted = 2 (to others) + 2 (self) = 4.
	if got := g.CountInstances(a[1], path); got != 4 {
		t.Errorf("CountInstances(a1) = %d, want 4", got)
	}
	if got := g.CountInstances(a[3], path); got != 1 { // only the self walk
		t.Errorf("CountInstances(a3) = %d, want 1", got)
	}
}

func TestProject(t *testing.T) {
	_, g, path, a := dblpFixture(t)
	proj, err := g.Project(path)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Graph.NumNodes() != 4 {
		t.Fatalf("projection nodes = %d, want 4 authors", proj.Graph.NumNodes())
	}
	if proj.Graph.NumEdges() != 2 { // a0-a1, a1-a2
		t.Errorf("projection edges = %d, want 2", proj.Graph.NumEdges())
	}
	// Attribute carry-over.
	p0 := proj.FromHet[a[0]]
	if len(proj.Graph.TextAttrs(p0)) != 2 {
		t.Errorf("projected a0 lost text attrs")
	}
	if proj.Graph.NumAttrs(p0)[0] != 10 {
		t.Errorf("projected a0 lost numeric attrs")
	}
	// Round-trip mapping.
	for i, het := range proj.ToHet {
		if proj.FromHet[het] != graph.NodeID(i) {
			t.Errorf("mapping mismatch at %d", i)
		}
	}
}

func TestMetaPathValidate(t *testing.T) {
	if err := (MetaPath{NodeTypes: []TypeID{0}, EdgeTypes: nil}).Validate(); err == nil {
		t.Error("accepted single-node path")
	}
	if err := (MetaPath{NodeTypes: []TypeID{0, 1}, EdgeTypes: []TypeID{0, 1}}).Validate(); err == nil {
		t.Error("accepted mismatched lengths")
	}
}

func TestMetaPathByNamesErrors(t *testing.T) {
	b := NewBuilder()
	b.NodeType("a")
	b.EdgeType("e")
	if _, err := b.MetaPathByNames("a", "e"); err == nil {
		t.Error("accepted even-length path")
	}
	if _, err := b.MetaPathByNames("a", "e", "zzz"); err == nil {
		t.Error("accepted unknown node type")
	}
	if _, err := b.MetaPathByNames("a", "zzz", "a"); err == nil {
		t.Error("accepted unknown edge type")
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder()
	tt := b.NodeType("x")
	n := b.AddNode(tt)
	b.AddEdge(n, 99, 0)
	if _, err := b.Build(); err == nil {
		t.Error("accepted out-of-range edge")
	}
}
