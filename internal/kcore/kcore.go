// Package kcore implements k-core decomposition (Batagelj–Zaversnik, O(m)),
// maximal connected k-core extraction, and an incremental connected-k-core
// maintenance structure with rollback used by the enumeration algorithms.
package kcore

import (
	"repro/internal/graph"
	"repro/internal/ws"
)

// Decompose computes the coreness of every node with the O(m) bin-sort
// algorithm of Batagelj and Zaversnik. The returned slice is freshly
// allocated and owned by the caller (the Engine retains it as its admission
// index); hot loops that consume the coreness transiently should use
// DecomposeWS instead.
func Decompose(g graph.Adjacency) []int32 {
	n := g.NumNodes()
	var nbr []graph.NodeID
	return decompose(g, make([]int32, n), make([]int32, n), make([]int32, n), nil, &nbr)
}

// DecomposeWS is Decompose with every buffer — including the returned
// coreness slice — drawn from w. The result aliases w's scratch and is valid
// only until the next workspace-threaded kcore operation.
func DecomposeWS(g graph.Adjacency, w *ws.Workspace) []int32 {
	n := g.NumNodes()
	w.DegS = ws.I32(w.DegS, n)
	w.VertS = ws.I32(w.VertS, n)
	w.PosS = ws.I32(w.PosS, n)
	return decompose(g, w.DegS, w.VertS, w.PosS, &w.BinS, &w.NbrA)
}

// decompose is the shared bin-sort peeling. deg doubles as the output
// coreness array; binBuf, when non-nil, recycles the degree-bucket array
// (its needed length depends on the max degree, so it is resized here).
func decompose(g graph.Adjacency, deg, vert, pos []int32, binBuf *[]int32, nbr *[]graph.NodeID) []int32 {
	n := g.NumNodes()
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(graph.NodeID(v)))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// bin[d] = start index in vert of nodes with degree d.
	var bin []int32
	if binBuf != nil {
		*binBuf = ws.I32(*binBuf, int(maxDeg)+2)
		bin = *binBuf
		for i := range bin {
			bin[i] = 0
		}
	} else {
		bin = make([]int32, maxDeg+2)
	}
	for v := 0; v < n; v++ {
		bin[deg[v]]++
	}
	start := int32(0)
	for d := int32(0); d <= maxDeg; d++ {
		cnt := bin[d]
		bin[d] = start
		start += cnt
	}
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = int32(v)
		bin[deg[v]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	core := deg // reuse; peeled in order
	for i := 0; i < n; i++ {
		v := vert[i]
		for _, u := range g.NeighborsInto(nbr, v) {
			if core[u] > core[v] {
				du, pu := core[u], pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != w {
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, u
				}
				bin[du]++
				core[u]--
			}
		}
	}
	return core
}

// MaxCoreness returns the maximum and average coreness of g.
func MaxCoreness(g graph.Adjacency) (max int32, avg float64) {
	core := Decompose(g)
	sum := 0.0
	for _, c := range core {
		if c > max {
			max = c
		}
		sum += float64(c)
	}
	if len(core) > 0 {
		avg = sum / float64(len(core))
	}
	return max, avg
}

// MaximalConnectedKCore returns the node set of the maximal connected k-core
// containing q, or nil if q is not in any k-core. The result is the connected
// component of q inside the k-core of g.
func MaximalConnectedKCore(g graph.Adjacency, q graph.NodeID, k int) []graph.NodeID {
	w := ws.Get()
	defer w.Release()
	return MaximalConnectedKCoreInto(nil, g, q, k, w)
}

// MaximalConnectedKCoreInto is MaximalConnectedKCore appending to dst, with
// the decomposition and traversal scratch drawn from w. It returns nil (not
// dst) when q is in no k-core, preserving the nil-means-absent contract.
func MaximalConnectedKCoreInto(dst []graph.NodeID, g graph.Adjacency, q graph.NodeID, k int, w *ws.Workspace) []graph.NodeID {
	core := DecomposeWS(g, w)
	if int(core[q]) < k {
		return nil
	}
	// BFS over nodes of coreness ≥ k, visited tracked by epoch stamp.
	w.Visited.Reset(g.NumNodes())
	w.Visited.Add(q)
	start := len(dst)
	dst = append(dst, q)
	for i := start; i < len(dst); i++ {
		for _, u := range g.NeighborsInto(&w.NbrA, dst[i]) {
			if int(core[u]) >= k && w.Visited.Add(u) {
				dst = append(dst, u)
			}
		}
	}
	return dst
}

// InKCoreSet reports whether every node of members has at least k neighbors
// inside members. Used by tests and validators. Membership is tracked by an
// epoch-stamped set from the workspace pool, not a per-call map.
func InKCoreSet(g graph.Adjacency, members []graph.NodeID, k int) bool {
	w := ws.Get()
	defer w.Release()
	return InKCoreSetWS(g, members, k, w)
}

// InKCoreSetWS is InKCoreSet with the membership set drawn from w.
func InKCoreSetWS(g graph.Adjacency, members []graph.NodeID, k int, w *ws.Workspace) bool {
	in := &w.Member
	in.Reset(g.NumNodes())
	for _, v := range members {
		in.Add(v)
	}
	for _, v := range members {
		d := 0
		for _, u := range g.NeighborsInto(&w.NbrA, v) {
			if in.Has(u) {
				d++
			}
		}
		if d < k {
			return false
		}
	}
	return true
}
