// Package kcore implements k-core decomposition (Batagelj–Zaversnik, O(m)),
// maximal connected k-core extraction, and an incremental connected-k-core
// maintenance structure with rollback used by the enumeration algorithms.
package kcore

import (
	"repro/internal/graph"
)

// Decompose computes the coreness of every node with the O(m) bin-sort
// algorithm of Batagelj and Zaversnik.
func Decompose(g *graph.Graph) []int32 {
	n := g.NumNodes()
	deg := make([]int32, n)
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(graph.NodeID(v)))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// bin[d] = start index in vert of nodes with degree d.
	bin := make([]int32, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]]++
	}
	start := int32(0)
	for d := int32(0); d <= maxDeg; d++ {
		cnt := bin[d]
		bin[d] = start
		start += cnt
	}
	vert := make([]int32, n) // nodes sorted by degree
	pos := make([]int32, n)  // position of node in vert
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = int32(v)
		bin[deg[v]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	core := deg // reuse; peeled in order
	for i := 0; i < n; i++ {
		v := vert[i]
		for _, u := range g.Neighbors(v) {
			if core[u] > core[v] {
				du, pu := core[u], pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != w {
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, u
				}
				bin[du]++
				core[u]--
			}
		}
	}
	return core
}

// MaxCoreness returns the maximum and average coreness of g.
func MaxCoreness(g *graph.Graph) (max int32, avg float64) {
	core := Decompose(g)
	sum := 0.0
	for _, c := range core {
		if c > max {
			max = c
		}
		sum += float64(c)
	}
	if len(core) > 0 {
		avg = sum / float64(len(core))
	}
	return max, avg
}

// MaximalConnectedKCore returns the node set of the maximal connected k-core
// containing q, or nil if q is not in any k-core. The result is the connected
// component of q inside the k-core of g.
func MaximalConnectedKCore(g *graph.Graph, q graph.NodeID, k int) []graph.NodeID {
	core := Decompose(g)
	if int(core[q]) < k {
		return nil
	}
	return g.Component(q, func(v graph.NodeID) bool { return int(core[v]) >= k })
}

// InKCoreSet reports whether every node of members has at least k neighbors
// inside members. Used by tests and validators.
func InKCoreSet(g *graph.Graph, members []graph.NodeID, k int) bool {
	in := make(map[graph.NodeID]bool, len(members))
	for _, v := range members {
		in[v] = true
	}
	for _, v := range members {
		d := 0
		for _, u := range g.Neighbors(v) {
			if in[u] {
				d++
			}
		}
		if d < k {
			return false
		}
	}
	return true
}
