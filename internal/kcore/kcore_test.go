package kcore

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// figure2Graph builds the 12-node graph of Figure 2 of the paper.
// Node IDs are v1..v12 mapped to 0..11.
func figure2Graph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(12, 0)
	edges := [][2]int{
		// The 3-core component {v1..v6} (Figure 2(b) shows its structure):
		// a 6-ring with chords, every node has degree exactly 3 or 4.
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0},
		{0, 2}, {1, 3}, {2, 4}, {3, 5},
		// The second 3-core component {v7..v10} plus periphery.
		{6, 7}, {6, 8}, {6, 9}, {7, 8}, {7, 9}, {8, 9},
		// v11 connects the two parts loosely, v12 is degree-1.
		{10, 0}, {10, 6}, {11, 10},
	}
	for _, e := range edges {
		b.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]))
	}
	return b.MustBuild()
}

// naiveCoreness computes coreness by repeated peeling, the reference
// implementation for the decomposition test.
func naiveCoreness(g *graph.Graph) []int32 {
	n := g.NumNodes()
	core := make([]int32, n)
	alive := make([]bool, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		alive[v] = true
		deg[v] = g.Degree(graph.NodeID(v))
	}
	for k := 0; ; k++ {
		// Remove everything with degree < k+1 at level k... peel at level k.
		changed := true
		for changed {
			changed = false
			for v := 0; v < n; v++ {
				if alive[v] && deg[v] <= k {
					alive[v] = false
					core[v] = int32(k)
					for _, u := range g.Neighbors(graph.NodeID(v)) {
						if alive[u] {
							deg[u]--
						}
					}
					changed = true
				}
			}
		}
		done := true
		for v := 0; v < n; v++ {
			if alive[v] {
				done = false
				break
			}
		}
		if done {
			return core
		}
	}
}

func TestDecomposeAgainstNaive(t *testing.T) {
	g := figure2Graph(t)
	got := Decompose(g)
	want := naiveCoreness(g)
	for v := range got {
		if got[v] != want[v] {
			t.Errorf("coreness[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestPropertyDecomposeAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		b := graph.NewBuilder(n, 0)
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g := b.MustBuild()
		got := Decompose(g)
		want := naiveCoreness(g)
		for v := range got {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMaximalConnectedKCore(t *testing.T) {
	g := figure2Graph(t)
	// q = v5 (index 4): its 3-core is {v1..v6} = indices 0..5.
	members := MaximalConnectedKCore(g, 4, 3)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	want := []graph.NodeID{0, 1, 2, 3, 4, 5}
	if len(members) != len(want) {
		t.Fatalf("members = %v, want %v", members, want)
	}
	for i := range want {
		if members[i] != want[i] {
			t.Fatalf("members = %v, want %v", members, want)
		}
	}
	// The other 3-core component must not leak in even though v11 connects
	// them (v11 has coreness 2).
	for _, v := range members {
		if v >= 6 {
			t.Errorf("member %d from the other component", v)
		}
	}
	// No 5-core exists.
	if got := MaximalConnectedKCore(g, 4, 5); got != nil {
		t.Errorf("5-core = %v, want nil", got)
	}
	// v12 (index 11) is in no 2-core.
	if got := MaximalConnectedKCore(g, 11, 2); got != nil {
		t.Errorf("2-core of v12 = %v, want nil", got)
	}
}

func TestSubRemoveRestoreRoundTrip(t *testing.T) {
	// K5 plus a pendant node: removing one clique node leaves K4, still a
	// 3-core, so the removal survives and can be rolled back.
	b := graph.NewBuilder(6, 0)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	b.AddEdge(4, 5)
	g := b.MustBuild()
	members := MaximalConnectedKCore(g, 4, 3)
	sub, err := NewSub(g, 4, 3, members)
	if err != nil {
		t.Fatal(err)
	}
	before := snapshot(sub, g.NumNodes())
	removed, qAlive := sub.RemoveCascade(0)
	if !qAlive {
		t.Fatal("q should survive removing v1")
	}
	if len(removed) == 0 || removed[0] != 0 {
		t.Fatalf("removed = %v, want v1 first", removed)
	}
	// Removing v1 from the 3-core {v1..v6}: remaining nodes must all still
	// have degree ≥ 3.
	mem := sub.Members(nil)
	if !InKCoreSet(g, mem, 3) {
		t.Errorf("after removal, members %v are not a 3-core", mem)
	}
	sub.Restore(removed)
	after := snapshot(sub, g.NumNodes())
	if before != after {
		t.Errorf("restore mismatch:\nbefore %v\nafter  %v", before, after)
	}
}

// snapshot serializes the alive set and degrees for round-trip comparison.
func snapshot(s *Sub, n int) string {
	var out []byte
	for v := 0; v < n; v++ {
		if s.Alive(graph.NodeID(v)) {
			out = append(out, byte('A'+s.Deg(graph.NodeID(v))))
		} else {
			out = append(out, '.')
		}
	}
	return string(out)
}

func TestSubCascadeCollapse(t *testing.T) {
	// A 4-clique is a 3-core; removing any node collapses it entirely.
	b := graph.NewBuilder(4, 0)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	g := b.MustBuild()
	members := MaximalConnectedKCore(g, 0, 3)
	sub, err := NewSub(g, 0, 3, members)
	if err != nil {
		t.Fatal(err)
	}
	removed, qAlive := sub.RemoveCascade(1)
	if qAlive {
		t.Error("q should die when the 4-clique collapses")
	}
	if len(removed) != 4 {
		t.Errorf("removed %d nodes, want 4", len(removed))
	}
	sub.Restore(removed)
	if sub.Size() != 4 || !sub.Alive(0) {
		t.Errorf("restore failed: size=%d", sub.Size())
	}
}

func TestSubComponentRestriction(t *testing.T) {
	// Two triangles sharing a cut vertex c (index 2): a 2-core. Removing c
	// must keep only q's triangle.
	b := graph.NewBuilder(5, 0)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}} {
		b.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]))
	}
	g := b.MustBuild()
	members := MaximalConnectedKCore(g, 0, 1)
	sub, err := NewSub(g, 0, 1, members)
	if err != nil {
		t.Fatal(err)
	}
	removed, qAlive := sub.RemoveCascade(2)
	if !qAlive {
		t.Fatal("q must survive")
	}
	mem := sub.Members(nil)
	if len(mem) != 2 {
		t.Errorf("members = %v, want {0,1}", mem)
	}
	for _, v := range mem {
		if v > 1 {
			t.Errorf("disconnected node %d kept", v)
		}
	}
	sub.Restore(removed)
	if sub.Size() != 5 {
		t.Errorf("size after restore = %d, want 5", sub.Size())
	}
}

func TestPropertyRemoveRestoreRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(24)
		b := graph.NewBuilder(n, 0)
		m := n * (2 + rng.Intn(3))
		for i := 0; i < m; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g := b.MustBuild()
		k := 1 + rng.Intn(3)
		q := graph.NodeID(rng.Intn(n))
		members := MaximalConnectedKCore(g, q, k)
		if members == nil {
			return true
		}
		sub, err := NewSub(g, q, k, members)
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			mem := sub.Members(nil)
			v := mem[rng.Intn(len(mem))]
			if v == q {
				continue
			}
			sizeBefore := sub.Size()
			removed, qAlive := sub.RemoveCascade(v)
			if qAlive {
				// Survivors must form a connected k-core containing q.
				cur := sub.Members(nil)
				if !InKCoreSet(g, cur, k) {
					return false
				}
				if !containsNode(cur, q) {
					return false
				}
			}
			sub.Restore(removed)
			if sub.Size() != sizeBefore {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func containsNode(s []graph.NodeID, v graph.NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestMaxCoreness(t *testing.T) {
	g := figure2Graph(t)
	max, avg := MaxCoreness(g)
	if max != 3 {
		t.Errorf("max coreness = %d, want 3", max)
	}
	if avg <= 0 || avg > 3 {
		t.Errorf("avg coreness = %v out of range", avg)
	}
}

func TestNewSubRejectsInvalid(t *testing.T) {
	g := figure2Graph(t)
	if _, err := NewSub(g, 4, 3, []graph.NodeID{0, 1, 2}); err == nil {
		t.Error("NewSub accepted a non-3-core member set")
	}
	if _, err := NewSub(g, 11, 3, MaximalConnectedKCore(g, 4, 3)); err == nil {
		t.Error("NewSub accepted a member set without q")
	}
}
