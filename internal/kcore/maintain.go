package kcore

import (
	"fmt"

	"repro/internal/cohesive"
	"repro/internal/graph"
)

var _ cohesive.Maintainer = (*Sub)(nil)

// Sub maintains a connected k-core containing a query node under node
// deletions with rollback. It implements cohesive.Maintainer.
type Sub struct {
	g        graph.Adjacency
	k        int
	q        graph.NodeID
	universe []graph.NodeID // the initial member set; alive ⊆ universe
	alive    []bool
	deg      []int32 // degree within the alive set; valid only for alive nodes
	size     int

	// scratch buffers reused across operations
	stack []graph.NodeID
	mark  []bool
	comp  []graph.NodeID
	nbr   []graph.NodeID // neighbor-decode scratch for non-aliasing backings
}

// NewSub builds a maintenance structure over the nodes of members, which must
// already form a connected k-core containing q (e.g. the output of
// MaximalConnectedKCore).
func NewSub(g graph.Adjacency, q graph.NodeID, k int, members []graph.NodeID) (*Sub, error) {
	n := g.NumNodes()
	s := &Sub{
		g:        g,
		k:        k,
		q:        q,
		universe: append([]graph.NodeID(nil), members...),
		alive:    make([]bool, n),
		deg:      make([]int32, n),
		mark:     make([]bool, n),
	}
	for _, v := range members {
		s.alive[v] = true
	}
	if !s.alive[q] {
		return nil, fmt.Errorf("kcore: query node %d not in member set", q)
	}
	for _, v := range members {
		d := int32(0)
		for _, u := range g.NeighborsInto(&s.nbr, v) {
			if s.alive[u] {
				d++
			}
		}
		if int(d) < k {
			return nil, fmt.Errorf("kcore: node %d has in-set degree %d < k=%d", v, d, k)
		}
		s.deg[v] = d
	}
	s.size = len(members)
	return s, nil
}

// Query returns the query node.
func (s *Sub) Query() graph.NodeID { return s.q }

// K returns the core threshold.
func (s *Sub) K() int { return s.k }

// Size returns the number of alive nodes.
func (s *Sub) Size() int { return s.size }

// Alive reports whether v is in the current subgraph.
func (s *Sub) Alive(v graph.NodeID) bool { return s.alive[v] }

// Deg returns v's degree inside the current subgraph (undefined if dead).
func (s *Sub) Deg(v graph.NodeID) int { return int(s.deg[v]) }

// Members appends alive nodes to dst and returns it. O(initial members),
// not O(graph).
func (s *Sub) Members(dst []graph.NodeID) []graph.NodeID {
	for _, v := range s.universe {
		if s.alive[v] {
			dst = append(dst, v)
		}
	}
	return dst
}

// Universe returns the initial member set the structure was built over.
// The returned slice must not be modified.
func (s *Sub) Universe() []graph.NodeID { return s.universe }

// kill removes v from the alive set, decrements neighbor degrees, and pushes
// neighbors that fell below k onto the cascade stack.
func (s *Sub) kill(v graph.NodeID, removed *[]graph.NodeID) {
	s.alive[v] = false
	s.size--
	*removed = append(*removed, v)
	for _, u := range s.g.NeighborsInto(&s.nbr, v) {
		if !s.alive[u] {
			continue
		}
		s.deg[u]--
		if int(s.deg[u]) < s.k {
			s.stack = append(s.stack, u)
		}
	}
}

// RemoveCascade deletes v, cascades degree violations, and restricts the
// result to the query's connected component. See cohesive.Maintainer.
func (s *Sub) RemoveCascade(v graph.NodeID) (removed []graph.NodeID, qAlive bool) {
	if !s.alive[v] {
		return nil, s.alive[s.q]
	}
	s.stack = s.stack[:0]
	s.kill(v, &removed)
	for len(s.stack) > 0 {
		u := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		if s.alive[u] {
			s.kill(u, &removed)
		}
	}
	if !s.alive[s.q] {
		return removed, false
	}
	// Restrict to q's component: mark reachable alive nodes, kill the rest.
	s.comp = s.comp[:0]
	s.comp = append(s.comp, s.q)
	s.mark[s.q] = true
	for i := 0; i < len(s.comp); i++ {
		for _, u := range s.g.NeighborsInto(&s.nbr, s.comp[i]) {
			if s.alive[u] && !s.mark[u] {
				s.mark[u] = true
				s.comp = append(s.comp, u)
			}
		}
	}
	if len(s.comp) != s.size {
		// Kill alive nodes outside the component. Their removal cannot push
		// component members below k (no edges cross between components), but
		// cascades inside the discarded part are irrelevant: kill them all.
		for _, w := range s.universe {
			if s.alive[w] && !s.mark[w] {
				s.alive[w] = false
				s.size--
				removed = append(removed, w)
				for _, u := range s.g.NeighborsInto(&s.nbr, w) {
					if s.alive[u] {
						s.deg[u]--
					}
				}
			}
		}
	}
	for _, u := range s.comp {
		s.mark[u] = false
	}
	return removed, true
}

// Restore re-inserts nodes removed by RemoveCascade, most recent first.
func (s *Sub) Restore(removed []graph.NodeID) {
	for i := len(removed) - 1; i >= 0; i-- {
		w := removed[i]
		s.alive[w] = true
		s.size++
		d := int32(0)
		for _, u := range s.g.NeighborsInto(&s.nbr, w) {
			if s.alive[u] {
				d++
				if u != w {
					s.deg[u]++
				}
			}
		}
		s.deg[w] = d
	}
}

// Clone returns a deep copy sharing only the immutable graph. Used by the
// clone-vs-rollback ablation benchmark.
func (s *Sub) Clone() *Sub {
	c := &Sub{
		g:        s.g,
		k:        s.k,
		q:        s.q,
		universe: s.universe,
		alive:    append([]bool(nil), s.alive...),
		deg:      append([]int32(nil), s.deg...),
		mark:     make([]bool, len(s.mark)),
		size:     s.size,
	}
	return c
}
