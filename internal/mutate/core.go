package mutate

import "repro/internal/graph"

// Incremental coreness maintenance. After inserting or deleting one edge
// (u,v), let r = min(core(u), core(v)). Only nodes of coreness r that are
// reachable from the minimum-side endpoint(s) through nodes of coreness r —
// the endpoints' subcore — can change, and each by exactly 1 (up on
// insertion, down on deletion). Both updates collect that scope with a BFS
// over the overlay and resolve it with a cascading eviction, never touching
// the rest of the graph.

// coreInsert updates the coreness copy for the already-applied edge (u,v):
// the subcore candidates that can sustain degree r+1 within the candidate
// set (counting neighbors of higher coreness) are promoted to r+1.
func (s *Session) coreInsert(u, v graph.NodeID) {
	core := s.core
	r := core[u]
	if core[v] < r {
		r = core[v]
	}
	var queue []graph.NodeID
	cand := make(map[graph.NodeID]bool)
	if core[u] == r {
		cand[u] = true
		queue = append(queue, u)
	}
	if core[v] == r && !cand[v] {
		cand[v] = true
		queue = append(queue, v)
	}
	for i := 0; i < len(queue); i++ {
		s.nbuf = s.ov.AppendNeighbors(s.nbuf[:0], queue[i])
		for _, w := range s.nbuf {
			if core[w] == r && !cand[w] {
				cand[w] = true
				queue = append(queue, w)
			}
		}
	}
	// Eligible degree: neighbors that could co-exist in an (r+1)-core —
	// higher-coreness nodes and surviving candidates. (A coreness-r neighbor
	// of a candidate is itself a candidate: it is adjacent, so the BFS
	// reached it.)
	// Two passes: every eligible degree is computed against the full
	// candidate set before the first eviction, so a neighbor's eviction is
	// accounted exactly once (by the cascade's decrement).
	deg := make(map[graph.NodeID]int, len(queue))
	for _, x := range queue {
		n := 0
		s.nbuf = s.ov.AppendNeighbors(s.nbuf[:0], x)
		for _, w := range s.nbuf {
			if core[w] > r || cand[w] {
				n++
			}
		}
		deg[x] = n
	}
	var evict []graph.NodeID
	for _, x := range queue {
		if deg[x] < int(r)+1 {
			evict = append(evict, x)
			cand[x] = false
		}
	}
	for len(evict) > 0 {
		x := evict[len(evict)-1]
		evict = evict[:len(evict)-1]
		s.nbuf = s.ov.AppendNeighbors(s.nbuf[:0], x)
		for _, w := range s.nbuf {
			if cand[w] {
				deg[w]--
				if deg[w] < int(r)+1 {
					cand[w] = false
					evict = append(evict, w)
				}
			}
		}
	}
	for x, alive := range cand {
		if alive {
			core[x] = r + 1
			s.structural[x] = struct{}{}
		}
	}
}

// coreRemove updates the coreness copy for the already-removed edge (u,v):
// subcore candidates whose support (neighbors of coreness ≥ r, surviving
// candidates included) falls below r cascade down to r−1.
func (s *Session) coreRemove(u, v graph.NodeID) {
	core := s.core
	r := core[u]
	if core[v] < r {
		r = core[v]
	}
	if r == 0 {
		return
	}
	var queue []graph.NodeID
	cand := make(map[graph.NodeID]bool)
	if core[u] == r {
		cand[u] = true
		queue = append(queue, u)
	}
	if core[v] == r && !cand[v] {
		cand[v] = true
		queue = append(queue, v)
	}
	for i := 0; i < len(queue); i++ {
		s.nbuf = s.ov.AppendNeighbors(s.nbuf[:0], queue[i])
		for _, w := range s.nbuf {
			if core[w] == r && !cand[w] {
				cand[w] = true
				queue = append(queue, w)
			}
		}
	}
	sup := make(map[graph.NodeID]int, len(queue))
	var evict []graph.NodeID
	for _, x := range queue {
		n := 0
		s.nbuf = s.ov.AppendNeighbors(s.nbuf[:0], x)
		for _, w := range s.nbuf {
			if core[w] >= r {
				n++
			}
		}
		sup[x] = n
		if n < int(r) {
			evict = append(evict, x)
			cand[x] = false
		}
	}
	for len(evict) > 0 {
		x := evict[len(evict)-1]
		evict = evict[:len(evict)-1]
		core[x] = r - 1
		s.structural[x] = struct{}{}
		s.nbuf = s.ov.AppendNeighbors(s.nbuf[:0], x)
		for _, w := range s.nbuf {
			if cand[w] {
				sup[w]--
				if sup[w] < int(r) {
					cand[w] = false
					evict = append(evict, w)
				}
			}
		}
	}
}
