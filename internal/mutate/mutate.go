// Package mutate defines the live-update mutation log of the serving stack:
// typed graph deltas (AddEdge / RemoveEdge / AddNode / SetAttr), a Session
// that applies a batch of deltas to an immutable base graph through a
// graph.Overlay, and *incremental* maintenance of the structural admission
// indexes — coreness and edge trussness — restricted to the affected region
// of the touched endpoints instead of a whole-graph decomposition.
//
// The incremental algorithms implement the classical locality results for
// dynamic cohesive subgraphs:
//
//   - one edge changes any node's coreness by at most 1, and only nodes in
//     the subcore of the endpoints (nodes of coreness r = min coreness of
//     the endpoints, reachable through nodes of coreness r) can change;
//   - one edge changes any edge's trussness by at most 1, and only edges
//     triangle-connected to the mutated edge below a level bound can change
//     (for an insertion, edges of trussness ≥ 2+support(e) are fixed; for a
//     deletion, edges of trussness > truss(e) are fixed).
//
// Both updates therefore traverse only the affected scope and re-peel it
// against a pinned boundary; TestIncrementalMatchesScratch proves the result
// equal to a from-scratch decomposition on randomized mutation sequences.
package mutate

import (
	"fmt"

	"repro/internal/cserr"
	"repro/internal/graph"
)

// Op names a mutation operation.
type Op int

// Mutation operations. The zero Op is deliberately invalid: a JSON delta
// whose "op" field is omitted (or whose key is misspelled) must be
// rejected, not silently decoded as an edge insertion.
const (
	// OpAddEdge inserts the undirected edge (U,V).
	OpAddEdge Op = iota + 1
	// OpRemoveEdge deletes the undirected edge (U,V).
	OpRemoveEdge
	// OpAddNode appends a node (ID = current NumNodes) with Text/Num attrs.
	OpAddNode
	// OpSetAttr replaces node U's attributes: a non-nil Text replaces the
	// textual set, a non-nil Num replaces the numerical vector.
	OpSetAttr
	numOps
)

var opNames = [numOps]string{
	OpAddEdge:    "add_edge",
	OpRemoveEdge: "remove_edge",
	OpAddNode:    "add_node",
	OpSetAttr:    "set_attr",
}

// String returns the op's wire name.
func (o Op) String() string {
	if o.Valid() {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Valid reports whether o names a registered operation.
func (o Op) Valid() bool { return o >= 1 && o < numOps }

// MarshalText renders the op's wire name so a Delta round-trips through JSON
// (the journal format and the /admin/mutate body).
func (o Op) MarshalText() ([]byte, error) {
	if !o.Valid() {
		return nil, fmt.Errorf("mutate: unknown op %d", int(o))
	}
	return []byte(o.String()), nil
}

// UnmarshalText parses a wire name.
func (o *Op) UnmarshalText(text []byte) error {
	name := string(text)
	for i, n := range opNames {
		if n != "" && n == name {
			*o = Op(i)
			return nil
		}
	}
	return cserr.Invalidf("unknown mutation op %q (want one of %v)", name, opNames[1:])
}

// Delta is one graph mutation. The JSON form is shared by the HTTP wire
// (POST /admin/mutate) and the write-ahead journal (internal/store).
type Delta struct {
	Op Op           `json:"op"`
	U  graph.NodeID `json:"u,omitempty"`
	V  graph.NodeID `json:"v,omitempty"`
	// Text carries textual attributes for AddNode/SetAttr. For SetAttr, nil
	// keeps the current set and an empty non-nil slice clears it.
	Text []string `json:"text,omitempty"`
	// Num carries the numerical attribute vector (graph NumDim wide) for
	// AddNode/SetAttr; nil keeps the current vector (all-zero for AddNode).
	Num []float64 `json:"num,omitempty"`
}

// AddEdge returns the delta inserting the undirected edge (u,v).
func AddEdge(u, v graph.NodeID) Delta { return Delta{Op: OpAddEdge, U: u, V: v} }

// RemoveEdge returns the delta deleting the undirected edge (u,v).
func RemoveEdge(u, v graph.NodeID) Delta { return Delta{Op: OpRemoveEdge, U: u, V: v} }

// AddNode returns the delta appending a node with the given attributes.
func AddNode(text []string, num []float64) Delta { return Delta{Op: OpAddNode, Text: text, Num: num} }

// SetAttr returns the delta replacing v's attributes (nil keeps a column).
func SetAttr(v graph.NodeID, text []string, num []float64) Delta {
	return Delta{Op: OpSetAttr, U: v, Text: text, Num: num}
}

// Edge canonically identifies an undirected edge: U < V.
type Edge struct {
	U, V graph.NodeID
}

// EdgeOf returns the canonical Edge for the endpoint pair.
func EdgeOf(u, v graph.NodeID) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}
