package mutate

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/truss"
)

// randomGraph builds a connected-ish random attributed graph.
func randomGraph(t *testing.T, rng *rand.Rand, n int, p float64) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n, 2)
	for v := 0; v < n; v++ {
		b.SetTextAttrs(graph.NodeID(v), fmt.Sprintf("tag%d", rng.Intn(8)), fmt.Sprintf("tag%d", rng.Intn(8)))
		b.SetNumAttrs(graph.NodeID(v), rng.Float64(), rng.Float64())
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// edgeTrussOf computes the per-edge trussness table from scratch.
func edgeTrussOf(g *graph.Graph) map[Edge]int32 {
	ix, tr := truss.Decompose(g)
	m := make(map[Edge]int32, ix.NumEdges())
	for e := range tr {
		m[EdgeOf(ix.U[e], ix.V[e])] = tr[e]
	}
	return m
}

// edgesOf lists the undirected edges of g.
func edgesOf(g *graph.Graph) []Edge {
	var out []Edge
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if graph.NodeID(v) < u {
				out = append(out, Edge{U: graph.NodeID(v), V: u})
			}
		}
	}
	return out
}

// randomDelta draws a random valid mutation against the current graph.
func randomDelta(rng *rand.Rand, g *graph.Graph) Delta {
	n := g.NumNodes()
	for {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // add a random non-edge
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			if u == v || g.HasEdge(u, v) {
				continue
			}
			return AddEdge(u, v)
		case 4, 5, 6: // remove a random edge
			edges := edgesOf(g)
			if len(edges) == 0 {
				continue
			}
			e := edges[rng.Intn(len(edges))]
			return RemoveEdge(e.U, e.V)
		case 7:
			return AddNode([]string{fmt.Sprintf("tag%d", rng.Intn(8))}, []float64{rng.Float64(), rng.Float64()})
		default:
			v := graph.NodeID(rng.Intn(n))
			return SetAttr(v, []string{fmt.Sprintf("tag%d", rng.Intn(8))}, nil)
		}
	}
}

// TestIncrementalMatchesScratch is the tentpole property test: for random
// mutation sequences, the incrementally maintained coreness and trussness
// equal a from-scratch decomposition of the materialized graph after every
// single mutation.
func TestIncrementalMatchesScratch(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := randomGraph(t, rng, 60, 0.08)
			core := kcore.Decompose(g)
			etruss := edgeTrussOf(g)

			for step := 0; step < 60; step++ {
				d := randomDelta(rng, g)
				sess := NewSession(g, core, etruss)
				if err := sess.Apply(d); err != nil {
					t.Fatalf("step %d: apply %v: %v", step, d, err)
				}
				g = sess.Materialize()
				core = sess.Core()
				etruss = sess.EdgeTruss()

				wantCore := kcore.Decompose(g)
				for v := range wantCore {
					if core[v] != wantCore[v] {
						t.Fatalf("step %d (%s %d-%d): core[%d] = %d, want %d",
							step, d.Op, d.U, d.V, v, core[v], wantCore[v])
					}
				}
				wantTruss := edgeTrussOf(g)
				if len(etruss) != len(wantTruss) {
					t.Fatalf("step %d (%s %d-%d): %d truss entries, want %d",
						step, d.Op, d.U, d.V, len(etruss), len(wantTruss))
				}
				for e, want := range wantTruss {
					if got := etruss[e]; got != want {
						t.Fatalf("step %d (%s %d-%d): truss[%v] = %d, want %d",
							step, d.Op, d.U, d.V, e, got, want)
					}
				}
			}
		})
	}
}

// TestBatchedSessionMatchesScratch applies several deltas through one
// session and checks the indexes and the node-truss projection once at the
// end, the way the Engine uses a Session.
func TestBatchedSessionMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(t, rng, 50, 0.1)
	core := kcore.Decompose(g)
	etruss := edgeTrussOf(g)
	oldNT := nodeTrussOf(g, len(core))

	sess := NewSession(g, core, etruss)
	cur := g
	for i := 0; i < 25; i++ {
		d := randomDelta(rng, cur)
		if err := sess.Apply(d); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
		cur = sess.Materialize()
	}
	got := sess.Materialize()
	wantCore := kcore.Decompose(got)
	newCore := sess.Core()
	for v := range wantCore {
		if newCore[v] != wantCore[v] {
			t.Fatalf("core[%d] = %d, want %d", v, newCore[v], wantCore[v])
		}
	}
	wantNT := nodeTrussOf(got, got.NumNodes())
	gotNT := sess.NodeTruss(oldNT)
	for v := range wantNT {
		if gotNT[v] != wantNT[v] {
			t.Fatalf("nodeTruss[%d] = %d, want %d", v, gotNT[v], wantNT[v])
		}
	}
}

func nodeTrussOf(g *graph.Graph, n int) []int32 {
	ix, tr := truss.Decompose(g)
	nt := make([]int32, n)
	for e := range tr {
		if t := tr[e]; t > 0 {
			if u := ix.U[e]; t > nt[u] {
				nt[u] = t
			}
			if v := ix.V[e]; t > nt[v] {
				nt[v] = t
			}
		}
	}
	return nt
}

// TestSessionRollback proves a failed batch leaves the adopted truss table
// untouched.
func TestSessionRollback(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(t, rng, 30, 0.15)
	core := kcore.Decompose(g)
	etruss := edgeTrussOf(g)
	want := make(map[Edge]int32, len(etruss))
	for k, v := range etruss {
		want[k] = v
	}

	sess := NewSession(g, core, etruss)
	edges := edgesOf(g)
	if err := sess.Apply(RemoveEdge(edges[0].U, edges[0].V)); err != nil {
		t.Fatal(err)
	}
	if err := sess.Apply(AddEdge(5, 5)); err == nil {
		t.Fatal("self-loop accepted")
	}
	sess.Rollback()
	if len(etruss) != len(want) {
		t.Fatalf("%d entries after rollback, want %d", len(etruss), len(want))
	}
	for k, v := range want {
		if etruss[k] != v {
			t.Fatalf("truss[%v] = %d after rollback, want %d", k, etruss[k], v)
		}
	}
}

// TestApplyErrors exercises the validation paths.
func TestApplyErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(t, rng, 10, 0.3)
	sess := NewSession(g, kcore.Decompose(g), nil)
	cases := []Delta{
		AddEdge(0, 0),
		AddEdge(0, 99),
		RemoveEdge(0, 99),
		SetAttr(99, []string{"x"}, nil),
		SetAttr(1, nil, nil),
		{Op: Op(77)},
		AddNode(nil, []float64{1}), // wrong NumDim (graph has 2)
	}
	for _, d := range cases {
		if err := sess.Apply(d); err == nil {
			t.Errorf("Apply(%+v) accepted", d)
		}
	}
	if sess.Applied() != 0 {
		t.Fatalf("Applied = %d after rejected deltas", sess.Applied())
	}
}
