package mutate

import (
	"fmt"

	"repro/internal/graph"
)

// Preflight is the prepare stage of a group commit: it validates whole delta
// groups against a throwaway overlay — no index maintenance, no
// materialization — before any of them touch a Session. A group either
// validates completely and becomes part of the batch, or is rejected whole
// and leaves no trace: later groups validate exactly as if the rejected one
// had never arrived (the same post-group node counts, the same assigned
// AddNode IDs).
//
// Validation goes through the same applyOverlay the Session uses, so a
// group the Preflight admits cannot fail when the Session applies it, and a
// group it rejects carries the identical error the caller would have seen
// applying the group alone.
type Preflight struct {
	base graph.Store
	ov   *graph.Overlay
	ok   [][]Delta // admitted groups, in admission order
}

// NewPreflight starts group validation over base.
func NewPreflight(base graph.Store) *Preflight {
	return &Preflight{base: base, ov: graph.NewOverlay(base)}
}

// Group validates one delta group on top of every previously admitted group.
// On success the group is admitted (its deltas shape the overlay later
// groups validate against). On failure the overlay is rolled back to the
// admitted state — by replaying the admitted groups over a fresh overlay,
// which is cheap because overlay edits skip all index maintenance — and the
// error identifies the failing delta as "delta i: ...".
func (p *Preflight) Group(deltas []Delta) error {
	for i, d := range deltas {
		if _, err := applyOverlay(p.ov, d); err != nil {
			p.rewind()
			return fmt.Errorf("delta %d: %w", i, err)
		}
	}
	p.ok = append(p.ok, deltas)
	return nil
}

// Admitted returns the admitted groups in admission order. The slices alias
// the caller's.
func (p *Preflight) Admitted() [][]Delta { return p.ok }

// rewind rebuilds the overlay to hold exactly the admitted groups. Replay
// cannot fail: every admitted delta already applied once to this state.
func (p *Preflight) rewind() {
	p.ov = graph.NewOverlay(p.base)
	for _, g := range p.ok {
		for _, d := range g {
			if _, err := applyOverlay(p.ov, d); err != nil {
				panic(fmt.Sprintf("mutate: admitted delta failed on replay: %v", err))
			}
		}
	}
}
