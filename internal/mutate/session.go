package mutate

import (
	"repro/internal/cserr"
	"repro/internal/graph"
)

// Session applies one batch of deltas to an immutable base graph. It owns a
// graph.Overlay holding the accumulated structural/attribute deltas, a
// working copy of the coreness array, and (optionally) the per-edge
// trussness table, both maintained *incrementally* per delta: every Apply
// re-computes only the affected scope of the touched endpoints (see the
// package comment for the locality results).
//
// On an Apply error the session rolls the failed delta back, so a batch is
// all-or-nothing from the caller's perspective: apply every delta, then
// Materialize; or abandon the session on the first error.
//
// A Session is not safe for concurrent use; the Engine serializes mutation
// batches under its own lock.
type Session struct {
	ov   *graph.Overlay
	core []int32 // working coreness copy, post-mutation

	// etruss is the per-edge trussness table, adopted (not copied) from the
	// caller and mutated in place with an undo log; nil when the truss index
	// is not maintained. undo holds the pre-batch value of every touched
	// edge (nil pointer = the edge did not exist).
	etruss map[Edge]int32
	undo   map[Edge]*int32

	structural map[graph.NodeID]struct{} // endpoints + index-changed nodes
	attr       map[graph.NodeID]struct{} // nodes whose attributes changed
	trussDirty map[graph.NodeID]struct{} // nodes whose incident-edge truss set changed
	newNodes   []graph.NodeID
	applied    int

	nbuf, nbuf2 []graph.NodeID // neighbor-list scratch
}

// NewSession starts a mutation session over base, which may be any immutable
// graph.Store backing (heap CSR, mapped snapshot, compressed adjacency).
// core is the base graph's coreness (copied); etruss is the per-edge
// trussness table, adopted and maintained in place when non-nil (pass nil to
// skip truss maintenance — the caller rebuilds its truss index lazily
// instead).
func NewSession(base graph.Store, core []int32, etruss map[Edge]int32) *Session {
	return &Session{
		ov:         graph.NewOverlay(base),
		core:       append(make([]int32, 0, base.NumNodes()+8), core...),
		etruss:     etruss,
		undo:       make(map[Edge]*int32),
		structural: make(map[graph.NodeID]struct{}),
		attr:       make(map[graph.NodeID]struct{}),
		trussDirty: make(map[graph.NodeID]struct{}),
	}
}

// Overlay returns the session's delta overlay (the post-mutation view).
func (s *Session) Overlay() *graph.Overlay { return s.ov }

// Applied returns the number of deltas applied so far.
func (s *Session) Applied() int { return s.applied }

// NewNodes returns the IDs assigned to AddNode deltas, in apply order.
func (s *Session) NewNodes() []graph.NodeID { return s.newNodes }

// Core returns the post-mutation coreness array. The caller adopts it; the
// session must not be applied to afterwards.
func (s *Session) Core() []int32 { return s.core }

// EdgeTruss returns the post-mutation per-edge trussness table (nil when
// truss maintenance was skipped).
func (s *Session) EdgeTruss() map[Edge]int32 { return s.etruss }

// StructuralNodes returns the nodes whose structure or admission-index value
// changed: mutation endpoints, appended nodes, and every node whose coreness
// or incident trussness moved.
func (s *Session) StructuralNodes() []graph.NodeID { return keys(s.structural) }

// AttrNodes returns the nodes whose attributes changed.
func (s *Session) AttrNodes() []graph.NodeID { return keys(s.attr) }

// Materialize folds the session's deltas into a fresh immutable Graph.
func (s *Session) Materialize() *graph.Graph { return s.ov.Materialize() }

// NodeTruss derives the post-mutation node-level truss index (max trussness
// over incident edges) from old, re-scanning only nodes whose incident edge
// set or edge trussness changed. It returns nil when truss maintenance was
// skipped. old may be shorter than the new node count (appended nodes).
func (s *Session) NodeTruss(old []int32) []int32 {
	if s.etruss == nil || old == nil {
		return nil
	}
	nt := make([]int32, s.ov.NumNodes())
	copy(nt, old)
	for v := range s.trussDirty {
		max := int32(0)
		s.nbuf = s.ov.AppendNeighbors(s.nbuf[:0], v)
		for _, w := range s.nbuf {
			if t := s.etruss[EdgeOf(v, w)]; t > max {
				max = t
			}
		}
		nt[v] = max
	}
	return nt
}

// Rollback undoes every per-edge trussness change of the session, restoring
// the adopted table to its pre-batch state. The coreness copy and overlay
// are simply discarded with the session.
func (s *Session) Rollback() {
	for e, old := range s.undo {
		if old == nil {
			delete(s.etruss, e)
		} else {
			s.etruss[e] = *old
		}
	}
	s.undo = make(map[Edge]*int32)
}

// applyOverlay validates and applies one delta's overlay edit — the part of
// Apply that can fail. It is shared between the Session (which follows it
// with index maintenance) and the Preflight (which validates whole groups
// against a throwaway overlay before any maintenance runs), so both reject
// exactly the same deltas with exactly the same errors. The returned NodeID
// is the assigned ID of an OpAddNode (0 otherwise). Errors wrap
// cserr.ErrInvalidRequest and leave the overlay as before the call.
func applyOverlay(ov *graph.Overlay, d Delta) (graph.NodeID, error) {
	switch d.Op {
	case OpAddEdge:
		if err := ov.AddEdge(d.U, d.V); err != nil {
			return 0, cserr.Invalidf("%v", err)
		}
	case OpRemoveEdge:
		if err := ov.RemoveEdge(d.U, d.V); err != nil {
			return 0, cserr.Invalidf("%v", err)
		}
	case OpAddNode:
		id, err := ov.AddNode(d.Text, d.Num)
		if err != nil {
			return 0, cserr.Invalidf("%v", err)
		}
		return id, nil
	case OpSetAttr:
		if d.Text == nil && d.Num == nil {
			return 0, cserr.Invalidf("mutate: set_attr on node %d changes nothing", d.U)
		}
		if err := ov.SetAttrs(d.U, d.Text, d.Num); err != nil {
			return 0, cserr.Invalidf("%v", err)
		}
	default:
		return 0, cserr.Invalidf("unknown mutation op %d", int(d.Op))
	}
	return 0, nil
}

// Apply validates and applies one delta, maintaining the coreness and (when
// adopted) trussness tables incrementally. Errors wrap
// cserr.ErrInvalidRequest and leave the session as before the call.
func (s *Session) Apply(d Delta) error {
	// The deletion scope seeds are the triangles through the edge; they
	// must be enumerated before the edge disappears from the overlay.
	var seeds []Edge
	if d.Op == OpRemoveEdge && s.etruss != nil && s.ov.HasEdge(d.U, d.V) {
		for _, z := range s.commonNeighbors(d.U, d.V) {
			seeds = append(seeds, EdgeOf(d.U, z), EdgeOf(d.V, z))
		}
	}
	id, err := applyOverlay(s.ov, d)
	if err != nil {
		return err
	}
	switch d.Op {
	case OpAddEdge:
		s.markStructural(d.U, d.V)
		s.coreInsert(d.U, d.V)
		s.trussInsert(d.U, d.V)
	case OpRemoveEdge:
		s.markStructural(d.U, d.V)
		s.coreRemove(d.U, d.V)
		s.trussRemove(d.U, d.V, seeds)
	case OpAddNode:
		s.core = append(s.core, 0)
		s.newNodes = append(s.newNodes, id)
		s.structural[id] = struct{}{}
		s.attr[id] = struct{}{}
	case OpSetAttr:
		s.attr[d.U] = struct{}{}
	}
	s.applied++
	return nil
}

func (s *Session) markStructural(u, v graph.NodeID) {
	s.structural[u] = struct{}{}
	s.structural[v] = struct{}{}
	s.trussDirty[u] = struct{}{}
	s.trussDirty[v] = struct{}{}
}

// commonNeighbors returns the sorted common neighbors of u and v under the
// overlay. The result aliases session scratch, valid until the next call.
func (s *Session) commonNeighbors(u, v graph.NodeID) []graph.NodeID {
	s.nbuf = s.ov.AppendNeighbors(s.nbuf[:0], u)
	s.nbuf2 = s.ov.AppendNeighbors(s.nbuf2[:0], v)
	var out []graph.NodeID
	i, j := 0, 0
	for i < len(s.nbuf) && j < len(s.nbuf2) {
		switch {
		case s.nbuf[i] == s.nbuf2[j]:
			out = append(out, s.nbuf[i])
			i++
			j++
		case s.nbuf[i] < s.nbuf2[j]:
			i++
		default:
			j++
		}
	}
	return out
}

func keys(m map[graph.NodeID]struct{}) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	return out
}
